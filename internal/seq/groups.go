package seq

import (
	"sync"
)

// Groups is the vector-clock merge that turns N independent Paxos groups'
// committed streams back into one deterministic global sequence (ISSUE 10).
// It sits between the per-group delivery callbacks and the DMT lane queues:
// each group's entries arrive in that group's commit order, are parked in a
// per-group FIFO, and are emitted in an order that is a pure function of
// the per-group stream contents — identical on every replica regardless of
// how the group deliveries interleave in real time.
//
// Ordering rule. Every entry carries an admission Stamp drawn from the
// primary's shared counter, strictly monotone within its group. The merge
// tracks a watermark vector W, where W[g] is the effective stamp of the
// last entry emitted from group g. A head entry's effective stamp is
//
//	eff = max(Stamp, W[g]+1)
//
// — the bump keeps each group's effective stream strictly monotone even
// when a failover makes a new primary assign stamps below what its
// predecessor already committed (raw stamps may regress; effective stamps
// cannot). The candidate is the nonempty head minimizing (eff, group id),
// and it is emittable only when every EMPTY group h already has W[h] >=
// eff: h's next entry will get eff' >= W[h]+1 > eff, so nothing that could
// sort earlier can still arrive. Time bubbles carry a stamp vector Vec;
// applying it to W on emission is what lets an idle group's watermark
// advance without traffic, keeping the merge live (the empty-group
// liveness of the satellite tests).
//
// With one group the merge degenerates to synchronous pass-through — no
// parking, no reordering — which is what keeps Groups=1 bit-identical to
// the pre-shard pipeline.
type Groups struct {
	mu   sync.Mutex
	emit func(*Entry) // invoked under mu, in merge order

	qs    [][]*Entry // per-group pending FIFO (head-indexed, compacting)
	heads []int
	w     []uint64 // watermark vector: effective stamp last emitted per group

	// stats
	delivered uint64
	emitted   uint64
	stalls    uint64 // drain passes that parked entries behind an empty group
	vecBumps  uint64 // watermark advances applied from bubble vectors
}

// NewGroups creates a merge over n groups emitting into emit. The emit
// callback runs with the merge lock held, in the deterministic merge
// order; it must not call back into the Groups.
func NewGroups(n int, emit func(*Entry)) *Groups {
	if n < 1 {
		n = 1
	}
	return &Groups{
		emit:  emit,
		qs:    make([][]*Entry, n),
		heads: make([]int, n),
		w:     make([]uint64, n),
	}
}

// N returns the group count.
func (g *Groups) N() int { return len(g.qs) }

// Deliver feeds one committed entry from group gi and drains everything
// the merge rule now allows. Safe to call concurrently from the per-group
// delivery goroutines; emission is serialized under the merge lock.
func (g *Groups) Deliver(gi int, e *Entry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.delivered++
	if len(g.qs) == 1 {
		// Single group: synchronous pass-through, exactly the pre-shard
		// delivery path (plus one uncontended lock).
		g.emitted++
		g.w[0] = max64(e.Stamp, g.w[0]+1)
		g.emit(e)
		return
	}
	g.qs[gi] = append(g.qs[gi], e)
	g.drainLocked()
}

// drainLocked emits entries while the merge rule allows. Called with mu
// held.
func (g *Groups) drainLocked() {
	for {
		// Pick the candidate: nonempty head minimizing (eff, group id).
		cand := -1
		var candEff uint64
		for gi := range g.qs {
			if g.heads[gi] >= len(g.qs[gi]) {
				continue
			}
			eff := max64(g.qs[gi][g.heads[gi]].Stamp, g.w[gi]+1)
			if cand == -1 || eff < candEff {
				cand, candEff = gi, eff
			}
		}
		if cand == -1 {
			return
		}
		// Gate on empty groups: one of them could still deliver an entry
		// sorting before candEff unless its watermark already covers it
		// (W[h] == candEff is safe — h's next effective stamp exceeds it).
		for h := range g.qs {
			if g.heads[h] >= len(g.qs[h]) && g.w[h] < candEff {
				g.stalls++
				return
			}
		}
		e := g.popLocked(cand)
		g.w[cand] = candEff
		if e.Kind == KindBubble {
			for h, v := range e.Vec {
				if h < len(g.w) && v > g.w[h] {
					g.w[h] = v
					g.vecBumps++
				}
			}
		}
		g.emitted++
		g.emit(e)
	}
}

func (g *Groups) popLocked(gi int) *Entry {
	q := g.qs[gi]
	e := q[g.heads[gi]]
	q[g.heads[gi]] = nil
	g.heads[gi]++
	if g.heads[gi] == len(q) {
		g.qs[gi] = q[:0]
		g.heads[gi] = 0
	} else if g.heads[gi] >= 32 && g.heads[gi]*2 >= len(q) {
		// Compact once the consumed prefix dominates (same policy as
		// Sequence.popLocked), bounding dead-prefix growth under a
		// standing cross-group backlog.
		live := copy(q, q[g.heads[gi]:])
		clearTail := q[live:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		g.qs[gi] = q[:live]
		g.heads[gi] = 0
	}
	return e
}

// Pending returns the number of committed entries parked across all
// groups, awaiting merge emission.
func (g *Groups) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for gi := range g.qs {
		n += len(g.qs[gi]) - g.heads[gi]
	}
	return n
}

// PendingClientCalls returns the number of parked NON-bubble entries:
// admitted client input the program has not yet seen. In steady state the
// merge almost always parks the newest bubble round's tail behind an
// as-yet-empty group, so Pending() rarely reads 0 on a live cluster;
// quiescence checks must ignore that padding and gate only on client
// calls (a dropped bubble is a lost clock grant the idle thread never
// consumed — invisible to the schedule hash — while a dropped client call
// is lost input).
func (g *Groups) PendingClientCalls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for gi := range g.qs {
		for i := g.heads[gi]; i < len(g.qs[gi]); i++ {
			if g.qs[gi][i].Kind != KindBubble {
				n++
			}
		}
	}
	return n
}

// PendingGroup returns the parked-entry count for one group.
func (g *Groups) PendingGroup(gi int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.qs[gi]) - g.heads[gi]
}

// Watermark returns group gi's watermark: the effective stamp of the last
// entry emitted from it (or asserted past it by a bubble vector).
func (g *Groups) Watermark(gi int) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.w[gi]
}

// Watermarks snapshots the full watermark vector (checkpoint capture).
func (g *Groups) Watermarks() []uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]uint64, len(g.w))
	copy(out, g.w)
	return out
}

// SetWatermarks installs a checkpointed watermark vector on a fresh merge
// (restore path): the restored replica must bump and gate exactly as the
// live replicas did at the capture point, or post-restore effective stamps
// would diverge. Ignores vectors of the wrong length.
func (g *Groups) SetWatermarks(w []uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(w) != len(g.w) {
		return
	}
	copy(g.w, w)
}

// MaxWatermark returns the highest watermark across groups — the stamp
// floor a new primary must assign above to preserve admission order.
func (g *Groups) MaxWatermark() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var m uint64
	for _, v := range g.w {
		if v > m {
			m = v
		}
	}
	return m
}

// ResetGroup discards group gi's parked entries without touching any other
// group's pending queue or the watermark vector, returning how many
// entries were dropped. This is the group-scoped form of the speculation
// rollback's queue reset (ISSUE 10 satellite): a rollback replaying one
// group's stream must not discard entries other groups have committed but
// the merge has not yet emitted.
func (g *Groups) ResetGroup(gi int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.qs[gi]) - g.heads[gi]
	for i := range g.qs[gi] {
		g.qs[gi][i] = nil
	}
	g.qs[gi] = g.qs[gi][:0]
	g.heads[gi] = 0
	return n
}

// Reset wipes every group's parked entries and the watermark vector back
// to the freshly-created state, keeping the emit hook.
func (g *Groups) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for gi := range g.qs {
		for i := range g.qs[gi] {
			g.qs[gi][i] = nil
		}
		g.qs[gi] = g.qs[gi][:0]
		g.heads[gi] = 0
		g.w[gi] = 0
	}
}

// GroupStats is a snapshot of the merge counters.
type GroupStats struct {
	Groups        int
	Delivered     uint64 // entries fed by group delivery callbacks
	Emitted       uint64 // entries emitted in merge order
	Pending       int    // entries currently parked (incl. bubble padding)
	PendingClient int    // parked non-bubble entries: unexecuted client input
	Stalls        uint64 // drain passes blocked behind an empty group
	VecBumps      uint64 // watermark advances from bubble vectors
}

// Stats returns a snapshot of the merge counters.
func (g *Groups) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	pend, client := 0, 0
	for gi := range g.qs {
		pend += len(g.qs[gi]) - g.heads[gi]
		for i := g.heads[gi]; i < len(g.qs[gi]); i++ {
			if g.qs[gi][i].Kind != KindBubble {
				client++
			}
		}
	}
	return GroupStats{
		Groups:        len(g.qs),
		Delivered:     g.delivered,
		Emitted:       g.emitted,
		Pending:       pend,
		PendingClient: client,
		Stalls:        g.stalls,
		VecBumps:      g.vecBumps,
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
