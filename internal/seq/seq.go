// Package seq implements the "PAXOS request sequence" of §3.2: the ordered
// queue of decided client socket calls and inserted time bubbles that sits
// between a replica's proxy process and its DMT-scheduled server process.
// (The original uses Boost shared memory guarded by lockf; here both sides
// are in-process and a mutex suffices — the contract is identical.)
//
// The proxy appends entries in global consensus order; the DMT gate and the
// socket wrappers consume them: bubbles are decremented one logical clock
// per synchronization operation, CONNECT entries are consumed by accept(),
// SEND entries are consumed — possibly partially, by byte count — by
// recv(), and CLOSE entries make the next recv() on that connection return
// EOF (Fig. 10/11).
package seq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crane/internal/obs"
	"crane/internal/obs/flight"
)

// Kind discriminates sequence entries.
type Kind uint8

const (
	// KindConnect is a client connect() observed by the primary's proxy.
	KindConnect Kind = iota + 1
	// KindSend is a client send(); Data carries the payload.
	KindSend
	// KindClose is a client close().
	KindClose
	// KindBubble is a time bubble granting NClock logical clocks during
	// which no client socket call is admitted (§4).
	KindBubble
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindConnect:
		return "CONNECT"
	case KindSend:
		return "SEND"
	case KindClose:
		return "CLOSE"
	case KindBubble:
		return "BUBBLE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one decided consensus value: a client socket call or a time
// bubble, tagged with its global index (the viewstamp sequence number that
// also keys checkpoints, §5.1–§5.2).
type Entry struct {
	Index  uint64 // global consensus index
	Req    uint64 // lifecycle request id assigned at proxy admission (0: none)
	Kind   Kind
	Conn   uint64 // connection id for Connect/Send/Close
	Port   int    // server port the client dialed (Connect only)
	Data   []byte // payload (Send only)
	NClock uint64 // remaining logical clocks (Bubble only)

	// Stamp is the admission-order logical stamp assigned by the primary's
	// burst submitter, drawn from one per-replica counter shared by every
	// Paxos group. Within a group it is strictly monotone, so the
	// multi-group merge (Groups) can deterministically interleave the
	// groups' committed streams by stamp order. At Groups=1 the stamp rides
	// the wire but nothing consumes it.
	Stamp uint64

	// Vec is a bubble's vector of per-group logical-clock stamps (ISSUE 10):
	// Vec[h] is the newest stamp the proposing primary had assigned to group
	// h when the bubble was submitted. The merge applies it as a watermark
	// floor on emission, letting lanes consume group g's entries up to the
	// vector stamp even while other groups are idle. Nil for client calls
	// and for every entry at Groups=1.
	Vec []uint64

	// Spec marks an entry enqueued speculatively by the proposing replica
	// before its consensus commit (ISSUE 7). A speculative entry is
	// consumed by the DMT exactly like a committed one; when the commit
	// arrives and matches, ClearSpec promotes it in place, and when the
	// speculation aborts, TruncateSpec removes the still-queued suffix.
	// In-memory only: the flag never crosses the wire.
	Spec bool

	// enqueuedAt is stamped by Enqueue for the queue-wait instrument;
	// it never crosses the wire.
	enqueuedAt time.Time
}

// Wire format: a fixed little-endian header followed by the payload. (The
// Index field round-trips for completeness, but the authoritative value is
// the consensus slot assigned on delivery. Req rides the wire so every
// replica's lifecycle trace keys stages by the same request id.)
//
//	index(8) | req(8) | kind(1) | conn(8) | port(8) | nclock(8) | stamp(8) | len(vec)(2) | len(data)(4) | vec(8·len) | data
const entryHeaderSize = 8 + 8 + 1 + 8 + 8 + 8 + 8 + 2 + 4

// ErrBadEntry is returned by Decode for a malformed payload.
var ErrBadEntry = errors.New("seq: malformed entry payload")

// wireSize returns the encoded length of e.
func (e *Entry) wireSize() int { return entryHeaderSize + 8*len(e.Vec) + len(e.Data) }

// marshal writes e into b, which must be exactly wireSize() long.
func (e *Entry) marshal(b []byte) {
	binary.LittleEndian.PutUint64(b[0:8], e.Index)
	binary.LittleEndian.PutUint64(b[8:16], e.Req)
	b[16] = byte(e.Kind)
	binary.LittleEndian.PutUint64(b[17:25], e.Conn)
	binary.LittleEndian.PutUint64(b[25:33], uint64(int64(e.Port)))
	binary.LittleEndian.PutUint64(b[33:41], e.NClock)
	binary.LittleEndian.PutUint64(b[41:49], e.Stamp)
	binary.LittleEndian.PutUint16(b[49:51], uint16(len(e.Vec)))
	binary.LittleEndian.PutUint32(b[51:55], uint32(len(e.Data)))
	off := entryHeaderSize
	for _, v := range e.Vec {
		binary.LittleEndian.PutUint64(b[off:off+8], v)
		off += 8
	}
	copy(b[off:], e.Data)
}

// unmarshal parses b into e. The Data slice aliases b (consumers only ever
// reslice it), so callers must not mutate the payload afterwards; Vec is
// decoded into fresh storage (bubbles only, so the delivery path stays
// allocation-free for client calls).
func (e *Entry) unmarshal(b []byte) error {
	if len(b) < entryHeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrBadEntry, len(b))
	}
	kind := Kind(b[16])
	if kind < KindConnect || kind > KindBubble {
		return fmt.Errorf("%w: kind %d", ErrBadEntry, b[16])
	}
	nvec := int(binary.LittleEndian.Uint16(b[49:51]))
	dlen := binary.LittleEndian.Uint32(b[51:55])
	if int(dlen) != len(b)-entryHeaderSize-8*nvec {
		return fmt.Errorf("%w: length %d vs %d payload bytes", ErrBadEntry,
			dlen, len(b)-entryHeaderSize-8*nvec)
	}
	e.Index = binary.LittleEndian.Uint64(b[0:8])
	e.Req = binary.LittleEndian.Uint64(b[8:16])
	e.Kind = kind
	e.Conn = binary.LittleEndian.Uint64(b[17:25])
	e.Port = int(int64(binary.LittleEndian.Uint64(b[25:33])))
	e.NClock = binary.LittleEndian.Uint64(b[33:41])
	e.Stamp = binary.LittleEndian.Uint64(b[41:49])
	off := entryHeaderSize
	if nvec > 0 {
		e.Vec = make([]uint64, nvec)
		for i := range e.Vec {
			e.Vec[i] = binary.LittleEndian.Uint64(b[off : off+8])
			off += 8
		}
	} else {
		e.Vec = nil
	}
	if dlen > 0 {
		e.Data = b[off:]
	} else {
		e.Data = nil
	}
	return nil
}

// Encode serializes an entry for the consensus log.
func (e *Entry) Encode() ([]byte, error) {
	b := make([]byte, e.wireSize())
	e.marshal(b)
	return b, nil
}

// Decode deserializes an entry from the consensus log.
func Decode(b []byte) (*Entry, error) {
	e := new(Entry)
	if err := e.unmarshal(b); err != nil {
		return nil, err
	}
	return e, nil
}

// DecodeInto deserializes an entry into caller-provided storage — the
// scratch-reuse form of Decode for delivery loops that arena-allocate
// their entries. On error e is left in an unspecified state.
func DecodeInto(e *Entry, b []byte) error { return e.unmarshal(b) }

// EncodeBatch serializes a burst of entries into per-entry consensus
// payloads sharing one backing allocation — the marshaling primitive for
// ProposeBatch (no per-entry encoder or buffer churn).
func EncodeBatch(entries []*Entry) ([][]byte, error) {
	total := 0
	for _, e := range entries {
		total += e.wireSize()
	}
	backing := make([]byte, total)
	out := make([][]byte, len(entries))
	off := 0
	for i, e := range entries {
		n := e.wireSize()
		b := backing[off : off+n : off+n]
		e.marshal(b)
		out[i] = b
		off += n
	}
	return out, nil
}

// DecodeBatch deserializes a burst of consensus payloads with one Entry
// allocation for the whole batch.
func DecodeBatch(payloads [][]byte) ([]*Entry, error) {
	ents := make([]Entry, len(payloads))
	out := make([]*Entry, len(payloads))
	for i, p := range payloads {
		if err := ents[i].unmarshal(p); err != nil {
			return nil, err
		}
		out[i] = &ents[i]
	}
	return out, nil
}

// Sequence is the ordered, shared queue of decided entries. The queue is
// a compacting head-indexed slice: consumption advances head instead of
// re-slicing, so the backing array is reused across bursts rather than
// growing behind a dead prefix.
type Sequence struct {
	mu      sync.Mutex
	entries []*Entry
	head    int // index of the first pending entry in entries
	// lastDrain is when the queue last transitioned to empty (or was
	// created); the bubbling component compares it against Wtimeout.
	lastDrain time.Time
	// stats
	enqueued      uint64
	bubbles       uint64
	clientCalls   uint64
	bubbleClocks  uint64
	consumedCalls uint64
	payloadBytes  uint64
	// specConsumed counts consumption acts against speculative entries:
	// bubble clock ticks, CONNECT/CLOSE pops, full SEND drains, and —
	// crucially — partial SEND byte copies, which advance no other counter.
	// The speculation layer snapshots it when a window opens and compares
	// after truncation: any change means speculative input reached the
	// server and the abort must escalate to a full rollback.
	specConsumed uint64
	// progressA mirrors bubbleClocks + consumedCalls: the sequence's
	// consumption position. Atomic so other lanes' merge polls read it
	// lock-free (see Progress).
	progressA atomic.Uint64

	// queueWait measures enqueue -> full consumption per client call (the
	// DMT-turn wait a request spends in the sequence). consumedHook fires
	// on full consumption of a client call, under s.mu — it must be cheap
	// and must not call back into the Sequence. Both are installed before
	// traffic and nil when observability is off.
	queueWait    *obs.Histogram
	consumedHook func(e *Entry)

	// flight journals consumption acts into this lane's flight-recorder
	// ring (one event per consumed entry; bubble clock ticks are coalesced
	// into a single event at exhaustion so the grind stays event-free).
	// All consumption happens while the caller holds the lane token, so
	// emission preserves the journal's single-writer discipline.
	// flightClock supplies the lane's logical clock for entry stamps
	// (lock-free read); nil when recording is off.
	flight      *flight.Journal
	flightClock func() uint64
}

// New creates an empty sequence.
func New() *Sequence {
	return &Sequence{lastDrain: time.Now()} //crane:detflow-ok drain-interval stat, never marshaled onto the wire
}

// SetObs registers the sequence's instruments into reg: the queue-wait
// histogram (enqueue to full consumption per client call) and gauges over
// the running counters. Call before traffic; a nil reg is a no-op.
func (s *Sequence) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.queueWait = reg.Histogram("seq_queue_wait_seconds",
		"time a client call spends queued between consensus delivery and DMT consumption")
	s.mu.Unlock()
	reg.GaugeFunc("seq_pending", "entries currently queued", func() float64 {
		return float64(s.Len())
	})
	reg.GaugeFunc("seq_enqueued_total", "entries ever enqueued", func() float64 {
		return float64(s.Stats().Enqueued)
	})
	reg.GaugeFunc("seq_bubbles_total", "time bubbles enqueued", func() float64 {
		return float64(s.Stats().Bubbles)
	})
	reg.GaugeFunc("seq_bubble_clocks_total", "logical clocks consumed from bubbles", func() float64 {
		return float64(s.Stats().BubbleClocks)
	})
}

// SetFlight installs the lane's flight-recorder journal and a lock-free
// logical-clock source for event stamps. Install before traffic; a nil
// journal disables journaling.
func (s *Sequence) SetFlight(j *flight.Journal, clock func() uint64) {
	s.mu.Lock()
	s.flight = j
	s.flightClock = clock
	s.mu.Unlock()
}

// flightEmit journals one consumption act. Called under s.mu.
func (s *Sequence) flightEmit(kind uint8, a uint64) {
	clk := uint64(0)
	if s.flightClock != nil {
		clk = s.flightClock()
	}
	pos := s.progressA.Load()
	s.flight.Emit(kind, clk, pos, a, pos)
}

// SetConsumedHook installs fn, invoked once per fully consumed client call
// (CONNECT accepted, SEND drained to its last byte, CLOSE observed). fn runs
// under the sequence lock: it must be cheap and must not call back into the
// Sequence. Install before traffic.
func (s *Sequence) SetConsumedHook(fn func(e *Entry)) {
	s.mu.Lock()
	s.consumedHook = fn
	s.mu.Unlock()
}

// Enqueue appends a decided entry (called by the proxy in consensus order).
func (s *Sequence) Enqueue(e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.enqueuedAt = time.Now() //crane:detflow-ok queue-wait histogram stamp, not serialized by Entry.marshal
	s.entries = append(s.entries, e)
	s.enqueued++
	s.payloadBytes += uint64(len(e.Data)) + 16 // payload + entry framing
	if e.Kind == KindBubble {
		s.bubbles++
	} else {
		s.clientCalls++
	}
}

// EnqueueSpec appends a speculative entry: the proposing replica's clone
// of an admitted socket call whose Accept round is still in flight.
// Speculative entries always form a contiguous queue suffix — the proxy
// only feeds while no committed entry is outstanding behind the window,
// ClearSpec promotes the suffix head in place, and TruncateSpec removes
// the whole suffix — so committed and speculative prefixes never
// interleave.
func (s *Sequence) EnqueueSpec(e *Entry) {
	e.Spec = true
	s.Enqueue(e)
}

// ClearSpec promotes a speculative entry to committed in place, stamping
// the consensus index its commit was assigned. Safe whether the entry is
// still queued, partially consumed, or already popped; the flag flip is
// under s.mu so the consumption hook observes a consistent value.
func (s *Sequence) ClearSpec(e *Entry, index uint64) {
	s.mu.Lock()
	e.Spec = false
	e.Index = index
	s.mu.Unlock()
}

// TruncateSpec removes the speculative suffix of the queue (aborted
// speculation), rolling the enqueue-side counters back so Stats reflect
// the committed stream only. Partially consumed speculative entries have
// already leaked input into the server; the caller detects that via
// SpecConsumed and escalates to a rollback. Returns how many entries were
// removed.
func (s *Sequence) TruncateSpec() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for s.pendingLocked() > 0 {
		e := s.entries[len(s.entries)-1]
		if !e.Spec {
			break
		}
		s.entries[len(s.entries)-1] = nil
		s.entries = s.entries[:len(s.entries)-1]
		s.enqueued--
		s.payloadBytes -= uint64(len(e.Data)) + 16
		if e.Kind == KindBubble {
			s.bubbles--
		} else {
			s.clientCalls--
		}
		n++
	}
	if n > 0 && s.pendingLocked() == 0 {
		s.entries = s.entries[:0]
		s.head = 0
		s.lastDrain = time.Now()
	}
	return n
}

// SpecConsumed returns the count of consumption acts against speculative
// entries (see the specConsumed field).
func (s *Sequence) SpecConsumed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.specConsumed
}

// Reset wipes the sequence back to its freshly-created state in place —
// entries, head, every counter, and the consumption position — keeping
// the installed instruments and hooks. The rollback path resets the lane
// sequences rather than replacing them so every pointer into them (socket
// layer, gate, hooks) stays valid; the fresh scheduler then replays the
// committed stream from consumption position zero.
func (s *Sequence) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.entries {
		s.entries[i] = nil
	}
	s.entries = s.entries[:0]
	s.head = 0
	s.lastDrain = time.Now()
	s.enqueued = 0
	s.bubbles = 0
	s.clientCalls = 0
	s.bubbleClocks = 0
	s.consumedCalls = 0
	s.payloadBytes = 0
	s.specConsumed = 0
	s.progressA.Store(0)
}

// pendingLocked returns the number of pending entries; headLocked the
// first pending entry. Called with s.mu held.
func (s *Sequence) pendingLocked() int { return len(s.entries) - s.head }

func (s *Sequence) headLocked() *Entry { return s.entries[s.head] }

// Empty reports whether no entry is pending.
func (s *Sequence) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingLocked() == 0
}

// Len returns the number of pending entries.
func (s *Sequence) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingLocked()
}

// Head returns a copy of the head entry without consuming it.
func (s *Sequence) Head() (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingLocked() == 0 {
		return Entry{}, false
	}
	return *s.headLocked(), true
}

// EmptyFor reports whether the sequence has been continuously empty for at
// least d (the Wtimeout test that triggers a bubble request).
func (s *Sequence) EmptyFor(d time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingLocked() == 0 && time.Since(s.lastDrain) >= d
}

// TickBubble consumes one logical clock from the head bubble, removing it
// when exhausted (Fig. 10 lines 6–7). It reports whether the head was a
// bubble.
func (s *Sequence) TickBubble() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingLocked() == 0 || s.headLocked().Kind != KindBubble {
		return false
	}
	e := s.headLocked()
	if e.NClock > 0 {
		e.NClock--
		s.bubbleClocks++
		s.progressA.Add(1)
		if e.Spec {
			s.specConsumed++
		}
	}
	if e.NClock == 0 {
		s.popLocked()
		if s.flight != nil {
			s.flightEmit(flight.EvBubble, e.Req)
		}
	}
	return true
}

// PopConnect consumes a head CONNECT entry, returning its connection id and
// port. Used by the accept() wrapper.
func (s *Sequence) PopConnect() (connID uint64, port int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingLocked() == 0 || s.headLocked().Kind != KindConnect {
		return 0, 0, false
	}
	e := s.headLocked()
	s.popLocked()
	s.consumedCalls++
	s.progressA.Add(1)
	if e.Spec {
		s.specConsumed++
	}
	if s.flight != nil {
		s.flightEmit(flight.EvConnect, e.Conn)
	}
	return e.Conn, e.Port, true
}

// ReadData consumes up to max bytes from head SEND entries belonging to
// conn ("dequeues a number of matching send() calls according to the
// actual bytes received", Fig. 11). It stops at the first non-matching
// entry. If the head is a CLOSE for conn and no bytes were read, it
// consumes the CLOSE and reports EOF.
func (s *Sequence) ReadData(conn uint64, max int) (data []byte, eof bool) {
	buf := make([]byte, max)
	n, eof := s.ReadInto(conn, buf)
	if n == 0 {
		return nil, eof
	}
	return buf[:n], eof
}

// ReadInto is the scratch-free form of ReadData: it copies head SEND bytes
// for conn directly into b, returning the byte count. The socket wrappers
// recv() through this so the data path does not allocate per call.
func (s *Sequence) ReadInto(conn uint64, b []byte) (n int, eof bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n < len(b) && s.pendingLocked() > 0 {
		e := s.headLocked()
		if e.Kind != KindSend || e.Conn != conn {
			break
		}
		c := copy(b[n:], e.Data)
		n += c
		e.Data = e.Data[c:]
		if e.Spec && c > 0 {
			// A partial read is already contamination: the bytes reached
			// the server even though the entry stays queued.
			s.specConsumed++
		}
		if len(e.Data) != 0 {
			break
		}
		s.popLocked()
		s.consumedCalls++
		s.progressA.Add(1)
		if s.flight != nil {
			s.flightEmit(flight.EvSend, conn)
		}
	}
	if n == 0 && s.pendingLocked() > 0 {
		e := s.headLocked()
		if e.Kind == KindClose && e.Conn == conn {
			if e.Spec {
				s.specConsumed++
			}
			s.popLocked()
			s.consumedCalls++
			s.progressA.Add(1)
			if s.flight != nil {
				s.flightEmit(flight.EvClose, conn)
			}
			return 0, true
		}
	}
	return n, false
}

// PopIfConn discards a head SEND/CLOSE entry belonging to conn. Used to
// drain calls addressed to a connection the server has already closed,
// which no recv() will ever consume.
func (s *Sequence) PopIfConn(conn uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingLocked() == 0 {
		return false
	}
	e := s.headLocked()
	if (e.Kind != KindSend && e.Kind != KindClose) || e.Conn != conn {
		return false
	}
	if e.Spec {
		s.specConsumed++
	}
	s.popLocked()
	s.consumedCalls++
	s.progressA.Add(1)
	if s.flight != nil {
		if e.Kind == KindClose {
			s.flightEmit(flight.EvClose, conn)
		} else {
			s.flightEmit(flight.EvSend, conn)
		}
	}
	return true
}

// Progress returns the sequence's consumption position: total bubble
// clocks plus fully consumed client calls. Because both advance only as
// entries of the committed stream are consumed — never on enqueue, never
// on a partial SEND read — the value is a pure function of how far the
// consumer has worked through the decided prefix, which makes it
// replica-deterministic at every consumer operation. CRANE's gate reports
// it as the cross-lane merge stamp (dmt.LaneStampGate). Lock-free.
func (s *Sequence) Progress() uint64 { return s.progressA.Load() }

func (s *Sequence) popLocked() {
	e := s.entries[s.head]
	s.entries[s.head] = nil
	s.head++
	if s.head == len(s.entries) {
		// Drained: rewind onto the same backing array so the next burst
		// appends without growing.
		s.entries = s.entries[:0]
		s.head = 0
		s.lastDrain = time.Now()
	} else if s.head >= 32 && s.head*2 >= len(s.entries) {
		// Compact once the consumed prefix dominates, capping growth of
		// the dead prefix under a standing backlog.
		live := copy(s.entries, s.entries[s.head:])
		clearTail := s.entries[live:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		s.entries = s.entries[:live]
		s.head = 0
	}
	if e.Kind != KindBubble {
		if s.queueWait != nil && !e.enqueuedAt.IsZero() {
			s.queueWait.Since(e.enqueuedAt)
		}
		if s.consumedHook != nil {
			s.consumedHook(e)
		}
	}
}

// Stats is a snapshot of sequence counters; Table 1 is computed from it.
type Stats struct {
	Enqueued     uint64 // all entries ever enqueued
	Bubbles      uint64 // time bubbles enqueued
	ClientCalls  uint64 // client socket calls enqueued
	BubbleClocks uint64 // logical clocks consumed from bubbles
	Consumed     uint64 // client socket calls fully consumed
	Pending      int    // entries currently queued
	PayloadBytes uint64 // total consensus payload bytes enqueued
}

// Stats returns a snapshot of the counters.
func (s *Sequence) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Enqueued:     s.enqueued,
		Bubbles:      s.bubbles,
		ClientCalls:  s.clientCalls,
		BubbleClocks: s.bubbleClocks,
		Consumed:     s.consumedCalls,
		Pending:      s.pendingLocked(),
		PayloadBytes: s.payloadBytes,
	}
}

// BubbleRatio returns the fraction of consensus requests that were time
// bubbles (Table 1's rightmost column), or 0 if nothing was enqueued.
func (st Stats) BubbleRatio() float64 {
	if st.Enqueued == 0 {
		return 0
	}
	return float64(st.Bubbles) / float64(st.Enqueued)
}
