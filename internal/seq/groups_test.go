package seq

import (
	"fmt"
	"reflect"
	"testing"
)

// collectGroups builds a Groups over n groups that appends emitted entries
// to a slice.
func collectGroups(n int) (*Groups, *[]*Entry) {
	var out []*Entry
	g := NewGroups(n, func(e *Entry) { out = append(out, e) })
	// The pointer must be taken after NewGroups captured the closure over
	// the slice variable, so return the address of the variable itself.
	return g, &out
}

func stampedEntry(stamp, conn uint64) *Entry {
	return &Entry{Kind: KindSend, Conn: conn, Stamp: stamp}
}

func TestGroupsSinglePassThrough(t *testing.T) {
	g, out := collectGroups(1)
	for i := uint64(1); i <= 5; i++ {
		g.Deliver(0, stampedEntry(i, i))
	}
	if len(*out) != 5 {
		t.Fatalf("pass-through emitted %d of 5", len(*out))
	}
	for i, e := range *out {
		if e.Conn != uint64(i+1) {
			t.Fatalf("entry %d: conn %d, want %d (delivery order)", i, e.Conn, i+1)
		}
	}
	if g.Pending() != 0 {
		t.Fatalf("single-group merge parked %d entries", g.Pending())
	}
}

// TestGroupsMergeDeterministic delivers the same per-group committed
// streams under different real-time interleavings and requires the
// identical emission order — the property that keeps replicas' lane
// queues bit-identical no matter how their delivery goroutines race.
func TestGroupsMergeDeterministic(t *testing.T) {
	mkStreams := func() [2][]*Entry {
		var s [2][]*Entry
		// Group 0: stamps 1,4,5,9; group 1: stamps 2,3,7,8 with a bubble
		// vector covering group 0 to keep the merge live at the tail.
		for _, st := range []uint64{1, 4, 5, 9} {
			s[0] = append(s[0], stampedEntry(st, 100+st))
		}
		for _, st := range []uint64{2, 3, 7} {
			s[1] = append(s[1], stampedEntry(st, 200+st))
		}
		s[1] = append(s[1], &Entry{Kind: KindBubble, NClock: 1, Stamp: 8, Vec: []uint64{9, 8}})
		return s
	}
	interleavings := [][]int{
		{0, 0, 0, 0, 1, 1, 1, 1},
		{1, 1, 1, 1, 0, 0, 0, 0},
		{0, 1, 0, 1, 0, 1, 0, 1},
		{1, 0, 1, 0, 1, 0, 1, 0},
		{0, 1, 1, 0, 0, 1, 1, 0},
	}
	// Hand-computed merge: 1..5 in stamp order, 7, then the bubble at
	// eff 8 (its vector lifts W[0] to 9). Group 0's tail entry stamped 9
	// gets eff 10 and legitimately parks — group 1 is empty with
	// watermark 8, so a stamp in (8,10) could still arrive there; the
	// next bubble round releases it in production.
	want := []uint64{1, 2, 3, 4, 5, 7, 8}
	for vi, order := range interleavings {
		g, out := collectGroups(2)
		streams := mkStreams()
		pos := [2]int{}
		for _, gi := range order {
			g.Deliver(gi, streams[gi][pos[gi]])
			pos[gi]++
		}
		var got []uint64
		for _, e := range *out {
			got = append(got, e.Stamp)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interleaving %d emitted %v, want %v", vi, got, want)
		}
		if g.Pending() != 1 {
			t.Fatalf("interleaving %d parked %d entries, want 1", vi, g.Pending())
		}
	}
}

// TestGroupsEmptyGroupGating: entries from one group must not be emitted
// while another group is empty with a watermark below them — a not-yet-
// delivered entry could still sort first — and a bubble vector raising the
// idle group's watermark releases them.
func TestGroupsEmptyGroupGating(t *testing.T) {
	g, out := collectGroups(2)
	g.Deliver(0, stampedEntry(3, 1))
	g.Deliver(0, stampedEntry(5, 2))
	if len(*out) != 0 {
		t.Fatalf("emitted %d entries behind an empty group", len(*out))
	}
	// Group 1's bubble stamped 4 emits after the 3 but before the 5, and
	// its vector {5,4} raises group 1's own watermark... the entry stamped
	// 5 from group 0 then clears the gate (W[1]=4 < 5 still blocks it —
	// until the vector is applied W[1] must reach >= 5).
	g.Deliver(1, &Entry{Kind: KindBubble, NClock: 1, Stamp: 4, Vec: []uint64{5, 6}})
	var stamps []uint64
	for _, e := range *out {
		stamps = append(stamps, e.Stamp)
	}
	if !reflect.DeepEqual(stamps, []uint64{3, 4, 5}) {
		t.Fatalf("emitted stamps %v, want [3 4 5]", stamps)
	}
	if w := g.Watermark(1); w != 6 {
		t.Fatalf("group 1 watermark %d after vector, want 6", w)
	}
}

// TestGroupsStragglerStampBump: a failover can make a new primary assign
// stamps below what its predecessor already committed. The effective-stamp
// bump (eff = max(stamp, W[g]+1)) must keep each group's effective stream
// strictly monotone and the merge order a pure function of stream
// contents.
func TestGroupsStragglerStampBump(t *testing.T) {
	g, out := collectGroups(2)
	g.Deliver(0, stampedEntry(25, 1))
	g.Deliver(1, &Entry{Kind: KindBubble, NClock: 1, Stamp: 20, Vec: []uint64{0, 20}})
	g.Deliver(1, &Entry{Kind: KindBubble, NClock: 1, Stamp: 30, Vec: []uint64{0, 30}})
	// Straggler: a post-failover primary stamps below group 0's emitted
	// prefix. eff = max(5, W[0]+1=26) = 26 keeps group 0 FIFO and sorts
	// it before the parked bubble at 30 — on every replica identically.
	g.Deliver(0, stampedEntry(5, 2))
	var stamps, conns []uint64
	for _, e := range *out {
		stamps = append(stamps, e.Stamp)
		conns = append(conns, e.Conn)
	}
	if !reflect.DeepEqual(stamps, []uint64{20, 25, 5}) || !reflect.DeepEqual(conns, []uint64{0, 1, 2}) {
		t.Fatalf("emitted stamps %v conns %v; want stamps [20 25 5], conns [0 1 2]", stamps, conns)
	}
	if w := g.Watermark(0); w != 26 {
		t.Fatalf("group 0 watermark %d, want 26 (bumped past the straggler)", w)
	}
	if g.Pending() != 1 { // the stamp-30 bubble waits for group 0's watermark
		t.Fatalf("pending %d, want 1", g.Pending())
	}
}

// TestGroupsResetGroupPreservesOthers is the satellite-6 regression test:
// the rollback path's queue reset is group-scoped, so resetting one
// group's parked entries cannot discard another group's pending entries.
func TestGroupsResetGroupPreservesOthers(t *testing.T) {
	// Three groups; group 2 stays silent so everything parks behind its
	// zero watermark until its bubble arrives.
	g, out := collectGroups(3)
	g.Deliver(0, stampedEntry(3, 1))
	g.Deliver(1, stampedEntry(5, 2))
	if len(*out) != 0 {
		t.Fatalf("setup: emitted %v, want nothing (group 2 silent)", *out)
	}
	if g.PendingGroup(0) != 1 || g.PendingGroup(1) != 1 {
		t.Fatalf("setup: pending %d/%d, want 1/1", g.PendingGroup(0), g.PendingGroup(1))
	}
	if dropped := g.ResetGroup(0); dropped != 1 {
		t.Fatalf("ResetGroup(0) dropped %d, want 1", dropped)
	}
	if got := g.PendingGroup(1); got != 1 {
		t.Fatalf("ResetGroup(0) discarded group 1's pending entry")
	}
	// A bubble round reaches every group (that is what keeps the merge
	// live); group 1's surviving entry must emit once the round lands.
	g.Deliver(0, &Entry{Kind: KindBubble, NClock: 1, Stamp: 7, Vec: []uint64{7, 0, 0}})
	g.Deliver(2, &Entry{Kind: KindBubble, NClock: 1, Stamp: 1, Vec: []uint64{0, 0, 9}})
	var stamps, conns []uint64
	for _, e := range *out {
		stamps = append(stamps, e.Stamp)
		conns = append(conns, e.Conn)
	}
	if !reflect.DeepEqual(stamps, []uint64{1, 5}) || !reflect.DeepEqual(conns, []uint64{0, 2}) {
		t.Fatalf("emitted stamps %v conns %v; want group 1's entry (conn 2) to survive the reset", stamps, conns)
	}
}

// TestGroupsStampWire round-trips the stamp and vector through the wire
// format alongside the legacy fields.
func TestGroupsStampWire(t *testing.T) {
	for _, e := range []*Entry{
		{Kind: KindSend, Conn: 7, Data: []byte("abc"), Stamp: 42},
		{Kind: KindBubble, NClock: 9, Stamp: 17, Vec: []uint64{17, 3, 0, 8}},
		{Kind: KindConnect, Conn: 1, Port: 80},
	} {
		b, err := e.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		d, err := Decode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if d.Stamp != e.Stamp || !reflect.DeepEqual(d.Vec, e.Vec) ||
			d.Kind != e.Kind || string(d.Data) != string(e.Data) || d.NClock != e.NClock {
			t.Fatalf("round trip mismatch: %+v vs %+v", d, e)
		}
	}
	// Corrupt vector length must be rejected, not read out of bounds.
	e := &Entry{Kind: KindBubble, NClock: 1, Vec: []uint64{1, 2}}
	b, _ := e.Encode()
	b[49] = 0xff
	b[50] = 0xff
	if _, err := Decode(b); err == nil {
		t.Fatal("decode accepted a vector length past the payload")
	}
}

func BenchmarkGroupsMerge4(b *testing.B) {
	g := NewGroups(4, func(*Entry) {})
	ents := make([]*Entry, 256)
	for i := range ents {
		ents[i] = &Entry{Kind: KindSend, Conn: uint64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ents[i%len(ents)]
		e.Stamp = uint64(i + 1)
		gi := i % 4
		e.Vec = nil
		if gi == 0 {
			e.Kind = KindBubble
			e.Vec = []uint64{uint64(i + 1), uint64(i + 1), uint64(i + 1), uint64(i + 1)}
		} else {
			e.Kind = KindSend
		}
		g.Deliver(gi, e)
	}
	_ = fmt.Sprintf("%d", g.Pending())
}
