package seq

import (
	"testing"
)

// TestEnqueueSpecAndClear covers the speculative entry lifecycle of the
// hit path: a clone enters tagged Spec, is consumed like any committed
// entry, and ClearSpec promotes it in place when its commit confirms.
func TestEnqueueSpecAndClear(t *testing.T) {
	s := New()
	e := &Entry{Kind: KindSend, Conn: 7, Data: []byte("hello")}
	s.EnqueueSpec(e)
	if !e.Spec {
		t.Fatal("EnqueueSpec did not tag the entry")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.ClearSpec(e, 42)
	if e.Spec {
		t.Fatal("ClearSpec left the Spec flag set")
	}
	if e.Index != 42 {
		t.Fatalf("ClearSpec stamped Index %d, want 42", e.Index)
	}
	// Consumption after promotion must not count as speculative.
	buf := make([]byte, 16)
	if n, _ := s.ReadInto(7, buf); n != 5 {
		t.Fatalf("ReadInto consumed %d bytes", n)
	}
	if got := s.SpecConsumed(); got != 0 {
		t.Fatalf("SpecConsumed = %d after consuming a promoted entry", got)
	}
}

// TestSpecConsumedCountsEveryPath verifies that each consumption act
// against a speculative entry — bubble tick, connect pop, full read,
// close-EOF, and drain pop — bumps the contamination counter the abort
// path keys its light-vs-rollback decision on.
func TestSpecConsumedCountsEveryPath(t *testing.T) {
	s := New()
	s.EnqueueSpec(&Entry{Kind: KindBubble, NClock: 2})
	s.TickBubble()
	if got := s.SpecConsumed(); got != 1 {
		t.Fatalf("SpecConsumed = %d after one spec bubble tick", got)
	}
	s.TickBubble() // exhausts the bubble
	s.EnqueueSpec(&Entry{Kind: KindConnect, Conn: 3, Port: 80})
	if _, _, ok := s.PopConnect(); !ok {
		t.Fatal("PopConnect failed")
	}
	s.EnqueueSpec(&Entry{Kind: KindSend, Conn: 3, Data: []byte("ab")})
	if n, _ := s.ReadInto(3, make([]byte, 4)); n != 2 {
		t.Fatalf("ReadInto = %d", n)
	}
	s.EnqueueSpec(&Entry{Kind: KindClose, Conn: 3})
	if _, eof := s.ReadInto(3, make([]byte, 4)); !eof {
		t.Fatal("close entry did not EOF")
	}
	s.EnqueueSpec(&Entry{Kind: KindSend, Conn: 9, Data: []byte("x")})
	if !s.PopIfConn(9) {
		t.Fatal("PopIfConn failed")
	}
	if got := s.SpecConsumed(); got != 6 {
		t.Fatalf("SpecConsumed = %d, want 6 (2 ticks + connect + send + close + drain)", got)
	}
}

// TestSpecConsumedPartialRead pins the contamination rule for partial
// reads: bytes that reached the server count even though the entry stays
// queued.
func TestSpecConsumedPartialRead(t *testing.T) {
	s := New()
	s.EnqueueSpec(&Entry{Kind: KindSend, Conn: 1, Data: []byte("abcdef")})
	if n, _ := s.ReadInto(1, make([]byte, 2)); n != 2 {
		t.Fatalf("partial ReadInto = %d", n)
	}
	if got := s.SpecConsumed(); got != 1 {
		t.Fatalf("SpecConsumed = %d after a partial read", got)
	}
	if s.Len() != 1 {
		t.Fatal("partially read entry left the queue")
	}
}

// TestTruncateSpecRemovesOnlySpecSuffix verifies an abort's truncation:
// the speculative suffix goes, committed entries stay, and the
// enqueue-side counters roll back to the committed stream.
func TestTruncateSpecRemovesOnlySpecSuffix(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 1, Data: []byte("keep")})
	s.EnqueueSpec(&Entry{Kind: KindConnect, Conn: 2, Port: 80})
	s.EnqueueSpec(&Entry{Kind: KindSend, Conn: 2, Data: []byte("drop")})
	s.EnqueueSpec(&Entry{Kind: KindBubble, NClock: 5})
	if n := s.TruncateSpec(); n != 3 {
		t.Fatalf("TruncateSpec removed %d entries, want 3", n)
	}
	st := s.Stats()
	if st.Pending != 1 || st.Enqueued != 1 || st.ClientCalls != 1 || st.Bubbles != 0 {
		t.Fatalf("post-truncate stats = %+v", st)
	}
	if st.PayloadBytes != uint64(len("keep"))+16 {
		t.Fatalf("PayloadBytes = %d after truncate", st.PayloadBytes)
	}
	h, ok := s.Head()
	if !ok || h.Index != 1 {
		t.Fatalf("head after truncate = %+v, %v", h, ok)
	}
	// A committed entry below the suffix is a hard floor: nothing left to
	// truncate.
	if n := s.TruncateSpec(); n != 0 {
		t.Fatalf("second TruncateSpec removed %d entries", n)
	}
}

// TestResetRestoresFreshState verifies the rollback path's in-place wipe:
// every counter and the consumption position return to genesis while the
// Sequence pointer (held by the gate, hooks, and socket layer) stays
// valid.
func TestResetRestoresFreshState(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindBubble, NClock: 3})
	s.Enqueue(&Entry{Index: 2, Kind: KindSend, Conn: 1, Data: []byte("abc")})
	s.TickBubble()
	s.EnqueueSpec(&Entry{Kind: KindSend, Conn: 1, Data: []byte("zz")})
	s.ReadInto(1, make([]byte, 1))
	s.Reset()
	st := s.Stats()
	if st != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", st)
	}
	if s.SpecConsumed() != 0 || s.Progress() != 0 || !s.Empty() {
		t.Fatalf("Reset left state: specConsumed=%d progress=%d empty=%v",
			s.SpecConsumed(), s.Progress(), s.Empty())
	}
	// The sequence is immediately reusable for replay.
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 4, Data: []byte("replay")})
	if n, _ := s.ReadInto(4, make([]byte, 8)); n != 6 {
		t.Fatalf("post-Reset ReadInto = %d", n)
	}
}
