package seq

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := &Entry{Index: 7, Kind: KindSend, Conn: 3, Port: 80, Data: []byte("GET / HTTP/1.0\r\n")}
	b, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 7 || got.Kind != KindSend || got.Conn != 3 || got.Port != 80 || !bytes.Equal(got.Data, e.Data) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("Decode of garbage succeeded")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindConnect: "CONNECT", KindSend: "SEND", KindClose: "CLOSE",
		KindBubble: "BUBBLE", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEnqueueHeadOrder(t *testing.T) {
	s := New()
	if !s.Empty() {
		t.Fatal("new sequence not empty")
	}
	s.Enqueue(&Entry{Index: 1, Kind: KindConnect, Conn: 10})
	s.Enqueue(&Entry{Index: 2, Kind: KindSend, Conn: 10, Data: []byte("x")})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	h, ok := s.Head()
	if !ok || h.Kind != KindConnect || h.Index != 1 {
		t.Fatalf("Head = %+v, %v", h, ok)
	}
}

func TestPopConnect(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindConnect, Conn: 42, Port: 8080})
	conn, port, ok := s.PopConnect()
	if !ok || conn != 42 || port != 8080 {
		t.Fatalf("PopConnect = %d, %d, %v", conn, port, ok)
	}
	if _, _, ok := s.PopConnect(); ok {
		t.Fatal("PopConnect on empty succeeded")
	}
	// PopConnect must not consume a non-connect head.
	s.Enqueue(&Entry{Index: 2, Kind: KindSend, Conn: 42})
	if _, _, ok := s.PopConnect(); ok {
		t.Fatal("PopConnect consumed a SEND")
	}
	if s.Len() != 1 {
		t.Fatal("PopConnect disturbed the queue")
	}
}

func TestReadDataPartialConsumption(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 1, Data: []byte("abcdefgh")})
	data, eof := s.ReadData(1, 3)
	if eof || string(data) != "abc" {
		t.Fatalf("ReadData = %q, eof=%v", data, eof)
	}
	// Remainder stays at the head for the next recv.
	data, eof = s.ReadData(1, 100)
	if eof || string(data) != "defgh" {
		t.Fatalf("second ReadData = %q, eof=%v", data, eof)
	}
	if !s.Empty() {
		t.Fatal("drained SEND entry not removed")
	}
}

func TestReadDataSpansMultipleSends(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 1, Data: []byte("aa")})
	s.Enqueue(&Entry{Index: 2, Kind: KindSend, Conn: 1, Data: []byte("bb")})
	s.Enqueue(&Entry{Index: 3, Kind: KindSend, Conn: 2, Data: []byte("ZZ")})
	data, eof := s.ReadData(1, 10)
	if eof || string(data) != "aabb" {
		t.Fatalf("ReadData = %q, eof=%v", data, eof)
	}
	// Conn 2's entry must be untouched.
	data, _ = s.ReadData(2, 10)
	if string(data) != "ZZ" {
		t.Fatalf("conn 2 ReadData = %q", data)
	}
}

func TestReadDataWrongConnBlocked(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 7, Data: []byte("for-seven")})
	data, eof := s.ReadData(8, 10)
	if len(data) != 0 || eof {
		t.Fatalf("ReadData for wrong conn = %q, eof=%v", data, eof)
	}
	if s.Len() != 1 {
		t.Fatal("wrong-conn read disturbed the queue")
	}
}

func TestReadDataEOFOnClose(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindClose, Conn: 5})
	data, eof := s.ReadData(5, 10)
	if !eof || len(data) != 0 {
		t.Fatalf("ReadData on CLOSE = %q, eof=%v", data, eof)
	}
	if !s.Empty() {
		t.Fatal("CLOSE not consumed")
	}
	// CLOSE for a different conn is not consumed.
	s.Enqueue(&Entry{Index: 2, Kind: KindClose, Conn: 6})
	if _, eof := s.ReadData(5, 10); eof {
		t.Fatal("consumed another conn's CLOSE")
	}
}

func TestReadDataDataBeforeClose(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindSend, Conn: 1, Data: []byte("final")})
	s.Enqueue(&Entry{Index: 2, Kind: KindClose, Conn: 1})
	data, eof := s.ReadData(1, 10)
	if eof || string(data) != "final" {
		t.Fatalf("ReadData = %q, eof=%v (data must come before EOF)", data, eof)
	}
	data, eof = s.ReadData(1, 10)
	if !eof || len(data) != 0 {
		t.Fatalf("second ReadData = %q, eof=%v", data, eof)
	}
}

func TestTickBubble(t *testing.T) {
	s := New()
	s.Enqueue(&Entry{Index: 1, Kind: KindBubble, NClock: 3})
	s.Enqueue(&Entry{Index: 2, Kind: KindConnect, Conn: 1})
	for i := 0; i < 3; i++ {
		if !s.TickBubble() {
			t.Fatalf("TickBubble #%d returned false", i)
		}
	}
	// Bubble exhausted: head is now the CONNECT.
	if s.TickBubble() {
		t.Fatal("TickBubble on CONNECT head returned true")
	}
	if h, _ := s.Head(); h.Kind != KindConnect {
		t.Fatalf("head after bubble = %v", h.Kind)
	}
}

func TestEmptyFor(t *testing.T) {
	s := New()
	time.Sleep(2 * time.Millisecond)
	if !s.EmptyFor(time.Millisecond) {
		t.Fatal("EmptyFor false on long-empty sequence")
	}
	s.Enqueue(&Entry{Index: 1, Kind: KindConnect})
	if s.EmptyFor(0) {
		t.Fatal("EmptyFor true on non-empty sequence")
	}
	s.PopConnect()
	if s.EmptyFor(time.Hour) {
		t.Fatal("EmptyFor true immediately after drain")
	}
	time.Sleep(2 * time.Millisecond)
	if !s.EmptyFor(time.Millisecond) {
		t.Fatal("EmptyFor false after drain + wait")
	}
}

func TestStatsAndBubbleRatio(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		s.Enqueue(&Entry{Index: uint64(i), Kind: KindSend, Conn: 1, Data: []byte("d")})
	}
	for i := 0; i < 2; i++ {
		s.Enqueue(&Entry{Index: uint64(6 + i), Kind: KindBubble, NClock: 5})
	}
	st := s.Stats()
	if st.Enqueued != 8 || st.Bubbles != 2 || st.ClientCalls != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.BubbleRatio(); r < 0.24 || r > 0.26 {
		t.Fatalf("BubbleRatio = %f, want 0.25", r)
	}
	if (Stats{}).BubbleRatio() != 0 {
		t.Fatal("BubbleRatio of empty stats != 0")
	}
}

// Property: any split of a payload into SEND entries and any split of the
// reads returns exactly the original byte stream followed by EOF.
func TestQuickReassembly(t *testing.T) {
	f := func(payload []byte, splits []uint8, reads []uint8) bool {
		s := New()
		rest := payload
		idx := uint64(1)
		for _, sp := range splits {
			if len(rest) == 0 {
				break
			}
			n := int(sp)%len(rest) + 1
			s.Enqueue(&Entry{Index: idx, Kind: KindSend, Conn: 9, Data: append([]byte{}, rest[:n]...)})
			idx++
			rest = rest[n:]
		}
		if len(rest) > 0 {
			s.Enqueue(&Entry{Index: idx, Kind: KindSend, Conn: 9, Data: append([]byte{}, rest...)})
			idx++
		}
		s.Enqueue(&Entry{Index: idx, Kind: KindClose, Conn: 9})
		var got []byte
		for {
			n := 1
			if len(reads) > 0 {
				n = int(reads[0])%64 + 1
				reads = reads[1:]
			}
			data, eof := s.ReadData(9, n)
			got = append(got, data...)
			if eof {
				break
			}
			if len(data) == 0 && len(got) == len(payload) {
				continue // next read consumes the CLOSE
			}
			if len(data) == 0 {
				return false // stuck before stream ended
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeBatch(t *testing.T) {
	burst := []*Entry{
		{Index: 1, Kind: KindConnect, Conn: 5, Port: 8080},
		{Index: 2, Kind: KindSend, Conn: 5, Data: []byte("hello")},
		{Index: 3, Kind: KindBubble, NClock: 1000},
		{Index: 4, Kind: KindSend, Conn: 5, Data: nil},
		{Index: 5, Kind: KindClose, Conn: 5},
	}
	payloads, err := EncodeBatch(burst)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(burst) {
		t.Fatalf("%d payloads", len(payloads))
	}
	// Each payload must also decode individually (batch framing is not a
	// separate wire format — every payload is one consensus value).
	for i, p := range payloads {
		e, err := Decode(p)
		if err != nil {
			t.Fatalf("Decode(%d): %v", i, err)
		}
		if e.Kind != burst[i].Kind || e.Conn != burst[i].Conn ||
			e.Port != burst[i].Port || e.NClock != burst[i].NClock ||
			!bytes.Equal(e.Data, burst[i].Data) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, burst[i])
		}
	}
	got, err := DecodeBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range burst {
		if got[i].Kind != burst[i].Kind || got[i].Index != burst[i].Index {
			t.Fatalf("batch entry %d = %+v", i, got[i])
		}
	}
	// The bubble survives in its in-burst position.
	if got[2].Kind != KindBubble || got[2].NClock != 1000 {
		t.Fatalf("bubble lost: %+v", got[2])
	}
}

func TestDecodeBatchRejectsCorrupt(t *testing.T) {
	p1, _ := (&Entry{Kind: KindSend, Conn: 1, Data: []byte("ok")}).Encode()
	if _, err := DecodeBatch([][]byte{p1, []byte("torn")}); err == nil {
		t.Fatal("corrupt batch accepted")
	}
	// Truncated data length mismatch is caught.
	p2, _ := (&Entry{Kind: KindSend, Conn: 1, Data: []byte("0123456789")}).Encode()
	if _, err := Decode(p2[:len(p2)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestEncodeQuickRoundTrip(t *testing.T) {
	f := func(conn uint64, port int32, nclock uint64, data []byte, kindSel uint8) bool {
		e := &Entry{
			Kind: Kind(kindSel%4) + KindConnect, Conn: conn,
			Port: int(port), NClock: nclock, Data: data,
		}
		b, err := e.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		sameData := bytes.Equal(got.Data, e.Data)
		return got.Kind == e.Kind && got.Conn == e.Conn &&
			got.Port == e.Port && got.NClock == e.NClock && sameData
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
