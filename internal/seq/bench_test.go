package seq

import "testing"

// BenchmarkEnqueueRead measures the proxy→server hot path: enqueue a
// decided SEND and consume it through ReadInto, the socket wrappers'
// recv() primitive. The single alloc/op is the Entry itself (arena-
// amortized in the real delivery path).
func BenchmarkEnqueueRead(b *testing.B) {
	s := New()
	payload := []byte("GET /page0.php HTTP/1.0\r\n\r\n")
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(&Entry{Index: uint64(i), Kind: KindSend, Conn: 1, Data: payload})
		if n, _ := s.ReadInto(1, buf); n == 0 {
			b.Fatal("no data")
		}
	}
}

// BenchmarkTickBubble measures bubble-clock consumption, the per-sync-op
// cost the DMT gate adds while a bubble is at the head.
func BenchmarkTickBubble(b *testing.B) {
	s := New()
	s.Enqueue(&Entry{Index: 0, Kind: KindBubble, NClock: uint64(b.N) + 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.TickBubble() {
			b.Fatal("bubble exhausted early")
		}
	}
}

// BenchmarkHead measures the gate's head inspection (run on every
// scheduled operation).
func BenchmarkHead(b *testing.B) {
	s := New()
	s.Enqueue(&Entry{Index: 0, Kind: KindSend, Conn: 9, Data: []byte("x")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Head(); !ok {
			b.Fatal("no head")
		}
	}
}

// BenchmarkEncodeDecode measures consensus payload serialization.
func BenchmarkEncodeDecode(b *testing.B) {
	e := &Entry{Index: 42, Kind: KindSend, Conn: 7, Data: make([]byte, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := e.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeBatch measures burst marshaling: 64 SEND entries encoded
// into consensus payloads per op (compare 64x BenchmarkEncodeDecode's
// encode half under gob, which allocated an encoder per entry).
func BenchmarkEncodeBatch(b *testing.B) {
	burst := make([]*Entry, 64)
	for i := range burst {
		burst[i] = &Entry{Index: uint64(i), Kind: KindSend, Conn: 7, Data: make([]byte, 256)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payloads, err := EncodeBatch(burst)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeBatch(payloads); err != nil {
			b.Fatal(err)
		}
	}
}
