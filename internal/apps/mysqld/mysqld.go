// Package mysqld reimplements the concurrency structure of the MySQL
// server evaluated in §7: thread-per-connection workers over a listener,
// a catalog lock, and *fine-grained per-table mutexes and reader-writer
// locks* — the paper attributes MySQL's highest CRANE overhead (Figure 14)
// to exactly this frequent fine-grained locking. The SQL dialect covers
// what the SysBench-style workload issues: CREATE TABLE, INSERT, SELECT
// (point and range), UPDATE, and DELETE.
//
// Tables persist to per-table files in the container filesystem; SysBench
// populates a large database, which is why MySQL's filesystem checkpoint
// dwarfs the others in Table 2.
package mysqld

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the server.
type Config struct {
	// Workers is the connection-worker pool size (default 10).
	Workers int
	// WorkPerRow is compute per row touched (index scan, comparison).
	WorkPerRow int
	// WorkPerQuery is fixed compute per statement (parse, plan, session
	// bookkeeping). Default 200.
	WorkPerQuery int
	// Port is the listening port (default 3306).
	Port int
	// Persist mirrors committed writes into per-table files.
	Persist bool
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Workers: 10, WorkPerRow: 3, WorkPerQuery: 200, Port: 3306, Persist: true}
}

// Program packages the server for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 3306
	}
	if cfg.Workers == 0 {
		cfg.Workers = 10
	}
	if cfg.WorkPerRow == 0 {
		cfg.WorkPerRow = 3
	}
	if cfg.WorkPerQuery == 0 {
		cfg.WorkPerQuery = 200
	}
	return papi.Program{
		Name:    "mysqld",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
		// Sessions conflict only through tables; the SysBench-style clients
		// pin each connection to one table, so routing connections
		// round-robin across lanes approximates a per-table partition. The
		// catalog and per-table locks stay cross-lane (unbound), keeping
		// cross-partition statements correct — just slower, as in the paper.
		// The SysBench working set is one shared table whose reader-writer
		// lock every session crosses lanes for, so lanes beyond two only
		// multiply the bubble-paced merge waits each cross-lane acquire
		// pays (the 8-lane regression in BENCH_lanes.json); MaxUseful caps
		// a deployment's request at the measured sweet spot.
		Conflict: &papi.ConflictMap{MaxUseful: 2},
	}
}

// Install writes server configuration into the container image.
func Install(fs *cfs.FS) {
	fs.Write("etc/my.cnf", []byte("[mysqld]\ndatadir=data\nmax_connections=64\n"))
	fs.Write("data/.keep", []byte(""))
}

// table is one in-memory table with its lock discipline.
type table struct {
	lock papi.RWMutex // per-table reader-writer lock
	meta papi.Mutex   // per-table metadata mutex (stats, autoinc)

	Cols    []string
	Rows    [][]string
	Index   map[string][]int // first column value -> row positions
	AutoInc int
}

// Server is one replica-local mysqld instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	stateMu sync.Mutex //crane:nondet-ok guards Go map internals under per-table papi locks; Snapshot runs off-schedule so this cannot be a papi.Mutex
	tables  map[string]*table
	queries uint64
	// restored holds snapshot table state until Run can rebuild lock
	// objects for it (locks are runtime-bound, not serializable).
	restored map[string]tableState
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs, tables: make(map[string]*table)}
}

type tableState struct {
	Cols    []string
	Rows    [][]string
	AutoInc int
}

type snapState struct {
	Tables  map[string]tableState
	Queries uint64
}

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	st := snapState{Tables: make(map[string]tableState, len(s.tables)), Queries: s.queries}
	for name, t := range s.tables {
		st.Tables[name] = tableState{Cols: t.Cols, Rows: t.Rows, AutoInc: t.AutoInc}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// Restore implements papi.Instance. Locks are rebuilt lazily in Run's
// environment; restored tables get fresh lock objects on first use.
func (s *Server) Restore(b []byte) error {
	var st snapState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.queries = st.Queries
	s.restored = st.Tables
	return nil
}

// Queries returns the processed-statement counter.
func (s *Server) Queries() uint64 {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.queries
}

// TableRows returns the row count of a table (test observability).
func (s *Server) TableRows(name string) int {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if t, ok := s.tables[name]; ok {
		return len(t.Rows)
	}
	return 0
}

// Run implements papi.Instance.
func (s *Server) Run(t papi.T) {
	// Materialize restored tables with fresh lock objects.
	s.stateMu.Lock()
	for name, ts := range s.restored {
		tb := &table{lock: t.NewRWMutex(), meta: t.NewMutex(),
			Cols: ts.Cols, Rows: ts.Rows, AutoInc: ts.AutoInc}
		tb.rebuildIndex()
		s.tables[name] = tb
	}
	s.restored = nil
	s.stateMu.Unlock()

	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	// catalogMu and the per-table locks are created unbound: with lanes
	// they become cross-lane locks automatically, so statements that cross
	// a lane's partition stay correct (they pay the cross-lane cost the
	// paper attributes to MySQL's fine-grained locking).
	catalogMu := t.NewMutex()
	if t.Lanes() > 1 {
		s.runLanes(t, l, catalogMu)
		return
	}
	var (
		conns []papi.Conn
		cMu   = t.NewMutex()
		cCv   = t.NewCond()
	)
	for i := 0; i < s.cfg.Workers; i++ {
		t.Spawn(fmt.Sprintf("sql-worker%d", i), func(wt papi.T) {
			for !wt.Killed() {
				cMu.Lock(wt)
				for len(conns) == 0 {
					cCv.Wait(wt, cMu)
				}
				c := conns[0]
				conns = conns[1:]
				cMu.Unlock(wt)
				s.session(wt, c, catalogMu)
			}
		})
	}
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		cMu.Lock(t)
		conns = append(conns, c)
		cMu.Unlock(t)
		cCv.Signal(t)
	}
}

// laneQueue is one lane's private connection queue.
type laneQueue struct {
	conns []papi.Conn
	cMu   papi.Mutex
	cCv   papi.Cond
}

// runLanes is the conflict-partitioned structure: each lane runs its own
// acceptor and a share of the worker pool over a lane-private connection
// queue. Sessions themselves are unchanged — table access synchronizes
// through the cross-lane catalog and per-table locks.
//
// Each lane is built by its own lane-main thread (the bootstrap discipline
// cross-lane spawns require): the lane main creates the lane's queue and
// worker pool with in-lane spawns, then becomes the lane's acceptor.
func (s *Server) runLanes(t papi.T, l papi.Listener, catalogMu papi.Mutex) {
	lanes := t.Lanes()
	laneMain := func(lt papi.T, lane int) {
		workers := s.cfg.Workers / lanes
		if lane < s.cfg.Workers%lanes {
			workers++
		}
		if workers < 1 {
			workers = 1
		}
		q := &laneQueue{cMu: lt.NewMutexLane(lane), cCv: lt.NewCondLane(lane)}
		for i := 0; i < workers; i++ {
			lt.Spawn(fmt.Sprintf("lane%d-sql-worker%d", lane, i), func(wt papi.T) {
				for !wt.Killed() {
					q.cMu.Lock(wt)
					for len(q.conns) == 0 {
						q.cCv.Wait(wt, q.cMu)
					}
					c := q.conns[0]
					q.conns = q.conns[1:]
					q.cMu.Unlock(wt)
					s.session(wt, c, catalogMu)
				}
			})
		}
		s.acceptLoop(lt, l, q)
	}
	for lane := 1; lane < lanes; lane++ {
		t.SpawnLane(lane, fmt.Sprintf("lane%d-sql-main", lane), func(bt papi.T) {
			laneMain(bt, lane)
		})
	}
	laneMain(t, 0)
}

func (s *Server) acceptLoop(t papi.T, l papi.Listener, q *laneQueue) {
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		q.cMu.Lock(t)
		q.conns = append(q.conns, c)
		q.cMu.Unlock(t)
		q.cCv.Signal(t)
	}
}

func (t *table) rebuildIndex() {
	t.Index = make(map[string][]int, len(t.Rows))
	for i, row := range t.Rows {
		if len(row) > 0 {
			t.Index[row[0]] = append(t.Index[row[0]], i)
		}
	}
}

// session serves one client connection, one statement per line.
func (s *Server) session(t papi.T, c papi.Conn, catalogMu papi.Mutex) {
	defer c.Close(t)
	var acc []byte
	buf := make([]byte, 2048)
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		stmt := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "QUIT") {
			return
		}
		t.Work(s.cfg.WorkPerQuery)
		resp := s.exec(t, stmt, catalogMu)
		s.stateMu.Lock()
		s.queries++
		s.stateMu.Unlock()
		if _, err := c.Send(t, []byte(resp)); err != nil {
			return
		}
	}
}

// exec parses and executes one SQL statement.
func (s *Server) exec(t papi.T, stmt string, catalogMu papi.Mutex) string {
	toks := tokenize(stmt)
	if len(toks) == 0 {
		return "ERR empty\n"
	}
	switch strings.ToUpper(toks[0]) {
	case "CREATE":
		return s.execCreate(t, toks, catalogMu)
	case "INSERT":
		return s.execInsert(t, toks, catalogMu)
	case "SELECT":
		return s.execSelect(t, toks, catalogMu)
	case "UPDATE":
		return s.execUpdate(t, toks, catalogMu)
	case "DELETE":
		return s.execDelete(t, toks, catalogMu)
	case "BEGIN", "COMMIT":
		return "OK 0\n"
	default:
		return "ERR unknown statement\n"
	}
}

// tokenize splits on spaces, commas and parens, keeping quoted strings.
func tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	inStr := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case inStr:
			if ch == '\'' {
				inStr = false
				flush()
			} else {
				cur.WriteByte(ch)
			}
		case ch == '\'':
			inStr = true
		case ch == ' ' || ch == '\t' || ch == ',' || ch == '(' || ch == ')' || ch == ';':
			flush()
		case ch == '=' || ch == '<' || ch == '>':
			flush()
			toks = append(toks, string(ch))
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return toks
}

// getTable looks a table up under the catalog lock, creating lock objects
// if it was restored without them.
func (s *Server) getTable(t papi.T, name string, catalogMu papi.Mutex) *table {
	catalogMu.Lock(t)
	defer catalogMu.Unlock(t)
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.tables[strings.ToLower(name)]
}

func (s *Server) execCreate(t papi.T, toks []string, catalogMu papi.Mutex) string {
	// CREATE TABLE name col1 col2 ...
	if len(toks) < 4 || !strings.EqualFold(toks[1], "TABLE") {
		return "ERR syntax: CREATE TABLE name (cols)\n"
	}
	name := strings.ToLower(toks[2])
	cols := toks[3:]
	catalogMu.Lock(t)
	s.stateMu.Lock()
	if _, exists := s.tables[name]; exists {
		s.stateMu.Unlock()
		catalogMu.Unlock(t)
		return "ERR table exists\n"
	}
	s.tables[name] = &table{
		lock: t.NewRWMutex(), meta: t.NewMutex(),
		Cols: cols, Index: make(map[string][]int),
	}
	s.stateMu.Unlock()
	catalogMu.Unlock(t)
	if s.cfg.Persist {
		s.fs.Write("data/"+name+".frm", []byte(strings.Join(cols, ",")+"\n"))
		s.fs.Write("data/"+name+".ibd", nil)
	}
	return "OK 0\n"
}

func (s *Server) execInsert(t papi.T, toks []string, catalogMu papi.Mutex) string {
	// INSERT INTO name VALUES v1 v2 ...
	if len(toks) < 5 || !strings.EqualFold(toks[1], "INTO") || !strings.EqualFold(toks[3], "VALUES") {
		return "ERR syntax: INSERT INTO t VALUES (...)\n"
	}
	name := strings.ToLower(toks[2])
	tb := s.getTable(t, name, catalogMu)
	if tb == nil {
		return "ERR no such table\n"
	}
	vals := toks[4:]
	tb.lock.Lock(t)
	if len(vals) != len(tb.Cols) {
		tb.lock.Unlock(t)
		return fmt.Sprintf("ERR want %d values\n", len(tb.Cols))
	}
	tb.meta.Lock(t)
	tb.AutoInc++
	tb.meta.Unlock(t)
	row := append([]string(nil), vals...)
	s.stateMu.Lock()
	tb.Rows = append(tb.Rows, row)
	tb.Index[row[0]] = append(tb.Index[row[0]], len(tb.Rows)-1)
	s.stateMu.Unlock()
	t.Work(s.cfg.WorkPerRow)
	tb.lock.Unlock(t)
	if s.cfg.Persist {
		s.fs.Append("data/"+name+".ibd", []byte(strings.Join(vals, "|")+"\n"))
	}
	return "OK 1\n"
}

// whereClause is a parsed WHERE restriction.
type whereClause struct {
	col string
	op  string // "=", "<", ">", "between"
	lo  string
	hi  string
}

func parseWhere(toks []string) (*whereClause, error) {
	// ... WHERE col = v | col < v | col > v | col BETWEEN a AND b
	for i := 0; i < len(toks); i++ {
		if strings.EqualFold(toks[i], "WHERE") {
			rest := toks[i+1:]
			if len(rest) >= 3 && (rest[1] == "=" || rest[1] == "<" || rest[1] == ">") {
				return &whereClause{col: strings.ToLower(rest[0]), op: rest[1], lo: rest[2]}, nil
			}
			if len(rest) >= 5 && strings.EqualFold(rest[1], "BETWEEN") && strings.EqualFold(rest[3], "AND") {
				return &whereClause{col: strings.ToLower(rest[0]), op: "between", lo: rest[2], hi: rest[4]}, nil
			}
			return nil, fmt.Errorf("bad WHERE")
		}
	}
	return nil, nil
}

func (w *whereClause) matches(cols []string, row []string) bool {
	if w == nil {
		return true
	}
	ci := -1
	for i, c := range cols {
		if strings.ToLower(c) == w.col {
			ci = i
			break
		}
	}
	if ci < 0 || ci >= len(row) {
		return false
	}
	v := row[ci]
	switch w.op {
	case "=":
		return v == w.lo
	case "<":
		return numLess(v, w.lo)
	case ">":
		return numLess(w.lo, v)
	case "between":
		return !numLess(v, w.lo) && !numLess(w.hi, v)
	}
	return false
}

// numLess compares numerically when both parse, else lexically.
func numLess(a, b string) bool {
	na, ea := strconv.Atoi(a)
	nb, eb := strconv.Atoi(b)
	if ea == nil && eb == nil {
		return na < nb
	}
	return a < b
}

// selectOpts are the SELECT modifiers the SysBench-style dialect supports.
type selectOpts struct {
	orderBy string
	desc    bool
	limit   int // -1: none
	count   bool
}

// parseSelectOpts extracts ORDER BY col [DESC] and LIMIT n.
func parseSelectOpts(toks []string, proj []string) selectOpts {
	o := selectOpts{limit: -1}
	if len(proj) == 1 && strings.EqualFold(proj[0], "COUNT") {
		o.count = true
	}
	for i := 0; i < len(toks); i++ {
		if strings.EqualFold(toks[i], "ORDER") && i+2 < len(toks) && strings.EqualFold(toks[i+1], "BY") {
			o.orderBy = strings.ToLower(toks[i+2])
			if i+3 < len(toks) && strings.EqualFold(toks[i+3], "DESC") {
				o.desc = true
			}
		}
		if strings.EqualFold(toks[i], "LIMIT") && i+1 < len(toks) {
			if n, err := strconv.Atoi(toks[i+1]); err == nil && n >= 0 {
				o.limit = n
			}
		}
	}
	return o
}

func (s *Server) execSelect(t papi.T, toks []string, catalogMu papi.Mutex) string {
	// SELECT cols|*|COUNT FROM t [WHERE ...] [ORDER BY col [DESC]] [LIMIT n]
	fromIdx := -1
	for i, tk := range toks {
		if strings.EqualFold(tk, "FROM") {
			fromIdx = i
			break
		}
	}
	if fromIdx < 0 || fromIdx+1 >= len(toks) {
		return "ERR syntax: SELECT cols FROM t\n"
	}
	name := strings.ToLower(toks[fromIdx+1])
	tb := s.getTable(t, name, catalogMu)
	if tb == nil {
		return "ERR no such table\n"
	}
	where, err := parseWhere(toks[fromIdx:])
	if err != nil {
		return "ERR bad WHERE\n"
	}
	proj := toks[1:fromIdx]
	star := len(proj) == 1 && proj[0] == "*"
	opts := parseSelectOpts(toks[fromIdx:], proj)

	tb.lock.RLock(t)
	s.stateMu.Lock()
	// Point lookups on the first column use the index.
	var candidates []int
	if where != nil && where.op == "=" && len(tb.Cols) > 0 &&
		strings.ToLower(tb.Cols[0]) == where.col {
		candidates = tb.Index[where.lo]
	} else {
		candidates = make([]int, len(tb.Rows))
		for i := range tb.Rows {
			candidates[i] = i
		}
	}
	// Materialize matches, then apply ORDER BY / LIMIT.
	var matched [][]string
	for _, ri := range candidates {
		row := tb.Rows[ri]
		if where.matches(tb.Cols, row) {
			matched = append(matched, row)
		}
	}
	if opts.orderBy != "" {
		oc := -1
		for ci, cname := range tb.Cols {
			if strings.ToLower(cname) == opts.orderBy {
				oc = ci
				break
			}
		}
		if oc >= 0 {
			sort.SliceStable(matched, func(i, j int) bool {
				less := numLess(matched[i][oc], matched[j][oc])
				if opts.desc {
					return !less && matched[i][oc] != matched[j][oc]
				}
				return less
			})
		}
	}
	if opts.limit >= 0 && opts.limit < len(matched) {
		matched = matched[:opts.limit]
	}
	var out bytes.Buffer
	for _, row := range matched {
		if star || opts.count {
			out.WriteString(strings.Join(row, "|"))
		} else {
			var cells []string
			for _, p := range proj {
				for ci, cname := range tb.Cols {
					if strings.EqualFold(cname, p) && ci < len(row) {
						cells = append(cells, row[ci])
					}
				}
			}
			out.WriteString(strings.Join(cells, "|"))
		}
		out.WriteByte('\n')
	}
	nrows := len(candidates)
	count := len(matched)
	s.stateMu.Unlock()
	t.Work(s.cfg.WorkPerRow * (nrows + 1))
	tb.lock.RUnlock(t)
	if opts.count {
		return fmt.Sprintf("COUNT %d\n", count)
	}
	return fmt.Sprintf("ROWS %d\n%s", count, out.String())
}

func (s *Server) execUpdate(t papi.T, toks []string, catalogMu papi.Mutex) string {
	// UPDATE t SET col = v [WHERE ...]
	if len(toks) < 6 || !strings.EqualFold(toks[2], "SET") || toks[4] != "=" {
		return "ERR syntax: UPDATE t SET col = v\n"
	}
	name := strings.ToLower(toks[1])
	tb := s.getTable(t, name, catalogMu)
	if tb == nil {
		return "ERR no such table\n"
	}
	col, val := strings.ToLower(toks[3]), toks[5]
	where, err := parseWhere(toks)
	if err != nil {
		return "ERR bad WHERE\n"
	}
	tb.lock.Lock(t)
	s.stateMu.Lock()
	ci := -1
	for i, c := range tb.Cols {
		if strings.ToLower(c) == col {
			ci = i
			break
		}
	}
	n := 0
	if ci >= 0 {
		for ri, row := range tb.Rows {
			if where.matches(tb.Cols, row) {
				if ci == 0 {
					// Maintain the first-column index.
					old := row[0]
					idx := tb.Index[old]
					for k, v2 := range idx {
						if v2 == ri {
							tb.Index[old] = append(idx[:k], idx[k+1:]...)
							break
						}
					}
					tb.Index[val] = append(tb.Index[val], ri)
				}
				row[ci] = val
				n++
			}
		}
	}
	total := len(tb.Rows)
	s.stateMu.Unlock()
	t.Work(s.cfg.WorkPerRow * (total + 1))
	tb.lock.Unlock(t)
	if s.cfg.Persist && n > 0 {
		s.fs.Append("data/"+name+".ibd", []byte(fmt.Sprintf("#update %s=%s n=%d\n", col, val, n)))
	}
	return fmt.Sprintf("OK %d\n", n)
}

func (s *Server) execDelete(t papi.T, toks []string, catalogMu papi.Mutex) string {
	// DELETE FROM t [WHERE ...]
	if len(toks) < 3 || !strings.EqualFold(toks[1], "FROM") {
		return "ERR syntax: DELETE FROM t\n"
	}
	name := strings.ToLower(toks[2])
	tb := s.getTable(t, name, catalogMu)
	if tb == nil {
		return "ERR no such table\n"
	}
	where, err := parseWhere(toks)
	if err != nil {
		return "ERR bad WHERE\n"
	}
	tb.lock.Lock(t)
	s.stateMu.Lock()
	var kept [][]string
	n := 0
	for _, row := range tb.Rows {
		if where.matches(tb.Cols, row) {
			n++
			continue
		}
		kept = append(kept, row)
	}
	tb.Rows = kept
	tb.rebuildIndex()
	total := len(kept)
	s.stateMu.Unlock()
	t.Work(s.cfg.WorkPerRow * (total + n + 1))
	tb.lock.Unlock(t)
	if s.cfg.Persist && n > 0 {
		s.fs.Append("data/"+name+".ibd", []byte(fmt.Sprintf("#delete n=%d\n", n)))
	}
	return fmt.Sprintf("OK %d\n", n)
}

// Tables returns the sorted table names (test observability).
func (s *Server) Tables() []string {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var names []string
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var _ papi.Instance = (*Server)(nil)
