// Package clamav reimplements the concurrency structure of the ClamAV
// scanning daemon evaluated in §7: an anti-virus server that "scans files
// in parallel and deletes malicious ones". A listener thread accepts
// clamdscan connections; handler threads parse SCAN commands and fan the
// target directory's files out to a pool of scanner threads; infected
// files are removed from the container filesystem. The workload's 18
// socket calls per request come from clamdscan streaming one command and
// reading a multi-line report.
package clamav

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the daemon.
type Config struct {
	// Handlers is the number of connection-handler threads (default 6;
	// must exceed workload concurrency plus in-flight connection
	// hand-offs, see DESIGN.md's liveness note).
	Handlers int
	// Scanners is the parallel file-scanner pool size (default 8).
	Scanners int
	// WorkPerKB is scan compute per 1024 bytes of file content.
	WorkPerKB int
	// Port is the clamd listening port (default 3310).
	Port int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Handlers: 6, Scanners: 8, WorkPerKB: 40, Port: 3310}
}

// Program packages the daemon for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 3310
	}
	if cfg.Handlers == 0 {
		cfg.Handlers = 2
	}
	if cfg.Scanners == 0 {
		cfg.Scanners = 8
	}
	if cfg.WorkPerKB == 0 {
		cfg.WorkPerKB = 40
	}
	return papi.Program{
		Name:    "clamav",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
		// A scan request is a self-contained unit: its jobs, result
		// gathering, and report never touch another request's state (file
		// deletions are idempotent and path-disjoint in practice). Lanes
		// partition whole requests, connection-round-robin.
		Conflict: &papi.ConflictMap{},
	}
}

// signature is the test pattern scanned for (the EICAR test file's role).
const signature = "EICAR-STANDARD-ANTIVIRUS-TEST"

// Install writes the virus database and the source tree the benchmark
// scans (the paper scans ClamAV's own source and installation
// directories).
func Install(fs *cfs.FS) {
	var db bytes.Buffer
	db.WriteString("ClamAV-VDB:main:1\n")
	db.WriteString("Eicar-Test-Signature:" + signature + "\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&db, "Sig.%04d:%016x\n", i, papi.DetRand(uint64(i)))
	}
	fs.Write("db/main.cvd", db.Bytes())

	// A source tree of deterministic, varied-size files.
	for i := 0; i < 36; i++ {
		size := 512 + papi.DetRandN(uint64(i)*7919, 8192)
		content := make([]byte, 0, size)
		for len(content) < size {
			content = append(content,
				[]byte(fmt.Sprintf("/* src file %d line %d */\n", i, len(content)))...)
		}
		fs.Write(fmt.Sprintf("src/clamav/file%02d.c", i), content)
	}
	// Two infected files.
	fs.Write("src/clamav/malware0.bin", []byte("X5O!P%@AP"+signature+"!$H+H*"))
	fs.Write("src/clamav/deep/malware1.bin", []byte("payload "+signature+" tail"))
}

// Server is one replica-local clamd instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	stateMu  sync.Mutex //crane:nondet-ok guards counters for Snapshot, which the checkpoint layer drives at quiescent points outside the DMT schedule
	scanned  uint64
	infected uint64
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs}
}

type snapState struct{ Scanned, Infected uint64 }

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapState{s.scanned, s.infected})
	return buf.Bytes(), err
}

// Restore implements papi.Instance.
func (s *Server) Restore(b []byte) error {
	var st snapState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.scanned, s.infected = st.Scanned, st.Infected
	return nil
}

// Totals returns (scanned, infected) counters.
func (s *Server) Totals() (uint64, uint64) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.scanned, s.infected
}

// scanJob is one file to scan; result strings are gathered per request.
type scanJob struct {
	path    string
	results *scanResults
}

type scanResults struct {
	mu      papi.Mutex
	cond    papi.Cond
	pending int
	found   []string
	scanned int
}

// laneCtx is one lane's complete private machinery: job queue, connection
// queue, and their locks. With lanes, clamd partitions entirely — nothing
// is shared across lanes (the lane argument -1 means single-lane, where
// sync objects are created unbound exactly as before).
type laneCtx struct {
	lane   int
	jobs   []scanJob
	jobMu  papi.Mutex
	jobCv  papi.Cond
	connCh []papi.Conn
	cMu    papi.Mutex
	cCv    papi.Cond
}

// Run implements papi.Instance.
func (s *Server) Run(t papi.T) {
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	if t.Lanes() > 1 {
		s.runLanes(t, l)
		return
	}
	lc := &laneCtx{
		lane:  -1,
		jobMu: t.NewMutex(),
		jobCv: t.NewCond(),
		cMu:   t.NewMutex(),
		cCv:   t.NewCond(),
	}
	// Scanner pool: files from all in-flight requests scan in parallel.
	for i := 0; i < s.cfg.Scanners; i++ {
		t.Spawn(fmt.Sprintf("scanner%d", i), func(wt papi.T) {
			s.scannerLoop(wt, lc)
		})
	}
	// Handler threads: one connection at a time each.
	for i := 0; i < s.cfg.Handlers; i++ {
		t.Spawn(fmt.Sprintf("handler%d", i), func(wt papi.T) {
			s.handlerLoop(wt, lc)
		})
	}
	s.acceptLoop(t, l, lc)
}

// runLanes partitions the daemon completely: each lane has its own
// acceptor, handler share, scanner share, job queue, and connection queue.
// Scan requests never leave their lane.
//
// Each lane is built by its own lane-main thread (the bootstrap discipline
// cross-lane spawns require): the lane main creates the lane's queues and
// pools with in-lane spawns, then becomes the lane's acceptor.
func (s *Server) runLanes(t papi.T, l papi.Listener) {
	lanes := t.Lanes()
	share := func(total, lane int) int {
		n := total / lanes
		if lane < total%lanes {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	laneMain := func(lt papi.T, lane int) {
		lc := &laneCtx{
			lane:  lane,
			jobMu: lt.NewMutexLane(lane),
			jobCv: lt.NewCondLane(lane),
			cMu:   lt.NewMutexLane(lane),
			cCv:   lt.NewCondLane(lane),
		}
		for i := 0; i < share(s.cfg.Scanners, lane); i++ {
			lt.Spawn(fmt.Sprintf("lane%d-scanner%d", lane, i), func(wt papi.T) {
				s.scannerLoop(wt, lc)
			})
		}
		for i := 0; i < share(s.cfg.Handlers, lane); i++ {
			lt.Spawn(fmt.Sprintf("lane%d-handler%d", lane, i), func(wt papi.T) {
				s.handlerLoop(wt, lc)
			})
		}
		s.acceptLoop(lt, l, lc)
	}
	for lane := 1; lane < lanes; lane++ {
		t.SpawnLane(lane, fmt.Sprintf("lane%d-main", lane), func(bt papi.T) {
			laneMain(bt, lane)
		})
	}
	laneMain(t, 0)
}

func (s *Server) scannerLoop(t papi.T, lc *laneCtx) {
	for !t.Killed() {
		lc.jobMu.Lock(t)
		for len(lc.jobs) == 0 {
			lc.jobCv.Wait(t, lc.jobMu)
		}
		job := lc.jobs[0]
		lc.jobs = lc.jobs[1:]
		lc.jobMu.Unlock(t)
		s.scanFile(t, job)
	}
}

func (s *Server) handlerLoop(t papi.T, lc *laneCtx) {
	for !t.Killed() {
		lc.cMu.Lock(t)
		for len(lc.connCh) == 0 {
			lc.cCv.Wait(t, lc.cMu)
		}
		c := lc.connCh[0]
		lc.connCh = lc.connCh[1:]
		lc.cMu.Unlock(t)
		s.serveConn(t, c, lc)
	}
}

func (s *Server) acceptLoop(t papi.T, l papi.Listener, lc *laneCtx) {
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		lc.cMu.Lock(t)
		lc.connCh = append(lc.connCh, c)
		lc.cMu.Unlock(t)
		lc.cCv.Signal(t)
	}
}

func (s *Server) serveConn(t papi.T, c papi.Conn, lc *laneCtx) {
	defer c.Close(t)
	var acc []byte
	buf := make([]byte, 512)
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		line := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		parts := strings.SplitN(line, " ", 2)
		switch parts[0] {
		case "PING":
			c.Send(t, []byte("PONG\n"))
		case "VERSION":
			c.Send(t, []byte("ClamAV 0.98/crane\n"))
		case "SCAN", "CONTSCAN", "MULTISCAN":
			if len(parts) != 2 {
				c.Send(t, []byte("ERROR: missing path\n"))
				continue
			}
			s.scanTree(t, c, parts[1], lc)
		case "RELOAD":
			// Re-read the signature database from the container fs.
			n := s.reloadDB(t)
			c.Send(t, []byte(fmt.Sprintf("RELOADING %d signatures\n", n)))
		case "STATS":
			sc, inf := s.Totals()
			c.Send(t, []byte(fmt.Sprintf("POOLS: 1\nSCANNED: %d\nINFECTED: %d\nEND\n", sc, inf)))
		case "END":
			return
		default:
			c.Send(t, []byte("UNKNOWN COMMAND\n"))
		}
	}
}

// scanTree fans the files under root out to the scanner pool, waits for
// completion, and streams the report.
func (s *Server) scanTree(t papi.T, c papi.Conn, root string, lc *laneCtx) {
	files := s.fs.List(root)
	res := &scanResults{pending: len(files)}
	if lc.lane >= 0 {
		// The request and its scan jobs live entirely on this lane.
		res.mu, res.cond = t.NewMutexLane(lc.lane), t.NewCondLane(lc.lane)
	} else {
		res.mu, res.cond = t.NewMutex(), t.NewCond()
	}
	if len(files) == 0 {
		c.Send(t, []byte(root+": no files\nSCAN SUMMARY: scanned 0 infected 0\n"))
		return
	}
	lc.jobMu.Lock(t)
	for _, f := range files {
		lc.jobs = append(lc.jobs, scanJob{path: f, results: res})
	}
	lc.jobMu.Unlock(t)
	lc.jobCv.Broadcast(t)

	res.mu.Lock(t)
	for res.pending > 0 {
		res.cond.Wait(t, res.mu)
	}
	found := append([]string(nil), res.found...)
	scanned := res.scanned
	res.mu.Unlock(t)

	sort.Strings(found) // deterministic report order
	var out bytes.Buffer
	for _, f := range found {
		fmt.Fprintf(&out, "%s: Eicar-Test-Signature FOUND\n", f)
	}
	fmt.Fprintf(&out, "SCAN SUMMARY: scanned %d infected %d\n", scanned, len(found))
	c.Send(t, out.Bytes())

	s.stateMu.Lock()
	s.scanned += uint64(scanned)
	s.infected += uint64(len(found))
	s.stateMu.Unlock()
}

// reloadDB re-parses the on-disk virus database and returns the signature
// count (clamd's RELOAD command).
func (s *Server) reloadDB(t papi.T) int {
	db, ok := s.fs.Read("db/main.cvd")
	if !ok {
		return 0
	}
	t.Work(len(db)/1024 + 1)
	return bytes.Count(db, []byte("\n")) - 1
}

// scanFile matches one file against the signature database and deletes it
// if infected.
func (s *Server) scanFile(t papi.T, job scanJob) {
	data, ok := s.fs.Read(job.path)
	infected := false
	if ok {
		// Compute cost proportional to file size, like real signature
		// matching.
		t.Work(s.cfg.WorkPerKB * (len(data)/1024 + 1))
		if bytes.Contains(data, []byte(signature)) {
			infected = true
			s.fs.Remove(job.path) // delete malicious file
		}
	}
	job.results.mu.Lock(t)
	job.results.scanned++
	if infected {
		job.results.found = append(job.results.found, job.path)
	}
	job.results.pending--
	done := job.results.pending == 0
	job.results.mu.Unlock(t)
	if done {
		job.results.cond.Broadcast(t)
	}
}

var _ papi.Instance = (*Server)(nil)
