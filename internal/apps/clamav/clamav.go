// Package clamav reimplements the concurrency structure of the ClamAV
// scanning daemon evaluated in §7: an anti-virus server that "scans files
// in parallel and deletes malicious ones". A listener thread accepts
// clamdscan connections; handler threads parse SCAN commands and fan the
// target directory's files out to a pool of scanner threads; infected
// files are removed from the container filesystem. The workload's 18
// socket calls per request come from clamdscan streaming one command and
// reading a multi-line report.
package clamav

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the daemon.
type Config struct {
	// Handlers is the number of connection-handler threads (default 6;
	// must exceed workload concurrency plus in-flight connection
	// hand-offs, see DESIGN.md's liveness note).
	Handlers int
	// Scanners is the parallel file-scanner pool size (default 8).
	Scanners int
	// WorkPerKB is scan compute per 1024 bytes of file content.
	WorkPerKB int
	// Port is the clamd listening port (default 3310).
	Port int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Handlers: 6, Scanners: 8, WorkPerKB: 40, Port: 3310}
}

// Program packages the daemon for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 3310
	}
	if cfg.Handlers == 0 {
		cfg.Handlers = 2
	}
	if cfg.Scanners == 0 {
		cfg.Scanners = 8
	}
	if cfg.WorkPerKB == 0 {
		cfg.WorkPerKB = 40
	}
	return papi.Program{
		Name:    "clamav",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
	}
}

// signature is the test pattern scanned for (the EICAR test file's role).
const signature = "EICAR-STANDARD-ANTIVIRUS-TEST"

// Install writes the virus database and the source tree the benchmark
// scans (the paper scans ClamAV's own source and installation
// directories).
func Install(fs *cfs.FS) {
	var db bytes.Buffer
	db.WriteString("ClamAV-VDB:main:1\n")
	db.WriteString("Eicar-Test-Signature:" + signature + "\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&db, "Sig.%04d:%016x\n", i, papi.DetRand(uint64(i)))
	}
	fs.Write("db/main.cvd", db.Bytes())

	// A source tree of deterministic, varied-size files.
	for i := 0; i < 36; i++ {
		size := 512 + papi.DetRandN(uint64(i)*7919, 8192)
		content := make([]byte, 0, size)
		for len(content) < size {
			content = append(content,
				[]byte(fmt.Sprintf("/* src file %d line %d */\n", i, len(content)))...)
		}
		fs.Write(fmt.Sprintf("src/clamav/file%02d.c", i), content)
	}
	// Two infected files.
	fs.Write("src/clamav/malware0.bin", []byte("X5O!P%@AP"+signature+"!$H+H*"))
	fs.Write("src/clamav/deep/malware1.bin", []byte("payload "+signature+" tail"))
}

// Server is one replica-local clamd instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	stateMu  sync.Mutex //crane:nondet-ok guards counters for Snapshot, which the checkpoint layer drives at quiescent points outside the DMT schedule
	scanned  uint64
	infected uint64
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs}
}

type snapState struct{ Scanned, Infected uint64 }

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapState{s.scanned, s.infected})
	return buf.Bytes(), err
}

// Restore implements papi.Instance.
func (s *Server) Restore(b []byte) error {
	var st snapState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.scanned, s.infected = st.Scanned, st.Infected
	return nil
}

// Totals returns (scanned, infected) counters.
func (s *Server) Totals() (uint64, uint64) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.scanned, s.infected
}

// scanJob is one file to scan; result strings are gathered per request.
type scanJob struct {
	path    string
	results *scanResults
}

type scanResults struct {
	mu      papi.Mutex
	cond    papi.Cond
	pending int
	found   []string
	scanned int
}

// Run implements papi.Instance.
func (s *Server) Run(t papi.T) {
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	var (
		jobs   []scanJob
		jobMu  = t.NewMutex()
		jobCv  = t.NewCond()
		connCh []papi.Conn
		cMu    = t.NewMutex()
		cCv    = t.NewCond()
	)
	// Scanner pool: files from all in-flight requests scan in parallel.
	for i := 0; i < s.cfg.Scanners; i++ {
		t.Spawn(fmt.Sprintf("scanner%d", i), func(wt papi.T) {
			for !wt.Killed() {
				jobMu.Lock(wt)
				for len(jobs) == 0 {
					jobCv.Wait(wt, jobMu)
				}
				job := jobs[0]
				jobs = jobs[1:]
				jobMu.Unlock(wt)
				s.scanFile(wt, job)
			}
		})
	}
	// Handler threads: one connection at a time each.
	for i := 0; i < s.cfg.Handlers; i++ {
		t.Spawn(fmt.Sprintf("handler%d", i), func(wt papi.T) {
			for !wt.Killed() {
				cMu.Lock(wt)
				for len(connCh) == 0 {
					cCv.Wait(wt, cMu)
				}
				c := connCh[0]
				connCh = connCh[1:]
				cMu.Unlock(wt)
				s.serveConn(wt, c, &jobs, jobMu, jobCv)
			}
		})
	}
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		cMu.Lock(t)
		connCh = append(connCh, c)
		cMu.Unlock(t)
		cCv.Signal(t)
	}
}

func (s *Server) serveConn(t papi.T, c papi.Conn, jobs *[]scanJob, jobMu papi.Mutex, jobCv papi.Cond) {
	defer c.Close(t)
	var acc []byte
	buf := make([]byte, 512)
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		line := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		parts := strings.SplitN(line, " ", 2)
		switch parts[0] {
		case "PING":
			c.Send(t, []byte("PONG\n"))
		case "VERSION":
			c.Send(t, []byte("ClamAV 0.98/crane\n"))
		case "SCAN", "CONTSCAN", "MULTISCAN":
			if len(parts) != 2 {
				c.Send(t, []byte("ERROR: missing path\n"))
				continue
			}
			s.scanTree(t, c, parts[1], jobs, jobMu, jobCv)
		case "RELOAD":
			// Re-read the signature database from the container fs.
			n := s.reloadDB(t)
			c.Send(t, []byte(fmt.Sprintf("RELOADING %d signatures\n", n)))
		case "STATS":
			sc, inf := s.Totals()
			c.Send(t, []byte(fmt.Sprintf("POOLS: 1\nSCANNED: %d\nINFECTED: %d\nEND\n", sc, inf)))
		case "END":
			return
		default:
			c.Send(t, []byte("UNKNOWN COMMAND\n"))
		}
	}
}

// scanTree fans the files under root out to the scanner pool, waits for
// completion, and streams the report.
func (s *Server) scanTree(t papi.T, c papi.Conn, root string, jobs *[]scanJob, jobMu papi.Mutex, jobCv papi.Cond) {
	files := s.fs.List(root)
	res := &scanResults{mu: t.NewMutex(), cond: t.NewCond(), pending: len(files)}
	if len(files) == 0 {
		c.Send(t, []byte(root+": no files\nSCAN SUMMARY: scanned 0 infected 0\n"))
		return
	}
	jobMu.Lock(t)
	for _, f := range files {
		*jobs = append(*jobs, scanJob{path: f, results: res})
	}
	jobMu.Unlock(t)
	jobCv.Broadcast(t)

	res.mu.Lock(t)
	for res.pending > 0 {
		res.cond.Wait(t, res.mu)
	}
	found := append([]string(nil), res.found...)
	scanned := res.scanned
	res.mu.Unlock(t)

	sort.Strings(found) // deterministic report order
	var out bytes.Buffer
	for _, f := range found {
		fmt.Fprintf(&out, "%s: Eicar-Test-Signature FOUND\n", f)
	}
	fmt.Fprintf(&out, "SCAN SUMMARY: scanned %d infected %d\n", scanned, len(found))
	c.Send(t, out.Bytes())

	s.stateMu.Lock()
	s.scanned += uint64(scanned)
	s.infected += uint64(len(found))
	s.stateMu.Unlock()
}

// reloadDB re-parses the on-disk virus database and returns the signature
// count (clamd's RELOAD command).
func (s *Server) reloadDB(t papi.T) int {
	db, ok := s.fs.Read("db/main.cvd")
	if !ok {
		return 0
	}
	t.Work(len(db)/1024 + 1)
	return bytes.Count(db, []byte("\n")) - 1
}

// scanFile matches one file against the signature database and deletes it
// if infected.
func (s *Server) scanFile(t papi.T, job scanJob) {
	data, ok := s.fs.Read(job.path)
	infected := false
	if ok {
		// Compute cost proportional to file size, like real signature
		// matching.
		t.Work(s.cfg.WorkPerKB * (len(data)/1024 + 1))
		if bytes.Contains(data, []byte(signature)) {
			infected = true
			s.fs.Remove(job.path) // delete malicious file
		}
	}
	job.results.mu.Lock(t)
	job.results.scanned++
	if infected {
		job.results.found = append(job.results.found, job.path)
	}
	job.results.pending--
	done := job.results.pending == 0
	job.results.mu.Unlock(t)
	if done {
		job.results.cond.Broadcast(t)
	}
}

var _ papi.Instance = (*Server)(nil)
