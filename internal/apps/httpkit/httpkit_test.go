package httpkit

import (
	"io"
	"strings"
	"testing"
	"time"

	"crane/internal/papi"
)

// stubConn feeds scripted chunks to the Reader and records sends.
type stubConn struct {
	chunks [][]byte
	sent   [][]byte
}

func (c *stubConn) ID() uint64 { return 1 }

func (c *stubConn) Recv(t papi.T, buf []byte) (int, error) {
	if len(c.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(buf, c.chunks[0])
	if n == len(c.chunks[0]) {
		c.chunks = c.chunks[1:]
	} else {
		c.chunks[0] = c.chunks[0][n:]
	}
	return n, nil
}

func (c *stubConn) Send(t papi.T, data []byte) (int, error) {
	c.sent = append(c.sent, append([]byte(nil), data...))
	return len(data), nil
}

func (c *stubConn) Close(t papi.T) error { return nil }

// stubT provides the deterministic clock Response.Write reads the Date
// header from; everything else is inherited (and unused) from the
// embedded nil interface.
type stubT struct{ papi.T }

func (stubT) Now() time.Time { return time.Unix(1136239445, 0).UTC() }

func TestParseSimpleGet(t *testing.T) {
	c := &stubConn{chunks: [][]byte{[]byte("GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n")}}
	r := NewReader(nil, c)
	req, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Proto != "HTTP/1.0" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["host"] != "x" {
		t.Fatalf("headers = %v", req.Headers)
	}
	if len(req.Body) != 0 {
		t.Fatal("unexpected body")
	}
}

func TestParseBodyAcrossChunks(t *testing.T) {
	c := &stubConn{chunks: [][]byte{
		[]byte("PUT /a.php HTT"),
		[]byte("P/1.0\r\nContent-Length: 11\r\n\r\nhello"),
		[]byte(" world"),
	}}
	r := NewReader(nil, c)
	req, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "PUT" || string(req.Body) != "hello world" {
		t.Fatalf("req = %+v body=%q", req, req.Body)
	}
}

func TestParsePipelinedRequests(t *testing.T) {
	c := &stubConn{chunks: [][]byte{
		[]byte("GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\n\r\n"),
	}}
	r := NewReader(nil, c)
	req1, err := r.Next()
	if err != nil || req1.Path != "/a" {
		t.Fatalf("req1 = %+v, %v", req1, err)
	}
	req2, err := r.Next()
	if err != nil || req2.Path != "/b" {
		t.Fatalf("req2 = %+v, %v", req2, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("third Next err = %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, raw := range []string{
		"GARBAGE\r\n\r\n",
		"GET /x HTTP/1.0\r\nContent-Length: -5\r\n\r\n",
		"GET /x HTTP/1.0\r\nContent-Length: xyz\r\n\r\n",
	} {
		c := &stubConn{chunks: [][]byte{[]byte(raw)}}
		if _, err := NewReader(nil, c).Next(); err == nil {
			t.Fatalf("parsed malformed request %q", raw)
		}
	}
}

func TestResponseWrite(t *testing.T) {
	c := &stubConn{}
	resp := &Response{Status: 200, Body: []byte("payload"), Headers: []string{"X-Test: 1"}}
	if err := resp.Write(stubT{}, c, "srv/1.0", false); err != nil {
		t.Fatal(err)
	}
	got := string(c.sent[0])
	for _, want := range []string{
		"HTTP/1.0 200 OK\r\n", "Server: srv/1.0\r\n", "X-Test: 1\r\n",
		"Content-Length: 7\r\n\r\npayload",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "Date:") {
		t.Fatal("Date header written with withDate=false")
	}
}

func TestResponseWriteWithDate(t *testing.T) {
	c := &stubConn{}
	resp := &Response{Status: 404}
	if err := resp.Write(stubT{}, c, "srv", true); err != nil {
		t.Fatal(err)
	}
	got := string(c.sent[0])
	if !strings.Contains(got, "Date: ") {
		t.Fatal("Date header missing")
	}
	if !strings.Contains(got, "404 Not Found") {
		t.Fatalf("status line: %q", got)
	}
	// The date is in RFC1123; parsing it back should work.
	for _, line := range strings.Split(got, "\r\n") {
		if v, ok := strings.CutPrefix(line, "Date: "); ok {
			if _, err := time.Parse(time.RFC1123, v); err != nil {
				t.Fatalf("bad Date %q: %v", v, err)
			}
		}
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{
		200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
		405: "Method Not Allowed", 500: "Internal Server Error", 999: "Status",
	} {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q", code, got)
		}
	}
}
