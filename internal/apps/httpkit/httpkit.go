// Package httpkit is a minimal HTTP/1.0 implementation shared by the
// Apache-like and Mongoose-like servers: request parsing over the papi
// socket API and response serialization. It supports the method set the
// paper's workloads exercise (GET/PUT/DELETE with bodies via
// Content-Length).
package httpkit

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"crane/internal/papi"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
	Body    []byte
}

// ErrMalformed reports an unparseable request.
var ErrMalformed = errors.New("httpkit: malformed request")

// Reader incrementally parses requests from a connection.
type Reader struct {
	c   papi.Conn
	t   papi.T
	acc []byte
	buf []byte
}

// NewReader wraps a connection for request parsing.
func NewReader(t papi.T, c papi.Conn) *Reader {
	return &Reader{c: c, t: t, buf: make([]byte, 4096)}
}

// fill reads more bytes from the connection into the accumulator.
func (r *Reader) fill() error {
	n, err := r.c.Recv(r.t, r.buf)
	if n > 0 {
		r.acc = append(r.acc, r.buf[:n]...)
	}
	return err
}

// Next reads and parses the next request; io.EOF (wrapped) when the client
// closed between requests.
func (r *Reader) Next() (*Request, error) {
	// Read until the header terminator.
	var headerEnd int
	for {
		if i := bytes.Index(r.acc, []byte("\r\n\r\n")); i >= 0 {
			headerEnd = i
			break
		}
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	head := string(r.acc[:headerEnd])
	rest := r.acc[headerEnd+4:]

	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, ErrMalformed
	}
	first := strings.SplitN(lines[0], " ", 3)
	if len(first) != 3 {
		return nil, ErrMalformed
	}
	req := &Request{
		Method:  first[0],
		Path:    first[1],
		Proto:   first[2],
		Headers: make(map[string]string, len(lines)-1),
	}
	for _, ln := range lines[1:] {
		if j := strings.Index(ln, ":"); j > 0 {
			req.Headers[strings.ToLower(strings.TrimSpace(ln[:j]))] = strings.TrimSpace(ln[j+1:])
		}
	}
	want := 0
	if cl, ok := req.Headers["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, ErrMalformed
		}
		want = n
	}
	r.acc = rest
	for len(r.acc) < want {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	req.Body = append([]byte(nil), r.acc[:want]...)
	r.acc = r.acc[want:]
	return req, nil
}

// Response is an HTTP response under construction.
type Response struct {
	Status  int
	Reason  string
	Headers []string
	Body    []byte
}

// StatusText maps the status codes the servers emit.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// Write serializes and sends the response. withDate adds a physical-time
// Date header — the one nondeterministic output field the paper's
// consistency comparison tolerates ("consistent except physical times in
// the responded HTTP headers", §7.2).
func (resp *Response) Write(t papi.T, c papi.Conn, server string, withDate bool) error {
	reason := resp.Reason
	if reason == "" {
		reason = StatusText(resp.Status)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.0 %d %s\r\n", resp.Status, reason)
	fmt.Fprintf(&b, "Server: %s\r\n", server)
	if withDate {
		fmt.Fprintf(&b, "Date: %s\r\n", t.Now().UTC().Format(time.RFC1123))
	}
	for _, h := range resp.Headers {
		fmt.Fprintf(&b, "%s\r\n", h)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(resp.Body))
	b.Write(resp.Body)
	_, err := c.Send(t, b.Bytes())
	return err
}

// DateHeaderPattern is the normalizer pattern consistency checks use to
// mask the physical-time header.
const DateHeaderPattern = `Date: [^\r\n]+`
