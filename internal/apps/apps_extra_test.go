package apps_test

import (
	"strings"
	"testing"
	"time"

	"crane/internal/apps/clamav"
	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mediatomb"
	"crane/internal/apps/mysqld"
	"crane/internal/simnet"
)

// exchange sends one line and reads one response chunk over an existing
// connection.
func exchange(t *testing.T, c *simnet.Conn, line, stop string) string {
	t.Helper()
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		t.Fatalf("write %q: %v", line, err)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	var acc []byte
	buf := make([]byte, 4096)
	for !strings.Contains(string(acc), stop) {
		n, err := c.Read(buf)
		acc = append(acc, buf[:n]...)
		if err != nil {
			t.Fatalf("read after %q: %v (%q)", line, err, acc)
		}
	}
	return string(acc)
}

func TestHTTPDHeadMethod(t *testing.T) {
	dial, _, stop := startNondet(t, httpd.Program(httpd.DefaultConfig()))
	defer stop()
	status, body, err := clients.Curl(dial, "c:1", 8080, "HEAD", "/index.html", nil)
	if err != nil || status != 200 {
		t.Fatalf("HEAD: %d, %v", status, err)
	}
	if len(body) != 0 {
		t.Fatalf("HEAD returned a body: %q", body)
	}
	status, _, _ = clients.Curl(dial, "c:2", 8080, "HEAD", "/missing", nil)
	if status != 404 {
		t.Fatalf("HEAD missing = %d", status)
	}
}

func TestClamAVReloadAndStats(t *testing.T) {
	dial, _, stop := startNondet(t, clamav.Program(clamav.DefaultConfig()))
	defer stop()
	c, err := dial("c:1", 3310)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := exchange(t, c, "RELOAD", "RELOADING")
	if !strings.Contains(got, "RELOADING 65 signatures") {
		t.Fatalf("RELOAD -> %q", got)
	}
	got = exchange(t, c, "STATS", "END")
	if !strings.Contains(got, "SCANNED: 0") {
		t.Fatalf("STATS -> %q", got)
	}
	// MULTISCAN behaves like SCAN.
	got = exchange(t, c, "MULTISCAN src/clamav/file00.c", "SCAN SUMMARY:")
	if !strings.Contains(got, "scanned 1 infected 0") {
		t.Fatalf("MULTISCAN -> %q", got)
	}
	got = exchange(t, c, "STATS", "END")
	if !strings.Contains(got, "SCANNED: 1") {
		t.Fatalf("STATS after scan -> %q", got)
	}
}

func TestMediaTombListAndProbe(t *testing.T) {
	dial, _, stop := startNondet(t, mediatomb.Program(mediatomb.DefaultConfig()))
	defer stop()
	c, err := dial("c:1", 50500)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := exchange(t, c, "LIST", "video3.avi")
	if !strings.Contains(got, "media/video0.avi") {
		t.Fatalf("LIST -> %q", got)
	}
	got = exchange(t, c, "PROBE video1.avi", "MEDIA")
	if !strings.Contains(got, "MEDIA video1.avi size=") {
		t.Fatalf("PROBE -> %q", got)
	}
	// Probing is deterministic.
	got2 := exchange(t, c, "PROBE video1.avi", "MEDIA")
	if got != got2 {
		t.Fatalf("PROBE nondeterministic: %q vs %q", got, got2)
	}
}

func TestMySQLOrderByLimitCount(t *testing.T) {
	dial, _, stop := startNondet(t, mysqld.Program(mysqld.DefaultConfig()))
	defer stop()
	c, err := dial("c:1", 3306)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exchange(t, c, "CREATE TABLE nums (id val)", "OK")
	for _, pair := range [][2]string{{"3", "c"}, {"1", "a"}, {"2", "b"}} {
		exchange(t, c, "INSERT INTO nums VALUES "+pair[0]+" '"+pair[1]+"'", "OK")
	}
	got := exchange(t, c, "SELECT * FROM nums ORDER BY id", "ROWS")
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 || lines[1] != "1|a" || lines[2] != "2|b" || lines[3] != "3|c" {
		t.Fatalf("ORDER BY -> %q", got)
	}
	got = exchange(t, c, "SELECT * FROM nums ORDER BY id DESC LIMIT 2", "ROWS")
	lines = strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 || lines[1] != "3|c" || lines[2] != "2|b" {
		t.Fatalf("ORDER BY DESC LIMIT -> %q", got)
	}
	got = exchange(t, c, "SELECT COUNT FROM nums WHERE id > 1", "COUNT")
	if !strings.HasPrefix(got, "COUNT 2") {
		t.Fatalf("COUNT -> %q", got)
	}
}
