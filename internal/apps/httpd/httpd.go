// Package httpd reimplements the concurrency structure of the Apache HTTP
// server that the paper evaluates (its running example, Fig. 2): a
// listener thread poll()/accept()s client connections onto a worklist, and
// a pool of worker threads dequeues connections, processes requests under
// a mutex, and responds.
//
// PHP page generation (the ApacheBench workload: "a PHP page, which takes
// about 70 ms ... to generate") is modelled as multi-chunk computation with
// brief shared-allocator lock operations between chunks — the pattern that
// makes Parrot's default round-robin schedules accumulate token-parking
// stalls when workers start their interpretations staggered, and that the
// two-line soft-barrier hint fixes (§7.4, Figure 15): one hint line at
// main() to initialize the barrier, one before the interpretation starts
// to line up the parallel computations.
package httpd

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"time"

	"crane/internal/apps/httpkit"
	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the server.
type Config struct {
	// Workers is the worker-pool size (the workloads drive 8–12 threads).
	Workers int
	// UseHints enables the two-line soft-barrier performance hint.
	UseHints bool
	// HintGroup is the soft-barrier group size (0 means Workers). The
	// barrier is soft, so a smaller group than the worker pool simply
	// lines up fewer computations per release.
	HintGroup int
	// PHPChunks and PHPChunkWork shape the interpreter computation: each
	// request runs PHPChunks compute chunks with a deterministic
	// pseudo-random size in [1, 2*PHPChunkWork), separated by allocator
	// lock/unlock pairs.
	PHPChunks    int
	PHPChunkWork int
	// CacheEnabled turns on the internal page cache (the paper's example
	// of "read" requests that still mutate internal state, §8).
	CacheEnabled bool
	// Port is the listening port (default 8080).
	Port int
	// WithDate adds physical-time Date headers (nondeterministic output
	// the consistency experiments normalize away).
	WithDate bool
}

// DefaultConfig mirrors the paper's peak-performance setup.
func DefaultConfig() Config {
	return Config{
		Workers:      8,
		UseHints:     false,
		PHPChunks:    16,
		PHPChunkWork: 260,
		CacheEnabled: true,
		Port:         8080,
		WithDate:     true,
	}
}

// Program packages the server for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 8080
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.PHPChunks == 0 {
		cfg.PHPChunks = 16
	}
	if cfg.PHPChunkWork == 0 {
		cfg.PHPChunkWork = 260
	}
	return papi.Program{
		Name:    "httpd",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
		// Static GETs on disjoint paths commute (the cache is the one piece
		// of shared state, and it is guarded by a cross-lane mutex), so
		// connections can be partitioned round-robin across lanes: the
		// default ConnLane router (connID % lanes) is exactly that.
		Conflict: &papi.ConflictMap{},
	}
}

// Install populates the document root and server configuration in the
// container image.
func Install(fs *cfs.FS) {
	fs.Write("etc/httpd.conf", []byte("DocumentRoot www\nWorkers 8\nKeepAlive off\n"))
	fs.Write("www/index.html", []byte("<html><body>It works!</body></html>\n"))
	fs.Write("www/status.php", []byte("<?php echo server_status(); ?>\n"))
	for i := 0; i < 8; i++ {
		fs.Write(fmt.Sprintf("www/page%d.php", i),
			[]byte(fmt.Sprintf("<?php echo render_page(%d); ?>\n", i)))
	}
}

// Server is one replica-local Apache-like instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	// stateMu guards cache and counters for Snapshot; the schedule-level
	// exclusion is the papi mutex created in Run.
	stateMu sync.Mutex //crane:nondet-ok Snapshot runs off-schedule at quiescent checkpoints; schedule-level exclusion is the papi mutex in Run
	cache   map[string][]byte
	served  uint64
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs, cache: make(map[string][]byte)}
}

type snapshotState struct {
	Cache  map[string][]byte
	Served uint64
}

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshotState{Cache: s.cache, Served: s.served})
	return buf.Bytes(), err
}

// Restore implements papi.Instance.
func (s *Server) Restore(b []byte) error {
	var st snapshotState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if st.Cache != nil {
		s.cache = st.Cache
	}
	s.served = st.Served
	return nil
}

// Served returns the number of requests completed (test observability).
func (s *Server) Served() uint64 {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.served
}

// Run implements papi.Instance: the paper's Fig. 2 structure. With more
// than one execution lane it switches to the partitioned structure of
// runLanes; the single-lane body below is byte-for-byte the pre-lane
// server, so 1-lane schedules are unchanged.
func (s *Server) Run(t papi.T) {
	if t.Lanes() > 1 {
		s.runLanes(t)
		return
	}
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	var (
		worklist []papi.Conn
		wlMu     = t.NewMutex()
		wlCond   = t.NewCond()
		pageMu   = t.NewMutex() // request-processing lock (Fig. 2 line 19)
		allocMu  = t.NewMutex() // interpreter/allocator lock
	)
	// Soft-barrier hint line 1: initialize at main() (§7.4).
	var hint papi.Barrier
	if s.cfg.UseHints {
		group := s.cfg.HintGroup
		if group <= 0 {
			group = s.cfg.Workers
		}
		hint = t.SoftBarrier("php", group, 60)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		t.Spawn(fmt.Sprintf("worker%d", i), func(wt papi.T) {
			s.worker(wt, &worklist, wlMu, wlCond, pageMu, allocMu, hint)
		})
	}
	// Listener thread body runs on the main thread (Fig. 2 runs it on a
	// dedicated thread; either way it is one poller).
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		wlMu.Lock(t)
		worklist = append(worklist, c)
		wlMu.Unlock(t)
		wlCond.Signal(t)
	}
}

// laneState is one lane's private accept/dispatch machinery: its own
// worklist, worklist lock and cond, allocator lock, and soft barrier. Only
// pageMu (cache and filesystem mutations) is shared across lanes.
type laneState struct {
	worklist []papi.Conn
	wlMu     papi.Mutex
	wlCond   papi.Cond
	allocMu  papi.Mutex
	hint     papi.Barrier
}

// runLanes is the conflict-partitioned structure: connections are routed
// to lanes by the conflict map (round-robin on connection id), and each
// lane runs an independent copy of Fig. 2 — one acceptor plus a share of
// the worker pool, all lane-bound. Lanes only meet at pageMu, the
// cross-lane mutex guarding the page cache and document-root writes.
//
// Each lane is built by its own lane-main thread (the bootstrap discipline
// cross-lane spawns require): the lane main creates the lane's sync
// objects and worker pool with in-lane spawns — all scheduled operations
// of the lane itself, hence replica-deterministic — then becomes the
// lane's acceptor. Lane L's acceptor only ever sees lane L's CONNECTs
// (the gate routes them by the conflict map).
func (s *Server) runLanes(t papi.T) {
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	lanes := t.Lanes()
	pageMu := t.NewMutex() // cross-lane: request-processing lock (Fig. 2 line 19)
	laneMain := func(lt papi.T, lane int) {
		ls := &laneState{
			wlMu:    lt.NewMutexLane(lane),
			wlCond:  lt.NewCondLane(lane),
			allocMu: lt.NewMutexLane(lane),
		}
		if s.cfg.UseHints {
			group := s.cfg.HintGroup
			if group <= 0 {
				group = s.workersFor(lane, lanes)
			}
			// Per-lane barrier id: a soft barrier binds to the lane of its
			// first arrival, so each lane lines up its own interpretations.
			ls.hint = lt.SoftBarrier(fmt.Sprintf("php%d", lane), group, 60)
		}
		for i := 0; i < s.workersFor(lane, lanes); i++ {
			lt.Spawn(fmt.Sprintf("lane%d-worker%d", lane, i), func(wt papi.T) {
				s.worker(wt, &ls.worklist, ls.wlMu, ls.wlCond, pageMu, ls.allocMu, ls.hint)
			})
		}
		s.acceptLoop(lt, l, ls)
	}
	for lane := 1; lane < lanes; lane++ {
		t.SpawnLane(lane, fmt.Sprintf("lane%d-main", lane), func(bt papi.T) {
			laneMain(bt, lane)
		})
	}
	laneMain(t, 0)
}

// workersFor splits cfg.Workers across lanes, remainder to the low lanes,
// at least one worker per lane.
func (s *Server) workersFor(lane, lanes int) int {
	n := s.cfg.Workers / lanes
	if lane < s.cfg.Workers%lanes {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (s *Server) acceptLoop(t papi.T, l papi.Listener, ls *laneState) {
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		ls.wlMu.Lock(t)
		ls.worklist = append(ls.worklist, c)
		ls.wlMu.Unlock(t)
		ls.wlCond.Signal(t)
	}
}

func (s *Server) worker(t papi.T, worklist *[]papi.Conn, wlMu papi.Mutex,
	wlCond papi.Cond, pageMu, allocMu papi.Mutex, hint papi.Barrier) {
	for !t.Killed() {
		wlMu.Lock(t)
		for len(*worklist) == 0 {
			wlCond.Wait(t, wlMu)
		}
		c := (*worklist)[0]
		*worklist = (*worklist)[1:]
		wlMu.Unlock(t)
		s.serveConn(t, c, pageMu, allocMu, hint)
	}
}

func (s *Server) serveConn(t papi.T, c papi.Conn, pageMu, allocMu papi.Mutex, hint papi.Barrier) {
	defer c.Close(t)
	r := httpkit.NewReader(t, c)
	for {
		req, err := r.Next()
		if err != nil {
			return
		}
		resp := s.handle(t, req, pageMu, allocMu, hint)
		if err := resp.Write(t, c, "crane-httpd/2.4", s.cfg.WithDate); err != nil {
			return
		}
		s.stateMu.Lock()
		s.served++
		s.stateMu.Unlock()
		// HTTP/1.0 semantics: close after the response unless the client
		// asked for keep-alive. (Also keeps workers from being pinned to
		// drained connections — see DESIGN.md's liveness note.)
		if !strings.EqualFold(req.Headers["connection"], "keep-alive") {
			return
		}
	}
}

func (s *Server) handle(t papi.T, req *httpkit.Request, pageMu, allocMu papi.Mutex, hint papi.Barrier) *httpkit.Response {
	path := strings.TrimPrefix(req.Path, "/")
	if path == "" {
		path = "index.html"
	}
	file := "www/" + path
	switch req.Method {
	case "HEAD":
		if !s.fs.Exists(file) {
			return &httpkit.Response{Status: 404}
		}
		return &httpkit.Response{Status: 200,
			Headers: []string{fmt.Sprintf("X-Content-Size: %d", s.fs.Size(file))}}
	case "GET":
		// Internal cache: a "read" that mutates execution state (§8's
		// argument against blind read-only optimization).
		if s.cfg.CacheEnabled {
			pageMu.Lock(t)
			s.stateMu.Lock()
			cached, ok := s.cache[file]
			s.stateMu.Unlock()
			pageMu.Unlock(t)
			if ok {
				return &httpkit.Response{Status: 200, Body: cached,
					Headers: []string{"X-Cache: HIT"}}
			}
		}
		src, ok := s.fs.Read(file)
		if !ok {
			return &httpkit.Response{Status: 404, Body: []byte("404 Not Found\n")}
		}
		var body []byte
		if strings.HasSuffix(file, ".php") {
			body = s.interpretPHP(t, file, src, allocMu, hint)
		} else {
			body = src
		}
		// With the cache off there is nothing shared to publish; skipping
		// the (cross-lane) pageMu lets disjoint-path GETs on different
		// lanes complete without ever synchronizing. Single-lane keeps the
		// lock pair so pre-lane schedules are unchanged.
		if s.cfg.CacheEnabled || t.Lanes() == 1 {
			pageMu.Lock(t)
			if s.cfg.CacheEnabled {
				s.stateMu.Lock()
				s.cache[file] = body
				s.stateMu.Unlock()
			}
			pageMu.Unlock(t)
		}
		return &httpkit.Response{Status: 200, Body: body}
	case "PUT":
		pageMu.Lock(t)
		s.fs.Write(file, req.Body)
		s.stateMu.Lock()
		delete(s.cache, file)
		s.stateMu.Unlock()
		pageMu.Unlock(t)
		return &httpkit.Response{Status: 201, Body: []byte("Created\n")}
	case "DELETE":
		pageMu.Lock(t)
		existed := s.fs.Remove(file)
		s.stateMu.Lock()
		delete(s.cache, file)
		s.stateMu.Unlock()
		pageMu.Unlock(t)
		if !existed {
			return &httpkit.Response{Status: 404, Body: []byte("404 Not Found\n")}
		}
		return &httpkit.Response{Status: 200, Body: []byte("Deleted\n")}
	default:
		return &httpkit.Response{Status: 405, Body: []byte("Method Not Allowed\n")}
	}
}

// interpretPHP models the PHP interpreter: PHPChunks compute chunks with
// deterministic pseudo-random sizes (seeded by the page content, so every
// replica computes identically), separated by brief shared-allocator lock
// operations. Hint line 2: line up the parallel interpretations (§7.4).
func (s *Server) interpretPHP(t papi.T, file string, src []byte, allocMu papi.Mutex, hint papi.Barrier) []byte {
	if hint != nil {
		hint.Arrive(t)
	}
	seed := papi.DetRand(uint64(len(src)) ^ hashString(file))
	var out bytes.Buffer
	fmt.Fprintf(&out, "<html><body><!-- interpreted %s -->\n", file)
	for i := 0; i < s.cfg.PHPChunks; i++ {
		// Allocator bookkeeping between chunks: brief lock hold.
		allocMu.Lock(t)
		allocMu.Unlock(t)
		chunk := 1 + papi.DetRandN(seed+uint64(i), 2*s.cfg.PHPChunkWork)
		t.Work(chunk)
		fmt.Fprintf(&out, "<p>chunk %d: %x</p>\n", i, papi.DetRand(seed+uint64(i)))
	}
	out.WriteString("</body></html>\n")
	return out.Bytes()
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var _ papi.Instance = (*Server)(nil)
