// Package mongoose reimplements the concurrency structure of the Mongoose
// embedded web server evaluated in §7: a compact single-listener design
// where the main thread accepts connections and hands each to a fixed pool
// of worker threads via per-worker mailboxes (unlike Apache's shared
// worklist), with one coarse mutex around request dispatch. It serves the
// same ApacheBench PHP workload, and takes the same two-line soft-barrier
// hint (Figure 15 reduces its overhead from 643% to 5.09%).
package mongoose

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"time"

	"crane/internal/apps/httpkit"
	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the server.
type Config struct {
	// Workers is the worker-pool size (default 6).
	Workers int
	// UseHints enables the two-line soft-barrier hint.
	UseHints bool
	// HintGroup is the soft-barrier group size (0 means Workers).
	HintGroup int
	// ScriptChunks / ScriptChunkWork shape the scripting computation, as
	// in the Apache model.
	ScriptChunks    int
	ScriptChunkWork int
	// Port is the listening port (default 8081).
	Port int
	// WithDate adds physical-time Date headers.
	WithDate bool
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Workers: 6, ScriptChunks: 14, ScriptChunkWork: 240, Port: 8081, WithDate: true}
}

// Program packages the server for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 8081
	}
	if cfg.Workers == 0 {
		cfg.Workers = 6
	}
	if cfg.ScriptChunks == 0 {
		cfg.ScriptChunks = 14
	}
	if cfg.ScriptChunkWork == 0 {
		cfg.ScriptChunkWork = 240
	}
	return papi.Program{
		Name:    "mongoose",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
		// Mongoose pins each connection to one worker, so requests on
		// different connections only conflict through document-root writes
		// (guarded by the cross-lane dispatch mutex): connections partition
		// cleanly across lanes with the default connID%lanes router.
		Conflict: &papi.ConflictMap{},
	}
}

// Install populates the document root.
func Install(fs *cfs.FS) {
	fs.Write("etc/mongoose.conf", []byte("document_root www\nnum_threads 6\n"))
	fs.Write("www/index.html", []byte("<html><body>mongoose</body></html>\n"))
	for i := 0; i < 6; i++ {
		fs.Write(fmt.Sprintf("www/app%d.php", i),
			[]byte(fmt.Sprintf("<?php app(%d); ?>\n", i)))
	}
}

// Server is one replica-local Mongoose-like instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	stateMu sync.Mutex //crane:nondet-ok guards counters for Snapshot, which the checkpoint layer drives at quiescent points outside the DMT schedule
	served  uint64
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs}
}

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.served)
	return buf.Bytes(), err
}

// Restore implements papi.Instance.
func (s *Server) Restore(b []byte) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&s.served)
}

// Served returns completed request count.
func (s *Server) Served() uint64 {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.served
}

// mailbox is one worker's connection queue.
type mailbox struct {
	mu    papi.Mutex
	cond  papi.Cond
	queue []papi.Conn
}

// Run implements papi.Instance. Multi-lane configurations switch to the
// partitioned structure of runLanes; the single-lane body below is the
// pre-lane server unchanged.
func (s *Server) Run(t papi.T) {
	if t.Lanes() > 1 {
		s.runLanes(t)
		return
	}
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	dispatchMu := t.NewMutex() // coarse dispatch lock
	var hint papi.Barrier
	if s.cfg.UseHints {
		group := s.cfg.HintGroup
		if group <= 0 {
			group = s.cfg.Workers
		}
		hint = t.SoftBarrier("script", group, 60)
	}
	boxes := make([]*mailbox, s.cfg.Workers)
	for i := range boxes {
		boxes[i] = &mailbox{mu: t.NewMutex(), cond: t.NewCond()}
	}
	for i := 0; i < s.cfg.Workers; i++ {
		box := boxes[i]
		t.Spawn(fmt.Sprintf("mg-worker%d", i), func(wt papi.T) {
			s.workerLoop(wt, box, dispatchMu, dispatchMu, hint)
		})
	}
	s.acceptLoop(t, l, boxes, dispatchMu)
}

// runLanes is the conflict-partitioned structure: each lane gets its own
// acceptor, a share of the worker pool with per-worker mailboxes, its own
// scripting-engine lock, and its own soft barrier. Lanes only meet at the
// cross-lane dispatch mutex, which multi-lane configurations take solely
// for document-root writes (PUT/DELETE).
//
// Each lane is built by its own lane-main thread (the bootstrap discipline
// cross-lane spawns require): the lane main creates the lane's mailboxes
// and worker pool with in-lane spawns, then becomes the lane's acceptor.
func (s *Server) runLanes(t papi.T) {
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	lanes := t.Lanes()
	dispatchMu := t.NewMutex() // cross-lane: document-root writes
	laneMain := func(lt papi.T, lane int) {
		workers := s.cfg.Workers / lanes
		if lane < s.cfg.Workers%lanes {
			workers++
		}
		if workers < 1 {
			workers = 1
		}
		engineMu := lt.NewMutexLane(lane)
		var hint papi.Barrier
		if s.cfg.UseHints {
			group := s.cfg.HintGroup
			if group <= 0 {
				group = workers
			}
			hint = lt.SoftBarrier(fmt.Sprintf("script%d", lane), group, 60)
		}
		boxes := make([]*mailbox, workers)
		for i := range boxes {
			boxes[i] = &mailbox{mu: lt.NewMutexLane(lane), cond: lt.NewCondLane(lane)}
		}
		for i := 0; i < workers; i++ {
			box := boxes[i]
			lt.Spawn(fmt.Sprintf("lane%d-mg-worker%d", lane, i), func(wt papi.T) {
				s.workerLoop(wt, box, dispatchMu, engineMu, hint)
			})
		}
		s.acceptLoop(lt, l, boxes, dispatchMu)
	}
	for lane := 1; lane < lanes; lane++ {
		t.SpawnLane(lane, fmt.Sprintf("lane%d-mg-main", lane), func(bt papi.T) {
			laneMain(bt, lane)
		})
	}
	laneMain(t, 0)
}

func (s *Server) workerLoop(t papi.T, box *mailbox, dispatchMu, engineMu papi.Mutex, hint papi.Barrier) {
	for !t.Killed() {
		box.mu.Lock(t)
		for len(box.queue) == 0 {
			box.cond.Wait(t, box.mu)
		}
		c := box.queue[0]
		box.queue = box.queue[1:]
		box.mu.Unlock(t)
		s.serveConn(t, c, dispatchMu, engineMu, hint)
	}
}

func (s *Server) acceptLoop(t papi.T, l papi.Listener, boxes []*mailbox, dispatchMu papi.Mutex) {
	next := 0
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		box := boxes[next%len(boxes)]
		next++
		box.mu.Lock(t)
		box.queue = append(box.queue, c)
		box.mu.Unlock(t)
		box.cond.Signal(t)
	}
}

func (s *Server) serveConn(t papi.T, c papi.Conn, dispatchMu, engineMu papi.Mutex, hint papi.Barrier) {
	defer c.Close(t)
	r := httpkit.NewReader(t, c)
	for {
		req, err := r.Next()
		if err != nil {
			return
		}
		resp := s.handle(t, req, dispatchMu, engineMu, hint)
		if err := resp.Write(t, c, "crane-mongoose/6.x", s.cfg.WithDate); err != nil {
			return
		}
		s.stateMu.Lock()
		s.served++
		s.stateMu.Unlock()
		// HTTP/1.0: close after the response unless keep-alive requested.
		if !strings.EqualFold(req.Headers["connection"], "keep-alive") {
			return
		}
	}
}

func (s *Server) handle(t papi.T, req *httpkit.Request, dispatchMu, engineMu papi.Mutex, hint papi.Barrier) *httpkit.Response {
	path := strings.TrimPrefix(req.Path, "/")
	if path == "" {
		path = "index.html"
	}
	file := "www/" + path
	switch req.Method {
	case "GET":
		// Multi-lane GETs read the (internally synchronized) filesystem
		// without the cross-lane dispatch lock: reads on different lanes
		// commute. Single-lane keeps the lock pair, preserving pre-lane
		// schedules.
		if t.Lanes() == 1 {
			dispatchMu.Lock(t)
		}
		src, ok := s.fs.Read(file)
		if t.Lanes() == 1 {
			dispatchMu.Unlock(t)
		}
		if !ok {
			return &httpkit.Response{Status: 404, Body: []byte("404 Not Found\n")}
		}
		if strings.HasSuffix(file, ".php") {
			return &httpkit.Response{Status: 200, Body: s.script(t, file, src, engineMu, hint)}
		}
		return &httpkit.Response{Status: 200, Body: src}
	case "PUT":
		dispatchMu.Lock(t)
		s.fs.Write(file, req.Body)
		dispatchMu.Unlock(t)
		return &httpkit.Response{Status: 201, Body: []byte("Created\n")}
	case "DELETE":
		dispatchMu.Lock(t)
		existed := s.fs.Remove(file)
		dispatchMu.Unlock(t)
		if !existed {
			return &httpkit.Response{Status: 404, Body: []byte("404 Not Found\n")}
		}
		return &httpkit.Response{Status: 200, Body: []byte("Deleted\n")}
	default:
		return &httpkit.Response{Status: 405, Body: []byte("Method Not Allowed\n")}
	}
}

// script models the embedded scripting engine: chunked compute with brief
// engine-lock operations between chunks, deterministically seeded.
func (s *Server) script(t papi.T, file string, src []byte, engineMu papi.Mutex, hint papi.Barrier) []byte {
	if hint != nil {
		hint.Arrive(t)
	}
	seed := papi.DetRand(uint64(len(src)) * 2654435761)
	var out bytes.Buffer
	fmt.Fprintf(&out, "<!-- mongoose script %s -->\n", file)
	for i := 0; i < s.cfg.ScriptChunks; i++ {
		engineMu.Lock(t)
		engineMu.Unlock(t)
		t.Work(1 + papi.DetRandN(seed+uint64(i), 2*s.cfg.ScriptChunkWork))
		fmt.Fprintf(&out, "<li>%x</li>\n", papi.DetRand(seed^uint64(i)))
	}
	return out.Bytes()
}

var _ papi.Instance = (*Server)(nil)
