package clients

import (
	"strings"
	"testing"
	"time"

	"crane/internal/simnet"
)

func TestSummaryStatistics(t *testing.T) {
	lats := []time.Duration{5 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	s := summarize(lats, 2, 100*time.Millisecond)
	if s.Requests != 7 || s.Errors != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 3*time.Millisecond {
		t.Fatalf("median = %v", s.Median)
	}
	if s.Mean != 3*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if tp := s.Throughput(); tp < 49 || tp > 51 {
		t.Fatalf("throughput = %f", tp)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := summarize(nil, 3, time.Second)
	if s.Requests != 3 || s.Median != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if (Summary{}).Throughput() != 0 {
		t.Fatal("zero-total throughput not 0")
	}
}

// miniHTTP answers one canned HTTP response per connection.
func miniHTTP(t *testing.T, response string) (Dialer, func()) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	l, err := net.Listen("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c *simnet.Conn) {
				buf := make([]byte, 4096)
				c.SetReadDeadline(time.Now().Add(5 * time.Second))
				c.Read(buf)
				c.Write([]byte(response))
				c.Close()
			}(c)
		}
	}()
	dial := func(client string, port int) (*simnet.Conn, error) {
		return net.Dial(simnet.Addr(client), "srv:80")
	}
	return dial, func() { l.Close() }
}

func TestCurlParsesResponse(t *testing.T) {
	dial, stop := miniHTTP(t, "HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	defer stop()
	status, body, err := Curl(dial, "c:1", 80, "GET", "/x", nil)
	if err != nil || status != 200 || string(body) != "hello" {
		t.Fatalf("Curl = %d, %q, %v", status, body, err)
	}
}

func TestCurlSendsBody(t *testing.T) {
	net := simnet.New(simnet.Options{})
	l, _ := net.Listen("srv:80")
	defer l.Close()
	reqCh := make(chan string, 1)
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 4096)
		var acc []byte
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for !strings.Contains(string(acc), "BODYEND") {
			n, err := c.Read(buf)
			acc = append(acc, buf[:n]...)
			if err != nil {
				break
			}
		}
		reqCh <- string(acc)
		c.Write([]byte("HTTP/1.0 201 Created\r\nContent-Length: 0\r\n\r\n"))
		c.Close()
	}()
	dial := func(client string, port int) (*simnet.Conn, error) {
		return net.Dial(simnet.Addr(client), "srv:80")
	}
	status, _, err := Curl(dial, "c:1", 80, "PUT", "/f", []byte("payload BODYEND"))
	if err != nil || status != 201 {
		t.Fatalf("Curl = %d, %v", status, err)
	}
	raw := <-reqCh
	if !strings.Contains(raw, "PUT /f HTTP/1.0") ||
		!strings.Contains(raw, "Content-Length: 15") ||
		!strings.Contains(raw, "payload BODYEND") {
		t.Fatalf("raw request = %q", raw)
	}
}

func TestCurlMalformedStatus(t *testing.T) {
	dial, stop := miniHTTP(t, "NONSENSE\r\n\r\n")
	defer stop()
	if _, _, err := Curl(dial, "c:1", 80, "GET", "/", nil); err == nil {
		t.Fatal("malformed status accepted")
	}
}

func TestApacheBenchCountsErrors(t *testing.T) {
	dial, stop := miniHTTP(t, "HTTP/1.0 500 Oops\r\nContent-Length: 0\r\n\r\n")
	defer stop()
	sum := ApacheBench(dial, 80, "/", 2, 6)
	if sum.Errors != 6 {
		t.Fatalf("errors = %d, want 6 (500s count as errors)", sum.Errors)
	}
}

func TestApacheBenchHappyPath(t *testing.T) {
	dial, stop := miniHTTP(t, "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok")
	defer stop()
	sum := ApacheBench(dial, 80, "/", 3, 9)
	if sum.Errors != 0 || sum.Requests != 9 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Median <= 0 {
		t.Fatal("median not measured")
	}
}

func TestLineRequestStopsAtPattern(t *testing.T) {
	net := simnet.New(simnet.Options{})
	l, _ := net.Listen("srv:9")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 64)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		c.Read(buf)
		c.Write([]byte("partial...\n"))
		time.Sleep(time.Millisecond)
		c.Write([]byte("SCAN SUMMARY: done\n"))
		// Deliberately leave the connection open: the client must stop
		// at the pattern, not wait for EOF.
	}()
	dial := func(client string, port int) (*simnet.Conn, error) {
		return net.Dial(simnet.Addr(client), "srv:9")
	}
	resp, err := lineRequest(dial, "c:1", 9, "SCAN x", "SCAN SUMMARY:")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "partial") || !strings.Contains(resp, "SCAN SUMMARY:") {
		t.Fatalf("resp = %q", resp)
	}
}

func TestDialerErrorsPropagate(t *testing.T) {
	bad := func(client string, port int) (*simnet.Conn, error) {
		return nil, simnet.ErrRefused
	}
	if _, _, err := Curl(bad, "c:1", 80, "GET", "/", nil); err == nil {
		t.Fatal("dial error swallowed")
	}
	if _, err := ClamdScan(bad, "c:1", 3310, "x"); err == nil {
		t.Fatal("dial error swallowed in ClamdScan")
	}
	if err := SysBenchPrepare(bad, "c:1", 3306, 1); err == nil {
		t.Fatal("dial error swallowed in SysBenchPrepare")
	}
}
