// Package clients implements the workload generators of §7: ApacheBench
// (concurrency-stress HTTP), curl (single requests, the §7.2 PUT/GET
// micro-benchmark), clamdscan, a MediaTomb transcode driver, and a
// SysBench-style SQL load. Each speaks the matching server's wire protocol
// over raw simulated sockets and reports response-time statistics
// ("we measured each workload's response time as it has direct impact on
// users ... ran 1K requests ... picked the median value").
//
// The drivers run on the client side of the wire — outside the replicated
// state machine — so their concurrency and measurement clocks are exempt
// from the papi discipline; the exemptions are annotated where they occur.
// Anything that feeds bytes INTO the servers (the SysBench row data and
// query ids) must still be deterministic so repeated runs exercise
// identical request streams, hence papi.Rand rather than math/rand.
package clients

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crane/internal/papi"
	"crane/internal/simnet"
)

// now is the harness measurement clock: request latencies and socket
// deadlines are observed client-side and never enter replicated state.
var now = time.Now //crane:nondet-ok harness-side measurement clock; client drivers run outside the replicated state machine

// Dialer connects a named client to a server port; implementations route
// to the cluster primary or directly to an un-replicated server.
type Dialer func(client string, port int) (*simnet.Conn, error)

// Summary aggregates a workload run.
type Summary struct {
	Requests int
	Errors   int
	Median   time.Duration
	P90      time.Duration
	Mean     time.Duration
	Total    time.Duration
}

// Throughput returns requests per second over the whole run.
func (s Summary) Throughput() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Requests-s.Errors) / s.Total.Seconds()
}

func summarize(latencies []time.Duration, errs int, total time.Duration) Summary {
	s := Summary{Requests: len(latencies) + errs, Errors: errs, Total: total}
	if len(latencies) == 0 {
		return s
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s.Median = latencies[len(latencies)/2]
	s.P90 = latencies[len(latencies)*9/10]
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	s.Mean = sum / time.Duration(len(latencies))
	return s
}

// collector aggregates per-request outcomes across closed-loop workers
// and hands out request sequence numbers.
type collector struct {
	mu        sync.Mutex //crane:nondet-ok harness-side aggregation on the client of the wire, invisible to replicas
	latencies []time.Duration
	errs      int
	next      int
}

// claim reserves the next request sequence number, or reports exhaustion.
func (c *collector) claim(total int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next >= total {
		return 0, false
	}
	seq := c.next
	c.next++
	return seq, true
}

func (c *collector) record(lat time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if failed {
		c.errs++
	} else {
		c.latencies = append(c.latencies, lat)
	}
}

// runWorkers starts `concurrency` closed-loop workers and waits for all of
// them, mirroring ab's worker pool.
func runWorkers(concurrency int, worker func(w int)) {
	var wg sync.WaitGroup //crane:nondet-ok harness worker pool on the client of the wire, invisible to replicas
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		//crane:nondet-ok harness worker pool on the client of the wire, invisible to replicas
		go func(w int) {
			defer wg.Done()
			worker(w)
		}(w)
	}
	wg.Wait()
}

// readHTTPResponse reads status line, headers, and a Content-Length body.
func readHTTPResponse(c *simnet.Conn) (status int, body []byte, err error) {
	c.SetReadDeadline(now().Add(30 * time.Second))
	var acc []byte
	buf := make([]byte, 4096)
	headerEnd := -1
	for headerEnd < 0 {
		n, rerr := c.Read(buf)
		acc = append(acc, buf[:n]...)
		headerEnd = bytes.Index(acc, []byte("\r\n\r\n"))
		if rerr != nil {
			if headerEnd < 0 {
				return 0, nil, rerr
			}
			break
		}
	}
	head := string(acc[:headerEnd])
	rest := acc[headerEnd+4:]
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 {
		return 0, nil, errors.New("clients: bad status line")
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, fmt.Errorf("clients: bad status: %w", err)
	}
	want := 0
	for _, ln := range lines[1:] {
		if v, ok := strings.CutPrefix(strings.ToLower(ln), "content-length:"); ok {
			want, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	for len(rest) < want {
		n, rerr := c.Read(buf)
		rest = append(rest, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	if len(rest) > want {
		rest = rest[:want]
	}
	return status, rest, nil
}

// Curl performs one HTTP request over a fresh connection (the paper's curl
// usage: connect, send, wait, close — Fig. 3).
func Curl(d Dialer, client string, port int, method, path string, body []byte) (int, []byte, error) {
	c, err := d(client, port)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	var req bytes.Buffer
	fmt.Fprintf(&req, "%s %s HTTP/1.0\r\nHost: crane\r\n", method, path)
	if len(body) > 0 {
		fmt.Fprintf(&req, "Content-Length: %d\r\n", len(body))
	}
	req.WriteString("\r\n")
	req.Write(body)
	if _, err := c.Write(req.Bytes()); err != nil {
		return 0, nil, err
	}
	return readHTTPResponse(c)
}

// ApacheBench issues `total` HTTP GETs of path with the given concurrency,
// one connection per request, mirroring ab's closed-loop workers.
func ApacheBench(d Dialer, port int, path string, concurrency, total int) Summary {
	if concurrency < 1 {
		concurrency = 1
	}
	start := now()
	var col collector
	runWorkers(concurrency, func(w int) {
		for {
			seq, ok := col.claim(total)
			if !ok {
				return
			}
			t0 := now()
			status, _, err := Curl(d, fmt.Sprintf("ab%d:%d", w, seq), port, "GET", path, nil)
			col.record(now().Sub(t0), err != nil || status >= 500 || status == 0)
		}
	})
	return summarize(col.latencies, col.errs, now().Sub(start))
}

// lineRequest sends one text line and reads until stop appears (or EOF).
func lineRequest(d Dialer, client string, port int, line, stop string) (string, error) {
	c, err := d(client, port)
	if err != nil {
		return "", err
	}
	defer c.Close()
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		return "", err
	}
	c.SetReadDeadline(now().Add(60 * time.Second))
	var acc []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := c.Read(buf)
		acc = append(acc, buf[:n]...)
		if stop != "" && bytes.Contains(acc, []byte(stop)) {
			return string(acc), nil
		}
		if rerr != nil {
			if rerr == io.EOF && len(acc) > 0 {
				return string(acc), nil
			}
			return string(acc), rerr
		}
	}
}

// ClamdScan asks the daemon to scan path, returning the report. Like
// clamdscan, it terminates the session with END so the daemon closes the
// connection from its side.
func ClamdScan(d Dialer, client string, port int, path string) (string, error) {
	return lineRequest(d, client, port, "SCAN "+path+"\nEND", "SCAN SUMMARY:")
}

// ClamBench runs `total` scans with the given concurrency.
func ClamBench(d Dialer, port int, path string, concurrency, total int) Summary {
	return lineBench(d, port, "SCAN "+path+"\nEND", "SCAN SUMMARY:", concurrency, total, "cs")
}

// Transcode asks the media server to transcode name, ending the session
// with QUIT so the server closes first.
func Transcode(d Dialer, client string, port int, name string) (string, error) {
	return lineRequest(d, client, port, "TRANSCODE "+name+"\nQUIT", "DONE ")
}

// MediaBench runs `total` transcodes with the given concurrency
// (ApacheBench against MediaTomb's web interface in the paper).
func MediaBench(d Dialer, port int, name string, concurrency, total int) Summary {
	return lineBench(d, port, "TRANSCODE "+name+"\nQUIT", "DONE ", concurrency, total, "mb")
}

func lineBench(d Dialer, port int, line, stop string, concurrency, total int, prefix string) Summary {
	if concurrency < 1 {
		concurrency = 1
	}
	start := now()
	var col collector
	runWorkers(concurrency, func(w int) {
		for {
			seq, ok := col.claim(total)
			if !ok {
				return
			}
			t0 := now()
			resp, err := lineRequest(d, fmt.Sprintf("%s%d:%d", prefix, w, seq), port, line, stop)
			col.record(now().Sub(t0), err != nil || strings.Contains(resp, "ERROR"))
		}
	})
	return summarize(col.latencies, col.errs, now().Sub(start))
}

// SysBenchPrepare creates and populates the sbtest table over one
// connection (sysbench's prepare phase; this is what makes MySQL's
// filesystem checkpoint large, Table 2). Row content is drawn from
// papi.Rand so every run feeds the replicas a byte-identical table.
func SysBenchPrepare(d Dialer, client string, port int, rows int) error {
	c, err := d(client, port)
	if err != nil {
		return err
	}
	defer c.Close()
	send := func(stmt, want string) error {
		if _, err := c.Write([]byte(stmt + "\n")); err != nil {
			return err
		}
		c.SetReadDeadline(now().Add(60 * time.Second))
		var acc []byte
		buf := make([]byte, 512)
		for !bytes.Contains(acc, []byte("\n")) {
			n, rerr := c.Read(buf)
			acc = append(acc, buf[:n]...)
			if rerr != nil {
				return fmt.Errorf("clients: sysbench prepare read: %w", rerr)
			}
		}
		if !strings.HasPrefix(string(acc), want) {
			return fmt.Errorf("clients: %q -> %q", stmt, bytes.TrimSpace(acc))
		}
		return nil
	}
	if err := send("CREATE TABLE sbtest (id k c pad)", "OK"); err != nil {
		return err
	}
	rng := papi.NewRand(1)
	for i := 1; i <= rows; i++ {
		stmt := fmt.Sprintf("INSERT INTO sbtest VALUES %d %d 'c-%08d' 'pad-%016x'",
			i, rng.Intn(rows)+1, i, rng.Int63())
		if err := send(stmt, "OK"); err != nil {
			return err
		}
	}
	// End the session server-side, as the mysql client's QUIT does.
	c.Write([]byte("QUIT\n"))
	return nil
}

// SysBench runs `total` random point SELECTs (sysbench oltp read-only's
// dominant statement) with the given concurrency, each over a fresh
// session like the other workloads. Query ids come from papi.Rand seeded
// per worker, so the request stream the replicas see is reproducible.
func SysBench(d Dialer, port int, tableRows, concurrency, total int) Summary {
	if concurrency < 1 {
		concurrency = 1
	}
	start := now()
	var col collector
	runWorkers(concurrency, func(w int) {
		rng := papi.NewRand(int64(w) + 7)
		for {
			seq, ok := col.claim(total)
			if !ok {
				return
			}
			id := rng.Intn(tableRows) + 1
			t0 := now()
			resp, err := lineRequest(d, fmt.Sprintf("sb%d:%d", w, seq), port,
				fmt.Sprintf("SELECT * FROM sbtest WHERE id = %d\nQUIT", id), "ROWS ")
			col.record(now().Sub(t0), err != nil || !strings.HasPrefix(resp, "ROWS"))
		}
	})
	return summarize(col.latencies, col.errs, now().Sub(start))
}
