// Package mediatomb reimplements the concurrency structure of the
// MediaTomb uPnP media server evaluated in §7: clients request transcodes
// of library media; each request drives a mencoder-like transcoder whose
// computation dominates request latency (the paper's MediaTomb requests
// take ~9.7s, giving it the highest time-bubble ratio in Table 1, and its
// transcoder speeds *up* under Parrot thanks to far fewer synchronization
// context switches — the one speedup bar of Figure 14).
//
// The transcoder splits the video into segments; a small encoder pool
// processes segments in parallel, with frequent brief codec-lock
// operations (the 0.9M-sync-context-switch behaviour VTune showed, §7.3).
package mediatomb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/papi"
)

// Config shapes the server.
type Config struct {
	// Handlers is the number of request-handler threads (default 2).
	Handlers int
	// Encoders is the parallel segment-encoder pool size (default 6).
	Encoders int
	// Segments per transcode and work per segment.
	Segments       int
	WorkPerSegment int
	// SyncsPerSegment is how many brief codec-lock operations each
	// segment encoder performs (high: mencoder's pathological sync rate).
	SyncsPerSegment int
	// Port is the listening port (default 50500).
	Port int
}

// DefaultConfig mirrors the paper's setup, scaled to simulation units.
func DefaultConfig() Config {
	return Config{Handlers: 6, Encoders: 6, Segments: 12, WorkPerSegment: 600,
		SyncsPerSegment: 24, Port: 50500}
}

// Program packages the server for deployment.
func Program(cfg Config) papi.Program {
	if cfg.Port == 0 {
		cfg.Port = 50500
	}
	if cfg.Handlers == 0 {
		cfg.Handlers = 2
	}
	if cfg.Encoders == 0 {
		cfg.Encoders = 6
	}
	if cfg.Segments == 0 {
		cfg.Segments = 12
	}
	if cfg.WorkPerSegment == 0 {
		cfg.WorkPerSegment = 600
	}
	if cfg.SyncsPerSegment == 0 {
		cfg.SyncsPerSegment = 24
	}
	return papi.Program{
		Name:    "mediatomb",
		Ports:   []int{cfg.Port},
		Install: Install,
		New: func(fs *cfs.FS) papi.Instance {
			return New(cfg, fs)
		},
		// No Conflict declaration: transcoding sessions share the library
		// database too intimately to partition safely. An undeclared
		// program always runs single-lane (Program.EffectiveLanes clamps
		// any requested lane count to 1), so its schedules are bit-for-bit
		// the pre-lane ones — the migration path for unported servers.
	}
}

// Install populates the media library (the paper transcodes a 15MB AVI;
// sizes here are scaled).
func Install(fs *cfs.FS) {
	fs.Write("etc/mediatomb/config.xml",
		[]byte("<config><transcoding enabled=\"yes\"/></config>\n"))
	for i := 0; i < 4; i++ {
		size := 32*1024 + papi.DetRandN(uint64(i)*104729, 32*1024)
		media := make([]byte, size)
		for j := range media {
			media[j] = byte(papi.DetRand(uint64(i)<<32 | uint64(j)))
		}
		fs.Write(fmt.Sprintf("media/video%d.avi", i), media)
	}
	// SQLite-backed library database (the paper names MediaTomb's SQLite
	// storage as replication-worthy state).
	fs.Write("db/mediatomb.sqlite", []byte("library:\nvideo0.avi\nvideo1.avi\nvideo2.avi\nvideo3.avi\n"))
}

// Server is one replica-local MediaTomb instance.
type Server struct {
	cfg Config
	fs  *cfs.FS

	stateMu    sync.Mutex //crane:nondet-ok guards counters for Snapshot, which the checkpoint layer drives at quiescent points outside the DMT schedule
	transcoded uint64
}

// New creates an instance bound to the replica filesystem.
func New(cfg Config, fs *cfs.FS) *Server {
	return &Server{cfg: cfg, fs: fs}
}

// Snapshot implements papi.Instance.
func (s *Server) Snapshot() ([]byte, error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.transcoded)
	return buf.Bytes(), err
}

// Restore implements papi.Instance.
func (s *Server) Restore(b []byte) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&s.transcoded)
}

// Transcoded returns the completed-transcode counter.
func (s *Server) Transcoded() uint64 {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.transcoded
}

// segJob is one segment to encode.
type segJob struct {
	media []byte
	index int
	out   *segResults
}

type segResults struct {
	mu      papi.Mutex
	cond    papi.Cond
	pending int
	bytes   int
}

// Run implements papi.Instance.
func (s *Server) Run(t papi.T) {
	l, err := t.Listen(s.cfg.Port)
	if err != nil {
		return
	}
	var (
		jobs  []segJob
		jobMu = t.NewMutex()
		jobCv = t.NewCond()
		codec = t.NewMutex() // shared codec/allocator lock
		conns []papi.Conn
		cMu   = t.NewMutex()
		cCv   = t.NewCond()
	)
	for i := 0; i < s.cfg.Encoders; i++ {
		t.Spawn(fmt.Sprintf("encoder%d", i), func(wt papi.T) {
			for !wt.Killed() {
				jobMu.Lock(wt)
				for len(jobs) == 0 {
					jobCv.Wait(wt, jobMu)
				}
				job := jobs[0]
				jobs = jobs[1:]
				jobMu.Unlock(wt)
				s.encodeSegment(wt, job, codec)
			}
		})
	}
	for i := 0; i < s.cfg.Handlers; i++ {
		t.Spawn(fmt.Sprintf("mt-handler%d", i), func(wt papi.T) {
			for !wt.Killed() {
				cMu.Lock(wt)
				for len(conns) == 0 {
					cCv.Wait(wt, cMu)
				}
				c := conns[0]
				conns = conns[1:]
				cMu.Unlock(wt)
				s.serveConn(wt, c, &jobs, jobMu, jobCv)
			}
		})
	}
	for !t.Killed() {
		if !l.Poll(t, 50*time.Millisecond) {
			continue
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		cMu.Lock(t)
		conns = append(conns, c)
		cMu.Unlock(t)
		cCv.Signal(t)
	}
}

func (s *Server) serveConn(t papi.T, c papi.Conn, jobs *[]segJob, jobMu papi.Mutex, jobCv papi.Cond) {
	defer c.Close(t)
	var acc []byte
	buf := make([]byte, 512)
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		line := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		parts := strings.Fields(line)
		if len(parts) == 0 {
			continue
		}
		switch parts[0] {
		case "LIST":
			files := s.fs.List("media/")
			c.Send(t, []byte(strings.Join(files, "\n")+"\n"))
		case "PROBE":
			if len(parts) != 2 {
				c.Send(t, []byte("ERROR usage: PROBE <file>\n"))
				continue
			}
			data, ok := s.fs.Read("media/" + parts[1])
			if !ok {
				c.Send(t, []byte("ERROR no such media\n"))
				continue
			}
			// Container probing: deterministic pseudo-metadata.
			t.Work(len(data) / 4096)
			c.Send(t, []byte(fmt.Sprintf("MEDIA %s size=%d codec=avi.%x\n",
				parts[1], len(data), papi.DetRand(uint64(len(data)))%16)))
		case "TRANSCODE":
			if len(parts) != 2 {
				c.Send(t, []byte("ERROR usage: TRANSCODE <file>\n"))
				continue
			}
			s.transcode(t, c, parts[1], jobs, jobMu, jobCv)
		case "QUIT":
			return
		default:
			c.Send(t, []byte("ERROR unknown command\n"))
		}
	}
}

// transcode fans the media file's segments out to the encoder pool, waits,
// writes the output container to the filesystem, and reports.
func (s *Server) transcode(t papi.T, c papi.Conn, name string, jobs *[]segJob, jobMu papi.Mutex, jobCv papi.Cond) {
	media, ok := s.fs.Read("media/" + name)
	if !ok {
		c.Send(t, []byte("ERROR no such media\n"))
		return
	}
	res := &segResults{mu: t.NewMutex(), cond: t.NewCond(), pending: s.cfg.Segments}
	segSize := len(media) / s.cfg.Segments
	jobMu.Lock(t)
	for i := 0; i < s.cfg.Segments; i++ {
		lo := i * segSize
		hi := lo + segSize
		if i == s.cfg.Segments-1 {
			hi = len(media)
		}
		*jobs = append(*jobs, segJob{media: media[lo:hi], index: i, out: res})
	}
	jobMu.Unlock(t)
	jobCv.Broadcast(t)

	res.mu.Lock(t)
	for res.pending > 0 {
		res.cond.Wait(t, res.mu)
	}
	outBytes := res.bytes
	res.mu.Unlock(t)

	outName := "work/" + strings.TrimSuffix(name, ".avi") + ".mp4"
	out := []byte(fmt.Sprintf("MP4 transcode of %s: %d bytes from %d segments\n",
		name, outBytes, s.cfg.Segments))
	s.fs.Write(outName, out)
	s.stateMu.Lock()
	s.transcoded++
	s.stateMu.Unlock()
	c.Send(t, []byte(fmt.Sprintf("DONE %s %d\n", outName, outBytes)))
}

// encodeSegment performs the compute for one segment with frequent brief
// codec-lock operations, mirroring mencoder's sync-heavy profile.
func (s *Server) encodeSegment(t papi.T, job segJob, codec papi.Mutex) {
	per := s.cfg.WorkPerSegment / s.cfg.SyncsPerSegment
	if per < 1 {
		per = 1
	}
	for i := 0; i < s.cfg.SyncsPerSegment; i++ {
		codec.Lock(t)
		codec.Unlock(t)
		t.Work(per)
	}
	job.out.mu.Lock(t)
	job.out.bytes += len(job.media) / 2 // "compressed" size
	job.out.pending--
	done := job.out.pending == 0
	job.out.mu.Unlock(t)
	if done {
		job.out.cond.Broadcast(t)
	}
}

var _ papi.Instance = (*Server)(nil)
