// Package apps_test exercises the five server programs directly on the
// baseline (nondet) runtime, independent of replication: protocol
// correctness, state snapshots, and workload clients.
package apps_test

import (
	"strings"
	"testing"
	"time"

	"crane/internal/apps/clamav"
	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mediatomb"
	"crane/internal/apps/mongoose"
	"crane/internal/apps/mysqld"
	"crane/internal/cfs"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// startNondet deploys a program on a fresh network and returns a dialer.
func startNondet(t *testing.T, prog papi.Program) (clients.Dialer, papi.Instance, func()) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: 20 * time.Microsecond})
	fs := cfs.New()
	if prog.Install != nil {
		prog.Install(fs)
	}
	inst := prog.New(fs)
	proc := papi.NewNondetProc(net, "server", fs)
	proc.Start(inst)
	dial := func(client string, port int) (*simnet.Conn, error) {
		var c *simnet.Conn
		var err error
		for i := 0; i < 300; i++ {
			c, err = net.Dial(simnet.Addr(client), simnet.Addr("server:"+itoa(port)))
			if err == nil {
				return c, nil
			}
			time.Sleep(time.Millisecond)
		}
		return nil, err
	}
	return dial, inst, func() { proc.Kill() }
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestHTTPDStaticAndPHP(t *testing.T) {
	dial, _, stop := startNondet(t, httpd.Program(httpd.DefaultConfig()))
	defer stop()
	status, body, err := clients.Curl(dial, "c:1", 8080, "GET", "/index.html", nil)
	if err != nil || status != 200 {
		t.Fatalf("GET index: %d, %v", status, err)
	}
	if !strings.Contains(string(body), "It works!") {
		t.Fatalf("body = %q", body)
	}
	status, body, err = clients.Curl(dial, "c:2", 8080, "GET", "/page0.php", nil)
	if err != nil || status != 200 {
		t.Fatalf("GET php: %d, %v", status, err)
	}
	if !strings.Contains(string(body), "interpreted www/page0.php") {
		t.Fatalf("php body = %q", body)
	}
	// PHP output is deterministic: repeated fetches byte-identical.
	_, body2, err := clients.Curl(dial, "c:3", 8080, "GET", "/page0.php", nil)
	if err != nil || string(body) != string(body2) {
		t.Fatalf("php output not deterministic")
	}
}

func TestHTTPDPutGetDelete(t *testing.T) {
	dial, _, stop := startNondet(t, httpd.Program(httpd.DefaultConfig()))
	defer stop()
	status, _, err := clients.Curl(dial, "c:1", 8080, "PUT", "/a.php", []byte("<?php new page ?>"))
	if err != nil || status != 201 {
		t.Fatalf("PUT: %d, %v", status, err)
	}
	status, body, err := clients.Curl(dial, "c:2", 8080, "GET", "/a.php", nil)
	if err != nil || status != 200 {
		t.Fatalf("GET after PUT: %d, %v", status, err)
	}
	if !strings.Contains(string(body), "interpreted www/a.php") {
		t.Fatalf("body = %q", body)
	}
	status, _, err = clients.Curl(dial, "c:3", 8080, "DELETE", "/a.php", nil)
	if err != nil || status != 200 {
		t.Fatalf("DELETE: %d, %v", status, err)
	}
	status, _, _ = clients.Curl(dial, "c:4", 8080, "GET", "/a.php", nil)
	if status != 404 {
		t.Fatalf("GET after DELETE = %d, want 404", status)
	}
}

func TestHTTPDCacheHit(t *testing.T) {
	cfg := httpd.DefaultConfig()
	dial, _, stop := startNondet(t, httpd.Program(cfg))
	defer stop()
	clients.Curl(dial, "c:1", 8080, "GET", "/index.html", nil)
	status, _, err := clients.Curl(dial, "c:2", 8080, "GET", "/index.html", nil)
	if err != nil || status != 200 {
		t.Fatalf("second GET: %d, %v", status, err)
	}
	// PUT invalidates the cache.
	clients.Curl(dial, "c:3", 8080, "PUT", "/index.html", []byte("fresh"))
	_, body, _ := clients.Curl(dial, "c:4", 8080, "GET", "/index.html", nil)
	if string(body) != "fresh" {
		t.Fatalf("stale cache after PUT: %q", body)
	}
}

func TestHTTPDApacheBench(t *testing.T) {
	cfg := httpd.DefaultConfig()
	cfg.PHPChunks = 4
	cfg.PHPChunkWork = 20
	dial, inst, stop := startNondet(t, httpd.Program(cfg))
	defer stop()
	sum := clients.ApacheBench(dial, 8080, "/page1.php", 4, 24)
	if sum.Errors != 0 {
		t.Fatalf("ab errors: %+v", sum)
	}
	if sum.Median <= 0 {
		t.Fatalf("no latency measured: %+v", sum)
	}
	if got := inst.(*httpd.Server).Served(); got < 24 {
		t.Fatalf("served = %d", got)
	}
}

func TestMongooseServesAndHints(t *testing.T) {
	cfg := mongoose.DefaultConfig()
	cfg.UseHints = true
	cfg.ScriptChunks = 4
	cfg.ScriptChunkWork = 20
	dial, inst, stop := startNondet(t, mongoose.Program(cfg))
	defer stop()
	status, body, err := clients.Curl(dial, "c:1", 8081, "GET", "/app0.php", nil)
	if err != nil || status != 200 {
		t.Fatalf("GET: %d, %v", status, err)
	}
	if !strings.Contains(string(body), "mongoose script") {
		t.Fatalf("body = %q", body)
	}
	sum := clients.ApacheBench(dial, 8081, "/app1.php", 3, 12)
	if sum.Errors != 0 {
		t.Fatalf("ab on mongoose: %+v", sum)
	}
	if inst.(*mongoose.Server).Served() < 13 {
		t.Fatalf("served = %d", inst.(*mongoose.Server).Served())
	}
}

func TestClamAVScanFindsAndDeletes(t *testing.T) {
	dial, inst, stop := startNondet(t, clamav.Program(clamav.DefaultConfig()))
	defer stop()
	report, err := clients.ClamdScan(dial, "c:1", 3310, "src/clamav")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "malware0.bin: Eicar-Test-Signature FOUND") ||
		!strings.Contains(report, "malware1.bin: Eicar-Test-Signature FOUND") {
		t.Fatalf("report = %q", report)
	}
	if !strings.Contains(report, "scanned 38 infected 2") {
		t.Fatalf("summary = %q", report)
	}
	// Infected files were deleted: a rescan is clean.
	report2, err := clients.ClamdScan(dial, "c:2", 3310, "src/clamav")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report2, "FOUND") {
		t.Fatalf("second scan still infected: %q", report2)
	}
	scanned, infected := inst.(*clamav.Server).Totals()
	if scanned != 38+36 || infected != 2 {
		t.Fatalf("totals = %d, %d", scanned, infected)
	}
}

func TestClamAVPingVersion(t *testing.T) {
	dial, _, stop := startNondet(t, clamav.Program(clamav.DefaultConfig()))
	defer stop()
	c, err := dial("c:1", 3310)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("PING\n"))
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := c.Read(buf)
	if err != nil || strings.TrimSpace(string(buf[:n])) != "PONG" {
		t.Fatalf("PING -> %q, %v", buf[:n], err)
	}
}

func TestMediaTombTranscode(t *testing.T) {
	cfg := mediatomb.DefaultConfig()
	cfg.WorkPerSegment = 60
	dial, inst, stop := startNondet(t, mediatomb.Program(cfg))
	defer stop()
	resp, err := clients.Transcode(dial, "c:1", 50500, "video0.avi")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "DONE work/video0.mp4") {
		t.Fatalf("resp = %q", resp)
	}
	if inst.(*mediatomb.Server).Transcoded() != 1 {
		t.Fatal("transcode counter wrong")
	}
	// The output container landed in the working directory.
	srv := inst.(*mediatomb.Server)
	_ = srv
}

func TestMediaTombUnknownMedia(t *testing.T) {
	dial, _, stop := startNondet(t, mediatomb.Program(mediatomb.DefaultConfig()))
	defer stop()
	resp, err := clients.Transcode(dial, "c:1", 50500, "missing.avi")
	if err == nil && !strings.Contains(resp, "ERROR") {
		t.Fatalf("resp = %q", resp)
	}
}

func TestMySQLCrud(t *testing.T) {
	dial, inst, stop := startNondet(t, mysqld.Program(mysqld.DefaultConfig()))
	defer stop()
	if err := clients.SysBenchPrepare(dial, "c:0", 3306, 50); err != nil {
		t.Fatal(err)
	}
	if got := inst.(*mysqld.Server).TableRows("sbtest"); got != 50 {
		t.Fatalf("rows = %d", got)
	}
	sum := clients.SysBench(dial, 3306, 50, 4, 40)
	if sum.Errors != 0 {
		t.Fatalf("sysbench errors: %+v", sum)
	}
}

func TestMySQLStatements(t *testing.T) {
	dial, _, stop := startNondet(t, mysqld.Program(mysqld.DefaultConfig()))
	defer stop()
	c, err := dial("c:1", 3306)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exch := func(stmt string) string {
		if _, err := c.Write([]byte(stmt + "\n")); err != nil {
			t.Fatalf("write %q: %v", stmt, err)
		}
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 4096)
		var acc []byte
		for !strings.Contains(string(acc), "\n") {
			n, err := c.Read(buf)
			acc = append(acc, buf[:n]...)
			if err != nil {
				t.Fatalf("read after %q: %v (got %q)", stmt, err, acc)
			}
		}
		return string(acc)
	}
	if got := exch("CREATE TABLE users (id name city)"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("CREATE -> %q", got)
	}
	exch("INSERT INTO users VALUES 1 'alice' 'nyc'")
	exch("INSERT INTO users VALUES 2 'bob' 'sf'")
	exch("INSERT INTO users VALUES 3 'carol' 'nyc'")
	if got := exch("SELECT name FROM users WHERE id = 2"); !strings.Contains(got, "bob") {
		t.Fatalf("point SELECT -> %q", got)
	}
	if got := exch("SELECT * FROM users WHERE id BETWEEN 2 AND 3"); !strings.HasPrefix(got, "ROWS 2") {
		t.Fatalf("range SELECT -> %q", got)
	}
	if got := exch("UPDATE users SET city = 'la' WHERE name = 'bob'"); !strings.HasPrefix(got, "OK 1") {
		t.Fatalf("UPDATE -> %q", got)
	}
	if got := exch("SELECT city FROM users WHERE id = 2"); !strings.Contains(got, "la") {
		t.Fatalf("SELECT after UPDATE -> %q", got)
	}
	if got := exch("DELETE FROM users WHERE city = 'nyc'"); !strings.HasPrefix(got, "OK 2") {
		t.Fatalf("DELETE -> %q", got)
	}
	if got := exch("SELECT * FROM users"); !strings.HasPrefix(got, "ROWS 1") {
		t.Fatalf("final SELECT -> %q", got)
	}
	if got := exch("SELECT * FROM nosuch"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("missing table -> %q", got)
	}
	if got := exch("GARBAGE"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("garbage -> %q", got)
	}
}

func TestMySQLPersistence(t *testing.T) {
	prog := mysqld.Program(mysqld.DefaultConfig())
	net := simnet.New(simnet.Options{})
	fs := cfs.New()
	prog.Install(fs)
	inst := prog.New(fs)
	proc := papi.NewNondetProc(net, "server", fs)
	proc.Start(inst)
	defer proc.Kill()
	dial := func(client string, port int) (*simnet.Conn, error) {
		return net.Dial(simnet.Addr(client), simnet.Addr("server:3306"))
	}
	var err error
	for i := 0; i < 100; i++ {
		if err = clients.SysBenchPrepare(clients.Dialer(dial), "c:0", 3306, 20); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size("data/sbtest.ibd") == 0 {
		t.Fatal("table file not persisted")
	}
}

func TestSnapshotRestoreRoundTripApps(t *testing.T) {
	// Every app's Snapshot/Restore round-trips through a fresh instance.
	progs := []papi.Program{
		httpd.Program(httpd.DefaultConfig()),
		mongoose.Program(mongoose.DefaultConfig()),
		clamav.Program(clamav.DefaultConfig()),
		mediatomb.Program(mediatomb.DefaultConfig()),
		mysqld.Program(mysqld.DefaultConfig()),
	}
	for _, prog := range progs {
		fs := cfs.New()
		if prog.Install != nil {
			prog.Install(fs)
		}
		inst := prog.New(fs)
		snap, err := inst.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", prog.Name, err)
		}
		inst2 := prog.New(fs)
		if err := inst2.Restore(snap); err != nil {
			t.Fatalf("%s: restore: %v", prog.Name, err)
		}
	}
}
