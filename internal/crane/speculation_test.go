package crane

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"crane/internal/apps/httpd"
	"crane/internal/simnet"
	"crane/internal/trace"
)

// specClusterConfig is detClusterConfig plus speculation; the election
// timeout is pinned low so the partition tests fail over quickly.
func specClusterConfig() Config {
	cfg := detClusterConfig()
	cfg.Speculation = true
	cfg.ElectionTimeout = 150 * time.Millisecond
	return cfg
}

// TestSpeculationHTTPDHitPath runs the pinned serial workload with
// speculation on: every burst should execute ahead of its commit and be
// confirmed (no aborts), replicas must stay bit-identical, and with
// Config.Speculation default-off the golden-schedule test elsewhere in
// this package proves the pre-speculation pipeline is untouched.
func TestSpeculationHTTPDHitPath(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitScheduleStable(t, c)
	for i := 0; i < 6; i++ {
		req := []byte(fmt.Sprintf("GET /page%d.php HTTP/1.0\r\n\r\n", i%2))
		resp, err := c.DialAndRequest(fmt.Sprintf("spec:%d", i), 8080, req, 1)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Contains(resp, []byte("200 OK")) {
			t.Fatalf("request %d: unexpected response %q", i, resp)
		}
		waitScheduleStable(t, c)
	}
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	st := p.SpecStats()
	if st.Windows == 0 || st.Hits == 0 {
		t.Fatalf("speculation never engaged: %+v", st)
	}
	if st.Rollbacks != 0 {
		t.Fatalf("unexpected rollback on the hit path: %+v", st)
	}
	if st.Pending != 0 || st.Buffered != 0 {
		t.Fatalf("window left open after quiescence: %+v", st)
	}
	assertReplicasConverged(t, c, allReplicaIDs(c))
}

// forceSpecAbort partitions the primary off the consensus fabric and
// drives a canary PUT into it: the stranded primary speculates the burst
// (its local ProposeBatch still succeeds), executes it, and buffers the
// response — which can never commit. Returns the stranded primary's id.
// The caller owns the follow-up (heal for a rollback, or kill).
func forceSpecAbort(t *testing.T, c *Cluster, canary string) int {
	t.Helper()
	// Committed warm-up traffic, so the eventual replay is non-trivial.
	if _, err := c.DialAndRequest("warm:1", 8080, []byte("GET /index.html HTTP/1.0\r\n\r\n"), 1); err != nil {
		t.Fatal(err)
	}
	waitScheduleStable(t, c)
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	c.PartitionReplica(p.ID())

	base := p.sq.SpecConsumed()
	conn, err := c.Net().Dial(simnet.Addr("canary:1"), c.Addr(p.ID(), 8080))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			n, rerr := conn.Read(buf)
			mu.Lock()
			got = append(got, buf[:n]...)
			mu.Unlock()
			if rerr != nil {
				return
			}
		}
	}()
	req := fmt.Sprintf("PUT /canary.html HTTP/1.0\r\nContent-Length: %d\r\n\r\n%s", len(canary), canary)
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	// Wait until the stranded primary consumes the burst speculatively.
	waitFor(t, 5*time.Second, "speculative consumption", func() bool {
		return p.sq.SpecConsumed() > base
	})
	// Close the client side: its EOF rides in as a speculated CLOSE, which
	// unblocks the worker's gate (the sequence stays non-empty) so the
	// handler runs to completion and its response lands in the buffer.
	conn.Close()
	waitFor(t, 5*time.Second, "buffered speculative output", func() bool {
		return p.SpecStats().Buffered > 0
	})
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(got) > 0 {
		t.Fatalf("aborted speculation leaked %d bytes to the client: %q", len(got), got)
	}
	return p.ID()
}

// TestSpeculationForcedMismatchRollback partitions a speculating primary
// mid-burst, lets the survivors elect a new primary and commit entries the
// stranded replica never speculated, then heals it: the commit-order
// mismatch must trigger a full checkpoint rollback, after which all three
// replicas converge to bit-identical schedules and output streams.
func TestSpeculationForcedMismatchRollback(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitScheduleStable(t, c)
	old := forceSpecAbort(t, c, "MISMATCH-CANARY")

	np := waitNewPrimary(t, c, old)
	resp := rawRequest(t, c, "nb:1", np.ID(), "GET /index.html HTTP/1.0\r\n\r\n")
	if !bytes.Contains(resp, []byte("It works!")) {
		t.Fatalf("new primary response: %q", resp)
	}

	c.HealReplica(old)
	waitFor(t, 10*time.Second, "rollback on the healed replica", func() bool {
		st := c.Replica(old).SpecStats()
		return st.Aborts >= 1 && st.Rollbacks >= 1 && st.Pending == 0
	})
	// One more committed request after repair, then all three must agree.
	if _, err := c.DialAndRequest("post:1", 8080, []byte("GET /page0.php HTTP/1.0\r\n\r\n"), 1); err != nil {
		t.Fatal(err)
	}
	assertReplicasConverged(t, c, allReplicaIDs(c))
	st := c.Replica(old).SpecStats()
	if st.LightAborts == st.Aborts {
		t.Fatalf("expected a full (not light) abort: %+v", st)
	}
}

// TestSpeculationLeaderKillDuringWindow kills the stranded primary while
// its speculation window is still open (buffered output and all): the
// survivors must fail over and stay bit-identical, and the aborted
// speculation must never have reached the client.
func TestSpeculationLeaderKillDuringWindow(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitScheduleStable(t, c)
	old := forceSpecAbort(t, c, "LEADERKILL-CANARY")
	c.FailReplica(old)

	np := waitNewPrimary(t, c, old)
	resp := rawRequest(t, c, "nb:1", np.ID(), "GET /index.html HTTP/1.0\r\n\r\n")
	if !bytes.Contains(resp, []byte("It works!")) {
		t.Fatalf("new primary response: %q", resp)
	}
	var survivors []int
	for i := 0; i < c.Replicas(); i++ {
		if i != old {
			survivors = append(survivors, i)
		}
	}
	assertReplicasConverged(t, c, survivors)
	assertNoCanary(t, c, survivors, "LEADERKILL-CANARY")
}

// TestSpeculationAbortDiscardsBufferedEffects is the deep no-leak check
// for the abort path: after the forced mismatch and rollback, the canary
// PUT's effects must be gone everywhere — no replica's output log, no
// replica's filesystem, and (asserted inside forceSpecAbort) no client
// socket ever carried a byte of it.
func TestSpeculationAbortDiscardsBufferedEffects(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitScheduleStable(t, c)
	const canary = "SPECLEAK-CANARY"
	old := forceSpecAbort(t, c, canary)

	np := waitNewPrimary(t, c, old)
	rawRequest(t, c, "nb:1", np.ID(), "GET /index.html HTTP/1.0\r\n\r\n")
	c.HealReplica(old)
	waitFor(t, 10*time.Second, "rollback on the healed replica", func() bool {
		st := c.Replica(old).SpecStats()
		return st.Rollbacks >= 1 && st.Pending == 0
	})
	assertReplicasConverged(t, c, allReplicaIDs(c))
	assertNoCanary(t, c, allReplicaIDs(c), canary)
	// The speculative fs.Write must have been rolled back with the rest of
	// the execution state.
	for _, path := range []string{"www/canary.html", "www//canary.html"} {
		if c.Replica(old).FS().Exists(path) {
			t.Fatalf("canary file %q survived the rollback", path)
		}
	}
}

// TestSpeculationRollbackFromBoundary forces the rollback to restore from
// an installed checkpoint boundary instead of genesis (boundaryEvery=1
// makes every quiet moment a capture opportunity) and then asserts that
// outputs committed AFTER the repair still reach the output log and the
// clients. This is the regression test for boundary-relative replay
// suppression: suppression must count only the outputs recorded since the
// boundary, not every output ever recorded — otherwise the replica
// silently swallows that many fresh committed responses after the replay.
func TestSpeculationRollbackFromBoundary(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	setSpecTuning(c, 1, 0)
	waitScheduleStable(t, c)
	// Committed traffic first, so the boundary state embodies recorded
	// outputs (the counts stale suppression would swallow).
	for i := 0; i < 2; i++ {
		if _, err := c.DialAndRequest(fmt.Sprintf("bwarm:%d", i), 8080,
			[]byte("GET /index.html HTTP/1.0\r\n\r\n"), 1); err != nil {
			t.Fatal(err)
		}
		waitScheduleStable(t, c)
	}
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "boundary capture on the primary", func() bool {
		return specBoundaryIndex(p) > 0
	})

	old := forceSpecAbort(t, c, "BOUNDARY-CANARY")
	np := waitNewPrimary(t, c, old)
	resp := rawRequest(t, c, "nb:1", np.ID(), "GET /index.html HTTP/1.0\r\n\r\n")
	if !bytes.Contains(resp, []byte("It works!")) {
		t.Fatalf("new primary response: %q", resp)
	}
	c.HealReplica(old)
	waitFor(t, 10*time.Second, "rollback on the healed replica", func() bool {
		st := c.Replica(old).SpecStats()
		return st.Rollbacks >= 1 && st.Pending == 0
	})
	// The repair must have restored from the boundary, not genesis — that
	// is the path under test, and the epoch fold marks it.
	waitFor(t, 10*time.Second, "boundary-restore epoch", func() bool {
		return c.Replica(old).proc().Sched.Stats().Epoch >= 1
	})
	// A fresh committed request after the repair: its output must land in
	// every replica's output log, including the rolled-back one.
	if _, err := c.DialAndRequest("post:1", 8080,
		[]byte("GET /page0.php HTTP/1.0\r\n\r\n"), 1); err != nil {
		t.Fatal(err)
	}
	assertOutputsConverged(t, c, allReplicaIDs(c))
	assertNoCanary(t, c, allReplicaIDs(c), "BOUNDARY-CANARY")
}

// TestSpeculationLogCapTripAndRearm pins the replay log's hard bound: a
// connection held open blocks every quiescent capture, so the log must
// hit the cap, trip (drop the log, disable feeding — the pipeline keeps
// serving, just without speculation), and then re-arm through a fresh
// boundary capture once the connection closes.
func TestSpeculationLogCapTripAndRearm(t *testing.T) {
	c, err := StartCluster(specClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	setSpecTuning(c, 4, 8)
	waitScheduleStable(t, c)
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	// Hold a connection open: the cluster is never quiescent, no boundary
	// capture can trim the log, and the idle bubble stream grows it past
	// the cap.
	holder, err := c.Net().Dial(simnet.Addr("holder:1"), c.Addr(p.ID(), 8080))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "log cap trip on the primary", func() bool {
		return p.SpecStats().LogTrips >= 1
	})
	st := p.SpecStats()
	if !st.Disabled {
		t.Fatalf("feeding not disabled after a cap trip: %+v", st)
	}
	// The pipeline must keep serving while speculation is off.
	resp, err := c.DialAndRequest("capreq:1", 8080,
		[]byte("GET /index.html HTTP/1.0\r\n\r\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp, []byte("It works!")) {
		t.Fatalf("disabled-phase response: %q", resp)
	}
	holder.Close()
	// Quiescent moments now let the disabled-state capture re-arm feeding
	// with a fresh boundary.
	waitFor(t, 15*time.Second, "re-arm after a boundary capture", func() bool {
		return !p.SpecStats().Disabled
	})
	winBefore := p.SpecStats().Windows
	reqN := 0
	waitFor(t, 15*time.Second, "speculation re-engaged", func() bool {
		if p.SpecStats().Windows > winBefore {
			return true
		}
		reqN++
		c.DialAndRequest(fmt.Sprintf("rearm:%d", reqN), 8080,
			[]byte("GET /index.html HTTP/1.0\r\n\r\n"), 1)
		return p.SpecStats().Windows > winBefore
	})
	waitScheduleStable(t, c)
	assertReplicasConverged(t, c, allReplicaIDs(c))
}

// --- helpers ---

// setSpecTuning adjusts every replica's speculator knobs (zero keeps the
// default) — tests shrink boundaryEvery to force boundary captures and
// logCap to force replay-log cap trips.
func setSpecTuning(c *Cluster, boundaryEvery, logCap int) {
	for i := 0; i < c.Replicas(); i++ {
		sp := c.Replica(i).spec
		sp.mu.Lock()
		if boundaryEvery > 0 {
			sp.boundaryEvery = boundaryEvery
		}
		if logCap > 0 {
			sp.logCap = logCap
		}
		sp.mu.Unlock()
	}
}

// specBoundaryIndex reads the replica's installed rollback boundary index
// (0 when none).
func specBoundaryIndex(r *Replica) uint64 {
	r.spec.mu.Lock()
	defer r.spec.mu.Unlock()
	if r.spec.boundary == nil {
		return 0
	}
	return r.spec.boundary.Index
}

// assertOutputsConverged waits for the listed replicas to go quiescent
// with stable per-replica ScheduleSums and EQUAL output fingerprints. It
// is the convergence check for boundary-restore repairs: a replica
// rebuilt from a checkpoint boundary replays only the post-boundary
// schedule, so its ScheduleSum intentionally differs (epoch fold) while
// its externally visible outputs must still match bit for bit.
func assertOutputsConverged(t *testing.T, c *Cluster, ids []int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	last := make(map[int]uint64)
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		ok := true
		var refFP uint64
		for k, i := range ids {
			r := c.Replica(i)
			sum := r.proc().Sched.Stats().ScheduleSum
			fp := r.Outputs().Fingerprint()
			if r.openConns.Load() != 0 || sum != last[i] {
				ok = false
			}
			last[i] = sum
			if k == 0 {
				refFP = fp
			} else if fp != refFP {
				ok = false
			}
		}
		if !ok {
			stable = 0
			continue
		}
		if stable++; stable >= 25 {
			return
		}
	}
	ref := c.Replica(ids[0])
	for _, i := range ids[1:] {
		r := c.Replica(i)
		if d := trace.Diff(ref.Outputs(), r.Outputs()); d != nil {
			t.Fatalf("output divergence replica%d vs replica%d: %+v", ids[0], i, d)
		}
	}
	t.Fatalf("outputs never converged (fingerprints unstable or unequal)")
}

func allReplicaIDs(c *Cluster) []int {
	ids := make([]int, c.Replicas())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// waitNewPrimary waits for a primary other than exclude (which may still
// believe it is primary — a partitioned stale leader — so Cluster.Primary
// cannot be used here).
func waitNewPrimary(t *testing.T, c *Cluster, exclude int) *Replica {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < c.Replicas(); i++ {
			r := c.Replica(i)
			if i != exclude && !r.killed() && r.IsPrimary() {
				return r
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no new primary emerged")
	return nil
}

// rawRequest sends one request to a specific replica's proxy (bypassing
// Cluster.Dial's primary discovery) and reads until close.
func rawRequest(t *testing.T, c *Cluster, client string, replica int, req string) []byte {
	t.Helper()
	conn, err := c.Net().Dial(simnet.Addr(client), c.Addr(replica, 8080))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := conn.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			return out
		}
	}
}

// assertReplicasConverged waits for the listed replicas to go quiescent
// with stable, equal ScheduleSums and equal output fingerprints — the
// bit-identical repair criterion.
func assertReplicasConverged(t *testing.T, c *Cluster, ids []int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	last := make(map[int]uint64)
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		// Converged means: every listed replica has closed its connections,
		// the ScheduleSums are stable AND all equal, and the output
		// fingerprints all equal. A replica can plateau briefly while it
		// waits out bubble pacing, so equality is part of the stability
		// condition rather than checked once afterwards.
		ok := true
		var refSum, refFP uint64
		for k, i := range ids {
			r := c.Replica(i)
			sum := r.proc().Sched.Stats().ScheduleSum
			fp := r.Outputs().Fingerprint()
			if r.openConns.Load() != 0 || sum != last[i] {
				ok = false
			}
			last[i] = sum
			if k == 0 {
				refSum, refFP = sum, fp
			} else if sum != refSum || fp != refFP {
				ok = false
			}
		}
		if !ok {
			stable = 0
			continue
		}
		if stable++; stable >= 25 {
			return
		}
	}
	ref := c.Replica(ids[0])
	for _, i := range ids[1:] {
		r := c.Replica(i)
		if d := trace.Diff(ref.Outputs(), r.Outputs()); d != nil {
			t.Fatalf("output divergence replica%d vs replica%d: %+v", ids[0], i, d)
		}
	}
	var sums []string
	for _, i := range ids {
		sums = append(sums, fmt.Sprintf("replica%d=%#x", i,
			c.Replica(i).proc().Sched.Stats().ScheduleSum))
	}
	t.Fatalf("replicas never converged: %v", sums)
}

// assertNoCanary asserts no replica's output log carries the canary bytes.
func assertNoCanary(t *testing.T, c *Cluster, ids []int, canary string) {
	t.Helper()
	for _, i := range ids {
		for _, ev := range c.Replica(i).Outputs().Events() {
			if bytes.Contains(ev.Data, []byte(canary)) {
				t.Fatalf("replica%d logged aborted speculative output: %q", i, ev.Data)
			}
		}
	}
}
