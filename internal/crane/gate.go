// Package crane assembles the full system of the paper: per-replica
// proxies, the Paxos consensus component, the DMT scheduler with the CRANE
// admission gate, time bubbling, checkpointing, and recovery — behind a
// Cluster API that transparently replicates a papi.Program.
package crane

import (
	"sync/atomic"
	"time"

	"crane/internal/dmt"
	"crane/internal/seq"
)

// acceptKey is the wait-queue key for threads blocked in accept()/poll()
// on a port; recvKey for threads blocked in recv() on a connection. Both
// implement dmt.Keyer so socket waits stay on the scheduler's
// allocation-free wait-queue path; the high bits namespace the two value
// spaces (ports are small ints, connection ids are a network-wide counter
// that never approaches 2^62).
type acceptKey struct{ port int }
type recvKey struct{ conn uint64 }

// DMTWaitKey implements dmt.Keyer.
func (k acceptKey) DMTWaitKey() uint64 { return 1<<62 | uint64(k.port) }

// DMTWaitKey implements dmt.Keyer.
func (k recvKey) DMTWaitKey() uint64 { return 2<<62 | k.conn }

// gate is check_add_timebubble (paper Fig. 10), invoked by the DMT
// scheduler's token holder at every synchronization operation:
//
//  1. While the Paxos sequence is empty, spin (the server must not tick
//     logical clocks, §4 rule 2), asking the proxy to request a time
//     bubble once the sequence has been empty for W_timeout.
//  2. If the head is a time bubble, consume one logical clock from it.
//  3. If the head is a client socket call, signal the thread blocked on
//     the matching socket operation, if any.
//
// With bubbling disabled (the paper's §7.2 "plan II"), step 1 is skipped:
// socket calls are admitted at whatever logical time they happen to
// arrive, which is exactly the nondeterminism that makes replicas diverge.
type gate struct {
	r        *Replica
	bubbling bool
	// spinSleep bounds how hot the empty-sequence spin runs.
	spinSleep time.Duration
	// dead flips when a speculation rollback retires this gate: the old
	// scheduler's threads spinning in the empty-sequence loop (their
	// speculative entries were just truncated) must unwind so Kill/Wait
	// can complete, even though the replica itself is not being killed.
	dead atomic.Bool
	// booted[L] flips when lane L's first application thread is admitted
	// (nil when single-lane). Until then the lane's sequence is withheld:
	// idle ticks consume nothing, so entries (bubble clones) pile up and
	// the lane's consumption position stays at 0. This is what makes
	// StampLane replica-deterministic — a lane's bootstrap thread is
	// inserted by another lane at a physically-timed moment, and any
	// clocks the idle thread consumed before that moment would shift the
	// stamps of the lane's first operations by a timing-dependent amount.
	// With withholding, consumption starts exactly at the lane's first
	// application op (a point of the deterministic lane schedule) and
	// every consumption after it is serialized by the lane token.
	booted []atomic.Bool
}

func newGate(r *Replica, bubbling bool) *gate {
	g := &gate{r: r, bubbling: bubbling, spinSleep: 25 * time.Microsecond}
	if r.lanes > 1 {
		g.booted = make([]atomic.Bool, r.lanes)
	}
	return g
}

// CheckAdmit implements dmt.Gate. Each thread is admitted against its own
// lane's Paxos sequence: lane L's consumption is paced by lane L's
// committed inputs and bubble clones, so the lane's consumption position —
// the cross-lane merge stamp — is replica-deterministic.
func (g *gate) CheckAdmit(t *dmt.Thread) {
	lane := t.LaneID()
	sq := g.r.laneSeq(lane)
	if g.booted != nil && !g.booted[lane].Load() {
		if t.IsIdle() {
			// Withhold the sequence until the lane boots (see the booted
			// field): a pre-boot idle tick must not consume, spin, or
			// signal — the lane has nothing admissible yet.
			return
		}
		g.booted[lane].Store(true)
	}
	if g.bubbling {
		// Exponential backoff: the spin only delays physical time, never
		// logical time, so backing off is determinism-neutral — and it
		// keeps a starved replica (e.g. during a leader election) from
		// monopolizing low-core machines.
		sleep := g.spinSleep
		for sq.Empty() {
			if g.r.killed() || g.dead.Load() {
				return // the wrapper's next scheduler call unwinds
			}
			g.r.maybeRequestBubble()
			time.Sleep(sleep)
			if sleep < time.Millisecond {
				sleep *= 2
			}
		}
	}
	h, ok := sq.Head()
	if !ok {
		return
	}
	switch h.Kind {
	case seq.KindBubble:
		sq.TickBubble()
	case seq.KindConnect:
		t.SignalKey(acceptKey{h.Port})
	case seq.KindSend, seq.KindClose:
		if g.r.connClosed(h.Conn) {
			// The server already closed this connection; its remaining
			// client calls can never be consumed by a recv. Discard so
			// the head does not wedge the sequence.
			sq.PopIfConn(h.Conn)
			return
		}
		t.SignalKey(recvKey{h.Conn})
	}
}

// Busy implements dmt.BusyGate: while entries are pending the idle thread
// must keep rotating (it is the mechanism that exhausts bubble clocks
// rapidly when every server thread is blocked, §3.1/§4).
func (g *gate) Busy() bool { return !g.r.sq.Empty() }

// BusyLane implements dmt.LaneBusyGate: lane L's idle thread rotates while
// lane L's own sequence has pending entries. A pre-boot lane is never busy
// (its sequence is withheld), so its idle thread sleeps instead of burning
// a core on the bubble clones piling up for post-boot consumption.
func (g *gate) BusyLane(lane int) bool {
	if g.booted != nil && !g.booted[lane].Load() {
		return false
	}
	return !g.r.laneSeq(lane).Empty()
}

// StampLane implements dmt.LaneStampGate: lane L's cross-lane merge stamp
// is its sequence's consumption position (bubble clocks + consumed client
// calls). It is replica-deterministic at every lane operation — nothing is
// consumed before the lane's first application op, and every consumption
// after it is serialized by the lane token — and it keeps advancing while
// a lane is quiescent (its idle thread drains bubble clones), which is
// what lets other lanes' merge waits complete.
func (g *gate) StampLane(lane int) uint64 { return g.r.laneSeq(lane).Progress() }
