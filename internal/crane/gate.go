// Package crane assembles the full system of the paper: per-replica
// proxies, the Paxos consensus component, the DMT scheduler with the CRANE
// admission gate, time bubbling, checkpointing, and recovery — behind a
// Cluster API that transparently replicates a papi.Program.
package crane

import (
	"time"

	"crane/internal/dmt"
	"crane/internal/seq"
)

// acceptKey is the wait-queue key for threads blocked in accept()/poll()
// on a port; recvKey for threads blocked in recv() on a connection. Both
// implement dmt.Keyer so socket waits stay on the scheduler's
// allocation-free wait-queue path; the high bits namespace the two value
// spaces (ports are small ints, connection ids are a network-wide counter
// that never approaches 2^62).
type acceptKey struct{ port int }
type recvKey struct{ conn uint64 }

// DMTWaitKey implements dmt.Keyer.
func (k acceptKey) DMTWaitKey() uint64 { return 1<<62 | uint64(k.port) }

// DMTWaitKey implements dmt.Keyer.
func (k recvKey) DMTWaitKey() uint64 { return 2<<62 | k.conn }

// gate is check_add_timebubble (paper Fig. 10), invoked by the DMT
// scheduler's token holder at every synchronization operation:
//
//  1. While the Paxos sequence is empty, spin (the server must not tick
//     logical clocks, §4 rule 2), asking the proxy to request a time
//     bubble once the sequence has been empty for W_timeout.
//  2. If the head is a time bubble, consume one logical clock from it.
//  3. If the head is a client socket call, signal the thread blocked on
//     the matching socket operation, if any.
//
// With bubbling disabled (the paper's §7.2 "plan II"), step 1 is skipped:
// socket calls are admitted at whatever logical time they happen to
// arrive, which is exactly the nondeterminism that makes replicas diverge.
type gate struct {
	r        *Replica
	bubbling bool
	// spinSleep bounds how hot the empty-sequence spin runs.
	spinSleep time.Duration
}

func newGate(r *Replica, bubbling bool) *gate {
	return &gate{r: r, bubbling: bubbling, spinSleep: 25 * time.Microsecond}
}

// CheckAdmit implements dmt.Gate.
func (g *gate) CheckAdmit(t *dmt.Thread) {
	sq := g.r.sq
	if g.bubbling {
		// Exponential backoff: the spin only delays physical time, never
		// logical time, so backing off is determinism-neutral — and it
		// keeps a starved replica (e.g. during a leader election) from
		// monopolizing low-core machines.
		sleep := g.spinSleep
		for sq.Empty() {
			if g.r.killed() {
				return // the wrapper's next scheduler call unwinds
			}
			g.r.maybeRequestBubble()
			time.Sleep(sleep)
			if sleep < time.Millisecond {
				sleep *= 2
			}
		}
	}
	h, ok := sq.Head()
	if !ok {
		return
	}
	switch h.Kind {
	case seq.KindBubble:
		sq.TickBubble()
	case seq.KindConnect:
		t.SignalKey(acceptKey{h.Port})
	case seq.KindSend, seq.KindClose:
		if g.r.connClosed(h.Conn) {
			// The server already closed this connection; its remaining
			// client calls can never be consumed by a recv. Discard so
			// the head does not wedge the sequence.
			sq.PopIfConn(h.Conn)
			return
		}
		t.SignalKey(recvKey{h.Conn})
	}
}

// Busy implements dmt.BusyGate: while entries are pending the idle thread
// must keep rotating (it is the mechanism that exhausts bubble clocks
// rapidly when every server thread is blocked, §3.1/§4).
func (g *gate) Busy() bool { return !g.r.sq.Empty() }
