package crane

import (
	"errors"
	"fmt"
	"io"
	"time"

	"crane/internal/analysis"
	"crane/internal/checkpoint"
	"crane/internal/papi"
	"crane/internal/paxos"
	"crane/internal/seq"
	"crane/internal/simnet"
	"crane/internal/trace"
)

// Config configures a cluster.
type Config struct {
	// Mode selects the execution configuration. Un-replicated modes
	// (ModeNondet, ModeParrotOnly) force Replicas to 1.
	Mode Mode
	// Replicas is the consensus group size (default 3, as deployed in the
	// paper's evaluation).
	Replicas int

	// Lanes is the number of parallel execution lanes for DMT modes
	// (default 1 — the pre-lane single-token configuration). More than one
	// lane takes effect only for programs that declare a papi.ConflictMap
	// (Program.EffectiveLanes); connections are routed to lanes by the
	// program's ConnLane and each lane runs its own deterministic
	// round-robin schedule, merged deterministically at cross-lane
	// operations.
	Lanes int

	// Groups shards the socket-call log across this many independent
	// Paxos groups (default 1 — the single-log pipeline, bit for bit).
	// Connections are routed to groups by rendezvous hashing on the
	// connection id (overridable via papi.ConflictMap.ConnGroup); each
	// group runs its own proposer/acceptor state, WAL, and burst
	// submitter, so proposal throughput, fsync bandwidth, and
	// Accept-round pipelining scale with the group count. Committed
	// entries re-merge into one deterministic admission order through
	// per-group watermark vectors carried on time bubbles (seq.Groups),
	// so DMT admission stays globally deterministic. Forces Speculation
	// off when > 1: the speculator feeds bursts in admission order,
	// which the cross-group merge does not preserve.
	Groups int

	// Wtimeout is the empty-sequence duration after which the primary
	// requests a time bubble (default 100µs, §7).
	Wtimeout time.Duration
	// Nclock is the number of logical clocks per bubble (default 1000, §7).
	Nclock uint64

	// NetOptions configures the client-facing simulated network (latency
	// and jitter stagger request arrival across time — source S3 of §2.2).
	NetOptions simnet.Options
	// HubLatency/HubJitter/HubLoss configure the replica-to-replica
	// consensus fabric.
	HubLatency time.Duration
	HubJitter  time.Duration
	HubLoss    float64
	// Seed seeds the network fault models.
	Seed int64

	// HeartbeatInterval and ElectionTimeout tune failure detection
	// (paper defaults: 1s and 3s; simulations scale these down —
	// defaults here are 25ms and 100ms).
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration

	// WALDir enables on-disk persistence of consensus decisions when
	// non-empty (one subdirectory per replica). Required for
	// RestartReplica (recovery by log replay).
	WALDir string

	// TCPConsensus runs replica-to-replica consensus over real loopback
	// TCP sockets (gob-framed) instead of the in-memory hub — the
	// deployment path for replicas on separate machines. Failure
	// injection (FailReplica) still works: the transport is closed.
	TCPConsensus bool

	// AnalyzeBackup attaches a REPFRAME-style lock-order analysis (§6.2)
	// to the last replica's DMT scheduler. Only meaningful in DMT modes.
	// Retrieve results with Cluster.Analysis.
	AnalyzeBackup bool

	// MetricsAddr enables each replica's HTTP scrape endpoint (/metrics,
	// /healthz, /trace, /debug/pprof) when non-empty. Replica i binds the
	// configured port plus i ("host:0" lets every replica pick a free
	// port; read it back with Replica.ObsAddr).
	MetricsAddr string
	// TraceCapacity bounds each replica's in-memory lifecycle-trace ring
	// (admit/proposed/committed/consumed/output span events). Zero
	// disables tracing.
	TraceCapacity int
	// WALSync enables fsync on consensus-decision appends (the paper's
	// deployment syncs to SSD). Off by default: simulation clusters favor
	// speed, and the fsync instruments only move when this is on.
	WALSync bool

	// NoFlightRecorder disables the always-on divergence flight recorder
	// (per-lane journals of scheduling decisions, consumption acts, and
	// merge stamps, chained by rolling hashes). On by default in DMT modes
	// because its hot path is a handful of arithmetic ops per already-
	// journaled event; the off switch exists for paired overhead
	// measurement (crane-bench) and last-resort triage.
	NoFlightRecorder bool
	// FlightCapacity bounds each lane journal's entry ring (default 4096).
	FlightCapacity int
	// AuditEvery sets how many consumed sequence positions elapse between
	// live-audit marks — the rolling journal hashes backups piggyback on
	// AcceptOK replies for the leader to cross-check (default 64).
	AuditEvery uint64

	// Speculation lets the primary execute admitted socket calls while
	// their Accept round is still in flight, holding every externally
	// visible effect until the commit confirms the speculated order —
	// and rolling back to the last checkpoint boundary on the rare
	// mismatch. Off by default; with it off the pipeline is bit-identical
	// to the pre-speculation code. Only meaningful under ModeCrane.
	Speculation bool
}

func (c *Config) setDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Lanes < 1 {
		c.Lanes = 1
	}
	if c.Groups < 1 {
		c.Groups = 1
	}
	if !c.Mode.replicated() {
		c.Replicas = 1
		c.Groups = 1
	}
	if c.Groups > 1 {
		// The speculator consumes bursts in admission order; the
		// cross-group merge emits in stamp order, which only coincides
		// at one group. Sharded deployments trade speculation for
		// group-parallel ordering.
		c.Speculation = false
	}
	if c.Wtimeout <= 0 {
		c.Wtimeout = 100 * time.Microsecond
	}
	if c.Nclock == 0 {
		c.Nclock = 1000
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		// Generous relative to the heartbeat (the paper uses 3x at
		// seconds scale); at millisecond scale, scheduler noise on
		// loaded machines makes spurious elections expensive.
		c.ElectionTimeout = 8 * c.HeartbeatInterval
	}
}

// Cluster is a running replicated deployment of one server program.
type Cluster struct {
	cfg      Config
	prog     papi.Program
	net      *simnet.Network
	hub      *paxos.ChanHub
	tcpAddrs map[int]string // consensus addresses when TCPConsensus
	replicas []*Replica
	stopped  bool
}

// StartCluster deploys prog under the configured mode. The caller owns the
// returned cluster and must Stop it.
func StartCluster(cfg Config, prog papi.Program) (*Cluster, error) {
	cfg.setDefaults()
	if len(prog.Ports) == 0 {
		return nil, errors.New("crane: program declares no ports")
	}
	if prog.New == nil {
		return nil, errors.New("crane: program has no constructor")
	}
	c := &Cluster{
		cfg:  cfg,
		prog: prog,
		net:  simnet.New(cfg.NetOptions),
	}
	peers := make([]int, cfg.Replicas)
	for i := range peers {
		peers[i] = i
	}
	if cfg.Mode.replicated() && !cfg.TCPConsensus {
		c.hub = paxos.NewChanHub(cfg.HubLatency, cfg.HubJitter, cfg.HubLoss, cfg.Seed)
	}
	if cfg.Mode.replicated() && cfg.TCPConsensus {
		// Bind every replica's consensus listener first so the full
		// address table exists before any node starts.
		c.tcpAddrs = make(map[int]string, cfg.Replicas)
		transports := make([]*paxos.TCPTransport, cfg.Replicas)
		for i := 0; i < cfg.Replicas; i++ {
			tr, err := paxos.NewTCPTransport(i, map[int]string{i: "127.0.0.1:0"})
			if err != nil {
				c.Stop()
				return nil, err
			}
			transports[i] = tr
			c.tcpAddrs[i] = tr.Addr()
		}
		for i := 0; i < cfg.Replicas; i++ {
			transports[i].SetPeerAddrs(c.tcpAddrs)
		}
		for i := 0; i < cfg.Replicas; i++ {
			r := newReplica(i, &c.cfg, prog, c.net)
			r.transport = transports[i]
			if err := r.start(nil, peers); err != nil {
				c.Stop()
				return nil, err
			}
			c.replicas = append(c.replicas, r)
		}
		return c, nil
	}
	for i := 0; i < cfg.Replicas; i++ {
		r := newReplica(i, &c.cfg, prog, c.net)
		if err := r.start(c.hub, peers); err != nil {
			c.Stop()
			return nil, err
		}
		c.replicas = append(c.replicas, r)
	}
	return c, nil
}

// Net returns the client-facing network; clients dial into it.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Replica returns replica i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// Replicas returns the number of replicas.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Primary returns the current primary replica, waiting up to 5s for one to
// emerge; in un-replicated modes it returns the single instance.
func (c *Cluster) Primary() (*Replica, error) {
	if !c.cfg.Mode.replicated() {
		return c.replicas[0], nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range c.replicas {
			if !r.killed() && r.IsPrimary() {
				return r, nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return nil, errors.New("crane: no primary elected")
}

// Addr returns the dialing address for port on replica i.
func (c *Cluster) Addr(i, port int) simnet.Addr {
	return simnet.Addr(fmt.Sprintf("replica%d:%d", i, port))
}

// Dial connects a client to the current primary's proxy (or directly to
// the server in un-replicated modes), retrying across leader changes.
func (c *Cluster) Dial(client string, port int) (*simnet.Conn, error) {
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p, err := c.Primary()
		if err != nil {
			return nil, err
		}
		conn, err := c.net.Dial(simnet.Addr(client), c.Addr(p.id, port))
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(time.Millisecond)
	}
	return nil, fmt.Errorf("crane: dial: %w", lastErr)
}

// OutputLogs returns every live replica's network-output log (§7.2).
func (c *Cluster) OutputLogs() []*trace.OutputLog {
	var out []*trace.OutputLog
	for _, r := range c.replicas {
		if !r.killed() {
			out = append(out, r.out)
		}
	}
	return out
}

// SeqStats returns the primary's Paxos-sequence counters (Table 1); in
// un-replicated modes the counters are zero.
func (c *Cluster) SeqStats() seq.Stats {
	p, err := c.Primary()
	if err != nil {
		return seq.Stats{}
	}
	return p.SeqStats()
}

// WaitOutputs blocks until every live replica has logged at least k
// outgoing socket calls, or the timeout elapses.
func (c *Cluster) WaitOutputs(k int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, r := range c.replicas {
			if !r.killed() && r.out.Len() < k {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("crane: timeout waiting for %d outputs", k)
}

// WaitQuiescent blocks until every live replica has drained its sequence
// and closed all connections, or the timeout elapses.
func (c *Cluster) WaitQuiescent(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, r := range c.replicas {
			if !r.killed() && !r.Quiescent() {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return errors.New("crane: timeout waiting for quiescence")
}

// FailReplica simulates a machine failure of replica i: its network is
// cut and its processes are killed. State on "disk" (the WAL) survives.
func (c *Cluster) FailReplica(i int) {
	if c.hub != nil {
		c.hub.Disconnect(i)
	}
	c.replicas[i].stop()
}

// PartitionReplica cuts replica i off the consensus fabric without
// stopping it: it keeps running (and, if it believes itself primary, keeps
// admitting and speculating on client traffic — the client network is
// separate from the consensus hub) but can no longer reach a quorum.
// In-memory hub clusters only.
func (c *Cluster) PartitionReplica(i int) {
	if c.hub != nil {
		c.hub.Disconnect(i)
	}
}

// HealReplica reconnects a partitioned replica to the consensus fabric; it
// adopts the surviving majority's view and commits their entries.
func (c *Cluster) HealReplica(i int) {
	if c.hub != nil {
		c.hub.Reconnect(i)
	}
}

// FailPrimary fails the current primary and returns its id.
func (c *Cluster) FailPrimary() (int, error) {
	p, err := c.Primary()
	if err != nil {
		return -1, err
	}
	c.FailReplica(p.id)
	return p.id, nil
}

// CheckpointBackup takes a checkpoint on a backup replica (§5.2: "done
// every minute on one backup replica"; callers invoke it explicitly).
func (c *Cluster) CheckpointBackup(cp *checkpoint.Checkpointer) (*checkpoint.Checkpoint, *checkpoint.Timings, error) {
	p, err := c.Primary()
	if err != nil {
		return nil, nil, err
	}
	for _, r := range c.replicas {
		if r != p && !r.killed() {
			return r.Checkpoint(cp)
		}
	}
	return nil, nil, errors.New("crane: no live backup to checkpoint")
}

// RestoreReplica rebuilds a previously failed replica i from a shipped
// checkpoint: fresh container from the base image plus the checkpoint's
// fs patch, restored process state, and consensus catch-up from the
// checkpoint's global index (§5.2).
func (c *Cluster) RestoreReplica(i int, ck *checkpoint.Checkpoint) error {
	old := c.replicas[i]
	if !old.killed() {
		return fmt.Errorf("crane: replica %d still running", i)
	}
	r := newReplica(i, &c.cfg, c.prog, c.net)
	r.restoreState = ck.Process
	r.deliverFrom = ck.Index
	r.deliverFroms = ck.GroupIndexes
	r.restoreWatermarks = ck.GroupWatermarks
	// Hosts are stable, but the old listeners may still be bound if stop
	// raced; give the network a moment.
	peers := make([]int, c.cfg.Replicas)
	for j := range peers {
		peers[j] = j
	}
	if c.hub != nil {
		c.hub.Reconnect(i)
	}
	if err := r.start(c.hub, peers); err != nil {
		return err
	}
	// Apply the checkpointed filesystem patch over the fresh base image.
	if err := r.fs.Apply(&ck.FSPatch); err != nil {
		return err
	}
	c.replicas[i] = r
	return nil
}

// RestartReplica rebuilds a previously failed replica from its surviving
// on-disk WAL alone — the paper's "start a server replica from scratch and
// replay the entire sequence of socket calls" recovery path (§2.1), which
// checkpoints exist to shortcut. Requires Config.WALDir.
func (c *Cluster) RestartReplica(i int) error {
	if c.cfg.WALDir == "" {
		return errors.New("crane: RestartReplica requires Config.WALDir")
	}
	old := c.replicas[i]
	if !old.killed() {
		return fmt.Errorf("crane: replica %d still running", i)
	}
	r := newReplica(i, &c.cfg, c.prog, c.net)
	// Mark as a rejoining backup: adopt the running cluster's view. The
	// WAL's recovered entries re-deliver from index 0, replaying the full
	// socket-call sequence through the fresh server instance.
	r.rejoining = true
	peers := make([]int, c.cfg.Replicas)
	for j := range peers {
		peers[j] = j
	}
	if c.hub != nil {
		c.hub.Reconnect(i)
	}
	if err := r.start(c.hub, peers); err != nil {
		return err
	}
	c.replicas[i] = r
	return nil
}

// Analysis returns the backup lock-order checker (nil unless
// Config.AnalyzeBackup was set on a DMT-mode cluster).
func (c *Cluster) Analysis() *analysis.LockOrderChecker {
	for _, r := range c.replicas {
		if r.checker != nil {
			return r.checker
		}
	}
	return nil
}

// CompactTo compacts every live replica's consensus log below the given
// checkpoint index (call after CheckpointBackup succeeds; replicas lagging
// past the compaction point recover via RestoreReplica instead of
// catch-up). Single-group form: sharded deployments anchor per-group
// compaction through AnchorGC instead.
func (c *Cluster) CompactTo(idx uint64) {
	for _, r := range c.replicas {
		if !r.killed() && r.node != nil {
			r.node.CompactTo(idx)
		}
	}
}

// AnchorGC promises, on every live replica and for every Paxos group, that
// entries at or below the checkpoint's per-group index will never be
// replayed (the checkpoint supersedes them). Each group's primary computes
// the cluster-wide minimum of these promises, trims its log, lets the WAL
// drop whole segments below the floor (wal.CompactBefore), and announces
// the floor to backups on heartbeats — the Done/Min GC protocol. A replica
// that never promises (failed, partitioned) pins its groups' floors, so
// compaction never outruns a peer that still needs catch-up.
func (c *Cluster) AnchorGC(ck *checkpoint.Checkpoint) {
	for _, r := range c.replicas {
		if r.killed() {
			continue
		}
		for g, nd := range r.nodes {
			idx := ck.Index
			if g < len(ck.GroupIndexes) {
				idx = ck.GroupIndexes[g]
			}
			if idx > 0 {
				nd.SetDone(idx)
			}
		}
	}
}

// Stop tears the whole cluster down.
func (c *Cluster) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, r := range c.replicas {
		r.stop()
	}
	if c.hub != nil {
		c.hub.Close()
	}
}

// DialAndRequest is a convenience for request/response clients: dial the
// primary, write req, read until the response reaches want bytes or the
// server closes, then close. It retries once across a leader change.
func (c *Cluster) DialAndRequest(client string, port int, req []byte, want int) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		conn, err := c.Dial(client, port)
		if err != nil {
			return nil, err
		}
		//crane:specleak-ok client-harness write: this is the test client's request to the server, not a server output
		if _, err := conn.Write(req); err != nil {
			conn.Close()
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		resp := make([]byte, 0, want)
		buf := make([]byte, 4096)
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for len(resp) < want {
			n, err := conn.Read(buf)
			resp = append(resp, buf[:n]...)
			if err != nil {
				if err == io.EOF {
					break
				}
				lastErr = err
				break
			}
		}
		conn.Close()
		if len(resp) > 0 {
			return resp, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("crane: request failed: %w", lastErr)
}
