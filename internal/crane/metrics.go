package crane

import (
	"fmt"
	"strings"

	"crane/internal/seq"
)

// Metrics is a point-in-time snapshot of one replica's observable state,
// aggregating the DMT scheduler, the Paxos sequence, and the consensus
// node — the operational introspection surface a deployment would scrape.
type Metrics struct {
	Replica   int
	Primary   bool
	View      uint64
	ViewPrim  int
	CommitIdx uint64

	// DMT scheduler counters (zero in non-DMT modes).
	LogicalClock uint64
	TokenPasses  uint64
	Waits        uint64
	Signals      uint64
	Threads      uint64

	// Paxos sequence counters.
	Seq seq.Stats

	// Connections currently alive on the server side.
	OpenConns int64

	// Outputs logged (responses; only the primary's reach clients).
	Outputs int
}

// Metrics captures the replica's current counters.
func (r *Replica) Metrics() Metrics {
	m := Metrics{
		Replica:   r.id,
		Seq:       r.sq.Stats(),
		OpenConns: r.openConns.Load(),
		Outputs:   r.out.Len(),
	}
	if r.node != nil {
		m.Primary = r.node.IsPrimary()
		m.View, m.ViewPrim = r.node.View()
		m.CommitIdx = r.node.CommitIndex()
	}
	if pproc := r.proc(); pproc != nil {
		st := pproc.Sched.Stats()
		m.LogicalClock = st.Clock
		m.TokenPasses = st.TokenPasses
		m.Waits = st.Waits
		m.Signals = st.Signals
		m.Threads = st.Spawned
	}
	return m
}

// String renders the metrics as a single status line.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replica%d", m.Replica)
	if m.Primary {
		b.WriteString("[primary]")
	}
	fmt.Fprintf(&b, " view=%d/%d commit=%d", m.View, m.ViewPrim, m.CommitIdx)
	fmt.Fprintf(&b, " clock=%d threads=%d", m.LogicalClock, m.Threads)
	fmt.Fprintf(&b, " seq{calls=%d bubbles=%d pending=%d}",
		m.Seq.ClientCalls, m.Seq.Bubbles, m.Seq.Pending)
	fmt.Fprintf(&b, " conns=%d outputs=%d", m.OpenConns, m.Outputs)
	return b.String()
}

// ClusterMetrics snapshots every live replica.
func (c *Cluster) ClusterMetrics() []Metrics {
	var out []Metrics
	for _, r := range c.replicas {
		if !r.killed() {
			out = append(out, r.Metrics())
		}
	}
	return out
}
