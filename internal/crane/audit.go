package crane

import (
	"fmt"
	"sync"

	"crane/internal/obs"
	"crane/internal/obs/flight"
)

// auditor is the leader half of the live divergence audit: backups
// piggyback their freshest flight-recorder marks (per-lane rolling chain
// hashes plus the output fingerprint) on AcceptOK replies, and the
// auditor cross-checks each against the leader's own mark at the same
// consumed position. A mismatch means the replicas' determinism-relevant
// event streams split at or before that position — raised as a structured
// alarm and the crane_divergence_detected counter while the run is still
// going, instead of surfacing as an output diff at teardown.
//
// Samples can arrive before the leader has reached the sampled position
// (a backup briefly ahead after a view change): those are stashed,
// bounded per replica, and re-checked on the next batch from the same
// peer. A sample inside the leader's retained mark window that matches no
// mark is itself divergence evidence (mark positions are deterministic),
// reported as "mark-misaligned" rather than silently dropped.
type auditor struct {
	r *Replica

	mu      sync.Mutex
	pending map[int][]flight.AuditSample // per-peer samples ahead of our marks
	alarms  []DivergenceAlarm

	checked  *obs.Counter
	diverged *obs.Counter
}

// maxPendingAudit bounds the per-peer stash of not-yet-checkable samples.
const maxPendingAudit = 64

// maxAlarms bounds the retained alarm list (the counter keeps the total).
const maxAlarms = 16

// DivergenceAlarm is one detected cross-replica divergence.
type DivergenceAlarm struct {
	Replica int    // peer whose sample mismatched
	Lane    int32  // journal lane (flight.OutputLane for output samples)
	Pos     uint64 // consumed position (or cumulative output count)
	Epoch   uint32 // journal epoch the sample was recorded under
	Want    uint64 // this replica's chain/fingerprint at Pos
	Got     uint64 // the peer's
	Kind    string // "chain-mismatch", "output-mismatch", or "mark-misaligned"
}

// String renders the alarm for logs and test failures.
func (a DivergenceAlarm) String() string {
	return fmt.Sprintf("divergence[%s]: replica %d lane %d pos %d epoch %d: want %016x got %016x",
		a.Kind, a.Replica, a.Lane, a.Pos, a.Epoch, a.Want, a.Got)
}

func newAuditor(r *Replica) *auditor {
	return &auditor{
		r:       r,
		pending: make(map[int][]flight.AuditSample),
		checked: r.ro.reg.Counter("crane_audit_checked_total",
			"cross-replica flight-recorder audit samples verified"),
		diverged: r.ro.reg.Counter("crane_divergence_detected",
			"cross-replica divergences detected by the live journal audit"),
	}
}

// onAudit receives one peer's piggybacked samples. Called from the paxos
// event loop; everything here is bounded and lock-cheap.
func (au *auditor) onAudit(from int, samples []flight.AuditSample) {
	au.mu.Lock()
	defer au.mu.Unlock()
	// Re-check anything stashed from this peer first: our marks may have
	// caught up since.
	queue := append(au.pending[from], samples...)
	delete(au.pending, from)
	var still []flight.AuditSample
	for _, s := range queue {
		switch au.checkLocked(from, s) {
		case auditAhead:
			if !au.stale(s) && len(still) < maxPendingAudit {
				still = append(still, s)
			}
		}
	}
	if len(still) > 0 {
		au.pending[from] = still
	}
}

type auditOutcome int

const (
	auditDone  auditOutcome = iota // checked (matched or alarmed)
	auditAhead                     // peer is ahead of our marks; retry later
)

func (au *auditor) checkLocked(from int, s flight.AuditSample) auditOutcome {
	rec := au.r.flt
	if s.Lane == flight.OutputLane {
		m, ok, within := rec.OutputMarkAt(s.Pos)
		return au.verdictLocked(from, s, m, ok, within, "output-mismatch")
	}
	if s.Epoch != rec.Epoch() {
		// A rollback re-based one side's journal; chains recorded under
		// different epochs are incomparable by design. The output
		// fingerprint audit (committed effects only) keeps covering the
		// run.
		return auditDone
	}
	j := rec.Lane(int(s.Lane))
	if j == nil {
		return auditDone
	}
	m, ok, within := j.MarkAt(s.Pos)
	return au.verdictLocked(from, s, m, ok, within, "chain-mismatch")
}

func (au *auditor) verdictLocked(from int, s flight.AuditSample, m flight.Mark, ok, within bool, kind string) auditOutcome {
	if ok {
		au.checked.Inc()
		if m.Chain != s.Chain {
			au.alarmLocked(DivergenceAlarm{Replica: from, Lane: s.Lane, Pos: s.Pos,
				Epoch: s.Epoch, Want: m.Chain, Got: s.Chain, Kind: kind})
		}
		return auditDone
	}
	if within {
		// The position falls inside our retained mark window but no mark
		// was recorded there: the replicas marked different positions,
		// which deterministic streams cannot do.
		au.checked.Inc()
		au.alarmLocked(DivergenceAlarm{Replica: from, Lane: s.Lane, Pos: s.Pos,
			Epoch: s.Epoch, Got: s.Chain, Kind: "mark-misaligned"})
		return auditDone
	}
	return auditAhead
}

// stale reports whether the sample's position has already scrolled out of
// this replica's retained mark window — unverifiable forever, so the
// auditor drops it instead of stashing it.
func (au *auditor) stale(s flight.AuditSample) bool {
	rec := au.r.flt
	if s.Lane == flight.OutputLane {
		if newest, has := rec.NewestOutputMark(); has && s.Pos < newest.Pos {
			return true
		}
		return false
	}
	j := rec.Lane(int(s.Lane))
	if j == nil {
		return false
	}
	newest, has := j.NewestMark()
	return has && s.Pos < newest.Pos
}

func (au *auditor) alarmLocked(a DivergenceAlarm) {
	au.diverged.Inc()
	if len(au.alarms) < maxAlarms {
		au.alarms = append(au.alarms, a)
	}
}

// Alarms snapshots the retained divergence alarms.
func (au *auditor) Alarms() []DivergenceAlarm {
	if au == nil {
		return nil
	}
	au.mu.Lock()
	defer au.mu.Unlock()
	return append([]DivergenceAlarm(nil), au.alarms...)
}

// checkedCount returns how many samples have been verified.
func (au *auditor) checkedCount() uint64 {
	if au == nil {
		return 0
	}
	return au.checked.Value()
}
