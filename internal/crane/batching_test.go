package crane

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"crane/internal/paxos"
	"crane/internal/seq"
)

// TestBubbleInBatchCommitsInPosition: a ProposeBatch burst carrying a time
// bubble between socket calls must commit the bubble exactly in its decided
// position on every replica — batching changes round packaging, never the
// logical-time placement of §4.
func TestBubbleInBatchCommitsInPosition(t *testing.T) {
	hub := paxos.NewChanHub(0, 0, 0, 1)
	peers := []int{0, 1, 2}
	var mu sync.Mutex
	delivered := make([][]*seq.Entry, 3)
	var nodes []*paxos.Node
	for i := 0; i < 3; i++ {
		i := i
		n, err := paxos.NewNode(paxos.Config{
			ID: i, Peers: peers, Transport: hub.Endpoint(i),
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   500 * time.Millisecond,
			OnDeliver: func(e paxos.LogEntry) {
				ent, err := seq.Decode(e.Payload)
				if err != nil {
					t.Errorf("node %d: decode index %d: %v", i, e.Index, err)
					return
				}
				ent.Index = e.Index
				mu.Lock()
				delivered[i] = append(delivered[i], ent)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].IsPrimary() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	burst := []*seq.Entry{
		{Kind: seq.KindConnect, Conn: 1, Port: 7000},
		{Kind: seq.KindSend, Conn: 1, Data: []byte("req-a")},
		{Kind: seq.KindBubble, NClock: 3},
		{Kind: seq.KindSend, Conn: 1, Data: []byte("req-b")},
		{Kind: seq.KindClose, Conn: 1},
	}
	payloads, err := seq.EncodeBatch(burst)
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].ProposeBatch(payloads); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		for {
			mu.Lock()
			got := len(delivered[i])
			mu.Unlock()
			if got >= len(burst) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d delivered %d/%d entries", i, got, len(burst))
			}
			time.Sleep(time.Millisecond)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		got := delivered[i]
		for j, want := range burst {
			e := got[j]
			if e.Index != uint64(j+1) {
				t.Fatalf("node %d entry %d has index %d", i, j, e.Index)
			}
			if e.Kind != want.Kind || e.Conn != want.Conn ||
				e.NClock != want.NClock || !bytes.Equal(e.Data, want.Data) {
				t.Fatalf("node %d entry %d = %+v, want %+v", i, j, e, want)
			}
		}
		// The bubble sits in its decided slot: index 3, after req-a and
		// before req-b.
		if got[2].Kind != seq.KindBubble || got[2].Index != 3 {
			t.Fatalf("node %d bubble at %+v", i, got[2])
		}
	}
}

// TestProxyBurstsPreserveBubbleSemantics: full-stack check that the proxy's
// burst submitter plus Wtimeout-driven bubble insertion still yields a
// converging cluster serving concurrent clients (the bubble terminates any
// burst it rides in, so clocks elapse before later calls are packaged).
func TestProxyBurstsPreserveBubbleSemantics(t *testing.T) {
	cfg := testConfig(ModeCrane)
	c, err := StartCluster(cfg, newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				key := []byte{byte('a' + w)}
				resp, err := c.DialAndRequest("bc:"+string(key), 7000,
					[]byte("SET "+string(key)+" v\n"), 3)
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != "OK" {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// At least one bubble should have been decided under test Wtimeouts,
	// and replicas must agree on the sequence statistics.
	st := c.SeqStats()
	if st.Enqueued == 0 {
		t.Fatal("nothing enqueued")
	}
}
