package crane

import (
	"fmt"
	"testing"
	"time"

	"crane/internal/trace"
)

// TestFiveReplicaCluster deploys the paper's alternative group size ("a
// set of three or five replicas", §2) and verifies consistency and
// tolerance of two failures.
func TestFiveReplicaCluster(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.Replicas = 5
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	dumpJournalsForCI(t, c, "five-replica")
	for i := 0; i < 5; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("f5:%d", i), fmt.Sprintf("SET k%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("5-replica divergence: %v", divs)
	}
	assertNoDivergenceAlarms(t, c)
	// Fail two backups; the remaining three still serve.
	p, _ := c.Primary()
	killed := 0
	for i := 0; i < c.Replicas() && killed < 2; i++ {
		if c.Replica(i) != p {
			c.FailReplica(i)
			killed++
		}
	}
	if got := kvRequest(t, c, "f5:99", "GET k0"); got != "VALUE v0" {
		t.Fatalf("GET after two failures = %q", got)
	}
}

// TestTCPConsensusCluster runs full CRANE with consensus over real
// loopback TCP sockets (the multi-machine deployment path).
func TestTCPConsensusCluster(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.TCPConsensus = true
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := kvRequest(t, c, "tcp:1", "SET over tcp"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if got := kvRequest(t, c, "tcp:2", "GET over"); got != "VALUE tcp" {
		t.Fatalf("GET = %q", got)
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("tcp-consensus divergence: %v", divs)
	}
	assertNoDivergenceAlarms(t, c)
}
