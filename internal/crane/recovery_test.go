package crane

import (
	"fmt"
	"testing"
	"time"

	"crane/internal/checkpoint"
)

// TestRestartReplicaReplaysWAL exercises the paper's replay-from-scratch
// recovery (§2.1): a failed replica with a surviving WAL rebuilds its
// state by re-executing the whole socket-call sequence.
func TestRestartReplicaReplaysWAL(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.WALDir = t.TempDir()
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 6; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("w:%d", i), fmt.Sprintf("SET k%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Fail a backup and restart it from its WAL alone (no checkpoint).
	p, _ := c.Primary()
	victim := -1
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i) != p {
			victim = i
			break
		}
	}
	c.FailReplica(victim)
	time.Sleep(10 * time.Millisecond)
	if err := c.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	// The fresh instance replays the entire sequence and reconstructs the
	// full key set.
	restored := c.Replica(victim).inst.(*testKV)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		restored.mu.Lock()
		n := len(restored.data)
		restored.mu.Unlock()
		if n == 6 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	restored.mu.Lock()
	defer restored.mu.Unlock()
	t.Fatalf("replayed replica has %d keys, want 6", len(restored.data))
}

func TestRestartReplicaRequiresWAL(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.FailReplica(2)
	if err := c.RestartReplica(2); err == nil {
		t.Fatal("RestartReplica without WALDir succeeded")
	}
}

// TestAnalyzeBackup exercises the REPFRAME-style analysis (§6.2): the
// lock-order checker on a backup observes the replicated execution.
func TestAnalyzeBackup(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.AnalyzeBackup = true
	c, err := StartCluster(cfg, newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 4; i++ {
		kvRequest(t, c, fmt.Sprintf("a:%d", i), fmt.Sprintf("SET x%d 1", i))
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	chk := c.Analysis()
	if chk == nil {
		t.Fatal("no analysis attached")
	}
	if chk.Events() == 0 {
		t.Fatal("backup analysis observed no events")
	}
	// testKV acquires its two locks in a fixed order: no inversions.
	if invs := chk.Inversions(); len(invs) != 0 {
		t.Fatalf("false lock-order inversions: %v", invs)
	}
	if chk.LockCount() < 2 {
		t.Fatalf("LockCount = %d", chk.LockCount())
	}
}

// TestDeterministicNow checks the §6.1 extension: time reads under DMT are
// logical-clock derived and therefore identical across replicas at the
// same execution point.
func TestDeterministicNow(t *testing.T) {
	prog := newTestKV(4)
	c, err := StartCluster(testConfig(ModeCrane), prog)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "n:1", "SET t 1")
	// The deterministic epoch is fixed; any DMT-mode Now() is epoch+clock.
	// Verified indirectly through papi's parrot runtime in its own tests;
	// here just confirm the cluster remains consistent with Now in use.
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionAfterCheckpoint: after a checkpoint, consensus logs can be
// compacted; new proposals continue and a replica restored from the
// checkpoint catches up above the compaction point.
func TestCompactionAfterCheckpoint(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.WALDir = t.TempDir()
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 6; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("cp:%d", i), fmt.Sprintf("SET k%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cp := checkpoint.New(checkpoint.Options{Backoff: time.Millisecond})
	ck, _, err := c.CheckpointBackup(cp)
	if err != nil {
		t.Fatal(err)
	}
	c.CompactTo(ck.Index)
	// The cluster still serves and commits after compaction.
	if got := kvRequest(t, c, "cp:after", "SET post compact"); got != "OK" {
		t.Fatalf("post-compaction SET = %q", got)
	}
	if got := kvRequest(t, c, "cp:read", "GET post"); got != "VALUE compact" {
		t.Fatalf("post-compaction GET = %q", got)
	}
	// A replica restored from the checkpoint catches up past the
	// compacted prefix.
	p, _ := c.Primary()
	victim := -1
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i) != p {
			victim = i
			break
		}
	}
	c.FailReplica(victim)
	time.Sleep(10 * time.Millisecond)
	if err := c.RestoreReplica(victim, ck); err != nil {
		t.Fatal(err)
	}
	restored := c.Replica(victim).inst.(*testKV)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		restored.mu.Lock()
		_, ok := restored.data["post"]
		n := len(restored.data)
		restored.mu.Unlock()
		if ok && n == 7 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("restored replica did not catch up past compaction")
}
