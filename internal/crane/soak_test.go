package crane

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"crane/internal/trace"
)

// TestSoakMixedWorkload drives a sustained randomized mixed workload
// (sets, gets, deletes from rotating clients) against a full CRANE cluster
// and then requires byte-identical replica outputs and a consistent final
// state. Skipped with -short.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	dumpJournalsForCI(t, c, "soak-mixed-workload")

	const (
		clients  = 4
		requests = 15 // per client
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci) + 99))
			for r := 0; r < requests; r++ {
				key := fmt.Sprintf("k%d", rng.Intn(6))
				var req string
				switch rng.Intn(3) {
				case 0:
					req = fmt.Sprintf("SET %s v%d-%d\n", key, ci, r)
				case 1:
					req = fmt.Sprintf("GET %s\n", key)
				default:
					req = fmt.Sprintf("DEL %s\n", key)
				}
				resp, err := c.DialAndRequest(fmt.Sprintf("soak%d:%d", ci, r), 7000, []byte(req), 3)
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", ci, r, err)
					return
				}
				s := strings.TrimSpace(string(resp))
				if !strings.HasPrefix(s, "OK") && !strings.HasPrefix(s, "VALUE") && s != "NONE" {
					errs <- fmt.Errorf("client %d req %d: resp %q", ci, r, s)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.WaitQuiescent(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("soak divergence: %v", divs)
	}
	assertNoDivergenceAlarms(t, c)
	// Final app state identical across replicas.
	ref := c.Replica(0).inst.(*testKV)
	ref.mu.Lock()
	want := fmt.Sprintf("%v", ref.data)
	ref.mu.Unlock()
	for i := 1; i < c.Replicas(); i++ {
		r := c.Replica(i).inst.(*testKV)
		r.mu.Lock()
		got := fmt.Sprintf("%v", r.data)
		r.mu.Unlock()
		if got != want {
			t.Fatalf("replica%d state %s != %s", i, got, want)
		}
	}
}
