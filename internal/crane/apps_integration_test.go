package crane

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"crane/internal/apps/clamav"
	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/httpkit"
	"crane/internal/apps/mediatomb"
	"crane/internal/apps/mongoose"
	"crane/internal/apps/mysqld"
	"crane/internal/papi"
	"crane/internal/simnet"
	"crane/internal/trace"
)

// integrationConfig keeps the real-app clusters cheap enough for CI while
// still exercising jittered arrival (source S3).
func integrationConfig(mode Mode) Config {
	return Config{
		Mode:     mode,
		Replicas: 3,
		Wtimeout: 200 * time.Microsecond,
		Nclock:   300,
		NetOptions: simnet.Options{
			Latency: 30 * time.Microsecond,
			Jitter:  80 * time.Microsecond,
		},
		HubLatency:        20 * time.Microsecond,
		HubJitter:         50 * time.Microsecond,
		HeartbeatInterval: 30 * time.Millisecond,
	}
}

// diffReplicas waits for quiescence and asserts identical output logs.
func diffReplicas(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.WaitQuiescent(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("replica divergence: %v", divs)
	}
}

func TestCraneHTTPD(t *testing.T) {
	cfg := httpd.DefaultConfig()
	cfg.PHPChunks = 4
	cfg.PHPChunkWork = 30
	cfg.Workers = 8
	c, err := StartCluster(integrationConfig(ModeCrane), httpd.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	re := regexp.MustCompile(httpkit.DateHeaderPattern)
	for i := 0; i < c.Replicas(); i++ {
		c.Replica(i).Outputs().SetNormalizer(re)
	}
	status, body, err := clients.Curl(c.Dial, "it:1", 8080, "GET", "/index.html", nil)
	if err != nil || status != 200 || !strings.Contains(string(body), "It works!") {
		t.Fatalf("GET: %d %q %v", status, body, err)
	}
	sum := clients.ApacheBench(c.Dial, 8080, "/page0.php", 4, 12)
	if sum.Errors != 0 {
		t.Fatalf("ab under crane: %+v", sum)
	}
	diffReplicas(t, c)
}

func TestCraneHTTPDPutGetRace(t *testing.T) {
	// The §7.2 curl micro-benchmark: concurrent PUT and GET of the same
	// page; replicas must agree on 200-vs-404 within each run.
	cfg := httpd.DefaultConfig()
	cfg.PHPChunks = 2
	cfg.PHPChunkWork = 10
	c, err := StartCluster(integrationConfig(ModeCrane), httpd.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	re := regexp.MustCompile(httpkit.DateHeaderPattern)
	for i := 0; i < c.Replicas(); i++ {
		c.Replica(i).Outputs().SetNormalizer(re)
	}
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			clients.Curl(c.Dial, fmt.Sprintf("p%d:1", round), 8080, "PUT", "/race.php", []byte("x"))
		}()
		var getStatus int
		go func() {
			defer wg.Done()
			getStatus, _, _ = clients.Curl(c.Dial, fmt.Sprintf("g%d:1", round), 8080, "GET", "/race.php", nil)
		}()
		wg.Wait()
		if getStatus != 200 && getStatus != 404 {
			t.Fatalf("round %d: GET status %d", round, getStatus)
		}
		clients.Curl(c.Dial, fmt.Sprintf("d%d:1", round), 8080, "DELETE", "/race.php", nil)
	}
	diffReplicas(t, c)
}

func TestCraneMongoose(t *testing.T) {
	cfg := mongoose.DefaultConfig()
	cfg.ScriptChunks = 3
	cfg.ScriptChunkWork = 20
	cfg.UseHints = true
	c, err := StartCluster(integrationConfig(ModeCrane), mongoose.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	re := regexp.MustCompile(httpkit.DateHeaderPattern)
	for i := 0; i < c.Replicas(); i++ {
		c.Replica(i).Outputs().SetNormalizer(re)
	}
	sum := clients.ApacheBench(c.Dial, 8081, "/app0.php", 3, 9)
	if sum.Errors != 0 {
		t.Fatalf("mongoose ab: %+v", sum)
	}
	diffReplicas(t, c)
}

func TestCraneClamAV(t *testing.T) {
	cfg := clamav.DefaultConfig()
	cfg.WorkPerKB = 5
	c, err := StartCluster(integrationConfig(ModeCrane), clamav.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	report, err := clients.ClamdScan(c.Dial, "cs:1", 3310, "src/clamav")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "FOUND") || !strings.Contains(report, "infected 2") {
		t.Fatalf("report = %q", report)
	}
	// The infected files were deleted deterministically on every replica.
	diffReplicas(t, c)
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i).FS().Exists("src/clamav/malware0.bin") {
			t.Fatalf("replica%d still has the infected file", i)
		}
	}
}

func TestCraneMediaTomb(t *testing.T) {
	cfg := mediatomb.DefaultConfig()
	cfg.WorkPerSegment = 40
	cfg.Segments = 4
	c, err := StartCluster(integrationConfig(ModeCrane), mediatomb.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	resp, err := clients.Transcode(c.Dial, "mt:1", 50500, "video0.avi")
	if err != nil || !strings.Contains(resp, "DONE work/video0.mp4") {
		t.Fatalf("transcode: %q, %v", resp, err)
	}
	diffReplicas(t, c)
	// The transcoded output exists identically on every replica.
	ref, _ := c.Replica(0).FS().Read("work/video0.mp4")
	for i := 1; i < c.Replicas(); i++ {
		got, ok := c.Replica(i).FS().Read("work/video0.mp4")
		if !ok || string(got) != string(ref) {
			t.Fatalf("replica%d transcode output differs", i)
		}
	}
}

func TestCraneMySQL(t *testing.T) {
	cfg := mysqld.DefaultConfig()
	cfg.Workers = 8
	c, err := StartCluster(integrationConfig(ModeCrane), mysqld.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := clients.SysBenchPrepare(c.Dial, "prep:1", 3306, 25); err != nil {
		t.Fatal(err)
	}
	sum := clients.SysBench(c.Dial, 3306, 25, 4, 20)
	if sum.Errors != 0 {
		t.Fatalf("sysbench: %+v", sum)
	}
	diffReplicas(t, c)
	// Every replica materialized the same table.
	for i := 0; i < c.Replicas(); i++ {
		srv := replicaInstance(c, i).(*mysqld.Server)
		if got := srv.TableRows("sbtest"); got != 25 {
			t.Fatalf("replica%d has %d rows", i, got)
		}
	}
}

// TestPlanIIDivergesWithRealApp is §7.2 plan II: with time bubbling
// disabled, replicas admit socket calls at nondeterministic logical times
// and (eventually) diverge. Divergence is probabilistic per run, so this
// test only asserts the mode *functions* and reports divergence when seen;
// the experiment harness runs it repeatedly and reports the rate.
func TestPlanIIFunctional(t *testing.T) {
	cfg := mysqld.DefaultConfig()
	cfg.Workers = 8
	c, err := StartCluster(integrationConfig(ModeCraneNoBubble), mysqld.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := clients.SysBenchPrepare(c.Dial, "prep:1", 3306, 10); err != nil {
		t.Fatal(err)
	}
	sum := clients.SysBench(c.Dial, 3306, 10, 2, 10)
	if sum.Errors != 0 {
		t.Fatalf("plan II sysbench: %+v", sum)
	}
}

// replicaInstance exposes the app instance for assertions.
func replicaInstance(c *Cluster, i int) papi.Instance { return c.Replica(i).inst }
