package crane

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crane/internal/apps/httpd"
	"crane/internal/simnet"
)

// detHTTPDConfig is the pinned httpd deployment for the schedule-golden
// test. Everything that could perturb the deterministic schedule is fixed:
// no Date headers (they encode the logical clock, which bubbles advance at
// a physically-timed rate), no page cache warm-up variance, fixed worker
// count, serial client.
func detHTTPDConfig() httpd.Config {
	cfg := httpd.DefaultConfig()
	cfg.Workers = 4
	cfg.PHPChunks = 4
	cfg.PHPChunkWork = 200
	cfg.CacheEnabled = false
	cfg.WithDate = false
	return cfg
}

// detClusterConfig is the pinned cluster deployment for the golden test.
// Wtimeout is deliberately large relative to the client's worst-case
// commit latency (~400µs through the simnet and hub jitters): a request's
// entries (connect, send, close) must always reach the Paxos log before
// an empty-sequence bubble request can interleave with them, otherwise
// whether a worker's recv() finds its data admitted or has to block — a
// hash-visible WaitOn — becomes a physical race between the client's
// commit and the bubble timer. CRANE only promises cross-replica
// determinism; cross-run reproducibility additionally needs the committed
// log itself to be reproducible, which this margin provides.
func detClusterConfig() Config {
	return Config{
		Mode:     ModeCrane,
		Replicas: 3,
		Wtimeout: 5 * time.Millisecond,
		Nclock:   1000,
		NetOptions: simnet.Options{
			Latency: 30 * time.Microsecond,
			Jitter:  80 * time.Microsecond,
		},
		HubLatency:        20 * time.Microsecond,
		HubJitter:         50 * time.Microsecond,
		HeartbeatInterval: 30 * time.Millisecond,
	}
}

// runDetHTTPDWorkload runs a fixed serial request script against a
// 3-replica full-CRANE cluster and returns every replica's final DMT
// ScheduleSum and output fingerprint.
func runDetHTTPDWorkload(t *testing.T) (sums []uint64, fps []uint64) {
	t.Helper()
	cluster, err := StartCluster(detClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	// Serial script: the consensus order of client calls is then the
	// script order, so every run decides the same input sequence. Before
	// the first request and between requests, wait for every replica to go
	// quiescent with a *stable* ScheduleSum: trailing worker operations
	// (connection close, re-arming the accept/recv waits) are admitted on
	// time-bubble budget, so without this wait the next connect's commit
	// position relative to those ops — and hence the fold order of the
	// hash — would depend on physical load.
	waitScheduleStable(t, cluster)
	for i := 0; i < 6; i++ {
		req := []byte(fmt.Sprintf("GET /page%d.php HTTP/1.0\r\n\r\n", i%2))
		if _, err := cluster.DialAndRequest(fmt.Sprintf("det:%d", i), 8080, req, 1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		waitScheduleStable(t, cluster)
	}
	if err := cluster.WaitOutputs(6, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitQuiescent(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cluster.Replicas(); i++ {
		r := cluster.Replica(i)
		sums = append(sums, r.proc().Sched.Stats().ScheduleSum)
		fps = append(fps, r.Outputs().Fingerprint())
	}
	return sums, fps
}

// waitScheduleStable blocks until every replica has closed all client
// connections and its ScheduleSum has not moved for a sustained window,
// i.e. all application threads are parked back on their wait keys. The
// Paxos sequence itself need not drain: an idle cluster alternates forever
// between an empty sequence and the next requested time bubble, and that
// bubble traffic is consumed by the idle thread, whose ticks are excluded
// from the hash — it is exactly the padding the hash is defined to ignore.
func waitScheduleStable(t *testing.T, cluster *Cluster) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	last := make([]uint64, cluster.Replicas())
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		ok := true
		for i := 0; i < cluster.Replicas(); i++ {
			r := cluster.Replica(i)
			sum := r.proc().Sched.Stats().ScheduleSum
			if r.openConns.Load() != 0 || sum != last[i] {
				ok = false
			}
			last[i] = sum
		}
		if !ok {
			stable = 0
			continue
		}
		stable++
		if stable >= 15 { // ~30ms of no application-thread activity
			waitBubbleFreeWindow(t, cluster, deadline)
			return
		}
	}
	t.Fatal("schedule never stabilized between requests")
}

// waitBubbleFreeWindow returns inside a window where the next client
// request is guaranteed to commit without a time bubble landing between
// its connect and send entries. An idle cluster cycles forever: sequence
// empty for Wtimeout → primary proposes a bubble → grant commits → idle
// thread exhausts it → empty again. A connect arriving while a grant is in
// flight can be committed just ahead of it, putting a 1000-clock bubble
// between the connect and the data — and whether the worker's recv() then
// has to block is a hash-visible schedule difference. So: wait until the
// primary's sequence is *freshly* empty (less than half a Wtimeout since
// the last drain) with no bubble request outstanding; the next bubble
// proposal is then at least Wtimeout/2 away, far beyond the client's
// worst-case commit latency.
func waitBubbleFreeWindow(t *testing.T, cluster *Cluster, deadline time.Time) {
	t.Helper()
	var primary *Replica
	for i := 0; i < cluster.Replicas(); i++ {
		r := cluster.Replica(i)
		if r.node != nil && r.node.IsPrimary() {
			primary = r
			break
		}
	}
	if primary == nil {
		t.Fatal("no primary replica")
	}
	half := primary.cfg.Wtimeout / 2
	for time.Now().Before(deadline) {
		if primary.sq.Empty() && !primary.bubblePending.Load() &&
			!primary.sq.EmptyFor(half) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("no bubble-free submission window observed")
}

// TestHTTPDScheduleGolden locks the scheduler hot path to the rotation
// order of the pre-fast-path implementation: the same serial httpd
// workload must produce (a) the identical ScheduleSum on every replica,
// (b) identical cross-replica output fingerprints, and (c) exactly the
// golden values recorded in testdata/httpd_schedule.golden, which were
// captured on the original unlock→poke→wake→re-check scheduler. Any
// change to rotation order, clock semantics, or wake-up insertion points
// shows up here as a hash mismatch.
//
// Regenerate (only when the workload itself is intentionally changed) with:
//
//	CRANE_REGOLDEN=1 go test ./internal/crane -run TestHTTPDScheduleGolden
func TestHTTPDScheduleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload in -short mode")
	}
	sums, fps := runDetHTTPDWorkload(t)
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("replica %d ScheduleSum %#x != replica 0 %#x", i, sums[i], sums[0])
		}
		if fps[i] != fps[0] {
			t.Fatalf("replica %d output fingerprint %#x != replica 0 %#x", i, fps[i], fps[0])
		}
	}
	got := fmt.Sprintf("schedulesum %#x\noutputs %#x\n", sums[0], fps[0])
	goldenPath := filepath.Join("testdata", "httpd_schedule.golden")
	if os.Getenv("CRANE_REGOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s:\n%s", goldenPath, got)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with CRANE_REGOLDEN=1): %v", err)
	}
	if !bytes.Equal(want, []byte(got)) {
		t.Fatalf("schedule diverged from golden recording\n got: %s\nwant: %s", got, want)
	}
}
