package crane

import (
	"strings"
	"testing"
)

func TestMetricsSnapshot(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "m:1", "SET a 1")
	ms := c.ClusterMetrics()
	if len(ms) != 3 {
		t.Fatalf("%d metric rows", len(ms))
	}
	primaries := 0
	for _, m := range ms {
		if m.Primary {
			primaries++
		}
		if m.LogicalClock == 0 {
			t.Fatalf("replica%d clock = 0", m.Replica)
		}
		if m.Threads == 0 {
			t.Fatalf("replica%d threads = 0", m.Replica)
		}
		if m.Seq.ClientCalls == 0 {
			t.Fatalf("replica%d saw no client calls", m.Replica)
		}
		line := m.String()
		if !strings.Contains(line, "seq{") || !strings.Contains(line, "view=") {
			t.Fatalf("String() = %q", line)
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primaries in metrics", primaries)
	}
}
