package crane

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestMetricsSnapshot(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "m:1", "SET a 1")
	ms := c.ClusterMetrics()
	if len(ms) != 3 {
		t.Fatalf("%d metric rows", len(ms))
	}
	primaries := 0
	for _, m := range ms {
		if m.Primary {
			primaries++
		}
		if m.LogicalClock == 0 {
			t.Fatalf("replica%d clock = 0", m.Replica)
		}
		if m.Threads == 0 {
			t.Fatalf("replica%d threads = 0", m.Replica)
		}
		if m.Seq.ClientCalls == 0 {
			t.Fatalf("replica%d saw no client calls", m.Replica)
		}
		line := m.String()
		if !strings.Contains(line, "seq{") || !strings.Contains(line, "view=") {
			t.Fatalf("String() = %q", line)
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primaries in metrics", primaries)
	}
}

// TestClusterMetricsAcrossViewChange verifies the snapshot stays coherent
// through a primary failure: the killed replica drops out of the rows, a
// single new primary emerges in a higher view, and progress counters keep
// advancing under the new view.
func TestClusterMetricsAcrossViewChange(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "vc:1", "SET a 1")

	before := c.ClusterMetrics()
	if len(before) != 3 {
		t.Fatalf("%d rows before failure", len(before))
	}
	var commitBefore uint64
	for _, m := range before {
		if m.Primary {
			commitBefore = m.CommitIdx
		}
	}
	if commitBefore == 0 {
		t.Fatal("primary commit index = 0 after a request")
	}

	oldID, err := c.FailPrimary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Primary(); err != nil {
		t.Fatal(err)
	}
	kvRequest(t, c, "vc:2", "SET b 2")

	after := c.ClusterMetrics()
	if len(after) != 2 {
		t.Fatalf("%d rows after killing replica %d", len(after), oldID)
	}
	primaries := 0
	for _, m := range after {
		if m.Replica == oldID {
			t.Fatalf("killed replica %d still in metrics", oldID)
		}
		if m.Primary {
			primaries++
			if m.View == 0 {
				t.Fatal("new primary still reports view 0")
			}
			if m.CommitIdx <= commitBefore {
				t.Fatalf("commit index did not advance: %d <= %d", m.CommitIdx, commitBefore)
			}
		}
		if m.Seq.ClientCalls == 0 {
			t.Fatalf("replica%d saw no client calls after failover", m.Replica)
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primaries after view change", primaries)
	}
}

// TestMetricsScrapeEndpoints drives a live crane cluster and scrapes each
// replica's HTTP endpoint: /metrics must expose proxy, paxos, wal, seq, and
// dmt instruments in Prometheus text form, /healthz must report role and
// commit progress, and /trace must stream lifecycle span events.
func TestMetricsScrapeEndpoints(t *testing.T) {
	cfg := testConfig(ModeCrane)
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.TraceCapacity = 4096
	cfg.WALDir = t.TempDir()
	c, err := StartCluster(cfg, newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "scrape:1", "SET a 1")
	kvRequest(t, c, "scrape:2", "GET a")

	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	get := func(addr, path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s%s: status %d", addr, path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	// The primary's scrape must cover every instrumented layer.
	deadline := time.Now().Add(5 * time.Second)
	var metrics string
	for {
		metrics = get(p.ObsAddr(), "/metrics")
		if strings.Contains(metrics, "seq_queue_wait_seconds_count") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"proxy_admitted_total",
		"proxy_burst_entries_count",
		"proxy_admit_to_exec_seconds_count",
		"paxos_commits_total",
		"paxos_commit_seconds_count",
		"paxos_view",
		"wal_appends_total",
		"seq_queue_wait_seconds_count",
		"dmt_clock",
		"dmt_turn_wait_seconds",
		"transport_msgs_sent_total",
		"crane_open_conns",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health := get(p.ObsAddr(), "/healthz")
	for _, want := range []string{`"primary":true`, `"mode":"crane"`, `"commit_index":`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz = %q missing %q", health, want)
		}
	}

	trace := get(p.ObsAddr(), "/trace")
	for _, stage := range []string{`"stage":"admit"`, `"stage":"proposed"`, `"stage":"committed"`, `"stage":"consumed"`} {
		if !strings.Contains(trace, stage) {
			t.Errorf("/trace missing %s", stage)
		}
	}

	// Backups serve their own endpoints and record commits (no admits).
	for i := 0; i < c.Replicas(); i++ {
		r := c.Replica(i)
		if r == p {
			continue
		}
		bm := get(r.ObsAddr(), "/metrics")
		if !strings.Contains(bm, "paxos_commits_total") {
			t.Errorf("backup %d /metrics missing paxos_commits_total", i)
		}
		bh := get(r.ObsAddr(), "/healthz")
		if !strings.Contains(bh, `"primary":false`) {
			t.Errorf("backup %d /healthz = %q", i, bh)
		}
	}

	// The per-stage breakdown must cover the admit -> consumed pipeline.
	rows := p.Tracer().Breakdown()
	found := false
	for _, row := range rows {
		if row.From == "admit" && row.To == "consumed" && row.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no admit->consumed breakdown rows: %+v", rows)
	}
}
