package crane

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"crane/internal/papi"
	"crane/internal/trace"
)

// groupsConfig is testConfig with the socket-call log sharded across n
// Paxos groups.
func groupsConfig(n int) Config {
	cfg := testConfig(ModeCrane)
	cfg.Groups = n
	return cfg
}

// assertReplicaFingerprints checks every pair of live replicas for
// byte-identical output logs AND equal output fingerprints — the
// cross-replica identity every multi-group test must assert (the merge is
// only correct if sharding is invisible to the committed execution).
func assertReplicaFingerprints(t *testing.T, c *Cluster) {
	t.Helper()
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("output divergence across replicas: %v", divs)
	}
	var fp uint64
	first := true
	for i := 0; i < c.Replicas(); i++ {
		r := c.Replica(i)
		if r.killed() {
			continue
		}
		got := r.Outputs().Fingerprint()
		if first {
			fp, first = got, false
		} else if got != fp {
			t.Fatalf("replica %d output fingerprint %#x != %#x", i, got, fp)
		}
	}
}

// TestMultiGroupDeterminism runs the KV workload over a 2-group sharded
// cluster: connections hash across both groups, commit in independent Paxos
// logs, and must still execute in one replica-identical order.
func TestMultiGroupDeterminism(t *testing.T) {
	c, err := StartCluster(groupsConfig(2), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 12; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("mg:%d", i), fmt.Sprintf("SET k%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET %d = %q", i, got)
		}
	}
	for i := 0; i < 12; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("mg:g%d", i), fmt.Sprintf("GET k%d", i)); got != fmt.Sprintf("VALUE v%d", i) {
			t.Fatalf("GET %d = %q", i, got)
		}
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertReplicaFingerprints(t, c)
	assertNoDivergenceAlarms(t, c)

	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	// Both groups must actually have carried traffic (24 distinct
	// connections rendezvous-hash across 2 groups with overwhelming
	// probability) and the merge must have emitted every CLIENT entry
	// delivered — in steady state the newest bubble round's tail stays
	// parked behind the other group, so total Delivered runs ahead of
	// Emitted by that bubble padding.
	gs := p.GroupStats()
	if gs.Groups != 2 || gs.Emitted == 0 || gs.PendingClient != 0 {
		t.Fatalf("merge stats %+v: want 2 groups, all delivered client entries emitted", gs)
	}
	if gs.Delivered != gs.Emitted+uint64(gs.Pending) {
		t.Fatalf("merge stats %+v: delivered != emitted+pending", gs)
	}
	for g := 0; g < 2; g++ {
		if idx := p.GroupNode(g).CommitIndex(); idx == 0 {
			t.Fatalf("group %d never committed", g)
		}
	}
	// Per-group observability: the sharded deployment renames each
	// group's instruments (satellite: paxos_groupN_*, wal is exercised in
	// the restart test — no WAL here).
	var sb strings.Builder
	if err := p.Obs().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		want := fmt.Sprintf("paxos_group%d_commits_total", g)
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("scrape output missing %s", want)
		}
	}
}

// TestEmptyGroupBubbleLiveness pins every connection to group 0, leaving
// group 1 with no client traffic at all. The cross-group merge cannot emit
// past an idle group until a bubble advances its watermark, so the workload
// only completes if bubbles keep flowing into BOTH groups — the liveness
// property the per-group bubble rounds exist for.
func TestEmptyGroupBubbleLiveness(t *testing.T) {
	prog := newTestKV(8)
	prog.Conflict = &papi.ConflictMap{
		// Replica-consistent override: everything to group 0; group 1
		// stays empty except for time bubbles.
		ConnGroup: func(connID uint64, groups int) int { return 0 },
	}
	c, err := StartCluster(groupsConfig(2), prog)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 8; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("eg:%d", i), fmt.Sprintf("SET e%d w%d", i, i)); got != "OK" {
			t.Fatalf("SET %d = %q", i, got)
		}
	}
	if got := kvRequest(t, c, "eg:check", "GET e3"); got != "VALUE w3" {
		t.Fatalf("GET = %q", got)
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertReplicaFingerprints(t, c)
	assertNoDivergenceAlarms(t, c)

	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	// The empty group's log must be advancing on bubbles alone, and the
	// merge must have applied their watermark vectors (vecBumps is how an
	// idle group's watermark moves).
	if idx := p.GroupNode(1).CommitIndex(); idx == 0 {
		t.Fatal("empty group committed nothing: bubbles are not reaching it")
	}
	if gs := p.GroupStats(); gs.VecBumps == 0 {
		t.Fatalf("merge stats %+v: no bubble-vector watermark bumps on an empty group", gs)
	}
}

// TestFourGroupFiveReplicaFailover is the stress corner of the sharding
// matrix: four independent Paxos groups over five replicas, a primary kill
// mid-workload, and a cross-replica fingerprint assertion at the end. After
// the failover every group must re-elect (the killed replica led all of
// them), new stamps may regress below committed ones, and the merge's
// effective-stamp bump must keep all surviving replicas in one order.
func TestFourGroupFiveReplicaFailover(t *testing.T) {
	cfg := groupsConfig(4)
	cfg.Replicas = 5
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 10; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("fo:%d", i), fmt.Sprintf("SET f%d a%d", i, i)); got != "OK" {
			t.Fatalf("pre-failover SET %d = %q", i, got)
		}
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	killed, err := c.FailPrimary()
	if err != nil {
		t.Fatal(err)
	}
	// Wait out the elections — all four of them. The proxy starts
	// accepting as soon as group 0 re-elects, but a write lands on
	// whichever group its fresh connection id hashes to, and a group still
	// mid-election refuses the proposal (the client sees a dropped
	// connection). Resume load only once one replica leads every group.
	deadline := time.Now().Add(10 * time.Second)
	for {
		p, err := c.Primary()
		if err == nil && p.LeadsAllGroups() {
			break
		}
		if time.Now().After(deadline) {
			detail := ""
			for i := 0; i < c.Replicas(); i++ {
				r := c.Replica(i)
				if r.killed() {
					continue
				}
				for g := 0; g < 4; g++ {
					v, prim := r.GroupNode(g).View()
					detail += fmt.Sprintf(" r%dg%d{view=%d prim=%d}", i, g, v, prim)
				}
			}
			t.Fatalf("no replica re-elected across all 4 groups:%s", detail)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 10; i < 18; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("fo:%d", i), fmt.Sprintf("SET f%d a%d", i, i)); got != "OK" {
			t.Fatalf("post-failover SET %d = %q", i, got)
		}
	}
	if got := kvRequest(t, c, "fo:check", "GET f2"); got != "VALUE a2" {
		t.Fatalf("pre-failover key lost across leader kill: %q", got)
	}
	if got := kvRequest(t, c, "fo:check2", "GET f15"); got != "VALUE a15" {
		t.Fatalf("post-failover key missing: %q", got)
	}
	if err := c.WaitQuiescent(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertReplicaFingerprints(t, c)
	assertNoDivergenceAlarms(t, c)
	// The new primary must lead every group (bubble rounds and admissions
	// both need it in steady state), having re-elected after the kill.
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() == killed {
		t.Fatalf("killed replica %d still primary", killed)
	}
	for g := 0; g < 4; g++ {
		if idx := p.GroupNode(g).CommitIndex(); idx == 0 {
			t.Fatalf("group %d never committed", g)
		}
	}
}

// TestMultiGroupRestart recovers a failed replica from its per-group WALs
// alone: every group's log replays from slot 1 through the cross-group
// merge, which must reconstruct the identical global order the live
// replicas executed (the merge is a pure function of the per-group
// committed streams — replay included).
func TestMultiGroupRestart(t *testing.T) {
	cfg := groupsConfig(2)
	cfg.WALDir = t.TempDir()
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 6; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("rs:%d", i), fmt.Sprintf("SET r%d x%d", i, i)); got != "OK" {
			t.Fatalf("SET %d = %q", i, got)
		}
	}
	if err := c.WaitQuiescent(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i) != p {
			victim = i
			break
		}
	}
	c.FailReplica(victim)
	for i := 6; i < 10; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("rs:%d", i), fmt.Sprintf("SET r%d x%d", i, i)); got != "OK" {
			t.Fatalf("SET %d (victim down) = %q", i, got)
		}
	}
	if err := c.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	// The rebuilt replica replays both groups' WALs and catches up on the
	// entries committed while it was down.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if c.Replica(victim).Outputs().Len() >= c.Replica(p.ID()).Outputs().Len() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.WaitQuiescent(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertReplicaFingerprints(t, c)
}
