package crane

import (
	"bytes"
	"sync"
	"time"

	"crane/internal/checkpoint"
	"crane/internal/obs"
	"crane/internal/obs/flight"
	"crane/internal/papi"
	"crane/internal/seq"
)

// speculator implements ISSUE 7: the proposing replica starts executing a
// burst while its Accept round is still in flight, instead of waiting for
// the Paxos commit. The design follows "Optimistic Parallel State-Machine
// Replication": execute optimistically in proposal order, hold every
// externally visible effect, and repair on the rare mismatch.
//
// Flow, in the overwhelmingly common case (the leader proposes exactly
// what it admitted, and no view change intervenes):
//
//  1. feed: just before ProposeBatch, the proxy's submit loop hands the
//     burst here. Every entry — time bubbles included — is cloned into
//     its lane's sequence tagged Spec; the DMT gate and socket wrappers
//     consume it like any committed entry, so execution begins
//     immediately. Because Paxos commits in proposal order and feed
//     mirrors proposal order (refusing to run while any unfed proposal
//     is in flight), the local queues always equal commit order — the
//     invariant cross-replica schedule determinism hangs on. The window
//     (pending FIFO) opens.
//  2. emit: server outputs produced while the window is open are held in
//     the speculation buffer instead of reaching the output log, the
//     tracer, or the client.
//  3. onCommitted: commits arrive in proposal order and match the pending
//     FIFO head one by one; each match promotes its clone in place
//     (seq.ClearSpec). When the window drains, the buffered outputs flush
//     in order — log, trace, forward.
//
// On a mismatch (which, with a single well-behaved primary, only a view
// change can produce), a failed ProposeBatch, or primary loss with the
// window open:
//
//   - If no speculative entry was consumed yet (SpecConsumed unchanged
//     since the window opened), the clones are truncated from the lane
//     queues and nothing else happened — a "light abort", no rollback.
//   - Otherwise speculative input reached the server: the replica's
//     execution state is rebuilt at the speculation boundary — the last
//     checkpoint.Checkpointer boundary snapshot when one exists, the
//     pristine base image otherwise — and the committed entry log since
//     that boundary is replayed through a fresh deterministic scheduler.
//     Replay reproduces the pre-rollback schedule bit for bit (it is the
//     same committed input stream), so the per-lane outputs already in
//     the output log are suppressed by count and the replica converges to
//     exactly the state and fingerprints of a replica that never
//     speculated.
//
// Lock order: sp.mu may be taken before seq.mu, out.mu, ro.mu, px.mu and
// the paxos node's mu — never after any of them. The seq consumption hook
// (under seq.mu) must therefore never call into the speculator; it only
// reads Entry.Spec, which seq mutates under its own lock.
type speculator struct {
	r *Replica

	mu sync.Mutex
	// pending is the open window: fed entries whose commits are still in
	// flight, in proposal order. head tracks the FIFO position so
	// confirmation is O(1) without reslicing churn.
	pending []specRec
	phead   int
	// buf holds outputs produced while the window is open.
	buf []specOut
	// specBase snapshots each lane's SpecConsumed when the window opens;
	// abort compares after truncation to detect consumed speculation.
	specBase []uint64
	// repairing is true while a rollback goroutine owns the execution
	// state; feeds are refused and commits are swallowed into the log.
	repairing bool
	// curGate is the gate wired to the live scheduler; rollback marks it
	// dead so threads spinning in its empty-sequence loop unwind.
	curGate *gate
	// pendingCalls counts the non-bubble entries of the open window —
	// "real work is executing ahead", the signal that makes speculative
	// time grants (see feed's bubble re-arm) worth their consensus cost.
	pendingCalls int
	// unfed counts entries this replica proposed WITHOUT feeding them
	// (feed declined: view flapping, repair in progress). Their commit-time
	// enqueues are still in flight, so feeding a later burst would slot its
	// clones ahead of them in the lane queues — an order inversion against
	// every backup. Feeds are refused until the count drains to zero; it is
	// reset whenever a propose fails or a window aborts (the in-flight
	// entries are then lost or about to be repaired anyway).
	unfed int

	// log holds value copies of every committed entry since the boundary,
	// in commit order — the replay source. Data aliases the paxos payload
	// (never mutated); the queue-side header mutations (NClock ticks,
	// partial-read reslicing) happen on separate clones.
	log      []seq.Entry
	boundary *checkpoint.Checkpoint
	// epoch counts boundary restores (dmt.Stats.Epoch).
	epoch uint64
	// boundaryEvery is the log length beyond which a quiescent moment
	// triggers an opportunistic boundary capture (TryCapture) to bound
	// replay work; capturing gates one attempt at a time.
	boundaryEvery int
	capturing     bool
	cp            *checkpoint.Checkpointer
	// logCap is the hard bound on the replay log. A server that never has
	// a quiescent moment (long-lived connections) never lets a boundary
	// capture succeed, so the log would otherwise grow for the replica's
	// lifetime. Past the cap — with no window open, so no rollback can
	// ever need the entries — speculation is disabled, the log is dropped,
	// and feeding stays off until a fresh boundary capture re-establishes
	// a restore point (disabled turns every commit into a capture
	// opportunity, so the next quiet moment re-arms).
	logCap   int
	disabled bool
	logTrips uint64

	// Per-lane replay bookkeeping. recorded counts outputs this replica
	// has ever recorded per lane (monotonic across rollbacks); replayed
	// counts outputs emitted since the last rebuild; suppress is the count
	// of already-recorded outputs the replay will regenerate. During
	// replay, a lane's first suppress outputs are — by schedule
	// determinism — exactly the ones already recorded, so they are dropped
	// instead of re-recorded. recordedAtBoundary snapshots recorded when a
	// boundary is installed: a boundary restore replays only the entries
	// after the boundary, so it regenerates recorded-recordedAtBoundary
	// outputs per lane, while a genesis replay regenerates all recorded.
	recorded           []uint64
	replayed           []uint64
	suppress           []uint64
	recordedAtBoundary []uint64

	windows     uint64
	hits        uint64
	aborts      uint64
	lightAborts uint64
	rollbacks   uint64

	cWindows     *obs.Counter
	cHits        *obs.Counter
	cAborts      *obs.Counter
	cLightAborts *obs.Counter
	cOutBuf      *obs.Counter
	cLogTrips    *obs.Counter
	gLogLen      *obs.Gauge
	rollbackH    *obs.Histogram
}

// maxSpecWindow caps how many proposed-but-uncommitted entries may be
// executing ahead. Healthy windows hold a handful of entries; the cap
// only binds when commits stop arriving (a partitioned primary keeps
// proposing into its local log), bounding both the runahead the rollback
// must undo and the window bookkeeping itself.
const maxSpecWindow = 256

// defaultSpecLogCap is the default replay-log hard bound (speculator.logCap).
const defaultSpecLogCap = 1 << 16

// specRec is one fed entry awaiting its commit. A bubble fed on a
// multi-lane replica has one clone per lane (mirroring onDeliver's
// commit-time fan-out); everything else has exactly one.
type specRec struct {
	clones []*seq.Entry // the speculative queue entries (headers mutated by consumption)
	orig   seq.Entry    // pristine copy for commit matching
}

// specOut is one buffered externally visible effect: a server output, or
// (close) the server-side connection close that must not reach the
// client's socket before the outputs produced ahead of it.
type specOut struct {
	lane  int
	conn  uint64
	data  []byte
	close bool
}

// SpecStats is a snapshot of the speculation counters (Replica.SpecStats).
type SpecStats struct {
	Windows     uint64 // speculation windows opened
	Hits        uint64 // fed entries confirmed by a matching commit
	Aborts      uint64 // windows aborted (mismatch, propose failure, primary loss)
	LightAborts uint64 // aborts that truncated cleanly without a rollback
	Rollbacks   uint64 // full checkpoint-rollback repairs
	LogTrips    uint64 // replay-log cap trips (speculation disabled until re-armed)
	Pending     int    // entries currently awaiting commit
	Buffered    int    // externally visible effects currently held back
	LogLen      int    // committed entries currently in the replay log
	Disabled    bool   // feeding refused until a boundary capture re-arms
}

func newSpeculator(r *Replica, g *gate) *speculator {
	sp := &speculator{
		r:                  r,
		curGate:            g,
		specBase:           make([]uint64, r.lanes),
		recorded:           make([]uint64, r.lanes),
		replayed:           make([]uint64, r.lanes),
		suppress:           make([]uint64, r.lanes),
		recordedAtBoundary: make([]uint64, r.lanes),
		boundaryEvery:      4096,
		logCap:             defaultSpecLogCap,
		cp:                 checkpoint.New(checkpoint.Options{}),
		cWindows: r.ro.reg.Counter("spec_windows_total",
			"speculation windows opened (bursts executed ahead of commit)"),
		cHits: r.ro.reg.Counter("spec_hits_total",
			"speculatively executed entries confirmed by a matching commit"),
		cAborts: r.ro.reg.Counter("spec_aborts_total",
			"speculation windows aborted (order mismatch, propose failure, primary loss)"),
		cLightAborts: r.ro.reg.Counter("spec_light_aborts_total",
			"aborts resolved by truncation alone (no speculative input was consumed)"),
		cOutBuf: r.ro.reg.Counter("spec_outputs_buffered_total",
			"server outputs held in the speculation buffer"),
		cLogTrips: r.ro.reg.Counter("spec_log_cap_trips_total",
			"replay-log cap trips (log dropped, speculation disabled until re-armed)"),
		gLogLen: r.ro.reg.Gauge("spec_log_entries",
			"committed entries held in the speculation replay log"),
		rollbackH: r.ro.reg.Histogram("spec_rollback_seconds",
			"checkpoint-rollback repair latency (kill, restore, replay start)"),
	}
	return sp
}

// feed is called by the proxy's submit loop immediately before
// ProposeBatch, with the burst it is about to propose. On the primary it
// clones every entry of the burst — bubbles included — into the lane
// sequences as a speculative prefix, so the DMT starts executing while the
// Accept round is in flight.
//
// Bubbles MUST be speculated along with client calls, not skipped: the
// local queues must mirror commit order, and Paxos commits in proposal
// order. Skipping a bubble would enqueue it at commit time, AFTER the
// clones of any burst fed while its commit was in flight — an order
// inversion relative to every backup, which shows up as a cross-replica
// ScheduleSum divergence. (Feeding bubbles also means the primary's
// logical clock ticks ahead of commit, which is exactly the speculation
// the layer exists for.) For the same reason feed is all-or-nothing per
// burst and refuses to run while any unfed proposal is still in flight.
// Returns whether the burst was fed.
func (sp *speculator) feed(ents []*seq.Entry) bool {
	if sp.r.killed() || sp.r.node == nil || !sp.r.node.IsPrimary() {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	// Feed is all-or-nothing per burst, so the cap is checked against the
	// whole burst: admitting a burst that would overshoot maxSpecWindow is
	// refused outright rather than letting the window exceed the bound the
	// rollback bookkeeping is sized for.
	if sp.repairing || sp.disabled || sp.unfed > 0 ||
		sp.pendingLen()+len(ents) > maxSpecWindow {
		return false
	}
	for _, e := range ents {
		if sp.pendingLen() == 0 {
			// Window opens: snapshot each lane's speculative-consumption
			// position so abort can tell truncation-only from rollback.
			for i, lsq := range sp.r.sqs {
				sp.specBase[i] = lsq.SpecConsumed()
			}
			sp.windows++
			sp.cWindows.Inc()
			sp.r.flt.Control().Note(flight.EvSpecOpen, sp.r.logicalClock(),
				uint64(len(ents)), 0, "")
		}
		rec := specRec{orig: *e}
		if e.Kind == seq.KindBubble && sp.r.lanes > 1 {
			// Mirror onDeliver's commit-time fan-out: one clone per lane
			// (TickBubble mutates NClock in place).
			for _, lsq := range sp.r.sqs {
				clone := new(seq.Entry)
				*clone = *e
				rec.clones = append(rec.clones, clone)
				lsq.EnqueueSpec(clone)
			}
		} else {
			clone := new(seq.Entry)
			*clone = *e
			rec.clones = []*seq.Entry{clone}
			sp.r.laneSeq(sp.r.laneForConn(e.Conn)).EnqueueSpec(clone)
		}
		sp.pending = append(sp.pending, rec)
		if e.Kind != seq.KindBubble {
			sp.pendingCalls++
		} else if sp.pendingCalls > 0 || sp.r.openConns.Load() > 0 {
			// Speculative time: the bubble is already in the queue, so the
			// starvation test (EmptyFor) — not the commit round-trip — can
			// pace the next grant. Without this, execution that needs N
			// bubbles of clock pays N commit RTTs even though every entry
			// it consumes is speculative; with it, the whole clock demand
			// of the burst overlaps the in-flight Accept rounds. Gated on
			// live work: an idle primary keeps the commit-paced cadence,
			// so it stays quiescent (checkpoints, boundary captures) and
			// a partitioned one cannot spin the log full of bubbles.
			sp.r.bubblePending.Store(false)
		}
	}
	return len(ents) > 0
}

// unfedProposed records entries that were proposed without being fed (see
// the unfed field). Called by the submit loop when ProposeBatch succeeded
// for a burst feed declined.
func (sp *speculator) unfedProposed(n int) {
	sp.mu.Lock()
	sp.unfed += n
	sp.mu.Unlock()
}

// proposeFailed aborts the whole window after a failed ProposeBatch. A
// propose failure means lost primaryship: every pending burst (not just
// the failed one) is doomed, because the new primary's log will not
// contain them — and the same goes for any unfed proposals still counted
// as in flight, so that counter resets here too (if one does survive the
// view change and commits later, it either decrements at the floor or
// trips a mismatch abort, both of which repair correctly).
func (sp *speculator) proposeFailed() {
	sp.mu.Lock()
	sp.unfed = 0
	if sp.pendingLen() > 0 {
		sp.abortLocked()
	}
	sp.mu.Unlock()
}

// onCommitted receives every committed entry, after the commit is traced
// but before the normal enqueue. It returns true when the entry is fully
// handled here (confirmed a speculative clone already in a queue, or
// swallowed for replay during a repair) — the caller must then NOT
// enqueue it — and false when the entry should be enqueued normally.
func (sp *speculator) onCommitted(ent *seq.Entry) bool {
	sp.mu.Lock()
	// Every committed entry joins the replay log in commit order,
	// regardless of what happens to it below.
	sp.log = append(sp.log, *ent)
	sp.gLogLen.Set(int64(len(sp.log)))
	sp.boundOrCaptureLocked()
	if sp.repairing {
		// The rollback goroutine owns execution state; it will replay
		// this entry from the log.
		sp.mu.Unlock()
		return true
	}
	if sp.pendingLen() == 0 {
		// Not ours (or an unfed burst of ours arriving): the caller
		// enqueues it normally, and one fewer unfed proposal is in flight.
		if sp.unfed > 0 {
			sp.unfed--
		}
		sp.mu.Unlock()
		return false
	}
	rec := sp.pending[sp.phead]
	if !specMatch(&rec.orig, ent) {
		// Committed order diverged from speculated order (a view change
		// interleaved another primary's entries).
		full := sp.abortLocked()
		sp.mu.Unlock()
		return full
	}
	sp.popPendingLocked()
	if rec.orig.Kind == seq.KindBubble && sp.r.lanes > 1 {
		for i, clone := range rec.clones {
			sp.r.sqs[i].ClearSpec(clone, ent.Index)
		}
	} else {
		sp.r.laneSeq(sp.r.laneForConn(ent.Conn)).ClearSpec(rec.clones[0], ent.Index)
	}
	sp.hits++
	sp.cHits.Inc()
	sp.r.ro.recordConfirmed(ent.Req, ent.Conn, ent.Index)
	if sp.pendingLen() == 0 {
		sp.r.flt.Control().Note(flight.EvSpecConfirm, sp.r.logicalClock(),
			sp.hits, 0, "")
		sp.flushLocked()
		// On a primary under continuous fed traffic every commit arrives
		// with a window open, so the top-of-function check never sees
		// pendingLen()==0 — the window drain is where the log bound and
		// the capture opportunity must be re-checked.
		sp.boundOrCaptureLocked()
	}
	sp.mu.Unlock()
	return true
}

// primaryLost aborts an open window when this replica stops being the
// primary (its uncommitted proposals will never commit under the new
// view). Called from the proxy teardown path and safe to call anytime.
func (sp *speculator) primaryLost() {
	sp.mu.Lock()
	if sp.pendingLen() > 0 {
		sp.abortLocked()
	}
	sp.mu.Unlock()
}

// emit routes one server output. It returns true when the output was
// handled here (buffered while the window is open, suppressed during
// replay, or discarded during repair) and false when the caller should
// record and forward it directly — the no-speculation fast path.
func (sp *speculator) emit(conn uint64, data []byte) bool {
	lane := sp.r.laneForConn(conn)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.repairing {
		// A pre-rollback thread unwinding through its last Send; its
		// output belongs to the aborted execution.
		return true
	}
	if sp.replayed[lane] < sp.suppress[lane] {
		// Replay of an output recorded before the rollback: the lane's
		// deterministic schedule re-emits its outputs in the original
		// order, so the first suppress[lane] are exactly the recorded ones.
		sp.replayed[lane]++
		return true
	}
	if sp.pendingLen() > 0 {
		d := make([]byte, len(data))
		copy(d, data)
		sp.buf = append(sp.buf, specOut{lane: lane, conn: conn, data: d})
		sp.cOutBuf.Inc()
		return true
	}
	sp.recorded[lane]++
	sp.replayed[lane]++
	return false
}

// closeConn routes a server-side connection close. Inside an open window
// the close is buffered behind the outputs produced before it — otherwise
// the client's socket would shut before its speculated response flushes.
// Returns true when handled here. Replayed closes need no suppression
// counting: closing a connection the proxy already forgot is a no-op.
func (sp *speculator) closeConn(conn uint64) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.repairing {
		// A dying pre-rollback thread; its close belongs to the aborted
		// execution (the committed world never accepted the connection).
		return true
	}
	if sp.pendingLen() > 0 {
		sp.buf = append(sp.buf, specOut{conn: conn, close: true})
		return true
	}
	return false
}

// flushLocked releases the buffered outputs after the window's last
// commit confirmed: record, trace, and (still primary) forward, in
// production order. simnet writes never block, so flushing synchronously
// under sp.mu is safe and keeps output order atomic with the window
// close.
func (sp *speculator) flushLocked() {
	if len(sp.buf) == 0 {
		return
	}
	primary := sp.r.node.IsPrimary()
	for _, o := range sp.buf {
		if o.close {
			sp.r.px.closeConn(o.conn)
			continue
		}
		n, fp := sp.r.out.Record(o.conn, o.data) //crane:specleak-ok flush path: the window's commits all confirmed, these effects are committed
		sp.r.flt.NoteOutput(uint64(n), fp)
		sp.r.ro.recordOutput(o.conn, sp.r.logicalClock(), o.lane, 0) // speculation implies one group
		sp.recorded[o.lane]++
		sp.replayed[o.lane]++
		if primary {
			sp.r.px.forward(o.conn, o.data)
		}
	}
	sp.buf = sp.buf[:0]
}

// abortLocked tears the window down: pending clones are truncated from
// the lane queues and the buffered outputs are discarded — no
// client-visible byte of an aborted speculation survives. If any
// speculative entry was already consumed, truncation cannot undo it and
// the abort escalates to a full rollback on its own goroutine (never on
// the paxos delivery loop). Reports whether a rollback was started.
//
// Truncation happens BEFORE the consumption check: between a check and a
// truncate, a scheduled thread could consume a speculative head. After
// TruncateSpec the suffix is gone, so a stable SpecConsumed reading
// really means nothing speculative ever reached the server.
func (sp *speculator) abortLocked() (full bool) {
	sp.aborts++
	sp.cAborts.Inc()
	aborted := uint64(sp.pendingLen())
	sp.unfed = 0
	for i := sp.phead; i < len(sp.pending); i++ {
		sp.r.ro.dropSpec(sp.pending[i].orig.Req)
	}
	sp.pending = sp.pending[:0]
	sp.phead = 0
	sp.pendingCalls = 0
	for _, lsq := range sp.r.sqs {
		lsq.TruncateSpec()
	}
	clean := true
	for i, lsq := range sp.r.sqs {
		if lsq.SpecConsumed() != sp.specBase[i] {
			clean = false
			break
		}
	}
	if clean {
		// Nothing speculative reached the server, so everything in the
		// buffer was produced by committed execution (outputs of earlier,
		// already-confirmed requests emitted while this window was open).
		// There is no replay to regenerate them — flush, don't discard.
		sp.lightAborts++
		sp.cLightAborts.Inc()
		sp.r.flt.Control().Note(flight.EvSpecAbort, sp.r.logicalClock(), aborted, 0, "")
		sp.flushLocked()
		return false
	}
	// Contaminated execution: the buffer may mix committed and speculative
	// effects, but the rollback's replay regenerates every committed one,
	// so the whole buffer is safe to drop.
	sp.buf = sp.buf[:0]
	sp.repairing = true
	sp.rollbacks++
	sp.r.flt.Control().Note(flight.EvSpecAbort, sp.r.logicalClock(), aborted, 1, "")
	go sp.rollback()
	return true
}

// rollback rebuilds the replica's execution state at the speculation
// boundary and replays the committed log. It runs on its own goroutine:
// killing the old scheduler blocks until every application thread
// unwinds, which must never stall the paxos delivery loop. For the same
// reason the expensive rebuild work (filesystem restore, instance
// construction and restore, scheduler wiring) runs outside sp.mu —
// onCommitted takes sp.mu on the delivery path, and repairing=true
// already fences feeds, commits, and emits — with the lock retaken only
// to swap the rebuilt state in.
func (sp *speculator) rollback() {
	t0 := time.Now()
	r := sp.r
	old := r.proc()
	// Mark the old gate dead first: threads spinning in its
	// empty-sequence loop (the queues were just truncated) re-check it
	// and unwind; only then can Wait return.
	sp.curGate.dead.Store(true)
	old.Kill()
	old.Wait()
	// Every pre-rollback thread has exited: the execution state is
	// exclusively ours until the new scheduler starts.
	sp.mu.Lock()
	if r.killed() {
		// The replica was stopped while we unwound; leave repairing set —
		// nothing may execute again.
		sp.mu.Unlock()
		return
	}
	sp.buf = sp.buf[:0]
	// The boundary cannot change while repairing: captureBoundary refuses
	// to install one mid-repair, and nothing else writes it.
	boundary := sp.boundary
	sp.mu.Unlock()

	// Rebuild the filesystem and instance at the boundary, unlocked.
	var fs = r.baseSnap.NewFS()
	var from uint64
	fromBoundary := false
	if boundary != nil {
		restored, _, err := sp.cp.RestoreFS(boundary, r.baseSnap)
		if err == nil {
			fs = restored
			from = boundary.Index
			fromBoundary = true
		}
		// A broken boundary falls back to genesis replay: slower, never
		// wrong.
	}
	inst := r.prog.New(fs)
	if fromBoundary {
		if err := inst.Restore(boundary.Process); err != nil {
			fromBoundary = false
			from = 0
			fs = r.baseSnap.NewFS()
			inst = r.prog.New(fs)
		}
	}
	// Fresh scheduler, wired exactly like start().
	proc := papi.NewParrotProc(r.net, r.host, fs)
	proc.SetLanes(r.lanes)
	proc.SetSocketLayer(&dmtSockets{r: r})
	ng := newGate(r, r.mode == ModeCrane)
	proc.Sched.SetGate(ng)
	proc.Sched.SetObs(r.ro.reg)

	sp.mu.Lock()
	defer sp.mu.Unlock()
	if r.killed() {
		// Stopped during the rebuild; the replacement never starts.
		return
	}
	if !fromBoundary {
		sp.boundary = nil
	}
	// Replay suppression: a boundary restore replays only the entries
	// after the boundary, so it regenerates exactly the outputs recorded
	// since the boundary was installed; a genesis replay regenerates every
	// output ever recorded.
	for i := range sp.suppress {
		if fromBoundary {
			sp.suppress[i] = sp.recorded[i] - sp.recordedAtBoundary[i]
		} else {
			sp.suppress[i] = sp.recorded[i]
		}
		sp.replayed[i] = 0
		sp.specBase[i] = 0
	}
	if fromBoundary {
		sp.epoch++
		proc.Sched.SetEpoch(sp.epoch)
	}
	// Reset connection and sequence state in place (pointers into the
	// lane sequences stay valid for the gate, hooks, and socket layer).
	r.openConns.Store(0)
	r.closedMu.Lock()
	r.closedConns = make(map[uint64]bool)
	r.closedMu.Unlock()
	// Lane resets are safe precisely because speculation implies a single
	// Paxos group (Config forces Speculation off at Groups > 1): every
	// discarded entry is replayed from this group's own speculation log.
	// Were a rollback ever to run sharded, it would have to use the
	// group-scoped seq.Groups.ResetGroup — a blanket reset would discard
	// entries other groups committed but the merge has not yet emitted.
	for _, lsq := range r.sqs {
		lsq.Reset()
	}
	sp.curGate = ng
	r.execMu.Lock()
	r.fs = fs
	r.inst = inst
	r.execMu.Unlock()
	// Re-base the flight journals under a new epoch and wire them to the
	// rebuilt scheduler: the replayed re-recording starts from a fresh
	// chain basis, and live-audit samples stamped with the old epoch stop
	// being comparable (the output-fingerprint audit, which covers only
	// committed effects, keeps watching the run).
	newEpoch := r.flt.AdvanceEpoch()
	r.wireFlight(proc)
	r.flt.Control().Note(flight.EvSpecRollback, 0, uint64(newEpoch), from, "")
	r.pprocA.Store(proc)
	// Re-enqueue the committed tail in commit order, exactly as onDeliver
	// would have: bubbles cloned per lane, client calls routed by
	// connection.
	for i := range sp.log {
		ent := &sp.log[i]
		if ent.Index <= from {
			continue
		}
		if ent.Kind == seq.KindBubble && r.lanes > 1 {
			for _, lsq := range r.sqs {
				c := new(seq.Entry)
				*c = *ent
				lsq.Enqueue(c)
			}
		} else {
			c := new(seq.Entry)
			*c = *ent
			r.laneSeq(r.laneForConn(ent.Conn)).Enqueue(c)
		}
	}
	proc.Start(inst)
	sp.repairing = false
	sp.rollbackH.Since(t0)
}

// boundOrCaptureLocked bounds the replay log and opportunistically
// advances the rollback boundary; called with sp.mu held whenever the log
// may have grown or the window may have drained. It is a no-op while a
// window is open or a repair is running — the log is then (or may become)
// the replay source and must not be touched.
//
// Past logCap the log trips: a server that never has a quiescent moment
// (long-lived connections) never lets a boundary capture trim the log, so
// it would otherwise grow for the replica's lifetime. With no window open
// no rollback can ever need the entries — the log is dropped, feeding is
// disabled, and the boundary (restorable only together with the entries
// being dropped) goes with it. A later successful capture re-arms.
func (sp *speculator) boundOrCaptureLocked() {
	if sp.repairing || sp.pendingLen() > 0 {
		return
	}
	live := len(sp.log) - sp.trimmedLenLocked()
	if live > sp.logCap {
		sp.disabled = true
		sp.log = nil
		sp.boundary = nil
		sp.logTrips++
		sp.cLogTrips.Inc()
		sp.gLogLen.Set(0)
		return
	}
	sp.maybeBoundaryLocked(live)
}

// maybeBoundaryLocked launches one quiescent TryCapture when the replay
// log has outgrown boundaryEvery and no window is open. The capture is
// validated like Replica.Checkpoint — commit index unchanged and still
// quiescent afterwards — plus a speculation-generation check, and
// installed only if the world held still. While speculation is disabled
// (log cap trip) every call is a capture opportunity regardless of log
// length: a fresh boundary is what re-arms feeding.
func (sp *speculator) maybeBoundaryLocked(live int) {
	if sp.capturing || sp.repairing || sp.pendingLen() > 0 {
		return
	}
	if sp.disabled {
		// Cheap pre-filter: with clients connected the TryCapture cannot
		// be quiescent, so skip the goroutine spawn.
		if sp.r.openConns.Load() != 0 {
			return
		}
	} else if live < sp.boundaryEvery {
		return
	}
	sp.capturing = true
	go sp.captureBoundary(sp.windows + sp.rollbacks)
}

// trimmedLenLocked returns how much of the log precedes the current
// boundary (already restorable without replay). The log is in commit
// order, so the restorable prefix ends at the first index above the
// boundary — found by binary search, since this runs on the delivery
// path for every commit.
func (sp *speculator) trimmedLenLocked() int {
	if sp.boundary == nil {
		return 0
	}
	lo, hi := 0, len(sp.log)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sp.log[mid].Index <= sp.boundary.Index {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// captureBoundary runs one TryCapture attempt off the delivery path. gen
// is the speculation generation (windows + rollbacks) snapshotted under
// sp.mu when the attempt was launched: a capture is only installed if the
// generation is unchanged at install time. The commit-index/quiescence
// re-validation alone cannot catch a window that opened mid-capture,
// consumed speculative input (mutating instance and fs state under the
// snapshot), and then aborted via primary loss with the rollback
// completing before the install check — no commit index moved, yet the
// snapshot is contaminated. Any such interleaving opens a window or runs
// a rollback, so the generation comparison rejects it.
func (sp *speculator) captureBoundary(gen uint64) {
	r := sp.r
	defer func() {
		sp.mu.Lock()
		sp.capturing = false
		sp.mu.Unlock()
	}()
	// Short polling loop rather than one shot: this goroutine launches at
	// a commit, and at that instant the just-committed entry (or the next
	// fed bubble's remaining clock grant) usually still sits in a lane
	// queue, so a single TryCapture would almost never find the quiescent
	// gap that opens between commits. A failed attempt is cheap
	// (ErrNotQuiescent returns immediately); the loop is bounded and the
	// next commit relaunches if it drains without success.
	var ck *checkpoint.Checkpoint
	for attempt := 0; attempt < 50; attempt++ {
		if r.killed() {
			return
		}
		idxBefore := r.node.CommitIndex()
		r.execMu.Lock()
		fs := r.fs
		r.execMu.Unlock()
		got, _, err := sp.cp.TryCapture(r, fs, r.baseSnap, func() uint64 { return idxBefore })
		if err == nil && r.node.CommitIndex() == idxBefore && r.Quiescent() {
			ck = got
			break
		}
		// Input raced the capture (or the server is mid-burst); back off
		// and poll for the next quiet moment.
		time.Sleep(2 * time.Millisecond)
	}
	if ck == nil {
		return
	}
	sp.mu.Lock()
	if !sp.repairing && sp.windows+sp.rollbacks == gen {
		sp.boundary = ck
		r.flt.Control().Note(flight.EvCheckpoint, r.logicalClock(), ck.Index, 0, "")
		// The capture was validated quiescent with the commit index
		// unchanged, so recorded[] cannot have moved since the snapshot:
		// this is the per-lane output count the boundary state embodies.
		copy(sp.recordedAtBoundary, sp.recorded)
		// A fresh restore point re-arms feeding after a log cap trip.
		sp.disabled = false
		// Trim the now-restorable prefix from the replay log.
		keep := sp.log[:0]
		for i := range sp.log {
			if sp.log[i].Index > ck.Index {
				keep = append(keep, sp.log[i])
			}
		}
		for i := len(keep); i < len(sp.log); i++ {
			sp.log[i] = seq.Entry{}
		}
		sp.log = keep
		sp.gLogLen.Set(int64(len(sp.log)))
	}
	sp.mu.Unlock()
}

// active reports whether speculation state is in flight — an open window
// or a running repair. Quiescence (and therefore checkpointing) excludes
// both.
func (sp *speculator) active() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pendingLen() > 0 || sp.repairing
}

// barrier waits out a rollback's state-swap critical section; stop()
// calls it after setting the killed flag so the final Kill targets
// whichever scheduler exists afterwards.
func (sp *speculator) barrier() {
	sp.mu.Lock()
	//lint:ignore SA2001 empty critical section is the point: it orders
	// stop() after any in-flight rollback swap.
	sp.mu.Unlock()
}

// stats snapshots the counters.
func (sp *speculator) stats() SpecStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpecStats{
		Windows:     sp.windows,
		Hits:        sp.hits,
		Aborts:      sp.aborts,
		LightAborts: sp.lightAborts,
		Rollbacks:   sp.rollbacks,
		LogTrips:    sp.logTrips,
		Pending:     sp.pendingLen(),
		Buffered:    len(sp.buf),
		LogLen:      len(sp.log),
		Disabled:    sp.disabled,
	}
}

func (sp *speculator) pendingLen() int { return len(sp.pending) - sp.phead }

func (sp *speculator) popPendingLocked() {
	if sp.pending[sp.phead].orig.Kind != seq.KindBubble {
		sp.pendingCalls--
	}
	sp.pending[sp.phead] = specRec{}
	sp.phead++
	if sp.phead == len(sp.pending) {
		sp.pending = sp.pending[:0]
		sp.phead = 0
	}
}

// specMatch reports whether a committed entry is the speculated one.
// With a single well-behaved primary this always holds; request ids are
// globally unique, the rest is belt and suspenders.
func specMatch(a, b *seq.Entry) bool {
	return a.Req == b.Req && a.Kind == b.Kind && a.Conn == b.Conn &&
		a.Port == b.Port && a.NClock == b.NClock && bytes.Equal(a.Data, b.Data)
}
