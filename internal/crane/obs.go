package crane

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crane/internal/obs"
	"crane/internal/obs/flight"
	"crane/internal/paxos"
	"crane/internal/seq"
)

// replicaObs is one replica's observability state: the instrument registry
// every layer (proxy, paxos, wal, seq, dmt) registers into, the lifecycle
// tracer, and the request-id machinery that threads one id from proxy
// admission through consensus, WAL persist, DMT turn, execution, and output.
type replicaObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	srv    *obs.Server

	reqSeq atomic.Uint64 // per-replica admission counter

	mu         sync.Mutex
	admitTimes map[uint64]time.Time // req -> admission time (admitting primary only)
	connReq    map[uint64]uint64    // conn -> last consumed req (output attribution)
	specExeced map[uint64]bool      // req -> consumed speculatively, commit pending

	proxyAccepts  *obs.Counter   // socket calls admitted by the proxy
	proxyRejects  *obs.Counter   // admissions refused (not primary / shutdown)
	burstSize     *obs.Histogram // value: entries per proxy ProposeBatch burst
	admitToCommit *obs.Histogram // admission -> consensus commit (primary)
	admitToExec   *obs.Histogram // admission -> DMT consumption (primary)
}

// newReplicaObs builds the registry and instruments for one replica. The
// tracer is nil unless cfg.TraceCapacity > 0 (tracing is opt-in; a nil
// tracer discards events).
func newReplicaObs(r *Replica) *replicaObs {
	reg := obs.NewRegistry()
	ro := &replicaObs{
		reg:        reg,
		tracer:     obs.NewTracer(r.cfg.TraceCapacity),
		admitTimes: make(map[uint64]time.Time),
		connReq:    make(map[uint64]uint64),
		specExeced: make(map[uint64]bool),
		proxyAccepts: reg.Counter("proxy_admitted_total",
			"socket calls admitted by the proxy for consensus"),
		proxyRejects: reg.Counter("proxy_rejected_total",
			"socket-call admissions refused (not primary or shutting down)"),
		burstSize: reg.ValueHistogram("proxy_burst_entries",
			"socket calls coalesced per consensus submission burst"),
		admitToCommit: reg.Histogram("proxy_admit_to_commit_seconds",
			"proxy admission to consensus commit"),
		admitToExec: reg.Histogram("proxy_admit_to_exec_seconds",
			"proxy admission to DMT-turn consumption by the server"),
	}
	reg.GaugeFunc("crane_open_conns", "alive server-side connections", func() float64 {
		return float64(r.openConns.Load())
	})
	reg.GaugeFunc("trace_dropped_total", "lifecycle-trace events overwritten after the ring filled", func() float64 {
		return float64(ro.tracer.Dropped())
	})
	return ro
}

// assignReq allocates a request id unique across replicas: the replica id in
// the high bits (like connection ids) and an admission counter below.
func (ro *replicaObs) assignReq(replicaID int) uint64 {
	return uint64(replicaID+1)<<48 | ro.reqSeq.Add(1)
}

// recordAdmit stamps a client socket call at proxy admission. Only the
// admitting replica (the primary) holds the admit time; bubbles never pass
// through here, so the map cannot leak entries that nothing consumes.
func (ro *replicaObs) recordAdmit(req, conn uint64) {
	now := time.Now()
	ro.mu.Lock()
	ro.admitTimes[req] = now
	ro.mu.Unlock()
	ro.proxyAccepts.Inc()
	ro.tracer.Record(obs.SpanEvent{Req: req, Conn: conn, Stage: obs.StageAdmit, Wall: now.UnixNano()})
}

// recordProposed marks a burst entry accepted for consensus ordering.
func (ro *replicaObs) recordProposed(e *seq.Entry) {
	if e.Req == 0 {
		return
	}
	ro.tracer.Record(obs.SpanEvent{Req: e.Req, Conn: e.Conn, Stage: obs.StageProposed})
}

// recordCommitted marks an entry's consensus commit in group g (0 unless
// sharded). Every replica records the stage; the admit-to-commit latency is
// observable only where the admission happened (the map lookup misses
// elsewhere). The admit time stays mapped until consumption so
// admit-to-exec can still be measured.
func (ro *replicaObs) recordCommitted(e *seq.Entry, g int) {
	if e.Req == 0 {
		return
	}
	ro.mu.Lock()
	t0, ok := ro.admitTimes[e.Req]
	ro.mu.Unlock()
	if ok {
		ro.admitToCommit.Since(t0)
	}
	ro.tracer.Record(obs.SpanEvent{Req: e.Req, Conn: e.Conn, Index: e.Index,
		Stage: obs.StageCommit, Group: g})
}

// recordConsumed marks an entry fully consumed by the server at its DMT
// turn. Runs inside the sequence's consumption hook (under sq.mu): it only
// touches ro.mu, the instruments, and the tracer — never the sequence or
// the scheduler lock (logical comes from the scheduler's atomic mirror).
func (ro *replicaObs) recordConsumed(e *seq.Entry, logical uint64, lane, group int) {
	if e.Req == 0 {
		return
	}
	if e.Spec {
		// Consumed ahead of commit: this IS the admit-to-exec moment — the
		// latency the speculation layer exists to shorten. The admit time
		// stays mapped (recordConfirmed cleans it up at commit, so
		// admit-to-commit still measures) and the consumed stage is
		// deferred to confirmation, when the consensus index is known.
		// Reading e.Spec here is safe: the hook runs under the sequence
		// lock, the same lock ClearSpec mutates the flag under.
		ro.mu.Lock()
		t0, ok := ro.admitTimes[e.Req]
		ro.specExeced[e.Req] = true
		if e.Conn != 0 {
			ro.connReq[e.Conn] = e.Req
		}
		ro.mu.Unlock()
		if ok {
			ro.admitToExec.Since(t0)
		}
		ro.tracer.Record(obs.SpanEvent{Req: e.Req, Conn: e.Conn,
			Stage: obs.StageSpecExec, Logical: logical, Lane: lane, Group: group})
		return
	}
	ro.mu.Lock()
	t0, ok := ro.admitTimes[e.Req]
	if ok {
		delete(ro.admitTimes, e.Req)
	}
	if e.Conn != 0 {
		ro.connReq[e.Conn] = e.Req
	}
	ro.mu.Unlock()
	if ok {
		ro.admitToExec.Since(t0)
	}
	ro.tracer.Record(obs.SpanEvent{Req: e.Req, Conn: e.Conn, Index: e.Index,
		Stage: obs.StageConsumed, Logical: logical, Lane: lane, Group: group})
}

// recordConfirmed closes the loop on a speculatively consumed entry: its
// commit arrived and matched. Emits the consumed stage (now that the
// consensus index exists) and releases the admit-time entry. No-ops when
// the entry was not consumed speculatively — the race where the commit
// confirms while consumption is mid-flight resolves to the normal path
// (ClearSpec flips the flag before the pop, so the consumption hook
// records everything itself).
func (ro *replicaObs) recordConfirmed(req, conn, index uint64) {
	if req == 0 {
		return
	}
	ro.mu.Lock()
	wasSpec := ro.specExeced[req]
	if wasSpec {
		delete(ro.specExeced, req)
		delete(ro.admitTimes, req)
	}
	ro.mu.Unlock()
	if wasSpec {
		ro.tracer.Record(obs.SpanEvent{Req: req, Conn: conn, Index: index,
			Stage: obs.StageConsumed})
	}
}

// dropSpec forgets an aborted speculative entry's bookkeeping so its
// eventual replayed consumption (under the repaired committed order) does
// not record a bogus admit-to-exec latency.
func (ro *replicaObs) dropSpec(req uint64) {
	if req == 0 {
		return
	}
	ro.mu.Lock()
	delete(ro.specExeced, req)
	delete(ro.admitTimes, req)
	ro.mu.Unlock()
}

// recordOutput marks a server response on conn. Outputs carry no request id
// of their own; they are attributed to the last request consumed on the
// connection (the request/response flow of the example servers).
func (ro *replicaObs) recordOutput(conn uint64, logical uint64, lane, group int) {
	ro.mu.Lock()
	req := ro.connReq[conn]
	ro.mu.Unlock()
	ro.tracer.Record(obs.SpanEvent{Req: req, Conn: conn, Stage: obs.StageOutput,
		Logical: logical, Lane: lane, Group: group})
}

// rejectAdmit counts a refused admission and forgets its admit time (the
// request will never commit or be consumed, so the entry would leak).
func (ro *replicaObs) rejectAdmit(req uint64) {
	ro.mu.Lock()
	delete(ro.admitTimes, req)
	ro.mu.Unlock()
	ro.proxyRejects.Inc()
}

// dropConnReq forgets a closed connection's output attribution.
func (ro *replicaObs) dropConnReq(conn uint64) {
	ro.mu.Lock()
	delete(ro.connReq, conn)
	ro.mu.Unlock()
}

// registerTransportStats exposes a consensus transport's counters (both
// ChanTransport and TCPTransport provide Stats) through the registry.
func registerTransportStats(reg *obs.Registry, stats func() paxos.TransportStats) {
	reg.GaugeFunc("transport_msgs_sent_total", "consensus messages sent", func() float64 {
		return float64(stats().Sent)
	})
	reg.GaugeFunc("transport_msgs_received_total", "consensus messages delivered", func() float64 {
		return float64(stats().MsgsReceived)
	})
	reg.GaugeFunc("transport_bytes_sent_total", "consensus wire bytes written", func() float64 {
		return float64(stats().BytesSent)
	})
	reg.GaugeFunc("transport_bytes_received_total", "consensus wire bytes read", func() float64 {
		return float64(stats().BytesRecv)
	})
	reg.GaugeFunc("transport_flushes_total", "batch-boundary buffer flushes", func() float64 {
		return float64(stats().Flushes)
	})
	reg.GaugeFunc("transport_reconnects_total", "peer dials (initial and after failure)", func() float64 {
		return float64(stats().Reconnects)
	})
	reg.GaugeFunc("transport_drops_total", "outbound loss plus inbox overflow drops", func() float64 {
		s := stats()
		return float64(s.LossDropped + s.InboxDropped)
	})
}

// serve starts the replica's scrape endpoint when addr is non-empty.
// journal is nil-safe: a recorder-less replica serves 404 at /journal.
func (ro *replicaObs) serve(addr string, health func() obs.Health, rec *flight.Recorder) error {
	if addr == "" {
		return nil
	}
	var journal func(io.Writer) error
	if rec != nil {
		journal = rec.WriteJSONL
	}
	srv, err := obs.StartServer(addr, ro.reg, health, ro.tracer, journal)
	if err != nil {
		return err
	}
	ro.srv = srv
	return nil
}

func (ro *replicaObs) close() {
	if ro.srv != nil {
		ro.srv.Close()
	}
}

// metricsAddrFor derives replica id's scrape address from the configured
// base address: the port is offset by id so a cluster on one machine gets
// one endpoint per replica (":0" stays ":0" — every replica picks a free
// port).
func metricsAddrFor(base string, id int) (string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("crane: metrics addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("crane: metrics addr %q: %w", base, err)
	}
	if port != 0 {
		port += id
	}
	return net.JoinHostPort(host, strconv.Itoa(port)), nil
}
