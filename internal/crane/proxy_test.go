package crane

import (
	"testing"
	"time"

	"crane/internal/seq"
	"crane/internal/simnet"
)

// TestBackupProxyRefusesClients: only the primary's proxy accepts client
// connections (§2.1); backups close them immediately.
func TestBackupProxyRefusesClients(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	var backup *Replica
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i) != p {
			backup = c.Replica(i)
			break
		}
	}
	conn, err := c.Net().Dial("refused:1", c.Addr(backup.ID(), 7000))
	if err != nil {
		t.Fatalf("dial backup: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte("GET x\n"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, rerr := conn.Read(buf)
	if n != 0 || rerr == nil {
		t.Fatalf("backup proxy served a client: n=%d err=%v", n, rerr)
	}
}

// TestProxyConnIDsUniqueAcrossPrimaries: connection ids embed the replica
// id so a failover cannot reuse a previous primary's ids.
func TestProxyConnIDsUniqueAcrossPrimaries(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := kvRequest(t, c, "u:1", "SET a 1"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Record conn ids seen so far on a surviving replica's output log.
	p, _ := c.Primary()
	oldID := p.ID()
	c.FailReplica(oldID)
	deadline := time.Now().Add(10 * time.Second)
	var resp string
	for time.Now().Before(deadline) {
		r, err := c.DialAndRequest("u:2", 7000, []byte("GET a\n"), 3)
		if err == nil && len(r) > 0 {
			resp = string(r)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp == "" {
		t.Fatal("no response after failover")
	}
	// Inspect a survivor's outputs: the two connections must have distinct
	// ids with distinct high bits (replica id + 1).
	var survivor *Replica
	for i := 0; i < c.Replicas(); i++ {
		if i != oldID {
			survivor = c.Replica(i)
			break
		}
	}
	// Backups consume (and log) outputs slightly after the primary.
	evDeadline := time.Now().Add(10 * time.Second)
	for survivor.Outputs().Len() < 2 && time.Now().Before(evDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	evs := survivor.Outputs().Events()
	if len(evs) < 2 {
		t.Fatalf("%d outputs", len(evs))
	}
	first, last := evs[0].Conn, evs[len(evs)-1].Conn
	if first>>48 == last>>48 {
		t.Fatalf("conn ids share primary tag: %x vs %x", first, last)
	}
}

// TestProxySplitsLargeWrites: a client payload larger than one read buffer
// arrives as multiple SEND entries that reassemble in order.
func TestProxySplitsLargeWrites(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	// One long SET line (several KB value) must round trip intact.
	val := ""
	for i := 0; i < 2000; i++ {
		val += "x"
	}
	if got := kvRequest(t, c, "big:1", "SET big "+val); got != "OK" {
		t.Fatalf("big SET = %q", got)
	}
	if got := kvRequest(t, c, "big:2", "GET big"); got != "VALUE "+val {
		t.Fatalf("big GET len = %d", len(got))
	}
}

// TestSeqIndexesMonotonic: delivered entries carry strictly increasing
// global indexes (the viewstamps that key checkpoints).
func TestSeqIndexesMonotonic(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 3; i++ {
		kvRequest(t, c, "m:1", "SET k v")
	}
	st := c.SeqStats()
	if st.Enqueued == 0 {
		t.Fatal("nothing enqueued")
	}
	// Monotonicity is enforced structurally by paxos delivery order; a
	// regression would show as enqueued < consumed or pending underflow.
	if st.Consumed > st.Enqueued {
		t.Fatalf("consumed %d > enqueued %d", st.Consumed, st.Enqueued)
	}
}

// TestDialUnknownPortRefused: clients dialing a port the program does not
// expose are refused at the network level.
func TestDialUnknownPortRefused(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	p, _ := c.Primary()
	if _, err := c.Net().Dial("z:1", c.Addr(p.ID(), 9999)); err == nil {
		t.Fatal("dial to unbound port succeeded")
	}
}

// TestEntryPortRouting: CONNECT entries carry the port so multi-port
// programs route accepts correctly (unit-level check of the seq contract).
func TestEntryPortRouting(t *testing.T) {
	s := seq.New()
	s.Enqueue(&seq.Entry{Index: 1, Kind: seq.KindConnect, Conn: 1, Port: 80})
	s.Enqueue(&seq.Entry{Index: 2, Kind: seq.KindConnect, Conn: 2, Port: 443})
	h, _ := s.Head()
	if h.Port != 80 {
		t.Fatalf("head port = %d", h.Port)
	}
	s.PopConnect()
	h, _ = s.Head()
	if h.Port != 443 {
		t.Fatalf("second port = %d", h.Port)
	}
}

var _ = simnet.ErrRefused // keep import for clarity of intent
