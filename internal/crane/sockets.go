package crane

import (
	"errors"
	"io"
	"sync"
	"time"

	"crane/internal/papi"
	"crane/internal/seq"
)

// ErrKilled is returned from socket calls on a torn-down replica.
var ErrKilled = errors.New("crane: replica killed")

// --- deterministic sockets (full CRANE / plan II): paper Fig. 10/11 ---

// dmtSockets is the papi.SocketLayer for DMT-scheduled replicas: accept,
// poll, and recv return at deterministic logical times, driven by the
// Paxos sequence through the admission gate.
type dmtSockets struct{ r *Replica }

// Listen implements papi.SocketLayer.
func (s *dmtSockets) Listen(t papi.T, port int) (papi.Listener, error) {
	return &dmtListener{r: s.r, port: port}, nil
}

type dmtListener struct {
	r    *Replica
	port int
}

// Poll reports readiness without consuming: it blocks until the sequence
// head is a CONNECT for this port. The hint is ignored — readiness is a
// deterministic property of the sequence, not of physical time.
func (l *dmtListener) Poll(t papi.T, hint time.Duration) bool {
	th, ok := papi.DMTThreadOf(t)
	if !ok {
		return false
	}
	// Each lane's acceptor polls its own lane's sequence: CONNECTs are
	// routed to lanes by the program's conflict map, so lane L only ever
	// sees (and accepts) its own connections.
	sq := l.r.laneSeq(th.LaneID())
	th.GetTurn()
	th.Admit()
	for {
		if h, ok := sq.Head(); ok && h.Kind == seq.KindConnect && h.Port == l.port {
			th.PutTurn()
			return true
		}
		th.WaitOn(acceptKey{l.port})
	}
}

// Accept consumes a CONNECT entry at a deterministic logical time.
func (l *dmtListener) Accept(t papi.T) (papi.Conn, error) {
	th, ok := papi.DMTThreadOf(t)
	if !ok {
		return nil, errors.New("crane: accept from non-DMT thread")
	}
	sq := l.r.laneSeq(th.LaneID())
	th.GetTurn()
	th.Admit()
	for {
		if h, ok := sq.Head(); ok && h.Kind == seq.KindConnect && h.Port == l.port {
			connID, _, _ := sq.PopConnect()
			l.r.openConns.Add(1)
			th.PutTurn()
			return &dmtConn{r: l.r, id: connID, sq: sq}, nil
		}
		th.WaitOn(acceptKey{l.port})
	}
}

// Close is a no-op: the listener is virtual (the proxy owns the real one).
func (l *dmtListener) Close() error { return nil }

type dmtConn struct {
	r      *Replica
	id     uint64
	sq     *seq.Sequence // the connection's lane sequence (== r.sq single-lane)
	eof    bool          // all client data consumed (guarded by the token)
	closed bool
}

// ID implements papi.Conn.
func (c *dmtConn) ID() uint64 { return c.id }

// Recv implements the recv() wrapper of Fig. 11: block on the connection
// key until the matching client send() reaches the sequence head, then
// dequeue by actual bytes received.
func (c *dmtConn) Recv(t papi.T, buf []byte) (int, error) {
	th, ok := papi.DMTThreadOf(t)
	if !ok {
		return 0, errors.New("crane: recv from non-DMT thread")
	}
	th.GetTurn()
	th.Admit()
	if c.eof || c.closed {
		th.PutTurn()
		return 0, io.EOF
	}
	for {
		n, eof := c.sq.ReadInto(c.id, buf)
		if eof {
			c.eof = true
			c.r.openConns.Add(-1)
			th.PutTurn()
			return 0, io.EOF
		}
		if n > 0 {
			th.PutTurn()
			return n, nil
		}
		th.WaitOn(recvKey{c.id})
	}
}

// Send is scheduled by DMT and forwarded through the proxy: the primary
// responds to the client; backups log and drop (§2.1).
func (c *dmtConn) Send(t papi.T, data []byte) (int, error) {
	th, ok := papi.DMTThreadOf(t)
	if !ok {
		return 0, errors.New("crane: send from non-DMT thread")
	}
	th.GetTurn()
	th.Admit()
	c.r.emitOutput(c.id, data)
	th.PutTurn()
	return len(data), nil
}

// Close releases the server side; any not-yet-consumed client calls for
// this connection will be discarded by the gate.
func (c *dmtConn) Close(t papi.T) error {
	th, ok := papi.DMTThreadOf(t)
	if !ok {
		return errors.New("crane: close from non-DMT thread")
	}
	th.GetTurn()
	th.Admit()
	if !c.closed {
		c.closed = true
		if !c.eof {
			c.r.openConns.Add(-1)
		}
		c.r.markConnClosed(c.id)
	}
	th.PutTurn()
	c.r.proxyCloseConn(c.id)
	return nil
}

// --- pump sockets (paxos-only mode): consensus-ordered admission with ---
// --- nondeterministic threading (Figure 14's "w/ Paxos only" bars)    ---

// pumpSockets delivers sequence entries to plain-goroutine servers in
// consensus order, using ordinary condition variables: input ordering
// without execution determinism.
type pumpSockets struct {
	r    *Replica
	mu   sync.Mutex
	cond *sync.Cond
}

func newPumpSockets(r *Replica) *pumpSockets {
	p := &pumpSockets{r: r}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// wake is called by the replica whenever a new entry is enqueued.
func (p *pumpSockets) wake() { p.cond.Broadcast() }

// Listen implements papi.SocketLayer.
func (p *pumpSockets) Listen(t papi.T, port int) (papi.Listener, error) {
	return &pumpListener{p: p, port: port}, nil
}

// discardClosed drains head entries addressed to server-closed
// connections. Caller holds p.mu.
func (p *pumpSockets) discardClosed() {
	for {
		h, ok := p.r.sq.Head()
		if !ok {
			return
		}
		if (h.Kind == seq.KindSend || h.Kind == seq.KindClose) && p.r.connClosed(h.Conn) {
			p.r.sq.PopIfConn(h.Conn)
			continue
		}
		return
	}
}

type pumpListener struct {
	p    *pumpSockets
	port int
}

func (l *pumpListener) Poll(t papi.T, hint time.Duration) bool {
	deadline := time.Now().Add(hint)
	for {
		l.p.mu.Lock()
		l.p.discardClosed()
		h, ok := l.p.r.sq.Head()
		ready := ok && h.Kind == seq.KindConnect && h.Port == l.port
		l.p.mu.Unlock()
		if ready || l.p.r.killed() {
			return ready
		}
		if hint >= 0 && !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (l *pumpListener) Accept(t papi.T) (papi.Conn, error) {
	l.p.mu.Lock()
	defer l.p.mu.Unlock()
	for {
		if l.p.r.killed() {
			return nil, ErrKilled
		}
		l.p.discardClosed()
		if h, ok := l.p.r.sq.Head(); ok && h.Kind == seq.KindConnect && h.Port == l.port {
			connID, _, _ := l.p.r.sq.PopConnect()
			l.p.r.openConns.Add(1)
			l.p.cond.Broadcast()
			return &pumpConn{p: l.p, id: connID}, nil
		}
		l.p.waitWithKick()
	}
}

// waitWithKick waits on the cond but arranges a periodic kick so Killed
// transitions and entries enqueued before the waiter parked are observed.
// Caller holds p.mu.
func (p *pumpSockets) waitWithKick() {
	t := time.AfterFunc(500*time.Microsecond, func() { p.cond.Broadcast() })
	p.cond.Wait()
	t.Stop()
}

func (l *pumpListener) Close() error { return nil }

type pumpConn struct {
	p      *pumpSockets
	id     uint64
	eof    bool
	closed bool
}

func (c *pumpConn) ID() uint64 { return c.id }

func (c *pumpConn) Recv(t papi.T, buf []byte) (int, error) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if c.eof || c.closed {
		return 0, io.EOF
	}
	for {
		if c.p.r.killed() {
			return 0, ErrKilled
		}
		n, eof := c.p.r.sq.ReadInto(c.id, buf)
		if eof {
			c.eof = true
			c.p.r.openConns.Add(-1)
			c.p.cond.Broadcast()
			return 0, io.EOF
		}
		if n > 0 {
			c.p.cond.Broadcast()
			return n, nil
		}
		c.p.discardClosed()
		c.p.waitWithKick()
	}
}

func (c *pumpConn) Send(t papi.T, data []byte) (int, error) {
	c.p.r.emitOutput(c.id, data)
	return len(data), nil
}

func (c *pumpConn) Close(t papi.T) error {
	c.p.mu.Lock()
	if !c.closed {
		c.closed = true
		if !c.eof {
			c.p.r.openConns.Add(-1)
		}
		c.p.r.markConnClosed(c.id)
		c.p.cond.Broadcast()
	}
	c.p.mu.Unlock()
	c.p.r.proxyCloseConn(c.id)
	return nil
}
