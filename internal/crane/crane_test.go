package crane

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"crane/internal/cfs"
	"crane/internal/checkpoint"
	"crane/internal/papi"
	"crane/internal/simnet"
	"crane/internal/trace"
)

// testKV is a small multithreaded key-value server: listener + worker pool
// over a mutex/cond worklist, line protocol ("SET k v", "GET k", "DEL k"),
// state snapshot via gob. It exercises every piece of the replica plumbing.
type testKV struct {
	workers int

	mu   sync.Mutex // guards data for Snapshot vs worker access
	data map[string]string
}

func newTestKV(workers int) papi.Program {
	return papi.Program{
		Name:  "testkv",
		Ports: []int{7000},
		New: func(fs *cfs.FS) papi.Instance {
			return &testKV{workers: workers, data: make(map[string]string)}
		},
	}
}

func (k *testKV) Snapshot() ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(k.data)
	return buf.Bytes(), err
}

func (k *testKV) Restore(b []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&k.data)
}

func (k *testKV) Run(t papi.T) {
	l, err := t.Listen(7000)
	if err != nil {
		return
	}
	var (
		wl []papi.Conn
		m  = t.NewMutex()
		cv = t.NewCond()
		sm = t.NewMutex() // app-state lock (the schedule-visible one)
	)
	for i := 0; i < k.workers; i++ {
		t.Spawn(fmt.Sprintf("kvworker%d", i), func(wt papi.T) {
			for !wt.Killed() {
				m.Lock(wt)
				for len(wl) == 0 {
					cv.Wait(wt, m)
				}
				c := wl[0]
				wl = wl[1:]
				m.Unlock(wt)
				k.serve(wt, c, sm)
			}
		})
	}
	for !t.Killed() {
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		m.Lock(t)
		wl = append(wl, c)
		m.Unlock(t)
		cv.Signal(t)
	}
}

func (k *testKV) serve(t papi.T, c papi.Conn, sm papi.Mutex) {
	defer c.Close(t)
	var acc []byte
	buf := make([]byte, 512)
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		line := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		t.Work(20) // request processing compute
		parts := strings.SplitN(line, " ", 3)
		var resp string
		sm.Lock(t)
		k.mu.Lock()
		switch parts[0] {
		case "SET":
			if len(parts) == 3 {
				k.data[parts[1]] = parts[2]
				resp = "OK\n"
			} else {
				resp = "ERR\n"
			}
		case "GET":
			if v, ok := k.data[parts[1]]; ok {
				resp = "VALUE " + v + "\n"
			} else {
				resp = "NONE\n"
			}
		case "DEL":
			delete(k.data, parts[1])
			resp = "OK\n"
		case "QUIT":
			k.mu.Unlock()
			sm.Unlock(t)
			return
		default:
			resp = "ERR\n"
		}
		k.mu.Unlock()
		sm.Unlock(t)
		if _, err := c.Send(t, []byte(resp)); err != nil {
			return
		}
	}
}

// kvRequest runs one request/response line over a fresh connection.
func kvRequest(t *testing.T, c *Cluster, client, line string) string {
	t.Helper()
	conn, err := c.Dial(client, 7000)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := bufio.NewReader(readerOf(conn))
	resp, err := r.ReadString('\n')
	if err != nil && err != io.EOF {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(resp)
}

func readerOf(c *simnet.Conn) io.Reader { return c }

func testConfig(mode Mode) Config {
	return Config{
		Mode:     mode,
		Replicas: 3,
		Wtimeout: 200 * time.Microsecond,
		Nclock:   200,
		NetOptions: simnet.Options{
			Latency: 50 * time.Microsecond,
			Jitter:  100 * time.Microsecond,
		},
		HubLatency:        30 * time.Microsecond,
		HubJitter:         80 * time.Microsecond,
		HeartbeatInterval: 30 * time.Millisecond,
		ElectionTimeout:   150 * time.Millisecond,
	}
}

func TestKVAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeNondet, ModeParrotOnly, ModePaxosOnly, ModeCrane} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c, err := StartCluster(testConfig(mode), newTestKV(8))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			if got := kvRequest(t, c, "cli0:1", "SET a 1"); got != "OK" {
				t.Fatalf("SET = %q", got)
			}
			if got := kvRequest(t, c, "cli0:2", "GET a"); got != "VALUE 1" {
				t.Fatalf("GET = %q", got)
			}
			if got := kvRequest(t, c, "cli0:3", "GET zzz"); got != "NONE" {
				t.Fatalf("GET missing = %q", got)
			}
			if got := kvRequest(t, c, "cli0:4", "DEL a"); got != "OK" {
				t.Fatalf("DEL = %q", got)
			}
			if got := kvRequest(t, c, "cli0:5", "GET a"); got != "NONE" {
				t.Fatalf("GET after DEL = %q", got)
			}
		})
	}
}

func TestKVConcurrentClients(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				key := fmt.Sprintf("k%d", i)
				val := fmt.Sprintf("v%d-%d", i, j)
				resp, err := c.DialAndRequest(fmt.Sprintf("c%d:%d", i, j), 7000,
					[]byte("SET "+key+" "+val+"\n"), 3)
				if err != nil {
					errs <- err
					return
				}
				if !strings.HasPrefix(string(resp), "OK") {
					errs <- fmt.Errorf("SET resp %q", resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every key readable afterwards.
	for i := 0; i < clients; i++ {
		got := kvRequest(t, c, fmt.Sprintf("v%d:99", i), fmt.Sprintf("GET k%d", i))
		if !strings.HasPrefix(got, "VALUE ") {
			t.Fatalf("GET k%d = %q", i, got)
		}
	}
}

// TestPlanIConsistency is the paper's §7.2 plan I: with full CRANE, all
// replicas log identical network outputs despite network jitter.
func TestPlanIConsistency(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	dumpJournalsForCI(t, c, "plan-i-consistency")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.DialAndRequest(fmt.Sprintf("pc%d:1", i), 7000,
				[]byte(fmt.Sprintf("SET key%d val%d\n", i%3, i)), 3)
		}(i)
	}
	wg.Wait()
	// Backups lag the primary by delivery latency; wait for them.
	if err := c.WaitOutputs(8, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	logs := c.OutputLogs()
	if len(logs) != 3 {
		t.Fatalf("%d output logs", len(logs))
	}
	if divs := trace.DiffAll(logs); len(divs) != 0 {
		t.Fatalf("plan I divergence: %v", divs)
	}
	assertNoDivergenceAlarms(t, c)
}

func TestBubblesInserted(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	kvRequest(t, c, "b:1", "SET x 1")
	kvRequest(t, c, "b:2", "GET x")
	st := c.SeqStats()
	if st.Bubbles == 0 {
		t.Fatal("no time bubbles were inserted")
	}
	if st.ClientCalls == 0 {
		t.Fatal("no client calls went through consensus")
	}
	if r := st.BubbleRatio(); r <= 0 || r >= 1 {
		t.Fatalf("bubble ratio = %f", r)
	}
}

func TestFailoverServesFromBackup(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := kvRequest(t, c, "f:1", "SET survivor yes"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	// Let backups consume the state before the failure.
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	oldID, err := c.FailPrimary()
	if err != nil {
		t.Fatal(err)
	}
	// A new primary emerges and serves the replicated state.
	deadline := time.Now().Add(10 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		resp, err := c.DialAndRequest("f:2", 7000, []byte("GET survivor\n"), 3)
		if err == nil && strings.HasPrefix(string(resp), "VALUE") {
			got = strings.TrimSpace(string(resp))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got != "VALUE yes" {
		t.Fatalf("post-failover GET = %q", got)
	}
	p, err := c.Primary()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() == oldID {
		t.Fatal("failed replica still primary")
	}
}

func TestCheckpointAndRestoreReplica(t *testing.T) {
	c, err := StartCluster(testConfig(ModeCrane), newTestKV(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 5; i++ {
		if got := kvRequest(t, c, fmt.Sprintf("ck:%d", i), fmt.Sprintf("SET k%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cp := checkpoint.New(checkpoint.Options{Backoff: time.Millisecond})
	ck, tm, err := c.CheckpointBackup(cp)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Index == 0 {
		t.Fatal("checkpoint at index 0")
	}
	if tm.CheckpointProcess <= 0 {
		t.Fatal("no process-checkpoint timing recorded")
	}

	// Fail a backup, then rebuild it from the shipped checkpoint.
	p, _ := c.Primary()
	victim := -1
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i) != p {
			victim = i
			break
		}
	}
	c.FailReplica(victim)
	time.Sleep(10 * time.Millisecond)

	wire, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := checkpoint.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreReplica(victim, shipped); err != nil {
		t.Fatal(err)
	}
	// The restored replica's program state must contain the checkpointed
	// keys (restored instance, not replayed from scratch).
	restored := c.Replica(victim).inst.(*testKV)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		restored.mu.Lock()
		n := len(restored.data)
		restored.mu.Unlock()
		if n == 5 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	restored.mu.Lock()
	defer restored.mu.Unlock()
	t.Fatalf("restored replica has %d keys, want 5", len(restored.data))
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNondet: "nondet", ModeParrotOnly: "parrot-only",
		ModePaxosOnly: "paxos-only", ModeCraneNoBubble: "crane-nobubble",
		ModeCrane: "crane", Mode(99): "Mode(99)",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestStartClusterValidation(t *testing.T) {
	if _, err := StartCluster(Config{}, papi.Program{}); err == nil {
		t.Fatal("program without ports accepted")
	}
	if _, err := StartCluster(Config{}, papi.Program{Ports: []int{1}}); err == nil {
		t.Fatal("program without constructor accepted")
	}
}

func TestUnreplicatedModesForceOneReplica(t *testing.T) {
	c, err := StartCluster(Config{Mode: ModeNondet, Replicas: 3}, newTestKV(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.Replicas() != 1 {
		t.Fatalf("nondet cluster has %d replicas", c.Replicas())
	}
}
