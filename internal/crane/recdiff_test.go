package crane

// Schedule-divergence diagnostics, env-gated (CRANE_SCHED_REC=1). When the
// golden determinism test flakes, this harness re-runs the workload with
// full schedule recording enabled (see Replica.start) and prints the steps
// around the first divergent (thread, op) pair — which is how the
// bubble-vs-connect commit race documented on detClusterConfig was found.

import (
	"fmt"
	"os"
	"testing"

	"crane/internal/apps/httpd"
	"crane/internal/dmt"
)

func runDetOnceRec(t *testing.T) (sum uint64, rec *dmt.Schedule) {
	cluster, err := StartCluster(detClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	waitScheduleStable(t, cluster)
	for i := 0; i < 6; i++ {
		req := []byte(fmt.Sprintf("GET /page%d.php HTTP/1.0\r\n\r\n", i%2))
		if _, err := cluster.DialAndRequest(fmt.Sprintf("det:%d", i), 8080, req, 1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		waitScheduleStable(t, cluster)
	}
	r := cluster.Replica(0)
	return r.pproc.Sched.Stats().ScheduleSum, r.schedRec
}

func TestSchedDivergenceDebug(t *testing.T) {
	if os.Getenv("CRANE_SCHED_REC") == "" {
		t.Skip("set CRANE_SCHED_REC=1 to run")
	}
	type run struct {
		sum uint64
		rec *dmt.Schedule
	}
	var runs []run
	for i := 0; i < 12; i++ {
		sum, rec := runDetOnceRec(t)
		t.Logf("run %d: sum=%#x len=%d", i, sum, rec.Len())
		runs = append(runs, run{sum, rec})
		if runs[0].sum != sum {
			a, b := runs[0].rec, rec
			n := a.Len()
			if b.Len() < n {
				n = b.Len()
			}
			div := -1
			for j := 0; j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				if at != bt || ao != bo {
					div = j
					break
				}
			}
			t.Logf("first divergence at step %d (lens %d vs %d)", div, a.Len(), b.Len())
			lo := div - 25
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < div+25 && j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				mark := "  "
				if at != bt || ao != bo {
					mark = "<<"
				}
				t.Logf("step %5d: A=(t%d %c)  B=(t%d %c) %s", j, at, ao, bt, bo, mark)
			}
			return
		}
	}
	t.Log("no divergence observed in 12 runs")
}
