package crane

// Schedule-divergence diagnostics, env-gated (CRANE_SCHED_REC=1). When the
// golden determinism test flakes, this harness re-runs the workload with
// full schedule recording enabled (see Replica.start) and prints the steps
// around the first divergent (thread, op) pair — which is how the
// bubble-vs-connect commit race documented on detClusterConfig was found.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mongoose"
	"crane/internal/dmt"
)

func runDetOnceRec(t *testing.T) (sum uint64, rec *dmt.Schedule) {
	cluster, err := StartCluster(detClusterConfig(), httpd.Program(detHTTPDConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	waitScheduleStable(t, cluster)
	for i := 0; i < 6; i++ {
		req := []byte(fmt.Sprintf("GET /page%d.php HTTP/1.0\r\n\r\n", i%2))
		if _, err := cluster.DialAndRequest(fmt.Sprintf("det:%d", i), 8080, req, 1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		waitScheduleStable(t, cluster)
	}
	r := cluster.Replica(0)
	return r.proc().Sched.Stats().ScheduleSum, r.schedRec
}

func TestSchedDivergenceDebug(t *testing.T) {
	if os.Getenv("CRANE_SCHED_REC") == "" {
		t.Skip("set CRANE_SCHED_REC=1 to run")
	}
	type run struct {
		sum uint64
		rec *dmt.Schedule
	}
	var runs []run
	for i := 0; i < 12; i++ {
		sum, rec := runDetOnceRec(t)
		t.Logf("run %d: sum=%#x len=%d", i, sum, rec.Len())
		runs = append(runs, run{sum, rec})
		if runs[0].sum != sum {
			a, b := runs[0].rec, rec
			n := a.Len()
			if b.Len() < n {
				n = b.Len()
			}
			div := -1
			for j := 0; j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				if at != bt || ao != bo {
					div = j
					break
				}
			}
			t.Logf("first divergence at step %d (lens %d vs %d)", div, a.Len(), b.Len())
			lo := div - 25
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < div+25 && j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				mark := "  "
				if at != bt || ao != bo {
					mark = "<<"
				}
				t.Logf("step %5d: A=(t%d %c)  B=(t%d %c) %s", j, at, ao, bt, bo, mark)
			}
			return
		}
	}
	t.Log("no divergence observed in 12 runs")
}

// diffLaneRecs prints the steps around the first cross-replica divergence
// in each lane's recorded schedule.
func diffLaneRecs(t *testing.T, c *Cluster, lanes int) {
	t.Helper()
	for lane := 0; lane < lanes; lane++ {
		a := c.Replica(0).laneRecs[lane]
		for ri := 1; ri < c.Replicas(); ri++ {
			b := c.Replica(ri).laneRecs[lane]
			n := a.Len()
			if b.Len() < n {
				n = b.Len()
			}
			div := -1
			for j := 0; j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				if at != bt || ao != bo {
					div = j
					break
				}
			}
			cdiv := -1
			// Print every change in the raw clock delta: each onset is a
			// physically-timed idle tick slipping in (or a resync point).
			var lastD int64
			for j := 0; j < n && (div < 0 || j < div); j++ {
				d := int64(a.StepClock(j)) - int64(b.StepClock(j))
				if j == 0 || d != lastD {
					if j > 0 || d != 0 {
						jt, jo := a.Step(j)
						t.Logf("lane %d replica 0 vs %d: raw clock delta %+d at step %d (t%d %c): clkA=%d clkB=%d",
							lane, ri, d, j, jt, jo, a.StepClock(j), b.StepClock(j))
						if cdiv < 0 {
							cdiv = j
						}
					}
					lastD = d
				}
			}
			if div < 0 && a.Len() == b.Len() {
				if cdiv < 0 {
					t.Logf("lane %d replica %d: identical (%d steps)", lane, ri, n)
				}
				continue
			}
			if div < 0 {
				div = n
			}
			t.Logf("lane %d replica 0 vs %d: first divergence at step %d (lens %d vs %d)",
				lane, ri, div, a.Len(), b.Len())
			lo := div - 20
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < div+20 && j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				mark := "  "
				if at != bt || ao != bo {
					mark = "<<"
				}
				t.Logf("step %5d: A=(t%d %c)  B=(t%d %c) %s", j, at, ao, bt, bo, mark)
			}
		}
	}
}

// TestHTTPDLaneSchedDivergenceDebug reruns the 4-lane httpd workload with
// per-lane recording. CRANE_LANE_PUTS=0 drops the cross-lane PUT section,
// isolating whether the cross-lane merge (pageMu stamps) is the trigger.
func TestHTTPDLaneSchedDivergenceDebug(t *testing.T) {
	if os.Getenv("CRANE_SCHED_REC") == "" {
		t.Skip("set CRANE_SCHED_REC=1 to run")
	}
	cfg := httpd.DefaultConfig()
	cfg.Workers = 8
	cfg.PHPChunks = 3
	cfg.PHPChunkWork = 30
	cfg.CacheEnabled = false
	cfg.WithDate = false
	ccfg := integrationConfig(ModeCrane)
	ccfg.Lanes = 4
	c, err := StartCluster(ccfg, httpd.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	outs := 12
	var wg sync.WaitGroup
	cerrs := make([]error, 16)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := clients.Curl(c.Dial, fmt.Sprintf("lane%d:1", i), 8080,
				"GET", fmt.Sprintf("/page%d.php", i%8), nil)
			if err == nil && status != 200 {
				err = fmt.Errorf("status %d", status)
			}
			cerrs[i] = err
		}(i)
	}
	wg.Wait()
	if os.Getenv("CRANE_LANE_PUTS") != "0" {
		outs = 16
		var pw sync.WaitGroup
		for i := 0; i < 4; i++ {
			pw.Add(1)
			go func(i int) {
				defer pw.Done()
				status, _, err := clients.Curl(c.Dial, fmt.Sprintf("put%d:1", i), 8080,
					"PUT", fmt.Sprintf("/new%d.html", i), []byte("lane-parallel\n"))
				if err == nil && status != 201 {
					err = fmt.Errorf("status %d", status)
				}
				cerrs[12+i] = err
			}(i)
		}
		pw.Wait()
	}
	for i, err := range cerrs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	waitLanesSettled(t, c, outs)
	for lane := 0; lane < 4; lane++ {
		for ri := 1; ri < c.Replicas(); ri++ {
			got := c.Replica(ri).proc().Sched.LaneStats(lane).ScheduleSum
			want := c.Replica(0).proc().Sched.LaneStats(lane).ScheduleSum
			if got != want {
				t.Errorf("replica %d lane %d ScheduleSum %#x != replica 0 %#x", ri, lane, got, want)
			}
		}
	}
	diffLaneRecs(t, c, 4)
	if t.Failed() {
		for ri := 0; ri < c.Replicas(); ri++ {
			for i, e := range c.Replica(ri).proc().Sched.CrossDebugLog() {
				t.Logf("replica %d cross[%d]: lane=%d thread=%d stamp=%d app=%d",
					ri, i, e.Lane, e.Thread, e.Stamp, e.App)
			}
		}
	}
}

// TestLaneSchedDivergenceDebug is the multi-lane variant: it runs the
// 2-lane mongoose workload with per-lane recording and prints the steps
// around the first cross-replica divergence in each lane's schedule.
func TestLaneSchedDivergenceDebug(t *testing.T) {
	if os.Getenv("CRANE_SCHED_REC") == "" {
		t.Skip("set CRANE_SCHED_REC=1 to run")
	}
	mcfg := mongoose.DefaultConfig()
	mcfg.ScriptChunks = 3
	mcfg.ScriptChunkWork = 30
	mcfg.WithDate = false
	ccfg := integrationConfig(ModeCrane)
	ccfg.Lanes = 2
	c, err := StartCluster(ccfg, mongoose.Program(mcfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	var wg sync.WaitGroup
	cerrs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := clients.Curl(c.Dial, fmt.Sprintf("mg%d:1", i), 8081,
				"GET", fmt.Sprintf("/app%d.php", i%6), nil)
			if err == nil && status != 200 {
				err = fmt.Errorf("status %d", status)
			}
			cerrs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range cerrs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	waitLanesSettled(t, c, 8)
	for lane := 0; lane < 2; lane++ {
		a := c.Replica(0).laneRecs[lane]
		for ri := 1; ri < c.Replicas(); ri++ {
			b := c.Replica(ri).laneRecs[lane]
			n := a.Len()
			if b.Len() < n {
				n = b.Len()
			}
			div := -1
			for j := 0; j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				if at != bt || ao != bo {
					div = j
					break
				}
			}
			if div < 0 && a.Len() == b.Len() {
				t.Logf("lane %d replica %d: identical (%d steps)", lane, ri, n)
				continue
			}
			if div < 0 {
				div = n
			}
			t.Logf("lane %d replica 0 vs %d: first divergence at step %d (lens %d vs %d)",
				lane, ri, div, a.Len(), b.Len())
			lo := div - 20
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < div+20 && j < n; j++ {
				at, ao := a.Step(j)
				bt, bo := b.Step(j)
				mark := "  "
				if at != bt || ao != bo {
					mark = "<<"
				}
				t.Logf("step %5d: A=(t%d %c)  B=(t%d %c) %s", j, at, ao, bt, bo, mark)
			}
		}
	}
}
