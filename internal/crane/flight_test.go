package crane

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crane/internal/obs/flight"
	"crane/internal/seq"
	"crane/internal/trace"
)

// flightTestConfig tightens the audit cadence so short test workloads
// cross several audit marks.
func flightTestConfig() Config {
	cfg := testConfig(ModeCrane)
	cfg.AuditEvery = 8
	return cfg
}

// dumpJournal snapshots one replica's flight journal through the same
// JSONL path /journal serves, then parses it back.
func dumpJournal(t *testing.T, r *Replica) *flight.Dump {
	t.Helper()
	rec := r.FlightRecorder()
	if rec == nil {
		t.Fatalf("replica %d has no flight recorder", r.ID())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("dump journal: %v", err)
	}
	d, err := flight.ParseJournal(&buf)
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	return d
}

// currentPrimary polls until the cluster elects exactly one primary.
func currentPrimary(t *testing.T, c *Cluster) *Replica {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if p, err := c.Primary(); err == nil {
			return p
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no primary elected")
	return nil
}

// dumpJournalsForCI archives every replica's flight journal under
// $CRANE_JOURNAL_DIR/<label>/ when that variable is set (the CI
// consistency job sets it), so a failed run leaves the forensic evidence
// behind and crane-inspect can localize the divergence offline. The dump
// runs in a cleanup hook — after the test body, pass or fail.
func dumpJournalsForCI(t *testing.T, c *Cluster, label string) {
	t.Helper()
	dir := os.Getenv("CRANE_JOURNAL_DIR")
	if dir == "" {
		return
	}
	t.Cleanup(func() {
		sub := filepath.Join(dir, label)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Logf("journal dump dir: %v", err)
			return
		}
		for i := 0; i < c.Replicas(); i++ {
			rec := c.Replica(i).FlightRecorder()
			if rec == nil {
				continue
			}
			var buf bytes.Buffer
			if err := rec.WriteJSONL(&buf); err != nil {
				t.Logf("journal dump replica %d: %v", i, err)
				continue
			}
			path := filepath.Join(sub, fmt.Sprintf("replica%d.jsonl", i))
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Logf("journal dump replica %d: %v", i, err)
			}
		}
	})
}

// assertNoDivergenceAlarms fails the test if the live journal audit
// raised an alarm on any replica. Consistency tests call this so a
// determinism regression surfaces as a localized audit alarm, not just
// an output diff.
func assertNoDivergenceAlarms(t *testing.T, c *Cluster) {
	t.Helper()
	for i := 0; i < c.Replicas(); i++ {
		if alarms := c.Replica(i).DivergenceAlarms(); len(alarms) > 0 {
			t.Fatalf("replica %d raised divergence alarms: %v", i, alarms)
		}
	}
}

// TestFlightCleanRunAuditsAndAgrees: on a healthy run the journals of
// every replica agree on their whole comparable prefix, the leader
// verifies piggybacked audit samples, and no alarm fires.
func TestFlightCleanRunAuditsAndAgrees(t *testing.T) {
	c, err := StartCluster(flightTestConfig(), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	dumpJournalsForCI(t, c, "flight-clean-run")
	for i := 0; i < 8; i++ {
		kvRequest(t, c, fmt.Sprintf("fc%d:1", i), fmt.Sprintf("SET key%d val%d", i%3, i))
	}
	if err := c.WaitOutputs(8, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if divs := trace.DiffAll(c.OutputLogs()); len(divs) != 0 {
		t.Fatalf("output divergence on clean run: %v", divs)
	}
	p := currentPrimary(t, c)
	for i := 0; i < c.Replicas(); i++ {
		r := c.Replica(i)
		if r.ID() == p.ID() {
			continue
		}
		a, b := dumpJournal(t, p), dumpJournal(t, r)
		if d := flight.FirstDivergence(a, b); d != nil {
			t.Fatalf("clean run journals diverge (replica %d vs %d): %+v", p.ID(), r.ID(), d)
		}
	}
	// The leader must actually have verified piggybacked samples — an
	// audit that never checks anything would also never alarm.
	deadline := time.Now().Add(10 * time.Second)
	for p.AuditChecked() == 0 && time.Now().Before(deadline) {
		kvRequest(t, c, "fcx:1", "GET key0")
		time.Sleep(10 * time.Millisecond)
	}
	if n := p.AuditChecked(); n == 0 {
		t.Fatal("leader verified no audit samples")
	}
	assertNoDivergenceAlarms(t, c)
}

// TestFlightSeededDivergence seeds a real divergence — one backup's
// delivery order is mangled so a committed SEND is reordered past the
// next bubble or cross-connection SEND, exactly the class of bug the
// recorder exists to catch — and asserts both detection paths work:
// the leader's live audit raises an alarm while the run is still going,
// and offline journal comparison localizes the exact first divergent
// entry.
func TestFlightSeededDivergence(t *testing.T) {
	cfg := flightTestConfig()
	cfg.Speculation = false
	c, err := StartCluster(cfg, newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	p := currentPrimary(t, c)
	var backup *Replica
	for i := 0; i < c.Replicas(); i++ {
		if r := c.Replica(i); r.ID() != p.ID() {
			backup = r
			break
		}
	}

	// The mangle hook holds one committed SEND back and releases it after
	// the next entry that can safely jump ahead of it: a bubble, or a
	// SEND on a different connection. Anything else releases the held
	// entry in original order (no divergence) and the hook re-arms, so
	// delivery can never wedge behind the hook.
	var held *seq.Entry // touched only by the delivery goroutine
	var swapped atomic.Bool
	backup.SetMangleDeliver(func(e *seq.Entry) []*seq.Entry {
		if swapped.Load() {
			return []*seq.Entry{e}
		}
		if held != nil {
			h := held
			held = nil
			if e.Kind == seq.KindBubble || (e.Kind == seq.KindSend && e.Conn != h.Conn) {
				swapped.Store(true)
				return []*seq.Entry{e, h}
			}
			return []*seq.Entry{h, e}
		}
		if e.Kind == seq.KindSend {
			held = e
			return nil
		}
		return []*seq.Entry{e}
	})

	for i := 0; i < 100 && !swapped.Load(); i++ {
		kvRequest(t, c, fmt.Sprintf("sd%d:1", i), fmt.Sprintf("SET s%d v%d", i, i))
		time.Sleep(2 * time.Millisecond)
	}
	if !swapped.Load() {
		t.Fatal("mangle hook never found a reorderable pair")
	}
	backup.SetMangleDeliver(nil)

	// Post-divergence traffic so marks recorded after the split ship to
	// the leader; the live audit must notice without any teardown help.
	var alarms []DivergenceAlarm
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; len(alarms) == 0 && time.Now().Before(deadline); i++ {
		kvRequest(t, c, fmt.Sprintf("sdp%d:1", i), fmt.Sprintf("SET p%d v%d", i, i))
		alarms = p.DivergenceAlarms()
		time.Sleep(5 * time.Millisecond)
	}
	if len(alarms) == 0 {
		t.Fatal("live audit raised no alarm after seeded divergence")
	}
	found := false
	for _, a := range alarms {
		if a.Replica == backup.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("alarms do not implicate the mangled replica %d: %v", backup.ID(), alarms)
	}
	if err := c.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Offline forensics: the journal dumps localize the exact first
	// divergent entry, the same flow crane-inspect runs on two /journal
	// dumps.
	a, b := dumpJournal(t, p), dumpJournal(t, backup)
	d := flight.FirstDivergence(a, b)
	if d == nil {
		t.Fatal("journal comparison found no divergence")
	}
	if !d.Exact {
		t.Fatalf("divergence not localized to an exact entry: %+v", d)
	}
	if d.A == nil || d.B == nil || d.A.Chain == d.B.Chain {
		t.Fatalf("divergent entries not captured: %+v", d)
	}
	var rep bytes.Buffer
	flight.Report(&rep, a, b, d, 5)
	out := rep.String()
	if !strings.Contains(out, ">>") {
		t.Fatalf("report does not point at the divergent entry:\n%s", out)
	}
}

// TestFlightAuditSurvivesLeaderKill: killing the leader mid-audit must
// not wedge or false-alarm the audit — the new leader picks up
// verification of piggybacked samples across the view change.
func TestFlightAuditSurvivesLeaderKill(t *testing.T) {
	c, err := StartCluster(flightTestConfig(), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 4; i++ {
		kvRequest(t, c, fmt.Sprintf("lk%d:1", i), fmt.Sprintf("SET a%d v%d", i, i))
	}
	oldID, err := c.FailPrimary()
	if err != nil {
		t.Fatal(err)
	}
	// A new primary emerges and keeps serving.
	deadline := time.Now().Add(10 * time.Second)
	served := false
	for time.Now().Before(deadline) {
		resp, err := c.DialAndRequest("lkx:1", 7000, []byte("GET a0\n"), 3)
		if err == nil && strings.HasPrefix(string(resp), "VALUE") {
			served = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !served {
		t.Fatal("cluster did not serve after leader kill")
	}
	np := currentPrimary(t, c)
	if np.ID() == oldID {
		t.Fatalf("old leader %d still primary", oldID)
	}
	// Drive traffic until the NEW leader has verified samples.
	deadline = time.Now().Add(15 * time.Second)
	for i := 0; np.AuditChecked() == 0 && time.Now().Before(deadline); i++ {
		kvRequest(t, c, fmt.Sprintf("lkp%d:1", i), fmt.Sprintf("SET b%d v%d", i, i))
		time.Sleep(5 * time.Millisecond)
	}
	if np.AuditChecked() == 0 {
		t.Fatal("new leader verified no audit samples after view change")
	}
	assertNoDivergenceAlarms(t, c)
}

// TestFlightCorruptedJournalAlarmsNotCrashes: a corrupted journal
// segment on one backup (a bogus event injected into its lane chain)
// must surface as a divergence alarm at the leader while the cluster
// keeps serving — an alarm, not a crash.
func TestFlightCorruptedJournalAlarmsNotCrashes(t *testing.T) {
	c, err := StartCluster(flightTestConfig(), newTestKV(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 4; i++ {
		kvRequest(t, c, fmt.Sprintf("cj%d:1", i), fmt.Sprintf("SET c%d v%d", i, i))
	}
	p := currentPrimary(t, c)
	var backup *Replica
	for i := 0; i < c.Replicas(); i++ {
		if r := c.Replica(i); r.ID() != p.ID() {
			backup = r
			break
		}
	}
	// Corrupt the backup's lane-0 chain: one event the other replicas
	// never recorded. Emit serializes under the journal lock, so the
	// injection is race-safe against the live delivery goroutines.
	backup.FlightRecorder().Lane(0).Emit(flight.EvTick, 0, flight.PosUnchanged, 0xdead, 0xbeef)

	var alarms []DivergenceAlarm
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; len(alarms) == 0 && time.Now().Before(deadline); i++ {
		got := kvRequest(t, c, fmt.Sprintf("cjp%d:1", i), fmt.Sprintf("SET d%d v%d", i, i))
		if got != "OK" {
			t.Fatalf("cluster stopped serving after journal corruption: %q", got)
		}
		alarms = p.DivergenceAlarms()
		time.Sleep(5 * time.Millisecond)
	}
	if len(alarms) == 0 {
		t.Fatal("corrupted journal raised no alarm")
	}
	for _, a := range alarms {
		if a.Replica != backup.ID() {
			t.Fatalf("alarm implicates wrong replica: %v", a)
		}
	}
	// Still serving after the alarm.
	if got := kvRequest(t, c, "cjz:1", "GET c0"); !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("cluster unhealthy after alarm: %q", got)
	}
}
