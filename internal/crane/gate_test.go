package crane

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"crane/internal/papi"
	"crane/internal/seq"
	"crane/internal/simnet"
)

// gateHarness builds a replica shell (sequence + DMT process + gate)
// without consensus: entries are injected directly, as if delivered.
type gateHarness struct {
	r    *Replica
	proc *papi.ParrotProc
}

func newGateHarness(t *testing.T, bubbling bool) *gateHarness {
	t.Helper()
	cfg := testConfig(ModeCrane)
	r := newReplica(0, &cfg, papi.Program{Name: "h", Ports: []int{1}}, simnet.New(simnet.Options{}))
	proc := papi.NewParrotProc(r.net, r.host, r.fs)
	proc.SetSocketLayer(&dmtSockets{r: r})
	proc.Sched.SetGate(newGate(r, bubbling))
	r.pprocA.Store(proc)
	t.Cleanup(func() {
		r.killedFlag.Store(true)
		proc.Kill()
		proc.Wait()
	})
	return &gateHarness{r: r, proc: proc}
}

func (h *gateHarness) inject(e *seq.Entry) { h.r.sq.Enqueue(e) }

// feedBubbles plays the consensus component's role for harness tests:
// whenever the sequence runs dry, grant another bubble so trailing
// operations (close, thread exit) are not starved of logical clocks.
func (h *gateHarness) feedBubbles(t *testing.T) {
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		idx := uint64(1000)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				if h.r.sq.Empty() {
					idx++
					h.inject(&seq.Entry{Index: idx, Kind: seq.KindBubble, NClock: 50})
				}
			}
		}
	}()
}

// TestGateBubbleGrantsClocks: with bubbling on, synchronization only
// proceeds while the sequence holds entries; a bubble grants exactly
// NClock operations.
func TestGateBubbleGrantsClocks(t *testing.T) {
	h := newGateHarness(t, true)
	var ops atomic.Int64
	h.proc.Start(papi.FuncInstance{Main: func(tt papi.T) {
		m := tt.NewMutex()
		for i := 0; i < 1000; i++ {
			m.Lock(tt)
			m.Unlock(tt)
			ops.Add(2)
		}
	}})
	// Without any entry, the gate blocks every op.
	time.Sleep(20 * time.Millisecond)
	if got := ops.Load(); got != 0 {
		t.Fatalf("%d ops proceeded with empty sequence", got)
	}
	// A bubble unblocks exactly its clock budget (shared with the idle
	// thread, so app progress is at most NClock and at least 1).
	h.inject(&seq.Entry{Index: 1, Kind: seq.KindBubble, NClock: 40})
	deadline := time.Now().Add(5 * time.Second)
	for h.r.sq.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.r.sq.Len() != 0 {
		t.Fatal("bubble never exhausted")
	}
	got := ops.Load()
	if got == 0 || got > 40 {
		t.Fatalf("ops after 40-clock bubble = %d", got)
	}
	// More bubbles -> more progress.
	for i := 2; i < 60; i++ {
		h.inject(&seq.Entry{Index: uint64(i), Kind: seq.KindBubble, NClock: 100})
	}
	deadline = time.Now().Add(10 * time.Second)
	for ops.Load() < 2000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ops.Load() < 2000 {
		t.Fatalf("ops = %d after ample bubbles", ops.Load())
	}
}

// TestGateNoBubbleRunsFreely: plan II's gate never blocks on an empty
// sequence.
func TestGateNoBubbleRunsFreely(t *testing.T) {
	h := newGateHarness(t, false)
	done := make(chan struct{})
	h.proc.Start(papi.FuncInstance{Main: func(tt papi.T) {
		m := tt.NewMutex()
		for i := 0; i < 500; i++ {
			m.Lock(tt)
			m.Unlock(tt)
		}
		close(done)
	}})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("no-bubble gate blocked execution")
	}
}

// TestGateAdmitsSocketCalls drives accept+recv purely through injected
// entries (bubbles carry the boot; CONNECT/SEND/CLOSE are consumed at
// deterministic points).
func TestGateAdmitsSocketCalls(t *testing.T) {
	h := newGateHarness(t, true)
	h.feedBubbles(t)
	got := make(chan string, 1)
	h.proc.Start(papi.FuncInstance{Main: func(tt papi.T) {
		l, err := tt.Listen(1)
		if err != nil {
			return
		}
		c, err := l.Accept(tt)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		var acc []byte
		for {
			n, err := c.Recv(tt, buf)
			acc = append(acc, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
		}
		c.Close(tt)
		got <- string(acc)
	}})
	h.inject(&seq.Entry{Index: 1, Kind: seq.KindBubble, NClock: 50})
	h.inject(&seq.Entry{Index: 2, Kind: seq.KindConnect, Conn: 9, Port: 1})
	h.inject(&seq.Entry{Index: 3, Kind: seq.KindSend, Conn: 9, Data: []byte("hel")})
	h.inject(&seq.Entry{Index: 4, Kind: seq.KindSend, Conn: 9, Data: []byte("lo")})
	h.inject(&seq.Entry{Index: 5, Kind: seq.KindClose, Conn: 9})
	select {
	case s := <-got:
		if s != "hello" {
			t.Fatalf("received %q", s)
		}
	case <-time.After(10 * time.Second):
		hd, ok := h.r.sq.Head()
		t.Fatalf("socket admission hung: head=%v %+v stats=%+v open=%d clock=%d",
			ok, hd, h.r.SeqStats(), h.r.OpenConns(), h.proc.Sched.Stats().Clock)
	}
	if h.r.OpenConns() != 0 {
		t.Fatalf("openConns = %d after EOF+close", h.r.OpenConns())
	}
}

// TestGateDiscardsClosedConnEntries: entries for a server-closed
// connection must not wedge the sequence head.
func TestGateDiscardsClosedConnEntries(t *testing.T) {
	h := newGateHarness(t, true)
	h.feedBubbles(t)
	done := make(chan struct{})
	h.proc.Start(papi.FuncInstance{Main: func(tt papi.T) {
		l, err := tt.Listen(1)
		if err != nil {
			return
		}
		c, err := l.Accept(tt)
		if err != nil {
			return
		}
		// Close immediately without reading the client's data.
		c.Close(tt)
		// A second connection must still be admittable even though the
		// first connection's SEND+CLOSE sit ahead of it in the sequence.
		c2, err := l.Accept(tt)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		c2.Recv(tt, buf)
		c2.Close(tt)
		close(done)
	}})
	h.inject(&seq.Entry{Index: 1, Kind: seq.KindBubble, NClock: 50})
	h.inject(&seq.Entry{Index: 2, Kind: seq.KindConnect, Conn: 5, Port: 1})
	h.inject(&seq.Entry{Index: 3, Kind: seq.KindSend, Conn: 5, Data: []byte("never read")})
	h.inject(&seq.Entry{Index: 4, Kind: seq.KindClose, Conn: 5})
	h.inject(&seq.Entry{Index: 5, Kind: seq.KindConnect, Conn: 6, Port: 1})
	h.inject(&seq.Entry{Index: 6, Kind: seq.KindSend, Conn: 6, Data: []byte("x")})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("closed-conn entries wedged the sequence")
	}
}

// TestGateBusy reflects pending entries.
func TestGateBusy(t *testing.T) {
	h := newGateHarness(t, true)
	g := newGate(h.r, true)
	if g.Busy() {
		t.Fatal("Busy on empty sequence")
	}
	h.inject(&seq.Entry{Index: 1, Kind: seq.KindBubble, NClock: 1})
	if !g.Busy() {
		t.Fatal("not Busy with pending entry")
	}
}
