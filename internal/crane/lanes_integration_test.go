package crane

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mongoose"
	"crane/internal/trace"
)

// perConnOutputs rebuilds each connection's output stream from a replica's
// output log. With multiple lanes the *interleaving* of outputs across
// connections on different lanes is physically timed (each lane emits at
// its own pace), but the stream on any one connection is produced by one
// lane's deterministic schedule — so per-connection streams, not the whole
// log order, are the cross-replica invariant.
func perConnOutputs(l *trace.OutputLog) map[uint64]string {
	m := make(map[uint64]string)
	for _, e := range l.Events() {
		m[e.Conn] += string(e.Data)
	}
	return m
}

// waitLanesSettled blocks until every replica has recorded k outputs,
// closed all client connections, and kept a stable merged ScheduleSum for
// a sustained window — i.e. the backups have finished *executing* the
// committed inputs, not merely dequeued them (quiescence alone returns
// while trailing worker operations are still folding into the hash).
func waitLanesSettled(t *testing.T, c *Cluster, k int) {
	t.Helper()
	if err := c.WaitOutputs(k, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	last := make([]uint64, c.Replicas())
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		ok := true
		for i := 0; i < c.Replicas(); i++ {
			r := c.Replica(i)
			sum := r.proc().Sched.Stats().ScheduleSum
			if r.openConns.Load() != 0 || sum != last[i] {
				ok = false
			}
			last[i] = sum
		}
		if !ok {
			stable = 0
			continue
		}
		if stable++; stable >= 15 {
			return
		}
	}
	t.Fatal("lane schedules never settled")
}

// TestCraneHTTPDLanes runs a 4-lane httpd deployment under full CRANE with
// concurrent clients and asserts the lane-level determinism contract
// across replicas: every lane's ScheduleSum, the merged ScheduleSum, and
// every connection's output stream must be identical on all three
// replicas. PUTs exercise the cross-lane page mutex under the admission
// gate (bubble-paced cross-lane stamps); GETs run lane-parallel.
func TestCraneHTTPDLanes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload in -short mode")
	}
	cfg := httpd.DefaultConfig()
	cfg.Workers = 8
	cfg.PHPChunks = 3
	cfg.PHPChunkWork = 30
	cfg.CacheEnabled = false
	cfg.WithDate = false
	ccfg := integrationConfig(ModeCrane)
	ccfg.Lanes = 4
	c, err := StartCluster(ccfg, httpd.Program(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < c.Replicas(); i++ {
		if got := c.Replica(i).lanes; got != 4 {
			t.Fatalf("replica %d running %d lanes, want 4", i, got)
		}
	}

	// 12 concurrent single-request connections: conn ids are consensus
	// state, so every replica routes the same connection to the same lane
	// (conn id mod 4), and all four lanes see traffic.
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := clients.Curl(c.Dial, fmt.Sprintf("lane%d:1", i), 8080,
				"GET", fmt.Sprintf("/page%d.php", i%8), nil)
			if err != nil {
				errs[i] = err
			} else if status != 200 {
				errs[i] = fmt.Errorf("GET status %d", status)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Concurrent PUTs to distinct files: document-root writes take the
	// cross-lane pageMu, so lanes contend — and must still agree.
	var pw sync.WaitGroup
	perrs := make([]error, 4)
	for i := 0; i < 4; i++ {
		pw.Add(1)
		go func(i int) {
			defer pw.Done()
			status, _, err := clients.Curl(c.Dial, fmt.Sprintf("put%d:1", i), 8080,
				"PUT", fmt.Sprintf("/new%d.html", i), []byte("lane-parallel\n"))
			if err != nil {
				perrs[i] = err
			} else if status != 201 {
				perrs[i] = fmt.Errorf("PUT status %d", status)
			}
		}(i)
	}
	pw.Wait()
	for i, err := range perrs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	waitLanesSettled(t, c, 16) // 12 GET + 4 PUT responses

	// Per-lane and merged schedule fingerprints agree across replicas.
	ref := c.Replica(0).proc().Sched
	busy := 0
	for lane := 0; lane < 4; lane++ {
		if ref.LaneStats(lane).Spawned > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("only %d/4 lanes spawned threads", busy)
	}
	for i := 1; i < c.Replicas(); i++ {
		sched := c.Replica(i).proc().Sched
		for lane := 0; lane < 4; lane++ {
			got, want := sched.LaneStats(lane).ScheduleSum, ref.LaneStats(lane).ScheduleSum
			if got != want {
				t.Fatalf("replica %d lane %d ScheduleSum %#x != replica 0 %#x", i, lane, got, want)
			}
		}
		if got, want := sched.Stats().ScheduleSum, ref.Stats().ScheduleSum; got != want {
			t.Fatalf("replica %d merged ScheduleSum %#x != replica 0 %#x", i, got, want)
		}
	}

	// Per-connection output streams agree across replicas.
	want := perConnOutputs(c.Replica(0).Outputs())
	if len(want) == 0 {
		t.Fatal("replica 0 recorded no outputs")
	}
	for i := 1; i < c.Replicas(); i++ {
		got := perConnOutputs(c.Replica(i).Outputs())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d per-connection outputs diverge from replica 0", i)
		}
	}
}

// TestCraneMongooseLanes is the same contract on mongoose's per-worker
// mailbox structure, at 2 lanes (the minimum that exercises the cross-lane
// merge) with concurrent clients.
func TestCraneMongooseLanes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload in -short mode")
	}
	mcfg := mongoose.DefaultConfig()
	mcfg.ScriptChunks = 3
	mcfg.ScriptChunkWork = 30
	mcfg.WithDate = false
	ccfg := integrationConfig(ModeCrane)
	ccfg.Lanes = 2
	c, err := StartCluster(ccfg, mongoose.Program(mcfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := clients.Curl(c.Dial, fmt.Sprintf("mg%d:1", i), 8081,
				"GET", fmt.Sprintf("/app%d.php", i%6), nil)
			if err != nil {
				errs[i] = err
			} else if status != 200 {
				errs[i] = fmt.Errorf("GET status %d", status)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	waitLanesSettled(t, c, 8)
	for i := 1; i < c.Replicas(); i++ {
		for lane := 0; lane < 2; lane++ {
			got := c.Replica(i).proc().Sched.LaneStats(lane).ScheduleSum
			want := c.Replica(0).proc().Sched.LaneStats(lane).ScheduleSum
			if got != want {
				t.Fatalf("replica %d lane %d ScheduleSum %#x != replica 0 %#x", i, lane, got, want)
			}
		}
		got, want := perConnOutputs(c.Replica(i).Outputs()), perConnOutputs(c.Replica(0).Outputs())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d per-connection outputs diverge from replica 0", i)
		}
	}
}
