package crane

import (
	"fmt"
	"sync"

	"crane/internal/seq"
	"crane/internal/simnet"
)

// proxy is a CRANE instance's gateway (§2.1): it accepts client socket
// requests, invokes Paxos consensus on each incoming call (connect, data,
// close), and forwards the server program's responses back to clients. A
// backup's proxy refuses client connections and never invokes consensus;
// after failover the new primary's proxy starts accepting.
type proxy struct {
	r *Replica

	// subChs holds one submission queue per Paxos group, each drained by
	// its own submitLoop proposing to that group's consensus node —
	// sharded deployments run their Accept rounds in parallel.
	// subChs[0] is the whole pipeline when unsharded.
	subChs []chan submitReq //crane:pergroup
	stopCh chan struct{}

	mu        sync.Mutex
	listeners []*simnet.Listener
	conns     map[uint64]*simnet.Conn
	nextConn  uint64
	closed    bool
	wg        sync.WaitGroup
}

// submitReq is one entry awaiting consensus submission; done reports
// whether the burst containing it was accepted for ordering.
type submitReq struct {
	e    *seq.Entry
	done chan bool
}

// maxProxyBurst caps how many queued socket calls one ProposeBatch carries
// (the paxos batcher enforces its own MaxBatch/MaxBatchBytes downstream).
const maxProxyBurst = 64

func newProxy(r *Replica) *proxy {
	p := &proxy{
		r:      r,
		subChs: make([]chan submitReq, r.groups),
		stopCh: make(chan struct{}),
		conns:  make(map[uint64]*simnet.Conn),
	}
	for g := range p.subChs {
		p.subChs[g] = make(chan submitReq, 4*maxProxyBurst)
	}
	return p
}

// start binds the program's ports on this replica's host and begins
// accepting.
func (p *proxy) start() error {
	p.r.ro.reg.GaugeFunc("proxy_queue_depth",
		"socket calls queued for consensus submission", func() float64 {
			n := 0
			for _, ch := range p.subChs {
				n += len(ch)
			}
			return float64(n)
		})
	for g := range p.subChs {
		p.wg.Add(1)
		go p.submitLoop(g)
	}
	for _, port := range p.r.prog.Ports {
		l, err := p.r.net.Listen(simnet.Addr(fmt.Sprintf("%s:%d", p.r.host, port)))
		if err != nil {
			return fmt.Errorf("crane: proxy listen: %w", err)
		}
		p.mu.Lock()
		p.listeners = append(p.listeners, l)
		p.mu.Unlock()
		p.wg.Add(1)
		go p.acceptLoop(l, port)
	}
	return nil
}

func (p *proxy) acceptLoop(l *simnet.Listener, port int) {
	defer p.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		if !p.r.node.IsPrimary() {
			// Backups' proxies do not accept client connections (§2.1).
			c.Close()
			continue
		}
		// Connection ids must stay unique across primary changes, so the
		// replica id is folded into the high bits.
		p.mu.Lock()
		p.nextConn++
		id := uint64(p.r.id+1)<<48 | p.nextConn
		p.conns[id] = c
		p.mu.Unlock()
		if !p.propose(&seq.Entry{Kind: seq.KindConnect, Conn: id, Port: port}) {
			p.dropConn(id)
			continue
		}
		p.wg.Add(1)
		go p.readLoop(c, id)
	}
}

// readLoop turns the client's byte stream into SEND consensus requests and
// its EOF into a CLOSE request.
func (p *proxy) readLoop(c *simnet.Conn, id uint64) {
	defer p.wg.Done()
	buf := make([]byte, 16*1024)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			if !p.propose(&seq.Entry{Kind: seq.KindSend, Conn: id, Data: data}) {
				p.dropConn(id)
				return
			}
		}
		if err != nil {
			p.propose(&seq.Entry{Kind: seq.KindClose, Conn: id})
			return
		}
	}
}

// propose submits a client socket call for consensus through the burst
// submitter of the group its connection hashes to; it reports false when
// this replica is no longer primary (the client should reconnect to the new
// primary). Callers block until the burst containing their entry is
// accepted for ordering, so the per-producer flow stays synchronous while
// concurrent connections share one ProposeBatch.
func (p *proxy) propose(e *seq.Entry) bool {
	return p.proposeGroup(e, p.r.groupForConn(e.Conn))
}

// proposeGroup submits an entry into group g's burst submitter. Bubbles
// name their group explicitly (one per group per starvation round); client
// calls arrive via propose, which routes by connection id.
func (p *proxy) proposeGroup(e *seq.Entry, g int) bool {
	// Admission is where a request id is born: it rides the entry across
	// the wire so every replica's lifecycle trace keys the same stages by
	// the same id. Bubbles get an id (their commit is traceable) but no
	// admit record — nothing ever "consumes" a bubble via the client-call
	// hook, so an admit-time entry for one would leak.
	e.Req = p.r.ro.assignReq(p.r.id)
	if e.Kind != seq.KindBubble {
		p.r.ro.recordAdmit(e.Req, e.Conn)
	}
	req := submitReq{e: e, done: make(chan bool, 1)}
	select {
	case p.subChs[g] <- req:
	case <-p.stopCh:
		p.r.ro.rejectAdmit(e.Req)
		return false
	}
	select {
	case ok := <-req.done:
		if !ok {
			p.r.ro.rejectAdmit(e.Req)
		}
		return ok
	case <-p.stopCh:
		p.r.ro.rejectAdmit(e.Req)
		return false
	}
}

// submitLoop coalesces group g's queued socket calls into ProposeBatch
// bursts for that group's consensus node. A time bubble terminates the
// burst it rides in: no later socket call is packaged after it, keeping the
// per-burst logical-time consensus of §4 intact (the bubble's clocks elapse
// before any call queued behind it is even submitted). Sharded, each
// group's loop runs its Accept rounds independently — the pipelining win —
// and stamps every entry with the shared admission counter the cross-group
// merge sorts by.
func (p *proxy) submitLoop(g int) {
	defer p.wg.Done()
	subCh := p.subChs[g]
	reqs := make([]submitReq, 0, maxProxyBurst)
	for {
		reqs = reqs[:0]
		select { //crane:detflow-ok leader-side batching choice; composition is replicated through consensus before execution
		case r := <-subCh:
			reqs = append(reqs, r)
		case <-p.stopCh:
			return
		}
	drain:
		for len(reqs) < maxProxyBurst && reqs[len(reqs)-1].e.Kind != seq.KindBubble {
			select {
			case r := <-subCh:
				reqs = append(reqs, r)
			default:
				break drain
			}
		}
		ents := make([]*seq.Entry, len(reqs))
		for i, r := range reqs {
			ents[i] = r.e
		}
		if p.r.groups > 1 {
			// Stamp in burst order from the shared counter: globally
			// monotone at assignment, hence strictly monotone within the
			// group. The counter is floored at the merge's own max
			// watermark first: a replica that just took over leadership
			// has a fresh counter, and stamps regressing far below the
			// watermarks the cluster already emitted would leave the merge
			// crawling — every effective stamp collapses to W+1, so an
			// idle group's watermark closes the pre-failover gap one
			// bubble round at a time. Flooring restores eff == stamp at
			// once; any stamp value is replica-consistent because stamps
			// ride the committed payload. A bubble asserts its own stamp as every group's
			// watermark: anything any group admitted before this bubble
			// carries a smaller stamp, so once the bubble emits, the merge
			// may pass idle groups up to it. An admitted-but-uncommitted
			// straggler below the vector is effective-stamp-bumped past it —
			// identically on every replica, since the vector rides the
			// committed payload.
			if floor := p.r.gm.MaxWatermark(); floor > 0 {
				for {
					cur := p.r.stampCtr.Load()
					if cur >= floor || p.r.stampCtr.CompareAndSwap(cur, floor) {
						break
					}
				}
			}
			for _, e := range ents {
				e.Stamp = p.r.stampCtr.Add(1)
				if e.Kind == seq.KindBubble {
					vec := make([]uint64, p.r.groups)
					for h := range vec {
						vec[h] = e.Stamp
					}
					e.Vec = vec
				}
			}
		}
		// Speculation: hand the burst to the execution pipeline before the
		// Accept round even starts — the commit usually confirms what
		// already ran. (Sharded deployments force speculation off: the
		// merge emits in stamp order, not admission order.)
		fed := false
		if p.r.spec != nil {
			fed = p.r.spec.feed(ents)
		}
		payloads, err := seq.EncodeBatch(ents)
		ok := err == nil && p.r.nodes[g].ProposeBatch(payloads) == nil
		if p.r.spec != nil {
			if !ok {
				// A propose failure means lost primaryship; nothing
				// speculated or in flight can ever commit.
				p.r.spec.proposeFailed()
			} else if !fed {
				// Proposed but not fed: these entries enqueue at commit
				// time, so speculation must stay off until they land.
				p.r.spec.unfedProposed(len(ents))
			}
		}
		if ok {
			p.r.ro.burstSize.ObserveValue(uint64(len(ents)))
			for _, e := range ents {
				p.r.ro.recordProposed(e)
			}
		}
		for _, r := range reqs {
			r.done <- ok
		}
	}
}

// forward relays a server response to the client (primary only; on
// backups the connection table is empty so responses are dropped).
func (p *proxy) forward(id uint64, data []byte) {
	p.mu.Lock()
	c := p.conns[id]
	p.mu.Unlock()
	if c != nil {
		c.Write(data) //crane:specleak-ok forward is the gate's sink: callers reach it only from emitOutput or the speculator's flush, after the window confirmed
	}
}

// closeConn shuts the client connection after the server closed its side.
func (p *proxy) closeConn(id uint64) {
	p.mu.Lock()
	c := p.conns[id]
	delete(p.conns, id)
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *proxy) dropConn(id uint64) { p.closeConn(id) }

// close tears the proxy down.
func (p *proxy) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ls := p.listeners
	conns := p.conns
	p.conns = map[uint64]*simnet.Conn{}
	p.mu.Unlock()
	close(p.stopCh)
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}
