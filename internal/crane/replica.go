package crane

import (
	"fmt"
	"os"
	"path/filepath"

	"crane/internal/analysis"
	"sync"
	"sync/atomic"
	"time"

	"crane/internal/cfs"
	"crane/internal/checkpoint"
	"crane/internal/dmt"
	"crane/internal/obs"
	"crane/internal/obs/flight"
	"crane/internal/papi"
	"crane/internal/paxos"
	"crane/internal/seq"
	"crane/internal/simnet"
	"crane/internal/trace"
	"crane/internal/wal"
)

// Mode selects the execution configuration (the bars of Figure 14 plus the
// §7.2 plan II diagnostic mode).
type Mode int

// Execution modes.
const (
	// ModeNondet is the un-replicated nondeterministic baseline.
	ModeNondet Mode = iota
	// ModeParrotOnly runs the DMT scheduler without replication
	// (Figure 14's "w/ Parrot only").
	ModeParrotOnly
	// ModePaxosOnly replicates socket inputs via consensus but runs
	// threads nondeterministically (Figure 14's "w/ Paxos only").
	ModePaxosOnly
	// ModeCraneNoBubble is full CRANE with the time bubbling component
	// disabled — the paper's §7.2 plan II, which demonstrably diverges.
	ModeCraneNoBubble
	// ModeCrane is the full system.
	ModeCrane
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNondet:
		return "nondet"
	case ModeParrotOnly:
		return "parrot-only"
	case ModePaxosOnly:
		return "paxos-only"
	case ModeCraneNoBubble:
		return "crane-nobubble"
	case ModeCrane:
		return "crane"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// replicated reports whether the mode runs a consensus group.
func (m Mode) replicated() bool {
	return m == ModePaxosOnly || m == ModeCraneNoBubble || m == ModeCrane
}

// deterministic reports whether the mode runs the DMT scheduler.
func (m Mode) deterministic() bool {
	return m == ModeParrotOnly || m == ModeCraneNoBubble || m == ModeCrane
}

// Replica is one CRANE instance: proxy + consensus + DMT + time bubbling +
// checkpointing around a transparently replicated server program (Fig. 1).
type Replica struct {
	id   int
	host string
	cfg  *Config
	prog papi.Program
	net  *simnet.Network
	mode Mode

	node  *paxos.Node // == nodes[0], the sole group when unsharded
	store *wal.Log    // == stores[0]
	// nodes and stores hold one consensus node and one WAL per Paxos
	// group: sharded deployments (Config.Groups > 1) order each
	// connection's socket calls in the group it hashes to, multiplying
	// proposal, fsync, and Accept-pipelining bandwidth by the group
	// count. nodes[0] == node and stores[0] == store, so the
	// single-group deployment is untouched.
	nodes  []*paxos.Node //crane:pergroup
	stores []*wal.Log    //crane:pergroup
	groups int
	// gm re-merges the groups' committed streams into one deterministic
	// admission order using per-group watermark vectors carried on time
	// bubbles (nil at one group: deliveries bypass the merge bit for
	// bit). Its emit callback is afterMerge, run under gm's lock — the
	// single-threaded continuation of what was the sole delivery
	// goroutine.
	gm *seq.Groups
	// stampCtr issues the shared admission-order stamps the merge sorts
	// by; the per-group burst submitters assign them just before
	// proposing, so each group's committed stamps are monotone.
	stampCtr atomic.Uint64
	sq       *seq.Sequence
	// sqs holds one Paxos sequence per execution lane; sqs[0] == sq, so the
	// single-lane deployment is untouched. Committed entries are routed by
	// connection id (Program.ConnLaneOf) and bubbles are cloned into every
	// lane, keeping each lane's clock bubble-paced.
	sqs   []*seq.Sequence
	lanes int
	px    *proxy
	pump  *pumpSockets

	// pprocA holds the live DMT process. It is a swappable pointer because
	// a speculation rollback replaces the entire scheduler: readers go
	// through proc() and must not cache the pointer across operations that
	// could overlap a rollback.
	pprocA atomic.Pointer[papi.ParrotProc]
	nproc  *papi.NondetProc
	// execMu guards the cold execution-state pair (fs, inst), swapped
	// together with the scheduler by a speculation rollback.
	execMu sync.Mutex
	inst   papi.Instance
	// spec executes bursts ahead of commit (nil unless Config.Speculation
	// under full CRANE with consensus).
	spec *speculator

	fs       *cfs.FS
	baseSnap *cfs.Snapshot
	out      *trace.OutputLog

	openConns   atomic.Int64
	killedFlag  atomic.Bool
	closedMu    sync.Mutex
	closedConns map[uint64]bool

	bubblePending atomic.Bool
	bubbleSince   atomic.Int64 // unix nanos of the outstanding request
	alignAt       atomic.Int64 // unix nanos gating the next alignment round

	restoreState []byte
	deliverFrom  uint64
	// deliverFroms and restoreWatermarks are the per-group counterparts
	// of deliverFrom for sharded restores: each group catches up from its
	// own checkpointed index, and the merge resumes from the checkpointed
	// watermark vector so post-restore stamp bumps replay identically.
	deliverFroms      []uint64 //crane:pergroup
	restoreWatermarks []uint64
	rejoining         bool
	checker           *analysis.LockOrderChecker
	schedRec          *dmt.Schedule
	laneRecs          []*dmt.Schedule // per-lane recordings (CRANE_SCHED_REC, lanes > 1)
	// entArenas are the per-group decode arenas: group g's delivery
	// goroutine owns entArenas[g] exclusively. cloneArena backs the
	// bubble clones made in enqueueDelivered, which is single-threaded
	// by construction (the one delivery goroutine at one group; under
	// gm's lock when sharded).
	entArenas  [][]seq.Entry //crane:pergroup
	cloneArena []seq.Entry
	// transport overrides the hub endpoint (TCP consensus deployments).
	transport paxos.Transport
	// ro is the replica's observability state: instrument registry,
	// lifecycle tracer, and (opt-in) HTTP scrape endpoint.
	ro *replicaObs
	// flt is the always-on flight recorder journaling the replica's
	// determinism-relevant event stream (nil in non-DMT modes or when
	// Config.NoFlightRecorder opts out; every call site is nil-safe).
	flt *flight.Recorder
	// aud cross-checks backups' piggybacked journal marks (leader side of
	// the live audit; nil without a recorder or consensus).
	aud *auditor
	// auditCur tracks which marks this replica already piggybacked.
	auditCur flight.AuditCursor
	// mangleDeliverA is a test-only hook that intercepts committed entries
	// before lane enqueue, used to seed a deliberate divergence on one
	// replica. Atomic because tests install it while the delivery loop may
	// be running.
	mangleDeliverA atomic.Pointer[func(*seq.Entry) []*seq.Entry]
}

// newReplica wires a replica; start() launches it.
func newReplica(id int, cfg *Config, prog papi.Program, net *simnet.Network) *Replica {
	r := &Replica{
		id:          id,
		host:        fmt.Sprintf("replica%d", id),
		cfg:         cfg,
		prog:        prog,
		net:         net,
		mode:        cfg.Mode,
		sq:          seq.New(),
		out:         trace.NewOutputLog(fmt.Sprintf("replica%d", id)),
		closedConns: make(map[uint64]bool),
	}
	r.lanes = 1
	if cfg.Mode.deterministic() {
		r.lanes = prog.EffectiveLanes(cfg.Lanes)
	}
	r.groups = cfg.Groups
	if r.groups < 1 || !cfg.Mode.replicated() {
		r.groups = 1
	}
	r.entArenas = make([][]seq.Entry, r.groups)
	if r.groups > 1 {
		r.gm = seq.NewGroups(r.groups, r.afterMerge)
	}
	r.sqs = make([]*seq.Sequence, r.lanes)
	r.sqs[0] = r.sq
	for i := 1; i < r.lanes; i++ {
		r.sqs[i] = seq.New()
	}
	r.ro = newReplicaObs(r)
	if cfg.Mode.deterministic() && !cfg.NoFlightRecorder {
		r.flt = flight.New(r.host, r.lanes, flight.Options{
			Capacity:   cfg.FlightCapacity,
			AuditEvery: cfg.AuditEvery,
		})
		if cfg.Mode.replicated() {
			r.aud = newAuditor(r)
		}
	}
	return r
}

// laneSeq returns lane i's Paxos sequence (the legacy sequence when
// single-lane or out of range).
func (r *Replica) laneSeq(i int) *seq.Sequence {
	if i < 0 || i >= len(r.sqs) {
		return r.sq
	}
	return r.sqs[i]
}

// laneForConn is the deterministic connection-to-lane routing declared by
// the program's conflict map. Connection ids are replica-consistent, so
// every replica routes identically.
func (r *Replica) laneForConn(conn uint64) int {
	return r.prog.ConnLaneOf(conn, r.lanes)
}

// groupForConn is the deterministic connection-to-group routing
// (rendezvous hashing unless the program overrides it). It runs on the
// primary before ordering; replicas re-derive it only for observability.
func (r *Replica) groupForConn(conn uint64) int {
	return r.prog.ConnGroupOf(conn, r.groups)
}

// groupOf attributes a committed-stream entry to a group for trace spans.
// Bubbles are proposed per group but consumed as lane-cloned clock grants,
// so they report group 0.
func (r *Replica) groupOf(e *seq.Entry) int {
	if r.groups <= 1 || e.Kind == seq.KindBubble {
		return 0
	}
	return r.groupForConn(e.Conn)
}

// groupReg returns the instrument registry view for group g: the plain
// registry when unsharded (legacy names, bit-identical scrapes), the
// group-renaming view otherwise (paxos_groupN_*, wal_groupN_*).
func (r *Replica) groupReg(g int) *obs.Registry {
	if r.groups <= 1 {
		return r.ro.reg
	}
	return r.ro.reg.Grouped(g)
}

// deliverFromGroup resolves group g's catch-up index after a restore.
func (r *Replica) deliverFromGroup(g int) uint64 {
	if len(r.deliverFroms) == r.groups {
		return r.deliverFroms[g]
	}
	if g == 0 {
		return r.deliverFrom
	}
	return 0
}

// start builds the filesystem, program instance, consensus node, proxy and
// process, and launches the server.
func (r *Replica) start(hub *paxos.ChanHub, peers []int) error {
	// Container filesystem: install, then snapshot the pristine image
	// (the LXC snapshot "prepared before any server starts", §5.2).
	r.fs = cfs.New()
	if r.prog.Install != nil {
		r.prog.Install(r.fs)
	}
	r.baseSnap = r.fs.Snapshot()
	r.inst = r.prog.New(r.fs)
	if r.restoreState != nil {
		if err := r.inst.Restore(r.restoreState); err != nil {
			return fmt.Errorf("crane: restore state: %w", err)
		}
	}

	// Lane 0's sequence keeps the legacy instrument names; every lane's
	// consumption hook tags spans with its lane id.
	r.sq.SetObs(r.ro.reg)
	for i, lsq := range r.sqs {
		lane := i
		lsq.SetConsumedHook(func(e *seq.Entry) {
			r.ro.recordConsumed(e, r.logicalClock(), lane, r.groupOf(e))
		})
	}

	if r.mode.replicated() {
		if r.cfg.WALDir != "" {
			for g := 0; g < r.groups; g++ {
				dir := filepath.Join(r.cfg.WALDir, r.host)
				if r.groups > 1 {
					// One log per group: each group's appends and fsyncs
					// proceed independently (the fsync-bandwidth axis of
					// the sharding win). Single-group keeps the legacy
					// layout so existing WALs restart unchanged.
					dir = filepath.Join(dir, fmt.Sprintf("g%d", g))
				}
				store, err := wal.Open(dir,
					wal.Options{NoSync: !r.cfg.WALSync, Obs: r.groupReg(g)})
				if err != nil {
					return err
				}
				r.stores = append(r.stores, store)
			}
			r.store = r.stores[0]
		}
		initialPrimary := 0
		if r.deliverFrom > 0 || r.restoreState != nil || r.rejoining {
			// A restored replica re-joins as a backup: it must adopt the
			// running cluster's view rather than claim the bootstrap
			// primaryship (§7.6's self-downgrading).
			initialPrimary = -1
		}
		transport := r.transport
		if transport == nil {
			transport = hub.Endpoint(r.id)
		}
		if ts, ok := transport.(interface{ Stats() paxos.TransportStats }); ok {
			// The wire is shared across groups, so transport counters
			// stay unprefixed even when sharded.
			registerTransportStats(r.ro.reg, ts.Stats)
		}
		var mux *paxos.GroupMux
		if r.groups > 1 {
			mux = paxos.NewGroupMux(transport)
		}
		for g := 0; g < r.groups; g++ {
			g := g
			port := transport
			if mux != nil {
				port = mux.Port(g)
			}
			var store *wal.Log
			if len(r.stores) > 0 {
				store = r.stores[g]
			}
			pcfg := paxos.Config{
				ID:                r.id,
				Peers:             peers,
				Transport:         port,
				Store:             store,
				HeartbeatInterval: r.cfg.HeartbeatInterval,
				ElectionTimeout:   r.cfg.ElectionTimeout,
				DeliverFrom:       r.deliverFromGroup(g),
				OnDeliver:         func(e paxos.LogEntry) { r.onDeliverGroup(g, e) },
				InitialPrimary:    initialPrimary,
				Obs:               r.groupReg(g),
			}
			if r.flt != nil {
				if g == 0 {
					// The live audit piggybacks journal marks on one
					// group's AcceptOK stream; the marks cover the whole
					// replica (lane journals span groups), so riding one
					// group suffices and avoids duplicate samples.
					pcfg.AuditSource = func() []flight.AuditSample {
						return r.flt.CollectAudit(&r.auditCur)
					}
					if r.aud != nil {
						pcfg.OnAudit = r.aud.onAudit
					}
				}
				detail := ""
				if r.groups > 1 {
					detail = fmt.Sprintf("group%d", g)
				}
				pcfg.OnViewChange = func(view uint64, primary int) {
					r.flt.Control().Note(flight.EvViewChange, r.logicalClock(),
						view, uint64(primary), detail)
				}
			}
			node, err := paxos.NewNode(pcfg)
			if err != nil {
				return err
			}
			r.nodes = append(r.nodes, node)
		}
		r.node = r.nodes[0]
		if r.gm != nil && len(r.restoreWatermarks) == r.groups {
			// Resume the merge from the checkpointed watermark vector:
			// post-restore stamp bumps (eff = max(stamp, W+1)) must replay
			// exactly as the live replicas computed them.
			r.gm.SetWatermarks(r.restoreWatermarks)
		}
	}

	switch r.mode {
	case ModeNondet:
		r.nproc = papi.NewNondetProc(r.net, r.host, r.fs)
		r.nproc.SetLanes(r.prog.EffectiveLanes(r.cfg.Lanes))
	case ModeParrotOnly:
		pproc := papi.NewParrotProc(r.net, r.host, r.fs)
		pproc.SetLanes(r.lanes)
		r.wireFlight(pproc)
		r.pprocA.Store(pproc)
	case ModePaxosOnly:
		r.nproc = papi.NewNondetProc(r.net, r.host, r.fs)
		r.nproc.SetLanes(r.prog.EffectiveLanes(r.cfg.Lanes))
		r.pump = newPumpSockets(r)
		r.nproc.SetSocketLayer(r.pump)
	case ModeCrane, ModeCraneNoBubble:
		pproc := papi.NewParrotProc(r.net, r.host, r.fs)
		pproc.SetLanes(r.lanes)
		r.wireFlight(pproc)
		pproc.SetSocketLayer(&dmtSockets{r: r})
		g := newGate(r, r.mode == ModeCrane)
		pproc.Sched.SetGate(g)
		if r.cfg.Speculation && r.mode == ModeCrane && r.node != nil {
			r.spec = newSpeculator(r, g)
		}
		r.pprocA.Store(pproc)
	}
	if pproc := r.proc(); pproc != nil {
		pproc.Sched.SetObs(r.ro.reg)
		// Single-lane recording captures the one total order; multi-lane
		// captures one schedule per lane (lanes have no meaningful total
		// order across them). Both exist for divergence diagnostics.
		if os.Getenv("CRANE_SCHED_REC") != "" {
			if r.lanes == 1 {
				r.schedRec = pproc.Sched.StartRecording()
			} else {
				r.laneRecs = pproc.Sched.StartLaneRecordings()
				pproc.Sched.StartCrossDebug()
			}
		}
	}
	// REPFRAME-style analysis (§6.2): attach the lock-order checker to
	// the designated backup's scheduler.
	if r.cfg.AnalyzeBackup && r.proc() != nil && r.id == r.cfg.Replicas-1 && r.cfg.Replicas > 1 {
		r.checker = analysis.NewLockOrderChecker()
		r.proc().Sched.SetObserver(r.checker.Observer())
	}

	if r.node != nil {
		for _, nd := range r.nodes {
			nd.Start()
		}
		r.px = newProxy(r)
		if err := r.px.start(); err != nil {
			return err
		}
	}
	if pproc := r.proc(); pproc != nil {
		pproc.Start(r.inst)
	} else {
		r.nproc.Start(r.inst)
	}
	if r.cfg.MetricsAddr != "" {
		addr, err := metricsAddrFor(r.cfg.MetricsAddr, r.id)
		if err != nil {
			return err
		}
		if err := r.ro.serve(addr, r.health, r.flt); err != nil {
			return err
		}
	}
	return nil
}

// wireFlight attaches the flight recorder's lane journals to the DMT
// scheduler and Paxos sequences. Called before the scheduler starts (and
// again by the rollback path on the rebuilt process, after AdvanceEpoch
// re-based the journals): each lane's scheduler and sequence share that
// lane's journal, whose single-writer discipline the lane token provides.
func (r *Replica) wireFlight(pproc *papi.ParrotProc) {
	if r.flt == nil {
		return
	}
	for i := 0; i < r.lanes; i++ {
		ls := pproc.Sched.LaneSched(i)
		ls.SetFlight(r.flt.Lane(i))
		r.laneSeq(i).SetFlight(r.flt.Lane(i), ls.ClockFast)
	}
}

// proc returns the live DMT process (nil in non-DMT modes). Speculation
// rollback swaps the pointer wholesale; load it fresh rather than caching
// across operations that could overlap a rollback.
func (r *Replica) proc() *papi.ParrotProc { return r.pprocA.Load() }

// logicalClock reads the DMT scheduler's logical clock (0 in non-DMT
// modes). Lock-free, so it is safe from callbacks holding other locks.
func (r *Replica) logicalClock() uint64 {
	if pproc := r.proc(); pproc != nil {
		return pproc.Sched.ClockFast()
	}
	return 0
}

// health snapshots the /healthz payload.
func (r *Replica) health() obs.Health {
	pending := 0
	for _, lsq := range r.sqs {
		pending += lsq.Len()
	}
	if r.gm != nil {
		pending += r.gm.Pending()
	}
	h := obs.Health{
		Replica:    r.id,
		Mode:       r.mode.String(),
		OpenConns:  r.openConns.Load(),
		SeqPending: pending,
	}
	if r.node != nil {
		h.Primary = r.node.IsPrimary()
		h.View, h.ViewPrimary = r.node.View()
		h.CommitIndex = r.node.CommitIndex()
	}
	if r.store != nil {
		tail, _ := r.store.Tail()
		h.WALTail = tail
		if h.CommitIndex > tail {
			h.WALLag = h.CommitIndex - tail
		}
	}
	return h
}

// onDeliverGroup receives group g's committed consensus decisions in that
// group's order (§3.2). Entries are carved from the group's chunked arena:
// each group's deliveries arrive one at a time from its Paxos node's event
// loop (never concurrently within a group), so the delivery path costs one
// allocation per arena chunk instead of one per entry. Unsharded, the sole
// group feeds afterMerge directly; sharded, entries pass through the
// watermark merge, which emits them in the replica-agreed stamp order.
func (r *Replica) onDeliverGroup(g int, e paxos.LogEntry) {
	if len(r.entArenas[g]) == 0 {
		r.entArenas[g] = make([]seq.Entry, 64)
	}
	ent := &r.entArenas[g][0]
	r.entArenas[g] = r.entArenas[g][1:]
	if err := seq.DecodeInto(ent, e.Payload); err != nil {
		return
	}
	ent.Index = e.Index
	r.ro.recordCommitted(ent, g)
	if r.flt != nil && r.groups > 1 {
		// Journal the (group, slot) of every commit so crane-inspect can
		// localize a divergence to the group whose stream first differed.
		r.flt.Control().Emit(flight.EvGroupCommit, r.logicalClock(),
			0, uint64(g), e.Index)
	}
	if r.gm != nil {
		r.gm.Deliver(g, ent)
		return
	}
	r.afterMerge(ent)
}

// afterMerge consumes one entry in the replica's global admission order —
// directly from the single group's deliveries, or from the cross-group
// merge's emit callback (under gm's lock, which preserves the
// single-threaded discipline the speculator and lane routing assume).
func (r *Replica) afterMerge(ent *seq.Entry) {
	if r.spec != nil && r.spec.onCommitted(ent) {
		// The commit confirmed a speculative clone already in a lane queue
		// (or was swallowed for rollback replay); it must not be enqueued a
		// second time.
		if ent.Kind == seq.KindBubble {
			r.bubblePending.Store(false)
		}
		return
	}
	if h := r.mangleDeliverA.Load(); h != nil {
		// Test-only divergence seeding: the hook decides which entries to
		// enqueue now (possibly reordered, possibly none while it holds one
		// back).
		for _, m := range (*h)(ent) {
			r.enqueueDelivered(m)
		}
		return
	}
	r.enqueueDelivered(ent)
}

// enqueueDelivered routes one committed entry into the lane sequences —
// the tail of onDeliver, split out so the divergence-seeding hook can
// reorder entries while reusing the exact production routing.
func (r *Replica) enqueueDelivered(ent *seq.Entry) {
	if ent.Kind == seq.KindBubble && r.lanes > 1 {
		// A bubble paces every lane's logical clock: clone it into each
		// lane's sequence (TickBubble mutates NClock in place, so the
		// lanes cannot share one entry). Bubbles are what keep a starved
		// lane's clock advancing, which the cross-lane merge relies on.
		for _, lsq := range r.sqs {
			if len(r.cloneArena) == 0 {
				r.cloneArena = make([]seq.Entry, 64)
			}
			clone := &r.cloneArena[0]
			r.cloneArena = r.cloneArena[1:]
			*clone = *ent
			lsq.Enqueue(clone)
		}
	} else {
		r.laneSeq(r.laneForConn(ent.Conn)).Enqueue(ent)
	}
	if ent.Kind == seq.KindBubble {
		r.bubblePending.Store(false)
	}
	if r.pump != nil {
		r.pump.wake()
	}
}

// maybeRequestBubble implements the proxy side of Fig. 13: when the DMT
// has been starved of input for W_timeout, the primary invokes consensus
// on a time-bubble insertion (backups drop the request).
func (r *Replica) maybeRequestBubble() {
	// A bubble is due when any lane's sequence has starved for W_timeout
	// (with one lane this is exactly the pre-lane condition): starved
	// lanes need bubbles to tick their clocks even while other lanes have
	// steady client input.
	starved := false
	for _, lsq := range r.sqs {
		if lsq.EmptyFor(r.cfg.Wtimeout) {
			starved = true
			break
		}
	}
	if !starved {
		return
	}
	if r.node == nil {
		return
	}
	r.alignGroupLeadership()
	// Per-group primaryship: after a failover the groups can transiently
	// elect different leaders (alignGroupLeadership pulls them back onto
	// the group-0 leader, but not atomically). Whoever leads a group paces
	// that group's clock — the merge is live only if every group keeps
	// committing bubbles, so each starvation round proposes one bubble
	// into every group this replica currently leads.
	leads := false
	for _, nd := range r.nodes {
		if nd.IsPrimary() {
			leads = true
			break
		}
	}
	if !leads {
		return
	}
	now := time.Now().UnixNano()
	if r.bubblePending.Load() {
		// An outstanding request can be lost across a view change;
		// re-arm after a generous grace period.
		if now-r.bubbleSince.Load() < int64(50*time.Millisecond) {
			return
		}
		r.bubblePending.Store(false)
	}
	if !r.bubblePending.CompareAndSwap(false, true) {
		return
	}
	r.bubbleSince.Store(now)
	// One bubble is cloned into every lane (afterMerge), so the
	// replica-wide clock grant of a single bubble round is
	// NClock x lanes x groups — and every granted clock costs one
	// idle-thread token turn to consume. Dividing the per-bubble grant by
	// lanes x groups keeps the grant (and the chew cost) per round
	// constant as either axis scales; a starved lane simply requests
	// bubbles more often. The divided value rides the committed entries,
	// so replicas agree by construction. Single-lane single-group is the
	// identity: pre-lane bubbles are unchanged.
	nclock := r.cfg.Nclock / uint64(r.lanes*r.groups)
	if nclock == 0 {
		nclock = 1
	}
	// Bubbles ride the proxy's burst submitters so a bubble terminates
	// the burst it lands in (§4: no socket call queued behind the bubble
	// is packaged after it). One bubble goes into EVERY group this
	// replica leads: the merge can only emit past a group whose watermark
	// has advanced, so an idle group with no bubble flow would stall
	// delivery for all of them.
	proposed := false
	for g, nd := range r.nodes {
		if !nd.IsPrimary() {
			continue
		}
		e := seq.Entry{Kind: seq.KindBubble, NClock: nclock}
		if r.px.proposeGroup(&e, g) {
			proposed = true
		}
	}
	if !proposed {
		r.bubblePending.Store(false)
	}
}

// alignGroupLeadership pulls every Paxos group's leadership onto this
// replica once it leads group 0. Group elections are independent, and
// after a failover they can settle on different replicas for good — the
// proxy accepts clients wherever group 0 leads, so a connection hashed to
// a group led elsewhere would be refused forever. Group 0's election is
// the tie-break: its leader campaigns in every group it does not lead,
// rate-limited to one round per backoff window so an election in flight
// is not trampled. Leadership placement never touches the committed
// order, so alignment is determinism-neutral.
func (r *Replica) alignGroupLeadership() {
	if r.groups <= 1 || !r.node.IsPrimary() {
		return
	}
	aligned := true
	for _, nd := range r.nodes[1:] {
		if !nd.IsPrimary() {
			aligned = false
			break
		}
	}
	if aligned {
		return
	}
	window := 2 * r.cfg.ElectionTimeout
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	now := time.Now().UnixNano()
	next := r.alignAt.Load()
	if now < next || !r.alignAt.CompareAndSwap(next, now+int64(window)) {
		return // a round is pending, or another caller won the CAS
	}
	for _, nd := range r.nodes[1:] {
		if !nd.IsPrimary() {
			nd.Campaign()
		}
	}
}

// emitOutput logs an outgoing socket call and, on the primary, forwards it
// to the client; backups log and drop (§2.1). With speculation enabled the
// speculator sees every output first: it buffers those produced inside an
// open window and suppresses replayed ones after a rollback.
func (r *Replica) emitOutput(conn uint64, data []byte) {
	if r.spec != nil && r.spec.emit(conn, data) {
		return
	}
	n, fp := r.out.Record(conn, data) //crane:specleak-ok the speculator declined the output above: no window is open, the effect is committed
	r.flt.NoteOutput(uint64(n), fp)
	r.ro.recordOutput(conn, r.logicalClock(), r.laneForConn(conn), r.groupForConn(conn))
	if r.px != nil && r.node.IsPrimary() {
		r.px.forward(conn, data)
	}
}

func (r *Replica) proxyCloseConn(conn uint64) {
	if r.spec != nil && r.spec.closeConn(conn) {
		return
	}
	if r.px != nil {
		r.px.closeConn(conn)
	}
}

func (r *Replica) markConnClosed(conn uint64) {
	r.closedMu.Lock()
	r.closedConns[conn] = true
	r.closedMu.Unlock()
	r.ro.dropConnReq(conn)
}

func (r *Replica) connClosed(conn uint64) bool {
	r.closedMu.Lock()
	defer r.closedMu.Unlock()
	return r.closedConns[conn]
}

func (r *Replica) killed() bool { return r.killedFlag.Load() }

// stop tears the replica down: server process, proxy, consensus node.
func (r *Replica) stop() {
	if !r.killedFlag.CompareAndSwap(false, true) {
		return
	}
	if r.pump != nil {
		r.pump.wake()
	}
	if r.spec != nil {
		// Wait out any in-flight rollback's state swap. After the barrier,
		// whichever scheduler is installed stays installed: the rollback
		// re-checks the killed flag (set above) under its lock before
		// swapping in a replacement, so the single load below catches the
		// process that actually needs killing.
		r.spec.barrier()
	}
	pproc := r.proc()
	if pproc != nil {
		pproc.Kill()
	}
	if r.nproc != nil {
		r.nproc.Kill()
	}
	if r.px != nil {
		r.px.close()
	}
	for _, nd := range r.nodes {
		nd.Stop()
	}
	if pproc != nil {
		pproc.Wait()
	}
	if r.nproc != nil {
		r.nproc.Wait()
	}
	for _, store := range r.stores {
		store.Close() //crane:fsyncerr-ok shutdown path; every append already synced, so a close failure loses nothing durable
	}
	r.ro.close()
}

// --- checkpoint.Process implementation (§5.2) ---

// Quiescent reports whether the server has no alive client connections and
// no pending input in any lane — the paper's trick for avoiding TCP-stack
// checkpoints.
func (r *Replica) Quiescent() bool {
	if r.openConns.Load() != 0 {
		return false
	}
	for _, lsq := range r.sqs {
		if !lsq.Empty() {
			return false
		}
	}
	if r.gm != nil && r.gm.PendingClientCalls() > 0 {
		// Client entries parked in the cross-group merge are admitted input
		// the program has not yet seen — checkpointing under them would
		// lose them on restore. Parked BUBBLES are fine: in steady state
		// the newest bubble round's tail is almost always parked behind an
		// as-yet-empty group, and a bubble is pure clock padding the idle
		// thread consumes invisibly. (Checkpoint() separately insists on a
		// fully drained merge so its watermark capture is exact.)
		return false
	}
	if r.spec != nil && r.spec.active() {
		// An open speculation window or a running repair means execution
		// state is provisional — never a checkpointable moment.
		return false
	}
	return true
}

// Snapshot serializes the program's in-memory state (CRIU substitution).
func (r *Replica) Snapshot() ([]byte, error) {
	r.execMu.Lock()
	inst := r.inst
	r.execMu.Unlock()
	return inst.Snapshot()
}

// Restore reinstates a program snapshot (used on a freshly built replica
// before its main thread runs).
func (r *Replica) Restore(b []byte) error {
	r.execMu.Lock()
	inst := r.inst
	r.execMu.Unlock()
	return inst.Restore(b)
}

// Checkpoint captures a consistent (state, index) image using the
// quiescence-gated checkpointer, re-validating that no input raced the
// capture.
func (r *Replica) Checkpoint(cp *checkpoint.Checkpointer) (*checkpoint.Checkpoint, *checkpoint.Timings, error) {
	for attempt := 0; attempt < 10; attempt++ {
		idxsBefore := r.commitIndexes()
		r.execMu.Lock()
		fs := r.fs
		r.execMu.Unlock()
		ck, tm, err := cp.Capture(r, fs, r.baseSnap, func() uint64 { return idxsBefore[0] })
		if err != nil {
			return nil, tm, err
		}
		if r.commitIndexesStill(idxsBefore) && r.Quiescent() &&
			(r.gm == nil || r.gm.Pending() == 0) {
			// At G>1 the capture must land in a fully drained merge window
			// (between bubble rounds): a parked bubble would advance the
			// live replicas' watermarks after the capture while the
			// restored replica never replays it (its slot is below the
			// checkpointed commit index), skewing effective stamps across
			// replicas. The commit-index re-validation guarantees nothing
			// was delivered during the capture, so a drained merge now
			// means a drained merge throughout.
			if r.groups > 1 {
				ck.GroupIndexes = idxsBefore
				ck.GroupWatermarks = r.gm.Watermarks()
			}
			return ck, tm, nil
		}
		// Input raced the capture; back off and retry (§5.2).
		time.Sleep(2 * time.Millisecond)
	}
	return nil, nil, fmt.Errorf("crane: checkpoint never stabilized")
}

// commitIndexes snapshots every group's consensus commit index.
func (r *Replica) commitIndexes() []uint64 {
	idxs := make([]uint64, len(r.nodes))
	for g, nd := range r.nodes {
		idxs[g] = nd.CommitIndex()
	}
	return idxs
}

// commitIndexesStill reports whether no group committed past the snapshot
// taken before the capture (the §5.2 race re-validation, per group).
func (r *Replica) commitIndexesStill(idxs []uint64) bool {
	for g, nd := range r.nodes {
		if nd.CommitIndex() != idxs[g] {
			return false
		}
	}
	return true
}

// Accessors used by the cluster, tests, and benches.

// ID returns the replica id.
func (r *Replica) ID() int { return r.id }

// Host returns the replica's network host name.
func (r *Replica) Host() string { return r.host }

// IsPrimary reports whether this replica is the consensus primary.
func (r *Replica) IsPrimary() bool { return r.node != nil && r.node.IsPrimary() }

// Outputs returns the replica's network-output log (§7.2).
func (r *Replica) Outputs() *trace.OutputLog { return r.out }

// SeqStats returns the Paxos-sequence counters (Table 1), summed over
// lanes in multi-lane deployments (bubble counters multiply by the lane
// count, since bubbles are cloned into every lane).
func (r *Replica) SeqStats() seq.Stats {
	agg := r.sq.Stats()
	for _, lsq := range r.sqs[1:] {
		st := lsq.Stats()
		agg.Enqueued += st.Enqueued
		agg.Bubbles += st.Bubbles
		agg.ClientCalls += st.ClientCalls
		agg.BubbleClocks += st.BubbleClocks
		agg.Consumed += st.Consumed
		agg.Pending += st.Pending
		agg.PayloadBytes += st.PayloadBytes
	}
	return agg
}

// Node exposes the consensus node (nil in un-replicated modes; group 0's
// node in sharded deployments).
func (r *Replica) Node() *paxos.Node { return r.node }

// GroupNode exposes group g's consensus node (nil when out of range or
// un-replicated).
func (r *Replica) GroupNode(g int) *paxos.Node {
	if g < 0 || g >= len(r.nodes) {
		return nil
	}
	return r.nodes[g]
}

// Groups returns the Paxos group count (1 unless sharded).
func (r *Replica) Groups() int { return r.groups }

// LeadsAllGroups reports whether this replica is the consensus primary of
// every Paxos group. Group elections are independent: after a failover the
// proxy starts accepting clients as soon as group 0 re-elects, while a call
// routed to a group still mid-election is refused. Failover tests (and
// health probes) poll this for the fully re-elected state before resuming
// load.
func (r *Replica) LeadsAllGroups() bool {
	if len(r.nodes) == 0 {
		return false
	}
	for _, nd := range r.nodes {
		if !nd.IsPrimary() {
			return false
		}
	}
	return true
}

// GroupStats returns the cross-group merge counters (zero when unsharded:
// the single group's deliveries bypass the merge).
func (r *Replica) GroupStats() seq.GroupStats {
	if r.gm == nil {
		return seq.GroupStats{}
	}
	return r.gm.Stats()
}

// FS returns the replica's container filesystem (the live one: a
// speculation rollback swaps in a rebuilt filesystem).
func (r *Replica) FS() *cfs.FS {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	return r.fs
}

// SpecStats returns the speculation counters (all zero when speculation
// is disabled).
func (r *Replica) SpecStats() SpecStats {
	if r.spec == nil {
		return SpecStats{}
	}
	return r.spec.stats()
}

// BaseSnapshot returns the pristine container image.
func (r *Replica) BaseSnapshot() *cfs.Snapshot { return r.baseSnap }

// OpenConns returns the number of alive server-side connections.
func (r *Replica) OpenConns() int64 { return r.openConns.Load() }

// Obs returns the replica's instrument registry.
func (r *Replica) Obs() *obs.Registry { return r.ro.reg }

// Tracer returns the replica's lifecycle tracer (nil unless
// Config.TraceCapacity > 0).
func (r *Replica) Tracer() *obs.Tracer { return r.ro.tracer }

// FlightRecorder returns the replica's divergence flight recorder (nil in
// non-DMT modes or when Config.NoFlightRecorder opted out).
func (r *Replica) FlightRecorder() *flight.Recorder { return r.flt }

// DivergenceAlarms returns the live audit's detected divergences (nil when
// none — the expected steady state — or when the replica runs no auditor).
func (r *Replica) DivergenceAlarms() []DivergenceAlarm { return r.aud.Alarms() }

// AuditChecked returns how many cross-replica audit samples this replica
// has verified as the consensus leader.
func (r *Replica) AuditChecked() uint64 { return r.aud.checkedCount() }

// SetMangleDeliver installs a test-only hook that intercepts committed
// entries before lane enqueue: the hook returns the entries to enqueue now
// (possibly reordered, possibly none while it holds one back). Tests use
// it to seed a deliberate divergence on one replica; nil uninstalls.
func (r *Replica) SetMangleDeliver(h func(*seq.Entry) []*seq.Entry) {
	if h == nil {
		r.mangleDeliverA.Store(nil)
		return
	}
	r.mangleDeliverA.Store(&h)
}

// ObsAddr returns the bound scrape-endpoint address ("" when
// Config.MetricsAddr was empty).
func (r *Replica) ObsAddr() string {
	if r.ro.srv == nil {
		return ""
	}
	return r.ro.srv.Addr()
}

var _ checkpoint.Process = (*Replica)(nil)
