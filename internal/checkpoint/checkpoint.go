// Package checkpoint implements §5.2: periodic checkpoint and restore of a
// replicated server. The original uses CRIU for process state and LXC for
// filesystem state; this reproduction substitutes (a) an application
// snapshot interface for CRIU (the checkpoint contract is identical: an
// opaque process image bound to a Paxos global index) and (b) cfs patches
// against a base snapshot for LXC's incremental "diff --text" checkpoints.
//
// The paper's quiescence trick is reproduced exactly: checkpointing TCP
// stacks is avoided by waiting until the server has no alive connections,
// backing off and retrying if it does.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"crane/internal/cfs"
)

// Process is the checkpointable server process (the CRIU substitution).
// Snapshot must only be called while the process is quiescent.
type Process interface {
	// Quiescent reports whether the process has no alive client
	// connections (§5.2's observation that even busy servers have idle
	// moments).
	Quiescent() bool
	// Snapshot serializes the full process state.
	Snapshot() ([]byte, error)
	// Restore reinstates a state produced by Snapshot.
	Restore([]byte) error
}

// Checkpoint is a complete replica image: process state plus an
// incremental filesystem patch, bound to the global consensus index from
// which re-execution resumes.
type Checkpoint struct {
	Index   uint64 // Paxos global index at capture time
	Process []byte // CRIU stand-in: serialized process state
	FSPatch cfs.Patch
	Taken   time.Time
	// GroupIndexes are the per-group consensus indexes at capture time
	// when the deployment shards the log across Paxos groups (nil in
	// single-group deployments, where Index alone anchors recovery; then
	// Index doubles as group 0's index). Quiescence makes the vector
	// consistent: no admitted input is in flight in any group while the
	// capture runs.
	GroupIndexes []uint64
	// GroupWatermarks is the cross-group merge's watermark vector at
	// capture time (sharded deployments only). A restored replica resumes
	// its merge from this vector so post-restore stamp bumps replay
	// exactly as the live replicas computed them.
	GroupWatermarks []uint64
}

// Timings records the four cost components of Table 2.
type Timings struct {
	CheckpointProcess time.Duration // "C p"
	RestoreProcess    time.Duration // "R p"
	CheckpointFS      time.Duration // "C fs"
	RestoreFS         time.Duration // "R fs"
	FSPatchBytes      int
	Retries           int // quiescence back-offs before capture
}

// ErrNotQuiescent is returned when the process never becomes quiescent
// within the configured retries.
var ErrNotQuiescent = errors.New("checkpoint: process never quiescent")

// Options configures a Checkpointer.
type Options struct {
	// Backoff is how long to wait before re-checking quiescence
	// (the paper backs off "a few seconds"; tests scale down).
	Backoff time.Duration
	// MaxRetries bounds quiescence retries. Zero means 100.
	MaxRetries int
}

// Checkpointer captures and restores replica images.
type Checkpointer struct {
	opts Options
}

// New creates a Checkpointer.
func New(opts Options) *Checkpointer {
	if opts.Backoff == 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 100
	}
	return &Checkpointer{opts: opts}
}

// Capture takes a checkpoint of proc and fs (diffed against base) at the
// given global index, waiting for quiescence first. index must be read by
// the caller while the process is paused at a consensus boundary.
func (c *Checkpointer) Capture(proc Process, fs *cfs.FS, base *cfs.Snapshot, index func() uint64) (*Checkpoint, *Timings, error) {
	tm := &Timings{}
	for !proc.Quiescent() {
		tm.Retries++
		if tm.Retries > c.opts.MaxRetries {
			return nil, tm, ErrNotQuiescent
		}
		time.Sleep(c.opts.Backoff)
	}
	start := time.Now()
	procImg, err := proc.Snapshot()
	if err != nil {
		return nil, tm, fmt.Errorf("checkpoint: process snapshot: %w", err)
	}
	idx := index()
	tm.CheckpointProcess = time.Since(start)

	start = time.Now()
	patch := fs.Diff(base)
	tm.CheckpointFS = time.Since(start)
	tm.FSPatchBytes = patch.Bytes()

	return &Checkpoint{
		Index:   idx,
		Process: procImg,
		FSPatch: *patch,
		Taken:   time.Now(), //crane:detflow-ok capture wall-clock stamp, diagnostics only
	}, tm, nil
}

// TryCapture is the single-attempt form of Capture for hot paths that
// cannot afford to block: it fails immediately with ErrNotQuiescent
// instead of backing off and retrying. The speculation layer uses it to
// opportunistically advance its rollback boundary between bursts — a miss
// just means the boundary advances on a later, quieter attempt.
func (c *Checkpointer) TryCapture(proc Process, fs *cfs.FS, base *cfs.Snapshot, index func() uint64) (*Checkpoint, *Timings, error) {
	tm := &Timings{}
	if !proc.Quiescent() {
		return nil, tm, ErrNotQuiescent
	}
	start := time.Now()
	procImg, err := proc.Snapshot()
	if err != nil {
		return nil, tm, fmt.Errorf("checkpoint: process snapshot: %w", err)
	}
	idx := index()
	tm.CheckpointProcess = time.Since(start)

	start = time.Now()
	patch := fs.Diff(base)
	tm.CheckpointFS = time.Since(start)
	tm.FSPatchBytes = patch.Bytes()

	return &Checkpoint{
		Index:   idx,
		Process: procImg,
		FSPatch: *patch,
		Taken:   time.Now(), //crane:detflow-ok capture wall-clock stamp, diagnostics only
	}, tm, nil
}

// RestoreFS materializes the checkpointed filesystem: fresh base + patch.
func (c *Checkpointer) RestoreFS(ck *Checkpoint, base *cfs.Snapshot) (*cfs.FS, time.Duration, error) {
	start := time.Now()
	fs := base.NewFS()
	if err := fs.Apply(&ck.FSPatch); err != nil {
		return nil, 0, fmt.Errorf("checkpoint: fs restore: %w", err)
	}
	return fs, time.Since(start), nil
}

// RestoreProcess reinstates the process image into proc.
func (c *Checkpointer) RestoreProcess(ck *Checkpoint, proc Process) (time.Duration, error) {
	start := time.Now()
	if err := proc.Restore(ck.Process); err != nil {
		return 0, fmt.Errorf("checkpoint: process restore: %w", err)
	}
	return time.Since(start), nil
}

// Encode serializes the checkpoint for shipping to a recovering replica.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a shipped checkpoint.
func Decode(b []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &ck, nil
}
