package checkpoint

import (
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"crane/internal/cfs"
)

// fakeProc is a Process with a JSON-serialized counter state.
type fakeProc struct {
	conns   atomic.Int32
	Counter int
	History []string
	failing bool
}

func (p *fakeProc) Quiescent() bool { return p.conns.Load() == 0 }

func (p *fakeProc) Snapshot() ([]byte, error) {
	if p.failing {
		return nil, errors.New("boom")
	}
	return json.Marshal(struct {
		Counter int
		History []string
	}{p.Counter, p.History})
}

func (p *fakeProc) Restore(b []byte) error {
	if p.failing {
		return errors.New("boom")
	}
	var st struct {
		Counter int
		History []string
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	p.Counter = st.Counter
	p.History = st.History
	return nil
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	proc := &fakeProc{Counter: 42, History: []string{"a", "b"}}
	fs := cfs.New()
	fs.Write("install/conf", []byte("v=1\n"))
	base := fs.Snapshot()
	fs.Write("work/data", []byte("payload"))
	fs.Write("install/conf", []byte("v=2\n"))

	cp := New(Options{})
	ck, tm, err := cp.Capture(proc, fs, base, func() uint64 { return 17 })
	if err != nil {
		t.Fatal(err)
	}
	if ck.Index != 17 {
		t.Fatalf("Index = %d", ck.Index)
	}
	if tm.Retries != 0 {
		t.Fatalf("Retries = %d for quiescent proc", tm.Retries)
	}
	if tm.FSPatchBytes == 0 {
		t.Fatal("fs patch empty despite changes")
	}

	// Restore into a fresh replica.
	proc2 := &fakeProc{}
	if _, err := cp.RestoreProcess(ck, proc2); err != nil {
		t.Fatal(err)
	}
	if proc2.Counter != 42 || len(proc2.History) != 2 {
		t.Fatalf("restored proc = %+v", proc2)
	}
	fs2, _, err := cp.RestoreFS(ck, base)
	if err != nil {
		t.Fatal(err)
	}
	if !cfs.Equal(fs, fs2) {
		t.Fatal("restored fs differs")
	}
}

func TestQuiescenceBackoff(t *testing.T) {
	proc := &fakeProc{}
	proc.conns.Store(3) // busy
	fs := cfs.New()
	base := fs.Snapshot()
	cp := New(Options{Backoff: time.Millisecond, MaxRetries: 50})
	go func() {
		time.Sleep(5 * time.Millisecond)
		proc.conns.Store(0) // connections drain
	}()
	ck, tm, err := cp.Capture(proc, fs, base, func() uint64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if tm.Retries == 0 {
		t.Fatal("expected backoff retries")
	}
	if ck == nil {
		t.Fatal("nil checkpoint")
	}
}

func TestQuiescenceGivesUp(t *testing.T) {
	proc := &fakeProc{}
	proc.conns.Store(1) //forever busy
	fs := cfs.New()
	cp := New(Options{Backoff: time.Microsecond, MaxRetries: 3})
	_, _, err := cp.Capture(proc, fs, fs.Snapshot(), func() uint64 { return 0 })
	if !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("err = %v, want ErrNotQuiescent", err)
	}
}

func TestSnapshotErrorPropagates(t *testing.T) {
	proc := &fakeProc{failing: true}
	fs := cfs.New()
	cp := New(Options{})
	if _, _, err := cp.Capture(proc, fs, fs.Snapshot(), func() uint64 { return 0 }); err == nil {
		t.Fatal("snapshot error swallowed")
	}
	good := &fakeProc{}
	ck, _, err := cp.Capture(good, fs, fs.Snapshot(), func() uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RestoreProcess(ck, proc); err == nil {
		t.Fatal("restore error swallowed")
	}
}

func TestEncodeDecodeShipping(t *testing.T) {
	proc := &fakeProc{Counter: 7}
	fs := cfs.New()
	base := fs.Snapshot()
	fs.Write("f", []byte("x"))
	cp := New(Options{})
	ck, _, err := cp.Capture(proc, fs, base, func() uint64 { return 9 })
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 9 || len(got.FSPatch.Ops) != 1 {
		t.Fatalf("shipped checkpoint = %+v", got)
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("Decode of junk succeeded")
	}
}

func TestRestoreIsRepeatable(t *testing.T) {
	// A checkpoint must be restorable multiple times (e.g. to seed several
	// new replicas) without mutation.
	proc := &fakeProc{Counter: 1}
	fs := cfs.New()
	base := fs.Snapshot()
	fs.Write("a", []byte("one"))
	cp := New(Options{})
	ck, _, err := cp.Capture(proc, fs, base, func() uint64 { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fsN, _, err := cp.RestoreFS(ck, base)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := fsN.Read("a"); string(d) != "one" {
			t.Fatalf("restore %d corrupted: %q", i, d)
		}
	}
}

// TestTryCaptureBusyFailsImmediately pins the single-attempt contract the
// speculation layer relies on: a busy process fails with ErrNotQuiescent
// right away — no backoff, no retries — because the caller runs on an
// opportunistic path that cannot afford to block.
func TestTryCaptureBusyFailsImmediately(t *testing.T) {
	proc := &fakeProc{}
	proc.conns.Store(1) // busy
	fs := cfs.New()
	cp := New(Options{Backoff: time.Second, MaxRetries: 100})
	start := time.Now()
	_, _, err := cp.TryCapture(proc, fs, fs.Snapshot(), func() uint64 { return 0 })
	if !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("err = %v, want ErrNotQuiescent", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("TryCapture backed off instead of failing immediately")
	}
}

// TestTryCaptureQuiescentRoundTrip verifies a successful single-attempt
// capture restores exactly like a Capture checkpoint.
func TestTryCaptureQuiescentRoundTrip(t *testing.T) {
	proc := &fakeProc{Counter: 7}
	fs := cfs.New()
	base := fs.Snapshot()
	fs.Write("work/state", []byte("boundary"))
	cp := New(Options{})
	ck, _, err := cp.TryCapture(proc, fs, base, func() uint64 { return 99 })
	if err != nil {
		t.Fatal(err)
	}
	if ck.Index != 99 {
		t.Fatalf("Index = %d", ck.Index)
	}
	proc2 := &fakeProc{}
	if _, err := cp.RestoreProcess(ck, proc2); err != nil {
		t.Fatal(err)
	}
	if proc2.Counter != 7 {
		t.Fatalf("restored counter = %d", proc2.Counter)
	}
	fs2, _, err := cp.RestoreFS(ck, base)
	if err != nil {
		t.Fatal(err)
	}
	if !cfs.Equal(fs, fs2) {
		t.Fatal("restored fs differs")
	}
}
