package papi

import (
	"testing"
	"time"

	"crane/internal/simnet"
)

// TestParrotNowDeterministic: the same program observes identical Now()
// values at identical execution points across runs (§6.1 extension).
func TestParrotNowDeterministic(t *testing.T) {
	run := func() []time.Time {
		net := simnet.New(simnet.Options{})
		p := NewParrotProc(net, "s", nil)
		var stamps []time.Time
		done := make(chan struct{})
		p.Start(FuncInstance{Main: func(tt T) {
			m := tt.NewMutex()
			for i := 0; i < 5; i++ {
				m.Lock(tt)
				m.Unlock(tt)
				stamps = append(stamps, tt.Now())
			}
			close(done)
		}})
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("program hung")
		}
		p.Kill()
		p.Wait()
		return stamps
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("stamps = %d, %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("Now diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Time advances with the logical clock.
	if !a[4].After(a[0]) {
		t.Fatal("deterministic time did not advance")
	}
	if a[0].Before(DetEpoch) {
		t.Fatal("time before epoch")
	}
}

// TestNondetNowIsPhysical: the baseline returns wall-clock time.
func TestNondetNowIsPhysical(t *testing.T) {
	net := simnet.New(simnet.Options{})
	p := NewNondetProc(net, "s", nil)
	got := make(chan time.Time, 1)
	p.Start(FuncInstance{Main: func(tt T) { got <- tt.Now() }})
	defer p.Kill()
	select {
	case ts := <-got:
		if d := time.Since(ts); d < 0 || d > time.Minute {
			t.Fatalf("nondet Now improbable: %v", ts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung")
	}
}
