package papi

import "crane/internal/dmt"

// SocketLayer lets an embedding system (the crane package) replace the
// process's socket implementation while reusing its thread and
// synchronization runtime. This is the analogue of CRANE interposing on
// the socket API while Parrot interposes on Pthreads: same process, two
// interception layers.
type SocketLayer interface {
	Listen(t T, port int) (Listener, error)
}

// SetSocketLayer installs sl; must be called before Start.
func (p *ParrotProc) SetSocketLayer(sl SocketLayer) { p.socketLayer = sl }

// SetSocketLayer installs sl; must be called before Start.
func (p *NondetProc) SetSocketLayer(sl SocketLayer) { p.socketLayer = sl }

// DMTThreadOf extracts the scheduler thread behind a DMT-backed T. It
// reports false for plain-goroutine runtimes.
func DMTThreadOf(t T) (*dmt.Thread, bool) {
	if pt, ok := t.(*parrotT); ok {
		return pt.th, true
	}
	return nil, false
}

// SchedulerOf extracts the DMT scheduler behind a DMT-backed process's T.
func SchedulerOf(t T) (*dmt.Scheduler, bool) {
	if pt, ok := t.(*parrotT); ok {
		return pt.p.Sched, true
	}
	return nil, false
}
