package papi

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"crane/internal/simnet"
)

// echoServer is a small listener+workers program exercising the whole T
// surface: spawn, mutex/cond worklist, accept, recv, send, work.
type echoServer struct {
	requests int
	mu       sync.Mutex
	served   int
}

func (e *echoServer) Run(t T) {
	l, err := t.Listen(80)
	if err != nil {
		panic(err)
	}
	type item struct{ c Conn }
	var (
		wl     []item
		m      = t.NewMutex()
		cv     = t.NewCond()
		closed = false
	)
	var workers []Handle
	for i := 0; i < 4; i++ {
		workers = append(workers, t.Spawn(fmt.Sprintf("worker%d", i), func(wt T) {
			for {
				m.Lock(wt)
				for len(wl) == 0 && !closed {
					cv.Wait(wt, m)
				}
				if len(wl) == 0 && closed {
					m.Unlock(wt)
					return
				}
				it := wl[0]
				wl = wl[1:]
				m.Unlock(wt)

				buf := make([]byte, 256)
				for {
					n, err := it.c.Recv(wt, buf)
					if err != nil {
						break
					}
					wt.Work(10)
					if _, err := it.c.Send(wt, bytes.ToUpper(buf[:n])); err != nil {
						break
					}
				}
				it.c.Close(wt)
				e.mu.Lock()
				e.served++
				e.mu.Unlock()
			}
		}))
	}
	for i := 0; i < e.requests; i++ {
		c, err := l.Accept(t)
		if err != nil {
			break
		}
		m.Lock(t)
		wl = append(wl, item{c})
		m.Unlock(t)
		cv.Signal(t)
	}
	m.Lock(t)
	closed = true
	m.Unlock(t)
	cv.Broadcast(t)
	for _, w := range workers {
		t.Join(w)
	}
	l.Close()
}

func (e *echoServer) Snapshot() ([]byte, error) { return nil, nil }
func (e *echoServer) Restore([]byte) error      { return nil }

func runEcho(t *testing.T, start func(net *simnet.Network, inst Instance) (kill func(), wait func())) int {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: 20 * time.Microsecond})
	const clients = 8
	srv := &echoServer{requests: clients}
	kill, wait := start(net, srv)
	defer kill()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *simnet.Conn
			var err error
			for try := 0; try < 200; try++ {
				c, err = net.Dial(simnet.Addr(fmt.Sprintf("cli%d:1", i)), "server:80")
				if err == nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				errs <- err
				return
			}
			msg := fmt.Sprintf("hello-%d", i)
			if _, err := c.Write([]byte(msg)); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				errs <- err
				return
			}
			if string(buf) != fmt.Sprintf("HELLO-%d", i) {
				errs <- fmt.Errorf("echo = %q", buf)
				return
			}
			c.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("server did not finish")
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.served
}

func TestNondetEchoServer(t *testing.T) {
	served := runEcho(t, func(net *simnet.Network, inst Instance) (func(), func()) {
		p := NewNondetProc(net, "server", nil)
		p.Start(inst)
		return p.Kill, p.Wait
	})
	if served != 8 {
		t.Fatalf("served = %d", served)
	}
}

func TestParrotEchoServer(t *testing.T) {
	served := runEcho(t, func(net *simnet.Network, inst Instance) (func(), func()) {
		p := NewParrotProc(net, "server", nil)
		p.Start(inst)
		return p.Kill, func() {
			p.WaitMain()
			p.Kill()
			p.Wait()
		}
	})
	if served != 8 {
		t.Fatalf("served = %d", served)
	}
}

func TestParrotSoftBarrierViaT(t *testing.T) {
	net := simnet.New(simnet.Options{})
	p := NewParrotProc(net, "server", nil)
	released := make(chan int, 3)
	done := make(chan struct{})
	p.Start(FuncInstance{Main: func(t T) {
		var hs []Handle
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, t.Spawn("w", func(wt T) {
				b := wt.SoftBarrier("compute", 3, 1_000_000)
				b.Arrive(wt)
				released <- i
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
		close(done)
	}})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier program hung")
	}
	if len(released) != 3 {
		t.Fatalf("released %d, want 3", len(released))
	}
	p.Kill()
	p.Wait()
}

func TestDetRandStability(t *testing.T) {
	if DetRand(42) != DetRand(42) {
		t.Fatal("DetRand not deterministic")
	}
	if DetRand(1) == DetRand(2) {
		t.Fatal("DetRand suspiciously collides")
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		v := DetRandN(uint64(i), 10)
		if v < 0 || v >= 10 {
			t.Fatalf("DetRandN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Fatal("DetRandN poorly distributed")
	}
	if DetRandN(7, 0) != 0 {
		t.Fatal("DetRandN(_, 0) != 0")
	}
}

func TestBurnWorkScales(t *testing.T) {
	small := time.Now()
	BurnWork(10)
	dSmall := time.Since(small)
	big := time.Now()
	BurnWork(10000)
	dBig := time.Since(big)
	if dBig < dSmall {
		t.Fatalf("BurnWork(10000)=%v faster than BurnWork(10)=%v", dBig, dSmall)
	}
}

func TestFuncInstance(t *testing.T) {
	ran := false
	fi := FuncInstance{Main: func(T) { ran = true }}
	fi.Run(nil)
	if !ran {
		t.Fatal("FuncInstance did not run")
	}
	if b, err := fi.Snapshot(); err != nil || b != nil {
		t.Fatal("stateless snapshot broken")
	}
	if err := fi.Restore(nil); err != nil {
		t.Fatal("stateless restore broken")
	}
}

// TestEffectiveLanesClamp pins the lane-count resolution rules: no
// declared conflict structure forces one lane, MaxUseful clamps a larger
// request (the 8-lane MySQL regression in BENCH_lanes.json is the
// motivating case), and zero MaxUseful means unlimited.
func TestEffectiveLanesClamp(t *testing.T) {
	undeclared := &Program{Name: "plain"}
	if got := undeclared.EffectiveLanes(8); got != 1 {
		t.Fatalf("undeclared conflict: EffectiveLanes(8) = %d, want 1", got)
	}
	clamped := &Program{Name: "mysqld", Conflict: &ConflictMap{MaxUseful: 2}}
	cases := map[int]int{8: 2, 2: 2, 1: 1, 0: 1, -3: 1}
	for req, want := range cases {
		if got := clamped.EffectiveLanes(req); got != want {
			t.Errorf("MaxUseful 2: EffectiveLanes(%d) = %d, want %d", req, got, want)
		}
	}
	unlimited := &Program{Name: "httpd", Conflict: &ConflictMap{}}
	if got := unlimited.EffectiveLanes(8); got != 8 {
		t.Fatalf("MaxUseful 0: EffectiveLanes(8) = %d, want 8", got)
	}
}
