package papi

// CPU work simulation. Server workloads in the evaluation (PHP page
// generation ~70ms, virus scans, video transcodes, SQL queries) are
// modelled as calibrated busy work: a pure-computation loop with no
// synchronization, which under DMT runs in parallel exactly as real
// compute does under Parrot.

// workUnit is the spin count per unit; tuned so one unit is sub-µs on
// contemporary hardware, letting workloads express realistic mixes without
// making benchmarks glacial.
const workUnit = 120

// BurnWork spins for approximately `units` calibrated units. It is
// deterministic in its effect (none) and nondeterministic only in wall
// time, like real compute.
func BurnWork(units int) {
	var x uint64 = 88172645463325252
	for i := 0; i < units*workUnit; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	// xorshift64 never reaches zero from a nonzero seed; this branch
	// defeats dead-code elimination without any shared state.
	if x == 0 {
		panic("papi: xorshift invariant broken")
	}
}

// DetRand is a stateless deterministic mixer: identical on every replica
// for identical inputs. Server programs use it wherever the real programs
// would consume randomness that CRANE would have to make deterministic
// (e.g. hash seeds derived from request contents).
func DetRand(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DetRandN returns a deterministic value in [0, n) mixed from seed.
func DetRandN(seed uint64, n int) int {
	if n <= 0 {
		return 0
	}
	return int(DetRand(seed) % uint64(n))
}
