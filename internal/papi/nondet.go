package papi

import (
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/simnet"
)

// NondetProc runs a Program the way an ordinary OS would: goroutines,
// plain mutexes, raw sockets. It is the paper's "un-replicated
// nondeterministic execution" baseline that every Figure-14 bar is
// normalized against.
type NondetProc struct {
	net  *simnet.Network
	host string
	fs   *cfs.FS

	mu          sync.Mutex
	listeners   []*simnet.Listener
	conns       []*simnet.Conn
	conds       []*nondetCond
	killed      bool
	killCh      chan struct{}
	wg          sync.WaitGroup
	socketLayer SocketLayer
	lanes       int // structural lane count; plain goroutines need no domains
}

// nondetKilled is the sentinel thrown through threads parked on condition
// variables when the process is killed, mirroring the DMT runtime's
// unwind-on-Kill semantics; the Spawn wrapper recovers it.
type nondetKilled struct{}

func (p *NondetProc) isKilled() bool {
	select {
	case <-p.killCh:
		return true
	default:
		return false
	}
}

// NewNondetProc creates a baseline process on the given network host.
func NewNondetProc(net *simnet.Network, host string, fs *cfs.FS) *NondetProc {
	if fs == nil {
		fs = cfs.New()
	}
	return &NondetProc{net: net, host: host, fs: fs, killCh: make(chan struct{})}
}

// SetLanes records the lane count for the structural lane API. The
// baseline runtime has no token domains — goroutines already run in
// parallel — so lanes only shape Lanes()/Lane() partitioning decisions the
// app makes; all lane-tagged spawns and sync objects degrade to the plain
// variants.
func (p *NondetProc) SetLanes(n int) {
	if n < 1 {
		n = 1
	}
	p.lanes = n
}

// Start launches the program's main thread.
func (p *NondetProc) Start(inst Instance) {
	t := &nondetT{p: p}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer recoverKilled()
		inst.Run(t)
	}()
}

func recoverKilled() {
	if r := recover(); r != nil {
		if _, ok := r.(nondetKilled); !ok {
			panic(r)
		}
	}
}

// Kill tears the process down: listeners and connections close, blocked
// socket calls fail, and loops observing Killed exit.
func (p *NondetProc) Kill() {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return
	}
	p.killed = true
	ls, cs, conds := p.listeners, p.conns, p.conds
	p.mu.Unlock()
	close(p.killCh)
	for _, l := range ls {
		l.Close()
	}
	for _, c := range cs {
		c.Close()
	}
	// Wake every thread parked on a condition variable so it can unwind.
	for _, cv := range conds {
		if c := cv.cond(); c != nil {
			c.Broadcast()
		}
	}
}

// Wait blocks until all threads exit.
func (p *NondetProc) Wait() { p.wg.Wait() }

// FS returns the process's container filesystem.
func (p *NondetProc) FS() *cfs.FS { return p.fs }

type nondetT struct{ p *NondetProc }

type nondetHandle struct{ done chan struct{} }

func (*nondetHandle) handle() {}

func (t *nondetT) Spawn(name string, fn func(T)) Handle {
	h := &nondetHandle{done: make(chan struct{})}
	t.p.wg.Add(1)
	go func() {
		defer t.p.wg.Done()
		defer close(h.done)
		defer recoverKilled()
		fn(&nondetT{p: t.p})
	}()
	return h
}

func (t *nondetT) Join(h Handle) {
	if nh, ok := h.(*nondetHandle); ok {
		<-nh.done
	}
}

func (t *nondetT) NewMutex() Mutex { return &nondetMutex{} }

func (t *nondetT) NewCond() Cond {
	cv := &nondetCond{p: t.p}
	t.p.mu.Lock()
	t.p.conds = append(t.p.conds, cv)
	t.p.mu.Unlock()
	return cv
}

func (t *nondetT) NewRWMutex() RWMutex { return &nondetRW{} }

func (t *nondetT) Lanes() int {
	if t.p.lanes < 1 {
		return 1
	}
	return t.p.lanes
}

func (t *nondetT) Lane(key uint64) int { return int(key % uint64(t.Lanes())) }

func (t *nondetT) SpawnLane(lane int, name string, fn func(T)) Handle {
	return t.Spawn(name, fn)
}

func (t *nondetT) NewMutexLane(lane int) Mutex     { return t.NewMutex() }
func (t *nondetT) NewCondLane(lane int) Cond       { return t.NewCond() }
func (t *nondetT) NewRWMutexLane(lane int) RWMutex { return t.NewRWMutex() }

// SoftBarrier hints are ignored by the plain runtime (they are "soft" by
// contract and only influence DMT schedules).
func (t *nondetT) SoftBarrier(id string, n int, timeoutTicks uint64) Barrier {
	return nopBarrier{}
}

type nopBarrier struct{}

func (nopBarrier) Arrive(T) {}

func (t *nondetT) FS() *cfs.FS { return t.p.fs }

func (t *nondetT) Work(units int) { BurnWork(units) }

// Now returns physical time (the un-replicated baseline has no logical
// clock to derive deterministic time from).
func (t *nondetT) Now() time.Time { return time.Now() }

func (t *nondetT) Killed() bool {
	select {
	case <-t.p.killCh:
		return true
	default:
		return false
	}
}

func (t *nondetT) Listen(port int) (Listener, error) {
	if sl := t.p.socketLayer; sl != nil {
		return sl.Listen(t, port)
	}
	l, err := t.p.net.Listen(simnet.Addr(addrFor(t.p.host, port)))
	if err != nil {
		return nil, err
	}
	t.p.mu.Lock()
	t.p.listeners = append(t.p.listeners, l)
	killed := t.p.killed
	t.p.mu.Unlock()
	if killed {
		l.Close()
	}
	return &nondetListener{p: t.p, l: l}, nil
}

func addrFor(host string, port int) string {
	return host + ":" + itoa(port)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

type nondetListener struct {
	p *NondetProc
	l *simnet.Listener
}

func (nl *nondetListener) Poll(t T, hint time.Duration) bool {
	return nl.l.Poll(hint)
}

func (nl *nondetListener) Accept(t T) (Conn, error) {
	c, err := nl.l.Accept()
	if err != nil {
		return nil, err
	}
	nl.p.mu.Lock()
	nl.p.conns = append(nl.p.conns, c)
	nl.p.mu.Unlock()
	return &nondetConn{c: c}, nil
}

func (nl *nondetListener) Close() error { return nl.l.Close() }

type nondetConn struct{ c *simnet.Conn }

func (nc *nondetConn) ID() uint64 { return nc.c.ID() }

func (nc *nondetConn) Recv(t T, buf []byte) (int, error) { return nc.c.Read(buf) }

func (nc *nondetConn) Send(t T, data []byte) (int, error) { return nc.c.Write(data) }

func (nc *nondetConn) Close(t T) error { return nc.c.Close() }

// nondetMutex adapts sync.Mutex.
type nondetMutex struct{ mu sync.Mutex }

func (m *nondetMutex) Lock(T)         { m.mu.Lock() }
func (m *nondetMutex) Unlock(T)       { m.mu.Unlock() }
func (m *nondetMutex) TryLock(T) bool { return m.mu.TryLock() }

// nondetCond adapts sync.Cond, binding lazily to the first mutex waited on
// (pthread allows one mutex per cond at a time; apps here comply). Waiters
// unwind via the kill sentinel when the process is torn down — releasing
// the mutex first so peers blocked in Lock can proceed to their own unwind.
type nondetCond struct {
	p   *NondetProc
	cmu sync.Mutex // guards c against concurrent bind/teardown reads
	c   *sync.Cond
}

func (nc *nondetCond) bind(m Mutex) *sync.Cond {
	nc.cmu.Lock()
	defer nc.cmu.Unlock()
	if nc.c == nil {
		nc.c = sync.NewCond(&m.(*nondetMutex).mu)
	}
	return nc.c
}

// cond returns the bound sync.Cond, or nil if no thread has waited yet.
func (nc *nondetCond) cond() *sync.Cond {
	nc.cmu.Lock()
	defer nc.cmu.Unlock()
	return nc.c
}

func (nc *nondetCond) Wait(t T, m Mutex) {
	c := nc.bind(m)
	if nc.p != nil && nc.p.isKilled() {
		m.Unlock(t)
		panic(nondetKilled{})
	}
	c.Wait()
	if nc.p != nil && nc.p.isKilled() {
		m.Unlock(t)
		panic(nondetKilled{})
	}
}
func (nc *nondetCond) Signal(T) {
	if c := nc.cond(); c != nil {
		c.Signal()
	}
}
func (nc *nondetCond) Broadcast(T) {
	if c := nc.cond(); c != nil {
		c.Broadcast()
	}
}

// nondetRW adapts sync.RWMutex.
type nondetRW struct{ mu sync.RWMutex }

func (m *nondetRW) RLock(T)   { m.mu.RLock() }
func (m *nondetRW) RUnlock(T) { m.mu.RUnlock() }
func (m *nondetRW) Lock(T)    { m.mu.Lock() }
func (m *nondetRW) Unlock(T)  { m.mu.Unlock() }
