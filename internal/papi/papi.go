// Package papi is the POSIX-like programming surface that replicated
// server programs are written against: threads, pthread-style
// synchronization, blocking sockets, a container filesystem, and CPU work.
//
// In the original system this surface *is* libc — CRANE interposes on the
// socket and Pthreads synchronization interfaces by hijacking dynamically
// linked library calls. A Go runtime cannot be interposed that way, so the
// interposition point is made explicit: applications call through these
// interfaces, and the interchangeable runtimes behind them are exactly the
// execution modes of the paper's evaluation (§7.3):
//
//   - nondet  — plain goroutines + sync (the "un-replicated
//     nondeterministic execution" baseline),
//   - parrot  — the DMT scheduler only ("w/ Parrot only"),
//   - paxos-only and full CRANE — provided by the crane package, which
//     adds the proxy, consensus, and time bubbling.
//
// An application is a Program: install files, then run Main as the
// process's main thread, spawning workers through T.
package papi

import (
	"time"

	"crane/internal/cfs"
)

// T is a thread's handle to the runtime: every synchronization and socket
// operation takes the calling thread explicitly (the stand-in for "which
// pthread is calling into the interposed libc").
type T interface {
	// Spawn creates a new thread running fn and returns its handle.
	Spawn(name string, fn func(T)) Handle
	// Join blocks until the thread behind h exits.
	Join(h Handle)

	// NewMutex, NewCond, NewRWMutex create synchronization objects.
	NewMutex() Mutex
	NewCond() Cond
	NewRWMutex() RWMutex
	// SoftBarrier returns the process-wide soft-barrier hint registered
	// under id, creating it with group size n and the given logical-tick
	// timeout on first use (§7.4's two-line performance hints).
	SoftBarrier(id string, n int, timeoutTicks uint64) Barrier

	// Lanes returns the number of parallel execution lanes this process
	// runs with: 1 unless the program declares a ConflictMap and the
	// deployment enables more. Lane indices range over [0, Lanes()).
	Lanes() int
	// Lane maps a conflict key (a table id, connection id, path hash —
	// whatever the program's ConflictMap partitions on) to a lane index.
	Lane(key uint64) int
	// SpawnLane creates a thread pinned to the given lane. Threads of
	// different lanes run concurrently; only lane-bound synchronization
	// stays on the fast in-lane path, while unbound objects go through the
	// deterministic cross-lane merge. With Lanes()==1 it is Spawn.
	SpawnLane(lane int, name string, fn func(T)) Handle
	// NewMutexLane, NewCondLane, NewRWMutexLane create synchronization
	// objects bound to a lane: usable only by that lane's threads
	// (enforced at runtime and by cranevet's laneconsistency analyzer),
	// in exchange for never paying the cross-lane merge. NewMutex and
	// NewRWMutex create *cross-lane* (merge-ordered) objects when lanes
	// exist; NewCond binds to the creating thread's lane, since condition
	// variables cannot span lanes.
	NewMutexLane(lane int) Mutex
	NewCondLane(lane int) Cond
	NewRWMutexLane(lane int) RWMutex

	// Listen binds the server's listening socket for port.
	Listen(port int) (Listener, error)

	// FS returns the replica's container filesystem.
	FS() *cfs.FS

	// Work burns roughly `units` calibrated units of CPU outside any
	// scheduling decision (compute runs in parallel under DMT; only
	// synchronization is serialized).
	Work(units int)

	// Killed reports whether the process is being torn down; long-running
	// loops should poll it and return.
	Killed() bool

	// Now returns the current time. Under DMT runtimes it is
	// *deterministic* — derived from the logical clock, identical across
	// replicas — implementing §6.1's suggestion of treating time reads
	// as determinizable inputs rather than raw gettimeofday calls. The
	// baseline runtime returns physical time.
	Now() time.Time
}

// Handle identifies a spawned thread for Join.
type Handle interface{ handle() }

// Mutex is pthread_mutex_t.
type Mutex interface {
	Lock(t T)
	Unlock(t T)
	TryLock(t T) bool
}

// Cond is pthread_cond_t.
type Cond interface {
	Wait(t T, m Mutex)
	Signal(t T)
	Broadcast(t T)
}

// RWMutex is pthread_rwlock_t.
type RWMutex interface {
	RLock(t T)
	RUnlock(t T)
	Lock(t T)
	Unlock(t T)
}

// Barrier is Parrot's soft-barrier performance hint. Arrive may release
// immediately (hint ignored), on group fill, or on deterministic timeout —
// never affecting program logic.
type Barrier interface {
	Arrive(t T)
}

// Listener accepts client connections.
type Listener interface {
	// Poll reports whether a connection is pending, waiting up to the
	// hint duration (runtimes may interpret the hint loosely; under full
	// CRANE readiness is a deterministic property of the Paxos sequence).
	Poll(t T, hint time.Duration) bool
	// Accept blocks until a client connection arrives.
	Accept(t T) (Conn, error)
	// Close unbinds the listener.
	Close() error
}

// Conn is one accepted client connection.
type Conn interface {
	// ID is the connection's replica-consistent identity.
	ID() uint64
	// Recv blocks until client data arrives; it returns io.EOF once the
	// client has closed and all data is consumed.
	Recv(t T, buf []byte) (int, error)
	// Send transmits data to the client (on backups, CRANE logs and
	// drops it, §2.1).
	Send(t T, data []byte) (int, error)
	// Close releases the server side of the connection.
	Close(t T) error
}

// App is a server program's main-thread body.
type App func(t T)

// Instance is one replica-local instantiation of a server program.
type Instance interface {
	// Run is the program's main thread.
	Run(t T)
	// Snapshot serializes the program's in-memory state at a quiescent
	// point (the CRIU substitution; file state is checkpointed separately
	// through the container filesystem).
	Snapshot() ([]byte, error)
	// Restore reinstates a snapshot into a freshly created instance
	// before Run is invoked on a recovered replica.
	Restore([]byte) error
}

// ConflictMap is a program's declaration of its commutativity structure —
// the conflict-aware parallelism of "Rethinking State-Machine Replication
// for Parallelism" (Marandi et al.) surfaced as a first-class API. A
// program that declares one states: requests routed to different lanes
// never conflict except through explicitly cross-lane (unbound)
// synchronization objects, so the runtime may execute the lanes'
// deterministic schedules concurrently. Programs with no declaration run
// on a single lane — the pre-lane behaviour, bit for bit — which is the
// migration path: declare nothing, observe identical schedules, then add
// lane partitioning incrementally.
type ConflictMap struct {
	// ConnLane routes an accepted connection to a lane (e.g. httpd's
	// disjoint static paths per connection, mongoose's per-connection
	// partitioning). Nil defaults to connID % lanes. Connection ids are
	// replica-consistent under CRANE, so the routing is deterministic.
	ConnLane func(connID uint64, lanes int) int

	// MaxUseful is the number of genuinely independent key ranges the
	// program partitions its state into — the lane count beyond which
	// added lanes only add cross-lane synchronization. A deployment
	// requesting more lanes is clamped to it (EffectiveLanes): a
	// cross-lane mutex acquire waits for every other lane's bubble-paced
	// merge stamp, a cost that grows with the lane count, so running
	// eight lanes over two independent ranges is strictly worse than
	// running two (the 8-lane MySQL regression in BENCH_lanes.json).
	// Zero means unlimited.
	MaxUseful int

	// ConnGroup routes an accepted connection to a Paxos consensus group
	// when the deployment shards the socket-call log (Config.Groups > 1,
	// ISSUE 10). Nil defaults to rendezvous hashing on the connection id
	// (ConnGroupOf), which keeps assignments stable under group-count
	// changes. Unlike lanes, group routing happens on the primary before
	// ordering, so it must be a pure function of (connID, groups) —
	// replicas re-derive it from the committed stream for observability
	// only, never for correctness.
	ConnGroup func(connID uint64, groups int) int
}

// Program describes a deployable server program.
type Program struct {
	// Name labels logs and benchmarks.
	Name string
	// Ports are the listening ports the program binds.
	Ports []int
	// Install populates the installation directory in the container
	// filesystem before the base snapshot is taken.
	Install func(fs *cfs.FS)
	// New creates a fresh instance bound to the replica's filesystem.
	New func(fs *cfs.FS) Instance
	// Conflict declares the program's conflict structure. Nil means
	// undeclared: the deployment forces a single lane regardless of its
	// configured lane count.
	Conflict *ConflictMap
}

// ConnLaneOf resolves the lane for a connection under this program's
// conflict map (identity modulo lanes when no custom router is declared).
func (p *Program) ConnLaneOf(connID uint64, lanes int) int {
	if lanes <= 1 {
		return 0
	}
	if p.Conflict != nil && p.Conflict.ConnLane != nil {
		lane := p.Conflict.ConnLane(connID, lanes)
		return ((lane % lanes) + lanes) % lanes
	}
	return int(connID % uint64(lanes))
}

// ConnGroupOf resolves the Paxos group for a connection: the program's
// ConnGroup router when declared, rendezvous hashing otherwise.
func (p *Program) ConnGroupOf(connID uint64, groups int) int {
	if groups <= 1 {
		return 0
	}
	if p != nil && p.Conflict != nil && p.Conflict.ConnGroup != nil {
		g := p.Conflict.ConnGroup(connID, groups)
		return ((g % groups) + groups) % groups
	}
	return RendezvousGroup(connID, groups)
}

// RendezvousGroup assigns connID to one of groups buckets by
// highest-random-weight (rendezvous) hashing: each bucket scores
// mix(connID, bucket) and the highest score wins. Growing from N to N+1
// groups remaps only the ~1/(N+1) of connections whose new bucket wins,
// so resharding moves the minimum number of connections — the stability
// property the router tests pin down.
func RendezvousGroup(connID uint64, groups int) int {
	if groups <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for g := 0; g < groups; g++ {
		if s := mix64(connID ^ (uint64(g)+1)*0x9e3779b97f4a7c15); g == 0 || s > bestScore {
			best, bestScore = g, s
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer (public-domain constant set).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EffectiveLanes clamps a deployment's requested lane count to what the
// program declared: 1 when it has no ConflictMap (the safe fallback),
// the ConflictMap's MaxUseful when one is declared and exceeded, the
// requested count otherwise.
func (p *Program) EffectiveLanes(requested int) int {
	if requested < 1 {
		requested = 1
	}
	if p.Conflict == nil {
		return 1
	}
	if p.Conflict.MaxUseful > 0 && requested > p.Conflict.MaxUseful {
		return p.Conflict.MaxUseful
	}
	return requested
}

// FuncInstance adapts a bare App into an Instance with no process state.
type FuncInstance struct{ Main App }

// Run implements Instance.
func (f FuncInstance) Run(t T) { f.Main(t) }

// Snapshot implements Instance (stateless).
func (FuncInstance) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements Instance (stateless).
func (FuncInstance) Restore([]byte) error { return nil }
