package papi

import (
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/dmt"
	"crane/internal/simnet"
)

// ParrotProc runs a Program under the DMT scheduler alone — the paper's
// "w/ Parrot only" configuration: synchronization is deterministic, but
// blocking socket calls go through the real network and return
// nondeterministically via the scheduler's reentry queue (§3.1). A
// gate may be installed (by the crane package) to turn this process into a
// fully deterministic CRANE replica, in which case the socket layer is
// replaced too.
type ParrotProc struct {
	Sched *dmt.Scheduler
	net   *simnet.Network
	host  string
	fs    *cfs.FS

	mu          sync.Mutex
	listeners   []*simnet.Listener
	conns       []*simnet.Conn
	barriers    map[string]*dmt.SoftBarrier
	main        *dmt.Thread
	socketLayer SocketLayer
}

// NewParrotProc creates a DMT-scheduled process on the given network host.
func NewParrotProc(net *simnet.Network, host string, fs *cfs.FS) *ParrotProc {
	if fs == nil {
		fs = cfs.New()
	}
	return &ParrotProc{
		Sched:    dmt.New(),
		net:      net,
		host:     host,
		fs:       fs,
		barriers: make(map[string]*dmt.SoftBarrier),
	}
}

// SetLanes configures n parallel execution lanes (dmt.SetLanes). Call
// before Start; n <= 1 keeps the single-token configuration. Only programs
// that declare a papi.ConflictMap should run with more than one lane (use
// Program.EffectiveLanes to clamp).
func (p *ParrotProc) SetLanes(n int) { p.Sched.SetLanes(n) }

// Start launches the scheduler's idle thread and the program's main thread.
func (p *ParrotProc) Start(inst Instance) {
	p.Sched.Start()
	p.main = p.Sched.Spawn(nil, "main", func(th *dmt.Thread) {
		inst.Run(&parrotT{p: p, th: th})
	})
}

// Kill tears the process down: the scheduler unwinds every scheduled
// thread and open sockets close so real blocking calls return.
func (p *ParrotProc) Kill() {
	p.mu.Lock()
	ls, cs := p.listeners, p.conns
	p.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range cs {
		c.Close()
	}
	p.Sched.Kill()
}

// Wait blocks until all threads exit.
func (p *ParrotProc) Wait() { p.Sched.Join() }

// WaitMain blocks until the program's main thread returns (the scheduler's
// idle thread keeps running; call Kill afterwards to tear it down).
func (p *ParrotProc) WaitMain() {
	for p.main != nil && !p.main.Finished() && !p.Sched.Killed() {
		time.Sleep(200 * time.Microsecond)
	}
}

// FS returns the process's container filesystem.
func (p *ParrotProc) FS() *cfs.FS { return p.fs }

// parrotT is the DMT-backed thread handle.
type parrotT struct {
	p  *ParrotProc
	th *dmt.Thread
}

// DMTThread exposes the underlying scheduler thread (used by the crane
// runtime's socket wrappers).
func (t *parrotT) DMTThread() *dmt.Thread { return t.th }

type parrotHandle struct{ th *dmt.Thread }

func (*parrotHandle) handle() {}

func (t *parrotT) Spawn(name string, fn func(T)) Handle {
	child := t.p.Sched.Spawn(t.th, name, func(th *dmt.Thread) {
		fn(&parrotT{p: t.p, th: th})
	})
	return &parrotHandle{th: child}
}

func (t *parrotT) Join(h Handle) {
	if ph, ok := h.(*parrotHandle); ok && ph.th != nil {
		t.th.Join(ph.th)
	}
}

func (t *parrotT) Lanes() int { return t.p.Sched.Lanes() }

func (t *parrotT) Lane(key uint64) int {
	return int(key % uint64(t.p.Sched.Lanes()))
}

func (t *parrotT) SpawnLane(lane int, name string, fn func(T)) Handle {
	child := t.p.Sched.SpawnLane(t.th, lane, name, func(th *dmt.Thread) {
		fn(&parrotT{p: t.p, th: th})
	})
	return &parrotHandle{th: child}
}

// NewMutex and NewRWMutex stay unbound: safe from any lane, merge-ordered
// when lanes exist. NewCond binds to the creating thread's lane — condition
// variables cannot span lanes (wait queues are per-lane), so a cond shared
// across lanes must be replaced by per-lane conds via NewCondLane.
func (t *parrotT) NewMutex() Mutex { return &parrotMutex{} }
func (t *parrotT) NewCond() Cond {
	pc := &parrotCond{}
	pc.c.BindLane(t.th.LaneID())
	return pc
}
func (t *parrotT) NewRWMutex() RWMutex { return &parrotRW{} }

func (t *parrotT) NewMutexLane(lane int) Mutex {
	pm := &parrotMutex{}
	pm.m.BindLane(lane)
	return pm
}

func (t *parrotT) NewCondLane(lane int) Cond {
	pc := &parrotCond{}
	pc.c.BindLane(lane)
	return pc
}

func (t *parrotT) NewRWMutexLane(lane int) RWMutex {
	pr := &parrotRW{}
	pr.rw.BindLane(lane)
	return pr
}

func (t *parrotT) SoftBarrier(id string, n int, timeoutTicks uint64) Barrier {
	t.p.mu.Lock()
	defer t.p.mu.Unlock()
	sb, ok := t.p.barriers[id]
	if !ok {
		sb = dmt.NewSoftBarrier(n, timeoutTicks)
		t.p.barriers[id] = sb
	}
	return &parrotBarrier{sb: sb}
}

func (t *parrotT) FS() *cfs.FS { return t.p.fs }

func (t *parrotT) Work(units int) { BurnWork(units) }

// DetEpoch anchors deterministic time (the paper's publication date).
var DetEpoch = time.Date(2015, time.October, 4, 0, 0, 0, 0, time.UTC)

// Now returns deterministic time: the calling thread's lane clock advanced
// at 1µs per scheduled operation from a fixed epoch. Identical on every
// replica at the same execution point (with one lane, the lane clock is
// the global logical clock).
func (t *parrotT) Now() time.Time {
	return DetEpoch.Add(time.Duration(t.th.LaneClock()) * time.Microsecond)
}

func (t *parrotT) Killed() bool { return t.p.Sched.Killed() }

func (t *parrotT) Listen(port int) (Listener, error) {
	if sl := t.p.socketLayer; sl != nil {
		return sl.Listen(t, port)
	}
	// Listening itself is not a synchronization operation; bind directly.
	l, err := t.p.net.Listen(simnet.Addr(addrFor(t.p.host, port)))
	if err != nil {
		return nil, err
	}
	t.p.mu.Lock()
	t.p.listeners = append(t.p.listeners, l)
	t.p.mu.Unlock()
	return &parrotListener{p: t.p, l: l}, nil
}

// parrotListener performs real (nondeterministic) blocking accepts through
// the scheduler's blocking-call protocol.
type parrotListener struct {
	p *ParrotProc
	l *simnet.Listener
}

func (pl *parrotListener) Poll(t T, hint time.Duration) bool {
	th := t.(*parrotT).th
	th.BlockingEnter()
	ready := pl.l.Poll(hint)
	th.BlockingExit()
	return ready
}

func (pl *parrotListener) Accept(t T) (Conn, error) {
	th := t.(*parrotT).th
	th.BlockingEnter()
	c, err := pl.l.Accept()
	th.BlockingExit()
	if err != nil {
		return nil, err
	}
	pl.p.mu.Lock()
	pl.p.conns = append(pl.p.conns, c)
	pl.p.mu.Unlock()
	return &parrotConn{p: pl.p, c: c}, nil
}

func (pl *parrotListener) Close() error { return pl.l.Close() }

type parrotConn struct {
	p *ParrotProc
	c *simnet.Conn
}

func (pc *parrotConn) ID() uint64 { return pc.c.ID() }

func (pc *parrotConn) Recv(t T, buf []byte) (int, error) {
	th := t.(*parrotT).th
	th.BlockingEnter()
	n, err := pc.c.Read(buf)
	th.BlockingExit()
	return n, err
}

func (pc *parrotConn) Send(t T, data []byte) (int, error) {
	// Outgoing calls are scheduled by DMT (§2.1): one scheduled op per
	// send, with the actual write done under the token so per-connection
	// output order matches the deterministic schedule.
	th := t.(*parrotT).th
	th.GetTurn()
	th.Admit()
	n, err := pc.c.Write(data)
	th.PutTurn()
	return n, err
}

func (pc *parrotConn) Close(t T) error {
	th := t.(*parrotT).th
	th.GetTurn()
	th.Admit()
	err := pc.c.Close()
	th.PutTurn()
	return err
}

// parrotMutex adapts dmt.Mutex.
type parrotMutex struct{ m dmt.Mutex }

func (pm *parrotMutex) Lock(t T)   { t.(*parrotT).th.Lock(&pm.m) }
func (pm *parrotMutex) Unlock(t T) { t.(*parrotT).th.Unlock(&pm.m) }
func (pm *parrotMutex) TryLock(t T) bool {
	return t.(*parrotT).th.TryLock(&pm.m)
}

// parrotCond adapts dmt.Cond.
type parrotCond struct{ c dmt.Cond }

func (pc *parrotCond) Wait(t T, m Mutex) {
	t.(*parrotT).th.CondWait(&pc.c, &m.(*parrotMutex).m)
}
func (pc *parrotCond) Signal(t T)    { t.(*parrotT).th.CondSignal(&pc.c) }
func (pc *parrotCond) Broadcast(t T) { t.(*parrotT).th.CondBroadcast(&pc.c) }

// parrotRW adapts dmt.RWMutex.
type parrotRW struct{ rw dmt.RWMutex }

func (pr *parrotRW) RLock(t T)   { t.(*parrotT).th.RLock(&pr.rw) }
func (pr *parrotRW) RUnlock(t T) { t.(*parrotT).th.RUnlock(&pr.rw) }
func (pr *parrotRW) Lock(t T)    { t.(*parrotT).th.WLock(&pr.rw) }
func (pr *parrotRW) Unlock(t T)  { t.(*parrotT).th.WUnlock(&pr.rw) }

// parrotBarrier adapts dmt.SoftBarrier.
type parrotBarrier struct{ sb *dmt.SoftBarrier }

func (pb *parrotBarrier) Arrive(t T) { t.(*parrotT).th.SoftBarrierArrive(pb.sb) }
