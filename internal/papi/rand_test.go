package papi

import "testing"

// TestRandDeterministic pins the stream: equal seeds must produce equal
// sequences (that is the whole point), and the first values are pinned so
// an accidental algorithm change cannot slip through as "still
// deterministic, just different".
func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
	r := NewRand(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("splitmix64(seed=1) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit %d distinct values in 1000 draws, want 10", len(seen))
	}
	if v := NewRand(3).Int63(); v < 0 {
		t.Fatalf("Int63 returned negative %d", v)
	}
}
