package papi

// Rand is a deterministic seeded PRNG for replicated code. math/rand is
// banned inside the interposition boundary (its global source is seeded
// differently per process and its lock interleaving is schedule-visible);
// Rand gives every replica that seeds it identically an identical stream.
// The core is splitmix64, which passes BigCrush and needs no allocation.
//
// Rand is intentionally not safe for concurrent use: sharing a PRNG
// across threads would make the stream depend on the schedule. Give each
// thread its own instance seeded from its deterministic thread identity.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed. Equal seeds yield equal
// streams on every replica and platform.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

// Uint64 returns the next value of the stream (splitmix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a value in [0, n). It panics if n <= 0, matching
// math/rand. The modulo bias is below 2^-40 for any n that fits an int
// and is irrelevant for workload generation.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("papi: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
