package papi

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"crane/internal/simnet"
)

// TestParrotPollAndAcceptPassthrough covers the plain-Parrot socket path:
// poll/accept/recv go through BlockingEnter/Exit and the reentry queue.
func TestParrotPollAndAcceptPassthrough(t *testing.T) {
	net := simnet.New(simnet.Options{})
	p := NewParrotProc(net, "srv", nil)
	got := make(chan string, 1)
	p.Start(FuncInstance{Main: func(tt T) {
		l, err := tt.Listen(80)
		if err != nil {
			return
		}
		// Poll with no pending connection times out.
		if l.Poll(tt, time.Millisecond) {
			got <- "early-ready"
			return
		}
		// Then block until the client arrives.
		if !l.Poll(tt, 5*time.Second) {
			got <- "poll-timeout"
			return
		}
		c, err := l.Accept(tt)
		if err != nil {
			got <- "accept-err"
			return
		}
		buf := make([]byte, 64)
		var acc []byte
		for {
			n, err := c.Recv(tt, buf)
			acc = append(acc, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				got <- "recv-err"
				return
			}
		}
		c.Send(tt, []byte("ack"))
		c.Close(tt)
		got <- string(acc)
	}})
	defer func() { p.Kill(); p.Wait() }()

	time.Sleep(5 * time.Millisecond) // let the early Poll expire
	conn, err := net.Dial("cli:1", "srv:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("ping"))
	// Half-close is not modeled; read the ack then close.
	buf := make([]byte, 8)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	go func() {
		time.Sleep(2 * time.Millisecond)
		conn.Close()
	}()
	_, _ = conn.Read(buf)
	select {
	case s := <-got:
		if s != "ping" {
			t.Fatalf("server observed %q", s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("passthrough hung")
	}
}

// TestParrotSendsAreScheduled: outgoing sends take the token, so their
// per-connection order matches the deterministic schedule.
func TestParrotSendsAreScheduled(t *testing.T) {
	net := simnet.New(simnet.Options{})
	p := NewParrotProc(net, "srv", nil)
	var sends atomic.Int64
	p.Start(FuncInstance{Main: func(tt T) {
		l, err := tt.Listen(81)
		if err != nil {
			return
		}
		c, err := l.Accept(tt)
		if err != nil {
			return
		}
		var hs []Handle
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, tt.Spawn(fmt.Sprintf("s%d", i), func(wt T) {
				for j := 0; j < 5; j++ {
					if _, err := c.Send(wt, []byte{byte('a' + i)}); err != nil {
						return
					}
					sends.Add(1)
				}
			}))
		}
		for _, h := range hs {
			tt.Join(h)
		}
		c.Close(tt)
	}})
	defer func() { p.Kill(); p.Wait() }()
	var conn *simnet.Conn
	var err error
	for i := 0; i < 300; i++ {
		conn, err = net.Dial("cli:1", "srv:81")
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	var acc []byte
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for len(acc) < 15 {
		n, err := conn.Read(buf)
		acc = append(acc, buf[:n]...)
		if err != nil {
			break
		}
	}
	if len(acc) != 15 {
		t.Fatalf("received %d bytes", len(acc))
	}
	if sends.Load() != 15 {
		t.Fatalf("sends = %d", sends.Load())
	}
}

// TestNondetListenAfterKill: Listen on a killed process closes promptly.
func TestNondetListenAfterKill(t *testing.T) {
	net := simnet.New(simnet.Options{})
	p := NewNondetProc(net, "srv", nil)
	started := make(chan struct{})
	p.Start(FuncInstance{Main: func(tt T) {
		l, err := tt.Listen(82)
		if err != nil {
			return
		}
		close(started)
		l.Accept(tt) // blocks until Kill closes the listener
	}})
	<-started
	p.Kill()
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Kill did not unblock Accept")
	}
}
