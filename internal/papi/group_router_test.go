package papi

import "testing"

// TestRendezvousGroupStableAssignment pins the router's two contract
// properties: assignment is a pure function of (connID, groups) — the
// cross-replica determinism requirement — and growing the group count
// remaps only the minority of connections whose new bucket wins (the
// rendezvous-hashing stability that makes resharding cheap).
func TestRendezvousGroupStableAssignment(t *testing.T) {
	const conns = 4096
	// Purity / determinism: identical inputs, identical outputs, in range.
	for _, groups := range []int{1, 2, 3, 4, 8} {
		for id := uint64(0); id < 64; id++ {
			a := RendezvousGroup(id, groups)
			b := RendezvousGroup(id, groups)
			if a != b || a < 0 || a >= groups {
				t.Fatalf("RendezvousGroup(%d, %d) unstable or out of range: %d, %d", id, groups, a, b)
			}
		}
	}
	// Balance: no group starves at 4 groups over realistic connection ids
	// (high replica bits | low counter, like the proxy assigns).
	counts := make([]int, 4)
	for i := 0; i < conns; i++ {
		id := uint64(1)<<48 | uint64(i+1)
		counts[RendezvousGroup(id, 4)]++
	}
	for g, n := range counts {
		if n < conns/8 {
			t.Fatalf("group %d got %d of %d connections: badly unbalanced", g, n, conns)
		}
	}
	// Stability under group-count change: growing N -> N+1 must remap
	// roughly 1/(N+1) of connections and NEVER move a connection between
	// two pre-existing groups (rendezvous: a connection only moves if the
	// new bucket's score wins).
	for n := 1; n < 8; n++ {
		moved, movedWrong := 0, 0
		for i := 0; i < conns; i++ {
			id := uint64(1)<<48 | uint64(i+1)
			was, is := RendezvousGroup(id, n), RendezvousGroup(id, n+1)
			if was != is {
				moved++
				if is != n { // moved, but not to the new group
					movedWrong++
				}
			}
		}
		if movedWrong != 0 {
			t.Fatalf("%d->%d groups: %d connections moved between pre-existing groups", n, n+1, movedWrong)
		}
		// Expected fraction is 1/(n+1); allow generous slack.
		if lo, hi := conns/(2*(n+1)), 2*conns/(n+1); moved < lo || moved > hi {
			t.Fatalf("%d->%d groups: %d of %d connections remapped, want roughly %d",
				n, n+1, moved, conns, conns/(n+1))
		}
	}
}

// TestConnGroupOfOverride checks the ConflictMap hook: a declared ConnGroup
// wins over rendezvous hashing, is normalized into range, and groups <= 1
// short-circuits to 0 without consulting anything.
func TestConnGroupOfOverride(t *testing.T) {
	p := &Program{Conflict: &ConflictMap{
		ConnGroup: func(connID uint64, groups int) int { return -1 },
	}}
	if g := p.ConnGroupOf(7, 4); g != 3 {
		t.Fatalf("negative router result not normalized: got %d, want 3", g)
	}
	if g := p.ConnGroupOf(7, 1); g != 0 {
		t.Fatalf("groups=1 must pin to 0, got %d", g)
	}
	bare := &Program{}
	if g := bare.ConnGroupOf(99, 4); g != RendezvousGroup(99, 4) {
		t.Fatalf("undeclared router must fall back to rendezvous hashing")
	}
}
