package dmt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// runLanesProgram starts a scheduler with n lanes, spawns bodies[lane] into
// each lane, waits for all of them, and returns the root for inspection.
// Callers must Kill+Join the returned scheduler.
func runLanesProgram(t *testing.T, n int, bodies [][]func(*Thread)) *Scheduler {
	t.Helper()
	s := New()
	s.SetLanes(n)
	s.Start()
	done := make(chan struct{})
	go func() {
		var threads []*Thread
		for lane, fns := range bodies {
			for i, body := range fns {
				threads = append(threads,
					s.SpawnLane(nil, lane, fmt.Sprintf("l%dt%d", lane, i), body))
			}
		}
		for _, th := range threads {
			waitDone(th.s, th)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lanes program did not finish")
	}
	return s
}

func TestLanesPartitionedMutexes(t *testing.T) {
	const lanes, perLane, iters = 4, 3, 50
	mus := make([]*Mutex, lanes)
	counts := make([]int, lanes)
	for i := range mus {
		mus[i] = &Mutex{}
		mus[i].BindLane(i)
	}
	bodies := make([][]func(*Thread), lanes)
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		for j := 0; j < perLane; j++ {
			bodies[lane] = append(bodies[lane], func(th *Thread) {
				if th.LaneID() != lane {
					t.Errorf("thread spawned into lane %d runs in lane %d", lane, th.LaneID())
				}
				for i := 0; i < iters; i++ {
					th.Lock(mus[lane])
					counts[lane]++
					th.Unlock(mus[lane])
				}
			})
		}
	}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	if got := s.Lanes(); got != lanes {
		t.Fatalf("Lanes() = %d, want %d", got, lanes)
	}
	for lane, c := range counts {
		if c != perLane*iters {
			t.Errorf("lane %d count = %d, want %d", lane, c, perLane*iters)
		}
	}
	for lane := 0; lane < lanes; lane++ {
		if st := s.LaneStats(lane); st.Spawned < perLane {
			t.Errorf("lane %d spawned = %d, want >= %d", lane, st.Spawned, perLane)
		}
	}
}

func TestLanesCrossMutex(t *testing.T) {
	const lanes, perLane, iters = 3, 2, 40
	var m Mutex // unbound: cross-lane when lanes > 1
	var inside, maxInside int32
	counter := 0
	bodies := make([][]func(*Thread), lanes)
	for lane := 0; lane < lanes; lane++ {
		for j := 0; j < perLane; j++ {
			bodies[lane] = append(bodies[lane], func(th *Thread) {
				for i := 0; i < iters; i++ {
					th.Lock(&m)
					v := atomic.AddInt32(&inside, 1)
					if v > atomic.LoadInt32(&maxInside) {
						atomic.StoreInt32(&maxInside, v)
					}
					counter++
					atomic.AddInt32(&inside, -1)
					th.Unlock(&m)
				}
			})
		}
	}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	if counter != lanes*perLane*iters {
		t.Fatalf("counter = %d, want %d", counter, lanes*perLane*iters)
	}
	if maxInside != 1 {
		t.Fatalf("max threads inside cross critical section = %d", maxInside)
	}
}

func TestLanesCrossRWMutex(t *testing.T) {
	const lanes = 3
	var rw RWMutex // unbound: cross-lane
	shared := 0
	var readersSawTorn atomic.Bool
	bodies := make([][]func(*Thread), lanes)
	for lane := 0; lane < lanes; lane++ {
		bodies[lane] = append(bodies[lane], func(th *Thread) {
			for i := 0; i < 25; i++ {
				th.WLock(&rw)
				shared++
				shared++ // torn reads would observe an odd value
				th.WUnlock(&rw)
			}
		})
		bodies[lane] = append(bodies[lane], func(th *Thread) {
			for i := 0; i < 25; i++ {
				th.RLock(&rw)
				if shared%2 != 0 {
					readersSawTorn.Store(true)
				}
				th.RUnlock(&rw)
			}
		})
	}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	if shared != lanes*25*2 {
		t.Fatalf("shared = %d, want %d", shared, lanes*25*2)
	}
	if readersSawTorn.Load() {
		t.Fatal("reader observed a torn write under cross-lane RWMutex")
	}
}

// laneWorkload is a fixed 4-lane program whose per-lane schedules must be
// reproducible run to run: in-lane mutex/cond traffic plus a shared
// cross-lane mutex touched from every lane.
func laneWorkload(t *testing.T) []Stats {
	t.Helper()
	const lanes, perLane, iters = 4, 3, 30
	var cross Mutex
	mus := make([]*Mutex, lanes)
	for i := range mus {
		mus[i] = &Mutex{}
		mus[i].BindLane(i)
	}
	bodies := make([][]func(*Thread), lanes)
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		for j := 0; j < perLane; j++ {
			bodies[lane] = append(bodies[lane], func(th *Thread) {
				for i := 0; i < iters; i++ {
					th.Lock(mus[lane])
					th.Unlock(mus[lane])
					if i%5 == 0 {
						th.Lock(&cross)
						th.Unlock(&cross)
					}
				}
			})
		}
	}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	out := make([]Stats, 0, lanes+1)
	for lane := 0; lane < lanes; lane++ {
		out = append(out, s.LaneStats(lane))
	}
	out = append(out, s.Stats())
	return out
}

func TestLanesScheduleDeterminism(t *testing.T) {
	base := laneWorkload(t)
	for run := 1; run < 3; run++ {
		got := laneWorkload(t)
		for i := range base {
			label := fmt.Sprintf("lane %d", i)
			if i == len(base)-1 {
				label = "merged"
			}
			if got[i].ScheduleSum != base[i].ScheduleSum {
				t.Errorf("run %d: %s ScheduleSum = %#x, want %#x",
					run, label, got[i].ScheduleSum, base[i].ScheduleSum)
			}
			if got[i].Clock != base[i].Clock && i < len(base)-1 {
				// Per-lane logical clocks include idle ticks, which are
				// timing-dependent without a gate; only the hashed schedule
				// (non-idle ops) must match.
				continue
			}
		}
	}
}

// expectPanic runs fn on a thread in the given lane and verifies it panics
// with a message containing want.
func expectPanic(t *testing.T, lanes int, lane int, want string, fn func(*Thread)) {
	t.Helper()
	var msg atomic.Value
	bodies := make([][]func(*Thread), lanes)
	bodies[lane] = []func(*Thread){func(th *Thread) {
		defer func() {
			if r := recover(); r != nil {
				msg.Store(fmt.Sprint(r))
			}
		}()
		fn(th)
	}}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	got, _ := msg.Load().(string)
	if !strings.Contains(got, want) {
		t.Fatalf("panic = %q, want substring %q", got, want)
	}
}

func TestLaneBoundMutexWrongLane(t *testing.T) {
	var m Mutex
	m.BindLane(0)
	expectPanic(t, 2, 1, "bound to lane 0 used from lane 1", func(th *Thread) {
		th.Lock(&m)
	})
}

func TestCrossCondWaitPanics(t *testing.T) {
	var m Mutex
	var c Cond
	m.BindLane(1)
	expectPanic(t, 2, 1, "lane-bound Cond", func(th *Thread) {
		th.Lock(&m)
		th.CondWait(&c, &m)
	})
}

func TestCrossJoinPanics(t *testing.T) {
	s := New()
	s.SetLanes(2)
	s.Start()
	defer func() { s.Kill(); s.Join() }()
	victim := s.SpawnLane(nil, 1, "victim", func(th *Thread) {
		for !th.s.killedA.Load() {
			th.GetTurn()
			th.Admit()
			th.PutTurn()
		}
	})
	var msg atomic.Value
	joiner := s.SpawnLane(nil, 0, "joiner", func(th *Thread) {
		defer func() {
			if r := recover(); r != nil {
				msg.Store(fmt.Sprint(r))
			}
		}()
		th.Join(victim)
	})
	waitDone(joiner.s, joiner)
	got, _ := msg.Load().(string)
	if !strings.Contains(got, "cross-lane Join") {
		t.Fatalf("panic = %q, want cross-lane Join", got)
	}
}

func TestSetLanesGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	s1 := New()
	s1.Start()
	mustPanic("after Start", func() { s1.SetLanes(2) })
	s1.Kill()
	s1.Join()

	s2 := New()
	s2.SetLanes(2)
	mustPanic("twice", func() { s2.SetLanes(2) })
	mustPanic("record with lanes", func() { s2.StartRecording() })
	mustPanic("replay with lanes", func() { s2.SetReplay(&Schedule{}) })

	s3 := New()
	s3.StartRecording()
	mustPanic("lanes with recording", func() { s3.SetLanes(2) })

	s4 := New()
	s4.SetLanes(1) // no-op: single lane stays the pre-lane configuration
	if s4.Lanes() != 1 || s4.cross != nil {
		t.Fatal("SetLanes(1) must leave the single-token configuration untouched")
	}
}

func TestLanesThreadIDStriping(t *testing.T) {
	const lanes = 4
	ids := make([][]int, lanes)
	bodies := make([][]func(*Thread), lanes)
	var mu Mutex // cross, serializes appends
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		for j := 0; j < 2; j++ {
			bodies[lane] = append(bodies[lane], func(th *Thread) {
				th.Lock(&mu)
				ids[lane] = append(ids[lane], th.ID())
				th.Unlock(&mu)
			})
		}
	}
	s := runLanesProgram(t, lanes, bodies)
	defer func() { s.Kill(); s.Join() }()
	seen := map[int]bool{}
	for lane, laneIDs := range ids {
		for _, id := range laneIDs {
			if id%lanes != lane {
				t.Errorf("thread id %d in lane %d: want id %% %d == lane", id, lane, lanes)
			}
			if seen[id] {
				t.Errorf("duplicate thread id %d", id)
			}
			seen[id] = true
		}
	}
}

// TestLanesScheduleGolden pins the per-lane and merged ScheduleSums of the
// fixed 4-lane workload to a golden recording: any change to lane rotation,
// merge stamping, or hash folding shows up as a diff. Regenerate after an
// intentional schedule change with
//
//	CRANE_REGOLDEN=1 go test ./internal/dmt -run TestLanesScheduleGolden
func TestLanesScheduleGolden(t *testing.T) {
	stats := laneWorkload(t)
	var b strings.Builder
	for i, st := range stats {
		if i == len(stats)-1 {
			fmt.Fprintf(&b, "merged %#x\n", st.ScheduleSum)
		} else {
			fmt.Fprintf(&b, "lane%d %#x\n", i, st.ScheduleSum)
		}
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "lanes_schedule.golden")
	if os.Getenv("CRANE_REGOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s:\n%s", goldenPath, got)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with CRANE_REGOLDEN=1): %v", err)
	}
	if string(want) != got {
		t.Fatalf("lane schedules diverged from golden\n got:\n%s\nwant:\n%s", got, want)
	}
}
