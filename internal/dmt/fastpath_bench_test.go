package dmt

import (
	"sync"
	"testing"
)

// BenchmarkTokenHandoff measures the raw uncontended scheduled-operation
// round trip — GetTurn immediately followed by PutTurn on a scheduler whose
// run queue holds only the caller. This is the floor every wrapper in
// sync.go pays twice per operation, and the primary target of the direct
// token handoff: no other thread is involved, so the whole cost is queue
// rotation, clock tick, and token transfer back to self.
func BenchmarkTokenHandoff(b *testing.B) {
	s := New()
	done := make(chan struct{})
	b.ReportAllocs()
	s.Spawn(nil, "bench", func(th *Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.GetTurn()
			th.PutTurn()
		}
		close(done)
	})
	<-done
	b.StopTimer()
	s.Kill()
	s.Join()
}

// BenchmarkWaitSignal measures a full deterministic wait/signal ping-pong
// between two threads using the raw wait-queue primitives: each iteration
// is one SignalKey (wake the peer), one WaitOn (park until the peer's
// signal), and the token handoffs between them. With intrusive wait queues
// this path must not allocate.
func BenchmarkWaitSignal(b *testing.B) {
	s := New()
	ka, kb := new(Cond), new(Cond)
	var wg sync.WaitGroup
	wg.Add(2)
	b.ReportAllocs()
	b.ResetTimer()
	s.Spawn(nil, "a", func(th *Thread) {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			th.GetTurn()
			th.SignalKey(kb)
			th.WaitOn(ka)
			th.PutTurn()
		}
		// Release the peer's final WaitOn.
		th.GetTurn()
		th.SignalKey(kb)
		th.PutTurn()
	})
	s.Spawn(nil, "b", func(th *Thread) {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			th.GetTurn()
			th.SignalKey(ka)
			th.WaitOn(kb)
			th.PutTurn()
		}
		th.GetTurn()
		th.SignalKey(ka)
		th.PutTurn()
	})
	wg.Wait()
	b.StopTimer()
	s.Kill()
	s.Join()
}

// BenchmarkBroadcastFanout measures BroadcastKey waking a group of waiters
// (the RWMutex/Cond broadcast shape): 4 waiters park on one key, a fifth
// thread broadcasts, everyone re-parks.
func BenchmarkBroadcastFanout(b *testing.B) {
	s := New()
	var m Mutex
	var c Cond
	const waiters = 4
	gen := 0
	var wg sync.WaitGroup
	wg.Add(waiters + 1)
	b.ResetTimer()
	for i := 0; i < waiters; i++ {
		s.Spawn(nil, "w", func(th *Thread) {
			defer wg.Done()
			seen := 0
			th.Lock(&m)
			for seen < b.N {
				for gen <= seen {
					th.CondWait(&c, &m)
				}
				seen = gen
			}
			th.Unlock(&m)
		})
	}
	s.Spawn(nil, "caster", func(th *Thread) {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			th.Lock(&m)
			gen++
			th.Unlock(&m)
			th.CondBroadcast(&c)
		}
	})
	wg.Wait()
	b.StopTimer()
	s.Kill()
	s.Join()
}
