package dmt

import (
	"fmt"
	"testing"
	"time"
)

// recordRun executes a 3-worker counter program while recording, returning
// the schedule, the schedule hash, and the per-thread interleaving trace.
func recordRun(t *testing.T) (*Schedule, uint64, []string) {
	t.Helper()
	s := New()
	sched := s.StartRecording()
	s.Start()
	var m Mutex
	var traceLog []string
	done := make(chan struct{})
	go func() {
		var ths []*Thread
		root := s.Spawn(nil, "root", func(root *Thread) {
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("w%d", i)
				ths = append(ths, s.Spawn(root, name, func(th *Thread) {
					for j := 0; j < 10; j++ {
						th.Lock(&m)
						traceLog = append(traceLog, fmt.Sprintf("%s:%d", th.Name(), j))
						th.Unlock(&m)
					}
				}))
			}
			for _, th := range ths {
				root.Join(th)
			}
		})
		waitDoneRaw(s, root)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("recording run hung")
	}
	h := s.Stats().ScheduleSum
	s.Kill()
	s.Join()
	return sched, h, traceLog
}

// TestReplayReproducesSchedule: replaying a recorded schedule yields the
// identical schedule hash and identical application-level interleaving.
func TestReplayReproducesSchedule(t *testing.T) {
	sched, wantHash, wantTrace := recordRun(t)
	if sched.Len() == 0 {
		t.Fatal("empty recording")
	}

	s := New()
	s.SetReplay(sched)
	s.Start()
	var m Mutex
	var traceLog []string
	done := make(chan struct{})
	go func() {
		var ths []*Thread
		root := s.Spawn(nil, "root", func(root *Thread) {
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("w%d", i)
				ths = append(ths, s.Spawn(root, name, func(th *Thread) {
					for j := 0; j < 10; j++ {
						th.Lock(&m)
						traceLog = append(traceLog, fmt.Sprintf("%s:%d", th.Name(), j))
						th.Unlock(&m)
					}
				}))
			}
			for _, th := range ths {
				root.Join(th)
			}
		})
		waitDoneRaw(s, root)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("replay run hung")
	}
	gotHash := s.Stats().ScheduleSum
	s.Kill()
	s.Join()
	if gotHash != wantHash {
		t.Fatalf("replay hash %x != recorded %x", gotHash, wantHash)
	}
	if len(traceLog) != len(wantTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(traceLog), len(wantTrace))
	}
	for i := range wantTrace {
		if traceLog[i] != wantTrace[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, traceLog[i], wantTrace[i])
		}
	}
	if !s.ReplayDone() {
		t.Fatal("script not fully consumed")
	}
}

// TestReplayDivergenceDetected: replaying a schedule against a program
// that performs different operations must be detected (the scheduler
// records the divergence and unwinds), not deadlock.
func TestReplayDivergenceDetected(t *testing.T) {
	sched, _, _ := recordRun(t)

	s := New()
	s.SetReplay(sched)
	s.Start()
	// A different program: one worker doing RWMutex ops where the script
	// expects three mutex workers.
	s.Spawn(nil, "root", func(root *Thread) {
		var rw RWMutex
		w := s.Spawn(root, "other", func(th *Thread) {
			for j := 0; j < 10; j++ {
				th.WLock(&rw)
				th.WUnlock(&rw)
			}
		})
		root.Join(w)
	})
	deadline := time.Now().Add(20 * time.Second)
	for s.ReplayError() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.ReplayError() == nil {
		t.Fatal("divergence not detected")
	}
	s.Kill()
	s.Join()
}

// TestScheduleAccessors covers Schedule's small API.
func TestScheduleAccessors(t *testing.T) {
	sc := &Schedule{}
	sc.append(7, 'P', 1)
	sc.append(8, 'W', 2)
	if sc.Len() != 2 {
		t.Fatalf("Len = %d", sc.Len())
	}
	th, op := sc.Step(1)
	if th != 8 || op != 'W' {
		t.Fatalf("Step(1) = %d, %c", th, op)
	}
}
