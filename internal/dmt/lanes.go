package dmt

// Parallel execution lanes: multiple deterministic token domains in one
// scheduler, the conflict-aware-parallelism redesign motivated by
// "Rethinking State-Machine Replication for Parallelism" (Marandi et al.).
//
// Each lane *is* a Scheduler: its own run queue, wait table, logical clock,
// and round-robin token — all the single-token machinery of dmt.go, reused
// unchanged. The root scheduler (the one created by New) is lane 0;
// SetLanes(n) attaches n-1 child schedulers that share the root's
// WaitGroup, gate, observer, and a crossDomain. The single-lane
// configuration never allocates any of this, so the pre-lane behaviour is
// the 1-lane special case, bit for bit.
//
// Threads are pinned to a lane for life. Synchronization objects are
// either *lane-bound* (BindLane; usable only from their lane's threads,
// enforced at runtime and by cranevet's laneconsistency analyzer) or
// *cross-lane* (unbound while more than one lane exists): cross objects
// are manipulated under the crossDomain merge, which linearizes every
// cross-lane operation by the stamp (laneClock, laneID) — lowest wins —
// so the global order of conflicting operations is a pure function of the
// per-lane schedules and therefore replica-identical.
//
// Cross-lane mutexes and rwmutexes use a trylock-spin: each attempt is one
// ordinary scheduled operation in the caller's lane (ticking that lane's
// clock) whose trylock body executes at the attempt's merge position. The
// number of retries is itself determined by the merge order, so per-lane
// schedules stay deterministic. Condition variables and Join do not span
// lanes (they panic); apps partition waiters per lane instead.
//
// Merge stamps come in two flavours:
//
//   - gated (a CRANE gate is installed): the gate's LaneStampGate value —
//     the lane's consumption position in its committed input stream
//     (bubble clocks + consumed client calls). The lane *clock* is NOT
//     usable here: idle ticks before a lane's bootstrap thread lands are
//     physically timed (the cross-lane insertion races the idle rotation),
//     so clock-derived stamps diverge across replicas during bootstrap.
//     Consumption does not have that flaw because the gate withholds a
//     lane's sequence until its first application op (see crane's
//     gate.CheckAdmit): nothing is consumed before a point that is itself
//     an op of the deterministic lane schedule, and every consumption
//     after it is token-serialized. Bubbles cloned into every lane keep a
//     quiescent lane's consumption advancing, which is what guarantees
//     liveness of the merge wait below.
//   - gateless (plain Parrot / unit tests): the app clock, which counts
//     only non-idle ticks (idle rotations are timing-dependent when no
//     gate paces them). A lane that is parked — only its idle thread
//     runnable, nothing in reentry, no armed soft barrier — cannot produce
//     a cross operation until some other lane's (startup-ordered) action
//     wakes it, so parked lanes are skipped when deciding merge turns.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"crane/internal/obs/flight"
)

// crossDomain is the shared merge point for operations that span lanes.
type crossDomain struct {
	mu sync.Mutex
	// stamp, when non-nil, is the gate's LaneStampGate method (gated
	// mode); nil means gateless (app-clock stamps + parked-lane escape).
	stamp func(lane int) uint64
	lanes []*Scheduler
	// pending[L] holds lane L's registered cross-op stamp while has[L].
	// At most one cross op per lane can be in flight (its caller holds the
	// lane token), so a single slot per lane suffices.
	pending []uint64
	has     []bool
	// debug, when non-nil, accumulates one entry per merge-ordered op
	// (divergence diagnostics; see Scheduler.StartCrossDebug).
	debug *crossDebug
}

// crossDebugEntry records one merge-ordered operation for diagnostics.
type crossDebugEntry struct {
	Lane   int
	Thread int
	Stamp  uint64
	App    uint64
}

type crossDebug struct {
	mu      sync.Mutex
	entries []crossDebugEntry
}

// StartCrossDebug begins logging every merge-ordered cross-lane operation
// (lane, thread, stamp, app clock). Root only, before Start.
func (s *Scheduler) StartCrossDebug() {
	if s.cross != nil {
		s.cross.debug = &crossDebug{}
	}
}

// CrossDebugLog returns the merge-ordered operation log (nil unless
// StartCrossDebug was called).
func (s *Scheduler) CrossDebugLog() []crossDebugEntry {
	if s.cross == nil || s.cross.debug == nil {
		return nil
	}
	d := s.cross.debug
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]crossDebugEntry(nil), d.entries...)
}

// SetLanes splits the scheduler into n deterministic token domains. Must be
// called before Start, at most once, and is incompatible with record/replay
// (schedules are per-lane; record a 1-lane configuration instead). n <= 1
// leaves the scheduler in its single-token configuration.
func (s *Scheduler) SetLanes(n int) {
	if n <= 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("dmt: SetLanes after Start")
	}
	if s.group != nil {
		panic("dmt: SetLanes on a lane scheduler")
	}
	if s.lanes != nil {
		panic("dmt: SetLanes called twice")
	}
	if s.recording != nil || s.replay != nil {
		panic("dmt: SetLanes is incompatible with record/replay")
	}
	x := &crossDomain{pending: make([]uint64, n), has: make([]bool, n)}
	s.idStride = n
	s.cross = x
	s.lanes = make([]*Scheduler, 0, n)
	s.lanes = append(s.lanes, s)
	for i := 1; i < n; i++ {
		ln := New()
		ln.laneID = i
		ln.idStride = n
		ln.group = s
		ln.cross = x
		s.lanes = append(s.lanes, ln)
	}
	x.lanes = s.lanes
}

// Lanes returns the number of token domains (1 unless SetLanes configured
// more). Valid on the root and on any lane.
func (s *Scheduler) Lanes() int {
	if s.group != nil {
		return len(s.group.lanes)
	}
	if len(s.lanes) == 0 {
		return 1
	}
	return len(s.lanes)
}

// LaneID reports which lane this scheduler is (0 on the root).
func (s *Scheduler) LaneID() int { return s.laneID }

// laneSched resolves a lane index to its scheduler, wrapping modulo the
// configured lane count. Valid on the root.
func (s *Scheduler) laneSched(lane int) *Scheduler {
	if len(s.lanes) == 0 {
		return s
	}
	lane %= len(s.lanes)
	if lane < 0 {
		lane += len(s.lanes)
	}
	return s.lanes[lane]
}

// LaneSched returns lane i's scheduler (the root itself when single-lane).
func (s *Scheduler) LaneSched(i int) *Scheduler { return s.root().laneSched(i) }

func (s *Scheduler) root() *Scheduler {
	if s.group != nil {
		return s.group
	}
	return s
}

// SpawnLane creates a thread in the given lane's run queue. A cross-lane
// spawn (parent in a different lane, or nil) may only BOOTSTRAP the target
// lane: it panics unless the lane has never held an application thread.
// The restriction is what keeps lane schedules replica-deterministic —
// inserting a thread into a lane that is already executing would race the
// insertion against that lane's token rotation, making the new thread's
// first turn (and every rotation after it) a physically-timed accident.
// Into an empty lane the race is harmless: only the hash-excluded idle
// thread is rotating, so the bootstrap thread's operations are totally
// ordered by its own execution. The bootstrap thread then builds its
// lane's worker pool with ordinary in-lane Spawns, which are scheduled
// operations of the lane itself and therefore fully ordered.
func (s *Scheduler) SpawnLane(parent *Thread, lane int, name string, fn func(*Thread)) *Thread {
	ls := s.root().laneSched(lane)
	if parent == nil || parent.s == ls {
		return ls.Spawn(parent, name, fn)
	}
	if ls.spawnedA.Load() != 0 {
		panic(fmt.Sprintf("dmt: cross-lane spawn %q into non-empty lane %d (cross-lane spawns may only bootstrap a lane; spawn a lane-main thread and build the pool in-lane)", name, lane))
	}
	// The spawn is a scheduled operation in the parent's lane; the child
	// lands at the tail of the target (idle-only) lane.
	parent.GetTurn()
	parent.Admit()
	child := ls.spawn(name, fn, false)
	parent.PutTurn()
	return child
}

// LaneID reports the lane the thread is pinned to.
func (t *Thread) LaneID() int { return t.s.laneID }

// LaneClock returns the logical clock of the thread's own lane (lock-free).
func (t *Thread) LaneClock() uint64 { return t.s.clockA.Load() }

// assertLane panics when a lane-bound synchronization object is used from a
// thread pinned to a different lane — the runtime complement of cranevet's
// laneconsistency analyzer. lane is the object's 1-based binding (0 =
// unbound).
func (t *Thread) assertLane(lane int32, what string) {
	if lane != 0 && int(lane-1) != t.s.laneID {
		panic(fmt.Sprintf("dmt: %s bound to lane %d used from lane %d (thread %q)",
			what, lane-1, t.s.laneID, t.name))
	}
}

// parkedLane reports whether the lane cannot produce a cross-lane operation
// until an external event re-populates it: only the idle thread is
// runnable, no thread is returning from a blocking call, and no soft
// barrier is armed (an armed barrier's timeout re-inserts waiters on idle
// ticks). Read entirely from atomic mirrors — zero cost on the hot path.
func (s *Scheduler) parkedLane() bool {
	return s.runqLenA.Load() == 1 && s.reentryLenA.Load() == 0 &&
		s.activeBarriersA.Load() == 0
}

// stampOf reads lane ln's merge stamp: under a gate, the gate-provided
// consumption position of the lane's committed input stream (see the
// package comment — the only replica-deterministic choice); the app clock
// without one (idle ticks are timing-dependent when ungated). A lane whose
// sequence is still withheld (no application op yet) reports stamp 0:
// cross-lane operations wait for every lane's bootstrap — whether a lane
// has booted when another lane polls is physically timed, so the merge may
// not decide anything based on it. Liveness is bubble-driven: bubbles are
// cloned into every lane, so a lane boots within a bubble cadence of its
// bootstrap spawn and its stamp starts advancing.
func (x *crossDomain) stampOf(ln *Scheduler) uint64 {
	if x.stamp != nil {
		return x.stamp(ln.laneID)
	}
	return ln.appClockA.Load()
}

// turnLocked reports whether a cross op stamped (c, L) is globally next:
// every other lane must have either registered a later-stamped op, advanced
// its stamp past c (all its future cross ops will stamp later — a lane's
// stamp is frozen while one of its threads is between Admit and
// registration, because that thread holds the lane token and nothing else
// in the lane can consume), or — in gateless mode — be parked. Caller
// holds x.mu.
func (x *crossDomain) turnLocked(c uint64, L int) bool {
	for M, ln := range x.lanes {
		if M == L {
			continue
		}
		if x.has[M] {
			cm := x.pending[M]
			if cm < c || (cm == c && M < L) {
				return false
			}
			continue
		}
		if x.stampOf(ln) > c {
			continue
		}
		if x.stamp == nil && ln.parkedLane() {
			continue
		}
		return false
	}
	return true
}

// crossDo executes f as a merge-ordered cross-lane operation. The caller
// holds its lane token (between Admit and PutTurn), so the lane's stamp is
// frozen at the op's value; registration publishes the stamp, the poll
// waits until every lower-stamped op has drained, and f runs under x.mu at
// exactly its merge position. The caller must PutTurn immediately after
// (the tick is what lets other lanes' equal-stamped ops proceed).
func (s *Scheduler) crossDo(t *Thread, f func()) {
	x := s.cross
	L := s.laneID
	c := x.stampOf(s)
	x.mu.Lock()
	x.pending[L], x.has[L] = c, true
	spins := 0
	for !x.turnLocked(c, L) {
		x.mu.Unlock()
		if s.killedA.Load() {
			x.mu.Lock()
			x.has[L] = false
			x.mu.Unlock()
			panic(killedPanic{})
		}
		// Brief yields catch the common case (another lane mid-operation);
		// the timed sleep bounds spin cost while a slow lane's clock
		// catches up (bubble-paced in gated mode).
		spins++
		if spins < 32 && spinnable {
			runtime.Gosched()
		} else {
			time.Sleep(2 * time.Microsecond)
		}
		x.mu.Lock()
	}
	if s.flight != nil {
		// The merge position is linearized here: (stamp, lane) lowest-wins
		// has granted this op its turn, so journal the stamp into the
		// caller's lane ring. The caller still holds its lane token, so the
		// single-writer discipline holds.
		s.flight.Emit(flight.EvMerge, s.clockA.Load(), flight.PosUnchanged, uint64(t.id), c)
	}
	f()
	if x.debug != nil {
		x.debug.mu.Lock()
		x.debug.entries = append(x.debug.entries,
			crossDebugEntry{Lane: L, Thread: t.id, Stamp: c, App: s.appClockA.Load()})
		x.debug.mu.Unlock()
	}
	x.has[L] = false
	x.mu.Unlock()
}

// BindLane pins the mutex to a lane: only threads of that lane may use it,
// and it stays on the in-lane fast path when multiple lanes exist. papi's
// NewMutexLane is the public surface.
func (m *Mutex) BindLane(lane int) { m.lane = int32(lane) + 1 }

// BindLane pins the condition variable to a lane (NewCondLane).
func (c *Cond) BindLane(lane int) { c.lane = int32(lane) + 1 }

// BindLane pins the rwmutex to a lane (NewRWMutexLane).
func (rw *RWMutex) BindLane(lane int) { rw.lane = int32(lane) + 1 }

// crossLock acquires a cross-lane mutex by deterministic trylock-spin: each
// attempt is one scheduled op in the caller's lane whose trylock executes
// at the attempt's merge position. Whether attempt k succeeds is a pure
// function of the merge order, so the retry count — and with it the lane's
// schedule — is deterministic.
func (t *Thread) crossLock(m *Mutex) {
	for {
		t.GetTurn()
		t.Admit()
		var ok bool
		t.s.crossDo(t, func() {
			if !m.locked {
				m.locked = true
				m.owner = t
				ok = true
			}
		})
		if ok {
			t.observe(EvLockAcquire, m)
		}
		t.PutTurn()
		if ok {
			return
		}
	}
}

// crossTryLock is a single merge-ordered trylock attempt.
func (t *Thread) crossTryLock(m *Mutex) bool {
	t.GetTurn()
	t.Admit()
	var ok bool
	t.s.crossDo(t, func() {
		if !m.locked {
			m.locked = true
			m.owner = t
			ok = true
		}
	})
	if ok {
		t.observe(EvLockAcquire, m)
	}
	t.PutTurn()
	return ok
}

// crossUnlock releases a cross-lane mutex at its merge position.
func (t *Thread) crossUnlock(m *Mutex) {
	t.GetTurn()
	t.Admit()
	var bad bool
	t.s.crossDo(t, func() {
		if !m.locked {
			bad = true
			return
		}
		m.locked = false
		m.owner = nil
	})
	if !bad {
		t.observe(EvLockRelease, m)
	}
	t.PutTurn()
	if bad {
		panic("dmt: Unlock of unlocked Mutex")
	}
}

// crossRLock / crossRUnlock / crossWLock / crossWUnlock apply the same
// trylock-spin discipline to reader-writer locks.
func (t *Thread) crossRLock(rw *RWMutex) {
	for {
		t.GetTurn()
		t.Admit()
		var ok bool
		t.s.crossDo(t, func() {
			if !rw.writer {
				rw.readers++
				ok = true
			}
		})
		if ok {
			t.observe(EvRLockAcquire, rw)
		}
		t.PutTurn()
		if ok {
			return
		}
	}
}

func (t *Thread) crossRUnlock(rw *RWMutex) {
	t.GetTurn()
	t.Admit()
	var bad bool
	t.s.crossDo(t, func() {
		if rw.readers <= 0 {
			bad = true
			return
		}
		rw.readers--
	})
	if !bad {
		t.observe(EvRLockRelease, rw)
	}
	t.PutTurn()
	if bad {
		panic("dmt: RUnlock without read lock")
	}
}

func (t *Thread) crossWLock(rw *RWMutex) {
	for {
		t.GetTurn()
		t.Admit()
		var ok bool
		t.s.crossDo(t, func() {
			if !rw.writer && rw.readers == 0 {
				rw.writer = true
				ok = true
			}
		})
		if ok {
			t.observe(EvWLockAcquire, rw)
		}
		t.PutTurn()
		if ok {
			return
		}
	}
}

func (t *Thread) crossWUnlock(rw *RWMutex) {
	t.GetTurn()
	t.Admit()
	var bad bool
	t.s.crossDo(t, func() {
		if !rw.writer {
			bad = true
			return
		}
		rw.writer = false
	})
	if !bad {
		t.observe(EvWLockRelease, rw)
	}
	t.PutTurn()
	if bad {
		panic("dmt: WUnlock without write lock")
	}
}
