package dmt

// Schedule recording and replay: the record-replay application of §6.2
// (CRANE's determinism benefits record-replay systems) and the mechanism
// behind Rex-style "execute-agree-follow" replication (§8), where the
// primary records its thread interleavings and backups replay them.
//
// Recording captures the total order of scheduled operations as a sequence
// of thread ids (application threads only — the idle thread's rotations
// are unobservable padding). Replay drives a second scheduler to execute
// the exact same order: at each step the scripted thread is promoted to
// the run-queue head before the token moves. Because every wake-up that
// makes a thread runnable is itself a scheduled operation, a legal
// recording always names a currently-runnable thread; an impossible script
// (from a diverged program) is detected rather than deadlocking.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Schedule is a recorded total order of application-thread operations.
type Schedule struct {
	mu      sync.Mutex
	threads []int32
	ops     []byte
	clocks  []uint64 // lane clock at each op (divergence diagnostics)
}

// Len returns the number of recorded operations.
func (sc *Schedule) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.threads)
}

// Step returns the (thread, op) at position i.
func (sc *Schedule) Step(i int) (thread int, op byte) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return int(sc.threads[i]), sc.ops[i]
}

// StepClock returns the lane clock recorded at position i.
func (sc *Schedule) StepClock(i int) uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.clocks[i]
}

func (sc *Schedule) append(thread int, op byte, clock uint64) {
	sc.mu.Lock()
	sc.threads = append(sc.threads, int32(thread))
	sc.ops = append(sc.ops, op)
	sc.clocks = append(sc.clocks, clock)
	sc.mu.Unlock()
}

// StartRecording begins capturing the schedule. Call before Start.
// Recording captures one total order, so it requires the single-lane
// configuration (record with 1 lane; SetLanes and recording are mutually
// exclusive).
func (s *Scheduler) StartRecording() *Schedule {
	sc := &Schedule{}
	s.mu.Lock()
	if s.lanes != nil || s.group != nil {
		s.mu.Unlock()
		panic("dmt: StartRecording requires the single-lane configuration")
	}
	s.recording = sc
	s.mu.Unlock()
	return sc
}

// StartLaneRecordings begins capturing one schedule per lane. Call on the
// root scheduler after SetLanes and before Start. Each lane's schedule is
// a deterministic total order on its own; there is no meaningful total
// order *across* lanes (their interleaving is physically timed), which is
// why multi-lane recordings cannot feed SetReplay — they exist for
// cross-replica divergence diagnostics.
func (s *Scheduler) StartLaneRecordings() []*Schedule {
	if s.group != nil {
		panic("dmt: StartLaneRecordings must be called on the root scheduler")
	}
	if s.lanes == nil {
		return []*Schedule{s.StartRecording()}
	}
	recs := make([]*Schedule, len(s.lanes))
	for i, ln := range s.lanes {
		sc := &Schedule{}
		ln.mu.Lock()
		ln.recording = sc
		ln.mu.Unlock()
		recs[i] = sc
	}
	return recs
}

// SetReplay makes the scheduler follow a recorded schedule. Call before
// Start. Thread identity is creation order, so the replaying program must
// spawn threads in the same order as the recorded one (guaranteed when it
// is the same program).
func (s *Scheduler) SetReplay(sc *Schedule) {
	s.mu.Lock()
	if s.lanes != nil || s.group != nil {
		s.mu.Unlock()
		panic("dmt: SetReplay requires the single-lane configuration")
	}
	s.replay = sc
	s.replayPos = 0
	s.mu.Unlock()
}

// ErrReplayDiverged is the panic value delivered when the replaying
// program's behaviour is inconsistent with the script.
var ErrReplayDiverged = errors.New("dmt: replay diverged from recorded schedule")

// recordLocked appends an op to the recording, if enabled. Caller holds
// s.mu. Idle-thread operations are excluded (they are padding whose count
// varies with physical timing).
func (s *Scheduler) recordLocked(t *Thread, op byte) {
	if s.recording != nil && !t.isIdle {
		s.recording.append(t.id, op, s.clock)
	}
}

// replayReorderLocked promotes the scripted next thread to the run-queue
// head. Called after each rotation point while replaying; caller holds
// s.mu. The current head has already been removed or re-queued.
func (s *Scheduler) replayReorderLocked() {
	if s.replay == nil {
		return
	}
	if s.replayPos >= s.replay.Len() {
		return // script exhausted: fall back to round-robin
	}
	want, _ := s.replay.Step(s.replayPos)
	// Find the scripted thread in the run queue and move it to the front.
	for i := 0; i < s.rlen; i++ {
		if s.runqAt(i).id == want {
			s.runqMoveToFrontLocked(i)
			return
		}
	}
	// Not runnable: either it is the idle thread's turn in the original
	// (excluded from scripts) or the program diverged. Let the idle thread
	// run if present — its operations do not consume script positions.
	for i := 0; i < s.rlen; i++ {
		if s.runqAt(i).isIdle {
			s.runqMoveToFrontLocked(i)
			return
		}
	}
	// No idle thread and the scripted thread is blocked: divergence.
	if s.replayErr == nil {
		s.replayErr = fmt.Errorf("%w: step %d wants blocked thread %d",
			ErrReplayDiverged, s.replayPos, want)
		s.killLocked()
	}
}

// replayAdvanceLocked consumes one script position for an application
// thread's operation and verifies it matches. On mismatch the scheduler
// records the divergence and tears itself down (threads unwind through
// their absorbed kill panics); ReplayError reports it. Caller holds s.mu.
func (s *Scheduler) replayAdvanceLocked(t *Thread, op byte) {
	if s.replay == nil || t.isIdle || s.replayErr != nil {
		return
	}
	if s.replayPos >= s.replay.Len() {
		return
	}
	want, wantOp := s.replay.Step(s.replayPos)
	if want != t.id || (wantOp != 0 && wantOp != op) {
		s.replayErr = fmt.Errorf("%w: step %d recorded (thread %d, op %c), got (thread %d, op %c)",
			ErrReplayDiverged, s.replayPos, want, wantOp, t.id, op)
		s.killLocked()
		return
	}
	s.replayPos++
}

// ReplayError returns the divergence error, if replay detected one.
func (s *Scheduler) ReplayError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayErr
}

// ReplayDone reports whether the whole script has been consumed.
func (s *Scheduler) ReplayDone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay != nil && s.replayPos >= s.replay.Len()
}

// WaitReplayDone blocks until the script is consumed or the timeout
// elapses; it reports success.
func (s *Scheduler) WaitReplayDone(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.ReplayDone() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return s.ReplayDone()
}
