package dmt

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// runProgram runs fn threads on a fresh scheduler, waits for all of them to
// finish, kills the scheduler, and returns its final stats.
func runProgram(t *testing.T, bodies []func(*Thread)) Stats {
	t.Helper()
	s := New()
	s.Start()
	done := make(chan struct{})
	go func() {
		threads := make([]*Thread, 0, len(bodies))
		for i, body := range bodies {
			th := s.Spawn(nil, fmt.Sprintf("t%d", i), body)
			threads = append(threads, th)
		}
		// Wait for completion by polling done flags via a joiner thread.
		joiner := s.Spawn(nil, "joiner", func(me *Thread) {
			for _, th := range threads {
				me.Join(th)
			}
		})
		waitDone(s, joiner)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("program did not finish")
	}
	st := s.Stats()
	s.Kill()
	s.Join()
	return st
}

// waitDone polls until th has exited.
func waitDone(s *Scheduler, th *Thread) {
	for {
		s.mu.Lock()
		d := th.done
		s.mu.Unlock()
		if d {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	var m Mutex
	var inside, maxInside int32
	body := func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Lock(&m)
			v := atomic.AddInt32(&inside, 1)
			if v > atomic.LoadInt32(&maxInside) {
				atomic.StoreInt32(&maxInside, v)
			}
			atomic.AddInt32(&inside, -1)
			th.Unlock(&m)
		}
	}
	runProgram(t, []func(*Thread){body, body, body, body})
	if atomic.LoadInt32(&maxInside) != 1 {
		t.Fatalf("max threads inside critical section = %d", maxInside)
	}
}

func TestMutexCountsCorrectly(t *testing.T) {
	var m Mutex
	counter := 0
	body := func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Lock(&m)
			counter++
			th.Unlock(&m)
		}
	}
	runProgram(t, []func(*Thread){body, body, body, body, body, body, body, body})
	if counter != 800 {
		t.Fatalf("counter = %d, want 800", counter)
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	var got []bool
	runProgram(t, []func(*Thread){func(th *Thread) {
		got = append(got, th.TryLock(&m)) // true
		got = append(got, th.TryLock(&m)) // false: already held
		th.Unlock(&m)
		got = append(got, th.TryLock(&m)) // true again
		th.Unlock(&m)
	}})
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryLock results = %v, want %v", got, want)
		}
	}
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	s := New()
	s.Start()
	defer func() { s.Kill(); s.Join() }()
	var m Mutex
	panicked := make(chan bool, 1)
	s.Spawn(nil, "t", func(th *Thread) {
		defer func() { panicked <- recover() != nil }()
		th.Unlock(&m)
	})
	select {
	case p := <-panicked:
		if !p {
			t.Fatal("Unlock of unlocked mutex did not panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	var m Mutex
	var c Cond
	ready := 0
	woken := 0
	waiter := func(th *Thread) {
		th.Lock(&m)
		ready++
		for woken == 0 {
			th.CondWait(&c, &m)
		}
		woken--
		th.Unlock(&m)
	}
	signaler := func(th *Thread) {
		// Wait for both waiters to be asleep.
		for {
			th.Lock(&m)
			r := ready
			th.Unlock(&m)
			if r == 2 {
				break
			}
		}
		th.Lock(&m)
		woken = 2
		th.Unlock(&m)
		th.CondBroadcast(&c)
	}
	runProgram(t, []func(*Thread){waiter, waiter, signaler})
	if woken != 0 {
		t.Fatalf("woken = %d, want 0", woken)
	}
}

func TestCondWaitReleasesMutex(t *testing.T) {
	var m Mutex
	var c Cond
	step := 0
	runProgram(t, []func(*Thread){
		func(th *Thread) {
			th.Lock(&m)
			step = 1
			th.CondWait(&c, &m) // releases m; helper must be able to lock
			if step != 2 {
				t.Errorf("step = %d at wake, want 2", step)
			}
			step = 3
			th.Unlock(&m)
		},
		func(th *Thread) {
			for {
				th.Lock(&m)
				if step == 1 {
					step = 2
					th.Unlock(&m)
					th.CondSignal(&c)
					return
				}
				th.Unlock(&m)
			}
		},
	})
	if step != 3 {
		t.Fatalf("final step = %d, want 3", step)
	}
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	var rw RWMutex
	var readers, writers, maxReaders int32
	var violations int32
	reader := func(th *Thread) {
		for i := 0; i < 30; i++ {
			th.RLock(&rw)
			r := atomic.AddInt32(&readers, 1)
			if r > atomic.LoadInt32(&maxReaders) {
				atomic.StoreInt32(&maxReaders, r)
			}
			if atomic.LoadInt32(&writers) != 0 {
				atomic.AddInt32(&violations, 1)
			}
			atomic.AddInt32(&readers, -1)
			th.RUnlock(&rw)
		}
	}
	writer := func(th *Thread) {
		for i := 0; i < 15; i++ {
			th.WLock(&rw)
			if atomic.AddInt32(&writers, 1) != 1 || atomic.LoadInt32(&readers) != 0 {
				atomic.AddInt32(&violations, 1)
			}
			atomic.AddInt32(&writers, -1)
			th.WUnlock(&rw)
		}
	}
	runProgram(t, []func(*Thread){reader, reader, reader, writer, writer})
	if violations != 0 {
		t.Fatalf("%d rwlock violations", violations)
	}
}

func TestJoinWaitsForExit(t *testing.T) {
	s := New()
	s.Start()
	defer func() { s.Kill(); s.Join() }()
	var finished atomic.Bool
	result := make(chan bool, 1)
	go func() {
		worker := s.Spawn(nil, "worker", func(th *Thread) {
			var m Mutex
			for i := 0; i < 100; i++ {
				th.Lock(&m)
				th.Unlock(&m)
			}
			finished.Store(true)
		})
		s.Spawn(nil, "joiner", func(th *Thread) {
			th.Join(worker)
			result <- finished.Load()
		})
	}()
	select {
	case ok := <-result:
		if !ok {
			t.Fatal("Join returned before worker finished")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestJoinAlreadyExited(t *testing.T) {
	s := New()
	s.Start()
	defer func() { s.Kill(); s.Join() }()
	done := make(chan struct{})
	go func() {
		w := s.Spawn(nil, "w", func(th *Thread) {})
		waitDoneRaw(s, w)
		s.Spawn(nil, "j", func(th *Thread) {
			th.Join(w) // must not hang
			close(done)
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Join on exited thread hung")
	}
}

func waitDoneRaw(s *Scheduler, th *Thread) {
	for {
		s.mu.Lock()
		d := th.done
		s.mu.Unlock()
		if d {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestDeterministicSchedule runs the same racy program twice with random
// physical perturbations and asserts the schedule hash is identical: the
// Parrot guarantee.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) uint64 {
		s := New()
		s.Start()
		rng := rand.New(rand.NewSource(seed))
		var m Mutex
		var c Cond
		shared := 0
		var threads []*Thread
		root := s.Spawn(nil, "root", func(root *Thread) {
			for i := 0; i < 4; i++ {
				jitter := time.Duration(rng.Intn(200)) * time.Microsecond
				th := s.Spawn(root, fmt.Sprintf("w%d", i), func(th *Thread) {
					time.Sleep(jitter) // physical perturbation
					for j := 0; j < 25; j++ {
						th.Lock(&m)
						shared++
						if shared%7 == 0 {
							th.CondBroadcast(&c)
						}
						th.Unlock(&m)
					}
				})
				threads = append(threads, th)
			}
			for _, th := range threads {
				root.Join(th)
			}
		})
		waitDoneRaw(s, root)
		h := s.Stats().ScheduleSum
		s.Kill()
		s.Join()
		return h
	}
	h1 := run(1)
	h2 := run(99) // different physical jitter
	if h1 != h2 {
		t.Fatalf("schedule hashes differ: %x vs %x", h1, h2)
	}
}

func TestClockTicksPerOp(t *testing.T) {
	s := New()
	// Do not Start: no idle thread, so the clock counts only our ops.
	done := make(chan Stats, 1)
	s.Spawn(nil, "t", func(th *Thread) {
		var m Mutex
		for i := 0; i < 10; i++ {
			th.Lock(&m)
			th.Unlock(&m)
		}
		done <- s.Stats()
	})
	st := <-done
	// 20 lock/unlock ops; Exit has not happened yet.
	if st.Clock != 20 {
		t.Fatalf("clock = %d, want 20", st.Clock)
	}
	s.Kill()
	s.Join()
}

func TestSoftBarrierReleasesOnFull(t *testing.T) {
	sb := NewSoftBarrier(3, 1_000_000)
	var concurrent, maxConcurrent int32
	body := func(th *Thread) {
		th.SoftBarrierArrive(sb)
		v := atomic.AddInt32(&concurrent, 1)
		for {
			old := atomic.LoadInt32(&maxConcurrent)
			if v <= old || atomic.CompareAndSwapInt32(&maxConcurrent, old, v) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // lined-up compute
		atomic.AddInt32(&concurrent, -1)
	}
	runProgram(t, []func(*Thread){body, body, body})
	if atomic.LoadInt32(&maxConcurrent) != 3 {
		t.Fatalf("maxConcurrent = %d, want 3 (barrier should line up all three)", maxConcurrent)
	}
}

func TestSoftBarrierTimesOutDeterministically(t *testing.T) {
	// Only 1 of 2 expected threads arrives; a busy sibling ticks the clock
	// past the deadline and the barrier must release the loner.
	sb := NewSoftBarrier(2, 50)
	released := make(chan struct{})
	runProgram(t, []func(*Thread){
		func(th *Thread) {
			th.SoftBarrierArrive(sb)
			close(released)
		},
		func(th *Thread) {
			var m Mutex
			for i := 0; i < 200; i++ { // 400 ticks >> 50
				th.Lock(&m)
				th.Unlock(&m)
				select {
				case <-released:
					return
				default:
				}
			}
			t.Error("barrier never timed out despite clock advance")
		},
	})
}

func TestKillUnblocksWaiters(t *testing.T) {
	s := New()
	s.Start()
	var m Mutex
	entered := make(chan struct{})
	s.Spawn(nil, "holder", func(th *Thread) {
		th.Lock(&m)
		close(entered)
		select {} // never unlocks; blocked forever in compute
	})
	<-entered
	s.Spawn(nil, "waiter", func(th *Thread) {
		th.Lock(&m) // blocks forever until Kill
	})
	time.Sleep(5 * time.Millisecond)
	s.Kill()
	done := make(chan struct{})
	go func() {
		// The holder goroutine never exits (select{}); only check that
		// the waiter and idle unwind without deadlock by killing and
		// verifying Kill is idempotent.
		s.Kill()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Kill deadlocked")
	}
}

func TestSpawnAfterKillReturnsNil(t *testing.T) {
	s := New()
	s.Start()
	s.Kill()
	if th := s.Spawn(nil, "late", func(*Thread) {}); th != nil {
		t.Fatal("Spawn after Kill returned a thread")
	}
	s.Join()
}

func TestBlockingEnterExitRoundTrip(t *testing.T) {
	// Simulates plain Parrot's nondeterministic socket path: a thread
	// leaves the scheduler for a real blocking call and re-enters via the
	// reentry queue drained by other token holders (here: the idle thread).
	s := New()
	s.Start()
	defer func() { s.Kill(); s.Join() }()
	result := make(chan int, 1)
	go func() {
		ch := make(chan int, 1)
		s.Spawn(nil, "io", func(th *Thread) {
			th.BlockingEnter()
			v := <-ch // real blocking op, outside the scheduler
			th.BlockingExit()
			var m Mutex
			th.Lock(&m) // scheduled ops still work after reentry
			th.Unlock(&m)
			result <- v
		})
		time.Sleep(2 * time.Millisecond)
		ch <- 42
	}()
	select {
	case v := <-result:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocking reentry hung")
	}
}

// TestQuickScheduleDeterminism property: for random thread counts, op
// counts, and physical jitter, two runs of the same program produce the
// same schedule hash and the same final shared value.
func TestQuickScheduleDeterminism(t *testing.T) {
	f := func(nThreads, nOps uint8, seed int64) bool {
		nt := int(nThreads)%5 + 2
		no := int(nOps)%30 + 5
		run := func(jseed int64) (uint64, int) {
			s := New()
			s.Start()
			var m Mutex
			shared := 0
			rng := rand.New(rand.NewSource(jseed))
			root := s.Spawn(nil, "root", func(root *Thread) {
				var ths []*Thread
				for i := 0; i < nt; i++ {
					j := time.Duration(rng.Intn(100)) * time.Microsecond
					ths = append(ths, s.Spawn(root, fmt.Sprintf("w%d", i), func(th *Thread) {
						time.Sleep(j)
						for k := 0; k < no; k++ {
							th.Lock(&m)
							shared++
							th.Unlock(&m)
						}
					}))
				}
				for _, th := range ths {
					root.Join(th)
				}
			})
			waitDoneRaw(s, root)
			h := s.Stats().ScheduleSum
			s.Kill()
			s.Join()
			return h, shared
		}
		h1, v1 := run(seed)
		h2, v2 := run(seed + 12345)
		return h1 == h2 && v1 == v2 && v1 == nt*no
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// gateCounter verifies the gate is invoked on every scheduled op.
type gateCounter struct{ n atomic.Int64 }

func (g *gateCounter) CheckAdmit(t *Thread) { g.n.Add(1) }

func TestGateCalledPerOp(t *testing.T) {
	s := New()
	g := &gateCounter{}
	s.SetGate(g)
	done := make(chan struct{})
	s.Spawn(nil, "t", func(th *Thread) {
		var m Mutex
		for i := 0; i < 10; i++ {
			th.Lock(&m)
			th.Unlock(&m)
		}
		close(done)
	})
	<-done
	if g.n.Load() < 20 {
		t.Fatalf("gate called %d times, want >= 20", g.n.Load())
	}
	s.Kill()
	s.Join()
}

func TestFIFOMutexFairness(t *testing.T) {
	// Three waiters blocked on a mutex must acquire it in wait order.
	var m Mutex
	var order []int
	entered := make(chan struct{}, 3)
	holderReleased := make(chan struct{})
	holder := func(th *Thread) {
		th.Lock(&m)
		for i := 0; i < 3; i++ {
			<-entered
		}
		// Give waiters time to actually block inside WaitOn.
		time.Sleep(2 * time.Millisecond)
		th.Unlock(&m)
		close(holderReleased)
	}
	waiter := func(id int) func(*Thread) {
		return func(th *Thread) {
			// Stagger arrival so wait order is 1, 2, 3.
			time.Sleep(time.Duration(id) * 3 * time.Millisecond)
			entered <- struct{}{}
			th.Lock(&m)
			order = append(order, id)
			th.Unlock(&m)
		}
	}
	runProgram(t, []func(*Thread){holder, waiter(1), waiter(2), waiter(3)})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("acquisition order = %v, want [1 2 3]", order)
	}
}

// TestDistinctCondsDoNotAlias is a regression test: condition variables
// are wait-queue keys by address, and zero-size objects in Go all share
// one address. Two conds must wake independently.
func TestDistinctCondsDoNotAlias(t *testing.T) {
	var m1, m2 Mutex
	var c1, c2 Cond
	if &c1 == &c2 {
		t.Fatal("distinct Conds share an address (zero-size aliasing)")
	}
	var go1, go2 bool
	got := make(chan int, 2)
	runProgram(t, []func(*Thread){
		func(th *Thread) { // waits on c1 for go1
			th.Lock(&m1)
			for !go1 {
				th.CondWait(&c1, &m1)
			}
			th.Unlock(&m1)
			got <- 1
		},
		func(th *Thread) { // waits on c2 for go2
			th.Lock(&m2)
			for !go2 {
				th.CondWait(&c2, &m2)
			}
			th.Unlock(&m2)
			got <- 2
		},
		func(th *Thread) {
			// With aliased conds, the c1 signal may wake the c2 waiter,
			// which re-checks go2, re-waits, and strands the c1 waiter.
			th.Lock(&m1)
			go1 = true
			th.Unlock(&m1)
			th.CondSignal(&c1)
			th.Lock(&m2)
			go2 = true
			th.Unlock(&m2)
			th.CondSignal(&c2)
		},
	})
	if len(got) != 2 {
		t.Fatalf("%d waiters woke", len(got))
	}
}
