package dmt

import "testing"

// TestTokenHandoffAllocFree pins the fast path's allocation-free
// guarantee: an uncontended GetTurn/PutTurn round trip — the floor every
// scheduled operation pays — must not allocate.
func TestTokenHandoffAllocFree(t *testing.T) {
	s := New()
	done := make(chan struct{})
	var perOp float64
	s.Spawn(nil, "handoff", func(th *Thread) {
		perOp = testing.AllocsPerRun(500, func() {
			th.GetTurn()
			th.PutTurn()
		})
		close(done)
	})
	<-done
	s.Kill()
	s.Join()
	if perOp != 0 {
		t.Errorf("token handoff: %v allocs/op, want 0", perOp)
	}
}

// TestWaitSignalAllocFree pins the intrusive wait queues' guarantee: a
// full wait/signal ping-pong — SignalKey, WaitOn, and the token handoffs
// between two threads — must not allocate. The peer loops until Kill
// unwinds it, so both sides of every measured iteration run the same
// allocation-free path.
func TestWaitSignalAllocFree(t *testing.T) {
	s := New()
	ka, kb := new(Cond), new(Cond)
	done := make(chan struct{})
	var perOp float64
	s.Spawn(nil, "pinger", func(th *Thread) {
		perOp = testing.AllocsPerRun(200, func() {
			th.GetTurn()
			th.SignalKey(kb)
			th.WaitOn(ka)
			th.PutTurn()
		})
		// Release the peer's final WaitOn so it parks on kb, not mid-op.
		th.GetTurn()
		th.SignalKey(kb)
		th.PutTurn()
		close(done)
	})
	s.Spawn(nil, "ponger", func(th *Thread) {
		for {
			th.GetTurn()
			th.SignalKey(ka)
			th.WaitOn(kb)
			th.PutTurn()
		}
	})
	<-done
	s.Kill()
	s.Join()
	if perOp != 0 {
		t.Errorf("wait/signal ping-pong: %v allocs/op, want 0", perOp)
	}
}
