package dmt

// Observation support: the REPFRAME application of the paper (§6.2) runs
// dynamic analysis tools on backup replicas, exploiting that every replica
// sees the same deterministic execution. The scheduler exposes the stream
// of synchronization events to an observer, invoked by the token holder —
// so observation order equals the deterministic schedule order, and an
// analysis enabled on one backup observes exactly the execution the
// primary ran.

// EventKind discriminates observed synchronization events.
type EventKind uint8

// Observable event kinds.
const (
	EvLockAcquire EventKind = iota + 1
	EvLockRelease
	EvRLockAcquire
	EvRLockRelease
	EvWLockAcquire
	EvWLockRelease
	EvCondWait
	EvCondSignal
	EvCondBroadcast
	EvThreadExit
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	names := [...]string{"", "LockAcquire", "LockRelease", "RLockAcquire",
		"RLockRelease", "WLockAcquire", "WLockRelease", "CondWait",
		"CondSignal", "CondBroadcast", "ThreadExit"}
	if int(k) < len(names) {
		return names[k]
	}
	return "EventKind(?)"
}

// Event is one observed synchronization operation.
type Event struct {
	Kind   EventKind
	Thread int    // deterministic thread id
	Name   string // thread debug name
	Object any    // the synchronization object (mutex, rwmutex, cond)
	Clock  uint64 // logical clock of the thread's lane at the event
	Lane   int    // lane the event occurred in (0 unless SetLanes configured more)
}

// Observer receives events in deterministic schedule order. It is called
// with the token held: implementations must be fast and must not call back
// into the scheduler.
type Observer func(Event)

// SetObserver installs an observer. Pass nil to disable. Must be called
// before Start.
func (s *Scheduler) SetObserver(o Observer) { s.observer = o }

// observe emits an event if an observer is installed. Called by the token
// holder.
func (t *Thread) observe(kind EventKind, obj any) {
	s := t.s
	if s.observer == nil {
		return
	}
	s.observer(Event{Kind: kind, Thread: t.id, Name: t.name, Object: obj,
		Clock: s.clockA.Load(), Lane: s.laneID})
}
