package dmt

// Wait queues, fast-path edition. Parrot's wait() moves the caller onto a
// per-key FIFO; the original implementation kept a map[any][]*Thread, which
// costs an interface-key hash, a slice header, and a re-append on every
// wait/signal — all on the hot path of every contended mutex. This file
// replaces it with intrusive FIFO lists threaded through Thread.wnext,
// indexed by a small open-addressing table whose slots are recycled when a
// queue empties: zero allocations on wait/signal/broadcast and O(1)
// dequeue. All of it is manipulated only under s.mu by the token holder, so
// FIFO order — and therefore the deterministic schedule — is exactly the
// order threads called WaitOn, same as the map-of-slices it replaces.
//
// Keys. The table is keyed by a scalar (tag, value) pair instead of an
// interface so lookups never hash an interface header or allocate to box a
// key. Scheduler-owned key types (Mutex, RWMutex, Cond, SoftBarrier) carry
// a lazily assigned nonzero id; join keys use the target's thread id;
// external key types implement Keyer to supply their own value. Anything
// else falls back to an interning map (one allocation per distinct key
// object, ever — not per wait).

// Keyer lets an external wait-queue key type supply its own scalar
// identity, keeping it on the allocation-free path. DMTWaitKey must return
// equal values iff the keys compare equal under ==, and distinct key types
// used on the same scheduler must namespace their value spaces (e.g. with
// distinct high bits) so they cannot collide.
type Keyer interface{ DMTWaitKey() uint64 }

// waitKey is the scalar identity of a wait-queue key. The zero waitKey
// (tag 0) marks an empty table slot; every real key has a nonzero tag.
type waitKey struct {
	tag uint8
	v   uint64
}

const (
	tagMutex uint8 = iota + 1
	tagRWMutex
	tagCond
	tagBarrier
	tagJoin
	tagExternal
	tagInterned
)

// hash mixes the key into a table index (splitmix64 finalizer). The tag is
// folded in so e.g. join key 3 and mutex id 3 land in different probe
// sequences.
func (k waitKey) hash() uint64 {
	h := k.v ^ uint64(k.tag)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// waitSlot is one open-addressing slot: a key and its intrusive FIFO.
type waitSlot struct {
	key  waitKey
	head *Thread
	tail *Thread
}

// keyOfLocked derives the scalar identity for a wait-queue key, lazily
// assigning ids to scheduler-owned key objects. Caller holds s.mu; the
// token-serialized call order makes lazy assignment deterministic, though
// nothing depends on that (ids never enter the schedule hash).
func (s *Scheduler) keyOfLocked(key any) waitKey {
	switch k := key.(type) {
	case *Mutex:
		if k.wkey == 0 {
			s.keySeq++
			k.wkey = s.keySeq
		}
		return waitKey{tagMutex, k.wkey}
	case *Cond:
		if k.wkey == 0 {
			s.keySeq++
			k.wkey = s.keySeq
		}
		return waitKey{tagCond, k.wkey}
	case *RWMutex:
		if k.wkey == 0 {
			s.keySeq++
			k.wkey = s.keySeq
		}
		return waitKey{tagRWMutex, k.wkey}
	case *SoftBarrier:
		if k.wkey == 0 {
			s.keySeq++
			k.wkey = s.keySeq
		}
		return waitKey{tagBarrier, k.wkey}
	case joinKey:
		return waitKey{tagJoin, uint64(k.t.id)}
	case Keyer:
		return waitKey{tagExternal, k.DMTWaitKey()}
	default:
		if id, ok := s.internKeys[key]; ok {
			return waitKey{tagInterned, id}
		}
		if s.internKeys == nil {
			s.internKeys = make(map[any]uint64)
		}
		s.keySeq++
		s.internKeys[key] = s.keySeq
		return waitKey{tagInterned, s.keySeq}
	}
}

// waitSlotOf returns the slot index for k and whether k is present.
// Linear probing; the table never fills past 3/4.
func (s *Scheduler) waitSlotOf(k waitKey) (int, bool) {
	mask := uint64(len(s.wslots) - 1)
	i := k.hash() & mask
	for {
		sl := &s.wslots[i]
		if sl.key == k {
			return int(i), true
		}
		if sl.key == (waitKey{}) {
			return int(i), false
		}
		i = (i + 1) & mask
	}
}

// waitPushLocked appends t to k's FIFO, creating the queue if needed.
func (s *Scheduler) waitPushLocked(k waitKey, t *Thread) {
	if (s.wused+1)*4 >= len(s.wslots)*3 {
		s.waitGrowLocked()
	}
	i, found := s.waitSlotOf(k)
	sl := &s.wslots[i]
	t.wnext = nil
	if !found {
		sl.key = k
		sl.head, sl.tail = t, t
		s.wused++
		return
	}
	sl.tail.wnext = t
	sl.tail = t
}

// waitPopLocked dequeues the first waiter on k (FIFO), or nil. An emptied
// slot is recycled immediately so the table never accumulates tombstones.
func (s *Scheduler) waitPopLocked(k waitKey) *Thread {
	if s.wused == 0 {
		return nil
	}
	i, found := s.waitSlotOf(k)
	if !found {
		return nil
	}
	sl := &s.wslots[i]
	w := sl.head
	sl.head = w.wnext
	w.wnext = nil
	if sl.head == nil {
		sl.tail = nil
		s.waitDeleteLocked(i)
	}
	return w
}

// waitTakeLocked removes and returns k's whole FIFO (linked by wnext), or
// nil. The caller owns the chain and must clear wnext links as it walks.
func (s *Scheduler) waitTakeLocked(k waitKey) *Thread {
	if s.wused == 0 {
		return nil
	}
	i, found := s.waitSlotOf(k)
	if !found {
		return nil
	}
	h := s.wslots[i].head
	s.wslots[i].head, s.wslots[i].tail = nil, nil
	s.waitDeleteLocked(i)
	return h
}

// waitHasLocked reports whether any thread waits on k.
func (s *Scheduler) waitHasLocked(k waitKey) bool {
	if s.wused == 0 {
		return false
	}
	_, found := s.waitSlotOf(k)
	return found
}

// waitDeleteLocked empties slot i and back-shifts any displaced entries in
// the probe chain so lookups never need tombstones.
func (s *Scheduler) waitDeleteLocked(i int) {
	mask := len(s.wslots) - 1
	s.wslots[i] = waitSlot{}
	s.wused--
	j := i
	for {
		j = (j + 1) & mask
		sl := s.wslots[j]
		if sl.key == (waitKey{}) {
			return
		}
		// sl may move into the hole at i only if its home slot does not lie
		// cyclically inside (i, j] — otherwise moving it would break its own
		// probe chain.
		home := int(sl.key.hash()) & mask
		if (j-home)&mask >= (j-i)&mask {
			s.wslots[i] = sl
			s.wslots[j] = waitSlot{}
			i = j
		}
	}
}

// waitGrowLocked doubles the table. Rare (table size tracks the number of
// *distinct keys with waiters*, which is bounded by the thread count plus
// the live sync objects under contention).
func (s *Scheduler) waitGrowLocked() {
	old := s.wslots
	s.wslots = make([]waitSlot, len(old)*2)
	s.wused = 0
	for _, sl := range old {
		if sl.key == (waitKey{}) {
			continue
		}
		i, _ := s.waitSlotOf(sl.key)
		s.wslots[i] = sl
		s.wused++
	}
}
