package dmt

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"crane/internal/obs"
)

// TestMetricsScrapeDuringHotLoop is the regression test for the
// atomic-counter move: Stats(), Clock(), Killed(), and the obs GaugeFuncs
// read lock-free mirrors, so a /metrics scrape must be safe — and clean
// under -race — while the scheduler is ticking flat out. The mirrors for
// tokenPasses/waits/signals are published at schedule boundaries and every
// 32nd tick, so the test asserts presence and monotonicity, not exact
// mid-run values.
func TestMetricsScrapeDuringHotLoop(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetObs(reg)
	srv, err := obs.StartServer("127.0.0.1:0", reg, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The workload threads loop until Kill unwinds them through the
	// scheduler's own teardown path (killedPanic recovered by Spawn).
	var m Mutex
	var c Cond
	s.Spawn(nil, "spinner", func(th *Thread) {
		for {
			th.GetTurn()
			th.PutTurn()
		}
	})
	s.Spawn(nil, "locker", func(th *Thread) {
		for {
			th.Lock(&m)
			th.CondSignal(&c)
			th.Unlock(&m)
		}
	})
	s.Spawn(nil, "waiter", func(th *Thread) {
		for {
			th.Lock(&m)
			th.CondWait(&c, &m)
			th.Unlock(&m)
		}
	})

	url := "http://" + srv.Addr() + "/metrics"
	var lastClock uint64
	deadline := time.Now().Add(300 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape: status %d", resp.StatusCode)
		}
		for _, name := range []string{"dmt_clock", "dmt_token_passes_total", "dmt_waits_total", "dmt_runq_len"} {
			if !strings.Contains(string(body), name) {
				t.Fatalf("scrape missing %s:\n%s", name, body)
			}
		}
		// The unlocked read paths the gauges use must also be safe to call
		// directly from a foreign goroutine.
		st := s.Stats()
		if st.Clock < lastClock {
			t.Fatalf("clock went backwards: %d -> %d", lastClock, st.Clock)
		}
		lastClock = st.Clock
		_ = s.Clock()
		_ = s.Killed()
		scrapes++
	}
	s.Kill()
	s.Join()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
	if lastClock == 0 {
		t.Fatal("scheduler never ticked during scrapes")
	}
}
