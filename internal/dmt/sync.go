package dmt

// This file implements Parrot's synchronization wrappers (paper Fig. 9):
// mutexes, condition variables, reader-writer locks, and the soft-barrier
// performance hint (§7.4). Every wrapper follows the same shape —
//
//	t.GetTurn(); t.Admit(); <manipulate state, possibly WaitOn>; t.PutTurn()
//
// — so each completed operation is exactly one logical-clock tick, and the
// CRANE gate (Admit) runs at every synchronization, which is what lets
// time-bubble clocks be consumed at a deterministic rate.
//
// All wrapper state (locked flags, reader counts, barrier arrival lists) is
// only ever touched by the token holder, so no additional locking is
// needed: token hand-off through the scheduler mutex provides the
// happens-before edges.

// Mutex is a deterministic mutual-exclusion lock (pthread_mutex_t).
type Mutex struct {
	locked bool
	owner  *Thread
	lane   int32  // 1-based lane binding (lanes.go); 0 = unbound → cross-lane when lanes > 1
	wkey   uint64 // lazily assigned wait-table id (waitq.go); 0 = unassigned
}

// Lock acquires m, blocking deterministically (Fig. 9's try-lock loop:
// never block while holding the token).
func (t *Thread) Lock(m *Mutex) {
	if t.s.cross != nil {
		if m.lane == 0 {
			t.crossLock(m)
			return
		}
		t.assertLane(m.lane, "Mutex")
	}
	t.GetTurn()
	t.Admit()
	for m.locked {
		t.WaitOn(m)
	}
	m.locked = true
	m.owner = t
	t.observe(EvLockAcquire, m)
	t.PutTurn()
}

// TryLock attempts to acquire m without blocking; it reports success.
func (t *Thread) TryLock(m *Mutex) bool {
	if t.s.cross != nil {
		if m.lane == 0 {
			return t.crossTryLock(m)
		}
		t.assertLane(m.lane, "Mutex")
	}
	t.GetTurn()
	t.Admit()
	ok := !m.locked
	if ok {
		m.locked = true
		m.owner = t
		t.observe(EvLockAcquire, m)
	}
	t.PutTurn()
	return ok
}

// Unlock releases m and wakes the first deterministic waiter.
func (t *Thread) Unlock(m *Mutex) {
	if t.s.cross != nil {
		if m.lane == 0 {
			t.crossUnlock(m)
			return
		}
		t.assertLane(m.lane, "Mutex")
	}
	t.GetTurn()
	t.Admit()
	if !m.locked {
		t.PutTurn()
		panic("dmt: Unlock of unlocked Mutex")
	}
	m.locked = false
	m.owner = nil
	t.observe(EvLockRelease, m)
	t.SignalKey(m)
	t.PutTurn()
}

// Cond is a deterministic condition variable (pthread_cond_t). The
// associated mutex is passed to Wait, as in pthreads.
//
// The non-zero size is load-bearing independently of the wait-table id:
// Go gives every zero-size allocation the same address, so an empty struct
// here would make distinct heap-allocated condition variables compare
// equal and alias onto one wait queue.
type Cond struct {
	lane int32  // 1-based lane binding (lanes.go); 0 = unbound
	wkey uint64 // lazily assigned wait-table id (waitq.go); 0 = unassigned
}

// CondWait atomically releases m and blocks on c; on wake-up it
// re-acquires m before returning (pthread_cond_wait).
//
// Condition variables do not span lanes: wait-table keys are per-lane, so
// a cond used from two lanes would alias onto unrelated wait queues. When
// lanes exist, both the cond and its mutex must be lane-bound (papi's
// NewCond binds to the creating thread's lane by default).
func (t *Thread) CondWait(c *Cond, m *Mutex) {
	if t.s.cross != nil {
		if c.lane == 0 || m.lane == 0 {
			panic("dmt: CondWait requires lane-bound Cond and Mutex when lanes > 1")
		}
		t.assertLane(c.lane, "Cond")
		t.assertLane(m.lane, "Mutex")
	}
	t.GetTurn()
	t.Admit()
	if !m.locked || m.owner != t {
		t.PutTurn()
		panic("dmt: CondWait without holding the mutex")
	}
	m.locked = false
	m.owner = nil
	t.observe(EvLockRelease, m)
	t.observe(EvCondWait, c)
	t.SignalKey(m)
	t.WaitOn(c)
	for m.locked {
		t.WaitOn(m)
	}
	m.locked = true
	m.owner = t
	t.observe(EvLockAcquire, m)
	t.PutTurn()
}

// CondSignal wakes one waiter on c (pthread_cond_signal).
func (t *Thread) CondSignal(c *Cond) {
	if t.s.cross != nil {
		t.assertLane(c.lane, "Cond")
	}
	t.GetTurn()
	t.Admit()
	t.observe(EvCondSignal, c)
	t.SignalKey(c)
	t.PutTurn()
}

// CondBroadcast wakes all waiters on c (pthread_cond_broadcast).
func (t *Thread) CondBroadcast(c *Cond) {
	if t.s.cross != nil {
		t.assertLane(c.lane, "Cond")
	}
	t.GetTurn()
	t.Admit()
	t.observe(EvCondBroadcast, c)
	t.BroadcastKey(c)
	t.PutTurn()
}

// RWMutex is a deterministic reader-writer lock (pthread_rwlock_t),
// writer-preferring like glibc's default is not guaranteed; this one is
// arrival-ordered through the deterministic wait queue.
type RWMutex struct {
	readers int
	writer  bool
	lane    int32  // 1-based lane binding (lanes.go); 0 = unbound → cross-lane when lanes > 1
	wkey    uint64 // lazily assigned wait-table id (waitq.go); 0 = unassigned
}

// RLock acquires a read lock.
func (t *Thread) RLock(rw *RWMutex) {
	if t.s.cross != nil {
		if rw.lane == 0 {
			t.crossRLock(rw)
			return
		}
		t.assertLane(rw.lane, "RWMutex")
	}
	t.GetTurn()
	t.Admit()
	for rw.writer {
		t.WaitOn(rw)
	}
	rw.readers++
	t.observe(EvRLockAcquire, rw)
	t.PutTurn()
}

// RUnlock releases a read lock.
func (t *Thread) RUnlock(rw *RWMutex) {
	if t.s.cross != nil {
		if rw.lane == 0 {
			t.crossRUnlock(rw)
			return
		}
		t.assertLane(rw.lane, "RWMutex")
	}
	t.GetTurn()
	t.Admit()
	if rw.readers <= 0 {
		t.PutTurn()
		panic("dmt: RUnlock without read lock")
	}
	rw.readers--
	t.observe(EvRLockRelease, rw)
	if rw.readers == 0 {
		t.BroadcastKey(rw)
	}
	t.PutTurn()
}

// WLock acquires the write lock.
func (t *Thread) WLock(rw *RWMutex) {
	if t.s.cross != nil {
		if rw.lane == 0 {
			t.crossWLock(rw)
			return
		}
		t.assertLane(rw.lane, "RWMutex")
	}
	t.GetTurn()
	t.Admit()
	for rw.writer || rw.readers > 0 {
		t.WaitOn(rw)
	}
	rw.writer = true
	t.observe(EvWLockAcquire, rw)
	t.PutTurn()
}

// WUnlock releases the write lock and wakes all waiters (they re-check,
// so a mix of pending readers and writers resolves deterministically).
func (t *Thread) WUnlock(rw *RWMutex) {
	if t.s.cross != nil {
		if rw.lane == 0 {
			t.crossWUnlock(rw)
			return
		}
		t.assertLane(rw.lane, "RWMutex")
	}
	t.GetTurn()
	t.Admit()
	if !rw.writer {
		t.PutTurn()
		panic("dmt: WUnlock without write lock")
	}
	rw.writer = false
	t.observe(EvWLockRelease, rw)
	t.BroadcastKey(rw)
	t.PutTurn()
}

// SoftBarrier is Parrot's performance hint (§7.4): it lines up N threads'
// computations so the round-robin schedule runs them in parallel instead
// of accumulating token-parking stalls. It is "soft": arrival beyond a
// deterministic timeout (measured in logical clock ticks, so it is the
// same on every replica) releases the group anyway, and the hint can be
// ignored entirely without affecting program logic.
type SoftBarrier struct {
	n        int
	timeout  uint64 // ticks
	arrived  int
	deadline uint64 // clock value at which the current group releases
	lane     int32  // 1-based lane binding, set by the first arriver; 0 = unbound
	wkey     uint64 // lazily assigned wait-table id (waitq.go); 0 = unassigned
}

// NewSoftBarrier creates a soft barrier for groups of n threads with the
// given timeout in logical clock ticks.
func NewSoftBarrier(n int, timeoutTicks uint64) *SoftBarrier {
	if n < 1 {
		n = 1
	}
	if timeoutTicks == 0 {
		timeoutTicks = 1
	}
	return &SoftBarrier{n: n, timeout: timeoutTicks}
}

// SoftBarrierArrive announces that the calling thread is about to start a
// lined-up computation. It blocks until n threads arrive or the barrier
// times out deterministically.
func (t *Thread) SoftBarrierArrive(sb *SoftBarrier) {
	t.GetTurn()
	t.Admit()
	s := t.s
	if s.cross != nil {
		// A barrier lines up threads of one lane; it binds to its first
		// arriver's lane (apps register one barrier instance per lane).
		if sb.lane == 0 {
			sb.lane = int32(s.laneID) + 1
		} else {
			t.assertLane(sb.lane, "SoftBarrier")
		}
	}
	s.mu.Lock()
	if sb.arrived == 0 {
		sb.deadline = s.clock + sb.timeout
		// Register for tick-driven timeout release.
		s.barriers = append(s.barriers, sb)
		s.activeBarriersA.Add(1)
	}
	sb.arrived++
	full := sb.arrived >= sb.n
	s.mu.Unlock()
	if full {
		s.mu.Lock()
		s.resetBarrierLocked(sb)
		s.mu.Unlock()
		t.BroadcastKey(sb)
		t.PutTurn()
		return
	}
	// Wait until the group fills or the deadline tick passes.
	t.WaitOn(sb)
	t.PutTurn()
}

// resetBarrierLocked clears the barrier for its next group and removes it
// from the active list. Caller holds s.mu.
func (s *Scheduler) resetBarrierLocked(sb *SoftBarrier) {
	sb.arrived = 0
	for i, b := range s.barriers {
		if b == sb {
			s.barriers = append(s.barriers[:i], s.barriers[i+1:]...)
			s.activeBarriersA.Add(-1)
			break
		}
	}
}

// releaseExpiredBarriersLocked releases any barrier whose deadline tick
// has passed. Called by the token holder on every tick, so the release
// point in the global schedule is deterministic. Caller holds s.mu.
//
// Release runs inside the current op's critical section, before the ticking
// thread leaves the head slot — so when the ticking op is itself a WaitOn
// on the expiring barrier, the waiter being released is the current head
// and runqInsertLocked transiently duplicates it (see WaitOn).
func (s *Scheduler) releaseExpiredBarriersLocked() {
	if len(s.barriers) == 0 {
		return
	}
	for i := 0; i < len(s.barriers); {
		sb := s.barriers[i]
		if sb.arrived > 0 && s.clock >= sb.deadline {
			sb.arrived = 0
			s.barriers = append(s.barriers[:i], s.barriers[i+1:]...)
			s.activeBarriersA.Add(-1)
			n := 0
			for w := s.waitTakeLocked(s.keyOfLocked(sb)); w != nil; {
				next := w.wnext
				w.wnext = nil
				s.runqInsertLocked(w, 1+n)
				n++
				w = next
			}
			if n > 0 {
				s.signals += uint64(n)
				s.signalsA.Store(s.signals)
			}
			continue
		}
		i++
	}
}
