package dmt

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkTokenPass measures the cost of one scheduled operation
// (get_turn + put_turn) with a single thread — the floor of Parrot's
// synchronization overhead.
func BenchmarkTokenPass(b *testing.B) {
	s := New()
	done := make(chan struct{})
	s.Spawn(nil, "bench", func(th *Thread) {
		var m Mutex
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Lock(&m)
			th.Unlock(&m)
		}
		close(done)
	})
	<-done
	b.StopTimer()
	s.Kill()
	s.Join()
}

// BenchmarkContendedMutexDMT measures deterministic lock handoff under
// contention (4 threads), the round-robin rotation cost.
func BenchmarkContendedMutexDMT(b *testing.B) {
	s := New()
	var m Mutex
	const threads = 4
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ResetTimer()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		s.Spawn(nil, fmt.Sprintf("t%d", i), func(th *Thread) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				th.Lock(&m)
				th.Unlock(&m)
			}
		})
	}
	wg.Wait()
	b.StopTimer()
	s.Kill()
	s.Join()
}

// BenchmarkContendedMutexPthreads is the nondeterministic comparison
// point: the same contention pattern on sync.Mutex (the "Pthreads
// runtime" column of the Parrot comparison).
func BenchmarkContendedMutexPthreads(b *testing.B) {
	var m sync.Mutex
	const threads = 4
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ResetTimer()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.Lock()
				//lint:ignore SA2001 intentional empty critical section
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

// BenchmarkCondSignalWake measures a full deterministic wait/signal
// round trip between two threads.
func BenchmarkCondSignalWake(b *testing.B) {
	s := New()
	var m Mutex
	var c Cond
	turn := 0 // 0: waiter's turn to sleep, 1: waiter may proceed
	var wg sync.WaitGroup
	wg.Add(2)
	b.ResetTimer()
	s.Spawn(nil, "waiter", func(th *Thread) {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			th.Lock(&m)
			for turn == 0 {
				th.CondWait(&c, &m)
			}
			turn = 0
			th.Unlock(&m)
			th.CondSignal(&c)
		}
	})
	s.Spawn(nil, "signaler", func(th *Thread) {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			th.Lock(&m)
			turn = 1
			th.Unlock(&m)
			th.CondSignal(&c)
			th.Lock(&m)
			for turn == 1 {
				th.CondWait(&c, &m)
			}
			th.Unlock(&m)
		}
	})
	wg.Wait()
	b.StopTimer()
	s.Kill()
	s.Join()
}

// BenchmarkSpawnJoin measures thread creation + join through the
// scheduler.
func BenchmarkSpawnJoin(b *testing.B) {
	s := New()
	done := make(chan struct{})
	s.Spawn(nil, "root", func(root *Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			child := s.Spawn(root, "child", func(*Thread) {})
			root.Join(child)
		}
		close(done)
	})
	<-done
	b.StopTimer()
	s.Kill()
	s.Join()
}
