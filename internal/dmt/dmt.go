// Package dmt reimplements the Parrot deterministic-multithreading runtime
// (Cui et al., SOSP'13) that CRANE uses as its DMT scheduler (§3.1 of the
// CRANE paper).
//
// The scheduler serializes all synchronization operations with a global
// token passed round-robin over a run queue. Only the thread at the head of
// the run queue may perform a synchronization operation and manipulate the
// run/wait queues (the paper's key invariant). put_turn rotates the caller
// to the tail and wakes the *queue-next* thread — even if that thread is
// mid-computation and will not reach its next synchronization for a while.
// The token then parks on it. This parking is load-bearing twice over:
//
//   - Determinism: the global order of synchronization operations is the
//     rotation order of the queue, independent of physical timing.
//   - Performance: misaligned compute chunks accumulate parking stalls,
//     which is exactly the pathology Parrot's soft-barrier hints fix
//     (reproduced by Figure 15's benchmark).
//
// A logical clock ticks once per scheduled operation. An internal idle
// thread keeps the queue non-empty (and the clock ticking) when all
// application threads block, mirroring §3.1. CRANE plugs in through the
// Gate interface: every wrapper calls the gate after acquiring the turn
// (paper Fig. 9 line 3 / Fig. 10), which is where time-bubble consumption
// and deterministic socket admission happen.
//
// # Fast path
//
// The token moves by direct handoff: the holder finishes its rotation under
// s.mu, then publishes the grant with a single atomic store into the next
// head's Thread.tok, poking the wake channel only if that thread has
// already parked. GetTurn consumes a pending grant with one atomic
// exchange-shaped pair (load, store) and otherwise spins briefly before
// parking, so a successor that is already at (or about to reach) its next
// synchronization never takes the futex-style channel path at all. The
// store/load pairing with Thread.parked is Dekker-style: the granter stores
// tok then loads parked, the waiter stores parked then loads tok, so one of
// them always observes the other and a parked thread cannot miss a grant.
// None of this changes *which* thread runs next — head selection still
// happens under s.mu, in exactly the order the original unlock→poke→wake→
// re-lock→re-check implementation produced — only how the chosen thread
// learns about it.
//
// The run queue is a power-of-two ring buffer: rotation is O(1) with no
// allocation (the previous append(runq[1:], t) reallocated on every single
// PutTurn), and positional wake-up insertion keeps byte-for-byte the slice
// semantics the determinism tests were recorded against. Wait queues are
// intrusive per-key FIFOs (waitq.go). Counters are mirrored into atomics at
// each write so Stats/Clock/Killed/RunQueueLen and the obs gauge scrapes
// never touch s.mu.
package dmt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crane/internal/obs"
	"crane/internal/obs/flight"
)

// Gate is CRANE's hook into the scheduler (the check_add_timebubble
// function of Fig. 10). CheckAdmit is invoked by the token holder at the
// start of every scheduled operation. Implementations may block (e.g.
// while the Paxos sequence is empty), consume time-bubble clocks, and
// signal threads blocked on socket keys via t.SignalKey.
type Gate interface {
	CheckAdmit(t *Thread)
}

// Stats is a snapshot of scheduler counters. Counters are read from atomic
// mirrors without taking the scheduler lock, so a snapshot taken while the
// scheduler runs is monotonic but not a single atomic cut — fine for
// metrics scrapes; exact cuts are available at quiescence.
type Stats struct {
	Clock       uint64 // logical clock: one tick per scheduled op
	TokenPasses uint64 // put_turn rotations
	Waits       uint64 // wait() calls (thread moved to a wait queue)
	Signals     uint64 // signal/broadcast wake-ups delivered
	Spawned     uint64 // threads created (excluding the idle thread)
	ScheduleSum uint64 // FNV-1a hash of the (thread, op) schedule so far
	// Epoch counts speculation rollbacks that restored from a checkpoint
	// boundary instead of replaying from genesis. A genesis replay
	// reproduces the boot schedule bit for bit, so epoch 0 keeps
	// cross-replica ScheduleSum comparisons exact; a boundary restore
	// skips the pre-checkpoint schedule, so the epoch is folded into
	// ScheduleSum — fingerprints then compare post-repair state instead of
	// accidentally (never) matching a replica that executed from boot.
	Epoch uint64
}

// Scheduler is a Parrot-style round-robin DMT scheduler.
type Scheduler struct {
	// mu guards the run queue, wait table, reentry queue, barriers, and
	// record/replay state. The token holder takes it once per scheduled
	// operation; nothing else takes it on the hot path (stats, clock and
	// gauge reads are all served by the atomic mirrors below).
	mu sync.Mutex

	// Run queue: a power-of-two ring. runq[rhead] is the token holder;
	// rotation and head removal are O(1), positional insertion preserves
	// the exact semantics of the slice implementation it replaced
	// (including transiently holding a thread twice when a barrier
	// self-release races its own WaitOn — see releaseExpiredBarriersLocked).
	runq  []*Thread
	rhead int
	rlen  int

	// Wait table (waitq.go): open-addressing slots of intrusive FIFOs.
	wslots     []waitSlot
	wused      int
	keySeq     uint64
	internKeys map[any]uint64

	// reentry holds threads returning from *real* (nondeterministic)
	// blocking socket calls in plain-Parrot mode; the token holder drains
	// it into the run queue at every rotation (§3.1 "socket queue").
	// Intrusive FIFO through Thread.wnext (a thread is never in a wait
	// queue and the reentry queue at once).
	reentryHead *Thread
	reentryTail *Thread

	// Counters: plain fields written only by the token holder under mu,
	// each mirrored into an atomic at every write so readers never contend
	// with the token. (Mirror stores are plain MOVs on amd64 — cheaper than
	// atomic adds, and single-writer-correct under mu.)
	clock       uint64
	tokenPasses uint64
	waits       uint64
	signals     uint64
	spawned     uint64
	schedHash   uint64

	clockA       atomic.Uint64
	tokenPassesA atomic.Uint64
	waitsA       atomic.Uint64
	signalsA     atomic.Uint64
	spawnedA     atomic.Uint64
	schedHashA   atomic.Uint64
	runqLenA     atomic.Int64
	reentryLenA  atomic.Int64

	// Lane state (lanes.go). On a single-lane scheduler laneID is 0,
	// idStride 1, and group/lanes/cross are nil — every lane branch below
	// is a predicted-not-taken compare, keeping the 1-lane hot path (and
	// schedule) identical to the pre-lane implementation.
	laneID   int
	idStride int
	group    *Scheduler   // root scheduler when this is a child lane
	lanes    []*Scheduler // on the root: all lanes including itself
	cross    *crossDomain // shared merge domain; nil when single-lane
	// appClock counts non-idle ticks: the gateless merge stamp (idle ticks
	// are timing-dependent without a gate pacing them). Maintained only
	// when cross != nil. activeBarriersA counts armed soft barriers (see
	// parkedLane).
	appClock        uint64
	appClockA       atomic.Uint64
	activeBarriersA atomic.Int64

	// turnWait measures the GetTurn park path (thread parked waiting for
	// the token). Installed by SetObs before Start, nil when off; the idle
	// thread's parking is excluded (it parks by design whenever any
	// application thread runs), and so is time spent in the pre-park spin.
	turnWait *obs.Histogram

	// flight is this lane's divergence-forensics journal. Written only by
	// the token holder under mu (same single-writer discipline as the
	// counters), through the preallocated Emit path; nil when recording is
	// off. Idle-thread ticks are excluded exactly as they are from
	// schedHash, so the journaled stream is replica-deterministic.
	flight *flight.Journal

	gate      Gate
	observer  Observer
	barriers  []*SoftBarrier
	recording *Schedule
	replay    *Schedule
	replayPos int
	replayErr error

	// epochA is the speculation epoch (see Stats.Epoch); set once before
	// Start on a scheduler rebuilt from a checkpoint boundary.
	epochA atomic.Uint64

	nextID  int
	killedA atomic.Bool
	killCh  chan struct{}
	wg      sync.WaitGroup
	idle    *Thread
	started bool

	// IdleSleep is how long the idle thread sleeps per rotation when it is
	// the only runnable thread and nothing needs exhausting. Keeps a quiet
	// server from burning a core. Zero means 50µs.
	IdleSleep time.Duration
}

// New creates a scheduler. Call Start before spawning application threads.
func New() *Scheduler {
	s := &Scheduler{
		runq:      make([]*Thread, 8),
		wslots:    make([]waitSlot, 32),
		killCh:    make(chan struct{}),
		schedHash: 14695981039346656037, // FNV-1a offset basis
		idStride:  1,
	}
	s.schedHashA.Store(s.schedHash)
	return s
}

// SetGate installs the CRANE admission gate. Must be called before Start.
func (s *Scheduler) SetGate(g Gate) { s.gate = g }

// SetEpoch marks the scheduler as executing from a speculation-rollback
// checkpoint boundary (see Stats.Epoch). Call before Start, on the root.
func (s *Scheduler) SetEpoch(e uint64) { s.epochA.Store(e) }

// SetFlight installs this lane's flight-recorder journal. Must be called
// before Start (on each lane scheduler when lanes are configured); nil
// disables journaling.
func (s *Scheduler) SetFlight(j *flight.Journal) { s.flight = j }

// SetObs registers scheduler instruments into reg: the turn-wait histogram
// and gauges over the running counters. Must be called before Start; a nil
// reg is a no-op. The gauges read atomic mirrors, so a /metrics scrape
// never contends with the scheduler token.
func (s *Scheduler) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.turnWait = reg.Histogram("dmt_turn_wait_seconds",
		"time an application thread parks waiting for the scheduler token")
	reg.GaugeFunc("dmt_clock", "logical clock (one tick per scheduled op)", func() float64 {
		return float64(s.ClockFast())
	})
	reg.GaugeFunc("dmt_token_passes_total", "put_turn rotations", func() float64 {
		return float64(s.Stats().TokenPasses)
	})
	reg.GaugeFunc("dmt_waits_total", "wait() calls", func() float64 {
		return float64(s.Stats().Waits)
	})
	reg.GaugeFunc("dmt_signals_total", "signal/broadcast wake-ups delivered", func() float64 {
		return float64(s.Stats().Signals)
	})
	reg.GaugeFunc("dmt_threads_spawned_total", "application threads created", func() float64 {
		return float64(s.Stats().Spawned)
	})
	reg.GaugeFunc("dmt_runq_len", "current run-queue length", func() float64 {
		return float64(s.RunQueueLen())
	})
	reg.GaugeFunc("dmt_epoch", "speculation epoch (boundary-restore rebuilds)", func() float64 {
		return float64(s.epochA.Load())
	})
	if len(s.lanes) > 1 {
		// Per-lane instruments (call SetLanes before SetObs): token-handoff
		// counters, occupancy gauges, and turn-wait histograms, one set per
		// lane. Each lane records its turn waits into its own histogram
		// (including lane 0, whose per-lane name supersedes the aggregate
		// registered above — that one stays for single-lane deployments).
		for i, ln := range s.lanes {
			ln := ln
			//crane:obsreg-ok one registration per lane, names are lane-unique
			ln.turnWait = reg.Histogram(fmt.Sprintf("dmt_lane%d_turn_wait_seconds", i),
				fmt.Sprintf("time a lane-%d thread parks waiting for its lane token", i))
			//crane:obsreg-ok one registration per lane, names are lane-unique
			reg.GaugeFunc(fmt.Sprintf("dmt_lane%d_clock", i),
				fmt.Sprintf("lane %d logical clock", i), func() float64 {
					return float64(ln.clockA.Load())
				})
			//crane:obsreg-ok one registration per lane, names are lane-unique
			reg.GaugeFunc(fmt.Sprintf("dmt_lane%d_token_passes_total", i),
				fmt.Sprintf("lane %d put_turn rotations (token handoffs)", i), func() float64 {
					return float64(ln.tokenPassesA.Load())
				})
			//crane:obsreg-ok one registration per lane, names are lane-unique
			reg.GaugeFunc(fmt.Sprintf("dmt_lane%d_runq_len", i),
				fmt.Sprintf("lane %d run-queue occupancy", i), func() float64 {
					return float64(ln.runqLenA.Load())
				})
		}
	}
}

// ClockFast returns the logical clock from atomic mirrors, without taking
// any scheduler lock. Safe from any goroutine, including callbacks that
// already hold other locks. Summed over lanes on a multi-lane root.
func (s *Scheduler) ClockFast() uint64 {
	if len(s.lanes) > 1 {
		var c uint64
		for _, ln := range s.lanes {
			c += ln.clockA.Load()
		}
		return c
	}
	return s.clockA.Load()
}

// Start launches the internal idle thread — one per lane when SetLanes
// configured more than one. It must be called exactly once, on the root.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("dmt: Start called twice")
	}
	s.started = true
	s.mu.Unlock()
	if len(s.lanes) > 1 {
		// Gate, observer, and idle pacing are installed on the root before
		// Start; fan them out to every lane. Observers may now be invoked
		// concurrently (one token holder per lane), so serialize them.
		if s.gate != nil {
			sg, ok := s.gate.(LaneStampGate)
			if !ok {
				panic("dmt: a gate on a multi-lane scheduler must implement LaneStampGate (cross-lane merge stamps come from the committed input stream)")
			}
			s.cross.stamp = sg.StampLane
		}
		if s.observer != nil {
			var omu sync.Mutex
			inner := s.observer
			s.observer = func(e Event) {
				omu.Lock()
				inner(e)
				omu.Unlock()
			}
		}
		for _, ln := range s.lanes[1:] {
			ln.gate = s.gate
			ln.observer = s.observer
			ln.IdleSleep = s.IdleSleep
			ln.started = true
		}
	}
	s.idle = s.spawn("idle", func(t *Thread) { s.idleLoop(t) }, true)
	if len(s.lanes) > 1 {
		for _, ln := range s.lanes[1:] {
			ln := ln
			ln.idle = ln.spawn("idle", func(t *Thread) { ln.idleLoop(t) }, true)
		}
	}
}

// killedPanic is the sentinel thrown through application threads when the
// scheduler is killed; the Spawn wrapper recovers it.
type killedPanic struct{}

// Kill tears the scheduler down: every thread blocked in a scheduled
// operation unwinds. Threads blocked in real I/O (plain-Parrot mode) must
// be unblocked by closing their sockets. Wait for full teardown with Join.
func (s *Scheduler) Kill() {
	if len(s.lanes) > 1 {
		for _, ln := range s.lanes {
			ln.mu.Lock()
			ln.killLocked()
			ln.mu.Unlock()
		}
		return
	}
	s.mu.Lock()
	s.killLocked()
	s.mu.Unlock()
}

// killLocked tears the scheduler down; caller holds s.mu. Pokes are
// non-blocking sends, safe under the lock.
func (s *Scheduler) killLocked() {
	if !s.killedA.CompareAndSwap(false, true) {
		return
	}
	s.pubLocked()
	close(s.killCh)
	for i := 0; i < s.rlen; i++ {
		s.runqAt(i).poke()
	}
	for i := range s.wslots {
		for w := s.wslots[i].head; w != nil; w = w.wnext {
			w.poke()
		}
	}
	for w := s.reentryHead; w != nil; w = w.wnext {
		w.poke()
	}
}

// Join blocks until every thread (including the idle thread) has exited.
func (s *Scheduler) Join() { s.wg.Wait() }

// Killed reports whether Kill has been called.
func (s *Scheduler) Killed() bool { return s.killedA.Load() }

// Stats returns a snapshot of the counters (lock-free; see Stats type doc).
// On a multi-lane root the counters are summed over lanes and ScheduleSum
// is an FNV-1a fold of the per-lane schedule hashes in lane order.
func (s *Scheduler) Stats() Stats {
	var agg Stats
	if len(s.lanes) > 1 {
		h := uint64(14695981039346656037)
		for _, ln := range s.lanes {
			st := ln.laneStats()
			agg.Clock += st.Clock
			agg.TokenPasses += st.TokenPasses
			agg.Waits += st.Waits
			agg.Signals += st.Signals
			agg.Spawned += st.Spawned
			h ^= st.ScheduleSum
			h *= 1099511628211
		}
		agg.ScheduleSum = h
	} else {
		agg = s.laneStats()
	}
	if e := s.epochA.Load(); e != 0 {
		// A boundary-restore rebuild skipped the pre-checkpoint schedule:
		// fold the epoch in so its hash never silently equals a boot-replay
		// hash (Stats.Epoch doc).
		agg.Epoch = e
		agg.ScheduleSum = (agg.ScheduleSum ^ e) * 1099511628211
	}
	return agg
}

// laneStats snapshots this lane's own counters.
func (s *Scheduler) laneStats() Stats {
	return Stats{
		Clock:       s.clockA.Load(),
		TokenPasses: s.tokenPassesA.Load(),
		Waits:       s.waitsA.Load(),
		Signals:     s.signalsA.Load(),
		Spawned:     s.spawnedA.Load(),
		ScheduleSum: s.schedHashA.Load(),
	}
}

// LaneStats snapshots one lane's counters (lane 0 on a single-lane
// scheduler).
func (s *Scheduler) LaneStats(lane int) Stats {
	return s.root().laneSched(lane).laneStats()
}

// Clock returns the current logical clock (lock-free; summed over lanes on
// a multi-lane root).
func (s *Scheduler) Clock() uint64 {
	if len(s.lanes) > 1 {
		var c uint64
		for _, ln := range s.lanes {
			c += ln.clockA.Load()
		}
		return c
	}
	return s.clockA.Load()
}

// RunQueueLen returns the current run-queue length (diagnostics,
// lock-free; summed over lanes on a multi-lane root).
func (s *Scheduler) RunQueueLen() int {
	if len(s.lanes) > 1 {
		var n int64
		for _, ln := range s.lanes {
			n += ln.runqLenA.Load()
		}
		return int(n)
	}
	return int(s.runqLenA.Load())
}

// Thread is a scheduled thread. All scheduled operations are methods on
// the thread so the scheduler knows the caller's identity.
type Thread struct {
	s      *Scheduler
	id     int
	name   string
	wake   chan struct{}
	done   bool // set during exit, read under s.mu
	isIdle bool

	// wnext links the intrusive wait-queue / reentry FIFO this thread is
	// blocked on, if any. Guarded by s.mu. A thread is in at most one such
	// queue at a time (WaitOn blocks until the thread is signaled out).
	wnext *Thread

	// tok is the direct-handoff mailbox: 1 means the token has been granted
	// to this thread and its next GetTurn returns after consuming it.
	// Written by the granter (atomic store) and the consumer (store 0).
	tok atomic.Uint32
	// parked is 1 while the thread is (about to be) blocked on its wake
	// channel inside GetTurn. Granters poke the channel only when set.
	parked atomic.Uint32
	// selfTok marks a token granted by the thread's own PutTurn (it was the
	// only runnable thread, so the token comes straight back). Only ever
	// read and written by the owning thread, hence plain.
	selfTok bool
}

// ID returns the deterministic thread id (creation order).
func (t *Thread) ID() int { return t.id }

// Finished reports whether the thread has exited.
func (t *Thread) Finished() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.done
}

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// IsIdle reports whether this is a scheduler-internal idle thread. Gates
// use it to tell pacing rotations from application operations (a lane's
// sequence is withheld until its first application thread is admitted).
func (t *Thread) IsIdle() bool { return t.isIdle }

func (t *Thread) poke() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// grant hands the token to t: one atomic store plus a channel poke only if
// t has parked (or is committed to parking — see the Dekker note on the
// package doc). Safe with or without s.mu held; at most one grant is ever
// outstanding per thread because only the head is granted and a thread
// re-enters head position only after consuming the previous grant.
func (s *Scheduler) grant(t *Thread) {
	t.tok.Store(1)
	if t.parked.Load() != 0 {
		t.poke()
	}
}

// Run-queue ring primitives. All require s.mu.

func (s *Scheduler) runqAt(i int) *Thread {
	return s.runq[(s.rhead+i)&(len(s.runq)-1)]
}

func (s *Scheduler) runqSet(i int, t *Thread) {
	s.runq[(s.rhead+i)&(len(s.runq)-1)] = t
}

func (s *Scheduler) runqGrowLocked() {
	old := s.runq
	grown := make([]*Thread, len(old)*2)
	for i := 0; i < s.rlen; i++ {
		grown[i] = old[(s.rhead+i)&(len(old)-1)]
	}
	s.runq = grown
	s.rhead = 0
}

func (s *Scheduler) runqPushBackLocked(t *Thread) {
	if s.rlen == len(s.runq) {
		s.runqGrowLocked()
	}
	s.runqSet(s.rlen, t)
	s.rlen++
	s.runqLenA.Store(int64(s.rlen))
}

func (s *Scheduler) runqPopFrontLocked() {
	s.runq[s.rhead] = nil
	s.rhead = (s.rhead + 1) & (len(s.runq) - 1)
	s.rlen--
	s.runqLenA.Store(int64(s.rlen))
}

// runqRotateLocked moves the head to the tail in O(1) — the whole "rotate
// caller to tail" step of put_turn, which previously reallocated the run
// queue on every single pass.
func (s *Scheduler) runqRotateLocked() {
	t := s.runq[s.rhead]
	target := (s.rhead + s.rlen) & (len(s.runq) - 1)
	s.runq[target] = t
	if target != s.rhead {
		s.runq[s.rhead] = nil
	}
	s.rhead = (s.rhead + 1) & (len(s.runq) - 1)
}

// runqInsertLocked inserts w at position pos (>=1) in the run queue,
// clamped to the tail — identical clamping to the slice version. Inserting
// into an empty queue makes w the head and grants it the token.
func (s *Scheduler) runqInsertLocked(w *Thread, pos int) {
	if pos > s.rlen {
		pos = s.rlen
	}
	if pos < 1 {
		pos = 1
	}
	if s.rlen == 0 {
		s.runqPushBackLocked(w)
		s.grant(w)
		return
	}
	if s.rlen == len(s.runq) {
		s.runqGrowLocked()
	}
	for i := s.rlen; i > pos; i-- {
		s.runqSet(i, s.runqAt(i-1))
	}
	s.runqSet(pos, w)
	s.rlen++
	s.runqLenA.Store(int64(s.rlen))
}

// runqMoveToFrontLocked promotes position i to the head (replay reorder).
func (s *Scheduler) runqMoveToFrontLocked(i int) {
	if i == 0 {
		return
	}
	th := s.runqAt(i)
	for j := i; j > 0; j-- {
		s.runqSet(j, s.runqAt(j-1))
	}
	s.runq[s.rhead] = th
}

// Spawn creates a thread running fn and schedules it at the tail of the
// run queue — the parent's lane's queue when parent is non-nil (children
// inherit their parent's lane), the receiver's otherwise. Spawn is itself
// a scheduled operation when called from a scheduled thread (parent); the
// root call (from ordinary Go code, parent nil-turn) appends directly.
// fn's panics from Kill are absorbed.
func (s *Scheduler) Spawn(parent *Thread, name string, fn func(*Thread)) *Thread {
	if parent != nil {
		// The child inherits the parent's lane: the insertion happens while
		// the parent holds its own lane's token, so the child's run-queue
		// position is a scheduled operation of that lane — deterministic.
		// (Inserting into any OTHER lane's queue from here would race that
		// lane's rotation; that is why cross-lane spawns go through
		// SpawnLane's bootstrap-only path instead.)
		parent.GetTurn()
		parent.Admit()
		t := parent.s.spawn(name, fn, false)
		parent.PutTurn()
		return t
	}
	return s.spawn(name, fn, false)
}

func (s *Scheduler) spawn(name string, fn func(*Thread), isIdle bool) *Thread {
	s.mu.Lock()
	if s.killedA.Load() {
		s.mu.Unlock()
		return nil
	}
	// Thread ids are striped by lane (id = perLaneSeq*stride + laneID):
	// deterministic per lane, globally unique, and — with stride 1 on a
	// single-lane scheduler — identical to the pre-lane creation order.
	t := &Thread{s: s, id: s.nextID*s.idStride + s.laneID, name: name,
		wake: make(chan struct{}, 1), isIdle: isIdle}
	s.nextID++
	if !isIdle {
		s.spawned++
		s.spawnedA.Store(s.spawned)
	}
	wasEmpty := s.rlen == 0
	s.runqPushBackLocked(t)
	s.mu.Unlock()
	if wasEmpty {
		s.grant(t)
	}
	wg := &s.wg
	if s.group != nil {
		wg = &s.group.wg // one Join covers every lane
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					panic(r)
				}
			}
		}()
		fn(t)
		t.Exit()
	}()
	return t
}

// tokenSpin bounds the pre-park spin in GetTurn: long enough to catch a
// grant from a holder mid-rotation (a few hundred ns away), short enough
// that a thread with no imminent grant parks quickly.
const tokenSpin = 128

// spinnable gates the pre-park spin: on a single-P runtime the granter
// cannot make progress while we spin, so park immediately.
var spinnable = runtime.GOMAXPROCS(0) > 1

// GetTurn blocks until t holds the global token. If the token has already
// been handed to t, it returns after a single atomic exchange; otherwise it
// spins briefly for an imminent grant and then parks on the wake channel.
func (t *Thread) GetTurn() {
	s := t.s
	if t.selfTok {
		t.selfTok = false
		if s.killedA.Load() {
			panic(killedPanic{})
		}
		return
	}
	if t.tok.Load() != 0 {
		t.tok.Store(0)
		if s.killedA.Load() {
			panic(killedPanic{})
		}
		return
	}
	if s.killedA.Load() {
		panic(killedPanic{})
	}
	if spinnable {
		for i := 0; i < tokenSpin; i++ {
			if t.tok.Load() != 0 {
				t.tok.Store(0)
				if s.killedA.Load() {
					panic(killedPanic{})
				}
				return
			}
			if i&15 == 15 {
				runtime.Gosched()
			}
		}
	}
	// Park path. Timed only here, so the handoff fast path costs nothing
	// with instrumentation off or on.
	var waitStart time.Time
	if s.turnWait != nil && !t.isIdle {
		waitStart = time.Now()
	}
	t.parked.Store(1)
	for t.tok.Load() == 0 {
		if s.killedA.Load() {
			t.parked.Store(0)
			panic(killedPanic{})
		}
		select {
		case <-t.wake:
		case <-s.killCh:
		}
	}
	t.parked.Store(0)
	t.tok.Store(0)
	if s.killedA.Load() {
		panic(killedPanic{})
	}
	if !waitStart.IsZero() {
		s.turnWait.Since(waitStart)
	}
}

// Admit invokes the CRANE gate, if any. Wrappers call it right after
// GetTurn (Fig. 9 line 3).
func (t *Thread) Admit() {
	if g := t.s.gate; g != nil {
		g.CheckAdmit(t)
	}
}

// PutTurn completes a scheduled operation: ticks the logical clock,
// releases expired soft barriers, drains the reentry queue, rotates the
// caller to the tail, and hands the token to the new head.
func (t *Thread) PutTurn() {
	s := t.s
	s.mu.Lock()
	if s.killedA.Load() {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	if s.rlen == 0 || s.runq[s.rhead] != t {
		s.mu.Unlock()
		panic(fmt.Sprintf("dmt: PutTurn by non-head thread %d (%s)", t.id, t.name))
	}
	s.tickLocked(t, 'P')
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runqRotateLocked()
	s.replayReorderLocked()
	s.tokenPasses++
	head := s.runq[s.rhead]
	if head == t {
		// Sole runnable thread: the token comes straight back. A plain
		// flag only ever touched by t itself replaces the atomic grant.
		t.selfTok = true
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.grant(head)
}

// tickLocked advances the logical clock and folds (thread, op) into the
// schedule hash, which tests use to assert cross-run determinism. The idle
// thread's ticks are excluded: in plain-Parrot mode its solo rotations are
// timing-dependent (which is harmless — nothing runnable can observe them),
// while application threads' operations are always in deterministic
// rotation order.
//
// Only the clock mirror is published per tick (ClockFast must be exact —
// the seq consumption hook and observers stamp events with it). The other
// mirrors are refreshed by pubLocked at schedule boundaries and every 32nd
// tick: each atomic store is a full fence on amd64, and three of them per
// token pass was the single largest cost of the handoff fast path.
func (s *Scheduler) tickLocked(t *Thread, op byte) {
	s.clock++
	s.clockA.Store(s.clock)
	s.recordLocked(t, op)
	s.replayAdvanceLocked(t, op)
	if t.isIdle {
		s.pubLocked()
		return
	}
	if s.cross != nil {
		s.appClock++
		s.appClockA.Store(s.appClock)
	}
	h := s.schedHash
	h ^= uint64(t.id)
	h *= 1099511628211
	h ^= uint64(op)
	h *= 1099511628211
	s.schedHash = h
	if s.flight != nil {
		s.flight.Emit(flight.EvTick, s.clock, flight.PosUnchanged, uint64(t.id), uint64(op))
	}
	if s.clock&31 == 0 {
		s.pubLocked()
	}
}

// pubLocked refreshes the lock-free counter mirrors from the plain fields.
// Called with s.mu held: on every idle-thread tick (so a quiet scheduler's
// metrics are always current), every 32nd tick of a busy one, and at every
// boundary after which a thread stops producing ticks (WaitOn, Exit,
// BlockingEnter, Kill). A reader that observes a thread parked therefore
// observes every operation that parked it; mid-run gauge scrapes may lag by
// a bounded handful of ops, which metrics tolerate by design.
func (s *Scheduler) pubLocked() {
	s.schedHashA.Store(s.schedHash)
	s.tokenPassesA.Store(s.tokenPasses)
	s.waitsA.Store(s.waits)
	s.signalsA.Store(s.signals)
}

// WaitOn moves the caller (which must hold the token) to the wait queue of
// key, wakes the next head, and blocks until another thread signals the key
// — at which point the caller has been re-inserted near the queue head and
// this call returns with the token held again.
func (t *Thread) WaitOn(key any) {
	s := t.s
	s.mu.Lock()
	if s.killedA.Load() {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	if s.rlen == 0 || s.runq[s.rhead] != t {
		s.mu.Unlock()
		panic(fmt.Sprintf("dmt: WaitOn by non-head thread %d (%s)", t.id, t.name))
	}
	s.waits++
	s.tickLocked(t, 'W')
	wk := s.keyOfLocked(key)
	if s.flight != nil {
		s.flight.Emit(flight.EvWait, s.clock, flight.PosUnchanged,
			uint64(t.id)<<8|uint64(wk.tag), wk.v)
	}
	s.waitPushLocked(wk, t)
	s.drainReentryLocked()
	// A barrier expiring on this very tick may pop t right back out of the
	// wait queue and re-insert it after the head — the head being t itself,
	// still at the front until the removal below. The ring then transiently
	// holds t twice and the front removal keeps the re-inserted copy,
	// exactly as the slice implementation did.
	s.releaseExpiredBarriersLocked()
	s.runqPopFrontLocked()
	s.replayReorderLocked()
	s.tokenPasses++
	s.pubLocked() // t stops ticking until signaled: publish its last op
	var head *Thread
	if s.rlen > 0 {
		head = s.runq[s.rhead]
	}
	s.mu.Unlock()
	if head != nil {
		s.grant(head)
	}
	t.GetTurn() // blocks until signaled back in and granted
}

// SignalKey wakes the first waiter on key, inserting it right after the
// caller in the run queue (so it becomes the head once the caller rotates,
// matching "when a thread returns from wait() it becomes the head").
// It reports whether a waiter was woken. Caller must hold the token.
func (t *Thread) SignalKey(key any) bool {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.signalOneLocked(key)
}

func (s *Scheduler) signalOneLocked(key any) bool {
	wk := s.keyOfLocked(key)
	w := s.waitPopLocked(wk)
	if w == nil {
		return false
	}
	s.runqInsertLocked(w, 1)
	s.signals++
	if s.flight != nil {
		s.flight.Emit(flight.EvSignal, s.clock, flight.PosUnchanged,
			uint64(w.id)<<8|uint64(wk.tag), wk.v)
	}
	return true
}

// BroadcastKey wakes every waiter on key in FIFO order. Caller must hold
// the token. Returns the number of threads woken.
func (t *Thread) BroadcastKey(key any) int {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	wk := s.keyOfLocked(key)
	for w := s.waitTakeLocked(wk); w != nil; {
		next := w.wnext
		w.wnext = nil
		s.runqInsertLocked(w, 1+n)
		if s.flight != nil {
			s.flight.Emit(flight.EvSignal, s.clock, flight.PosUnchanged,
				uint64(w.id)<<8|uint64(wk.tag), wk.v)
		}
		n++
		w = next
	}
	if n > 0 {
		s.signals += uint64(n)
	}
	return n
}

// HasWaiter reports whether any thread waits on key. Caller must hold the
// token (used by the CRANE gate to decide whether to deliver a signal).
func (t *Thread) HasWaiter(key any) bool {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waitHasLocked(s.keyOfLocked(key))
}

// Exit is the scheduled operation that removes the caller from the
// scheduler and wakes joiners. Spawn calls it automatically when fn
// returns; threads must not use t afterwards.
func (t *Thread) Exit() {
	t.GetTurn()
	t.observe(EvThreadExit, nil)
	s := t.s
	s.mu.Lock()
	if s.rlen == 0 || s.runq[s.rhead] != t {
		s.mu.Unlock()
		panic("dmt: Exit by non-head thread")
	}
	s.tickLocked(t, 'X')
	t.done = true
	// Wake joiners.
	n := 0
	for w := s.waitTakeLocked(waitKey{tagJoin, uint64(t.id)}); w != nil; {
		next := w.wnext
		w.wnext = nil
		s.runqInsertLocked(w, 1+n)
		n++
		w = next
	}
	if n > 0 {
		s.signals += uint64(n)
	}
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runqPopFrontLocked()
	s.replayReorderLocked()
	s.pubLocked() // t is gone: its counters must be visible to Stats readers
	var head *Thread
	if s.rlen > 0 {
		head = s.runq[s.rhead]
	}
	s.mu.Unlock()
	if head != nil {
		s.grant(head)
	}
}

type joinKey struct{ t *Thread }

// Join blocks the caller until target exits. A scheduled operation. Join
// does not span lanes: a cross-lane join would couple two lanes' schedules
// through a wait queue; apps join threads from their own lane (or simply
// let per-lane pools run until Kill).
func (t *Thread) Join(target *Thread) {
	if target.s != t.s {
		panic(fmt.Sprintf("dmt: cross-lane Join (thread %q in lane %d joining %q in lane %d)",
			t.name, t.s.laneID, target.name, target.s.laneID))
	}
	t.GetTurn()
	t.Admit()
	s := t.s
	s.mu.Lock()
	done := target.done
	s.mu.Unlock()
	if !done {
		t.WaitOn(joinKey{target})
	}
	t.PutTurn()
}

// BlockingEnter prepares a *nondeterministic* real blocking call (plain
// Parrot's socket path, §3.1): the caller leaves the run queue and the
// token moves on. Pair with BlockingExit after the real call returns.
func (t *Thread) BlockingEnter() {
	t.GetTurn()
	t.Admit()
	s := t.s
	s.mu.Lock()
	if s.killedA.Load() {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	s.tickLocked(t, 'B')
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runqPopFrontLocked()
	s.replayReorderLocked()
	s.tokenPasses++
	s.pubLocked() // t leaves the scheduled world: publish its last op
	var head *Thread
	if s.rlen > 0 {
		head = s.runq[s.rhead]
	}
	s.mu.Unlock()
	if head != nil {
		s.grant(head)
	}
}

// BlockingExit re-enters the scheduler after a real blocking call: the
// caller joins the reentry queue (nondeterministic order, by design — this
// is precisely the nondeterminism CRANE's gate removes) and blocks until a
// token holder drains it into the run queue and the token reaches it.
func (t *Thread) BlockingExit() {
	s := t.s
	s.mu.Lock()
	if s.killedA.Load() {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	t.wnext = nil
	if s.reentryTail == nil {
		s.reentryHead, s.reentryTail = t, t
	} else {
		s.reentryTail.wnext = t
		s.reentryTail = t
	}
	s.reentryLenA.Add(1)
	s.mu.Unlock()
	t.GetTurn()
	t.PutTurn()
}

func (s *Scheduler) drainReentryLocked() {
	if s.reentryHead == nil {
		return
	}
	for w := s.reentryHead; w != nil; {
		next := w.wnext
		w.wnext = nil
		s.runqPushBackLocked(w)
		w = next
	}
	s.reentryHead, s.reentryTail = nil, nil
	s.reentryLenA.Store(0)
}

// idleLoop keeps the run queue non-empty and the clock ticking (§3.1).
// With a CRANE gate installed, Admit is where the idle thread blocks on an
// empty Paxos sequence, requests time bubbles, exhausts bubble clocks, and
// admits socket calls — the paper's modified idle thread (§3.2).
func (s *Scheduler) idleLoop(t *Thread) {
	sleep := s.IdleSleep
	if sleep == 0 {
		sleep = 50 * time.Microsecond
	}
	busySpins := 0
	for {
		t.GetTurn()
		t.Admit()
		if s.killedA.Load() {
			panic(killedPanic{})
		}
		alone := s.runqLenA.Load() == 1 && s.reentryLenA.Load() == 0
		busy := s.gate != nil && s.gateBusy()
		t.PutTurn()
		if alone && !busy {
			busySpins = 0
			// Nothing to exhaust and nobody runnable: back off so an
			// idle server does not burn a core. Clock ticks here are
			// unobservable (no runnable thread can interleave). Plain
			// Sleep, not time.After: the latter allocates a timer and a
			// channel per rotation, which at this frequency becomes a
			// timer-heap and GC storm that starves everything else.
			time.Sleep(sleep)
		} else {
			// Busy rotation (e.g. exhausting a time bubble): yield so
			// runnable application threads and the consensus stack get
			// CPU even on low-core machines, with a periodic real sleep
			// so sustained exhaustion cannot starve timer goroutines.
			busySpins++
			if busySpins%64 == 0 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
	}
}

// BusyGate is implemented by gates that can indicate pending work (e.g. a
// time bubble being exhausted) so the idle thread spins instead of
// sleeping.
type BusyGate interface{ Busy() bool }

// LaneBusyGate refines BusyGate for multi-lane schedulers: lane L's idle
// thread asks about lane L's pending work only, so one lane exhausting a
// bubble does not keep every other lane's idle thread spinning.
type LaneBusyGate interface{ BusyLane(lane int) bool }

// LaneStampGate must be implemented by any gate installed on a multi-lane
// scheduler. StampLane returns lane L's cross-lane merge stamp: a monotone
// count of the lane's position in its committed input stream (CRANE's gate
// reports bubble clocks plus consumed client calls — see crane's
// gate.StampLane for why that is the only replica-deterministic choice).
// It is read lock-free by other lanes while they poll for their merge turn.
type LaneStampGate interface{ StampLane(lane int) uint64 }

func (s *Scheduler) gateBusy() bool {
	if b, ok := s.gate.(LaneBusyGate); ok {
		return b.BusyLane(s.laneID)
	}
	if b, ok := s.gate.(BusyGate); ok {
		return b.Busy()
	}
	return false
}
