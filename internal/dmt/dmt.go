// Package dmt reimplements the Parrot deterministic-multithreading runtime
// (Cui et al., SOSP'13) that CRANE uses as its DMT scheduler (§3.1 of the
// CRANE paper).
//
// The scheduler serializes all synchronization operations with a global
// token passed round-robin over a run queue. Only the thread at the head of
// the run queue may perform a synchronization operation and manipulate the
// run/wait queues (the paper's key invariant). put_turn rotates the caller
// to the tail and wakes the *queue-next* thread — even if that thread is
// mid-computation and will not reach its next synchronization for a while.
// The token then parks on it. This parking is load-bearing twice over:
//
//   - Determinism: the global order of synchronization operations is the
//     rotation order of the queue, independent of physical timing.
//   - Performance: misaligned compute chunks accumulate parking stalls,
//     which is exactly the pathology Parrot's soft-barrier hints fix
//     (reproduced by Figure 15's benchmark).
//
// A logical clock ticks once per scheduled operation. An internal idle
// thread keeps the queue non-empty (and the clock ticking) when all
// application threads block, mirroring §3.1. CRANE plugs in through the
// Gate interface: every wrapper calls the gate after acquiring the turn
// (paper Fig. 9 line 3 / Fig. 10), which is where time-bubble consumption
// and deterministic socket admission happen.
package dmt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crane/internal/obs"
)

// Gate is CRANE's hook into the scheduler (the check_add_timebubble
// function of Fig. 10). CheckAdmit is invoked by the token holder at the
// start of every scheduled operation. Implementations may block (e.g.
// while the Paxos sequence is empty), consume time-bubble clocks, and
// signal threads blocked on socket keys via t.SignalKey.
type Gate interface {
	CheckAdmit(t *Thread)
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	Clock       uint64 // logical clock: one tick per scheduled op
	TokenPasses uint64 // put_turn rotations
	Waits       uint64 // wait() calls (thread moved to a wait queue)
	Signals     uint64 // signal/broadcast wake-ups delivered
	Spawned     uint64 // threads created (excluding the idle thread)
	ScheduleSum uint64 // FNV-1a hash of the (thread, op) schedule so far
}

// Scheduler is a Parrot-style round-robin DMT scheduler.
type Scheduler struct {
	mu    sync.Mutex
	runq  []*Thread
	waitq map[any][]*Thread
	// reentry holds threads returning from *real* (nondeterministic)
	// blocking socket calls in plain-Parrot mode; the token holder drains
	// it into the run queue at every rotation (§3.1 "socket queue").
	reentry []*Thread

	clock       uint64
	tokenPasses uint64
	waits       uint64
	signals     uint64
	spawned     uint64
	schedHash   uint64

	// clockA mirrors clock for lock-free reads (ClockFast): consumers
	// holding unrelated locks (e.g. the seq consumption hook) can read the
	// logical clock without risking lock-order inversions against s.mu.
	clockA atomic.Uint64
	// turnWait measures the GetTurn slow path (thread parked waiting for
	// the token). Installed by SetObs before Start, nil when off; the idle
	// thread's parking is excluded (it parks by design whenever any
	// application thread runs).
	turnWait *obs.Histogram

	gate      Gate
	observer  Observer
	barriers  []*SoftBarrier
	recording *Schedule
	replay    *Schedule
	replayPos int
	replayErr error

	nextID  int
	killed  bool
	killCh  chan struct{}
	wg      sync.WaitGroup
	idle    *Thread
	started bool

	// IdleSleep is how long the idle thread sleeps per rotation when it is
	// the only runnable thread and nothing needs exhausting. Keeps a quiet
	// server from burning a core. Zero means 20µs.
	IdleSleep time.Duration
}

// New creates a scheduler. Call Start before spawning application threads.
func New() *Scheduler {
	return &Scheduler{
		waitq:     make(map[any][]*Thread),
		killCh:    make(chan struct{}),
		schedHash: 14695981039346656037, // FNV-1a offset basis
	}
}

// SetGate installs the CRANE admission gate. Must be called before Start.
func (s *Scheduler) SetGate(g Gate) { s.gate = g }

// SetObs registers scheduler instruments into reg: the turn-wait histogram
// and gauges over the running counters. Must be called before Start; a nil
// reg is a no-op.
func (s *Scheduler) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.turnWait = reg.Histogram("dmt_turn_wait_seconds",
		"time an application thread parks waiting for the scheduler token")
	reg.GaugeFunc("dmt_clock", "logical clock (one tick per scheduled op)", func() float64 {
		return float64(s.ClockFast())
	})
	reg.GaugeFunc("dmt_token_passes_total", "put_turn rotations", func() float64 {
		return float64(s.Stats().TokenPasses)
	})
	reg.GaugeFunc("dmt_waits_total", "wait() calls", func() float64 {
		return float64(s.Stats().Waits)
	})
	reg.GaugeFunc("dmt_signals_total", "signal/broadcast wake-ups delivered", func() float64 {
		return float64(s.Stats().Signals)
	})
	reg.GaugeFunc("dmt_threads_spawned_total", "application threads created", func() float64 {
		return float64(s.Stats().Spawned)
	})
	reg.GaugeFunc("dmt_runq_len", "current run-queue length", func() float64 {
		return float64(s.RunQueueLen())
	})
}

// ClockFast returns the logical clock from an atomic mirror, without taking
// the scheduler lock. Safe from any goroutine, including callbacks that
// already hold other locks.
func (s *Scheduler) ClockFast() uint64 { return s.clockA.Load() }

// Start launches the internal idle thread. It must be called exactly once.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("dmt: Start called twice")
	}
	s.started = true
	s.mu.Unlock()
	s.idle = s.spawn("idle", func(t *Thread) { s.idleLoop(t) }, true)
}

// killedPanic is the sentinel thrown through application threads when the
// scheduler is killed; the Spawn wrapper recovers it.
type killedPanic struct{}

// Kill tears the scheduler down: every thread blocked in a scheduled
// operation unwinds. Threads blocked in real I/O (plain-Parrot mode) must
// be unblocked by closing their sockets. Wait for full teardown with Join.
func (s *Scheduler) Kill() {
	s.mu.Lock()
	s.killLocked()
	s.mu.Unlock()
}

// killLocked tears the scheduler down; caller holds s.mu. Pokes are
// non-blocking sends, safe under the lock.
func (s *Scheduler) killLocked() {
	if s.killed {
		return
	}
	s.killed = true
	close(s.killCh)
	for _, t := range s.runq {
		t.poke()
	}
	for _, q := range s.waitq {
		for _, t := range q {
			t.poke()
		}
	}
	for _, t := range s.reentry {
		t.poke()
	}
}

// Join blocks until every thread (including the idle thread) has exited.
func (s *Scheduler) Join() { s.wg.Wait() }

// Killed reports whether Kill has been called.
func (s *Scheduler) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Clock:       s.clock,
		TokenPasses: s.tokenPasses,
		Waits:       s.waits,
		Signals:     s.signals,
		Spawned:     s.spawned,
		ScheduleSum: s.schedHash,
	}
}

// Clock returns the current logical clock.
func (s *Scheduler) Clock() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Thread is a scheduled thread. All scheduled operations are methods on
// the thread so the scheduler knows the caller's identity.
type Thread struct {
	s      *Scheduler
	id     int
	name   string
	wake   chan struct{}
	done   bool // set during exit, read under s.mu
	isIdle bool
}

// ID returns the deterministic thread id (creation order).
func (t *Thread) ID() int { return t.id }

// Finished reports whether the thread has exited.
func (t *Thread) Finished() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.done
}

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

func (t *Thread) poke() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Spawn creates a thread running fn and schedules it at the tail of the
// run queue. Spawn is itself a scheduled operation when called from a
// scheduled thread (parent); the root call (from ordinary Go code, parent
// nil-turn) appends directly. fn's panics from Kill are absorbed.
func (s *Scheduler) Spawn(parent *Thread, name string, fn func(*Thread)) *Thread {
	if parent != nil {
		parent.GetTurn()
		parent.Admit()
		t := s.spawn(name, fn, false)
		parent.PutTurn()
		return t
	}
	return s.spawn(name, fn, false)
}

func (s *Scheduler) spawn(name string, fn func(*Thread), isIdle bool) *Thread {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return nil
	}
	t := &Thread{s: s, id: s.nextID, name: name, wake: make(chan struct{}, 1), isIdle: isIdle}
	s.nextID++
	if !isIdle {
		s.spawned++
	}
	wasEmpty := len(s.runq) == 0
	s.runq = append(s.runq, t)
	var head *Thread
	if wasEmpty {
		head = t
	}
	s.mu.Unlock()
	if head != nil {
		head.poke()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					panic(r)
				}
			}
		}()
		fn(t)
		t.Exit()
	}()
	return t
}

// GetTurn blocks until t holds the global token (is the run-queue head).
// If the token is already parked on t, it returns immediately.
func (t *Thread) GetTurn() {
	s := t.s
	var waitStart time.Time
	for {
		s.mu.Lock()
		if s.killed {
			s.mu.Unlock()
			panic(killedPanic{})
		}
		if len(s.runq) > 0 && s.runq[0] == t {
			s.mu.Unlock()
			if !waitStart.IsZero() {
				s.turnWait.Since(waitStart)
			}
			return
		}
		s.mu.Unlock()
		// Slow path: about to park. Timed only here, so the fast path
		// (already at head) costs nothing with instrumentation off or on.
		if s.turnWait != nil && !t.isIdle && waitStart.IsZero() {
			waitStart = time.Now()
		}
		select {
		case <-t.wake:
		case <-s.killCh:
		}
	}
}

// Admit invokes the CRANE gate, if any. Wrappers call it right after
// GetTurn (Fig. 9 line 3).
func (t *Thread) Admit() {
	if g := t.s.gate; g != nil {
		g.CheckAdmit(t)
	}
}

// PutTurn completes a scheduled operation: ticks the logical clock,
// releases expired soft barriers, drains the reentry queue, rotates the
// caller to the tail, and wakes the new head.
func (t *Thread) PutTurn() {
	s := t.s
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	if len(s.runq) == 0 || s.runq[0] != t {
		s.mu.Unlock()
		panic(fmt.Sprintf("dmt: PutTurn by non-head thread %d (%s)", t.id, t.name))
	}
	s.tickLocked(t, 'P')
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runq = append(s.runq[1:], t)
	s.replayReorderLocked()
	s.tokenPasses++
	head := s.runq[0]
	s.mu.Unlock()
	if head != t {
		head.poke()
	}
}

// tickLocked advances the logical clock and folds (thread, op) into the
// schedule hash, which tests use to assert cross-run determinism. The idle
// thread's ticks are excluded: in plain-Parrot mode its solo rotations are
// timing-dependent (which is harmless — nothing runnable can observe them),
// while application threads' operations are always in deterministic
// rotation order.
func (s *Scheduler) tickLocked(t *Thread, op byte) {
	s.clock++
	s.clockA.Store(s.clock)
	s.recordLocked(t, op)
	s.replayAdvanceLocked(t, op)
	if t.isIdle {
		return
	}
	h := s.schedHash
	h ^= uint64(t.id)
	h *= 1099511628211
	h ^= uint64(op)
	h *= 1099511628211
	s.schedHash = h
}

// WaitOn moves the caller (which must hold the token) to the wait queue of
// key, wakes the next head, and blocks until another thread signals the key
// — at which point the caller has been re-inserted near the queue head and
// this call returns with the token held again.
func (t *Thread) WaitOn(key any) {
	s := t.s
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	if len(s.runq) == 0 || s.runq[0] != t {
		s.mu.Unlock()
		panic(fmt.Sprintf("dmt: WaitOn by non-head thread %d (%s)", t.id, t.name))
	}
	s.waits++
	s.tickLocked(t, 'W')
	s.waitq[key] = append(s.waitq[key], t)
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runq = s.runq[1:]
	s.replayReorderLocked()
	s.tokenPasses++
	var head *Thread
	if len(s.runq) > 0 {
		head = s.runq[0]
	}
	s.mu.Unlock()
	if head != nil {
		head.poke()
	}
	t.GetTurn() // blocks until signaled back in and at head
}

// SignalKey wakes the first waiter on key, inserting it right after the
// caller in the run queue (so it becomes the head once the caller rotates,
// matching "when a thread returns from wait() it becomes the head").
// It reports whether a waiter was woken. Caller must hold the token.
func (t *Thread) SignalKey(key any) bool {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.signalOneLocked(t, key)
}

func (s *Scheduler) signalOneLocked(t *Thread, key any) bool {
	q := s.waitq[key]
	if len(q) == 0 {
		return false
	}
	w := q[0]
	if len(q) == 1 {
		delete(s.waitq, key)
	} else {
		s.waitq[key] = q[1:]
	}
	s.insertAfterHeadLocked(w, 1)
	s.signals++
	return true
}

// BroadcastKey wakes every waiter on key in FIFO order. Caller must hold
// the token. Returns the number of threads woken.
func (t *Thread) BroadcastKey(key any) int {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.waitq[key]
	if len(q) == 0 {
		return 0
	}
	delete(s.waitq, key)
	for i, w := range q {
		s.insertAfterHeadLocked(w, 1+i)
	}
	s.signals += uint64(len(q))
	return len(q)
}

// HasWaiter reports whether any thread waits on key. Caller must hold the
// token (used by the CRANE gate to decide whether to deliver a signal).
func (t *Thread) HasWaiter(key any) bool {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waitq[key]) > 0
}

// insertAfterHeadLocked inserts w at position pos (>=1) in the run queue,
// clamped to the tail.
func (s *Scheduler) insertAfterHeadLocked(w *Thread, pos int) {
	if pos > len(s.runq) {
		pos = len(s.runq)
	}
	if pos < 1 {
		pos = 1
	}
	if len(s.runq) == 0 {
		s.runq = []*Thread{w}
		// Becomes the head immediately; wake it.
		w.poke()
		return
	}
	s.runq = append(s.runq, nil)
	copy(s.runq[pos+1:], s.runq[pos:])
	s.runq[pos] = w
}

// Exit is the scheduled operation that removes the caller from the
// scheduler and wakes joiners. Spawn calls it automatically when fn
// returns; threads must not use t afterwards.
func (t *Thread) Exit() {
	t.GetTurn()
	t.observe(EvThreadExit, nil)
	s := t.s
	s.mu.Lock()
	if len(s.runq) == 0 || s.runq[0] != t {
		s.mu.Unlock()
		panic("dmt: Exit by non-head thread")
	}
	s.tickLocked(t, 'X')
	t.done = true
	// Wake joiners.
	q := s.waitq[joinKey{t}]
	delete(s.waitq, joinKey{t})
	for i, w := range q {
		s.insertAfterHeadLocked(w, 1+i)
	}
	s.signals += uint64(len(q))
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runq = s.runq[1:]
	s.replayReorderLocked()
	var head *Thread
	if len(s.runq) > 0 {
		head = s.runq[0]
	}
	s.mu.Unlock()
	if head != nil {
		head.poke()
	}
}

type joinKey struct{ t *Thread }

// Join blocks the caller until target exits. A scheduled operation.
func (t *Thread) Join(target *Thread) {
	t.GetTurn()
	t.Admit()
	s := t.s
	s.mu.Lock()
	done := target.done
	s.mu.Unlock()
	if !done {
		t.WaitOn(joinKey{target})
	}
	t.PutTurn()
}

// BlockingEnter prepares a *nondeterministic* real blocking call (plain
// Parrot's socket path, §3.1): the caller leaves the run queue and the
// token moves on. Pair with BlockingExit after the real call returns.
func (t *Thread) BlockingEnter() {
	t.GetTurn()
	t.Admit()
	s := t.s
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	s.tickLocked(t, 'B')
	s.drainReentryLocked()
	s.releaseExpiredBarriersLocked()
	s.runq = s.runq[1:]
	s.replayReorderLocked()
	s.tokenPasses++
	var head *Thread
	if len(s.runq) > 0 {
		head = s.runq[0]
	}
	s.mu.Unlock()
	if head != nil {
		head.poke()
	}
}

// BlockingExit re-enters the scheduler after a real blocking call: the
// caller joins the reentry queue (nondeterministic order, by design — this
// is precisely the nondeterminism CRANE's gate removes) and blocks until a
// token holder drains it into the run queue and the token reaches it.
func (t *Thread) BlockingExit() {
	s := t.s
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		panic(killedPanic{})
	}
	s.reentry = append(s.reentry, t)
	s.mu.Unlock()
	t.GetTurn()
	t.PutTurn()
}

func (s *Scheduler) drainReentryLocked() {
	if len(s.reentry) == 0 {
		return
	}
	s.runq = append(s.runq, s.reentry...)
	s.reentry = nil
}

// idleLoop keeps the run queue non-empty and the clock ticking (§3.1).
// With a CRANE gate installed, Admit is where the idle thread blocks on an
// empty Paxos sequence, requests time bubbles, exhausts bubble clocks, and
// admits socket calls — the paper's modified idle thread (§3.2).
func (s *Scheduler) idleLoop(t *Thread) {
	sleep := s.IdleSleep
	if sleep == 0 {
		sleep = 50 * time.Microsecond
	}
	busySpins := 0
	for {
		t.GetTurn()
		t.Admit()
		s.mu.Lock()
		if s.killed {
			s.mu.Unlock()
			panic(killedPanic{})
		}
		alone := len(s.runq) == 1 && len(s.reentry) == 0
		busy := s.gate != nil && gateBusy(s.gate)
		s.mu.Unlock()
		t.PutTurn()
		if alone && !busy {
			busySpins = 0
			// Nothing to exhaust and nobody runnable: back off so an
			// idle server does not burn a core. Clock ticks here are
			// unobservable (no runnable thread can interleave). Plain
			// Sleep, not time.After: the latter allocates a timer and a
			// channel per rotation, which at this frequency becomes a
			// timer-heap and GC storm that starves everything else.
			time.Sleep(sleep)
		} else {
			// Busy rotation (e.g. exhausting a time bubble): yield so
			// runnable application threads and the consensus stack get
			// CPU even on low-core machines, with a periodic real sleep
			// so sustained exhaustion cannot starve timer goroutines.
			busySpins++
			if busySpins%64 == 0 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
	}
}

// BusyGate is implemented by gates that can indicate pending work (e.g. a
// time bubble being exhausted) so the idle thread spins instead of
// sleeping.
type BusyGate interface{ Busy() bool }

func gateBusy(g Gate) bool {
	if b, ok := g.(BusyGate); ok {
		return b.Busy()
	}
	return false
}

// RunQueueLen returns the current run-queue length (diagnostics).
func (s *Scheduler) RunQueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq)
}
