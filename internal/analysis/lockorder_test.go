package analysis

import (
	"testing"
	"time"

	"crane/internal/dmt"
)

// observed is anything that exposes a dmt.Observer.
type observed interface{ Observer() dmt.Observer }

// runObserved runs thread bodies on a scheduler with the analysis attached.
func runObserved(t *testing.T, c observed, bodies []func(*dmt.Thread)) {
	t.Helper()
	s := dmt.New()
	s.SetObserver(c.Observer())
	s.Start()
	done := make(chan struct{}, len(bodies))
	for i, body := range bodies {
		body := body
		_ = i
		s.Spawn(nil, "t", func(th *dmt.Thread) {
			body(th)
			done <- struct{}{}
		})
	}
	for range bodies {
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("observed program hung")
		}
	}
	s.Kill()
	s.Join()
}

func TestCleanLockOrderNoInversions(t *testing.T) {
	var a, b dmt.Mutex
	c := NewLockOrderChecker()
	body := func(th *dmt.Thread) {
		for i := 0; i < 10; i++ {
			th.Lock(&a)
			th.Lock(&b) // always a then b
			th.Unlock(&b)
			th.Unlock(&a)
		}
	}
	runObserved(t, c, []func(*dmt.Thread){body, body})
	if invs := c.Inversions(); len(invs) != 0 {
		t.Fatalf("false positives: %v", invs)
	}
	if c.Events() == 0 {
		t.Fatal("no events observed")
	}
	if c.LockCount() != 2 {
		t.Fatalf("LockCount = %d", c.LockCount())
	}
}

func TestInversionDetected(t *testing.T) {
	var a, b dmt.Mutex
	c := NewLockOrderChecker()
	runObserved(t, c, []func(*dmt.Thread){
		func(th *dmt.Thread) { // a then b
			th.Lock(&a)
			th.Lock(&b)
			th.Unlock(&b)
			th.Unlock(&a)
		},
	})
	// Run the reversed order in a second phase so the threads cannot
	// actually deadlock, only leave the inverted edges behind.
	runObservedSecond(t, c, &b, &a)
	invs := c.Inversions()
	if len(invs) != 1 {
		t.Fatalf("inversions = %v", invs)
	}
}

func runObservedSecond(t *testing.T, c *LockOrderChecker, first, second *dmt.Mutex) {
	t.Helper()
	s := dmt.New()
	s.SetObserver(c.Observer())
	s.Start()
	done := make(chan struct{})
	s.Spawn(nil, "rev", func(th *dmt.Thread) {
		th.Lock(first)
		th.Lock(second)
		th.Unlock(second)
		th.Unlock(first)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("reversed program hung")
	}
	s.Kill()
	s.Join()
}

func TestRWLocksTracked(t *testing.T) {
	var rw dmt.RWMutex
	var m dmt.Mutex
	c := NewLockOrderChecker()
	runObserved(t, c, []func(*dmt.Thread){
		func(th *dmt.Thread) {
			th.WLock(&rw)
			th.Lock(&m)
			th.Unlock(&m)
			th.WUnlock(&rw)
		},
	})
	if c.LockCount() != 2 {
		t.Fatalf("LockCount = %d", c.LockCount())
	}
	if len(c.Inversions()) != 0 {
		t.Fatal("false inversion")
	}
}

func TestObserverDeterministicEventCount(t *testing.T) {
	run := func() uint64 {
		var m dmt.Mutex
		c := NewLockOrderChecker()
		body := func(th *dmt.Thread) {
			for i := 0; i < 20; i++ {
				th.Lock(&m)
				th.Unlock(&m)
			}
		}
		runObserved(t, c, []func(*dmt.Thread){body, body, body})
		return c.Events()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("event counts differ across runs: %d vs %d", a, b)
	}
}
