package analysis

import (
	"fmt"
	"sort"
	"sync"

	"crane/internal/dmt"
)

// ContentionProfiler counts per-lock acquisitions and condition-variable
// waits from the deterministic event stream — the profiling complement to
// the lock-order checker (the paper's REPFRAME vision is explicitly
// "multiple types of program analysis tools within one execution", §6.2;
// combine tools with Multiplex).
type ContentionProfiler struct {
	mu       sync.Mutex
	label    map[any]int
	acquires map[int]uint64
	waits    map[int]uint64
	byThread map[int]uint64
}

// NewContentionProfiler creates a profiler.
func NewContentionProfiler() *ContentionProfiler {
	return &ContentionProfiler{
		label:    make(map[any]int),
		acquires: make(map[int]uint64),
		waits:    make(map[int]uint64),
		byThread: make(map[int]uint64),
	}
}

// Observer returns the dmt.Observer to install.
func (c *ContentionProfiler) Observer() dmt.Observer {
	return func(ev dmt.Event) { c.onEvent(ev) }
}

func (c *ContentionProfiler) id(obj any) int {
	if id, ok := c.label[obj]; ok {
		return id
	}
	id := len(c.label)
	c.label[obj] = id
	return id
}

func (c *ContentionProfiler) onEvent(ev dmt.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case dmt.EvLockAcquire, dmt.EvRLockAcquire, dmt.EvWLockAcquire:
		c.acquires[c.id(ev.Object)]++
		c.byThread[ev.Thread]++
	case dmt.EvCondWait:
		c.waits[c.id(ev.Object)]++
	}
}

// HotLock is one lock's profile entry.
type HotLock struct {
	Lock     int
	Acquires uint64
}

// String implements fmt.Stringer.
func (h HotLock) String() string {
	return fmt.Sprintf("L%d: %d acquisitions", h.Lock, h.Acquires)
}

// Hottest returns the top-n locks by acquisition count.
func (c *ContentionProfiler) Hottest(n int) []HotLock {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]HotLock, 0, len(c.acquires))
	for id, a := range c.acquires {
		out = append(out, HotLock{Lock: id, Acquires: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Acquires != out[j].Acquires {
			return out[i].Acquires > out[j].Acquires
		}
		return out[i].Lock < out[j].Lock
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TotalAcquires returns the total lock acquisitions observed.
func (c *ContentionProfiler) TotalAcquires() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, a := range c.acquires {
		t += a
	}
	return t
}

// CondWaits returns the total condition-variable waits observed.
func (c *ContentionProfiler) CondWaits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, w := range c.waits {
		t += w
	}
	return t
}

// Multiplex fans one deterministic event stream out to several analyses —
// REPFRAME's "multiple analyses within one execution" on a single backup.
func Multiplex(obs ...dmt.Observer) dmt.Observer {
	return func(ev dmt.Event) {
		for _, o := range obs {
			o(ev)
		}
	}
}
