// Package analysis implements REPFRAME-style dynamic analyses (§6.2 of the
// paper: CRANE's "transparent replication architecture can enable multiple
// types of program analysis tools within one execution"). An analysis
// subscribes to the deterministic synchronization-event stream of one
// backup replica's DMT scheduler: because every replica executes the same
// schedule, analyzing a backup observes exactly the primary's execution at
// zero cost to the primary.
//
// LockOrderChecker is the provided tool: a lock-order (potential deadlock)
// detector that records the acquisition-order graph between mutexes and
// reports cycles — the kind of concurrency analysis the paper cites
// ([35, 36, 67, 68]) as beneficiaries of the architecture.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"crane/internal/dmt"
)

// LockOrderChecker builds the lock acquisition-order graph from observed
// events and reports order inversions (edges in both directions between a
// pair of locks — a potential deadlock).
type LockOrderChecker struct {
	mu sync.Mutex
	// held maps thread id to its current lock-hold stack.
	held map[int][]any
	// label gives each distinct lock object a stable small id.
	label map[any]int
	// edges[a][b] set means "a held while acquiring b" was observed.
	edges map[int]map[int]bool
	// events counts observed synchronization events.
	events uint64
}

// NewLockOrderChecker creates a checker.
func NewLockOrderChecker() *LockOrderChecker {
	return &LockOrderChecker{
		held:  make(map[int][]any),
		label: make(map[any]int),
		edges: make(map[int]map[int]bool),
	}
}

// Observer returns the dmt.Observer to install on a (backup) scheduler.
func (c *LockOrderChecker) Observer() dmt.Observer {
	return func(ev dmt.Event) { c.onEvent(ev) }
}

func (c *LockOrderChecker) id(obj any) int {
	if id, ok := c.label[obj]; ok {
		return id
	}
	id := len(c.label)
	c.label[obj] = id
	return id
}

func (c *LockOrderChecker) onEvent(ev dmt.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	switch ev.Kind {
	case dmt.EvLockAcquire, dmt.EvWLockAcquire:
		to := c.id(ev.Object)
		for _, heldObj := range c.held[ev.Thread] {
			from := c.id(heldObj)
			if from == to {
				continue
			}
			m := c.edges[from]
			if m == nil {
				m = make(map[int]bool)
				c.edges[from] = m
			}
			m[to] = true
		}
		c.held[ev.Thread] = append(c.held[ev.Thread], ev.Object)
	case dmt.EvLockRelease, dmt.EvWLockRelease:
		stack := c.held[ev.Thread]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i] == ev.Object {
				c.held[ev.Thread] = append(stack[:i], stack[i+1:]...)
				break
			}
		}
	case dmt.EvThreadExit:
		delete(c.held, ev.Thread)
	}
}

// Events returns the number of events observed.
func (c *LockOrderChecker) Events() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// Inversion is one pair of locks acquired in both orders by some threads.
type Inversion struct {
	A, B int // stable lock ids
}

// String implements fmt.Stringer.
func (iv Inversion) String() string {
	return fmt.Sprintf("locks L%d and L%d acquired in both orders (potential deadlock)", iv.A, iv.B)
}

// Inversions reports every pair of locks with edges in both directions,
// sorted for deterministic output.
func (c *LockOrderChecker) Inversions() []Inversion {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Inversion
	for a, m := range c.edges {
		for b := range m {
			if a < b && c.edges[b][a] {
				out = append(out, Inversion{A: a, B: b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// LockCount returns the number of distinct locks observed.
func (c *LockOrderChecker) LockCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.label)
}
