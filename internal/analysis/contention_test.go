package analysis

import (
	"testing"
	"time"

	"crane/internal/dmt"
)

func TestContentionProfilerCounts(t *testing.T) {
	var hot, cold dmt.Mutex
	c := NewContentionProfiler()
	body := func(th *dmt.Thread) {
		for i := 0; i < 20; i++ {
			th.Lock(&hot)
			th.Unlock(&hot)
		}
		th.Lock(&cold)
		th.Unlock(&cold)
	}
	runObserved(t, c, []func(*dmt.Thread){body, body})
	if got := c.TotalAcquires(); got != 42 {
		t.Fatalf("TotalAcquires = %d, want 42", got)
	}
	top := c.Hottest(1)
	if len(top) != 1 || top[0].Acquires != 40 {
		t.Fatalf("Hottest = %v", top)
	}
	if top[0].String() == "" {
		t.Fatal("empty HotLock string")
	}
}

func TestContentionCondWaits(t *testing.T) {
	var m dmt.Mutex
	var cv dmt.Cond
	c := NewContentionProfiler()
	ready := false
	runObserved(t, c, []func(*dmt.Thread){
		func(th *dmt.Thread) {
			th.Lock(&m)
			for !ready {
				th.CondWait(&cv, &m)
			}
			th.Unlock(&m)
		},
		func(th *dmt.Thread) {
			for {
				th.Lock(&m)
				ready = true
				th.Unlock(&m)
				th.CondSignal(&cv)
				return
			}
		},
	})
	if c.CondWaits() == 0 {
		t.Fatal("no cond waits observed")
	}
}

func TestMultiplexFansOut(t *testing.T) {
	var m1, m2 dmt.Mutex
	order := NewLockOrderChecker()
	prof := NewContentionProfiler()

	s := dmt.New()
	s.SetObserver(Multiplex(order.Observer(), prof.Observer()))
	s.Start()
	done := make(chan struct{})
	s.Spawn(nil, "t", func(th *dmt.Thread) {
		th.Lock(&m1)
		th.Lock(&m2)
		th.Unlock(&m2)
		th.Unlock(&m1)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("multiplexed program hung")
	}
	s.Kill()
	s.Join()
	if order.Events() == 0 || prof.TotalAcquires() != 2 {
		t.Fatalf("multiplex lost events: order=%d prof=%d",
			order.Events(), prof.TotalAcquires())
	}
	if len(order.Inversions()) != 0 {
		t.Fatal("false inversion in multiplexed run")
	}
}
