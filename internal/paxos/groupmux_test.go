package paxos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crane/internal/wal"
)

// TestDoneMinGC exercises the Min/Done garbage collection protocol: once
// every node promises (SetDone) that it no longer needs the prefix, the
// primary compacts to the cluster minimum and backups follow the floor it
// announces on heartbeats. A node that never promises pins the cluster.
func TestDoneMinGC(t *testing.T) {
	tc := newGCTestCluster(t, 3)
	p := tc.primary(t)
	for i := 0; i < 50; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	waitFor(t, "all nodes at index 50", func() bool {
		for _, nd := range tc.nodes {
			if nd.CommitIndex() < 50 {
				return false
			}
		}
		return true
	})

	// Partial promise: two nodes done, one silent — no GC may happen.
	tc.nodes[0].SetDone(40)
	tc.nodes[1].SetDone(40)
	for i := 0; i < 5; i++ { // traffic to carry the piggybacked watermarks
		p.Propose([]byte("tick"))
		time.Sleep(2 * time.Millisecond)
	}
	for i, nd := range tc.nodes {
		if f := nd.GCFloor(); f != 0 {
			t.Fatalf("node %d compacted to %d with a peer still at done=0", i, f)
		}
	}

	// Full promise: the floor must reach min(40, 45, 40) = 40 everywhere.
	tc.nodes[2].SetDone(45)
	waitFor(t, "GC floor 40 on every node", func() bool {
		p.Propose([]byte("tick"))
		for _, nd := range tc.nodes {
			if nd.GCFloor() != 40 {
				return false
			}
		}
		return true
	})
	// CompactBefore is segment-granular: whole segments strictly below the
	// floor are removed, a partial one is kept. With tiny segments the WAL
	// head must have moved well past index 1 but never past the floor.
	for i, nd := range tc.nodes {
		first, ok := nd.cfg.Store.First()
		if !ok || first <= 1 || first > 41 {
			t.Fatalf("node %d WAL first=%d ok=%v, want in (1, 41]", i, first, ok)
		}
	}
	// Replay above the floor still works (checkpoint-anchored recovery).
	var replayed int
	if err := tc.nodes[0].ReplayFrom(40, func(LogEntry) bool { replayed++; return true }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed == 0 {
		t.Fatal("no entries replayable above the GC floor")
	}
}

// newGCTestCluster is newTestCluster with tiny WAL segments, so
// segment-granular compaction is observable with double-digit log sizes.
func newGCTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	hub := NewChanHub(0, 0, 0, 1)
	tc := &testCluster{t: t, hub: hub, logs: make([][]LogEntry, n)}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		i := i
		store, err := wal.Open(t.TempDir(), wal.Options{NoSync: true, SegmentSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			ID: i, Peers: peers,
			Transport:         hub.Endpoint(i),
			Store:             store,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   25 * time.Millisecond,
			OnDeliver: func(e LogEntry) {
				tc.mu.Lock()
				tc.logs[i] = append(tc.logs[i], e)
				tc.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	for _, nd := range tc.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			nd.Stop()
		}
	})
	return tc
}

// TestGroupMuxIndependentGroups runs two consensus groups over one shared
// hub endpoint per replica and checks that commits stay group-local and
// that closing one group's nodes leaves the other's transport open
// (reference-counted inner endpoint).
func TestGroupMuxIndependentGroups(t *testing.T) {
	const groups, replicas = 2, 3
	hub := NewChanHub(0, 0, 0, 1)
	defer hub.Close()
	muxes := make([]*GroupMux, replicas)
	for i := 0; i < replicas; i++ {
		muxes[i] = NewGroupMux(hub.Endpoint(i))
	}
	peers := []int{0, 1, 2}
	var mu sync.Mutex
	logs := make(map[int][]string) // group -> payloads in delivery order (node 0's view)
	nodes := make([][]*Node, groups)
	for g := 0; g < groups; g++ {
		for i := 0; i < replicas; i++ {
			g, i := g, i
			cfg := Config{
				ID: i, Peers: peers,
				Transport:         muxes[i].Port(g),
				HeartbeatInterval: 5 * time.Millisecond,
				ElectionTimeout:   25 * time.Millisecond,
			}
			if i == 0 {
				cfg.OnDeliver = func(e LogEntry) {
					mu.Lock()
					logs[g] = append(logs[g], string(e.Payload))
					mu.Unlock()
				}
			}
			nd, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			nodes[g] = append(nodes[g], nd)
		}
	}
	for g := range nodes {
		for _, nd := range nodes[g] {
			nd.Start()
		}
	}
	defer func() {
		for g := range nodes {
			for _, nd := range nodes[g] {
				nd.Stop()
			}
		}
	}()

	primaries := make([]*Node, groups)
	for g := 0; g < groups; g++ {
		g := g
		waitFor(t, fmt.Sprintf("group %d primary", g), func() bool {
			for _, nd := range nodes[g] {
				if nd.IsPrimary() {
					primaries[g] = nd
					return true
				}
			}
			return false
		})
	}
	for g := 0; g < groups; g++ {
		for i := 0; i < 10; i++ {
			if err := primaries[g].Propose([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
				t.Fatalf("group %d propose: %v", g, err)
			}
		}
	}
	waitFor(t, "both groups delivered 10", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(logs[0]) >= 10 && len(logs[1]) >= 10
	})
	mu.Lock()
	for g := 0; g < groups; g++ {
		for i, pl := range logs[g][:10] {
			if want := fmt.Sprintf("g%d-%d", g, i); pl != want {
				t.Fatalf("group %d delivery %d = %q, want %q (cross-group leak?)", g, i, pl, want)
			}
		}
	}
	mu.Unlock()

	// Stop group 0's nodes: their ports close, but group 1 keeps committing
	// over the same shared endpoints.
	for _, nd := range nodes[0] {
		nd.Stop()
	}
	time.Sleep(10 * time.Millisecond)
	before := primaries[1].CommitIndex()
	if err := primaries[1].Propose([]byte("after")); err != nil {
		t.Fatalf("group 1 propose after group 0 shutdown: %v", err)
	}
	waitFor(t, "group 1 commit after group 0 shutdown", func() bool {
		return primaries[1].CommitIndex() > before
	})
}
