package paxos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkProposeCommit measures end-to-end consensus throughput on a
// three-node in-memory cluster: propose on the primary until committed on
// a majority (delivery observed on the primary).
func BenchmarkProposeCommit(b *testing.B) {
	hub := NewChanHub(0, 0, 0, 1)
	peers := []int{0, 1, 2}
	var delivered atomic.Int64
	var nodes []*Node
	for i := 0; i < 3; i++ {
		i := i
		cfg := Config{
			ID: i, Peers: peers, Transport: hub.Endpoint(i),
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   500 * time.Millisecond, // benches load the CPU; avoid spurious elections
		}
		if i == 0 {
			cfg.OnDeliver = func(LogEntry) { delivered.Add(1) }
		}
		n, err := NewNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	// Wait for the initial primary.
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].IsPrimary() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	payload := []byte("benchmark-payload-of-typical-request-size-64bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Propose(payload); err != nil {
			b.Skipf("primary moved under load: %v", err)
		}
	}
	waitDeadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < int64(b.N) {
		if time.Now().After(waitDeadline) {
			b.Skipf("commit stalled under load at %d/%d", delivered.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}

// BenchmarkProposePipelined measures throughput with many proposals in
// flight from concurrent proxy goroutines, the deployment's actual shape.
func BenchmarkProposePipelined(b *testing.B) {
	hub := NewChanHub(0, 0, 0, 1)
	peers := []int{0, 1, 2}
	var delivered atomic.Int64
	var nodes []*Node
	for i := 0; i < 3; i++ {
		i := i
		cfg := Config{
			ID: i, Peers: peers, Transport: hub.Endpoint(i),
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   500 * time.Millisecond,
		}
		if i == 0 {
			cfg.OnDeliver = func(LogEntry) { delivered.Add(1) }
		}
		n, err := NewNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].IsPrimary() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	const workers = 8
	const maxOutstanding = 2048 // keep the pipeline deep but sustainable
	var proposed atomic.Int64
	var wg sync.WaitGroup
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("w%d", w))
			for i := 0; i < per; i++ {
				for proposed.Load()-delivered.Load() > maxOutstanding {
					time.Sleep(50 * time.Microsecond)
				}
				if nodes[0].Propose(payload) == nil {
					proposed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	waitDeadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < proposed.Load() {
		if time.Now().After(waitDeadline) {
			b.Skipf("commit stalled under load at %d/%d", delivered.Load(), proposed.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}
