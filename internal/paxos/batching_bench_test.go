package paxos

import (
	"sync/atomic"
	"testing"
	"time"

	"crane/internal/wal"
)

// countDeliver counts OnDeliver callbacks.
type countDeliver struct{ n atomic.Int64 }

// syncWALCluster starts a three-node cluster where every replica persists
// commits through a durably synced WAL — the configuration where the
// per-record fsync dominates and group commit pays off. It returns the
// nodes (nodes[0] is the initial primary) and a delivery counter fed by
// the primary's OnDeliver.
func syncWALCluster(b *testing.B) ([]*Node, *countDeliver) {
	b.Helper()
	hub := NewChanHub(0, 0, 0, 1)
	peers := []int{0, 1, 2}
	delivered := &countDeliver{}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		store, err := wal.Open(b.TempDir(), wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		cfg := Config{
			ID: i, Peers: peers, Transport: hub.Endpoint(i),
			Store:             store,
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   2 * time.Second, // fsync load; avoid spurious elections
		}
		if i == 0 {
			cfg.OnDeliver = func(LogEntry) { delivered.n.Add(1) }
		}
		n, err := NewNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	b.Cleanup(func() {
		// Let backups finish committing before teardown closes their WALs.
		deadline := time.Now().Add(30 * time.Second)
		target := nodes[0].CommitIndex()
		for _, n := range nodes {
			for n.CommitIndex() < target && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		}
		for _, n := range nodes {
			n.Stop()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].IsPrimary() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return nodes, delivered
}

// BenchmarkProposeCommitSyncWAL is the headline group-commit number: the
// same sequential-Propose workload as BenchmarkProposeCommit, but with a
// synced WAL on every replica. Pre-batching this paid one Accept round and
// one fsync per record (~210µs/op on the seed); the batcher amortizes both
// across coalesced rounds.
func BenchmarkProposeCommitSyncWAL(b *testing.B) {
	nodes, delivered := syncWALCluster(b)
	payload := []byte("benchmark-payload-of-typical-request-size-64bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Propose(payload); err != nil {
			b.Skipf("primary moved under load: %v", err)
		}
	}
	waitDeadline := time.Now().Add(120 * time.Second)
	for delivered.n.Load() < int64(b.N) {
		if time.Now().After(waitDeadline) {
			b.Skipf("commit stalled under load at %d/%d", delivered.n.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}

// BenchmarkProposeBatched measures the explicit batch path: ProposeBatch
// bursts of 64 payloads (a proxy submitting a client burst), synced WAL.
// ns/op is per payload, not per burst.
func BenchmarkProposeBatched(b *testing.B) {
	nodes, delivered := syncWALCluster(b)
	const burst = 64
	payload := []byte("benchmark-payload-of-typical-request-size-64bytes")
	batch := make([][]byte, burst)
	for i := range batch {
		batch[i] = payload
	}
	b.ResetTimer()
	proposed := 0
	for proposed < b.N {
		k := burst
		if rem := b.N - proposed; k > rem {
			k = rem
		}
		if err := nodes[0].ProposeBatch(batch[:k]); err != nil {
			b.Skipf("primary moved under load: %v", err)
		}
		proposed += k
	}
	waitDeadline := time.Now().Add(120 * time.Second)
	for delivered.n.Load() < int64(b.N) {
		if time.Now().After(waitDeadline) {
			b.Skipf("commit stalled under load at %d/%d", delivered.n.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}
