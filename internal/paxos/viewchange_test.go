package paxos

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestUncommittedSuffixSurvivesFailover: entries accepted by a majority but
// not yet committed when the primary dies must be recovered by the new
// primary (the step-1 log merge).
func TestUncommittedSuffixSurvivesFailover(t *testing.T) {
	// Use a hub where we can freeze commit progress: drop nothing, but
	// kill the primary right after proposing.
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	// Propose entries; they will be accepted by backups nearly instantly.
	for i := 0; i < 5; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the primary immediately; some suffix may be uncommitted.
	tc.hub.Disconnect(p.cfg.ID)
	var newP *Node
	waitFor(t, "new primary", func() bool {
		for _, nd := range tc.nodes {
			if nd != p && nd.IsPrimary() {
				newP = nd
				return true
			}
		}
		return false
	})
	// Whatever the new primary recovered, it must commit a prefix that
	// includes every entry that had reached a majority; proposing new
	// values afterwards must extend, not overwrite.
	waitFor(t, "post-failover propose", func() bool {
		return newP.Propose([]byte("post")) == nil
	})
	waitFor(t, "post-failover commit", func() bool {
		return newP.CommitIndex() >= 1
	})
	// Survivors' delivered sequences agree on their common prefix.
	var ids []int
	for _, nd := range tc.nodes {
		if nd != p {
			ids = append(ids, nd.cfg.ID)
		}
	}
	waitFor(t, "survivors converge", func() bool {
		a, b := tc.deliveries(ids[0]), tc.deliveries(ids[1])
		if len(a) == 0 || len(b) == 0 {
			return false
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if string(a[i].Payload) != string(b[i].Payload) {
				t.Fatalf("prefix divergence at %d: %q vs %q", i, a[i].Payload, b[i].Payload)
			}
		}
		return true
	})
}

// TestSequentialFailovers elects through two successive primary failures
// (a 5-node group tolerates both).
func TestSequentialFailovers(t *testing.T) {
	tc := newTestCluster(t, 5, nil, false)
	dead := map[int]bool{}
	for round := 0; round < 2; round++ {
		var p *Node
		waitFor(t, "primary", func() bool {
			for _, nd := range tc.nodes {
				if !dead[nd.cfg.ID] && nd.IsPrimary() {
					p = nd
					return true
				}
			}
			return false
		})
		if err := p.Propose([]byte(fmt.Sprintf("round%d", round))); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "commit", func() bool { return p.CommitIndex() >= uint64(round+1) })
		tc.hub.Disconnect(p.cfg.ID)
		dead[p.cfg.ID] = true
	}
	// A third primary emerges among the remaining 3 and serves.
	var p *Node
	waitFor(t, "third primary", func() bool {
		for _, nd := range tc.nodes {
			if !dead[nd.cfg.ID] && nd.IsPrimary() {
				p = nd
				return true
			}
		}
		return false
	})
	waitFor(t, "final propose", func() bool { return p.Propose([]byte("final")) == nil })
	waitFor(t, "final commit", func() bool { return p.CommitIndex() >= 3 })
	// All live nodes deliver the same sequence.
	var ref []LogEntry
	for _, nd := range tc.nodes {
		if dead[nd.cfg.ID] {
			continue
		}
		waitFor(t, "live delivery", func() bool {
			return len(tc.deliveries(nd.cfg.ID)) >= 3
		})
		d := tc.deliveries(nd.cfg.ID)
		if ref == nil {
			ref = d
			continue
		}
		n := len(ref)
		if len(d) < n {
			n = len(d)
		}
		for i := 0; i < n; i++ {
			if string(ref[i].Payload) != string(d[i].Payload) {
				t.Fatalf("divergence at %d", i)
			}
		}
	}
}

// TestSimultaneousCandidates forces both backups into candidacy at once;
// exactly one primary must emerge.
func TestSimultaneousCandidates(t *testing.T) {
	hub := NewChanHub(200*time.Microsecond, 400*time.Microsecond, 0, 3)
	tc := newTestCluster(t, 3, hub, false)
	p := tc.primary(t)
	tc.hub.Disconnect(p.cfg.ID)
	// Both survivors will time out within ~one election period of each
	// other; the protocol's view numbering must converge.
	waitFor(t, "converged primary", func() bool {
		prim := 0
		for _, nd := range tc.nodes {
			if nd != p && nd.IsPrimary() {
				prim++
			}
		}
		return prim == 1
	})
	// And it stays stable for a while.
	time.Sleep(100 * time.Millisecond)
	prim := 0
	for _, nd := range tc.nodes {
		if nd != p && nd.IsPrimary() {
			prim++
		}
	}
	if prim != 1 {
		t.Fatalf("%d primaries after settling", prim)
	}
}

// TestQuickConsensusAgreement property: for random payload batches and
// jittery delivery, all nodes deliver identical ordered prefixes.
func TestQuickConsensusAgreement(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		if len(payloads) == 0 {
			return true
		}
		hub := NewChanHub(50*time.Microsecond, 150*time.Microsecond, 0, seed)
		tc := newTestCluster(t, 3, hub, false)
		defer func() {
			for _, nd := range tc.nodes {
				nd.Stop()
			}
		}()
		p := tc.primary(t)
		for _, pl := range payloads {
			if err := p.Propose(pl); err != nil {
				return false
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			ok := true
			for i := 0; i < 3; i++ {
				if len(tc.deliveries(i)) < len(payloads) {
					ok = false
				}
			}
			if ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		ref := tc.deliveries(0)
		if len(ref) < len(payloads) {
			return false
		}
		for i := 1; i < 3; i++ {
			d := tc.deliveries(i)
			if len(d) < len(payloads) {
				return false
			}
			for j := range payloads {
				if string(d[j].Payload) != string(ref[j].Payload) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestWalSurvivesRestartMidStream: a node stopped and restarted with its
// WAL rejoins and converges without re-delivering suppressed entries.
func TestWalSurvivesRestartMidStream(t *testing.T) {
	dir := t.TempDir()
	hub := NewChanHub(0, 0, 0, 1)
	peers := []int{0, 1, 2}
	var logMu sync.Mutex
	logs := make(map[int][]uint64)
	nLogs := func(id int) int {
		logMu.Lock()
		defer logMu.Unlock()
		return len(logs[id])
	}
	mkNode := func(id int, deliverFrom uint64) *Node {
		var store *walLog
		var err error
		if id == 2 {
			store, err = openWal(dir)
			if err != nil {
				t.Fatal(err)
			}
		}
		n, err := NewNode(Config{
			ID: id, Peers: peers, Transport: hub.Endpoint(id), Store: store,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   25 * time.Millisecond,
			DeliverFrom:       deliverFrom,
			OnDeliver: func(e LogEntry) {
				logMu.Lock()
				logs[id] = append(logs[id], e.Index)
				logMu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		return n
	}
	nodes := []*Node{mkNode(0, 0), mkNode(1, 0), mkNode(2, 0)}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	var p *Node
	waitFor(t, "primary", func() bool {
		for _, n := range nodes {
			if n.IsPrimary() {
				p = n
				return true
			}
		}
		return false
	})
	for i := 0; i < 10; i++ {
		if err := p.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "node2 deliveries", func() bool { return nLogs(2) == 10 })
	// Stop node 2 (its WAL persists), continue committing, restart it.
	nodes[2].Stop()
	hub.Disconnect(2)
	time.Sleep(5 * time.Millisecond)
	for i := 10; i < 15; i++ {
		waitFor(t, "propose", func() bool {
			for _, n := range nodes[:2] {
				if n.IsPrimary() {
					return n.Propose([]byte{byte(i)}) == nil
				}
			}
			return false
		})
	}
	hub.Reconnect(2)
	// Restart from WAL, suppressing re-delivery of the first 10.
	n2 := mkNode(2, 10)
	nodes[2] = n2
	waitFor(t, "catch-up", func() bool { return nLogs(2) == 15 })
	logMu.Lock()
	defer logMu.Unlock()
	for i, idx := range logs[2][10:] {
		if idx != uint64(11+i) {
			t.Fatalf("re-delivered wrong index %d at %d", idx, i)
		}
	}
}
