package paxos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTCPCluster builds a 3-node cluster over loopback TCP.
func newTCPCluster(t *testing.T, n int) ([]*Node, func(int) []LogEntry) {
	t.Helper()
	// First pass: bind listeners on :0 to learn ports.
	addrs := make(map[int]string, n)
	transports := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransport(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the addr table as we go.
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	// Patch every transport's peer table now that all addresses exist.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			transports[i].addrs[j] = addrs[j]
		}
	}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	var mu sync.Mutex
	logs := make([][]LogEntry, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		node, err := NewNode(Config{
			ID: i, Peers: peers, Transport: transports[i],
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   50 * time.Millisecond,
			OnDeliver: func(e LogEntry) {
				mu.Lock()
				logs[i] = append(logs[i], e)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		node.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return nodes, func(i int) []LogEntry {
		mu.Lock()
		defer mu.Unlock()
		out := make([]LogEntry, len(logs[i]))
		copy(out, logs[i])
		return out
	}
}

func TestTCPTransportConsensus(t *testing.T) {
	nodes, deliveries := newTCPCluster(t, 3)
	var p *Node
	waitFor(t, "tcp primary", func() bool {
		for _, nd := range nodes {
			if nd.IsPrimary() {
				p = nd
				return true
			}
		}
		return false
	})
	const n = 20
	for i := 0; i < n; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("tcp-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		i := i
		waitFor(t, fmt.Sprintf("node %d tcp delivery", i), func() bool {
			return len(deliveries(i)) == n
		})
	}
	for i := 1; i < 3; i++ {
		a, b := deliveries(0), deliveries(i)
		for j := range a {
			if string(a[j].Payload) != string(b[j].Payload) {
				t.Fatalf("tcp divergence at %d", j)
			}
		}
	}
}

func TestTCPTransportStats(t *testing.T) {
	trA, err := NewTCPTransport(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := NewTCPTransport(1, map[int]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	trA.SetPeerAddrs(map[int]string{1: trB.Addr()})

	got := make(chan Message, 16)
	trB.SetHandler(func(m Message) { got <- m })

	const n = 5
	for i := 0; i < n; i++ {
		if err := trA.Send(1, Message{Type: MsgHeartbeat, View: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	trA.Flush()
	for i := 0; i < n; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}

	sa := trA.Stats()
	if sa.Sent != n {
		t.Fatalf("sender Sent = %d, want %d", sa.Sent, n)
	}
	if sa.Reconnects != 1 {
		t.Fatalf("sender Reconnects = %d, want 1", sa.Reconnects)
	}
	if sa.Flushes == 0 {
		t.Fatal("sender Flushes = 0")
	}
	if sa.BytesSent == 0 {
		t.Fatal("sender BytesSent = 0")
	}
	sb := trB.Stats()
	if sb.MsgsReceived != n {
		t.Fatalf("receiver MsgsReceived = %d, want %d", sb.MsgsReceived, n)
	}
	if sb.BytesRecv == 0 {
		t.Fatal("receiver BytesRecv = 0")
	}
}

func TestTCPTransportCloseIdempotent(t *testing.T) {
	tr, err := NewTCPTransport(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, Message{Type: MsgHeartbeat}); err != ErrTransportClosed {
		t.Fatalf("Send after Close = %v", err)
	}
}

func TestTCPSendToDeadPeerIsBestEffort(t *testing.T) {
	tr, err := NewTCPTransport(0, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Port 1 is unroutable for us; Send must not error (protocol handles it).
	if err := tr.Send(1, Message{Type: MsgHeartbeat}); err != nil {
		t.Fatalf("best-effort Send errored: %v", err)
	}
}
