package paxos

import "sync"

// GroupMux multiplexes several consensus groups' traffic over one
// underlying Transport endpoint (ISSUE 10): each replica keeps a single
// hub endpoint or TCP connection set per peer, and the mux fans messages
// out to per-group Nodes by the Message.Group tag. Port(g) returns the
// Transport for group g; sends through it stamp Group=g, and the mux's
// handler on the inner endpoint dispatches inbound messages to the
// registered group handler.
//
// Lifecycle: each Node closes its own Transport when it stops, so ports
// are reference-counted — the inner endpoint closes when the last open
// port closes. Close() on the mux itself force-closes everything.
type GroupMux struct {
	inner Transport

	mu       sync.Mutex
	handlers map[int]func(Message)
	open     int  // ports issued and not yet closed
	started  bool // inner handler installed
	closed   bool
}

// NewGroupMux wraps inner. The caller must not use inner directly once
// ports are issued (the mux owns its handler registration).
func NewGroupMux(inner Transport) *GroupMux {
	return &GroupMux{inner: inner, handlers: make(map[int]func(Message))}
}

// Port returns the Transport endpoint for group g, creating it on first
// use. Safe for concurrent use.
func (m *GroupMux) Port(g int) Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.open++
	if !m.started {
		m.started = true
		m.inner.SetHandler(m.dispatch)
	}
	return &muxPort{mux: m, group: g}
}

func (m *GroupMux) dispatch(msg Message) {
	m.mu.Lock()
	h := m.handlers[msg.Group]
	m.mu.Unlock()
	if h != nil {
		h(msg)
	}
}

// Close force-closes the inner endpoint regardless of open ports.
func (m *GroupMux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	return m.inner.Close()
}

// muxPort is one group's view of the shared endpoint.
type muxPort struct {
	mux    *GroupMux
	group  int
	mu     sync.Mutex
	closed bool
}

// Send implements Transport, stamping the group tag.
func (p *muxPort) Send(to int, msg Message) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrTransportClosed
	}
	msg.Group = p.group
	return p.mux.inner.Send(to, msg)
}

// SetHandler implements Transport.
func (p *muxPort) SetHandler(h func(Message)) {
	p.mux.mu.Lock()
	p.mux.handlers[p.group] = h
	p.mux.mu.Unlock()
}

// Close implements Transport: the port stops receiving, and the inner
// endpoint closes when the last port does.
func (p *muxPort) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	m := p.mux
	m.mu.Lock()
	delete(m.handlers, p.group)
	m.open--
	last := m.open == 0 && !m.closed
	if last {
		m.closed = true
	}
	m.mu.Unlock()
	if last {
		return m.inner.Close()
	}
	return nil
}

// Flush implements Flusher when the inner transport buffers writes.
func (p *muxPort) Flush() {
	if f, ok := p.mux.inner.(Flusher); ok {
		f.Flush()
	}
}

// Stats surfaces the inner endpoint's counters when it exposes them
// (shared across groups — the wire is shared).
func (m *GroupMux) Stats() TransportStats {
	if s, ok := m.inner.(interface{ Stats() TransportStats }); ok {
		return s.Stats()
	}
	return TransportStats{}
}
