package paxos

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testCluster bundles n nodes on a ChanHub with per-node delivery logs.
type testCluster struct {
	t     *testing.T
	hub   *ChanHub
	nodes []*Node
	mu    sync.Mutex
	logs  [][]LogEntry
}

func newTestCluster(t *testing.T, n int, hub *ChanHub, withStore bool) *testCluster {
	t.Helper()
	if hub == nil {
		hub = NewChanHub(0, 0, 0, 1)
	}
	tc := &testCluster{t: t, hub: hub, logs: make([][]LogEntry, n)}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		i := i
		cfg := Config{
			ID: i, Peers: peers,
			Transport:         hub.Endpoint(i),
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   25 * time.Millisecond,
			OnDeliver: func(e LogEntry) {
				tc.mu.Lock()
				tc.logs[i] = append(tc.logs[i], e)
				tc.mu.Unlock()
			},
		}
		if withStore {
			var err error
			cfg.Store, err = openStore(t, i)
			if err != nil {
				t.Fatal(err)
			}
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	for _, nd := range tc.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			nd.Stop()
		}
	})
	return tc
}

var storeDirs sync.Map

func openStore(t *testing.T, id int) (*walLog, error) {
	dir := t.TempDir()
	storeDirs.Store(fmt.Sprintf("%s-%d", t.Name(), id), dir)
	return openWal(dir)
}

func (tc *testCluster) deliveries(i int) []LogEntry {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]LogEntry, len(tc.logs[i]))
	copy(out, tc.logs[i])
	return out
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func (tc *testCluster) primary(t *testing.T) *Node {
	t.Helper()
	var p *Node
	waitFor(t, "a primary", func() bool {
		for _, nd := range tc.nodes {
			if nd.IsPrimary() {
				p = nd
				return true
			}
		}
		return false
	})
	return p
}

func TestBasicConsensus(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	const n = 50
	for i := 0; i < n; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		i := i
		waitFor(t, fmt.Sprintf("node %d delivery", i), func() bool {
			return len(tc.deliveries(i)) == n
		})
	}
	// All nodes delivered the identical ordered sequence.
	ref := tc.deliveries(0)
	for i := 1; i < 3; i++ {
		got := tc.deliveries(i)
		for j := range ref {
			if got[j].Index != ref[j].Index || !bytes.Equal(got[j].Payload, ref[j].Payload) {
				t.Fatalf("node %d entry %d = %+v, want %+v", i, j, got[j], ref[j])
			}
		}
	}
	// Indices are gapless and increasing from 1.
	for j, e := range ref {
		if e.Index != uint64(j+1) {
			t.Fatalf("entry %d has index %d", j, e.Index)
		}
	}
}

func TestProposeOnBackupRejected(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	for _, nd := range tc.nodes {
		if nd != p {
			if err := nd.Propose([]byte("x")); err != ErrNotPrimary {
				t.Fatalf("backup Propose err = %v, want ErrNotPrimary", err)
			}
		}
	}
}

func TestFailoverElectsNewPrimary(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	for i := 0; i < 10; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "pre-failure commit", func() bool {
		return len(tc.deliveries(1)) == 10 && len(tc.deliveries(2)) == 10
	})
	// Kill the primary.
	tc.hub.Disconnect(p.cfg.ID)
	var newP *Node
	waitFor(t, "new primary", func() bool {
		for _, nd := range tc.nodes {
			if nd != p && nd.IsPrimary() {
				newP = nd
				return true
			}
		}
		return false
	})
	if ms := newP.LastElectionMillis(); ms <= 0 {
		t.Errorf("LastElectionMillis = %v, want > 0", ms)
	}
	// The new primary accepts and commits proposals with the survivor.
	for i := 0; i < 10; i++ {
		waitFor(t, "propose accepted", func() bool {
			return newP.Propose([]byte(fmt.Sprintf("post%d", i))) == nil
		})
	}
	for _, nd := range tc.nodes {
		if nd == p {
			continue
		}
		id := nd.cfg.ID
		waitFor(t, fmt.Sprintf("node %d post-failover deliveries", id), func() bool {
			return len(tc.deliveries(id)) == 20
		})
	}
	// Survivors agree.
	var survivors []int
	for _, nd := range tc.nodes {
		if nd != p {
			survivors = append(survivors, nd.cfg.ID)
		}
	}
	a, b := tc.deliveries(survivors[0]), tc.deliveries(survivors[1])
	for j := range a {
		if !bytes.Equal(a[j].Payload, b[j].Payload) {
			t.Fatalf("survivors disagree at %d: %q vs %q", j, a[j].Payload, b[j].Payload)
		}
	}
}

func TestOldPrimaryDowngradesOnReconnect(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	if err := p.Propose([]byte("a")); err != nil {
		t.Fatal(err)
	}
	tc.hub.Disconnect(p.cfg.ID)
	var newP *Node
	waitFor(t, "new primary", func() bool {
		for _, nd := range tc.nodes {
			if nd != p && nd.IsPrimary() {
				newP = nd
				return true
			}
		}
		return false
	})
	waitFor(t, "new primary propose", func() bool {
		return newP.Propose([]byte("b")) == nil
	})
	tc.hub.Reconnect(p.cfg.ID)
	// The restarted old primary must self-downgrade (§7.6).
	waitFor(t, "old primary downgrade", func() bool {
		return !p.IsPrimary()
	})
	waitFor(t, "old primary catches up", func() bool {
		d := tc.deliveries(p.cfg.ID)
		return len(d) >= 2
	})
	// And the cluster still has exactly one primary.
	nPrim := 0
	for _, nd := range tc.nodes {
		if nd.IsPrimary() {
			nPrim++
		}
	}
	if nPrim != 1 {
		t.Fatalf("cluster has %d primaries", nPrim)
	}
}

func TestLaggingReplicaCatchesUp(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	// Pick a backup and isolate it.
	var backup *Node
	for _, nd := range tc.nodes {
		if nd != p {
			backup = nd
			break
		}
	}
	tc.hub.Disconnect(backup.cfg.ID)
	for i := 0; i < 25; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The remaining majority commits without the isolated backup.
	waitFor(t, "majority commit", func() bool {
		return p.CommitIndex() >= 25
	})
	if len(tc.deliveries(backup.cfg.ID)) != 0 {
		t.Fatal("isolated backup delivered entries")
	}
	tc.hub.Reconnect(backup.cfg.ID)
	waitFor(t, "backup catch-up", func() bool {
		return len(tc.deliveries(backup.cfg.ID)) == 25
	})
	got := tc.deliveries(backup.cfg.ID)
	for i, e := range got {
		if string(e.Payload) != fmt.Sprintf("v%d", i) {
			t.Fatalf("catch-up entry %d = %q", i, e.Payload)
		}
	}
}

func TestQuorumLossBlocksCommits(t *testing.T) {
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	// Isolate both backups: no quorum.
	for _, nd := range tc.nodes {
		if nd != p {
			tc.hub.Disconnect(nd.cfg.ID)
		}
	}
	_ = p.Propose([]byte("doomed"))
	time.Sleep(50 * time.Millisecond)
	if p.CommitIndex() != 0 {
		t.Fatalf("commit advanced to %d without quorum", p.CommitIndex())
	}
}

func TestFiveNodeClusterSurvivesTwoFailures(t *testing.T) {
	tc := newTestCluster(t, 5, nil, false)
	p := tc.primary(t)
	killed := 0
	for _, nd := range tc.nodes {
		if nd != p && killed < 2 {
			tc.hub.Disconnect(nd.cfg.ID)
			killed++
		}
	}
	for i := 0; i < 10; i++ {
		if err := p.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "commit with 3/5", func() bool { return p.CommitIndex() >= 10 })
}

func TestLossyNetworkStillCommits(t *testing.T) {
	hub := NewChanHub(100*time.Microsecond, 200*time.Microsecond, 0.05, 7)
	tc := newTestCluster(t, 3, hub, false)
	p := tc.primary(t)
	const n = 30
	for i := 0; i < n; i++ {
		waitFor(t, "propose", func() bool {
			// The primary may transiently lose leadership under loss.
			for _, nd := range tc.nodes {
				if nd.IsPrimary() {
					p = nd
					return p.Propose([]byte(fmt.Sprintf("v%d", i))) == nil
				}
			}
			return false
		})
	}
	for i := 0; i < 3; i++ {
		i := i
		waitFor(t, fmt.Sprintf("node %d full delivery", i), func() bool {
			return len(tc.deliveries(i)) >= n
		})
	}
	// Prefixes agree across all nodes.
	ref := tc.deliveries(0)
	for i := 1; i < 3; i++ {
		got := tc.deliveries(i)
		m := len(ref)
		if len(got) < m {
			m = len(got)
		}
		for j := 0; j < m; j++ {
			if !bytes.Equal(got[j].Payload, ref[j].Payload) {
				t.Fatalf("divergence at %d", j)
			}
		}
	}
}

func TestDeliverFromSuppressesReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := openWal(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub := NewChanHub(0, 0, 0, 1)
	var delivered []uint64
	var mu sync.Mutex
	cfg := Config{
		ID: 0, Peers: []int{0},
		Transport:         hub.Endpoint(0),
		Store:             l,
		HeartbeatInterval: time.Millisecond,
		OnDeliver: func(e LogEntry) {
			mu.Lock()
			delivered = append(delivered, e.Index)
			mu.Unlock()
		},
	}
	n1, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n1.Start()
	for i := 0; i < 10; i++ {
		if err := n1.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "single-node commit", func() bool { return n1.CommitIndex() == 10 })
	n1.Stop()
	time.Sleep(5 * time.Millisecond)

	// Restart with DeliverFrom=6: only 7..10 are re-delivered.
	mu.Lock()
	delivered = nil
	mu.Unlock()
	l2, err := openWal(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub2 := NewChanHub(0, 0, 0, 1)
	cfg.Store = l2
	cfg.Transport = hub2.Endpoint(0)
	cfg.DeliverFrom = 6
	n2, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2.Start()
	defer n2.Stop()
	waitFor(t, "replay", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) == 4
	})
	mu.Lock()
	defer mu.Unlock()
	for i, idx := range delivered {
		if idx != uint64(7+i) {
			t.Fatalf("replayed index %d, want %d", idx, 7+i)
		}
	}
	if n2.CommitIndex() != 10 {
		t.Fatalf("recovered CommitIndex = %d", n2.CommitIndex())
	}
}

func TestReplayFromReadsWal(t *testing.T) {
	dir := t.TempDir()
	l, err := openWal(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub := NewChanHub(0, 0, 0, 1)
	n1, err := NewNode(Config{
		ID: 0, Peers: []int{0}, Transport: hub.Endpoint(0), Store: l,
		HeartbeatInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n1.Start()
	defer n1.Stop()
	for i := 0; i < 5; i++ {
		if err := n1.Propose([]byte{byte(i + 100)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "commit", func() bool { return n1.CommitIndex() == 5 })
	var got []byte
	if err := n1.ReplayFrom(2, func(e LogEntry) bool {
		got = append(got, e.Payload[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{102, 103, 104}) {
		t.Fatalf("ReplayFrom = %v", got)
	}
}

func TestElectionLatencySubSecond(t *testing.T) {
	// §7.6: leader election took 1.97 ms on the paper's testbed. With
	// millisecond-scale heartbeats the 3-step election itself (once
	// triggered) must complete well under a second.
	tc := newTestCluster(t, 3, nil, false)
	p := tc.primary(t)
	tc.hub.Disconnect(p.cfg.ID)
	start := time.Now()
	var newP *Node
	waitFor(t, "new primary", func() bool {
		for _, nd := range tc.nodes {
			if nd != p && nd.IsPrimary() {
				newP = nd
				return true
			}
		}
		return false
	})
	total := time.Since(start)
	if total > 2*time.Second {
		t.Fatalf("failover took %v", total)
	}
	if ms := newP.LastElectionMillis(); ms > 1000 {
		t.Fatalf("election phase took %vms", ms)
	}
}

func TestConcurrentBatchedProposeOrderUnderJitterLoss(t *testing.T) {
	// Concurrent Propose and ProposeBatch callers race into the batcher
	// while the hub injects latency, jitter, and loss. Every replica must
	// deliver the identical gapless sequence — batching changes how rounds
	// are packaged, never the decided order.
	hub := NewChanHub(50*time.Microsecond, 150*time.Microsecond, 0.02, 11)
	tc := newTestCluster(t, 3, hub, false)
	tc.primary(t)
	const workers = 6
	const perWorker = 40 // half propose singly, half in bursts of 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; {
				var p *Node
				for _, nd := range tc.nodes {
					if nd.IsPrimary() {
						p = nd
						break
					}
				}
				if p == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				var err error
				var k int
				if w%2 == 0 {
					k = 1
					err = p.Propose([]byte(fmt.Sprintf("w%d-%d", w, i)))
				} else {
					k = 4
					if rem := perWorker - i; k > rem {
						k = rem
					}
					batch := make([][]byte, k)
					for j := range batch {
						batch[j] = []byte(fmt.Sprintf("w%d-%d", w, i+j))
					}
					err = p.ProposeBatch(batch)
				}
				if err != nil {
					time.Sleep(time.Millisecond)
					continue // primary moved; retry
				}
				mu.Lock()
				accepted += k
				mu.Unlock()
				i += k
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	want := accepted
	mu.Unlock()
	for i := 0; i < 3; i++ {
		i := i
		waitFor(t, fmt.Sprintf("node %d full delivery", i), func() bool {
			return len(tc.deliveries(i)) >= want
		})
	}
	// Identical order everywhere, gapless indices. (A view change during
	// the run may re-commit: compare the common prefix entry by entry.)
	ref := tc.deliveries(0)
	for j, e := range ref {
		if e.Index != uint64(j+1) {
			t.Fatalf("node 0 entry %d has index %d", j, e.Index)
		}
	}
	for i := 1; i < 3; i++ {
		got := tc.deliveries(i)
		m := len(ref)
		if len(got) < m {
			m = len(got)
		}
		for j := 0; j < m; j++ {
			if got[j].Index != ref[j].Index || !bytes.Equal(got[j].Payload, ref[j].Payload) {
				t.Fatalf("node %d diverges at %d: %d/%q vs %d/%q", i, j,
					got[j].Index, got[j].Payload, ref[j].Index, ref[j].Payload)
			}
		}
	}
	// The batch path must also have produced some multi-entry rounds; a
	// regression to one-round-per-entry would still pass the order checks,
	// so sanity-check the proposals all landed exactly once per worker.
	seen := make(map[string]int)
	for _, e := range ref[:want] {
		seen[string(e.Payload)]++
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if seen[key] == 0 {
				t.Fatalf("proposal %s never delivered", key)
			}
		}
	}
}

func TestChanTransportStatsCountsDrops(t *testing.T) {
	// Loss drops are counted at the sender, overflow drops at the receiver.
	hub := NewChanHub(0, 0, 1.0, 3) // 100% loss
	src, dst := hub.Endpoint(0), hub.Endpoint(1)
	defer src.Close()
	defer dst.Close()
	dst.SetHandler(func(Message) {})
	for i := 0; i < 10; i++ {
		if err := src.Send(1, Message{Type: MsgHeartbeat}); err != nil {
			t.Fatal(err)
		}
	}
	st := src.Stats()
	if st.Sent != 10 || st.LossDropped != 10 {
		t.Fatalf("Stats after loss = %+v, want Sent=10 LossDropped=10", st)
	}

	// Overflow: a destination endpoint with a tiny inbox and no pump
	// goroutine, so the third message overflows deterministically.
	hub2 := NewChanHub(0, 0, 0, 3)
	src2 := hub2.Endpoint(0)
	defer src2.Close()
	dst2 := &ChanTransport{hub: hub2, id: 1, inbox: make(chan Message, 2), stop: make(chan struct{})}
	hub2.mu.Lock()
	hub2.eps[1] = dst2
	hub2.mu.Unlock()
	for i := 0; i < 5; i++ {
		if err := src2.Send(1, Message{Type: MsgHeartbeat, Index: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st2 := dst2.Stats()
	if st2.InboxDropped != 3 {
		t.Fatalf("InboxDropped = %d, want 3", st2.InboxDropped)
	}
	if got := src2.Stats(); got.Sent != 5 || got.LossDropped != 0 {
		t.Fatalf("sender stats = %+v, want Sent=5 LossDropped=0", got)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgAccept.String() != "Accept" || MsgNewPrimary.String() != "NewPrimary" {
		t.Fatal("MsgType.String broken")
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal("unknown MsgType.String broken")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{ID: 0, Peers: []int{0}}); err == nil {
		t.Fatal("nil transport accepted")
	}
	hub := NewChanHub(0, 0, 0, 1)
	if _, err := NewNode(Config{ID: 0, Transport: hub.Endpoint(0)}); err == nil {
		t.Fatal("empty peers accepted")
	}
}
