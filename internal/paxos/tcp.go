package paxos

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport carries consensus messages over real TCP sockets using gob
// framing — the deployment path for replicas on separate machines (the
// paper's three-replica LAN). Connections to peers are established lazily
// and re-established after failures; message loss during reconnects is
// tolerated by the protocol's heartbeat-driven catch-up.
type TCPTransport struct {
	id    int
	addrs map[int]string // node id -> host:port

	ln net.Listener

	mu      sync.Mutex
	handler func(Message)
	conns   map[int]*tcpPeer
	closed  bool
	wg      sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCPTransport listens on addrs[id] and prepares lazy connections to the
// other peers.
func NewTCPTransport(id int, addrs map[int]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("paxos: tcp listen %s: %w", addrs[id], err)
	}
	t := &TCPTransport{
		id:    id,
		addrs: addrs,
		ln:    ln,
		conns: make(map[int]*tcpPeer),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listening address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetPeerAddrs installs the full peer address table. Must be called before
// the first Send once every peer has bound its listener.
func (t *TCPTransport) SetPeerAddrs(addrs map[int]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, a := range addrs {
		t.addrs[id] = a
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(msg)
		}
	}
}

// Send implements Transport. A send failure drops the cached connection so
// the next send redials.
func (t *TCPTransport) Send(to int, msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	p := t.conns[to]
	if p == nil {
		p = &tcpPeer{}
		t.conns[to] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		c, err := net.DialTimeout("tcp", t.addrs[to], 500*time.Millisecond)
		if err != nil {
			return nil // best effort: protocol retransmits
		}
		p.conn = c
		p.enc = gob.NewEncoder(c)
	}
	if err := p.enc.Encode(&msg); err != nil {
		p.conn.Close()
		p.conn = nil
		p.enc = nil
	}
	return nil
}

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h func(Message)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[int]*tcpPeer{}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range conns {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	return nil
}

var _ Transport = (*TCPTransport)(nil)
var _ Transport = (*ChanTransport)(nil)
