package paxos

import "crane/internal/wal"

// walLog aliases the storage type for test brevity.
type walLog = wal.Log

// openWal opens a no-sync WAL for tests.
func openWal(dir string) (*wal.Log, error) {
	return wal.Open(dir, wal.Options{NoSync: true})
}
