package paxos

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Transport moves messages between consensus nodes. Implementations must
// deliver messages to the registered handler serially per node (the node's
// event loop assumes single-threaded message intake is not required — it
// serializes internally — but ordering per sender should be preserved,
// which both provided implementations do).
type Transport interface {
	// Send transmits msg to the node with the given id. Send is
	// best-effort: transport-level loss is handled by the protocol's
	// retransmission (heartbeat-driven catch-up).
	Send(to int, msg Message) error
	// SetHandler registers the receive callback. Must be called before
	// the first Send targeting this node.
	SetHandler(h func(msg Message))
	// Close releases transport resources.
	Close() error
}

// Flusher is an optional Transport capability: transports that buffer
// writes (e.g. TCPTransport's bufio-wrapped peers) implement it, and the
// node's event loop calls Flush once per handled event — the batch
// boundary — so all sends triggered by one event share one syscall.
type Flusher interface {
	Flush()
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("paxos: transport closed")

// ChanHub is an in-process transport fabric connecting a set of nodes with
// optional latency, jitter, and probabilistic loss — the consensus-side
// analogue of simnet. Each node gets a ChanTransport from Endpoint.
type ChanHub struct {
	mu      sync.Mutex
	eps     map[int]*ChanTransport
	latency time.Duration
	jitter  time.Duration
	loss    float64 // probability in [0,1) that a message is dropped
	rng     *rand.Rand
	closed  bool
}

// NewChanHub creates a hub. Zero latency/jitter/loss means instant,
// reliable delivery.
func NewChanHub(latency, jitter time.Duration, loss float64, seed int64) *ChanHub {
	if seed == 0 {
		seed = 1
	}
	return &ChanHub{
		eps:     make(map[int]*ChanTransport),
		latency: latency,
		jitter:  jitter,
		loss:    loss,
		rng:     rand.New(rand.NewSource(seed)), //crane:detflow-ok deterministically seeded by the caller
	}
}

// Endpoint returns the transport for node id, creating a fresh one if none
// exists or the previous one was closed (a restarted node must not inherit
// its predecessor's dead endpoint).
func (h *ChanHub) Endpoint(id int) *ChanTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep, ok := h.eps[id]; ok {
		ep.mu.Lock()
		closed := ep.closed
		ep.mu.Unlock()
		if !closed {
			return ep
		}
	}
	ep := &ChanTransport{hub: h, id: id, inbox: make(chan Message, 4096), stop: make(chan struct{})}
	h.eps[id] = ep
	go ep.pump()
	return ep
}

// Disconnect isolates node id (drops all traffic to and from it) until
// Reconnect. Used to simulate replica failure without tearing state down.
func (h *ChanHub) Disconnect(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep, ok := h.eps[id]; ok {
		ep.mu.Lock()
		ep.isolated = true
		ep.mu.Unlock()
	}
}

// Reconnect restores node id's connectivity.
func (h *ChanHub) Reconnect(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep, ok := h.eps[id]; ok {
		ep.mu.Lock()
		ep.isolated = false
		ep.mu.Unlock()
	}
}

// Close shuts down every endpoint.
func (h *ChanHub) Close() {
	h.mu.Lock()
	eps := make([]*ChanTransport, 0, len(h.eps))
	for _, ep := range h.eps {
		eps = append(eps, ep)
	}
	h.closed = true
	h.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// ChanTransport is one node's endpoint on a ChanHub.
type ChanTransport struct {
	hub   *ChanHub
	id    int
	inbox chan Message
	stop  chan struct{}

	// Drop accounting (atomic: Send races with the pump goroutine and with
	// peers' Sends targeting this endpoint's inbox).
	sent         atomic.Uint64 // messages this endpoint sent (pre-loss)
	received     atomic.Uint64 // messages delivered to the handler
	lossDropped  atomic.Uint64 // sends dropped by simulated loss/isolation
	inboxDropped atomic.Uint64 // inbound messages dropped on inbox overflow

	mu       sync.Mutex
	handler  func(Message)
	isolated bool
	closed   bool
}

// TransportStats is a snapshot of a transport endpoint's counters, shared
// by ChanTransport and TCPTransport. Overflow and loss drops are legal (the
// protocol retransmits) but were previously invisible, making soak-test
// loss undiagnosable. Byte/flush/reconnect counters only move on transports
// with real sockets (ChanTransport passes Message values in process).
type TransportStats struct {
	Sent         uint64 // messages submitted to Send (before loss)
	MsgsReceived uint64 // messages delivered to the handler
	BytesSent    uint64 // wire bytes written (TCP only)
	BytesRecv    uint64 // wire bytes read (TCP only)
	Flushes      uint64 // batch-boundary buffer flushes (TCP only)
	Reconnects   uint64 // peer dials, initial and after failures (TCP only)
	LossDropped  uint64 // outbound drops from simulated loss or isolation
	InboxDropped uint64 // inbound drops from inbox overflow
}

// Stats returns a snapshot of the endpoint's counters.
func (t *ChanTransport) Stats() TransportStats {
	return TransportStats{
		Sent:         t.sent.Load(),
		MsgsReceived: t.received.Load(),
		LossDropped:  t.lossDropped.Load(),
		InboxDropped: t.inboxDropped.Load(),
	}
}

func (t *ChanTransport) pump() {
	for {
		select {
		case msg := <-t.inbox:
			t.mu.Lock()
			h := t.handler
			iso := t.isolated
			t.mu.Unlock()
			if h != nil && !iso {
				t.received.Add(1)
				h(msg)
			}
		case <-t.stop:
			return
		}
	}
}

// Send implements Transport.
func (t *ChanTransport) Send(to int, msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	iso := t.isolated
	t.mu.Unlock()
	t.sent.Add(1)
	if iso {
		t.lossDropped.Add(1)
		return nil // dropped, like a dead NIC
	}
	h := t.hub
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrTransportClosed
	}
	dst, ok := h.eps[to]
	drop := h.loss > 0 && h.rng.Float64() < h.loss
	delay := h.latency
	if h.jitter > 0 {
		delay += time.Duration(h.rng.Int63n(int64(h.jitter)))
	}
	h.mu.Unlock()
	if !ok || drop {
		t.lossDropped.Add(1)
		return nil
	}
	deliver := func() {
		dst.mu.Lock()
		closed := dst.closed
		dst.mu.Unlock()
		if closed {
			return
		}
		select {
		case dst.inbox <- msg:
		default:
			// Inbox overflow: drop (the protocol retransmits), but count
			// it so soak tests can tell overflow from simulated loss.
			dst.inboxDropped.Add(1)
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// SetHandler implements Transport.
func (t *ChanTransport) SetHandler(h func(Message)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	return nil
}
