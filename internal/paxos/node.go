// Package paxos implements the consensus component of §5.1: a viewstamped
// Paxos in the style of Mazieres' "Paxos made practical" [52], the protocol
// the paper reimplements atop libevent. In the normal case only the primary
// invokes consensus (one Accept round per request). Failure handling uses
// heartbeats (primary → backups every second by default) and, after three
// missed seconds, the paper's three-step leader election:
//
//  1. a backup proposes a new view (a standard two-phase consensus),
//  2. the proposer that wins the view proposes itself as primary candidate
//     (another two-phase consensus),
//  3. the new leader announces itself as the new primary.
//
// Every decided value carries a global, monotonically increasing index (the
// viewstamp) that also keys checkpoints (§5.2), and is persisted to the WAL
// (the Berkeley-DB stand-in) at commit time.
package paxos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crane/internal/obs"
	"crane/internal/obs/flight"
	"crane/internal/wal"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgAccept         MsgType = iota + 1 // primary → backups: accept entry
	MsgAcceptOK                          // backup → primary: entry accepted
	MsgCommit                            // primary → backups: commit index advanced
	MsgHeartbeat                         // primary → backups: liveness + commit index
	MsgProposeView                       // candidate → all: election step 1 phase a
	MsgPromiseView                       // responder → candidate: step 1 phase b
	MsgProposePrimary                    // candidate → all: election step 2 phase a
	MsgAckPrimary                        // responder → candidate: step 2 phase b
	MsgNewPrimary                        // new primary → all: election step 3
	MsgRequestEntries                    // lagging node → primary: catch-up request
	MsgEntries                           // primary → lagging node: catch-up reply
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	names := [...]string{"", "Accept", "AcceptOK", "Commit", "Heartbeat",
		"ProposeView", "PromiseView", "ProposePrimary", "AckPrimary",
		"NewPrimary", "RequestEntries", "Entries"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// LogEntry is one slot of the replicated log.
type LogEntry struct {
	Index   uint64
	View    uint64
	Payload []byte
}

// Message is the single wire format (field union keyed by Type).
type Message struct {
	Type      MsgType
	From      int
	View      uint64
	Index     uint64
	Payload   []byte
	CommitIdx uint64
	LastNorm  uint64 // last view in which the sender was in Normal status
	Entries   []LogEntry
	Primary   int
	// Group routes the message to one consensus group when several share a
	// transport endpoint (GroupMux). Nodes never read it; the mux stamps it
	// on send and dispatches on receive. Always 0 in single-group clusters.
	Group int
	// Done piggybacks GC watermarks (the Min/Done protocol of the 6.824
	// paxos lab): on AcceptOK it is the sender's own done index — the
	// highest global index whose entries the sender no longer needs — and
	// on Heartbeat/Commit it is the primary's cluster-wide minimum, which
	// backups apply as their compaction floor. 0 means "no watermark yet"
	// and never triggers GC.
	Done uint64
	// Audit piggybacks the sender's latest flight-recorder audit samples
	// (rolling journal hashes + output fingerprint) on AcceptOK replies so
	// the primary can cross-check replicas without extra messages.
	Audit []flight.AuditSample
}

// Status is a node's protocol status.
type Status uint8

// Node statuses.
const (
	StatusNormal Status = iota
	StatusViewChange
)

// Config configures a Node.
type Config struct {
	// ID is this node's identity; Peers lists all node ids including ID.
	ID    int
	Peers []int
	// Transport carries messages; Store persists committed decisions.
	Transport Transport
	Store     *wal.Log
	// HeartbeatInterval defaults to 1s (paper); ElectionTimeout to 3x the
	// heartbeat (paper: 3s). Tests scale these down.
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	// OnDeliver receives committed entries in index order.
	OnDeliver func(LogEntry)
	// OnViewChange is called when the node enters Normal status in a new
	// view (including the initial view).
	OnViewChange func(view uint64, primary int)
	// DeliverFrom suppresses re-delivery of WAL-recovered entries with
	// index <= DeliverFrom (a restored replica replays those from its
	// checkpoint instead).
	DeliverFrom uint64
	// Bootstrap designates node 0 as the initial primary of view 0 when
	// true (all replicas must agree on the initial configuration, as in
	// any SMR deployment).
	InitialPrimary int
	// MaxBatch caps how many queued proposals are coalesced into one
	// multi-entry Accept round (default 64).
	MaxBatch int
	// MaxBatchBytes caps the payload bytes per Accept round (default
	// 256 KiB). A single oversized payload still ships alone.
	MaxBatchBytes int
	// MaxInflight is the Accept-round pipeline window: how many batches
	// may await majority acknowledgment at once (default 4). 1 restores
	// strict one-round-at-a-time ordering latency.
	MaxInflight int
	// Obs registers consensus instruments (proposals, commits, batch
	// sizes, propose-to-commit latency, view gauges). nil disables all
	// instrumentation at zero cost.
	Obs *obs.Registry
	// AuditSource, when set, supplies fresh flight-recorder audit samples
	// to piggyback on outgoing AcceptOK replies (nil return = nothing new).
	AuditSource func() []flight.AuditSample
	// OnAudit receives audit samples piggybacked on messages from peers.
	// Called from the event loop; implementations must not block.
	OnAudit func(from int, samples []flight.AuditSample)
}

// Batching defaults.
const (
	DefaultMaxBatch      = 64
	DefaultMaxBatchBytes = 256 << 10
	DefaultMaxInflight   = 4
)

// commitLatSampleMask selects which Accept rounds get commit-latency
// timing: rounds where roundSeq&mask == 0, i.e. 1 in 8.
const commitLatSampleMask = 7

// ErrNotPrimary is returned by Propose on a non-primary node.
var ErrNotPrimary = errors.New("paxos: not primary")

// ErrStopped is returned by Propose after Stop.
var ErrStopped = errors.New("paxos: stopped")

type event struct {
	msg      *Message
	batch    [][]byte
	reply    chan error
	compact  uint64
	reply2   chan struct{}
	done     uint64 // SetDone watermark
	setDone  bool
	tick     bool
	stop     bool
	campaign bool
}

// Node is one consensus replica.
type Node struct {
	cfg Config

	events chan event
	done   chan struct{}

	// All fields below are owned by the event loop goroutine.
	status     Status
	view       uint64
	primary    int
	lastNorm   uint64 // last view in which status was Normal
	promised   uint64 // highest view promised in elections
	log        []LogEntry
	base       uint64 // index of log[0] minus 1 (0 when log starts at 1)
	commitIdx  uint64
	acks       map[uint64]map[int]bool
	lastHB     time.Time
	flusher    Flusher       // Transport's batch-boundary hook, nil if none
	pending    [][]byte      // queued proposals not yet in an Accept round
	inflight   []uint64      // last index of each unacknowledged Accept round
	electDelay time.Duration // randomized election timeout
	electRng   *rand.Rand    // re-randomizes the timeout per retry

	// Min/Done GC state (6.824 paxos lab style). doneIdx is this node's own
	// done watermark (SetDone); peerDone the watermarks peers piggybacked on
	// AcceptOK; gcFloor the highest compaction floor applied so far. All
	// default 0, so nodes that never call SetDone never GC — full-replay
	// recovery (RestartReplica) is unaffected until a caller opts in.
	doneIdx  uint64
	peerDone map[int]uint64
	gcFloor  uint64

	// instruments (nil instruments discard observations, so a node built
	// without Config.Obs pays only a nil check per event)
	obsProposals    *obs.Counter
	obsCommits      *obs.Counter
	obsBatchEntries *obs.Histogram       // entries per Accept round
	obsCommitLat    *obs.Histogram       // sendBatch -> round fully committed
	roundStart      map[uint64]time.Time // last index of sampled round -> send time
	roundSeq        uint64               // rounds sent; selects sampled rounds

	// election state (candidate side)
	electing       bool
	electPhase     int // 1 = ProposeView sent, 2 = ProposePrimary sent
	candView       uint64
	promises       map[int]*Message
	primaryAcks    map[int]bool
	mergedLog      []LogEntry
	mergedCommit   uint64
	electionStart  time.Time
	lastElectionMs float64

	// mirrors for lock-free-ish external reads
	mu         sync.Mutex
	extView    uint64
	extPrim    int
	extStatus  Status
	extCommit  uint64
	extGCFloor uint64
	viewCount  uint64
	stopped    bool
}

// NewNode creates a node; call Start to run it.
func NewNode(cfg Config) (*Node, error) {
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 3 * cfg.HeartbeatInterval
	}
	if cfg.Transport == nil {
		return nil, errors.New("paxos: nil transport")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("paxos: no peers")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	n := &Node{
		cfg:      cfg,
		events:   make(chan event, 4096),
		done:     make(chan struct{}),
		primary:  cfg.InitialPrimary,
		acks:     make(map[uint64]map[int]bool),
		peerDone: make(map[int]uint64),
		lastHB:   time.Now(), //crane:detflow-ok heartbeat timer, below the consensus boundary
	}
	n.flusher, _ = cfg.Transport.(Flusher)
	if cfg.Obs != nil {
		n.obsProposals = cfg.Obs.Counter("paxos_proposals_total",
			"payloads accepted for consensus ordering by this node")
		n.obsCommits = cfg.Obs.Counter("paxos_commits_total",
			"entries committed (persisted and delivered) by this node")
		n.obsBatchEntries = cfg.Obs.ValueHistogram("paxos_batch_entries",
			"entries coalesced per Accept round")
		n.obsCommitLat = cfg.Obs.Histogram("paxos_commit_seconds",
			"Accept-round broadcast to quorum commit")
		n.roundStart = make(map[uint64]time.Time)
		cfg.Obs.GaugeFunc("paxos_view", "current view number", func() float64 {
			v, _ := n.View()
			return float64(v)
		})
		cfg.Obs.GaugeFunc("paxos_commit_index", "highest committed global index", func() float64 {
			return float64(n.CommitIndex())
		})
		cfg.Obs.GaugeFunc("paxos_view_changes_total", "Normal views entered", func() float64 {
			return float64(n.ViewChanges())
		})
	}
	// Randomize the election timeout per node to break candidate ties;
	// re-randomized on every retry so near-identical draws cannot keep
	// two candidates colliding round after round.
	n.electRng = rand.New(rand.NewSource(int64(cfg.ID)*7919 + 42)) //crane:detflow-ok election jitter is intentionally per-replica; consensus agrees on the outcome
	n.electDelay = cfg.ElectionTimeout +
		time.Duration(n.electRng.Int63n(int64(cfg.ElectionTimeout)+1))
	if err := n.recover(); err != nil {
		return nil, err
	}
	return n, nil
}

// recover rebuilds committed state from the WAL.
func (n *Node) recover() error {
	if n.cfg.Store == nil {
		return nil
	}
	first, ok := n.cfg.Store.First()
	if !ok {
		return nil
	}
	n.base = first - 1
	err := n.cfg.Store.Scan(first, ^uint64(0), func(r wal.Record) bool {
		n.log = append(n.log, LogEntry{Index: r.Index, View: r.View, Payload: r.Payload})
		n.commitIdx = r.Index
		if r.View > n.lastNorm {
			n.lastNorm = r.View
			n.view = r.View
		}
		return true
	})
	return err
}

// Start launches the event loop and begins heartbeating/elections.
func (n *Node) Start() {
	n.cfg.Transport.SetHandler(func(msg Message) {
		select {
		case n.events <- event{msg: &msg}:
		case <-n.done:
		}
	})
	go n.loop()
}

// Stop terminates the event loop.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.done)
}

// Propose submits a payload for consensus. Only the primary accepts
// proposals; commitment is reported asynchronously through OnDeliver.
func (n *Node) Propose(payload []byte) error {
	return n.ProposeBatch([][]byte{payload})
}

// ProposeBatch submits a burst of payloads for consensus in submission
// order — the proposal primitive. The batcher coalesces queued payloads
// (across concurrent callers, up to MaxBatch/MaxBatchBytes) into
// multi-entry Accept rounds and keeps up to MaxInflight rounds in flight,
// so the per-round broadcast and the backup-side fsync are amortized over
// the burst. A nil error means the payloads were accepted for ordering;
// commitment is reported asynchronously through OnDeliver, and (as with
// any uncommitted proposal) a view change may still discard them.
func (n *Node) ProposeBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if !n.IsPrimary() {
		return ErrNotPrimary
	}
	ev := event{batch: payloads, reply: make(chan error, 1)}
	select {
	case n.events <- ev:
	case <-n.done:
		return ErrStopped
	}
	select {
	case err := <-ev.reply:
		return err
	case <-n.done:
		return ErrStopped
	}
}

// IsPrimary reports whether this node believes it is the primary of the
// current view and is in Normal status.
func (n *Node) IsPrimary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extPrim == n.cfg.ID && n.extStatus == StatusNormal
}

// View returns the current view number and primary id.
func (n *Node) View() (uint64, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extView, n.extPrim
}

// CommitIndex returns the highest committed global index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extCommit
}

// Campaign asks the node to start an election for the next view now
// instead of waiting out a heartbeat timeout. Sharded deployments use it
// for leadership alignment: independent per-group elections can settle on
// different replicas after a failover, and the designated replica pulls
// the remaining groups onto itself so one proxy can serve every
// connection. A node that already leads ignores the call; the view-change
// log merge makes a takeover from a live leader safe (committed entries
// survive via the promise quorum).
func (n *Node) Campaign() {
	select {
	case n.events <- event{campaign: true}:
	case <-n.done:
	}
}

// ViewChanges returns how many times this node entered a new Normal view.
func (n *Node) ViewChanges() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viewCount
}

// LastElectionMillis returns the duration of the last election this node
// won, in milliseconds (0 if it never won one). Benches §7.6 use it.
func (n *Node) LastElectionMillis() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastElectionMs
}

// CompactTo discards in-memory log entries with index <= idx and compacts
// the WAL below them. Only committed prefixes may be compacted; the caller
// must hold a checkpoint at idx (the paper associates every checkpoint
// with a global index precisely so this prefix is recoverable, §5.2).
// Lagging replicas needing compacted entries must restore from that
// checkpoint instead of catch-up.
func (n *Node) CompactTo(idx uint64) {
	done := make(chan struct{})
	select {
	case n.events <- event{compact: idx, reply2: done}:
	case <-n.done:
		return
	}
	select {
	case <-done:
	case <-n.done:
	}
}

func (n *Node) handleCompact(idx uint64) {
	if idx > n.commitIdx {
		idx = n.commitIdx
	}
	if idx <= n.base {
		return
	}
	n.log = append([]LogEntry(nil), n.log[idx-n.base:]...)
	n.base = idx
	if n.cfg.Store != nil {
		n.cfg.Store.CompactBefore(idx + 1) //crane:fsyncerr-ok compaction is best-effort GC: failure retains extra segments but loses no committed entry
	}
}

// SetDone advances this node's done watermark: a promise that it no longer
// needs entries with index <= idx (it holds a checkpoint anchored at or
// above idx, §5.2). The watermark piggybacks on AcceptOK replies; when the
// primary sees every peer's watermark it compacts to the cluster minimum
// and announces that floor on heartbeats, where backups apply it. GC never
// runs below any replica's promise, and a node that never calls SetDone
// pins the whole cluster at full retention. Fire-and-forget.
func (n *Node) SetDone(idx uint64) {
	select {
	case n.events <- event{done: idx, setDone: true}:
	case <-n.done:
	}
}

// GCFloor returns the highest compaction floor this node has applied via
// the Done/Min protocol (0 until the cluster minimum first advances).
func (n *Node) GCFloor() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extGCFloor
}

// handleDone raises the local done watermark and, on the primary, re-checks
// the cluster minimum.
func (n *Node) handleDone(idx uint64) {
	if idx <= n.doneIdx {
		return
	}
	n.doneIdx = idx
	n.maybeGC()
}

// clusterMinDone returns the minimum done watermark across this node and
// every peer (0 while any peer has yet to report).
func (n *Node) clusterMinDone() uint64 {
	min := n.doneIdx
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		if d := n.peerDone[p]; d < min {
			min = d
		}
	}
	return min
}

// maybeGC compacts to the cluster minimum done watermark. Only the primary
// computes the minimum (it is the only node that sees every peer's
// AcceptOK); backups compact at the floor the primary announces on
// Heartbeat/Commit messages.
func (n *Node) maybeGC() {
	if n.status != StatusNormal || n.primary != n.cfg.ID {
		return
	}
	if min := n.clusterMinDone(); min > n.gcFloor {
		n.applyGCFloor(min)
	}
}

// applyGCFloor trims log and WAL below floor on any node.
func (n *Node) applyGCFloor(floor uint64) {
	if floor <= n.gcFloor {
		return
	}
	n.gcFloor = floor
	n.handleCompact(floor)
}

// ReplayFrom streams persisted committed entries with index in
// (from, CommitIndex] to fn, for replica recovery.
func (n *Node) ReplayFrom(from uint64, fn func(LogEntry) bool) error {
	if n.cfg.Store == nil {
		return nil
	}
	return n.cfg.Store.Scan(from+1, ^uint64(0), func(r wal.Record) bool {
		return fn(LogEntry{Index: r.Index, View: r.View, Payload: r.Payload})
	})
}

func (n *Node) publish() {
	n.mu.Lock()
	n.extView = n.view
	n.extPrim = n.primary
	n.extStatus = n.status
	n.extCommit = n.commitIdx
	n.extGCFloor = n.gcFloor
	n.mu.Unlock()
}

func (n *Node) loop() {
	tick := n.cfg.HeartbeatInterval / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	n.publish()
	if n.cfg.OnViewChange != nil && n.status == StatusNormal {
		n.cfg.OnViewChange(n.view, n.primary)
	}
	// Deliver WAL-recovered entries beyond DeliverFrom.
	for _, e := range n.log {
		if e.Index <= n.commitIdx && e.Index > n.cfg.DeliverFrom && n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(e)
		}
	}
	for {
		//crane:detflow-ok event-loop arm order is below consensus; decided order is what replicas see
		select {
		case <-n.done:
			n.cfg.Transport.Close()
			return
		case ev := <-n.events:
			switch {
			case ev.msg != nil:
				n.handle(*ev.msg)
			case ev.reply2 != nil:
				n.handleCompact(ev.compact)
				close(ev.reply2)
			case ev.setDone:
				n.handleDone(ev.done)
			case ev.campaign:
				if n.status != StatusNormal || n.primary != n.cfg.ID {
					n.startElection()
					// Hold the timer-driven retry off for a full backoff
					// window so it cannot trample this election.
					n.lastHB = time.Now() //crane:detflow-ok election timer, below the consensus boundary
				}
			case ev.batch != nil || ev.reply != nil:
				n.handlePropose(ev)
			}
		case <-ticker.C:
			n.handleTick()
		}
		if n.flusher != nil {
			// Batch boundary: every send triggered by this event shares
			// one transport flush (one syscall on buffered transports).
			n.flusher.Flush()
		}
		n.publish()
	}
}

func (n *Node) majority() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) broadcast(msg Message) {
	msg.From = n.cfg.ID
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.cfg.Transport.Send(p, msg)
		}
	}
}

func (n *Node) send(to int, msg Message) {
	msg.From = n.cfg.ID
	n.cfg.Transport.Send(to, msg)
}

func (n *Node) lastLogIndex() uint64 { return n.base + uint64(len(n.log)) }

func (n *Node) entryAt(idx uint64) *LogEntry {
	if idx <= n.base || idx > n.lastLogIndex() {
		return nil
	}
	return &n.log[idx-n.base-1]
}

func (n *Node) handlePropose(ev event) {
	if n.status != StatusNormal || n.primary != n.cfg.ID {
		ev.reply <- ErrNotPrimary
		return
	}
	n.pending = append(n.pending, ev.batch...)
	n.obsProposals.Add(uint64(len(ev.batch)))
	ev.reply <- nil
	n.maybeSendBatches()
}

// maybeSendBatches drains queued proposals into multi-entry Accept rounds
// while the pipeline window has room. Called whenever proposals arrive or
// the commit index advances (freeing a window slot).
func (n *Node) maybeSendBatches() {
	if n.status != StatusNormal || n.primary != n.cfg.ID {
		return
	}
	for len(n.pending) > 0 && len(n.inflight) < n.cfg.MaxInflight {
		n.sendBatch()
	}
}

// sendBatch moves one batch from the pending queue into the log and
// broadcasts it as a single Accept round.
func (n *Node) sendBatch() {
	count, bytes := 0, 0
	for count < len(n.pending) && count < n.cfg.MaxBatch {
		if count > 0 && bytes+len(n.pending[count]) > n.cfg.MaxBatchBytes {
			break
		}
		bytes += len(n.pending[count])
		count++
	}
	first := n.lastLogIndex() + 1
	ents := make([]LogEntry, count)
	for i := 0; i < count; i++ {
		e := LogEntry{Index: first + uint64(i), View: n.view, Payload: n.pending[i]}
		n.log = append(n.log, e)
		n.acks[e.Index] = map[int]bool{n.cfg.ID: true}
		ents[i] = e
	}
	n.pending = n.pending[count:]
	if len(n.pending) == 0 {
		n.pending = nil // release the drained backing array
	}
	n.inflight = append(n.inflight, first+uint64(count)-1)
	n.obsBatchEntries.ObserveValue(uint64(count))
	if n.roundStart != nil {
		// Commit latency is sampled, not exhaustively timed: stamping every
		// round costs two clock reads plus map churn on the event loop — the
		// dominant instrumentation cost on the propose-commit hot path —
		// while 1-in-8 rounds keeps the histogram representative.
		if n.roundSeq&commitLatSampleMask == 0 {
			n.roundStart[first+uint64(count)-1] = time.Now()
		}
		n.roundSeq++
	}
	if count == 1 {
		// Single-entry wire form, identical to the pre-batching protocol.
		n.broadcast(Message{Type: MsgAccept, View: n.view, Index: first,
			Payload: ents[0].Payload, CommitIdx: n.commitIdx})
	} else {
		n.broadcast(Message{Type: MsgAccept, View: n.view, Index: first,
			Entries: ents, CommitIdx: n.commitIdx})
	}
	// Single-replica degenerate case: self-ack is already a majority.
	n.tryAdvanceCommit()
}

// resetBatcher discards proposal state that cannot survive a view
// transition: in-flight rounds die with the view, and queued payloads are
// dropped like any uncommitted proposal.
func (n *Node) resetBatcher() {
	n.pending = nil
	n.inflight = nil
	if n.roundStart != nil {
		n.roundStart = make(map[uint64]time.Time)
	}
}

func (n *Node) handleTick() {
	now := time.Now() //crane:detflow-ok tick clock drives timers below the consensus boundary
	if n.status == StatusNormal && n.primary == n.cfg.ID {
		// Safety net: refill the pipeline window in case a freeing commit
		// arrived without triggering a send (e.g. after a view change).
		n.maybeSendBatches()
		// The heartbeat carries the log tail so backups that lost
		// Accepts (e.g. to transport overflow under load) detect the
		// gap and catch up even when no newer Accept arrives.
		n.broadcast(Message{Type: MsgHeartbeat, View: n.view,
			CommitIdx: n.commitIdx, Index: n.lastLogIndex(),
			Done: n.gcFloor})
		return
	}
	// Backup or mid-election: check for primary silence.
	if now.Sub(n.lastHB) >= n.electDelay {
		n.startElection()
		n.lastHB = now // back off before retrying
		n.electDelay = n.cfg.ElectionTimeout +
			time.Duration(n.electRng.Int63n(int64(n.cfg.ElectionTimeout)+1))
	}
}

func (n *Node) startElection() {
	next := n.view + 1
	if n.promised >= next {
		next = n.promised + 1
	}
	if n.electing && n.candView >= next {
		next = n.candView + 1
	}
	n.electing = true
	n.electPhase = 1
	n.candView = next
	n.status = StatusViewChange
	n.resetBatcher()
	n.promises = map[int]*Message{}
	n.primaryAcks = map[int]bool{}
	n.electionStart = time.Now() //crane:detflow-ok election timer, below the consensus boundary
	// Self-promise.
	n.promised = next
	n.promises[n.cfg.ID] = &Message{
		From: n.cfg.ID, View: next, CommitIdx: n.commitIdx,
		LastNorm: n.lastNorm, Entries: n.entriesAbove(n.commitIdx),
	}
	n.broadcast(Message{Type: MsgProposeView, View: next, CommitIdx: n.commitIdx})
	n.maybeWinPhase1()
}

func (n *Node) entriesAbove(idx uint64) []LogEntry {
	var out []LogEntry
	for i := idx + 1; i <= n.lastLogIndex(); i++ {
		out = append(out, *n.entryAt(i))
	}
	return out
}

func (n *Node) handle(msg Message) {
	switch msg.Type {
	case MsgAccept:
		n.onAccept(msg)
	case MsgAcceptOK:
		n.onAcceptOK(msg)
	case MsgCommit, MsgHeartbeat:
		n.onHeartbeat(msg)
	case MsgProposeView:
		n.onProposeView(msg)
	case MsgPromiseView:
		n.onPromiseView(msg)
	case MsgProposePrimary:
		n.onProposePrimary(msg)
	case MsgAckPrimary:
		n.onAckPrimary(msg)
	case MsgNewPrimary:
		n.onNewPrimary(msg)
	case MsgRequestEntries:
		n.onRequestEntries(msg)
	case MsgEntries:
		n.onEntries(msg)
	}
}

func (n *Node) onAccept(msg Message) {
	if msg.View < n.view || n.status != StatusNormal {
		return
	}
	if msg.View > n.view {
		// We missed a view change; ask the sender for state.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
		return
	}
	n.lastHB = time.Now() //crane:detflow-ok heartbeat timer, below the consensus boundary
	if len(msg.Entries) > 0 {
		n.onAcceptBatch(msg)
		return
	}
	switch {
	case msg.Index == n.lastLogIndex()+1:
		n.log = append(n.log, LogEntry{Index: msg.Index, View: msg.View, Payload: msg.Payload})
		n.sendAcceptOK(msg.From, msg.Index)
	case msg.Index <= n.lastLogIndex():
		// Duplicate (e.g. retransmission): re-ack idempotently.
		n.sendAcceptOK(msg.From, msg.Index)
	default:
		// Gap: request catch-up.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
	}
	n.applyCommit(msg.CommitIdx)
}

// onAcceptBatch handles a multi-entry Accept round: append the entries that
// extend our log and answer with one cumulative AcceptOK covering the whole
// round. Within a view the primary's appends are sequential, so an OK at
// index i acknowledges every entry at or below i.
func (n *Node) onAcceptBatch(msg Message) {
	if msg.Entries[0].Index > n.lastLogIndex()+1 {
		// Gap ahead of the batch: request catch-up.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
		return
	}
	for _, e := range msg.Entries {
		if e.Index == n.lastLogIndex()+1 {
			n.log = append(n.log, e)
		}
		// Entries at or below lastLogIndex are duplicates; the cumulative
		// OK below re-acks them idempotently.
	}
	last := msg.Entries[len(msg.Entries)-1].Index
	if lli := n.lastLogIndex(); last > lli {
		last = lli
	}
	n.sendAcceptOK(msg.From, last)
	n.applyCommit(msg.CommitIdx)
}

// sendAcceptOK replies with an AcceptOK, piggybacking any fresh
// flight-recorder audit samples for the primary to cross-check.
func (n *Node) sendAcceptOK(to int, idx uint64) {
	m := Message{Type: MsgAcceptOK, View: n.view, Index: idx, Done: n.doneIdx}
	if n.cfg.AuditSource != nil {
		m.Audit = n.cfg.AuditSource()
	}
	n.send(to, m)
}

func (n *Node) onAcceptOK(msg Message) {
	if n.cfg.OnAudit != nil && len(msg.Audit) > 0 {
		n.cfg.OnAudit(msg.From, msg.Audit)
	}
	if msg.Done > n.peerDone[msg.From] {
		n.peerDone[msg.From] = msg.Done
		n.maybeGC()
	}
	if msg.View != n.view || n.primary != n.cfg.ID || n.status != StatusNormal {
		return
	}
	if msg.Index <= n.commitIdx {
		return
	}
	// Cumulative acknowledgment: within a view the backup's log is appended
	// sequentially from the primary, so an OK at msg.Index covers every
	// uncommitted index at or below it.
	last := msg.Index
	if lli := n.lastLogIndex(); last > lli {
		last = lli
	}
	for i := n.commitIdx + 1; i <= last; i++ {
		m := n.acks[i]
		if m == nil {
			m = map[int]bool{n.cfg.ID: true}
			n.acks[i] = m
		}
		m[msg.From] = true
	}
	n.tryAdvanceCommit()
}

func (n *Node) tryAdvanceCommit() {
	target := n.commitIdx
	for {
		next := target + 1
		if next > n.lastLogIndex() {
			break
		}
		if len(n.acks[next]) < n.majority() {
			break
		}
		target = next
	}
	if target == n.commitIdx {
		return
	}
	for i := n.commitIdx + 1; i <= target; i++ {
		delete(n.acks, i)
	}
	n.commitThrough(target)
	n.broadcast(Message{Type: MsgCommit, View: n.view, CommitIdx: n.commitIdx,
		Done: n.gcFloor})
	// Retire acknowledged pipeline rounds and refill the window.
	for len(n.inflight) > 0 && n.inflight[0] <= n.commitIdx {
		if len(n.roundStart) != 0 { // skip the hash when no round is sampled
			if t0, ok := n.roundStart[n.inflight[0]]; ok {
				n.obsCommitLat.Since(t0)
				delete(n.roundStart, n.inflight[0])
			}
		}
		n.inflight = n.inflight[1:]
	}
	if len(n.inflight) == 0 {
		n.inflight = nil
	}
	n.maybeSendBatches()
}

// commitThrough persists and delivers entries (commitIdx, target] — the
// group-commit point: the whole range is appended to the WAL as one batch
// (one buffered write + one fsync), then delivered in index order.
func (n *Node) commitThrough(target uint64) {
	if lli := n.lastLogIndex(); target > lli {
		target = lli
	}
	if target <= n.commitIdx {
		return
	}
	first := n.commitIdx + 1
	if n.cfg.Store != nil {
		recs := make([]wal.Record, 0, target-n.commitIdx)
		for i := first; i <= target; i++ {
			e := n.entryAt(i)
			recs = append(recs, wal.Record{Index: e.Index, View: e.View, Payload: e.Payload})
		}
		if err := n.cfg.Store.AppendBatch(recs); err != nil {
			// A persistence failure is fatal for a real deployment; in
			// this reproduction we surface it loudly.
			panic(fmt.Sprintf("paxos: wal append: %v", err))
		}
	}
	for i := first; i <= target; i++ {
		e := n.entryAt(i)
		n.commitIdx = i
		if n.cfg.OnDeliver != nil && i > n.cfg.DeliverFrom {
			n.cfg.OnDeliver(*e)
		}
	}
	n.obsCommits.Add(target - first + 1)
}

// applyCommit advances the commit index toward target using local entries.
func (n *Node) applyCommit(target uint64) {
	n.commitThrough(target)
	if n.commitIdx < target {
		// Missing committed entries: catch up from the primary.
		n.send(n.primary, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
	}
}

func (n *Node) onHeartbeat(msg Message) {
	if msg.View < n.view {
		// A stale primary pinging us; if we are its successor's follower,
		// ignore. If *we* are primary of a newer view, re-announce so the
		// old primary downgrades (§7.6's self-downgrading).
		if n.primary == n.cfg.ID && n.status == StatusNormal {
			n.send(msg.From, Message{Type: MsgNewPrimary, View: n.view,
				Primary: n.cfg.ID, CommitIdx: n.commitIdx,
				Entries: n.entriesAbove(0)})
		}
		return
	}
	if msg.View > n.view {
		// We are behind; adopt after fetching state.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
		n.lastHB = time.Now() //crane:detflow-ok heartbeat timer, below the consensus boundary
		return
	}
	n.lastHB = time.Now() //crane:detflow-ok heartbeat timer, below the consensus boundary
	if msg.From == n.primary && msg.Done > n.gcFloor {
		// The primary announced a new cluster-minimum done watermark: every
		// replica (including this one) has promised it holds a checkpoint at
		// or above it, so trimming below it loses nothing recoverable.
		n.applyGCFloor(msg.Done)
	}
	if n.status == StatusViewChange && msg.From == n.primary {
		// Primary is alive after all (e.g. transient network blip during
		// our election attempt): return to normal.
		n.status = StatusNormal
		n.electing = false
	}
	if msg.Index > n.lastLogIndex() && msg.From == n.primary {
		// We are missing accepted entries (dropped Accepts): catch up.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
	}
	n.applyCommit(msg.CommitIdx)
}

// --- election: step 1 (propose a new view) ---

func (n *Node) onProposeView(msg Message) {
	// Tie-break concurrent candidacies deterministically: a candidate
	// yields to an equal-view proposal from a higher node id.
	tie := msg.View == n.promised && n.electing && msg.From > n.cfg.ID
	if (msg.View <= n.promised && !tie) || msg.View <= n.view {
		return
	}
	n.promised = msg.View
	n.status = StatusViewChange
	n.electing = false // defer to the candidate
	n.send(msg.From, Message{Type: MsgPromiseView, View: msg.View,
		CommitIdx: n.commitIdx, LastNorm: n.lastNorm,
		Entries: n.entriesAbove(msg.CommitIdx)})
}

func (n *Node) onPromiseView(msg Message) {
	if !n.electing || n.electPhase != 1 || msg.View != n.candView {
		return
	}
	m := msg
	n.promises[msg.From] = &m
	n.maybeWinPhase1()
}

func (n *Node) maybeWinPhase1() {
	if len(n.promises) < n.majority() {
		return
	}
	// Merge logs: committed prefix = max commit; uncommitted suffix from
	// the promise with the highest (LastNorm, length).
	var bestCommit uint64
	//crane:detflow-ok max reduction over promises is iteration-order-insensitive
	for _, p := range n.promises {
		if p.CommitIdx > bestCommit {
			bestCommit = p.CommitIdx
		}
	}
	var best *Message
	for _, p := range n.promises {
		if best == nil || p.LastNorm > best.LastNorm ||
			(p.LastNorm == best.LastNorm && lastIdx(p) > lastIdx(best)) {
			best = p
		}
	}
	// Assemble the merged view of all entries above our own commitIdx:
	// prefer entries from `best`, fill committed gaps from any promise.
	merged := make(map[uint64]LogEntry)
	for _, p := range n.promises {
		for _, e := range p.Entries {
			if e.Index <= bestCommit {
				if old, ok := merged[e.Index]; !ok || e.View > old.View {
					merged[e.Index] = e
				}
			}
		}
	}
	for _, e := range best.Entries {
		if e.Index > bestCommit {
			merged[e.Index] = e
		}
	}
	// Build a contiguous suffix starting after our commitIdx.
	var suffix []LogEntry
	for i := n.commitIdx + 1; ; i++ {
		e, ok := merged[i]
		if !ok {
			if le := n.entryAt(i); le != nil && i <= bestCommit {
				e, ok = *le, true
			}
		}
		if !ok {
			break
		}
		e.View = n.candView
		suffix = append(suffix, e)
	}
	n.mergedLog = suffix
	n.mergedCommit = bestCommit
	n.electPhase = 2
	n.primaryAcks = map[int]bool{n.cfg.ID: true}
	n.broadcast(Message{Type: MsgProposePrimary, View: n.candView, Primary: n.cfg.ID})
	n.maybeWinPhase2()
}

func lastIdx(p *Message) uint64 {
	if len(p.Entries) == 0 {
		return p.CommitIdx
	}
	return p.Entries[len(p.Entries)-1].Index
}

// --- election: step 2 (propose self as primary candidate) ---

func (n *Node) onProposePrimary(msg Message) {
	if msg.View != n.promised || msg.View <= n.view {
		return
	}
	n.send(msg.From, Message{Type: MsgAckPrimary, View: msg.View})
}

func (n *Node) onAckPrimary(msg Message) {
	if !n.electing || n.electPhase != 2 || msg.View != n.candView {
		return
	}
	n.primaryAcks[msg.From] = true
	n.maybeWinPhase2()
}

func (n *Node) maybeWinPhase2() {
	if len(n.primaryAcks) < n.majority() {
		return
	}
	// --- step 3: announce self as the new primary ---
	n.installNewView(n.candView, n.cfg.ID, n.mergedCommit, n.mergedLog)
	n.broadcast(Message{Type: MsgNewPrimary, View: n.view, Primary: n.cfg.ID,
		CommitIdx: n.commitIdx, Entries: n.mergedLog})
	// Re-propose any uncommitted suffix under the new view as batched
	// Accept rounds (MaxBatch entries per round).
	for first := n.commitIdx + 1; first <= n.lastLogIndex(); {
		last := first + uint64(n.cfg.MaxBatch) - 1
		if lli := n.lastLogIndex(); last > lli {
			last = lli
		}
		ents := make([]LogEntry, 0, last-first+1)
		for i := first; i <= last; i++ {
			n.acks[i] = map[int]bool{n.cfg.ID: true}
			ents = append(ents, *n.entryAt(i))
		}
		if len(ents) == 1 {
			n.broadcast(Message{Type: MsgAccept, View: n.view, Index: first,
				Payload: ents[0].Payload, CommitIdx: n.commitIdx})
		} else {
			n.broadcast(Message{Type: MsgAccept, View: n.view, Index: first,
				Entries: ents, CommitIdx: n.commitIdx})
		}
		first = last + 1
	}
	n.mu.Lock()
	n.lastElectionMs = float64(time.Since(n.electionStart).Microseconds()) / 1000.0
	n.mu.Unlock()
	n.electing = false
	n.tryAdvanceCommit()
}

func (n *Node) onNewPrimary(msg Message) {
	if msg.View < n.view || (msg.View == n.view && n.status == StatusNormal) {
		return
	}
	n.installNewView(msg.View, msg.Primary, msg.CommitIdx, msg.Entries)
	n.lastHB = time.Now() //crane:detflow-ok heartbeat timer, below the consensus boundary
}

// installNewView adopts view/primary and reconciles the log: entries above
// our commit index are replaced by the announced suffix; newly learned
// committed entries are committed locally.
func (n *Node) installNewView(view uint64, primary int, commit uint64, suffix []LogEntry) {
	// Drop our uncommitted suffix.
	if n.lastLogIndex() > n.commitIdx {
		n.log = n.log[:n.commitIdx-n.base]
	}
	for _, e := range suffix {
		if e.Index == n.lastLogIndex()+1 {
			le := e
			le.View = view
			n.log = append(n.log, le)
		}
	}
	n.view = view
	n.primary = primary
	n.status = StatusNormal
	n.lastNorm = view
	if n.promised < view {
		n.promised = view
	}
	n.electing = false
	n.resetBatcher()
	n.commitThrough(commit)
	if n.commitIdx < commit {
		n.send(primary, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
	}
	n.mu.Lock()
	n.viewCount++
	n.mu.Unlock()
	if n.cfg.OnViewChange != nil {
		n.cfg.OnViewChange(view, primary)
	}
	// Ack any uncommitted entries we just installed (one cumulative OK).
	if primary != n.cfg.ID && n.lastLogIndex() > n.commitIdx {
		n.sendAcceptOK(primary, n.lastLogIndex())
	}
}

// --- catch-up ---

// catchUpBatch caps one catch-up reply; a lagging node re-requests until
// level. Unbounded replies would make recovery quadratic under load.
const catchUpBatch = 2048

func (n *Node) onRequestEntries(msg Message) {
	if n.status != StatusNormal || n.primary != n.cfg.ID {
		return
	}
	from := msg.Index
	if from <= n.base {
		from = n.base + 1
	}
	ents := n.entriesAbove(from - 1)
	if len(ents) > catchUpBatch {
		ents = ents[:catchUpBatch]
	}
	n.send(msg.From, Message{Type: MsgEntries, View: n.view,
		CommitIdx: n.commitIdx, Entries: ents, Primary: n.cfg.ID})
}

func (n *Node) onEntries(msg Message) {
	if msg.View < n.view {
		return
	}
	if msg.View > n.view {
		// Adopt the newer view along with its entries.
		n.installNewView(msg.View, msg.Primary, 0, nil)
	}
	n.lastHB = time.Now() //crane:detflow-ok heartbeat timer, below the consensus boundary
	appendedUncommitted := false
	for _, e := range msg.Entries {
		if e.Index == n.lastLogIndex()+1 {
			n.log = append(n.log, e)
			if e.Index > msg.CommitIdx {
				appendedUncommitted = true
			}
		}
	}
	if appendedUncommitted {
		// One cumulative OK covers every uncommitted entry just appended.
		n.sendAcceptOK(msg.From, n.lastLogIndex())
	}
	if len(msg.Entries) == catchUpBatch && n.lastLogIndex() < msg.CommitIdx {
		// More committed entries remain: keep pulling.
		n.send(msg.From, Message{Type: MsgRequestEntries, Index: n.lastLogIndex() + 1})
	}
	n.applyCommit(msg.CommitIdx)
}
