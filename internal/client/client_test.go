package client

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crane/internal/cfs"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// kv is the familiar replicated store used as the test target.
type kv struct {
	workers int
	mu      sync.Mutex
	data    map[string]string
}

func (s *kv) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.data)
	return buf.Bytes(), err
}

func (s *kv) Restore(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&s.data)
}

func (s *kv) Run(t papi.T) {
	l, err := t.Listen(9300)
	if err != nil {
		return
	}
	var (
		wl      []papi.Conn
		wlMu    = t.NewMutex()
		wlCv    = t.NewCond()
		stateMu = t.NewMutex()
	)
	for i := 0; i < s.workers; i++ {
		t.Spawn(fmt.Sprintf("w%d", i), func(wt papi.T) {
			for !wt.Killed() {
				wlMu.Lock(wt)
				for len(wl) == 0 {
					wlCv.Wait(wt, wlMu)
				}
				c := wl[0]
				wl = wl[1:]
				wlMu.Unlock(wt)
				s.serve(wt, c, stateMu)
			}
		})
	}
	for !t.Killed() {
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		wlMu.Lock(t)
		wl = append(wl, c)
		wlMu.Unlock(t)
		wlCv.Signal(t)
	}
}

func (s *kv) serve(t papi.T, c papi.Conn, stateMu papi.Mutex) {
	defer c.Close(t)
	buf := make([]byte, 256)
	var acc []byte
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		parts := strings.SplitN(strings.TrimSpace(string(acc[:i])), " ", 3)
		acc = acc[i+1:]
		var resp string
		stateMu.Lock(t)
		s.mu.Lock()
		switch parts[0] {
		case "SET":
			s.data[parts[1]] = parts[2]
			resp = "OK\n"
		case "GET":
			if v, ok := s.data[parts[1]]; ok {
				resp = "VALUE " + v + "\n"
			} else {
				resp = "NONE\n"
			}
		default:
			resp = "ERR\n"
		}
		s.mu.Unlock()
		stateMu.Unlock(t)
		if _, err := c.Send(t, []byte(resp)); err != nil {
			return
		}
	}
}

func startKV(t *testing.T) (*crane.Cluster, *Client) {
	t.Helper()
	prog := papi.Program{
		Name:  "kv",
		Ports: []int{9300},
		New: func(fs *cfs.FS) papi.Instance {
			return &kv{workers: 8, data: make(map[string]string)}
		},
	}
	cluster, err := crane.StartCluster(crane.Config{
		Mode:              crane.ModeCrane,
		Replicas:          3,
		NetOptions:        simnet.Options{Latency: 40 * time.Microsecond},
		HeartbeatInterval: 20 * time.Millisecond,
		ElectionTimeout:   120 * time.Millisecond,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	cl, err := New(Config{
		Net:   cluster.Net(),
		Hosts: []string{"replica0", "replica1", "replica2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, cl
}

func TestClientFindsPrimary(t *testing.T) {
	_, cl := startKV(t)
	resp, err := cl.Request(9300, []byte("SET a 1\n"), UntilLine())
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(resp)) != "OK" {
		t.Fatalf("resp = %q", resp)
	}
	resp, err = cl.Request(9300, []byte("GET a\n"), UntilLine())
	if err != nil || strings.TrimSpace(string(resp)) != "VALUE 1" {
		t.Fatalf("GET = %q, %v", resp, err)
	}
}

func TestClientSurvivesFailover(t *testing.T) {
	cluster, cl := startKV(t)
	if _, err := cl.Request(9300, []byte("SET key before\n"), UntilLine()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	// The client must discover the new primary on its own.
	deadline := time.Now().Add(15 * time.Second)
	var resp []byte
	var err error
	for time.Now().Before(deadline) {
		resp, err = cl.Request(9300, []byte("GET key\n"), UntilLine())
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("post-failover request: %v", err)
	}
	if strings.TrimSpace(string(resp)) != "VALUE before" {
		t.Fatalf("post-failover GET = %q", resp)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := New(Config{Net: simnet.New(simnet.Options{})}); err == nil {
		t.Fatal("empty hosts accepted")
	}
}

func TestCompletionHelpers(t *testing.T) {
	if !UntilLine()([]byte("x\n")) || UntilLine()([]byte("x")) {
		t.Fatal("UntilLine broken")
	}
	if !UntilBytes(3)([]byte("abc")) || UntilBytes(3)([]byte("ab")) {
		t.Fatal("UntilBytes broken")
	}
	if !UntilContains("END")([]byte("...END...")) || UntilContains("END")([]byte("EN")) {
		t.Fatal("UntilContains broken")
	}
}

func TestClientExhaustsAndReports(t *testing.T) {
	net := simnet.New(simnet.Options{})
	cl, err := New(Config{Net: net, Hosts: []string{"ghost0", "ghost1"},
		MaxAttempts: 3, RetryBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Request(1, []byte("x"), UntilLine()); err == nil {
		t.Fatal("request to ghosts succeeded")
	}
}
