// Package client is the client-side library for talking to a CRANE
// deployment. The paper's clients "send network requests to the primary"
// (§2) — but only the primary's proxy accepts connections, and the primary
// can change at any failover, so a real client needs discovery and retry.
// This package provides both: it rotates across the replica set, detects
// backup refusals (immediate close without a response), remembers the last
// working replica, and retries requests across leader changes.
package client

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"crane/internal/simnet"
)

// Config configures a Client.
type Config struct {
	// Net is the network the replicas live on.
	Net *simnet.Network
	// Hosts are the replica host names (e.g. replica0, replica1, ...).
	Hosts []string
	// LocalHost names this client on the network (default "client").
	LocalHost string
	// RequestTimeout bounds one attempt's response wait (default 10s).
	RequestTimeout time.Duration
	// MaxAttempts bounds request retries across replicas and leader
	// changes (default 3 passes over the replica set).
	MaxAttempts int
	// RetryBackoff is the pause between failed attempts (default 2ms).
	RetryBackoff time.Duration
}

// Client is a failover-aware CRANE client. Safe for concurrent use; each
// request opens its own connection (the evaluation workloads' pattern,
// Fig. 3/6).
type Client struct {
	cfg Config

	mu      sync.Mutex
	current int // index of the last replica that served us
	seq     int // connection counter for unique client addresses
}

// ErrExhausted is returned when every attempt failed.
var ErrExhausted = errors.New("client: all replicas refused or failed")

// New creates a client.
func New(cfg Config) (*Client, error) {
	if cfg.Net == nil {
		return nil, errors.New("client: nil network")
	}
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("client: no replica hosts")
	}
	if cfg.LocalHost == "" {
		cfg.LocalHost = "client"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3 * len(cfg.Hosts)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	return &Client{cfg: cfg}, nil
}

// next returns the replica index to try and a unique local address.
func (c *Client) next(rotate bool) (int, simnet.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rotate {
		c.current = (c.current + 1) % len(c.cfg.Hosts)
	}
	c.seq++
	return c.current, simnet.Addr(fmt.Sprintf("%s:%d", c.cfg.LocalHost, c.seq))
}

// Request sends payload over a fresh connection to the current primary and
// reads the response until `done` reports completion (e.g. a terminator
// line or byte count). A backup target (connection closed without data) or
// a mid-request leader change triggers rotation and retry.
//
// Note the inherent SMR caveat the paper shares: a retry after a partial
// failure may re-execute a non-idempotent request; the evaluation
// workloads are request/response and tolerate this.
func (c *Client) Request(port int, payload []byte, done func(resp []byte) bool) ([]byte, error) {
	var lastErr error = ErrExhausted
	rotate := false
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		idx, local := c.next(rotate)
		rotate = true // on any failure move to the next replica
		target := simnet.Addr(fmt.Sprintf("%s:%d", c.cfg.Hosts[idx], port))
		conn, err := c.cfg.Net.Dial(local, target)
		if err != nil {
			lastErr = err
			time.Sleep(c.cfg.RetryBackoff)
			continue
		}
		resp, err := c.exchange(conn, payload, done)
		conn.Close()
		if err == nil {
			// This replica served us: stick with it.
			c.mu.Lock()
			c.current = idx
			c.mu.Unlock()
			return resp, nil
		}
		lastErr = err
		time.Sleep(c.cfg.RetryBackoff)
	}
	return nil, lastErr
}

func (c *Client) exchange(conn *simnet.Conn, payload []byte, done func([]byte) bool) ([]byte, error) {
	if _, err := conn.Write(payload); err != nil {
		return nil, fmt.Errorf("client: write: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(c.cfg.RequestTimeout))
	var resp []byte
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		resp = append(resp, buf[:n]...)
		if done(resp) {
			return resp, nil
		}
		if err != nil {
			if err == io.EOF && len(resp) > 0 && done(resp) {
				return resp, nil
			}
			if err == io.EOF && len(resp) == 0 {
				// A backup's proxy refuses by closing immediately.
				return nil, fmt.Errorf("client: replica refused (backup?): %w", ErrExhausted)
			}
			return resp, fmt.Errorf("client: read: %w", err)
		}
	}
}

// UntilLine returns a completion check that fires once a full line
// (terminated by \n) has arrived.
func UntilLine() func([]byte) bool {
	return func(b []byte) bool {
		for _, ch := range b {
			if ch == '\n' {
				return true
			}
		}
		return false
	}
}

// UntilBytes returns a completion check that fires at n response bytes.
func UntilBytes(n int) func([]byte) bool {
	return func(b []byte) bool { return len(b) >= n }
}

// UntilContains returns a completion check that fires when the response
// contains the given marker.
func UntilContains(marker string) func([]byte) bool {
	m := []byte(marker)
	return func(b []byte) bool {
		return len(b) >= len(m) && contains(b, m)
	}
}

func contains(b, sub []byte) bool {
	if len(sub) == 0 {
		return true
	}
outer:
	for i := 0; i+len(sub) <= len(b); i++ {
		for j := range sub {
			if b[i+j] != sub[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
