package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: the liveness/role facts an operator (or
// load balancer) needs to route around a sick replica.
type Health struct {
	Replica     int    `json:"replica"`
	Mode        string `json:"mode"`
	Primary     bool   `json:"primary"`
	View        uint64 `json:"view"`
	ViewPrimary int    `json:"view_primary"`
	CommitIndex uint64 `json:"commit_index"`
	WALTail     uint64 `json:"wal_tail"`
	WALLag      uint64 `json:"wal_lag"` // commit index minus WAL tail
	OpenConns   int64  `json:"open_conns"`
	SeqPending  int    `json:"seq_pending"`
}

// Server is one replica's scrape endpoint: /metrics (Prometheus text),
// /healthz (JSON), /debug/pprof (the standard profiles). It binds its own
// listener and mux — never the process-global DefaultServeMux — so every
// replica in a test process can serve independently.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer serves reg and health on addr ("host:0" picks a free port).
// health may be nil (the endpoint then returns 404); tracer may be nil
// (/trace returns an empty body); journal may be nil (/journal returns
// 404) — when set it dumps the replica's flight-recorder journal as JSONL
// for offline divergence localization (crane-inspect).
func StartServer(addr string, reg *Registry, health func() Health, tracer *Tracer, journal func(io.Writer) error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(health())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		tracer.WriteJSONL(w)
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, _ *http.Request) {
		if journal == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		journal(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
