// Package obs is the observability substrate threaded through every layer
// of the system: a lock-cheap metrics registry (atomic counters, gauges,
// and log-bucketed latency histograms), a request-lifecycle span tracer
// with both wall-clock and logical (DMT clock) timestamps, and an opt-in
// HTTP scrape surface (/metrics, /healthz, /debug/pprof).
//
// The paper evaluates CRANE almost entirely through end-to-end latency
// deltas (§7.1); this package provides the per-stage breakdown — proxy
// burst queue, Accept round, WAL fsync, DMT turn — that the original
// system lacked and that every subsequent scheduling/batching optimization
// needs as its measurement backbone.
//
// Hot-path cost is one or two atomic adds per observation. Every
// instrument method is nil-receiver-safe, so a nil *Registry acts as a
// no-op registry: code instruments unconditionally and pays nothing when
// observability is disabled (the overhead ceiling is benchmarked by
// cmd/crane-bench -only observability).
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op registry).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// gaugeFunc is a scrape-time callback gauge (view numbers, queue depths,
// counters owned by another subsystem's mutex).
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations with ns in [2^(i-1), 2^i), covering 1ns..~9min.
const histBuckets = 40

// Histogram is a log-bucketed latency histogram. Observations cost two
// atomic adds (the observation count is derived from the buckets at
// scrape time, not maintained separately); quantiles are extracted at
// scrape time by walking the cumulative bucket counts (error bounded by
// the 2x bucket width).
type Histogram struct {
	name, help string
	isValue    bool          // unitless (batch sizes, depths) vs nanoseconds
	sum        atomic.Uint64 // total nanoseconds (or raw units when isValue)
	buckets    [histBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// Since records the elapsed time from t0 to now.
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0))
	}
}

// ObserveValue records one unitless observation (batch size, queue depth)
// into the same log-bucket layout. Use with ValueHistogram instruments.
func (h *Histogram) ObserveValue(v uint64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// QuantileValue is Quantile for unitless histograms: the raw bucket
// midpoint of the q-th observation.
func (h *Histogram) QuantileValue(q float64) float64 {
	return float64(h.Quantile(q))
}

func bucketIndex(ns uint64) int {
	i := bits.Len64(ns) // 0 for 0, 1 for 1, 2 for 2-3, ...
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the exclusive upper bound of bucket i in ns.
func bucketUpper(i int) uint64 {
	if i >= 63 {
		return math.MaxUint64
	}
	return uint64(1) << uint(i)
}

// Count returns the number of observations (0 on nil), summed from the
// buckets. Under concurrent observation the value may lag individual
// bucket reads by in-flight observations; it is exact at quiescence.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := 0; i < histBuckets; i++ {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]): the
// geometric midpoint of the bucket containing the q-th observation.
// Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			hi := bucketUpper(i)
			lo := hi / 2
			return time.Duration((lo + hi) / 2)
		}
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// Snapshot is a point-in-time copy of a histogram's distribution. For
// unitless histograms (Unitless true) the duration fields hold raw
// units, not nanoseconds.
type Snapshot struct {
	Name     string
	Unitless bool
	Count    uint64
	Sum      time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
}

// Snapshot captures count, sum, and the p50/p95/p99 quantiles.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	return Snapshot{
		Name:     h.name,
		Unitless: h.isValue,
		Count:    h.Count(),
		Sum:      h.Sum(),
		P50:      h.Quantile(0.50),
		P95:      h.Quantile(0.95),
		P99:      h.Quantile(0.99),
	}
}

// Registry holds a named set of instruments. Registration (cold path)
// takes a mutex; observation (hot path) is lock-free. A nil *Registry is
// the no-op registry: every constructor returns nil, and nil instruments
// discard observations.
//
// A Registry value is a view over shared instrument state: Grouped derives
// a view that namespaces instrument names with a consensus-group id, so N
// Paxos groups register side by side in one scrape surface without name
// collisions (ISSUE 10).
type Registry struct {
	st     *registryState
	rename func(string) string // nil: identity
}

type registryState struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	gaugeFuncs []*gaugeFunc
	hists      []*Histogram
	byName     map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{st: &registryState{byName: make(map[string]any)}}
}

// Grouped returns a view of the registry that renames every instrument
// registered through it with a consensus-group namespace inserted after
// the subsystem prefix: "paxos_proposals_total" becomes
// "paxos_group2_proposals_total", "wal_fsyncs_total" becomes
// "wal_group2_fsyncs_total". The view shares the underlying instrument
// state, so WritePrometheus on any view renders everything. Nil-safe.
func (r *Registry) Grouped(g int) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{st: r.st, rename: func(name string) string {
		return GroupInstrumentName(name, g)
	}}
}

// GroupInstrumentName inserts a group namespace after an instrument
// name's subsystem prefix ("paxos_x" -> "paxos_group2_x").
func GroupInstrumentName(name string, g int) string {
	if i := strings.IndexByte(name, '_'); i >= 0 {
		return name[:i+1] + "group" + strconv.Itoa(g) + "_" + name[i+1:]
	}
	return name + "_group" + strconv.Itoa(g)
}

// name applies the view's rename, if any.
func (r *Registry) name(n string) string {
	if r.rename != nil {
		return r.rename(n)
	}
	return n
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if c, ok := r.st.byName[name].(*Counter); ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.st.counters = append(r.st.counters, c)
	r.st.byName[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if g, ok := r.st.byName[name].(*Gauge); ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.st.gauges = append(r.st.gauges, g)
	r.st.byName[name] = g
	return g
}

// GaugeFunc registers a scrape-time callback gauge. fn must be safe to
// call from the scrape goroutine. Re-registering a name replaces its
// callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if g, ok := r.st.byName[name].(*gaugeFunc); ok {
		g.fn = fn
		return
	}
	g := &gaugeFunc{name: name, help: help, fn: fn}
	r.st.gaugeFuncs = append(r.st.gaugeFuncs, g)
	r.st.byName[name] = g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if h, ok := r.st.byName[name].(*Histogram); ok {
		return h
	}
	h := &Histogram{name: name, help: help}
	r.st.hists = append(r.st.hists, h)
	r.st.byName[name] = h
	return h
}

// ValueHistogram returns a unitless histogram (batch sizes, depths)
// registered under name, creating it if needed. Feed it with
// ObserveValue; its Prometheus buckets are raw units, not seconds.
func (r *Registry) ValueHistogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if h, ok := r.st.byName[name].(*Histogram); ok {
		return h
	}
	h := &Histogram{name: name, help: help, isValue: true}
	r.st.hists = append(r.st.hists, h)
	r.st.byName[name] = h
	return h
}

// FindHistogram returns the histogram registered under name, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h, _ := r.st.byName[name].(*Histogram)
	return h
}

// Histograms returns every registered histogram, sorted by name.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	out := make([]*Histogram, len(r.st.hists))
	copy(out, r.st.hists)
	r.st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (durations in seconds, as the convention requires).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	counters := append([]*Counter(nil), r.st.counters...)
	gauges := append([]*Gauge(nil), r.st.gauges...)
	gaugeFuncs := append([]*gaugeFunc(nil), r.st.gaugeFuncs...)
	hists := append([]*Histogram(nil), r.st.hists...)
	r.st.mu.Unlock()

	var b strings.Builder
	for _, c := range counters {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v.Load())
	}
	for _, g := range gauges {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.v.Load())
	}
	for _, g := range gaugeFuncs {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			g.name, g.help, g.name, g.name, g.fn())
	}
	for _, h := range hists {
		scale := 1e9 // nanoseconds -> seconds, per Prometheus convention
		if h.isValue {
			scale = 1
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 && i != histBuckets-1 {
				continue // elide empty buckets; cumulative counts stay exact
			}
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n",
				h.name, float64(bucketUpper(i))/scale, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
		fmt.Fprintf(&b, "%s_sum %g\n", h.name, float64(h.sum.Load())/scale)
		fmt.Fprintf(&b, "%s_count %d\n", h.name, cum)
		// Precomputed quantile gauges alongside the cumulative series, for
		// scrapers that don't run histogram_quantile(). Same unit scaling
		// as the buckets (seconds for duration histograms).
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			fmt.Fprintf(&b, "# HELP %s_%s %s (%s estimate)\n# TYPE %s_%s gauge\n%s_%s %g\n",
				h.name, q.suffix, h.help, q.suffix, h.name, q.suffix,
				h.name, q.suffix, float64(h.Quantile(q.q))/scale)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
