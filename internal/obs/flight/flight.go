// Package flight is the divergence-forensics flight recorder: an
// always-on, bounded journal of the determinism-relevant event stream a
// CRANE replica executes — scheduler ticks, wait/signal keys, cross-lane
// merge stamps, Paxos-sequence consumption acts — plus an annotation
// journal for events that are *about* the run but not themselves
// replica-deterministic (speculation windows, checkpoint boundary
// installs, view changes, output records).
//
// Comparable events are stored in per-lane rings, each entry carrying the
// lane's logical clock, its sequence consumption position, and a rolling
// FNV-1a chain hash folded over every comparable event so far. Two
// replicas executing the same committed stream record byte-identical
// per-lane event streams, so equal chain values at equal entry indexes
// mean equal prefixes — and the first divergent scheduling decision can
// be found by binary search over the chains instead of replaying logs.
// Periodic segment checksums extend that comparison horizon far beyond
// the entry ring: the ring retains the last few thousand entries, the
// segment ring summarizes the chain every segEvery entries over a much
// longer window.
//
// Audit marks are the live half: every auditEvery-th consumption
// position the journal snapshots (pos, chain); backups piggyback their
// freshest marks onto AcceptOK messages and the leader cross-checks them
// against its own marks, turning "the run is split-brained" into an
// alarm raised while the run is still going.
//
// Writer discipline: all comparable-event emission for a lane happens
// while holding that lane's DMT token (scheduler ticks under the
// scheduler mutex, consumption acts under the sequence mutex, both only
// ever by the thread holding the lane token), so each journal has a
// single logical writer. The per-journal mutex is therefore uncontended
// on the hot path; it exists to fence rare dump/audit readers, and Emit
// allocates nothing.
package flight

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Comparable event kinds: folded into the rolling chain hash. These are
// exactly the events that are replica-deterministic under the CRANE gate
// (idle-thread ticks are excluded upstream, mirroring ScheduleSum).
const (
	EvTick    uint8 = 1 // scheduler tick: A=thread id, B=op byte
	EvWait    uint8 = 2 // thread parked on a wait key: A=thread id, B=key
	EvSignal  uint8 = 3 // waiter woken: A=woken thread id, B=key
	EvMerge   uint8 = 4 // cross-lane merge linearized: A=thread id, B=stamp
	EvConnect uint8 = 5 // CONNECT consumed: A=conn, B=pos after
	EvSend    uint8 = 6 // SEND fully consumed: A=conn, B=pos after
	EvClose   uint8 = 7 // CLOSE consumed: A=conn, B=pos after
	EvBubble  uint8 = 8 // time bubble exhausted: A=granted clocks, B=pos after
)

// Annotation event kinds: recorded in the control journal for forensics
// but never folded into a chain — their timing is physical (view changes,
// speculation, checkpoints) so folding them would raise false alarms.
const (
	EvOutput       uint8 = 64 // output recorded: A=conn, B=cumulative count
	EvSpecOpen     uint8 = 65 // speculation window opened: A=entries fed
	EvSpecConfirm  uint8 = 66 // window confirmed: A=confirmed entries
	EvSpecAbort    uint8 = 67 // window aborted: A=entries, B=1 if rollback
	EvSpecRollback uint8 = 68 // checkpoint rollback: A=new epoch, B=boundary index
	EvCheckpoint   uint8 = 69 // boundary checkpoint installed: A=log index
	EvViewChange   uint8 = 70 // consensus view change: A=view, B=primary
	EvGroupCommit  uint8 = 71 // sharded consensus commit: A=Paxos group, B=per-group slot
)

// Comparable reports whether kind participates in the chain hash.
func Comparable(kind uint8) bool { return kind < 64 }

// KindName returns the JSONL name for an event kind.
func KindName(kind uint8) string {
	switch kind {
	case EvTick:
		return "tick"
	case EvWait:
		return "wait"
	case EvSignal:
		return "signal"
	case EvMerge:
		return "merge"
	case EvConnect:
		return "connect"
	case EvSend:
		return "send"
	case EvClose:
		return "close"
	case EvBubble:
		return "bubble"
	case EvOutput:
		return "output"
	case EvSpecOpen:
		return "spec_open"
	case EvSpecConfirm:
		return "spec_confirm"
	case EvSpecAbort:
		return "spec_abort"
	case EvSpecRollback:
		return "spec_rollback"
	case EvCheckpoint:
		return "checkpoint"
	case EvViewChange:
		return "view_change"
	case EvGroupCommit:
		return "group_commit"
	}
	return fmt.Sprintf("kind%d", kind)
}

// kindByName is the inverse of KindName for the parser.
func kindByName(name string) uint8 {
	for k := uint8(1); k <= EvBubble; k++ {
		if KindName(k) == name {
			return k
		}
	}
	for k := EvOutput; k <= EvGroupCommit; k++ {
		if KindName(k) == name {
			return k
		}
	}
	return 0
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Entry is one journaled event.
type Entry struct {
	Idx    uint64 // position in this journal's stream since the last epoch reset
	Kind   uint8
	Lane   int32
	Clock  uint64 // lane logical clock at emission (informational, not folded)
	Pos    uint64 // lane sequence consumption position at emission
	A, B   uint64
	Chain  uint64 // rolling chain AFTER folding this entry (annotations: unchanged)
	Detail string // optional human annotation (allocating path only)
}

// Segment summarizes the chain at a 256-entry boundary; the segment ring
// outlives the entry ring, extending the comparable horizon.
type Segment struct {
	End   uint64 // stream index just past the segment (multiple of segEvery)
	Chain uint64
}

// Mark is an audit snapshot: the chain as of the emission where the
// consumption position first reached a multiple of auditEvery.
type Mark struct {
	Pos   uint64
	Chain uint64
}

// AuditSample is one mark shipped across the consensus transport for the
// live audit. Lane >= 0 identifies a journal chain sample; Lane ==
// OutputLane carries an output-fingerprint sample where Pos is the
// cumulative output count and Chain the incremental output FNV hash.
type AuditSample struct {
	Lane  int32
	Epoch uint32
	Pos   uint64
	Chain uint64
}

// OutputLane is the sentinel lane for output-fingerprint samples.
const OutputLane int32 = -2

// Defaults.
const (
	DefaultCapacity   = 4096
	DefaultSegEvery   = 256
	DefaultAuditEvery = 64
	segCap            = 512
	markCap           = 256
)

// Journal is one lane's bounded single-writer event ring.
type Journal struct {
	mu   sync.Mutex
	lane int32

	buf   []Entry
	head  uint64 // total entries emitted since the last reset
	chain uint64
	epoch uint32

	segEvery uint64
	segs     []Segment
	seghead  uint64

	auditEvery uint64
	marks      []Mark
	markhead   uint64
	nextMark   uint64
	lastPos    uint64
}

// PosUnchanged tells Emit the caller has no consumption position (pure
// scheduler events); the journal substitutes the last position seen.
const PosUnchanged = ^uint64(0)

func newJournal(lane int32, capacity int, segEvery, auditEvery uint64) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{
		lane:       lane,
		buf:        make([]Entry, capacity),
		chain:      fnvOffset,
		segEvery:   segEvery,
		segs:       make([]Segment, 0, segCap),
		auditEvery: auditEvery,
		marks:      make([]Mark, 0, markCap),
		nextMark:   auditEvery,
	}
}

// Emit journals one scalar event. This is the preallocated hot path: it
// takes no interface values, formats nothing, and allocates nothing; the
// per-journal mutex is uncontended because the lane token already
// serializes every writer. Safe on a nil journal (no-op), so callers
// need no recorder-enabled branch.
func (j *Journal) Emit(kind uint8, clock, pos, a, b uint64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.emitLocked(kind, clock, pos, a, b, "")
	j.mu.Unlock()
}

// Note journals one annotated event. The detail string escapes to the
// heap, so this is the allocating path: annotation-only, never from a
// per-tick loop (cranevet's obsreg analyzer enforces this in the
// scheduler and sequence hot paths).
func (j *Journal) Note(kind uint8, clock, a, b uint64, detail string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.emitLocked(kind, clock, PosUnchanged, a, b, detail)
	j.mu.Unlock()
}

func (j *Journal) emitLocked(kind uint8, clock, pos, a, b uint64, detail string) {
	if pos == PosUnchanged {
		pos = j.lastPos
	} else {
		j.lastPos = pos
	}
	if Comparable(kind) {
		h := j.chain
		h = (h ^ uint64(kind)) * fnvPrime
		h = (h ^ a) * fnvPrime
		h = (h ^ b) * fnvPrime
		j.chain = h
	}
	idx := j.head
	j.head++
	e := &j.buf[idx%uint64(len(j.buf))]
	e.Idx, e.Kind, e.Lane = idx, kind, j.lane
	e.Clock, e.Pos, e.A, e.B = clock, pos, a, b
	e.Chain, e.Detail = j.chain, detail
	if j.segEvery != 0 && j.head%j.segEvery == 0 {
		if len(j.segs) < segCap {
			j.segs = append(j.segs, Segment{End: j.head, Chain: j.chain})
		} else {
			j.segs[j.seghead%segCap] = Segment{End: j.head, Chain: j.chain}
		}
		j.seghead++
	}
	if j.auditEvery != 0 && pos >= j.nextMark {
		if len(j.marks) < markCap {
			j.marks = append(j.marks, Mark{Pos: pos, Chain: j.chain})
		} else {
			j.marks[j.markhead%markCap] = Mark{Pos: pos, Chain: j.chain}
		}
		j.markhead++
		j.nextMark = (pos/j.auditEvery + 1) * j.auditEvery
	}
}

// Len returns the number of entries emitted since the last reset.
func (j *Journal) Len() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.head
}

// Chain returns the current rolling chain hash.
func (j *Journal) Chain() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.chain
}

// Entries returns a copy of the retained entries, oldest first.
func (j *Journal) Entries() []Entry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entriesLocked()
}

func (j *Journal) entriesLocked() []Entry {
	n := j.head
	capacity := uint64(len(j.buf))
	if n > capacity {
		n = capacity
	}
	out := make([]Entry, 0, n)
	for i := j.head - n; i < j.head; i++ {
		out = append(out, j.buf[i%capacity])
	}
	return out
}

// Segments returns a copy of the retained segment checksums, oldest
// first.
func (j *Journal) Segments() []Segment {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Segment, len(j.segs))
	if j.seghead <= segCap {
		copy(out, j.segs)
		return out
	}
	// Ring wrapped: oldest slot is seghead%segCap.
	start := j.seghead % segCap
	copy(out, j.segs[start:])
	copy(out[segCap-start:], j.segs[:start])
	return out
}

// MarksSince returns retained audit marks with Pos > after, oldest
// first, capped at max.
func (j *Journal) MarksSince(after uint64, max int) []Mark {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Mark
	n := uint64(len(j.marks))
	start := uint64(0)
	if j.markhead > n {
		start = j.markhead - n
	}
	for i := start; i < j.markhead; i++ {
		m := j.marks[i%markCap]
		if m.Pos > after {
			out = append(out, m)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// MarkAt looks up the retained mark recorded at exactly pos; within
// reports whether pos falls inside the retained mark window (so a miss
// with within==true means the replicas' marks are misaligned — itself
// divergence evidence).
func (j *Journal) MarkAt(pos uint64) (m Mark, ok, within bool) {
	if j == nil {
		return Mark{}, false, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := uint64(len(j.marks))
	if n == 0 {
		return Mark{}, false, false
	}
	start := uint64(0)
	if j.markhead > n {
		start = j.markhead - n
	}
	oldest := j.marks[start%markCap].Pos
	newest := j.marks[(j.markhead-1)%markCap].Pos
	within = pos >= oldest && pos <= newest
	for i := start; i < j.markhead; i++ {
		if c := j.marks[i%markCap]; c.Pos == pos {
			return c, true, within
		}
	}
	return Mark{}, false, within
}

// NewestMark returns the most recent retained audit mark.
func (j *Journal) NewestMark() (Mark, bool) {
	if j == nil {
		return Mark{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.markhead == 0 || len(j.marks) == 0 {
		return Mark{}, false
	}
	return j.marks[(j.markhead-1)%markCap], true
}

// reset re-bases the journal for a new epoch: the rollback path rebuilds
// execution from the last committed boundary, so the re-recording starts
// from a fresh chain basis.
func (j *Journal) reset(epoch uint32) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.head = 0
	j.chain = fnvOffset
	j.epoch = epoch
	j.segs = j.segs[:0]
	j.seghead = 0
	j.marks = j.marks[:0]
	j.markhead = 0
	j.nextMark = j.auditEvery
	j.lastPos = 0
	j.mu.Unlock()
}

// Recorder aggregates one replica's journals: one comparable journal per
// execution lane plus a control journal for annotations. A nil recorder
// is fully inert, so "recorder off" costs one nil check per call site.
type Recorder struct {
	name  string
	lanes []*Journal
	ctl   *Journal
	epoch atomic.Uint32

	auditEvery uint64

	outMu       sync.Mutex
	outMarks    []Mark
	outMarkhead uint64
	nextOutMark uint64
}

// Options configures a Recorder; zero values take defaults.
type Options struct {
	Capacity   int    // entries retained per journal (default 4096)
	SegEvery   uint64 // entries per segment checksum (default 256)
	AuditEvery uint64 // consumed positions per audit mark (default 64)
}

// New creates a recorder for a replica with the given lane count.
func New(name string, lanes int, opts Options) *Recorder {
	if lanes < 1 {
		lanes = 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.SegEvery == 0 {
		opts.SegEvery = DefaultSegEvery
	}
	if opts.AuditEvery == 0 {
		opts.AuditEvery = DefaultAuditEvery
	}
	r := &Recorder{
		name:       name,
		ctl:        newJournal(-1, opts.Capacity, 0, 0),
		auditEvery: opts.AuditEvery,
	}
	r.nextOutMark = opts.AuditEvery
	for i := 0; i < lanes; i++ {
		r.lanes = append(r.lanes, newJournal(int32(i), opts.Capacity, opts.SegEvery, opts.AuditEvery))
	}
	return r
}

// Name returns the replica name the recorder was created with.
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Lanes returns the number of lane journals.
func (r *Recorder) Lanes() int {
	if r == nil {
		return 0
	}
	return len(r.lanes)
}

// Lane returns lane i's journal (nil out of range or on a nil recorder,
// which downstream Emit calls tolerate).
func (r *Recorder) Lane(i int) *Journal {
	if r == nil || i < 0 || i >= len(r.lanes) {
		return nil
	}
	return r.lanes[i]
}

// Control returns the annotation journal.
func (r *Recorder) Control() *Journal {
	if r == nil {
		return nil
	}
	return r.ctl
}

// Epoch returns the current journal epoch (bumped by rollback).
func (r *Recorder) Epoch() uint32 {
	if r == nil {
		return 0
	}
	return r.epoch.Load()
}

// AuditEvery returns the configured mark interval.
func (r *Recorder) AuditEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.auditEvery
}

// AdvanceEpoch re-bases every lane journal under a new epoch. The
// speculation rollback path calls this before replaying the committed
// stream through the rebuilt scheduler: the post-rollback re-recording
// is internally consistent but not comparable with journals recorded
// live, so the live audit compares only equal-epoch samples (output
// fingerprints, which cover only committed outputs, stay epoch-free).
func (r *Recorder) AdvanceEpoch() uint32 {
	if r == nil {
		return 0
	}
	e := r.epoch.Add(1)
	for _, j := range r.lanes {
		j.reset(e)
	}
	return e
}

// NoteOutput records an output-fingerprint audit mark whenever the
// cumulative output count crosses a mark interval. count and fp must be
// a coherent pair (taken under the output log's lock).
func (r *Recorder) NoteOutput(count, fp uint64) {
	if r == nil || r.auditEvery == 0 {
		return
	}
	r.outMu.Lock()
	if count >= r.nextOutMark {
		if uint64(len(r.outMarks)) < markCap {
			r.outMarks = append(r.outMarks, Mark{Pos: count, Chain: fp})
		} else {
			r.outMarks[r.outMarkhead%markCap] = Mark{Pos: count, Chain: fp}
		}
		r.outMarkhead++
		r.nextOutMark = (count/r.auditEvery + 1) * r.auditEvery
	}
	r.outMu.Unlock()
}

// OutputMarkAt looks up the output-fingerprint mark at exactly count.
func (r *Recorder) OutputMarkAt(count uint64) (m Mark, ok, within bool) {
	if r == nil {
		return Mark{}, false, false
	}
	r.outMu.Lock()
	defer r.outMu.Unlock()
	n := uint64(len(r.outMarks))
	if n == 0 {
		return Mark{}, false, false
	}
	start := uint64(0)
	if r.outMarkhead > n {
		start = r.outMarkhead - n
	}
	oldest := r.outMarks[start%markCap].Pos
	newest := r.outMarks[(r.outMarkhead-1)%markCap].Pos
	within = count >= oldest && count <= newest
	for i := start; i < r.outMarkhead; i++ {
		if c := r.outMarks[i%markCap]; c.Pos == count {
			return c, true, within
		}
	}
	return Mark{}, false, within
}

// NewestOutputMark returns the most recent retained output-fingerprint
// mark.
func (r *Recorder) NewestOutputMark() (Mark, bool) {
	if r == nil {
		return Mark{}, false
	}
	r.outMu.Lock()
	defer r.outMu.Unlock()
	if r.outMarkhead == 0 || len(r.outMarks) == 0 {
		return Mark{}, false
	}
	return r.outMarks[(r.outMarkhead-1)%markCap], true
}

// outputMarksSince mirrors MarksSince for the output-fingerprint ring.
func (r *Recorder) outputMarksSince(after uint64, max int) []Mark {
	if r == nil {
		return nil
	}
	r.outMu.Lock()
	defer r.outMu.Unlock()
	var out []Mark
	n := uint64(len(r.outMarks))
	start := uint64(0)
	if r.outMarkhead > n {
		start = r.outMarkhead - n
	}
	for i := start; i < r.outMarkhead; i++ {
		m := r.outMarks[i%markCap]
		if m.Pos > after {
			out = append(out, m)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// AuditCursor tracks which marks a backup has already piggybacked, so
// each AcceptOK carries only fresh samples (usually none).
type AuditCursor struct {
	mu       sync.Mutex
	lanePos  []uint64
	outCount uint64
}

// maxSamplesPerLane bounds how many marks one message carries per lane.
const maxSamplesPerLane = 4

// CollectAudit gathers fresh audit samples since the cursor's last call.
// It returns nil (no allocation) when nothing new was marked — the
// common case, since marks appear only every auditEvery-th consumed
// position.
func (r *Recorder) CollectAudit(cur *AuditCursor) []AuditSample {
	if r == nil || cur == nil {
		return nil
	}
	cur.mu.Lock()
	defer cur.mu.Unlock()
	if cur.lanePos == nil {
		cur.lanePos = make([]uint64, len(r.lanes))
	}
	epoch := r.Epoch()
	var out []AuditSample
	for i, j := range r.lanes {
		for _, m := range j.MarksSince(cur.lanePos[i], maxSamplesPerLane) {
			out = append(out, AuditSample{Lane: int32(i), Epoch: epoch, Pos: m.Pos, Chain: m.Chain})
			if m.Pos > cur.lanePos[i] {
				cur.lanePos[i] = m.Pos
			}
		}
	}
	for _, m := range r.outputMarksSince(cur.outCount, maxSamplesPerLane) {
		out = append(out, AuditSample{Lane: OutputLane, Pos: m.Pos, Chain: m.Chain})
		if m.Pos > cur.outCount {
			cur.outCount = m.Pos
		}
	}
	return out
}

// WriteJSONL dumps the recorder — a meta line, then every retained
// segment and entry of each journal (control journal last) — one JSON
// object per line, the format served at /journal and read back by
// ParseJournal/crane-inspect.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintf(w, "{\"meta\":\"crane-flight-journal\",\"replica\":\"\",\"lanes\":0,\"epoch\":0}\n")
		return err
	}
	bw := newLineWriter(w)
	bw.printf("{\"meta\":\"crane-flight-journal\",\"replica\":%q,\"lanes\":%d,\"epoch\":%d,\"audit_every\":%d}\n",
		r.name, len(r.lanes), r.Epoch(), r.auditEvery)
	for _, j := range r.lanes {
		if err := j.writeJSONL(bw); err != nil {
			return err
		}
	}
	if err := r.ctl.writeJSONL(bw); err != nil {
		return err
	}
	return bw.flush()
}

func (j *Journal) writeJSONL(bw *lineWriter) error {
	j.mu.Lock()
	entries := j.entriesLocked()
	head := j.head
	epoch := j.epoch
	j.mu.Unlock()
	for _, s := range j.Segments() {
		bw.printf("{\"lane\":%d,\"epoch\":%d,\"seg_end\":%d,\"chain\":%d}\n",
			j.lane, epoch, s.End, s.Chain)
	}
	if head > uint64(len(entries)) {
		bw.printf("{\"lane\":%d,\"epoch\":%d,\"truncated\":true,\"dropped\":%d}\n",
			j.lane, epoch, head-uint64(len(entries)))
	}
	for i := range entries {
		e := &entries[i]
		if e.Detail == "" {
			bw.printf("{\"lane\":%d,\"epoch\":%d,\"idx\":%d,\"kind\":%q,\"clock\":%d,\"pos\":%d,\"a\":%d,\"b\":%d,\"chain\":%d}\n",
				e.Lane, epoch, e.Idx, KindName(e.Kind), e.Clock, e.Pos, e.A, e.B, e.Chain)
		} else {
			bw.printf("{\"lane\":%d,\"epoch\":%d,\"idx\":%d,\"kind\":%q,\"clock\":%d,\"pos\":%d,\"a\":%d,\"b\":%d,\"chain\":%d,\"detail\":%q}\n",
				e.Lane, epoch, e.Idx, KindName(e.Kind), e.Clock, e.Pos, e.A, e.B, e.Chain, e.Detail)
		}
	}
	return bw.err
}

// lineWriter batches Fprintf lines and carries the first error.
type lineWriter struct {
	w   io.Writer
	err error
}

func newLineWriter(w io.Writer) *lineWriter { return &lineWriter{w: w} }

func (l *lineWriter) printf(format string, args ...any) {
	if l.err != nil {
		return
	}
	_, l.err = fmt.Fprintf(l.w, format, args...)
}

func (l *lineWriter) flush() error { return l.err }
