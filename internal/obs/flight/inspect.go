// Divergence localization over journal dumps: parse two replicas'
// /journal JSONL, binary-search the chained hashes to the first
// divergent entry, and render a side-by-side report. This lives in the
// flight package (not cmd/crane-inspect) so tier-1 tests can assert
// exact localization without shelling out.
package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Dump is one replica's parsed journal.
type Dump struct {
	Replica    string
	LaneCount  int
	Epoch      uint32
	AuditEvery uint64
	Lanes      map[int32]*LaneDump // keyed by lane; -1 is the control journal
}

// LaneDump holds one journal's retained stream.
type LaneDump struct {
	Lane     int32
	Epoch    uint32
	Dropped  uint64 // entries evicted from the ring before the dump
	Segments []Segment
	Entries  []Entry // oldest first; Entries[i].Idx is contiguous
}

// jsonlLine is the union of every line shape WriteJSONL emits.
type jsonlLine struct {
	Meta       string `json:"meta"`
	Replica    string `json:"replica"`
	LaneCount  int    `json:"lanes"`
	AuditEvery uint64 `json:"audit_every"`

	Lane      int32  `json:"lane"`
	Epoch     uint32 `json:"epoch"`
	SegEnd    uint64 `json:"seg_end"`
	Truncated bool   `json:"truncated"`
	Dropped   uint64 `json:"dropped"`

	Idx    uint64 `json:"idx"`
	Kind   string `json:"kind"`
	Clock  uint64 `json:"clock"`
	Pos    uint64 `json:"pos"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
	Chain  uint64 `json:"chain"`
	Detail string `json:"detail"`
}

// ParseJournal reads a /journal JSONL dump back into a Dump.
func ParseJournal(r io.Reader) (*Dump, error) {
	d := &Dump{Lanes: map[int32]*LaneDump{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("flight: journal line %d: %w", lineno, err)
		}
		switch {
		case ln.Meta != "":
			d.Replica = ln.Replica
			d.LaneCount = ln.LaneCount
			d.Epoch = ln.Epoch
			d.AuditEvery = ln.AuditEvery
		case ln.SegEnd != 0:
			lane := d.lane(ln.Lane, ln.Epoch)
			lane.Segments = append(lane.Segments, Segment{End: ln.SegEnd, Chain: ln.Chain})
		case ln.Truncated:
			d.lane(ln.Lane, ln.Epoch).Dropped = ln.Dropped
		case ln.Kind != "":
			lane := d.lane(ln.Lane, ln.Epoch)
			lane.Entries = append(lane.Entries, Entry{
				Idx:    ln.Idx,
				Kind:   kindByName(ln.Kind),
				Lane:   ln.Lane,
				Clock:  ln.Clock,
				Pos:    ln.Pos,
				A:      ln.A,
				B:      ln.B,
				Chain:  ln.Chain,
				Detail: ln.Detail,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flight: journal read: %w", err)
	}
	return d, nil
}

func (d *Dump) lane(lane int32, epoch uint32) *LaneDump {
	l, ok := d.Lanes[lane]
	if !ok {
		l = &LaneDump{Lane: lane, Epoch: epoch}
		d.Lanes[lane] = l
	}
	return l
}

// Divergence locates the first difference between two replicas'
// journals.
type Divergence struct {
	Lane  int32
	Exact bool   // entry-level localization succeeded
	Idx   uint64 // first divergent entry index (when Exact)
	A, B  *Entry // the divergent entries (when Exact)

	SegEnd uint64 // divergent-segment bound when only segment-level localization was possible
	Note   string // human explanation (also set for non-exact outcomes)
}

// FirstDivergence compares two dumps lane by lane and returns the first
// divergent point (lowest lane number wins), or nil if every comparable
// prefix matches. Chains make prefix comparison O(1) per probe, so the
// localization is a binary search: segments narrow the divergence to a
// segEvery-entry window even when the entry ring has evicted it; when
// the entries are retained the search lands on the exact first
// divergent entry.
func FirstDivergence(a, b *Dump) *Divergence {
	if a.Epoch != b.Epoch {
		return &Divergence{Lane: -1, Note: fmt.Sprintf(
			"journal epochs differ (%s epoch %d vs %s epoch %d): a rollback re-based one replica's journal; chains are not comparable",
			a.Replica, a.Epoch, b.Replica, b.Epoch)}
	}
	lanes := make([]int32, 0, len(a.Lanes))
	for lane := range a.Lanes {
		if lane >= 0 {
			lanes = append(lanes, lane)
		}
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	for _, lane := range lanes {
		la, lb := a.Lanes[lane], b.Lanes[lane]
		if lb == nil {
			return &Divergence{Lane: lane, Note: fmt.Sprintf("lane %d present only in %s", lane, a.Replica)}
		}
		if d := divergeLane(la, lb); d != nil {
			return d
		}
	}
	return nil
}

// divergeLane compares one lane's streams.
func divergeLane(a, b *LaneDump) *Divergence {
	// Segment pass: longest horizon. Find the first common segment
	// boundary where the chains differ.
	segDiff, segOK := firstSegmentDiff(a.Segments, b.Segments)

	// Entry pass over the common retained window.
	if len(a.Entries) > 0 && len(b.Entries) > 0 {
		aFirst, bFirst := a.Entries[0].Idx, b.Entries[0].Idx
		lo := aFirst
		if bFirst > lo {
			lo = bFirst
		}
		aLast := a.Entries[len(a.Entries)-1].Idx
		bLast := b.Entries[len(b.Entries)-1].Idx
		hi := aLast
		if bLast < hi {
			hi = bLast
		}
		if lo <= hi {
			at := func(d *LaneDump, idx uint64) *Entry { return &d.Entries[idx-d.Entries[0].Idx] }
			// If the chains agree at the start of the common window but
			// disagree somewhere inside it, binary search for the first
			// divergent entry: chainEq is monotone (once the streams
			// diverge the chains never re-converge, FNV collisions aside).
			chainEq := func(idx uint64) bool { return at(a, idx).Chain == at(b, idx).Chain }
			if !chainEq(hi) {
				if chainEq(lo) {
					for lo+1 < hi {
						mid := lo + (hi-lo)/2
						if chainEq(mid) {
							lo = mid
						} else {
							hi = mid
						}
					}
					ea, eb := at(a, hi), at(b, hi)
					return &Divergence{
						Lane: a.Lane, Exact: true, Idx: hi, A: ea, B: eb,
						Note: fmt.Sprintf("first divergent entry at idx %d (clock %d/%d, pos %d/%d)",
							hi, ea.Clock, eb.Clock, ea.Pos, eb.Pos),
					}
				}
				// Divergence precedes the retained window: the exact entry
				// was evicted from the ring.
				d := &Divergence{Lane: a.Lane, Idx: lo, Note: fmt.Sprintf(
					"chains already differ at the oldest common retained entry (idx %d); the first divergent entry was evicted from the ring", lo)}
				if segOK {
					d.SegEnd = segDiff
					d.Note += fmt.Sprintf("; segment checksums bound it to the %d-entry window ending at idx %d", DefaultSegEvery, segDiff)
				}
				return d
			}
			// Retained entries agree through hi. Streams of different
			// lengths: a longer journal alone is benign (one replica is
			// simply ahead), so only a chain difference counts.
		}
	}
	if segOK {
		return &Divergence{Lane: a.Lane, SegEnd: segDiff, Note: fmt.Sprintf(
			"segment chains differ at the segment ending idx %d but its entries are no longer retained", segDiff)}
	}
	return nil
}

// firstSegmentDiff returns the End of the first common segment boundary
// whose chains differ.
func firstSegmentDiff(a, b []Segment) (uint64, bool) {
	chainAt := map[uint64]uint64{}
	for _, s := range a {
		chainAt[s.End] = s.Chain
	}
	var diffs []uint64
	for _, s := range b {
		if c, ok := chainAt[s.End]; ok && c != s.Chain {
			diffs = append(diffs, s.End)
		}
	}
	if len(diffs) == 0 {
		return 0, false
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
	return diffs[0], true
}

// Report renders a human side-by-side view of the divergence with a
// window of surrounding events from both replicas.
func Report(w io.Writer, a, b *Dump, d *Divergence, window int) {
	if d == nil {
		fmt.Fprintf(w, "no divergence: %s and %s journals agree on every comparable prefix\n", a.Replica, b.Replica)
		return
	}
	if window <= 0 {
		window = 5
	}
	fmt.Fprintf(w, "divergence in lane %d: %s\n", d.Lane, d.Note)
	if !d.Exact {
		if d.SegEnd != 0 {
			fmt.Fprintf(w, "localized to segment ending idx %d\n", d.SegEnd)
		}
		return
	}
	fmt.Fprintf(w, "\n%-44s | %s\n", a.Replica, b.Replica)
	la, lb := a.Lanes[d.Lane], b.Lanes[d.Lane]
	lo := int64(d.Idx) - int64(window)
	hi := int64(d.Idx) + int64(window)
	for i := lo; i <= hi; i++ {
		if i < 0 {
			continue
		}
		idx := uint64(i)
		marker := "  "
		if idx == d.Idx {
			marker = ">>"
		}
		fmt.Fprintf(w, "%s %-41s | %s\n", marker, entryLine(la, idx), entryLine(lb, idx))
	}
}

func entryLine(l *LaneDump, idx uint64) string {
	if l == nil || len(l.Entries) == 0 {
		return "-"
	}
	first := l.Entries[0].Idx
	if idx < first || idx >= first+uint64(len(l.Entries)) {
		return "-"
	}
	e := &l.Entries[idx-first]
	if e.Kind == EvGroupCommit {
		// Label the group id so a divergence report reads as "which Paxos
		// group's stream split" at a glance.
		return fmt.Sprintf("%6d %-8s clk=%d pos=%d grp=%d slot=%d %08x",
			e.Idx, KindName(e.Kind), e.Clock, e.Pos, e.A, e.B, e.Chain&0xffffffff)
	}
	return fmt.Sprintf("%6d %-8s clk=%d pos=%d a=%d b=%d %08x",
		e.Idx, KindName(e.Kind), e.Clock, e.Pos, e.A, e.B, e.Chain&0xffffffff)
}
