package flight

import (
	"bytes"
	"strings"
	"testing"
)

// emitN drives a deterministic synthetic event stream into a journal.
func emitN(j *Journal, n int, seed uint64) {
	for i := 0; i < n; i++ {
		u := uint64(i)
		switch i % 4 {
		case 0:
			j.Emit(EvTick, u, PosUnchanged, seed+u%3, 'P')
		case 1:
			j.Emit(EvWait, u, PosUnchanged, seed+u%3, 1<<62|8080)
		case 2:
			j.Emit(EvSend, u, u/2, seed+100, u/2)
		default:
			j.Emit(EvBubble, u, u/2, 1000, u/2)
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	a := newJournal(0, 128, 16, 8)
	b := newJournal(0, 128, 16, 8)
	emitN(a, 500, 7)
	emitN(b, 500, 7)
	if a.Chain() != b.Chain() {
		t.Fatalf("identical streams produced different chains: %#x vs %#x", a.Chain(), b.Chain())
	}
	c := newJournal(0, 128, 16, 8)
	emitN(c, 500, 8) // different thread ids
	if a.Chain() == c.Chain() {
		t.Fatal("different streams produced equal chains")
	}
}

func TestRingBoundedAndOrdered(t *testing.T) {
	j := newJournal(0, 64, 16, 8)
	emitN(j, 200, 1)
	if got := j.Len(); got != 200 {
		t.Fatalf("Len = %d, want 200", got)
	}
	ents := j.Entries()
	if len(ents) != 64 {
		t.Fatalf("retained %d entries, want ring capacity 64", len(ents))
	}
	for i, e := range ents {
		if want := uint64(200 - 64 + i); e.Idx != want {
			t.Fatalf("entry %d has Idx %d, want %d", i, e.Idx, want)
		}
	}
}

func TestAnnotationsNotFolded(t *testing.T) {
	a := newJournal(0, 64, 0, 0)
	b := newJournal(0, 64, 0, 0)
	a.Emit(EvTick, 1, PosUnchanged, 2, 'P')
	b.Emit(EvTick, 1, PosUnchanged, 2, 'P')
	a.Note(EvViewChange, 5, 3, 1, "view=3 primary=1")
	if a.Chain() != b.Chain() {
		t.Fatal("annotation event changed the chain")
	}
}

func TestSegmentsAndMarks(t *testing.T) {
	j := newJournal(2, 1024, 16, 8)
	for i := 1; i <= 100; i++ {
		j.Emit(EvSend, uint64(i), uint64(i), 42, uint64(i))
	}
	segs := j.Segments()
	if len(segs) != 100/16 {
		t.Fatalf("got %d segments, want %d", len(segs), 100/16)
	}
	for i, s := range segs {
		if want := uint64(16 * (i + 1)); s.End != want {
			t.Fatalf("segment %d ends at %d, want %d", i, s.End, want)
		}
	}
	marks := j.MarksSince(0, 0)
	if len(marks) != 100/8 {
		t.Fatalf("got %d marks, want %d", len(marks), 100/8)
	}
	for _, m := range marks {
		if m.Pos%8 != 0 {
			t.Fatalf("mark at pos %d, want multiples of 8 (pos advances by 1 per emit here)", m.Pos)
		}
		got, ok, within := j.MarkAt(m.Pos)
		if !ok || !within || got.Chain != m.Chain {
			t.Fatalf("MarkAt(%d) = %+v ok=%v within=%v", m.Pos, got, ok, within)
		}
	}
	if _, ok, within := j.MarkAt(13); ok || !within {
		t.Fatalf("MarkAt(13): ok=%v within=%v, want miss inside window", ok, within)
	}
}

func TestMarksMatchAcrossBubbleCoalescing(t *testing.T) {
	// Positions can jump past a mark interval without an emission at the
	// exact multiple (bubble clocks advance pos silently); the mark must
	// still land deterministically on the next emission.
	a := newJournal(0, 128, 0, 10)
	b := newJournal(0, 128, 0, 10)
	for _, j := range []*Journal{a, b} {
		j.Emit(EvTick, 1, PosUnchanged, 1, 'P')
		j.Emit(EvBubble, 2, 27, 1000, 27) // pos jumps 0 -> 27
		j.Emit(EvSend, 3, 28, 9, 28)
	}
	am, bm := a.MarksSince(0, 0), b.MarksSince(0, 0)
	if len(am) != 1 || len(bm) != 1 || am[0] != bm[0] {
		t.Fatalf("marks differ: %+v vs %+v", am, bm)
	}
	if am[0].Pos != 27 {
		t.Fatalf("mark pos = %d, want 27 (first emission at/after the interval)", am[0].Pos)
	}
}

func TestEpochResetRebasesChain(t *testing.T) {
	r := New("r0", 2, Options{Capacity: 64, SegEvery: 16, AuditEvery: 8})
	emitN(r.Lane(0), 50, 1)
	before := r.Lane(0).Chain()
	if e := r.AdvanceEpoch(); e != 1 {
		t.Fatalf("AdvanceEpoch = %d, want 1", e)
	}
	if r.Lane(0).Len() != 0 || r.Lane(1).Len() != 0 {
		t.Fatal("epoch advance did not reset lane journals")
	}
	emitN(r.Lane(0), 50, 1)
	if r.Lane(0).Chain() != before {
		t.Fatal("re-recording the same stream after reset should reproduce the chain")
	}
	if r.Epoch() != 1 {
		t.Fatalf("Epoch = %d, want 1", r.Epoch())
	}
}

func TestCollectAudit(t *testing.T) {
	r := New("r0", 1, Options{Capacity: 256, SegEvery: 32, AuditEvery: 8})
	var cur AuditCursor
	if got := r.CollectAudit(&cur); got != nil {
		t.Fatalf("fresh recorder collected %v, want nil", got)
	}
	for i := 1; i <= 24; i++ {
		r.Lane(0).Emit(EvSend, uint64(i), uint64(i), 1, uint64(i))
	}
	r.NoteOutput(8, 0xabc)
	got := r.CollectAudit(&cur)
	var lanes, outs int
	for _, s := range got {
		switch s.Lane {
		case 0:
			lanes++
			if s.Epoch != 0 || s.Pos%8 != 0 {
				t.Fatalf("bad lane sample %+v", s)
			}
		case OutputLane:
			outs++
			if s.Pos != 8 || s.Chain != 0xabc {
				t.Fatalf("bad output sample %+v", s)
			}
		default:
			t.Fatalf("unexpected lane %d", s.Lane)
		}
	}
	if lanes != 3 || outs != 1 {
		t.Fatalf("collected %d lane + %d output samples, want 3 + 1", lanes, outs)
	}
	// Second collection with no new marks: nothing.
	if got := r.CollectAudit(&cur); got != nil {
		t.Fatalf("re-collection returned %v, want nil", got)
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	j := newJournal(0, 1024, 256, 64)
	n := testing.AllocsPerRun(1000, func() {
		j.Emit(EvTick, 1, PosUnchanged, 2, 'P')
	})
	if n != 0 {
		t.Fatalf("Emit allocates %.1f per call, want 0", n)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Lane(0).Emit(EvTick, 1, 2, 3, 4)
	r.Control().Note(EvViewChange, 1, 2, 3, "x")
	r.NoteOutput(1, 2)
	r.AdvanceEpoch()
	if got := r.CollectAudit(&AuditCursor{}); got != nil {
		t.Fatalf("nil recorder collected %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crane-flight-journal") {
		t.Fatalf("nil dump missing meta line: %q", buf.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New("replica-0", 2, Options{Capacity: 64, SegEvery: 16, AuditEvery: 8})
	emitN(r.Lane(0), 200, 1)
	emitN(r.Lane(1), 40, 2)
	r.Control().Note(EvViewChange, 9, 2, 1, "view=2 primary=1")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Replica != "replica-0" || d.LaneCount != 2 || d.AuditEvery != 8 {
		t.Fatalf("meta mismatch: %+v", d)
	}
	l0 := d.Lanes[0]
	if l0 == nil || l0.Dropped != 200-64 || len(l0.Entries) != 64 {
		t.Fatalf("lane 0 parse: %+v", l0)
	}
	want := r.Lane(0).Entries()
	for i := range want {
		w := want[i]
		w.Detail = ""
		if l0.Entries[i] != w {
			t.Fatalf("entry %d round-trip mismatch:\n got %+v\nwant %+v", i, l0.Entries[i], w)
		}
	}
	if len(l0.Segments) == 0 {
		t.Fatal("lane 0 segments missing from dump")
	}
	ctl := d.Lanes[-1]
	if ctl == nil || len(ctl.Entries) != 1 || ctl.Entries[0].Detail != "view=2 primary=1" {
		t.Fatalf("control journal parse: %+v", ctl)
	}
}

func TestFirstDivergenceExact(t *testing.T) {
	ra := New("ra", 1, Options{Capacity: 2048, SegEvery: 16, AuditEvery: 8})
	rb := New("rb", 1, Options{Capacity: 2048, SegEvery: 16, AuditEvery: 8})
	for i := 0; i < 300; i++ {
		a, b := uint64(i%3), uint64('P')
		ra.Lane(0).Emit(EvTick, uint64(i), PosUnchanged, a, b)
		if i == 137 {
			// Seeded divergence: replica b schedules a different thread.
			rb.Lane(0).Emit(EvTick, uint64(i), PosUnchanged, a+7, b)
			continue
		}
		rb.Lane(0).Emit(EvTick, uint64(i), PosUnchanged, a, b)
	}
	da := parse(t, ra)
	db := parse(t, rb)
	d := FirstDivergence(da, db)
	if d == nil || !d.Exact {
		t.Fatalf("FirstDivergence = %+v, want exact", d)
	}
	if d.Idx != 137 || d.Lane != 0 {
		t.Fatalf("localized to lane %d idx %d, want lane 0 idx 137", d.Lane, d.Idx)
	}
	if d.A.A == d.B.A {
		t.Fatalf("divergent entries should differ: %+v vs %+v", d.A, d.B)
	}
	var rep bytes.Buffer
	Report(&rep, da, db, d, 3)
	if !strings.Contains(rep.String(), ">>") || !strings.Contains(rep.String(), "idx 137") {
		t.Fatalf("report missing marker/localization:\n%s", rep.String())
	}
}

func TestFirstDivergenceEqual(t *testing.T) {
	ra := New("ra", 2, Options{Capacity: 256, SegEvery: 16, AuditEvery: 8})
	rb := New("rb", 2, Options{Capacity: 256, SegEvery: 16, AuditEvery: 8})
	for _, r := range []*Recorder{ra, rb} {
		emitN(r.Lane(0), 100, 1)
		emitN(r.Lane(1), 77, 2)
	}
	if d := FirstDivergence(parse(t, ra), parse(t, rb)); d != nil {
		t.Fatalf("equal journals reported divergence: %+v", d)
	}
	// One replica ahead: still no divergence (prefix property).
	emitN(ra.Lane(0), 20, 1)
	if d := FirstDivergence(parse(t, ra), parse(t, rb)); d != nil {
		t.Fatalf("longer-but-consistent journal reported divergence: %+v", d)
	}
}

func TestFirstDivergenceEvictedFallsBackToSegments(t *testing.T) {
	// Tiny ring, long stream: the divergent entry is evicted, but the
	// segment ring still bounds it.
	ra := New("ra", 1, Options{Capacity: 64, SegEvery: 16, AuditEvery: 8})
	rb := New("rb", 1, Options{Capacity: 64, SegEvery: 16, AuditEvery: 8})
	for i := 0; i < 2000; i++ {
		a := uint64(i % 3)
		ra.Lane(0).Emit(EvTick, uint64(i), PosUnchanged, a, 'P')
		if i == 100 {
			a += 5 // divergence far before the retained window
		}
		rb.Lane(0).Emit(EvTick, uint64(i), PosUnchanged, a, 'P')
	}
	d := FirstDivergence(parse(t, ra), parse(t, rb))
	if d == nil {
		t.Fatal("divergence not detected")
	}
	if d.Exact {
		t.Fatalf("expected non-exact localization, got %+v", d)
	}
	if d.SegEnd == 0 || d.SegEnd > 112 {
		t.Fatalf("segment bound %d, want first divergent segment boundary (<= 112)", d.SegEnd)
	}
}

func TestFirstDivergenceEpochMismatch(t *testing.T) {
	ra := New("ra", 1, Options{})
	rb := New("rb", 1, Options{})
	rb.AdvanceEpoch()
	d := FirstDivergence(parse(t, ra), parse(t, rb))
	if d == nil || !strings.Contains(d.Note, "epoch") {
		t.Fatalf("epoch mismatch not reported: %+v", d)
	}
}

func parse(t *testing.T, r *Recorder) *Dump {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
