package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("requests_total", ""); again != c {
		t.Fatal("re-registration did not dedup")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	r.GaugeFunc("clock", "logical clock", func() float64 { return 42 })
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "")
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	g.Set(3)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments retained values")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram quantiles non-zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "")
	// 100 observations at ~1µs, 10 at ~1ms: p50 must land near 1µs and
	// p99 near 1ms (within the 2x log-bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 500*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Mean() <= 0 || h.Sum() <= 0 {
		t.Fatal("mean/sum not positive")
	}
	snap := h.Snapshot()
	if snap.Count != 110 || snap.P50 != p50 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Negative durations clamp to the zero bucket rather than corrupting
	// the distribution.
	h.Observe(-time.Second)
	if h.Count() != 111 {
		t.Fatal("negative observation lost")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("paxos_commits_total", "committed entries").Add(3)
	r.Gauge("proxy_queue_depth", "queued submissions").Set(2)
	r.GaugeFunc("paxos_view", "current view", func() float64 { return 5 })
	h := r.Histogram("wal_fsync_seconds", "fsync latency")
	h.Observe(2 * time.Millisecond)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE paxos_commits_total counter",
		"paxos_commits_total 3",
		"# TYPE proxy_queue_depth gauge",
		"proxy_queue_depth 2",
		"paxos_view 5",
		"# TYPE wal_fsync_seconds histogram",
		`wal_fsync_seconds_bucket{le="+Inf"} 1`,
		"wal_fsync_seconds_count 1",
		// Precomputed quantile gauges ride alongside the cumulative series.
		"# TYPE wal_fsync_seconds_p50 gauge",
		"# TYPE wal_fsync_seconds_p95 gauge",
		"# TYPE wal_fsync_seconds_p99 gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Bucket lines must be cumulative and parseable.
	sc := bufio.NewScanner(strings.NewReader(out))
	var lastCum int64 = -1
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "wal_fsync_seconds_bucket") {
			continue
		}
		var le string
		var n int64
		if _, err := fmt.Sscanf(strings.ReplaceAll(line, `{le="`, " "), "wal_fsync_seconds_bucket %s", &le); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
		if n < lastCum {
			t.Fatalf("non-cumulative buckets: %q after %d", line, lastCum)
		}
		lastCum = n
	}
	// Quantile gauges use the same seconds scaling as the buckets: the 2ms
	// observation must render as a sub-second float, not raw nanoseconds.
	sc = bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "wal_fsync_seconds_p50 ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line, "wal_fsync_seconds_p50 %g", &v); err != nil {
			t.Fatalf("bad quantile gauge line %q", line)
		}
		if v <= 0 || v >= 1 {
			t.Fatalf("p50 gauge not in seconds: %q", line)
		}
	}
}

// TestHistogramConcurrency hammers one histogram from many goroutines
// while a scraper reads quantiles and Prometheus output — the
// race-detector test the CI race job runs for the obs package.
func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("concurrent", "")
	c := r.Counter("ops", "")
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Quantile(0.99)
				h.Snapshot()
				r.WritePrometheus(io.Discard)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				c.Inc()
			}
		}(w)
	}
	for c.Value() < workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestTracerRingAndJSONL(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(1); i <= 6; i++ {
		tr.Record(SpanEvent{Req: i, Stage: StageAdmit, Wall: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	if evs[0].Req != 3 || evs[3].Req != 6 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // 4 retained events + truncation marker
		t.Fatalf("%d JSONL lines", len(lines))
	}
	if !strings.Contains(lines[0], `"req":3`) || !strings.Contains(lines[0], `"stage":"admit"`) {
		t.Fatalf("line = %s", lines[0])
	}
	// Overflow accounting: 6 events into a 4-ring drops 2, and the dump
	// ends with a truncation marker carrying that count.
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if lines[4] != `{"truncated":true,"dropped":2}` {
		t.Fatalf("truncation marker = %s", lines[4])
	}
	// A ring that never wrapped emits no marker and reports zero drops.
	full := NewTracer(8)
	full.Record(SpanEvent{Req: 1, Stage: StageAdmit, Wall: 1})
	var b2 bytes.Buffer
	if err := full.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if full.Dropped() != 0 || strings.Contains(b2.String(), "truncated") {
		t.Fatalf("unwrapped ring leaked truncation state: dropped=%d dump=%q", full.Dropped(), b2.String())
	}
	// Wall auto-stamping.
	tr2 := NewTracer(2)
	tr2.Record(SpanEvent{Req: 1, Stage: StageCommit})
	if tr2.Events()[0].Wall == 0 {
		t.Fatal("wall not stamped")
	}
	// Nil tracer is inert.
	var nilT *Tracer
	nilT.Record(SpanEvent{Req: 1})
	if nilT.Len() != 0 || nilT.Events() != nil || nilT.WriteJSONL(io.Discard) != nil {
		t.Fatal("nil tracer not inert")
	}
	if NewTracer(0) != nil {
		t.Fatal("zero-capacity tracer should be nil")
	}
}

func TestTracerBreakdown(t *testing.T) {
	tr := NewTracer(64)
	base := time.Now().UnixNano()
	for req := uint64(1); req <= 5; req++ {
		tr.Record(SpanEvent{Req: req, Stage: StageAdmit, Wall: base})
		tr.Record(SpanEvent{Req: req, Stage: StageProposed, Wall: base + 1000})
		tr.Record(SpanEvent{Req: req, Stage: StageCommit, Wall: base + 11000, Logical: 10})
		tr.Record(SpanEvent{Req: req, Stage: StageConsumed, Wall: base + 21000, Logical: 30})
	}
	rows := tr.Breakdown()
	if len(rows) == 0 {
		t.Fatal("no breakdown rows")
	}
	found := false
	for _, row := range rows {
		if row.From == StageCommit && row.To == StageConsumed {
			found = true
			if row.Count != 5 || row.WallP50 != 10*time.Microsecond || row.LogicalP50 != 20 {
				t.Fatalf("row = %+v", row)
			}
		}
		if row.String() == "" {
			t.Fatal("empty row string")
		}
	}
	if !found {
		t.Fatal("committed->consumed transition missing")
	}
}

func TestHTTPServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(9)
	tr := NewTracer(8)
	tr.Record(SpanEvent{Req: 1, Stage: StageAdmit})
	srv, err := StartServer("127.0.0.1:0", r, func() Health {
		return Health{Replica: 2, Primary: true, View: 3, CommitIndex: 17, Mode: "crane"}
	}, tr, func(w io.Writer) error {
		_, err := io.WriteString(w, `{"meta":"crane-flight-journal","replica":"r2"}`+"\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "hits_total 9") {
		t.Fatalf("/metrics = %q", out)
	}
	health := get("/healthz")
	for _, want := range []string{`"replica":2`, `"primary":true`, `"commit_index":17`, `"mode":"crane"`} {
		if !strings.Contains(health, want) {
			t.Fatalf("/healthz = %q missing %q", health, want)
		}
	}
	if out := get("/trace"); !strings.Contains(out, `"stage":"admit"`) {
		t.Fatalf("/trace = %q", out)
	}
	if out := get("/journal"); !strings.Contains(out, `"meta":"crane-flight-journal"`) {
		t.Fatalf("/journal = %q", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}
}
