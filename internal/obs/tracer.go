package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Lifecycle stage names recorded by the crane layers. An admitted socket
// call carries one request id from proxy admission through consensus,
// WAL persist, DMT admission, execution, and output.
const (
	StageAdmit    = "admit"     // proxy accepted the socket call (primary)
	StageProposed = "proposed"  // burst accepted for consensus ordering
	StageCommit   = "committed" // consensus slot assigned + WAL persisted
	StageSpecExec = "spec_exec" // server consumed the call speculatively, pre-commit
	StageConsumed = "consumed"  // server consumed the call at its DMT turn
	StageOutput   = "output"    // server emitted a response on the wire
)

// SpanEvent is one lifecycle stage of one request. Wall is physical
// nanoseconds (UnixNano); Logical is the DMT logical clock at the stage —
// the pair of timestamps lets offline analysis separate physical stalls
// (fsync, network) from logical ones (turn waits, bubble exhaustion),
// an observability capability the paper's CRANE lacked.
type SpanEvent struct {
	Req     uint64 // request id assigned at proxy admission (0: none, e.g. outputs)
	Conn    uint64 // connection id (0 when not connection-bound)
	Index   uint64 // consensus slot (0 before commitment)
	Stage   string
	Wall    int64  // UnixNano
	Logical uint64 // DMT logical clock (0 in non-DMT modes)
	Lane    int    // execution lane the stage ran in (0 unless lanes configured)
	Group   int    // Paxos group the request was ordered by (0 unless sharded)
}

// Tracer is a bounded in-memory ring of lifecycle events, dumpable as
// JSONL for offline analysis. A nil *Tracer discards events, so tracing
// is zero-cost unless a capacity is configured.
type Tracer struct {
	mu      sync.Mutex
	buf     []SpanEvent
	next    int
	wrapped bool
	dropped uint64 // events overwritten after the ring filled
}

// NewTracer creates a tracer keeping the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{buf: make([]SpanEvent, 0, capacity)}
}

// Record appends one event, stamping Wall with the current time when
// unset. Safe on a nil receiver.
func (t *Tracer) Record(ev SpanEvent) {
	if t == nil {
		return
	}
	if ev.Wall == 0 {
		ev.Wall = time.Now().UnixNano()
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Dropped returns how many events the ring has overwritten since start:
// a nonzero value means the /trace dump is a suffix, not the full run.
// Safe on a nil receiver.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Events returns the retained events in recording order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL dumps every retained event as one JSON object per line.
// The encoding is hand-rolled (fixed field set, no reflection) so dumping
// a large ring does not allocate per event beyond the line buffer.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	line := make([]byte, 0, 160)
	for _, ev := range t.Events() {
		line = line[:0]
		line = append(line, `{"req":`...)
		line = strconv.AppendUint(line, ev.Req, 10)
		line = append(line, `,"conn":`...)
		line = strconv.AppendUint(line, ev.Conn, 10)
		line = append(line, `,"index":`...)
		line = strconv.AppendUint(line, ev.Index, 10)
		line = append(line, `,"stage":"`...)
		line = append(line, ev.Stage...)
		line = append(line, `","wall_ns":`...)
		line = strconv.AppendInt(line, ev.Wall, 10)
		line = append(line, `,"logical":`...)
		line = strconv.AppendUint(line, ev.Logical, 10)
		line = append(line, `,"lane":`...)
		line = strconv.AppendInt(line, int64(ev.Lane), 10)
		line = append(line, `,"group":`...)
		line = strconv.AppendInt(line, int64(ev.Group), 10)
		line = append(line, '}', '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	// A trailing marker tells consumers the dump is a suffix of the run:
	// the ring overwrote `dropped` older events after filling up.
	if n := t.Dropped(); n > 0 {
		line = line[:0]
		line = append(line, `{"truncated":true,"dropped":`...)
		line = strconv.AppendUint(line, n, 10)
		line = append(line, '}', '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// StageBreakdown aggregates the retained events into per-transition
// latency distributions: for every request that recorded both stages of a
// transition (admit→proposed, proposed→committed, committed→consumed,
// consumed→output), the wall-clock and logical-clock deltas.
type StageBreakdown struct {
	From, To   string
	Count      int
	WallP50    time.Duration
	WallP95    time.Duration
	WallMax    time.Duration
	LogicalP50 uint64 // logical clocks elapsed (DMT modes)
}

// Breakdown computes the per-transition latency table from the retained
// events. Requests with missing stages (ring eviction, backup replicas
// that never admit) are skipped per transition.
func (t *Tracer) Breakdown() []StageBreakdown {
	if t == nil {
		return nil
	}
	type stamp struct {
		wall    int64
		logical uint64
	}
	byReq := make(map[uint64]map[string]stamp)
	for _, ev := range t.Events() {
		if ev.Req == 0 {
			continue
		}
		m := byReq[ev.Req]
		if m == nil {
			m = make(map[string]stamp, 5)
			byReq[ev.Req] = m
		}
		if _, dup := m[ev.Stage]; !dup { // keep the first occurrence
			m[ev.Stage] = stamp{wall: ev.Wall, logical: ev.Logical}
		}
	}
	transitions := [][2]string{
		{StageAdmit, StageProposed},
		{StageProposed, StageCommit},
		{StageCommit, StageConsumed},
		{StageConsumed, StageOutput},
		{StageAdmit, StageConsumed},
		{StageAdmit, StageSpecExec},
	}
	var out []StageBreakdown
	for _, tr := range transitions {
		var walls []time.Duration
		var logicals []uint64
		for _, stages := range byReq {
			a, okA := stages[tr[0]]
			b, okB := stages[tr[1]]
			if !okA || !okB || b.wall < a.wall {
				continue
			}
			walls = append(walls, time.Duration(b.wall-a.wall))
			if b.logical >= a.logical {
				logicals = append(logicals, b.logical-a.logical)
			}
		}
		if len(walls) == 0 {
			continue
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
		bd := StageBreakdown{
			From:    tr[0],
			To:      tr[1],
			Count:   len(walls),
			WallP50: walls[len(walls)/2],
			WallP95: walls[(len(walls)*95)/100],
			WallMax: walls[len(walls)-1],
		}
		if len(logicals) > 0 {
			bd.LogicalP50 = logicals[len(logicals)/2]
		}
		out = append(out, bd)
	}
	return out
}

// String renders one breakdown row.
func (b StageBreakdown) String() string {
	return fmt.Sprintf("%-9s -> %-9s n=%-5d wall p50=%-10v p95=%-10v max=%-10v logical p50=%d",
		b.From, b.To, b.Count, b.WallP50, b.WallP95, b.WallMax, b.LogicalP50)
}
