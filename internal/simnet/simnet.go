// Package simnet is an in-memory network with POSIX-like byte-stream
// semantics. It is the stand-in for the 1 Gbps LAN of the paper's testbed:
// listeners, duplex connections, blocking accept/recv, poll with timeout,
// configurable one-way latency and jitter, and partitions.
//
// The latency/jitter model is what makes the paper's problem real in this
// reproduction: the same client socket calls arrive at different replicas at
// different physical times (source S3 in §2.2), which is exactly the
// nondeterminism time bubbling exists to remove.
package simnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Addr is a network address, conventionally "host:port".
type Addr string

// ErrClosed is returned by operations on closed listeners and connections.
var ErrClosed = errors.New("simnet: closed")

// ErrRefused is returned by Dial when nothing listens on the target address.
var ErrRefused = errors.New("simnet: connection refused")

// ErrUnreachable is returned when a partition separates the two hosts.
var ErrUnreachable = errors.New("simnet: host unreachable")

// Options configures a Network.
type Options struct {
	// Latency is the one-way delivery delay applied to every segment.
	Latency time.Duration
	// Jitter is the maximum additional random delay (uniform in
	// [0,Jitter)) applied per segment. Jitter is what staggers request
	// arrival across replicas.
	Jitter time.Duration
	// Seed seeds the jitter PRNG. Zero means a fixed default seed.
	Seed int64
	// AcceptBacklog is the listener queue depth. Zero means 128.
	AcceptBacklog int
}

// Network is a collection of listeners plus a fault model. All methods are
// safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	opts      Options
	rng       *rand.Rand
	listeners map[Addr]*Listener
	parts     map[[2]string]bool // host pair (sorted) -> partitioned
	nextConn  uint64
}

// New creates a network.
func New(opts Options) *Network {
	if opts.AcceptBacklog <= 0 {
		opts.AcceptBacklog = 128
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		opts:      opts,
		rng:       rand.New(rand.NewSource(seed)), //crane:detflow-ok deterministically seeded sim jitter
		listeners: make(map[Addr]*Listener),
		parts:     make(map[[2]string]bool),
	}
}

func host(a Addr) string {
	s := string(a)
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i]
		}
	}
	return s
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition cuts (or heals) connectivity between two hosts. New dials fail
// with ErrUnreachable; established connections between the hosts error on
// the next read once their in-flight data drains.
func (n *Network) Partition(a, b Addr, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := pairKey(host(a), host(b))
	if cut {
		n.parts[key] = true
	} else {
		delete(n.parts, key)
	}
}

func (n *Network) partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[pairKey(a, b)]
}

// Listen binds a listener to addr.
func (n *Network) Listen(addr Addr) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("simnet: address %s in use", addr)
	}
	l := &Listener{
		net:     n,
		addr:    addr,
		backlog: make(chan *Conn, n.opts.AcceptBacklog),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial opens a connection from local address `from` to `to`. The returned
// Conn is the client end; the server end is delivered to the listener.
func (n *Network) Dial(from, to Addr) (*Conn, error) {
	if n.partitioned(host(from), host(to)) {
		return nil, ErrUnreachable
	}
	n.mu.Lock()
	l, ok := n.listeners[to]
	n.nextConn++
	id := n.nextConn
	n.mu.Unlock()
	if !ok {
		return nil, ErrRefused
	}
	c2s := newPipe(n)
	s2c := newPipe(n)
	client := &Conn{id: id, net: n, local: from, remote: to, r: s2c, w: c2s}
	server := &Conn{id: id, net: n, local: to, remote: from, r: c2s, w: s2c}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrRefused
	}
	select {
	case l.backlog <- server:
	default:
		l.mu.Unlock()
		return nil, fmt.Errorf("simnet: %s: backlog full", to)
	}
	l.mu.Unlock()
	return client, nil
}

// Listener accepts incoming connections.
type Listener struct {
	net     *Network
	addr    Addr
	backlog chan *Conn
	mu      sync.Mutex
	closed  bool
}

// Addr returns the bound address.
func (l *Listener) Addr() Addr { return l.addr }

// Accept blocks until a connection arrives or the listener is closed.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Poll waits up to timeout for a pending connection without accepting it.
// It reports whether Accept would not block. timeout < 0 waits forever.
func (l *Listener) Poll(timeout time.Duration) bool {
	if timeout < 0 {
		// Block until something is queued or the listener closes.
		for {
			l.mu.Lock()
			closed := l.closed
			pending := len(l.backlog) > 0
			l.mu.Unlock()
			if pending || closed {
				return pending
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		closed := l.closed
		pending := len(l.backlog) > 0
		l.mu.Unlock()
		if pending {
			return true
		}
		if closed || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Close unbinds the listener. Pending but unaccepted connections are
// discarded; their client ends see EOF.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.backlog)
	for c := range l.backlog {
		c.Close()
	}
	return nil
}

// pipe is one direction of a connection: a queue of segments that become
// readable at their delivery time. The hot path is allocation-free in
// steady state: payload buffers cycle through a per-pipe freelist, the
// segment queue is a compacting slice reused across bursts, and delivery
// wake-ups share a single resettable timer instead of a time.AfterFunc
// per write and per wait.
type pipe struct {
	net    *Network
	mu     sync.Mutex
	cond   *sync.Cond
	segs   []segment
	head   int      // index of the first unread segment in segs
	free   [][]byte // recycled payload buffers
	closed bool     // write end closed
	broken bool     // read end closed (writes fail)
	timer  *time.Timer
	// timerAt is the pending shot time; zero when no shot is scheduled.
	// Guarded by mu, like everything above.
	timerAt time.Time
}

type segment struct {
	data []byte // unread window into buf
	buf  []byte // whole payload buffer, recycled once data drains
	at   time.Time
}

func newPipe(n *Network) *pipe {
	p := &pipe{net: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// maxFreeBufs bounds the per-pipe freelist so one burst cannot pin
// buffers forever.
const maxFreeBufs = 32

// getBufLocked returns a payload buffer of length n, reusing a freelist
// entry when one is large enough.
func (p *pipe) getBufLocked(n int) []byte {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i][:n]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			return b
		}
	}
	return make([]byte, n)
}

func (p *pipe) putBufLocked(b []byte) {
	if cap(b) == 0 || len(p.free) >= maxFreeBufs {
		return
	}
	p.free = append(p.free, b[:0])
}

func (n *Network) delay() time.Duration {
	d := n.opts.Latency
	if n.opts.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
		n.mu.Unlock()
	}
	return d
}

func (p *pipe) write(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	if p.broken {
		return 0, io.ErrClosedPipe
	}
	buf := p.getBufLocked(len(b))
	copy(buf, b)
	at := time.Now().Add(p.net.delay())
	p.segs = append(p.segs, segment{data: buf, buf: buf, at: at})
	p.cond.Broadcast()
	// Wake the reader again once the segment becomes deliverable.
	if time.Until(at) > 0 {
		p.armTimerLocked(at)
	}
	return len(b), nil
}

// read blocks until data is deliverable, the write end is closed (EOF), or
// the deadline passes (ok=false). A zero deadline blocks forever.
func (p *pipe) read(b []byte, deadline time.Time) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if n := p.copyDeliverableLocked(b); n > 0 {
			return n, nil
		}
		if p.closed && !p.deliverablePending() {
			return 0, io.EOF
		}
		if p.broken {
			return 0, ErrClosed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, errTimeout
		}
		p.waitWake(deadline)
	}
}

var errTimeout = errors.New("simnet: read timeout")

// IsTimeout reports whether err is a read-deadline expiry.
func IsTimeout(err error) bool { return errors.Is(err, errTimeout) }

// copyDeliverableLocked gathers bytes from as many already-deliverable
// segments as fit into b — a vectored read, so one wake-up drains a whole
// burst. Fully consumed segments return their buffers to the freelist.
// Called with p.mu held.
func (p *pipe) copyDeliverableLocked(b []byte) int {
	n := 0
	var now time.Time
	for n < len(b) && p.head < len(p.segs) {
		seg := &p.segs[p.head]
		if now.IsZero() {
			now = time.Now()
		}
		if seg.at.After(now) {
			break
		}
		c := copy(b[n:], seg.data)
		n += c
		seg.data = seg.data[c:]
		if len(seg.data) != 0 {
			break
		}
		p.putBufLocked(seg.buf)
		seg.data, seg.buf = nil, nil
		p.head++
	}
	p.compactLocked()
	return n
}

// compactLocked slides the live tail of segs to the front once the
// consumed prefix dominates, so the backing array is reused by later
// appends instead of growing behind a dead prefix. Called with p.mu held.
func (p *pipe) compactLocked() {
	if p.head < 16 || p.head*2 < len(p.segs) {
		return
	}
	live := copy(p.segs, p.segs[p.head:])
	clearTail := p.segs[live:]
	for i := range clearTail {
		clearTail[i] = segment{}
	}
	p.segs = p.segs[:live]
	p.head = 0
}

// deliverablePending reports whether any segment exists at all (delivered
// or still in flight). Called with p.mu held.
func (p *pipe) deliverablePending() bool { return p.head < len(p.segs) }

// armTimerLocked schedules a broadcast at time at on the pipe's single
// shared timer, re-arming only when at precedes the pending shot. Spurious
// wake-ups are harmless — waiters recheck deliverability — so the races
// between Reset and an in-flight fire need no further coordination.
// Called with p.mu held.
func (p *pipe) armTimerLocked(at time.Time) {
	if !p.timerAt.IsZero() && !at.Before(p.timerAt) {
		return
	}
	d := time.Until(at)
	if d < 20*time.Microsecond {
		d = 20 * time.Microsecond
	}
	p.timerAt = at
	if p.timer == nil {
		p.timer = time.AfterFunc(d, p.timerFire)
		return
	}
	p.timer.Reset(d)
}

func (p *pipe) timerFire() {
	p.mu.Lock()
	p.timerAt = time.Time{}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitWake waits on the cond, arming the shared timer so in-flight segment
// delivery times and deadlines are rechecked. Called with p.mu held.
func (p *pipe) waitWake(deadline time.Time) {
	// Compute the nearest wake-up: next segment delivery or deadline.
	var at time.Time
	if p.head < len(p.segs) {
		at = p.segs[p.head].at
	}
	if !deadline.IsZero() && (at.IsZero() || deadline.Before(at)) {
		at = deadline
	}
	if !at.IsZero() {
		p.armTimerLocked(at)
	}
	p.cond.Wait()
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.broken = true
	p.segs = nil
	p.head = 0
	p.free = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Conn is one end of a duplex byte-stream connection.
type Conn struct {
	id     uint64
	net    *Network
	local  Addr
	remote Addr
	r, w   *pipe

	mu       sync.Mutex
	deadline time.Time
	closed   bool
}

// ID returns a network-unique connection identifier (both ends share it).
func (c *Conn) ID() uint64 { return c.id }

// LocalAddr returns this end's address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Read blocks until data arrives, the peer closes (io.EOF), or the read
// deadline expires.
func (c *Conn) Read(b []byte) (int, error) {
	if c.net.partitioned(host(c.local), host(c.remote)) {
		// Drain already-delivered data first; then fail.
		c.mu.Lock()
		dl := time.Now().Add(time.Millisecond)
		c.mu.Unlock()
		n, err := c.r.read(b, dl)
		if n > 0 {
			return n, nil
		}
		if err != nil && !IsTimeout(err) {
			return 0, err
		}
		return 0, ErrUnreachable
	}
	c.mu.Lock()
	dl := c.deadline
	c.mu.Unlock()
	return c.r.read(b, dl)
}

// Write sends data to the peer. It never blocks (infinite buffering, like a
// kernel with a large enough socket buffer for the workload).
func (c *Conn) Write(b []byte) (int, error) {
	if c.net.partitioned(host(c.local), host(c.remote)) {
		return 0, ErrUnreachable
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.mu.Unlock()
	return c.w.write(b)
}

// SetReadDeadline sets the deadline for future Read calls. A zero time
// means no deadline.
func (c *Conn) SetReadDeadline(t time.Time) {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
}

// Readable reports whether a Read would return immediately (data delivered
// or EOF pending).
func (c *Conn) Readable() bool {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	if c.r.deliverablePending() && !c.r.segs[c.r.head].at.After(time.Now()) {
		return true
	}
	return c.r.closed && !c.r.deliverablePending()
}

// Close shuts down both directions. The peer's reads see EOF after
// consuming in-flight data; the peer's writes fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.w.closeWrite()
	c.r.closeRead()
	return nil
}

var (
	_ io.ReadWriteCloser = (*Conn)(nil)
)
