package simnet

import (
	"testing"
	"time"
)

// benchPair dials a connected client/server pair on a zero-latency network
// (latency off so the benchmark times the pipe data path, not sleeps).
func benchPair(b *testing.B, opts Options) (*Conn, *Conn) {
	b.Helper()
	n := New(opts)
	l, err := n.Listen("srv:1")
	if err != nil {
		b.Fatal(err)
	}
	client, err := n.Dial("cli:0", "srv:1")
	if err != nil {
		b.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		b.Fatal(err)
	}
	return client, server
}

// BenchmarkPipeWriteRead measures a same-goroutine write-then-read round
// trip of a small request-sized payload: the per-segment cost of the pipe
// (buffer handling, delivery bookkeeping, reader copy).
func BenchmarkPipeWriteRead(b *testing.B) {
	client, server := benchPair(b, Options{})
	defer client.Close()
	defer server.Close()
	msg := make([]byte, 128)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeBurstRead measures vectored draining: 8 small writes then
// reads until drained, the proxy's burst-forwarding shape.
func BenchmarkPipeBurstRead(b *testing.B) {
	client, server := benchPair(b, Options{})
	defer client.Close()
	defer server.Close()
	msg := make([]byte, 64)
	buf := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			if _, err := client.Write(msg); err != nil {
				b.Fatal(err)
			}
		}
		got := 0
		for got < 8*len(msg) {
			n, err := server.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
}

// BenchmarkPipeLatencyWriteRead exercises the delayed-delivery path (timer
// arming and deliverability rechecks) with a small one-way latency.
func BenchmarkPipeLatencyWriteRead(b *testing.B) {
	client, server := benchPair(b, Options{Latency: 20 * time.Microsecond})
	defer client.Close()
	defer server.Close()
	msg := make([]byte, 128)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
