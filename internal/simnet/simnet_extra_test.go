package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBacklogOverflowRefusesDial(t *testing.T) {
	n := New(Options{AcceptBacklog: 2})
	l, err := n.Listen("s:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill the backlog without accepting.
	if _, err := n.Dial("a:1", "s:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a:2", "s:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a:3", "s:1"); err == nil {
		t.Fatal("dial into full backlog succeeded")
	}
	// Accepting drains the backlog and dials succeed again.
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a:4", "s:1"); err != nil {
		t.Fatalf("dial after drain: %v", err)
	}
}

func TestWriteAfterOwnClose(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	go l.Accept()
	c, err := n.Dial("c:1", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after own Close: %v", err)
	}
	c.Close() // idempotent
}

func TestReadableReflectsDeliveredData(t *testing.T) {
	n := New(Options{Latency: 10 * time.Millisecond})
	l, _ := n.Listen("s:1")
	defer l.Close()
	serverCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverCh <- c
	}()
	c, _ := n.Dial("c:1", "s:1")
	server := <-serverCh
	if server.Readable() {
		t.Fatal("Readable before any write")
	}
	c.Write([]byte("x"))
	if server.Readable() {
		t.Fatal("Readable before the latency elapsed")
	}
	deadline := time.Now().Add(time.Second)
	for !server.Readable() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !server.Readable() {
		t.Fatal("never became readable")
	}
}

func TestManySequentialConnections(t *testing.T) {
	// Regression guard for listener/accept resource reuse: many
	// short-lived connections through one listener.
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 8)
			nn, _ := c.Read(buf)
			c.Write(buf[:nn])
			c.Close()
		}
	}()
	for i := 0; i < 200; i++ {
		c, err := n.Dial("c:1", "s:1")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Write([]byte{byte(i)})
		buf := make([]byte, 8)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		nn, err := c.Read(buf)
		if err != nil || nn != 1 || buf[0] != byte(i) {
			t.Fatalf("echo %d: n=%d err=%v", i, nn, err)
		}
		c.Close()
	}
	wg.Wait()
}
