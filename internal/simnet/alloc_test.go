package simnet

import "testing"

// TestPipeSteadyStateAllocFree pins the pipe's steady-state guarantee:
// once the freelist is warm, a write/read round trip recycles its payload
// buffer and segment slot instead of allocating.
func TestPipeSteadyStateAllocFree(t *testing.T) {
	client, server := benchPairT(t)
	defer client.Close()
	defer server.Close()
	msg := make([]byte, 128)
	buf := make([]byte, 256)
	// Warm the freelist.
	for i := 0; i < 4; i++ {
		if _, err := client.Write(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	perOp := testing.AllocsPerRun(500, func() {
		if _, err := client.Write(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Read(buf); err != nil {
			t.Fatal(err)
		}
	})
	if perOp != 0 {
		t.Errorf("pipe write/read: %v allocs/op, want 0", perOp)
	}
}

// benchPairT is benchPair for tests.
func benchPairT(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	n := New(Options{})
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	client, err := n.Dial("cli:0", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}
