package simnet

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDialAcceptRoundTrip(t *testing.T) {
	n := New(Options{})
	l, err := n.Listen("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 16)
		nn, err := c.Read(buf)
		if err != nil {
			done <- err
			return
		}
		if _, err := c.Write(bytes.ToUpper(buf[:nn])); err != nil {
			done <- err
			return
		}
		done <- nil
	}()

	c, err := n.Dial("cli:1", "srv:80")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nn, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nn]) != "HELLO" {
		t.Fatalf("got %q", buf[:nn])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialRefusedWhenNoListener(t *testing.T) {
	n := New(Options{})
	if _, err := n.Dial("a:1", "b:2"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	n := New(Options{})
	if _, err := n.Listen("x:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x:1"); err == nil {
		t.Fatal("second Listen on same addr succeeded")
	}
}

func TestEOFAfterClose(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	var server *Conn
	accepted := make(chan struct{})
	go func() {
		server, _ = l.Accept()
		close(accepted)
	}()
	client, err := n.Dial("c:1", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	if _, err := client.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// Server reads the in-flight data, then EOF.
	buf := make([]byte, 32)
	nn, err := server.Read(buf)
	if err != nil || string(buf[:nn]) != "last words" {
		t.Fatalf("Read = %q, %v", buf[:nn], err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	// Writes to a closed peer fail.
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("Write to closed peer succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	go l.Accept()
	c, err := n.Dial("c:1", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("deadline ignored")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(Options{Latency: 20 * time.Millisecond})
	l, _ := n.Listen("s:1")
	defer l.Close()
	connCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		connCh <- c
	}()
	c, err := n.Dial("c:1", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	server := <-connCh
	start := time.Now()
	if _, err := c.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nn, err := server.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
	if string(buf[:nn]) != "delayed" {
		t.Fatalf("got %q", buf[:nn])
	}
}

func TestPollListener(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	if l.Poll(2 * time.Millisecond) {
		t.Fatal("Poll true with no pending conn")
	}
	if _, err := n.Dial("c:1", "s:1"); err != nil {
		t.Fatal(err)
	}
	if !l.Poll(200 * time.Millisecond) {
		t.Fatal("Poll false with pending conn")
	}
	// Poll does not consume the connection.
	if !l.Poll(time.Millisecond) {
		t.Fatal("Poll consumed the pending conn")
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("b:1")
	defer l.Close()
	serverCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverCh <- c
	}()
	c, err := n.Dial("a:1", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverCh
	n.Partition("a:1", "b:1", true)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Write across partition: %v", err)
	}
	if _, err := n.Dial("a:2", "b:9"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Dial across partition: %v", err)
	}
	n.Partition("a:1", "b:1", false)
	if _, err := c.Write([]byte("healed")); err != nil {
		t.Fatalf("Write after heal: %v", err)
	}
	buf := make([]byte, 16)
	nn, err := server.Read(buf)
	if err != nil || string(buf[:nn]) != "healed" {
		t.Fatalf("Read after heal = %q, %v", buf[:nn], err)
	}
}

func TestListenerCloseWakesAccept(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not wake on Close")
	}
	// Address is reusable after close.
	if _, err := n.Listen("s:1"); err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
}

func TestConnIDsSharedAcrossEnds(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	serverCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverCh <- c
	}()
	c1, _ := n.Dial("c:1", "s:1")
	s1 := <-serverCh
	if c1.ID() != s1.ID() {
		t.Fatalf("IDs differ: %d vs %d", c1.ID(), s1.ID())
	}
	go func() {
		c, _ := l.Accept()
		serverCh <- c
	}()
	c2, _ := n.Dial("c:2", "s:1")
	<-serverCh
	if c2.ID() == c1.ID() {
		t.Fatal("connection IDs not unique")
	}
}

func TestPartialReads(t *testing.T) {
	n := New(Options{})
	l, _ := n.Listen("s:1")
	defer l.Close()
	serverCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverCh <- c
	}()
	c, _ := n.Dial("c:1", "s:1")
	server := <-serverCh
	if _, err := c.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 3)
	for len(got) < 8 {
		nn, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:nn]...)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("got %q", got)
	}
}

// Property: arbitrary message sequences arrive intact and in order, with or
// without jitter (jitter delays segments but write order per pipe is FIFO:
// delivery times are assigned monotonically non-decreasing? No — jitter can
// reorder delivery *times*, but the pipe is a FIFO queue so byte order is
// preserved regardless; that is the property checked here).
func TestQuickByteOrderPreserved(t *testing.T) {
	f := func(msgs [][]byte, useJitter bool) bool {
		if len(msgs) > 50 {
			msgs = msgs[:50]
		}
		opts := Options{}
		if useJitter {
			opts.Latency = 100 * time.Microsecond
			opts.Jitter = 300 * time.Microsecond
		}
		n := New(opts)
		l, err := n.Listen("s:1")
		if err != nil {
			return false
		}
		defer l.Close()
		serverCh := make(chan *Conn, 1)
		go func() {
			c, _ := l.Accept()
			serverCh <- c
		}()
		c, err := n.Dial("c:1", "s:1")
		if err != nil {
			return false
		}
		server := <-serverCh
		var want []byte
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, m := range msgs {
				c.Write(m)
			}
			c.Close()
		}()
		for _, m := range msgs {
			want = append(want, m...)
		}
		got, err := io.ReadAll(server)
		wg.Wait()
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	n := New(Options{Latency: 50 * time.Microsecond, Jitter: 100 * time.Microsecond})
	l, _ := n.Listen("s:1")
	defer l.Close()
	const clients = 16
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				buf := make([]byte, 64)
				for {
					nn, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:nn])
				}
			}(c)
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial(Addr(string(rune('a'+i))+":1"), "s:1")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 32)
			for j := 0; j < 20; j++ {
				if _, err := c.Write(msg); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 32)
				if _, err := io.ReadFull(c, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, msg) {
					errs <- errors.New("echo mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
