package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTest(t *testing.T) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 4096})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

func TestAppendGetRoundTrip(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 100; i++ {
		rec := Record{Index: i, View: i / 10, Payload: []byte(fmt.Sprintf("payload-%d", i))}
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		rec, err := l.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if rec.Index != i || rec.View != i/10 || string(rec.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Get(%d) = %+v", i, rec)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	l, _ := openTest(t)
	if _, ok := l.First(); ok {
		t.Error("First on empty log reported ok")
	}
	if _, ok := l.Tail(); ok {
		t.Error("Tail on empty log reported ok")
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
	if _, err := l.Get(0); err == nil {
		t.Error("Get on empty log succeeded")
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	l, _ := openTest(t)
	if err := l.Append(Record{Index: 5}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := l.Append(Record{Index: 7}); err == nil {
		t.Fatal("gap append succeeded")
	}
	if err := l.Append(Record{Index: 5}); err == nil {
		t.Fatal("duplicate append succeeded")
	}
	if err := l.Append(Record{Index: 6}); err != nil {
		t.Fatalf("sequential append: %v", err)
	}
}

func TestBaseIndexNonZero(t *testing.T) {
	// A restored replica resumes appending from its checkpoint index.
	l, _ := openTest(t)
	if err := l.Append(Record{Index: 1000, Payload: []byte("x")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	first, ok := l.First()
	if !ok || first != 1000 {
		t.Fatalf("First = %d,%v want 1000,true", first, ok)
	}
}

func TestReopenRecoversAll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := l.Append(Record{Index: i, View: 3, Payload: bytes.Repeat([]byte{byte(i)}, int(i%50))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true, SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != n {
		t.Fatalf("recovered Len = %d, want %d", l2.Len(), n)
	}
	tail, _ := l2.Tail()
	if tail != n-1 {
		t.Fatalf("recovered Tail = %d, want %d", tail, n-1)
	}
	for i := uint64(0); i < n; i += 37 {
		rec, err := l2.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(rec.Payload, bytes.Repeat([]byte{byte(i)}, int(i%50))) {
			t.Fatalf("Get(%d) payload mismatch", i)
		}
	}
	// Appends continue where the old log left off.
	if err := l2.Append(Record{Index: n}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestTornTailDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := l.Append(Record{Index: i, Payload: []byte("0123456789")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Corrupt the tail: chop bytes off the only segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 9 {
		t.Fatalf("Len after torn tail = %d, want 9", l2.Len())
	}
	// The torn record is re-appendable.
	if err := l2.Append(Record{Index: 9, Payload: []byte("redo")}); err != nil {
		t.Fatalf("re-append after torn tail: %v", err)
	}
	rec, err := l2.Get(9)
	if err != nil || string(rec.Payload) != "redo" {
		t.Fatalf("Get(9) = %v, %v", rec, err)
	}
}

func TestCorruptedMiddleDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if err := l.Append(Record{Index: i, Payload: bytes.Repeat([]byte("a"), 100)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte in the middle record's payload, in place.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'Z'}, recordHeaderSize+100+recordHeaderSize+10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := l.Get(1); err == nil {
		t.Fatal("Get of corrupted record succeeded")
	}
}

func TestScanRangeAndEarlyStop(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 50; i++ {
		if err := l.Append(Record{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := l.Scan(10, 20, func(r Record) bool {
		got = append(got, r.Index)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("Scan(10,20) = %v", got)
	}
	got = got[:0]
	if err := l.Scan(0, 100, func(r Record) bool {
		got = append(got, r.Index)
		return len(got) < 5
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("early stop scan returned %d records", len(got))
	}
}

func TestTruncateFrom(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 200; i++ {
		if err := l.Append(Record{Index: i, Payload: bytes.Repeat([]byte("x"), 64)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFrom(150); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 150 {
		t.Fatalf("Len after truncate = %d, want 150", l.Len())
	}
	if _, err := l.Get(150); err == nil {
		t.Fatal("Get(150) after truncate succeeded")
	}
	if _, err := l.Get(149); err != nil {
		t.Fatalf("Get(149) after truncate: %v", err)
	}
	// Appending resumes at the cut point.
	if err := l.Append(Record{Index: 150, Payload: []byte("new")}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	rec, err := l.Get(150)
	if err != nil || string(rec.Payload) != "new" {
		t.Fatalf("Get(150) = %v, %v", rec, err)
	}
}

func TestTruncateAll(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 20; i++ {
		if err := l.Append(Record{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFrom(0); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("Len after full truncate = %d", l.Len())
	}
	// Log accepts a fresh base index afterwards.
	if err := l.Append(Record{Index: 42}); err != nil {
		t.Fatalf("append after full truncate: %v", err)
	}
}

func TestTruncateAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(0); i < 100; i++ {
		if err := l.Append(Record{Index: i, Payload: bytes.Repeat([]byte("y"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segments) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(l.segments))
	}
	if err := l.TruncateFrom(10); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	for i := uint64(10); i < 100; i++ {
		if _, err := l.Get(i); err == nil {
			t.Fatalf("Get(%d) succeeded after truncate", i)
		}
	}
}

func TestSegmentRolloverPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if err := l.Append(Record{Index: i, Payload: bytes.Repeat([]byte("z"), 32)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(dir, Options{NoSync: true, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.CopyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 64 {
		t.Fatalf("CopyAll len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i) {
			t.Fatalf("recs[%d].Index = %d", i, r.Index)
		}
	}
}

// TestQuickRoundTrip property: any sequence of payloads appended comes back
// intact, in order, after a reopen.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 200 {
			payloads = payloads[:200]
		}
		dir, err := os.MkdirTemp("", "walq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir, Options{NoSync: true, SegmentSize: 512})
		if err != nil {
			return false
		}
		for i, p := range payloads {
			if err := l.Append(Record{Index: uint64(i), Payload: p}); err != nil {
				return false
			}
		}
		l.Close()
		l2, err := Open(dir, Options{NoSync: true, SegmentSize: 512})
		if err != nil {
			return false
		}
		defer l2.Close()
		recs, err := l2.CopyAll()
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if !bytes.Equal(recs[i].Payload, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruncateInvariant property: after TruncateFrom(k), Len is
// min(len, k) (for base index 0) and all surviving records read back.
func TestQuickTruncateInvariant(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		dir, err := os.MkdirTemp("", "walt")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
		if err != nil {
			return false
		}
		defer l.Close()
		for i := uint64(0); i < uint64(n); i++ {
			if err := l.Append(Record{Index: i, Payload: []byte{byte(i)}}); err != nil {
				return false
			}
		}
		if err := l.TruncateFrom(uint64(k)); err != nil {
			return false
		}
		want := int(n)
		if int(k) < want {
			want = int(k)
		}
		if l.Len() != want {
			return false
		}
		for i := 0; i < want; i++ {
			rec, err := l.Get(uint64(i))
			if err != nil || rec.Payload[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersDuringAppend(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 100; i++ {
		if err := l.Append(Record{Index: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 4)
	for r := 0; r < 3; r++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 500; j++ {
				idx := uint64(rng.Intn(100))
				rec, err := l.Get(idx)
				if err != nil {
					done <- err
					return
				}
				if rec.Payload[0] != byte(idx) {
					done <- fmt.Errorf("payload mismatch at %d", idx)
					return
				}
			}
			done <- nil
		}(int64(r))
	}
	go func() {
		for i := uint64(100); i < 300; i++ {
			if err := l.Append(Record{Index: i, Payload: []byte{byte(i)}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(0); i < 100; i++ {
		if err := l.Append(Record{Index: i, Payload: bytes.Repeat([]byte("c"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := len(l.segments)
	if segsBefore < 4 {
		t.Fatalf("want multiple segments, got %d", segsBefore)
	}
	if err := l.CompactBefore(50); err != nil {
		t.Fatal(err)
	}
	if len(l.segments) >= segsBefore {
		t.Fatalf("no segments removed: %d -> %d", segsBefore, len(l.segments))
	}
	// Everything >= 50 still readable; appends still contiguous.
	for i := uint64(50); i < 100; i++ {
		if _, err := l.Get(i); err != nil {
			t.Fatalf("Get(%d) after compaction: %v", i, err)
		}
	}
	if err := l.Append(Record{Index: 100}); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	// Reopen: survives restart.
	l.Close()
	l2, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	first, _ := l2.First()
	if first == 0 {
		t.Fatalf("compacted prefix resurrected: first=%d", first)
	}
	if _, err := l2.Get(99); err != nil {
		t.Fatalf("Get(99) after reopen: %v", err)
	}
}

func TestCompactBeforeKeepsActiveSegment(t *testing.T) {
	l, _ := openTest(t)
	for i := uint64(0); i < 5; i++ {
		l.Append(Record{Index: i})
	}
	// Compacting beyond the tail must keep the single active segment.
	if err := l.CompactBefore(1000); err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		t.Fatal("compaction emptied the active segment")
	}
	if err := l.Append(Record{Index: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	l, dir := openTest(t)
	var recs []Record
	for i := uint64(0); i < 40; i++ {
		recs = append(recs, Record{Index: i, View: i / 7,
			Payload: bytes.Repeat([]byte{byte(i)}, int(i%33))})
	}
	if err := l.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if l.Len() != 40 {
		t.Fatalf("Len = %d", l.Len())
	}
	for _, want := range recs {
		got, err := l.Get(want.Index)
		if err != nil {
			t.Fatalf("Get(%d): %v", want.Index, err)
		}
		if got.View != want.View || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("Get(%d) = %+v, want %+v", want.Index, got, want)
		}
	}
	// Batches interleave with single appends and survive reopen.
	if err := l.Append(Record{Index: 40, Payload: []byte("single")}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]Record{{Index: 41}, {Index: 42, Payload: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{NoSync: true, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 43 {
		t.Fatalf("reopened Len = %d", l2.Len())
	}
	if rec, err := l2.Get(42); err != nil || string(rec.Payload) != "y" {
		t.Fatalf("Get(42) after reopen = %+v, %v", rec, err)
	}
}

func TestAppendBatchSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var recs []Record
	for i := uint64(0); i < 64; i++ {
		recs = append(recs, Record{Index: i, Payload: bytes.Repeat([]byte("s"), 40)})
	}
	if err := l.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("batch did not roll segments: %d files", len(segs))
	}
	for i := uint64(0); i < 64; i++ {
		if _, err := l.Get(i); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestAppendBatchValidation(t *testing.T) {
	l, _ := openTest(t)
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// Non-contiguous interior indexes are rejected before any write.
	err := l.AppendBatch([]Record{{Index: 1}, {Index: 3}})
	if err == nil {
		t.Fatal("gap inside batch accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("failed batch wrote %d records", l.Len())
	}
	if err := l.AppendBatch([]Record{{Index: 7}, {Index: 8}}); err != nil {
		t.Fatal(err)
	}
	// A batch that does not follow the tail is rejected.
	if err := l.AppendBatch([]Record{{Index: 10}}); err == nil {
		t.Fatal("out-of-order batch accepted")
	}
}
