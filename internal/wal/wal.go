// Package wal implements the persistent consensus-decision log used by the
// Paxos component (§5.1 of the paper: "each consensus component persistently
// stores the call type, arguments, and global index into a Berkeley DB
// storage on SSD"). It is an append-only, CRC-checksummed, segmented log:
// the stand-in for Berkeley DB in this reproduction.
//
// Records are keyed by a monotonically increasing global index (the
// viewstamp's sequence part). The log supports appending a record, reading
// any record back, scanning a range in order, truncating a suffix (needed
// during view changes when an uncommitted tail is superseded), and crash
// recovery: on open, the log scans all segments and discards any torn tail
// record whose checksum does not match.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"crane/internal/obs"
)

// Record is a single durable entry: an opaque payload bound to a global
// index and a view number (the viewstamp under which it was decided).
type Record struct {
	Index   uint64 // global, monotonically increasing consensus index
	View    uint64 // view in which the record was decided
	Payload []byte
}

// ErrNotFound is returned when a requested index is not in the log.
var ErrNotFound = errors.New("wal: record not found")

// ErrOutOfOrder is returned when an append does not follow the tail index.
var ErrOutOfOrder = errors.New("wal: append index out of order")

// ErrCorrupt is returned when a record fails its checksum during a read of
// an interior (non-tail) record; torn tails are silently truncated instead.
var ErrCorrupt = errors.New("wal: corrupt record")

const (
	// recordHeaderSize is crc(4) + length(4) + index(8) + view(8).
	recordHeaderSize = 24
	// DefaultSegmentSize is the byte threshold after which a new segment
	// file is started. Small enough that tests exercise rollover.
	DefaultSegmentSize = 1 << 20
)

// Options configures a Log.
type Options struct {
	// SegmentSize is the rollover threshold in bytes. Zero means
	// DefaultSegmentSize.
	SegmentSize int64
	// NoSync disables fsync on append. The paper's deployment syncs to
	// SSD; tests may disable it for speed.
	NoSync bool
	// Obs registers WAL instruments (append counters, batch sizes, fsync
	// count and latency). nil disables instrumentation at zero cost.
	Obs *obs.Registry
}

// Log is an append-only segmented record log. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	segments []*segment // ordered by first index
	active   *segment
	next     uint64 // next index to append
	first    uint64 // first index present (0 if empty)
	empty    bool
	closed   bool
	scratch  []byte // reusable frame-encoding buffer, guarded by mu

	// instruments (nil instruments discard observations)
	obsAppends   *obs.Counter
	obsFsyncs    *obs.Counter
	obsBatchRecs *obs.Histogram // records per group commit
	obsFsyncLat  *obs.Histogram // fsync duration
}

type segment struct {
	path    string
	first   uint64 // first index stored in this segment
	f       *os.File
	size    int64
	offsets map[uint64]int64 // index -> file offset of record header
}

// Open opens (or creates) a log in dir.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, opts: opts, empty: true}
	if opts.Obs != nil {
		l.obsAppends = opts.Obs.Counter("wal_appends_total",
			"records durably appended")
		l.obsFsyncs = opts.Obs.Counter("wal_fsyncs_total",
			"fsync calls issued by appends")
		l.obsBatchRecs = opts.Obs.ValueHistogram("wal_batch_records",
			"records framed per group commit")
		l.obsFsyncLat = opts.Obs.Histogram("wal_fsync_seconds",
			"append-path fsync latency")
		opts.Obs.GaugeFunc("wal_tail_index", "highest index persisted", func() float64 {
			tail, _ := l.Tail()
			return float64(tail)
		})
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		seg, err := openSegment(name)
		if err != nil {
			return nil, err
		}
		if len(seg.offsets) == 0 {
			// Empty (fully torn) segment: remove it unless it is the
			// only one; keeping empty files around would confuse the
			// first-index bookkeeping.
			seg.f.Close()
			os.Remove(name)
			continue
		}
		l.segments = append(l.segments, seg)
	}
	for _, seg := range l.segments {
		for idx := range seg.offsets { //crane:detflow-ok min/max reduction is iteration-order-insensitive
			if l.empty || idx < l.first {
				l.first = idx
			}
			if l.empty || idx+1 > l.next {
				l.next = idx + 1
			}
			l.empty = false
		}
	}
	if len(l.segments) > 0 {
		l.active = l.segments[len(l.segments)-1]
	}
	return l, nil
}

func openSegment(path string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	seg := &segment{path: path, f: f, offsets: make(map[uint64]int64)}
	var off int64
	hdr := make([]byte, recordHeaderSize)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break // EOF or short read: end of valid data
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		length := binary.LittleEndian.Uint32(hdr[4:8])
		index := binary.LittleEndian.Uint64(hdr[8:16])
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+recordHeaderSize); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(append(append([]byte{}, hdr[4:]...), payload...)) != crc {
			break // torn or corrupt tail: truncate here
		}
		if len(seg.offsets) == 0 {
			seg.first = index
		}
		seg.offsets[index] = off
		off += recordHeaderSize + int64(length)
	}
	// Truncate any torn tail so future appends start at a clean offset.
	if err := f.Truncate(off); err != nil {
		f.Close() //crane:fsyncerr-ok open already failing with the truncate error; close is cleanup
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	seg.size = off
	return seg, nil
}

// Append durably appends rec. rec.Index must equal Tail()+1 (or anything
// when the log is empty — the first append defines the base index, which
// lets a restored replica resume from a checkpoint's global index).
func (l *Log) Append(rec Record) error {
	recs := [1]Record{rec}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recs[:])
}

// AppendBatch durably appends recs as one group commit: the records are
// framed into a single buffered write (per segment touched) followed by a
// single Sync, so a batch of N consensus decisions costs one fsync instead
// of N. Indexes must be contiguous and follow Tail()+1 under the same rule
// as Append.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recs)
}

func (l *Log) appendLocked(recs []Record) error {
	if l.closed {
		return errors.New("wal: closed")
	}
	if len(recs) == 0 {
		return nil
	}
	if !l.empty && recs[0].Index != l.next {
		return fmt.Errorf("%w: got %d want %d", ErrOutOfOrder, recs[0].Index, l.next)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Index != recs[i-1].Index+1 {
			return fmt.Errorf("%w: got %d want %d", ErrOutOfOrder,
				recs[i].Index, recs[i-1].Index+1)
		}
	}
	buf := l.scratch[:0]
	for i := 0; i < len(recs); {
		if l.active == nil || l.active.size >= l.opts.SegmentSize {
			if err := l.rollover(recs[i].Index); err != nil {
				return err
			}
		}
		// Frame records into the scratch buffer until the active segment
		// would cross its rollover threshold (at least one per segment).
		seg := l.active
		start := i
		buf = buf[:0]
		for i < len(recs) && (i == start || seg.size+int64(len(buf)) < l.opts.SegmentSize) {
			buf = appendFrame(buf, recs[i])
			i++
		}
		if _, err := seg.f.WriteAt(buf, seg.size); err != nil {
			l.scratch = buf[:0]
			return fmt.Errorf("wal: append: %w", err)
		}
		if !l.opts.NoSync {
			t0 := time.Now()
			if err := seg.f.Sync(); err != nil {
				l.scratch = buf[:0]
				return fmt.Errorf("wal: sync: %w", err)
			}
			l.obsFsyncs.Inc()
			l.obsFsyncLat.Since(t0)
		}
		l.obsBatchRecs.ObserveValue(uint64(i - start))
		off := seg.size
		for j := start; j < i; j++ {
			seg.offsets[recs[j].Index] = off
			off += recordHeaderSize + int64(len(recs[j].Payload))
		}
		seg.size = off
	}
	l.scratch = buf[:0]
	if l.empty {
		l.first = recs[0].Index
		l.empty = false
	}
	l.next = recs[len(recs)-1].Index + 1
	l.obsAppends.Add(uint64(len(recs)))
	return nil
}

// appendFrame appends rec's wire frame (header + payload, CRC over both)
// to buf, growing it geometrically so repeated batches reuse capacity.
func appendFrame(buf []byte, rec Record) []byte {
	n := recordHeaderSize + len(rec.Payload)
	off := len(buf)
	if cap(buf)-off < n {
		grown := make([]byte, off, 2*(off+n))
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+n]
	b := buf[off:]
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(rec.Payload)))
	binary.LittleEndian.PutUint64(b[8:16], rec.Index)
	binary.LittleEndian.PutUint64(b[16:24], rec.View)
	copy(b[recordHeaderSize:], rec.Payload)
	crc := crc32.ChecksumIEEE(b[4:])
	binary.LittleEndian.PutUint32(b[0:4], crc)
	return buf
}

func (l *Log) rollover(firstIndex uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%020d.wal", firstIndex))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rollover: %w", err)
	}
	seg := &segment{path: path, first: firstIndex, f: f, offsets: make(map[uint64]int64)}
	l.segments = append(l.segments, seg)
	l.active = seg
	return nil
}

// Get reads the record at index.
func (l *Log) Get(index uint64) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.getLocked(index)
}

func (l *Log) getLocked(index uint64) (Record, error) {
	for i := len(l.segments) - 1; i >= 0; i-- {
		seg := l.segments[i]
		off, ok := seg.offsets[index]
		if !ok {
			continue
		}
		return readRecord(seg.f, off)
	}
	return Record{}, fmt.Errorf("%w: index %d", ErrNotFound, index)
}

func readRecord(f *os.File, off int64) (Record, error) {
	hdr := make([]byte, recordHeaderSize)
	if _, err := f.ReadAt(hdr, off); err != nil {
		return Record{}, fmt.Errorf("wal: read header: %w", err)
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	length := binary.LittleEndian.Uint32(hdr[4:8])
	rec := Record{
		Index: binary.LittleEndian.Uint64(hdr[8:16]),
		View:  binary.LittleEndian.Uint64(hdr[16:24]),
	}
	rec.Payload = make([]byte, length)
	if _, err := f.ReadAt(rec.Payload, off+recordHeaderSize); err != nil {
		return Record{}, fmt.Errorf("wal: read payload: %w", err)
	}
	if crc32.ChecksumIEEE(append(append([]byte{}, hdr[4:]...), rec.Payload...)) != crc {
		return Record{}, ErrCorrupt
	}
	return rec, nil
}

// Scan calls fn for every record with index in [from, to) in increasing
// order. Missing indexes (before First or after Tail) are skipped; a record
// inside the live range that cannot be read aborts the scan with its error.
// fn returning false stops the scan early.
func (l *Log) Scan(from, to uint64, fn func(Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.empty {
		return nil
	}
	if from < l.first {
		from = l.first
	}
	if to > l.next {
		to = l.next
	}
	for idx := from; idx < to; idx++ {
		rec, err := l.getLocked(idx)
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// TruncateFrom removes every record with index >= from. Used during view
// changes to drop a superseded uncommitted suffix.
func (l *Log) TruncateFrom(from uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.empty || from >= l.next {
		return nil
	}
	// Drop whole segments whose first index is >= from.
	for len(l.segments) > 0 {
		seg := l.segments[len(l.segments)-1]
		if seg.first < from {
			break
		}
		seg.f.Close() //crane:fsyncerr-ok segment file is removed on the next line; a close failure loses nothing it would not lose anyway
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: truncate remove: %w", err)
		}
		l.segments = l.segments[:len(l.segments)-1]
	}
	if len(l.segments) == 0 {
		l.active = nil
		l.empty = true
		l.first, l.next = 0, 0
		return nil
	}
	// Trim the (new) last segment in place.
	seg := l.segments[len(l.segments)-1]
	cut := seg.size
	for idx, off := range seg.offsets {
		if idx >= from {
			if off < cut {
				cut = off
			}
			delete(seg.offsets, idx)
		}
	}
	if err := seg.f.Truncate(cut); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	seg.size = cut
	l.active = seg
	if from < l.next {
		l.next = from
	}
	if l.first >= l.next {
		l.empty = true
		l.first, l.next = 0, 0
	}
	return nil
}

// CompactBefore removes whole segments all of whose records have index
// < from. Called after a checkpoint at index from-1 makes the prefix
// recoverable elsewhere (§5.2: each checkpoint is associated with a global
// index). Partial segments are kept, so some records below from may
// survive; that is safe — compaction is a space optimization.
func (l *Log) CompactBefore(from uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segments) > 1 {
		// A segment is fully below `from` iff the next segment starts at
		// or below `from` (records are contiguous across segments).
		next := l.segments[1]
		if next.first > from {
			break
		}
		seg := l.segments[0]
		seg.f.Close()
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: compact remove: %w", err)
		}
		l.segments = l.segments[1:]
		l.first = next.first
	}
	return nil
}

// First returns the lowest index present, and false if the log is empty.
func (l *Log) First() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first, !l.empty
}

// Tail returns the highest index present, and false if the log is empty.
func (l *Log) Tail() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.empty {
		return 0, false
	}
	return l.next - 1, true
}

// Len returns the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.empty {
		return 0
	}
	return int(l.next - l.first)
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	return l.active.f.Sync()
}

// Close closes all segment files. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	for _, seg := range l.segments {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CopyAll returns every record in order. Intended for tests and for
// shipping a log prefix to a recovering replica.
func (l *Log) CopyAll() ([]Record, error) {
	var out []Record
	err := l.Scan(0, ^uint64(0), func(r Record) bool {
		out = append(out, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

var _ io.Closer = (*Log)(nil)
