package wal

import (
	"fmt"
	"testing"
)

// BenchmarkAppendNoSync measures append throughput without fsync (the
// configuration the in-process tests use).
func BenchmarkAppendNoSync(b *testing.B) {
	l, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload) + recordHeaderSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Record{Index: uint64(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSync measures durable append cost (every record synced,
// the paper's Berkeley-DB-on-SSD configuration).
func BenchmarkAppendSync(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Record{Index: uint64(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures random record reads.
func BenchmarkGet(b *testing.B) {
	l, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const n = 4096
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Index: uint64(i), Payload: []byte(fmt.Sprintf("rec-%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Get(uint64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryScan measures reopen (crash-recovery) time for a
// 10k-record log.
func BenchmarkRecoveryScan(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := l.Append(Record{Index: uint64(i), Payload: make([]byte, 64)}); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if l2.Len() != 10000 {
			b.Fatal("short recovery")
		}
		l2.Close()
	}
}

// BenchmarkAppendBatchSync measures durable group-commit appends: batches
// of 64 records share one buffered write and one fsync. Compare against
// BenchmarkAppendSync for the per-record amortization.
func BenchmarkAppendBatchSync(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const batch = 64
	payload := make([]byte, 128)
	recs := make([]Record, batch)
	b.SetBytes(int64(batch * (len(payload) + recordHeaderSize)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j] = Record{Index: uint64(i*batch + j), Payload: payload}
		}
		if err := l.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}
