// Package trace records a replica's network outputs for the consistency
// experiments of §7.2: the order and contents of all outgoing socket calls
// are logged per replica and diffed across replicas. Network outputs imply
// a server's execution state — including outcomes of ad-hoc
// synchronization — which synchronization schedules alone cannot capture.
//
// Like the paper (whose logs matched "except physical times in the
// responded HTTP headers"), the log can normalize away designated
// volatile spans (e.g. Date: headers) before comparison.
package trace

import (
	"bytes"
	"fmt"
	"regexp"
	"sync"
)

// Event is one outgoing socket call.
type Event struct {
	Seq  int    // per-replica output sequence number
	Conn uint64 // connection id
	Data []byte
}

// OutputLog is a per-replica ordered log of network outputs.
type OutputLog struct {
	mu         sync.Mutex
	name       string
	events     []Event
	normalizer *regexp.Regexp
	hash       uint64 // incremental FNV-1a over normalized outputs
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewOutputLog creates a log named after its replica.
func NewOutputLog(name string) *OutputLog {
	return &OutputLog{name: name, hash: fnvOffset}
}

// SetNormalizer installs a regexp whose matches are masked before
// comparison (the paper's "except physical times" carve-out). The cached
// fingerprint is recomputed over the stored events under the new rule.
func (l *OutputLog) SetNormalizer(re *regexp.Regexp) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.normalizer = re
	l.hash = fnvOffset
	for _, e := range l.events {
		l.hash = hashEvent(l.hash, e.Conn, l.normalized(e.Data))
	}
}

// hashEvent folds one event into the running FNV-1a hash, using the same
// framing Fingerprint historically used: "conn|" + data + NUL.
func hashEvent(h, conn uint64, data []byte) uint64 {
	for _, b := range []byte(fmt.Sprintf("%d|", conn)) {
		h = (h ^ uint64(b)) * fnvPrime
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return (h ^ 0) * fnvPrime // trailing NUL separator
}

// Record appends one outgoing socket call and folds it into the running
// fingerprint, keeping Fingerprint O(1) instead of rehashing every event.
// It returns the new output count and rolling fingerprint so callers can
// feed divergence-audit samples without re-locking.
func (l *OutputLog) Record(conn uint64, data []byte) (n int, fp uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{
		Seq:  len(l.events),
		Conn: conn,
		Data: append([]byte(nil), data...),
	})
	l.hash = hashEvent(l.hash, conn, l.normalized(data))
	return len(l.events), l.hash
}

// Len returns the number of recorded outputs.
func (l *OutputLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Name returns the replica name.
func (l *OutputLog) Name() string { return l.name }

// Events returns a copy of all recorded events.
func (l *OutputLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

func (l *OutputLog) normalized(data []byte) []byte {
	if l.normalizer == nil {
		return data
	}
	return l.normalizer.ReplaceAll(data, []byte("<normalized>"))
}

// Fingerprint returns an FNV-1a hash over the normalized ordered outputs;
// equal fingerprints mean byte-identical (normalized) output streams. The
// hash is maintained incrementally by Record, so this is O(1) — it can be
// polled per request (e.g. by a metrics scrape) without rescanning the log.
func (l *OutputLog) Fingerprint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hash
}

// Divergence describes the first difference between two logs.
type Divergence struct {
	Seq    int // index of the first differing event (-1: none)
	Reason string
}

// Diff compares two replica logs event by event (after normalization) and
// returns nil if they are identical.
func Diff(a, b *OutputLog) *Divergence {
	ae, be := a.Events(), b.Events()
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		x, y := ae[i], be[i]
		if x.Conn != y.Conn {
			return &Divergence{Seq: i, Reason: fmt.Sprintf(
				"%s wrote to conn %d, %s to conn %d", a.name, x.Conn, b.name, y.Conn)}
		}
		if !bytes.Equal(a.normalized(x.Data), b.normalized(y.Data)) {
			return &Divergence{Seq: i, Reason: fmt.Sprintf(
				"contents differ at output %d: %q vs %q", i, truncate(x.Data), truncate(y.Data))}
		}
	}
	if len(ae) != len(be) {
		return &Divergence{Seq: n, Reason: fmt.Sprintf(
			"%s logged %d outputs, %s logged %d", a.name, len(ae), b.name, len(be))}
	}
	return nil
}

// DiffAll compares every log against the first; it returns one line per
// divergent replica (empty slice: all consistent).
func DiffAll(logs []*OutputLog) []string {
	var out []string
	if len(logs) < 2 {
		return out
	}
	for _, l := range logs[1:] {
		if d := Diff(logs[0], l); d != nil {
			out = append(out, fmt.Sprintf("%s vs %s: %s", logs[0].name, l.name, d.Reason))
		}
	}
	return out
}

func truncate(b []byte) string {
	const max = 48
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
