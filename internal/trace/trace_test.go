package trace

import (
	"regexp"
	"testing"
)

func TestIdenticalLogsNoDivergence(t *testing.T) {
	a, b := NewOutputLog("r0"), NewOutputLog("r1")
	for i := 0; i < 10; i++ {
		a.Record(uint64(i%3), []byte("response"))
		b.Record(uint64(i%3), []byte("response"))
	}
	if d := Diff(a, b); d != nil {
		t.Fatalf("Diff = %+v", d)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for identical logs")
	}
}

func TestContentDivergenceDetected(t *testing.T) {
	a, b := NewOutputLog("r0"), NewOutputLog("r1")
	a.Record(1, []byte("200 OK"))
	b.Record(1, []byte("404 Not Found"))
	d := Diff(a, b)
	if d == nil || d.Seq != 0 {
		t.Fatalf("Diff = %+v", d)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprints equal for divergent logs")
	}
}

func TestConnDivergenceDetected(t *testing.T) {
	a, b := NewOutputLog("r0"), NewOutputLog("r1")
	a.Record(1, []byte("x"))
	b.Record(2, []byte("x"))
	if d := Diff(a, b); d == nil {
		t.Fatal("conn-order divergence missed")
	}
}

func TestLengthDivergenceDetected(t *testing.T) {
	a, b := NewOutputLog("r0"), NewOutputLog("r1")
	a.Record(1, []byte("x"))
	a.Record(1, []byte("y"))
	b.Record(1, []byte("x"))
	d := Diff(a, b)
	if d == nil || d.Seq != 1 {
		t.Fatalf("Diff = %+v", d)
	}
}

func TestNormalizerMasksPhysicalTime(t *testing.T) {
	re := regexp.MustCompile(`Date: [^\r\n]+`)
	a, b := NewOutputLog("r0"), NewOutputLog("r1")
	a.SetNormalizer(re)
	b.SetNormalizer(re)
	a.Record(1, []byte("HTTP/1.0 200 OK\r\nDate: Mon, 1 Jan\r\n\r\nbody"))
	b.Record(1, []byte("HTTP/1.0 200 OK\r\nDate: Tue, 2 Feb\r\n\r\nbody"))
	if d := Diff(a, b); d != nil {
		t.Fatalf("normalized logs diverge: %+v", d)
	}
	// But a real content difference still shows through.
	a.Record(1, []byte("body-A"))
	b.Record(1, []byte("body-B"))
	if d := Diff(a, b); d == nil {
		t.Fatal("real divergence masked by normalizer")
	}
}

func TestDiffAll(t *testing.T) {
	l0, l1, l2 := NewOutputLog("r0"), NewOutputLog("r1"), NewOutputLog("r2")
	for _, l := range []*OutputLog{l0, l1, l2} {
		l.Record(1, []byte("same"))
	}
	if got := DiffAll([]*OutputLog{l0, l1, l2}); len(got) != 0 {
		t.Fatalf("DiffAll = %v", got)
	}
	l2.Record(1, []byte("extra"))
	got := DiffAll([]*OutputLog{l0, l1, l2})
	if len(got) != 1 {
		t.Fatalf("DiffAll = %v", got)
	}
	if got := DiffAll([]*OutputLog{l0}); got != nil {
		t.Fatal("DiffAll of one log reported divergence")
	}
}

func TestEventsCopy(t *testing.T) {
	l := NewOutputLog("r")
	l.Record(5, []byte("abc"))
	ev := l.Events()
	ev[0].Data[0] = 'Z'
	if l.Events()[0].Data[0] != 'Z' {
		// Data slices may share backing; what matters is the event list
		// itself is copied.
		t.Skip("deep copy of data not required")
	}
	if l.Len() != 1 || l.Name() != "r" {
		t.Fatal("Len/Name broken")
	}
}
