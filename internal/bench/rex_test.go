package bench

import (
	"os"
	"testing"
)

func TestAblationRexSmoke(t *testing.T) {
	res, err := AblationRex(Scale{Requests: 6, Concurrency: 2, PrepareRows: 5}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScheduleOps == 0 || res.ScheduleBytesPerR == 0 {
		t.Fatalf("no schedule recorded: %+v", res)
	}
	if res.InputBytesPerR == 0 {
		t.Fatalf("no input bytes: %+v", res)
	}
	if res.Ratio <= 1 {
		t.Fatalf("expected schedule stream to dominate: %+v", res)
	}
}
