package bench

import (
	"fmt"
	"io"
	"time"

	"crane/internal/paxos"
)

// ShardCell is one group-count cell of the sharding sweep: N independent
// 3-node Paxos groups driven flat out over a latency-injected hub, with
// committed-entries-per-second as the headline and the speedup over the
// single-group baseline as the acceptance number (ISSUE 10).
type ShardCell struct {
	Groups    int   `json:"groups"`
	Entries   int   `json:"entries"`
	ElapsedNs int64 `json:"elapsed_ns"`

	EntriesPerSec float64 `json:"entries_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`

	// GroupCommits is each group's commit index at the end of the run —
	// evidence the load actually spread instead of one group carrying it.
	GroupCommits []uint64 `json:"group_commits"`
}

const (
	// shardHubLatency makes the Accept-round RTT the bottleneck: with a
	// narrow pipeline window (shardMaxInflight batches of shardMaxBatch
	// entries per ~2*latency), a single group tops out near
	// inflight*batch/RTT entries/sec regardless of CPU count, so adding
	// groups multiplies the number of independent pipeline windows — the
	// scaling the shard exists to buy. On a zero-latency hub the cells
	// would instead measure CPU contention on the bench host.
	shardHubLatency  = 250 * time.Microsecond
	shardHubJitter   = 25 * time.Microsecond
	shardMaxBatch    = 8
	shardMaxInflight = 2
	shardBurst       = 8 // entries per ProposeBatch call
)

// ShardingSweep measures consensus throughput at 1, 2, and 4 groups over
// identical total work, reporting the speedup each extra group buys. It
// drives the paxos layer directly (GroupMux over a shared per-replica
// endpoint, exactly the sharded cluster's transport shape) rather than the
// full server stack, so the cells isolate the consensus pipeline the
// tentpole shards instead of DMT scheduling.
func ShardingSweep(s Scale, w io.Writer) ([]ShardCell, error) {
	// Constant total work across cells; scaled so the single-group cell
	// runs a few hundred milliseconds at the pipeline's ~26k entries/sec.
	total := 256 * s.Requests
	var cells []ShardCell
	for _, groups := range []int{1, 2, 4} {
		cell, err := runShardCell(groups, total)
		if err != nil {
			return cells, err
		}
		if len(cells) > 0 && cells[0].EntriesPerSec > 0 {
			cell.SpeedupVs1 = cell.EntriesPerSec / cells[0].EntriesPerSec
		} else {
			cell.SpeedupVs1 = 1
		}
		cells = append(cells, cell)
		if w != nil {
			fmt.Fprintf(w, "Sharding groups=%d entries=%-6d elapsed=%-10v throughput=%-9.0f entries/s speedup=%.2fx\n",
				cell.Groups, cell.Entries,
				time.Duration(cell.ElapsedNs).Round(time.Millisecond),
				cell.EntriesPerSec, cell.SpeedupVs1)
		}
	}
	return cells, nil
}

func runShardCell(groups, total int) (ShardCell, error) {
	const replicas = 3
	hub := paxos.NewChanHub(shardHubLatency, shardHubJitter, 0, 1)
	defer hub.Close()
	peers := []int{0, 1, 2}

	// One shared hub endpoint per replica, demultiplexed per group — the
	// sharded cluster's transport shape. The single-group cell keeps the
	// mux too, so the cells differ only in group count, not in framing.
	muxes := make([]*paxos.GroupMux, replicas)
	for i := range muxes {
		muxes[i] = paxos.NewGroupMux(hub.Endpoint(i))
	}
	nodes := make([][]*paxos.Node, groups)
	for g := 0; g < groups; g++ {
		for i := 0; i < replicas; i++ {
			nd, err := paxos.NewNode(paxos.Config{
				ID: i, Peers: peers,
				Transport: muxes[i].Port(g),
				// Wide election timeout: a spurious mid-run re-election
				// discards accepted-but-uncommitted proposals and strands
				// the commit-index wait below, and the flood is exactly the
				// load that delays heartbeats. Elections only matter at
				// startup here, which the timed window excludes.
				HeartbeatInterval: 25 * time.Millisecond,
				ElectionTimeout:   300 * time.Millisecond,
				MaxBatch:          shardMaxBatch,
				MaxInflight:       shardMaxInflight,
			})
			if err != nil {
				return ShardCell{}, fmt.Errorf("bench: sharding: %w", err)
			}
			nodes[g] = append(nodes[g], nd)
		}
	}
	for g := range nodes {
		for _, nd := range nodes[g] {
			nd.Start()
		}
	}
	defer func() {
		for g := range nodes {
			for _, nd := range nodes[g] {
				nd.Stop()
			}
		}
	}()

	// Wait for every group to elect before the clock starts.
	primaries := make([]*paxos.Node, groups)
	electBy := time.Now().Add(5 * time.Second)
	for g := 0; g < groups; g++ {
		for primaries[g] == nil {
			if time.Now().After(electBy) {
				return ShardCell{}, fmt.Errorf("bench: sharding: group %d never elected", g)
			}
			for _, nd := range nodes[g] {
				if nd.IsPrimary() {
					primaries[g] = nd
					break
				}
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Split the work evenly and drive every group's primary concurrently
	// in proposer-side bursts, then wait for the commit indexes to cover
	// the full load.
	share := make([]int, groups)
	for i := 0; i < total; i++ {
		share[i%groups]++
	}
	start := time.Now()
	errs := make(chan error, groups)
	for g := 0; g < groups; g++ {
		g := g
		go func() {
			payload := []byte(fmt.Sprintf("shard-bench-g%d-00000000", g))
			for sent := 0; sent < share[g]; {
				n := shardBurst
				if rem := share[g] - sent; rem < n {
					n = rem
				}
				burst := make([][]byte, n)
				for j := range burst {
					burst[j] = payload
				}
				if err := primaries[g].ProposeBatch(burst); err != nil {
					errs <- fmt.Errorf("bench: sharding: group %d propose: %w", g, err)
					return
				}
				sent += n
			}
			errs <- nil
		}()
	}
	for g := 0; g < groups; g++ {
		if err := <-errs; err != nil {
			return ShardCell{}, err
		}
	}
	commitBy := time.Now().Add(60 * time.Second)
	for g := 0; g < groups; g++ {
		for primaries[g].CommitIndex() < uint64(share[g]) {
			if time.Now().After(commitBy) {
				detail := ""
				for i, nd := range nodes[g] {
					v, p := nd.View()
					detail += fmt.Sprintf(" node%d{commit=%d view=%d prim=%d vc=%d}",
						i, nd.CommitIndex(), v, p, nd.ViewChanges())
				}
				return ShardCell{}, fmt.Errorf("bench: sharding: group %d stuck at %d/%d:%s",
					g, primaries[g].CommitIndex(), share[g], detail)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	elapsed := time.Since(start)

	cell := ShardCell{
		Groups:        groups,
		Entries:       total,
		ElapsedNs:     int64(elapsed),
		EntriesPerSec: float64(total) / elapsed.Seconds(),
		GroupCommits:  make([]uint64, groups),
	}
	for g := 0; g < groups; g++ {
		cell.GroupCommits[g] = primaries[g].CommitIndex()
	}
	return cell, nil
}
