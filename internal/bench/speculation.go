package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/crane"
	"crane/internal/papi"
)

// SpecCell is one (speculation, WAL sync) cell of the speculation sweep:
// the admit-to-exec quantiles are the headline — the latency between the
// proxy admitting a socket call and the server's DMT turn consuming it,
// which speculation shortens from a full Paxos commit round to the
// scheduler's next turn.
type SpecCell struct {
	Speculation bool `json:"speculation"`
	WALSync     bool `json:"wal_sync"`

	AdmitToExecP50Ns   int64 `json:"admit_to_exec_p50_ns"`
	AdmitToExecP99Ns   int64 `json:"admit_to_exec_p99_ns"`
	AdmitToCommitP50Ns int64 `json:"admit_to_commit_p50_ns"`

	MedianNs int64 `json:"client_median_ns"`
	Requests int   `json:"requests"`
	Errors   int   `json:"errors"`

	Windows   uint64 `json:"spec_windows"`
	Hits      uint64 `json:"spec_hits"`
	Aborts    uint64 `json:"spec_aborts"`
	Rollbacks uint64 `json:"spec_rollbacks"`
}

// specBenchSpec is the speculation cell's workload: light pages over a
// deliberately slow consensus link (hub latency raised to ~2ms), so the
// admit-to-exec gap is dominated by the Accept round — the cost
// speculation removes — rather than by page execution.
func specBenchSpec() AppSpec {
	return AppSpec{
		Name: "Apache", Port: 8080,
		Program: func(bool) papi.Program {
			cfg := httpd.DefaultConfig()
			cfg.Workers = 4
			cfg.PHPChunks = 4
			cfg.PHPChunkWork = 200
			cfg.CacheEnabled = false
			cfg.WithDate = false
			return httpd.Program(cfg)
		},
		Workload: func(d clients.Dialer, s Scale) clients.Summary {
			// Serial: each request's speculation window confirms before the
			// next opens, so hits are attributable request by request.
			return clients.ApacheBench(d, 8080, "/page0.php", 1, s.Requests)
		},
	}
}

// specClusterConfig slows the consensus hub so a commit round costs ~6ms:
// on this link the off-cell's admit-to-exec IS the commit latency, and
// the on-cell's is the scheduler turn that no longer waits for it.
// Wtimeout is raised above the serial client's inter-request gap so no
// time bubble lands between a response and the next request's entries:
// a 1000-clock bubble takes ~15ms of idle-thread turns to chew through,
// and queueing behind one would swamp the commit wait both cells are
// here to compare.
func specClusterConfig(speculation, walSync bool, walDir string) crane.Config {
	cfg := ClusterConfig(crane.ModeCrane)
	cfg.Wtimeout = 5 * time.Millisecond
	// Small bubbles: the idle thread chews one bubble clock per token
	// turn (~15us), so a paper-default 1000-clock bubble ahead of a
	// request costs ~15ms — noise that would bury the commit wait under
	// study. 100 clocks keeps the chew ~1.5ms.
	cfg.Nclock = 100
	cfg.HubLatency = 2 * time.Millisecond
	cfg.HubJitter = 200 * time.Microsecond
	cfg.Speculation = speculation
	cfg.WALDir = walDir
	cfg.WALSync = walSync
	return cfg
}

// SpeculationSweep measures admit-to-exec latency with speculation off and
// on, with and without synchronous WAL appends (ISSUE 7). The WAL-sync
// column exists because fsync stretches the commit round — exactly the
// window speculation hides — so the speedup should grow with it.
func SpeculationSweep(s Scale, w io.Writer) ([]SpecCell, error) {
	spec := specBenchSpec()
	var cells []SpecCell
	for _, walSync := range []bool{false, true} {
		for _, on := range []bool{false, true} {
			walDir, err := os.MkdirTemp("", "crane-spec-bench")
			if err != nil {
				return cells, fmt.Errorf("bench: speculation: %w", err)
			}
			cell, err := runSpecCell(spec, s, on, walSync, walDir)
			os.RemoveAll(walDir)
			if err != nil {
				return cells, err
			}
			cells = append(cells, cell)
			if w != nil {
				fmt.Fprintf(w, "Speculation %-5v wal-sync=%-5v admit-to-exec p50=%-10v p99=%-10v "+
					"admit-to-commit p50=%-10v windows=%d hits=%d aborts=%d errors=%d\n",
					on, walSync,
					time.Duration(cell.AdmitToExecP50Ns).Round(time.Microsecond),
					time.Duration(cell.AdmitToExecP99Ns).Round(time.Microsecond),
					time.Duration(cell.AdmitToCommitP50Ns).Round(time.Microsecond),
					cell.Windows, cell.Hits, cell.Aborts, cell.Errors)
			}
		}
	}
	return cells, nil
}

func runSpecCell(spec AppSpec, s Scale, speculation, walSync bool, walDir string) (SpecCell, error) {
	cfg := specClusterConfig(speculation, walSync, walDir)
	cluster, err := crane.StartCluster(cfg, spec.Program(false))
	if err != nil {
		return SpecCell{}, fmt.Errorf("bench: speculation cell: %w", err)
	}
	defer cluster.Stop()
	sum := spec.Workload(cluster.Dial, s)
	primary, err := cluster.Primary()
	if err != nil {
		return SpecCell{}, fmt.Errorf("bench: speculation cell: %w", err)
	}
	cell := SpecCell{
		Speculation: speculation,
		WALSync:     walSync,
		MedianNs:    int64(sum.Median),
		Requests:    sum.Requests,
		Errors:      sum.Errors,
	}
	st := primary.SpecStats()
	cell.Windows, cell.Hits = st.Windows, st.Hits
	cell.Aborts, cell.Rollbacks = st.Aborts, st.Rollbacks
	for _, h := range primary.Obs().Histograms() {
		snap := h.Snapshot()
		switch snap.Name {
		case "proxy_admit_to_exec_seconds":
			cell.AdmitToExecP50Ns = int64(snap.P50)
			cell.AdmitToExecP99Ns = int64(snap.P99)
		case "proxy_admit_to_commit_seconds":
			cell.AdmitToCommitP50Ns = int64(snap.P50)
		}
	}
	return cell, nil
}
