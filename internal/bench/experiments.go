package bench

import (
	"fmt"
	"io"
	"regexp"
	"sync"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/httpkit"
	"crane/internal/checkpoint"
	"crane/internal/crane"
	"crane/internal/trace"
)

// --- Figure 14: performance normalized to un-replicated nondeterministic ---

// Fig14Row is one server's four bars.
type Fig14Row struct {
	App                                 string
	BaselineMedian                      time.Duration
	ParrotOnly, PaxosOnly, Crane        float64 // normalized medians (>1: slower)
	ParrotErrors, PaxosErrors, CraneErr int
}

// Figure14 runs every server under the four modes of Figure 14.
func Figure14(s Scale, w io.Writer) ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, spec := range Specs() {
		row := Fig14Row{App: spec.Name}
		base, err := RunCell(spec, ClusterConfig(crane.ModeNondet), false, s)
		if err != nil {
			return rows, err
		}
		row.BaselineMedian = base.Summary.Median
		norm := func(c Cell) float64 {
			if base.Summary.Median <= 0 {
				return 0
			}
			return float64(c.Summary.Median) / float64(base.Summary.Median)
		}
		parrot, err := RunCell(spec, ClusterConfig(crane.ModeParrotOnly), false, s)
		if err != nil {
			return rows, err
		}
		row.ParrotOnly, row.ParrotErrors = norm(parrot), parrot.Summary.Errors
		paxos, err := RunCell(spec, ClusterConfig(crane.ModePaxosOnly), false, s)
		if err != nil {
			return rows, err
		}
		row.PaxosOnly, row.PaxosErrors = norm(paxos), paxos.Summary.Errors
		full, err := RunCell(spec, ClusterConfig(crane.ModeCrane), false, s)
		if err != nil {
			return rows, err
		}
		row.Crane, row.CraneErr = norm(full), full.Summary.Errors
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "Fig14 %-10s baseline=%-10v parrot=%.2fx paxos=%.2fx crane=%.2fx\n",
				row.App, row.BaselineMedian.Round(time.Microsecond),
				row.ParrotOnly, row.PaxosOnly, row.Crane)
		}
	}
	return rows, nil
}

// --- Table 1: ratio of time bubbles in all consensus requests ---

// Table1Row is one server's bubble accounting.
type Table1Row struct {
	App         string
	ClientCalls uint64
	Bubbles     uint64
	Ratio       float64
}

// Table1 runs every server under full CRANE and reports bubble ratios.
func Table1(s Scale, w io.Writer) ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range Specs() {
		cell, err := RunCell(spec, ClusterConfig(crane.ModeCrane), false, s)
		if err != nil {
			return rows, err
		}
		row := Table1Row{App: spec.Name, ClientCalls: cell.ClientCalls,
			Bubbles: cell.Bubbles, Ratio: cell.BubbleRatio}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "Table1 %-10s client-calls=%-6d bubbles=%-5d ratio=%.2f%%\n",
				row.App, row.ClientCalls, row.Bubbles, 100*row.Ratio)
		}
	}
	return rows, nil
}

// --- Figure 15: soft-barrier performance hints (Apache, Mongoose) ---

// Fig15Row compares CRANE with and without the two-line hints.
type Fig15Row struct {
	App                   string
	WithoutHints          time.Duration
	WithHints             time.Duration
	SpeedupWithHints      float64 // without/with (>1: hints help)
	NormalizedWithout     float64 // vs nondet baseline
	NormalizedWith        float64
	BaselineMedian        time.Duration
	ErrorsWithoutWithHint [2]int
}

// Figure15 measures the hint effect on the two hint-taking servers.
func Figure15(s Scale, w io.Writer) ([]Fig15Row, error) {
	var rows []Fig15Row
	for _, spec := range Specs() {
		if !spec.HintsApply {
			continue
		}
		base, err := RunCell(spec, ClusterConfig(crane.ModeNondet), false, s)
		if err != nil {
			return rows, err
		}
		without, err := RunCell(spec, ClusterConfig(crane.ModeCrane), false, s)
		if err != nil {
			return rows, err
		}
		with, err := RunCell(spec, ClusterConfig(crane.ModeCrane), true, s)
		if err != nil {
			return rows, err
		}
		row := Fig15Row{
			App:            spec.Name,
			WithoutHints:   without.Summary.Median,
			WithHints:      with.Summary.Median,
			BaselineMedian: base.Summary.Median,
			ErrorsWithoutWithHint: [2]int{
				without.Summary.Errors, with.Summary.Errors},
		}
		if with.Summary.Median > 0 {
			row.SpeedupWithHints = float64(without.Summary.Median) / float64(with.Summary.Median)
		}
		if base.Summary.Median > 0 {
			row.NormalizedWithout = float64(without.Summary.Median) / float64(base.Summary.Median)
			row.NormalizedWith = float64(with.Summary.Median) / float64(base.Summary.Median)
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "Fig15 %-10s w/o-hints=%.2fx w/-hints=%.2fx (speedup %.2fx)\n",
				row.App, row.NormalizedWithout, row.NormalizedWith, row.SpeedupWithHints)
		}
	}
	return rows, nil
}

// --- Figures 16/17: W_timeout and N_clock sensitivity ---

// SweepPoint is one (parameter value, median) sample, normalized to the
// default-parameter run of the same server.
type SweepPoint struct {
	App        string
	Value      string
	Median     time.Duration
	Normalized float64
	Errors     int
}

// Wtimeouts are Figure 16's sweep values (µs).
var Wtimeouts = []time.Duration{
	1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	1000 * time.Microsecond, 10000 * time.Microsecond,
}

// Nclocks are Figure 17's sweep values.
var Nclocks = []uint64{100, 1000, 10000}

// Figure16 sweeps W_timeout for every server under full CRANE.
func Figure16(s Scale, w io.Writer) ([]SweepPoint, error) {
	return sweep(s, w, "Fig16", Wtimeouts, func(cfg *crane.Config, v time.Duration) string {
		cfg.Wtimeout = v
		return v.String()
	})
}

// Figure17 sweeps N_clock for every server under full CRANE.
func Figure17(s Scale, w io.Writer) ([]SweepPoint, error) {
	return sweep(s, w, "Fig17", Nclocks, func(cfg *crane.Config, v uint64) string {
		cfg.Nclock = v
		return fmt.Sprintf("%d", v)
	})
}

func sweep[V any](s Scale, w io.Writer, tag string, values []V, apply func(*crane.Config, V) string) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, spec := range Specs() {
		var defMedian time.Duration
		var local []SweepPoint
		for _, v := range values {
			cfg := ClusterConfig(crane.ModeCrane)
			label := apply(&cfg, v)
			cell, err := RunCell(spec, cfg, false, s)
			if err != nil {
				return points, err
			}
			p := SweepPoint{App: spec.Name, Value: label,
				Median: cell.Summary.Median, Errors: cell.Summary.Errors}
			local = append(local, p)
			if isDefault(tag, label) {
				defMedian = p.Median
			}
		}
		for i := range local {
			if defMedian > 0 {
				local[i].Normalized = float64(local[i].Median) / float64(defMedian)
			}
			if w != nil {
				fmt.Fprintf(w, "%s %-10s %-8s median=%-10v norm=%.2fx\n", tag,
					local[i].App, local[i].Value,
					local[i].Median.Round(time.Microsecond), local[i].Normalized)
			}
		}
		points = append(points, local...)
	}
	return points, nil
}

func isDefault(tag, label string) bool {
	return (tag == "Fig16" && label == "100µs") || (tag == "Fig17" && label == "1000")
}

// --- Table 2: checkpoint and restore costs ---

// Table2Row is one server's four timing columns plus patch size.
type Table2Row struct {
	App        string
	Cp, Rp     time.Duration // process checkpoint / restore
	Cfs, Rfs   time.Duration // filesystem checkpoint / restore
	PatchBytes int
}

// Table2 checkpoints each server on a backup replica mid-deployment and
// restores the image, timing the four components (§7.6 Table 2).
func Table2(s Scale, w io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range Specs() {
		cluster, err := crane.StartCluster(ClusterConfig(crane.ModeCrane), spec.Program(false))
		if err != nil {
			return rows, err
		}
		if spec.Prepare != nil {
			if err := spec.Prepare(cluster.Dial, s); err != nil {
				cluster.Stop()
				return rows, fmt.Errorf("bench: table2 %s prepare: %w", spec.Name, err)
			}
		}
		// Drive some load so there is state to checkpoint.
		spec.Workload(cluster.Dial, Scale{Requests: maxI(s.Requests/2, 4),
			Concurrency: 2, PrepareRows: s.PrepareRows})
		if spec.Dirty != nil {
			spec.Dirty(cluster.Dial)
		}
		if err := cluster.WaitQuiescent(30 * time.Second); err != nil {
			cluster.Stop()
			return rows, fmt.Errorf("bench: table2 %s: %w", spec.Name, err)
		}
		cp := checkpoint.New(checkpoint.Options{Backoff: time.Millisecond})
		ck, tm, err := cluster.CheckpointBackup(cp)
		if err != nil {
			cluster.Stop()
			return rows, fmt.Errorf("bench: table2 %s checkpoint: %w", spec.Name, err)
		}
		// Restore into fresh state (fs from base + patch; process image
		// into a new instance).
		p, _ := cluster.Primary()
		var backup *crane.Replica
		for i := 0; i < cluster.Replicas(); i++ {
			if cluster.Replica(i) != p {
				backup = cluster.Replica(i)
				break
			}
		}
		_, rfs, err := cp.RestoreFS(ck, backup.BaseSnapshot())
		if err != nil {
			cluster.Stop()
			return rows, err
		}
		inst := spec.Program(false).New(backup.FS())
		rpStart := time.Now()
		if err := inst.Restore(ck.Process); err != nil {
			cluster.Stop()
			return rows, err
		}
		rp := time.Since(rpStart)
		cluster.Stop()
		row := Table2Row{App: spec.Name, Cp: tm.CheckpointProcess, Rp: rp,
			Cfs: tm.CheckpointFS, Rfs: rfs, PatchBytes: tm.FSPatchBytes}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "Table2 %-10s Cp=%-10v Rp=%-10v Cfs=%-10v Rfs=%-10v patch=%dB\n",
				row.App, row.Cp.Round(time.Microsecond), row.Rp.Round(time.Microsecond),
				row.Cfs.Round(time.Microsecond), row.Rfs.Round(time.Microsecond), row.PatchBytes)
		}
	}
	return rows, nil
}

// --- §7.2: consistency of network outputs (plans I and II) ---

// ConsistencyResult summarizes repeated PUT/GET races.
type ConsistencyResult struct {
	Runs          int
	Divergent     int // runs where replica output logs differed
	NotFound      int // runs whose GET returned 404
	OK            int // runs whose GET returned 200
	OtherStatuses int
}

// Consistency runs the §7.2 experiment `runs` times under the given mode
// (ModeCrane = plan I, ModeCraneNoBubble = plan II): a concurrent mixed
// PUT/GET workload (the paper ran its performance workloads when comparing
// replica logs) plus the curl PUT/GET race on one page, then diffs every
// replica's network-output log. Divergence requires admission timing to
// interact with in-flight execution, which needs genuine concurrency.
func Consistency(mode crane.Mode, runs int, w io.Writer) (ConsistencyResult, error) {
	var res ConsistencyResult
	re := regexp.MustCompile(httpkit.DateHeaderPattern)
	for run := 0; run < runs; run++ {
		cfg := httpd.DefaultConfig()
		cfg.PHPChunks = 4
		cfg.PHPChunkWork = 500
		cfg.Workers = 8
		cfg.CacheEnabled = true // cache makes outputs interleaving-sensitive
		cluster, err := crane.StartCluster(ClusterConfig(mode), httpd.Program(cfg))
		if err != nil {
			return res, err
		}
		for i := 0; i < cluster.Replicas(); i++ {
			cluster.Replica(i).Outputs().SetNormalizer(re)
		}
		// Concurrent mixed workload: PUTs and GETs racing on two pages
		// while background GETs keep workers mid-computation.
		var wg sync.WaitGroup
		var getStatus int
		for c := 0; c < 4; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < 3; r++ {
					client := fmt.Sprintf("cc%d-%d:%d", run, c, r)
					switch c % 4 {
					case 0:
						clients.Curl(cluster.Dial, client, 8080, "PUT", "/a.php",
							[]byte(fmt.Sprintf("<?php v%d ?>", r)))
					case 1:
						st, _, _ := clients.Curl(cluster.Dial, client, 8080, "GET", "/a.php", nil)
						if r == 0 {
							getStatus = st
						}
					default:
						clients.Curl(cluster.Dial, client, 8080, "GET", "/page0.php", nil)
					}
				}
			}()
		}
		wg.Wait()
		switch getStatus {
		case 200:
			res.OK++
		case 404:
			res.NotFound++
		default:
			res.OtherStatuses++
		}
		// Give backups a bounded window to finish consuming; plan II may
		// legitimately wedge a backup (that *is* divergence).
		cluster.WaitQuiescent(3 * time.Second)
		if divs := trace.DiffAll(cluster.OutputLogs()); len(divs) > 0 {
			res.Divergent++
		}
		cluster.Stop()
		res.Runs++
	}
	if w != nil {
		fmt.Fprintf(w, "Consistency(%v) runs=%d divergent=%d 200s=%d 404s=%d\n",
			mode, res.Runs, res.Divergent, res.OK, res.NotFound)
	}
	return res, nil
}

// --- §7.6: leader election and failover ---

// ElectionResult times a forced failover.
type ElectionResult struct {
	DetectAndElect time.Duration // kill -> new primary observable
	ElectionPhase  float64       // the 3-step election itself, ms
}

// Election kills the primary of a running cluster and measures recovery.
func Election(w io.Writer) (ElectionResult, error) {
	cfg := ClusterConfig(crane.ModeCrane)
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.ElectionTimeout = 40 * time.Millisecond
	spec := Specs()[0] // Apache, as in §7.6's Mongoose-like setup
	cluster, err := crane.StartCluster(cfg, spec.Program(false))
	if err != nil {
		return ElectionResult{}, err
	}
	defer cluster.Stop()
	clients.Curl(cluster.Dial, "warm:1", spec.Port, "GET", "/index.html", nil)
	if _, err := cluster.FailPrimary(); err != nil {
		return ElectionResult{}, err
	}
	start := time.Now()
	p, err := cluster.Primary()
	if err != nil {
		return ElectionResult{}, err
	}
	res := ElectionResult{
		DetectAndElect: time.Since(start),
		ElectionPhase:  p.Node().LastElectionMillis(),
	}
	if w != nil {
		fmt.Fprintf(w, "Election detect+elect=%v election-phase=%.2fms\n",
			res.DetectAndElect.Round(time.Millisecond), res.ElectionPhase)
	}
	return res, nil
}

// --- ablation: per-burst vs per-request time consensus ---

// AblationPerRequest compares default time bubbling against W_timeout=~0
// (every lull becomes a bubble request — approximating dOS-style
// per-request admission consensus, §1/§8).
func AblationPerRequest(s Scale, w io.Writer) (perBurst, perRequest Cell, err error) {
	spec := Specs()[0] // Apache: bursty connect/send/close per request
	cfgDefault := ClusterConfig(crane.ModeCrane)
	perBurst, err = RunCell(spec, cfgDefault, false, s)
	if err != nil {
		return
	}
	cfgPerReq := ClusterConfig(crane.ModeCrane)
	cfgPerReq.Wtimeout = time.Microsecond // every lull becomes a bubble request
	perRequest, err = RunCell(spec, cfgPerReq, false, s)
	if err != nil {
		return
	}
	if w != nil {
		rel := 0.0
		if perBurst.Summary.Median > 0 {
			rel = float64(perRequest.Summary.Median) / float64(perBurst.Summary.Median)
		}
		fmt.Fprintf(w, "Ablation per-burst=%v per-request=%v (%.2fx), bubbles %d vs %d\n",
			perBurst.Summary.Median.Round(time.Microsecond),
			perRequest.Summary.Median.Round(time.Microsecond), rel,
			perBurst.Bubbles, perRequest.Bubbles)
	}
	return
}
