package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"crane/internal/crane"
	"crane/internal/obs"
	"crane/internal/paxos"
	"crane/internal/wal"
)

// StageRow is one transition of the request lifecycle trace (admit ->
// proposed -> committed -> consumed -> output), with wall-clock quantiles
// and the logical-clock delta where the DMT is involved.
type StageRow struct {
	From       string `json:"from"`
	To         string `json:"to"`
	Count      int    `json:"count"`
	WallP50Ns  int64  `json:"wall_p50_ns"`
	WallP95Ns  int64  `json:"wall_p95_ns"`
	WallMaxNs  int64  `json:"wall_max_ns"`
	LogicalP50 uint64 `json:"logical_p50"`
}

// HistRow is one registry histogram's quantile snapshot. Unitless
// histograms (batch sizes, depths) report raw units in the *_ns fields.
type HistRow struct {
	Name     string `json:"name"`
	Unitless bool   `json:"unitless,omitempty"`
	Count    uint64 `json:"count"`
	MeanNs   int64  `json:"mean_ns"`
	P50Ns    int64  `json:"p50_ns"`
	P95Ns    int64  `json:"p95_ns"`
	P99Ns    int64  `json:"p99_ns"`
}

// OverheadReport compares the propose-commit hot path with live
// instruments against the same path through the no-op (nil) registry.
// The paper's transparency claim extends to observation: instrumenting
// every layer must stay within a few percent of un-instrumented runs.
type OverheadReport struct {
	BaselineNsOp     float64 `json:"baseline_ns_op"`
	InstrumentedNsOp float64 `json:"instrumented_ns_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	ThresholdPct     float64 `json:"threshold_pct"`
	Trials           int     `json:"trials"`
	OpsPerTrial      int     `json:"ops_per_trial"`
	Pass             bool    `json:"pass"`
}

// ObservabilityReport is the full per-stage latency breakdown of one
// crane cell plus the instrumentation overhead measurements; crane-bench
// serializes it to BENCH_observability.json.
type ObservabilityReport struct {
	App      string         `json:"app"`
	Mode     string         `json:"mode"`
	Requests int            `json:"requests"`
	Stages   []StageRow     `json:"stages"`
	Hists    []HistRow      `json:"histograms"`
	Overhead OverheadReport `json:"overhead"`
	// FlightOverhead compares the full replicated request path with the
	// always-on flight recorder against the same path with the recorder
	// disabled (Config.NoFlightRecorder).
	FlightOverhead OverheadReport `json:"flight_overhead"`
}

// overheadThresholdPct is the acceptance ceiling for instrumentation
// cost on the propose-commit path.
const overheadThresholdPct = 5.0

// Observability runs the lifecycle-tracing cell: one evaluated server
// under full CRANE with the span tracer enabled, followed by the
// instrumentation overhead measurement. It prints the per-stage table
// and returns the machine-readable report.
func Observability(s Scale, out io.Writer) (ObservabilityReport, error) {
	spec := Specs()[0] // Apache: the paper's lead workload (§7.1)
	cfg := ClusterConfig(crane.ModeCrane)
	cfg.TraceCapacity = 1 << 16

	cluster, err := crane.StartCluster(cfg, spec.Program(false))
	if err != nil {
		return ObservabilityReport{}, fmt.Errorf("bench: observability: %w", err)
	}
	sum := spec.Workload(cluster.Dial, s)
	primary, err := cluster.Primary()
	if err != nil {
		cluster.Stop()
		return ObservabilityReport{}, fmt.Errorf("bench: observability: %w", err)
	}
	rep := ObservabilityReport{
		App:      spec.Name,
		Mode:     cfg.Mode.String(),
		Requests: sum.Requests,
	}
	fmt.Fprintf(out, "%s under %s: per-stage request lifecycle (primary replica)\n", spec.Name, rep.Mode)
	for _, row := range primary.Tracer().Breakdown() {
		fmt.Fprintf(out, "  %s\n", row)
		rep.Stages = append(rep.Stages, StageRow{
			From: row.From, To: row.To, Count: row.Count,
			WallP50Ns: int64(row.WallP50), WallP95Ns: int64(row.WallP95),
			WallMaxNs: int64(row.WallMax), LogicalP50: row.LogicalP50,
		})
	}
	fmt.Fprintln(out, "registry histograms (primary replica)")
	for _, h := range primary.Obs().Histograms() {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		if snap.Unitless {
			fmt.Fprintf(out, "  %-32s n=%-6d mean=%-10.1f p50=%-10d p95=%-10d p99=%d\n",
				snap.Name, snap.Count, float64(snap.Sum)/float64(snap.Count),
				int64(snap.P50), int64(snap.P95), int64(snap.P99))
		} else {
			fmt.Fprintf(out, "  %-32s n=%-6d mean=%-10v p50=%-10v p95=%-10v p99=%v\n",
				snap.Name, snap.Count, snap.Sum/time.Duration(snap.Count), snap.P50, snap.P95, snap.P99)
		}
		rep.Hists = append(rep.Hists, HistRow{
			Name: snap.Name, Unitless: snap.Unitless, Count: snap.Count,
			MeanNs: int64(snap.Sum) / int64(snap.Count),
			P50Ns:  int64(snap.P50), P95Ns: int64(snap.P95), P99Ns: int64(snap.P99),
		})
	}
	cluster.Stop()

	oh, err := measureOverhead(s)
	if err != nil {
		return ObservabilityReport{}, err
	}
	rep.Overhead = oh
	verdict := "PASS"
	if !oh.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "instrumentation overhead on ProposeCommit: baseline %.0f ns/op, instrumented %.0f ns/op, %+.2f%% (threshold %.0f%%): %s\n",
		oh.BaselineNsOp, oh.InstrumentedNsOp, oh.OverheadPct, oh.ThresholdPct, verdict)

	fo, err := measureFlightOverhead(s)
	if err != nil {
		return ObservabilityReport{}, err
	}
	rep.FlightOverhead = fo
	verdict = "PASS"
	if !fo.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "flight-recorder overhead on the request path: off %.0f ns/req, on %.0f ns/req, %+.2f%% (threshold %.0f%%): %s\n",
		fo.BaselineNsOp, fo.InstrumentedNsOp, fo.OverheadPct, fo.ThresholdPct, verdict)
	return rep, nil
}

// measureFlightOverhead times the full replicated request path (client ->
// proxy -> consensus -> DMT -> server -> output) with the flight recorder
// journaling every determinism event against the identical path with the
// recorder compiled out of the wiring (Config.NoFlightRecorder). Same
// pairing discipline as measureOverhead: each trial runs both arms back to
// back in alternating order and contributes one on/off ratio; the median
// ratio discards outlier pairs.
func measureFlightOverhead(s Scale) (OverheadReport, error) {
	const trials = 5
	// Warm both arms (listener paths, page cache) before timing.
	if _, err := flightTrial(s, true); err != nil {
		return OverheadReport{}, err
	}
	ratios := make([]float64, 0, trials)
	onRuns := make([]float64, 0, trials)
	offRuns := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		first := t%2 == 0 // recorder-on first on even trials
		a, err := flightTrial(s, first)
		if err != nil {
			return OverheadReport{}, err
		}
		b, err := flightTrial(s, !first)
		if err != nil {
			return OverheadReport{}, err
		}
		on, off := a, b
		if !first {
			on, off = b, a
		}
		ratios = append(ratios, on/off)
		onRuns = append(onRuns, on)
		offRuns = append(offRuns, off)
	}
	pct := (median(ratios) - 1) * 100
	return OverheadReport{
		BaselineNsOp:     median(offRuns),
		InstrumentedNsOp: median(onRuns),
		OverheadPct:      pct,
		ThresholdPct:     overheadThresholdPct,
		Trials:           trials,
		OpsPerTrial:      s.Requests,
		Pass:             pct <= overheadThresholdPct,
	}, nil
}

// flightTrial runs one workload pass over a fresh CRANE cluster and
// returns mean wall nanoseconds per completed request.
func flightTrial(s Scale, recorder bool) (float64, error) {
	spec := Specs()[0]
	cfg := ClusterConfig(crane.ModeCrane)
	cfg.NoFlightRecorder = !recorder
	cluster, err := crane.StartCluster(cfg, spec.Program(false))
	if err != nil {
		return 0, fmt.Errorf("bench: flight overhead: %w", err)
	}
	defer cluster.Stop()
	sum := spec.Workload(cluster.Dial, s)
	if sum.Requests == 0 || sum.Requests == sum.Errors {
		return 0, fmt.Errorf("bench: flight overhead: no completed requests")
	}
	return float64(sum.Total) / float64(sum.Requests-sum.Errors), nil
}

// measureOverhead times the paxos propose-commit loop twice — once with a
// live registry on every node and its WAL, once through the nil (no-op)
// registry — and reports the relative cost. Scheduler noise between runs
// swamps the effect being measured, so the estimate is paired: each trial
// runs both configurations back to back (alternating which goes first)
// and contributes one instrumented/baseline ratio; machine-load drift
// cancels within a pair, and the median ratio over the trials discards
// outlier pairs.
func measureOverhead(s Scale) (OverheadReport, error) {
	const trials = 7
	ops := 4000 * s.Requests // SmallScale: 64k proposals, ~150ms per run
	// Warm both paths once (page cache, lazy init) before timing.
	if _, err := proposeCommitTrial(ops/4, true); err != nil {
		return OverheadReport{}, err
	}
	ratios := make([]float64, 0, trials)
	insRuns := make([]float64, 0, trials)
	basRuns := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		first, second := true, false // instrumented first on even trials
		if t%2 == 1 {
			first, second = second, first
		}
		a, err := proposeCommitTrial(ops, first)
		if err != nil {
			return OverheadReport{}, err
		}
		b, err := proposeCommitTrial(ops, second)
		if err != nil {
			return OverheadReport{}, err
		}
		ins, bas := a, b
		if !first {
			ins, bas = b, a
		}
		ratios = append(ratios, ins/bas)
		insRuns = append(insRuns, ins)
		basRuns = append(basRuns, bas)
	}
	pct := (median(ratios) - 1) * 100
	return OverheadReport{
		BaselineNsOp:     median(basRuns),
		InstrumentedNsOp: median(insRuns),
		OverheadPct:      pct,
		ThresholdPct:     overheadThresholdPct,
		Trials:           trials,
		OpsPerTrial:      ops,
		Pass:             pct <= overheadThresholdPct,
	}, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// proposeCommitTrial runs one timed propose-commit loop on a fresh
// three-node paxos cluster with group-commit WALs (NoSync: the fsync
// floor would otherwise drown the instrument cost being measured) and
// returns ns per committed proposal.
func proposeCommitTrial(ops int, instrumented bool) (float64, error) {
	hub := paxos.NewChanHub(0, 0, 0, 1)
	delivered := make(chan struct{}, 1)
	var count int
	nodes := make([]*paxos.Node, 0, 3)
	dirs := make([]string, 0, 3)
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()
	for i := 0; i < 3; i++ {
		dir, err := os.MkdirTemp("", "crane-obs-bench")
		if err != nil {
			return 0, err
		}
		dirs = append(dirs, dir)
		var reg *obs.Registry
		if instrumented {
			reg = obs.NewRegistry()
		}
		store, err := wal.Open(dir, wal.Options{NoSync: true, Obs: reg})
		if err != nil {
			return 0, err
		}
		cfg := paxos.Config{
			ID: i, Peers: []int{0, 1, 2}, Transport: hub.Endpoint(i),
			Store:             store,
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   2 * time.Second,
			Obs:               reg,
		}
		if i == 0 {
			cfg.OnDeliver = func(paxos.LogEntry) {
				count++
				if count == ops {
					delivered <- struct{}{}
				}
			}
		}
		n, err := paxos.NewNode(cfg)
		if err != nil {
			store.Close() //crane:fsyncerr-ok cleanup after failed node start; the original error is returned
			return 0, err
		}
		nodes = append(nodes, n)
		n.Start()
	}
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].IsPrimary() {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("bench: observability: no primary elected")
		}
		time.Sleep(time.Millisecond)
	}
	payload := []byte("benchmark-payload-of-typical-request-size-64bytes")
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := nodes[0].Propose(payload); err != nil {
			return 0, fmt.Errorf("bench: observability: propose: %w", err)
		}
	}
	select {
	case <-delivered:
	case <-time.After(60 * time.Second):
		return 0, fmt.Errorf("bench: observability: commit stalled at %d/%d", count, ops)
	}
	return float64(time.Since(start)) / float64(ops), nil
}
