// Package bench is the experiment harness for §7 of the paper: it deploys
// each evaluated server under each execution mode, drives the matching
// workload, and produces the rows of every table and series of every
// figure. The root-level benchmarks (bench_test.go) and cmd/crane-bench
// both delegate here; EXPERIMENTS.md records the outputs next to the
// paper's numbers.
package bench

import (
	"fmt"
	"time"

	"crane/internal/apps/clamav"
	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mediatomb"
	"crane/internal/apps/mongoose"
	"crane/internal/apps/mysqld"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// Scale sizes a run: request counts and per-request work, tuned so the
// full suite completes on a laptop-class machine while preserving the
// workload mixes (CPU-, network-, and file-IO-bound, §7).
type Scale struct {
	Requests    int // total requests per cell
	Concurrency int // concurrent clients (must be <= server workers)
	PrepareRows int // sysbench table size
}

// SmallScale keeps cells around a second; the default for tests.
var SmallScale = Scale{Requests: 16, Concurrency: 4, PrepareRows: 30}

// FullScale approaches the paper's 1K-request runs.
var FullScale = Scale{Requests: 120, Concurrency: 6, PrepareRows: 200}

// AppSpec binds one evaluated server program to its §7 workload.
type AppSpec struct {
	// Name matches the paper's program name.
	Name string
	// Port is the program's service port.
	Port int
	// Program builds the deployable program; useHints enables the
	// two-line soft-barrier hints (§7.4, only meaningful for Apache and
	// Mongoose).
	Program func(useHints bool) papi.Program
	// Prepare optionally seeds the server (sysbench's prepare phase).
	Prepare func(d clients.Dialer, s Scale) error
	// Workload drives the §7 benchmark and reports latency statistics.
	Workload func(d clients.Dialer, s Scale) clients.Summary
	// Dirty optionally mutates server filesystem state before a
	// checkpoint is taken (Table 2 needs a non-empty working set).
	Dirty func(d clients.Dialer)
	// HintsApply marks the two servers Figure 15 evaluates.
	HintsApply bool
}

// Specs returns the five evaluated servers with simulation-scaled work
// parameters.
func Specs() []AppSpec {
	return []AppSpec{
		{
			Name: "Apache", Port: 8080, HintsApply: true,
			Program: func(hints bool) papi.Program {
				cfg := httpd.DefaultConfig()
				cfg.Workers = 8
				cfg.UseHints = hints
				cfg.HintGroup = 4 // match workload concurrency
				// ~20k work units per page (~6ms): the scaled analogue of
				// the paper's 70ms PHP pages.
				cfg.PHPChunks = 8
				cfg.PHPChunkWork = 2500
				// Every request interprets (the paper's pages take ~70ms
				// of PHP work each; a cache would hide the workload).
				cfg.CacheEnabled = false
				cfg.WithDate = false
				return httpd.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.ApacheBench(d, 8080, "/page0.php", s.Concurrency, s.Requests)
			},
			Dirty: func(d clients.Dialer) {
				for i := 0; i < 4; i++ {
					clients.Curl(d, fmt.Sprintf("dirty:%d", i), 8080, "PUT",
						fmt.Sprintf("/upload%d.html", i),
						[]byte(fmt.Sprintf("<html>uploaded %d</html>", i)))
				}
			},
		},
		{
			Name: "Mongoose", Port: 8081, HintsApply: true,
			Program: func(hints bool) papi.Program {
				cfg := mongoose.DefaultConfig()
				cfg.Workers = 6
				cfg.UseHints = hints
				cfg.HintGroup = 4
				cfg.ScriptChunks = 6
				cfg.ScriptChunkWork = 2000
				cfg.WithDate = false
				return mongoose.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.ApacheBench(d, 8081, "/app0.php", s.Concurrency, s.Requests)
			},
			Dirty: func(d clients.Dialer) {
				clients.Curl(d, "dirty:1", 8081, "PUT", "/posted.html", []byte("posted"))
			},
		},
		{
			Name: "ClamAV", Port: 3310,
			Program: func(bool) papi.Program {
				cfg := clamav.DefaultConfig()
				cfg.WorkPerKB = 60 // ~5ms per tree scan
				return clamav.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				// Scan the clean subtree so repeated scans are stable.
				return clients.ClamBench(d, 3310, "src/clamav/file", 2, maxI(s.Requests/2, 4))
			},
			Dirty: func(d clients.Dialer) {
				// A full scan deletes the two infected files: fs delta.
				clients.ClamdScan(d, "dirty:1", 3310, "src/clamav")
			},
		},
		{
			Name: "MediaTomb", Port: 50500,
			Program: func(bool) papi.Program {
				cfg := mediatomb.DefaultConfig()
				// The longest requests of the evaluation (9.7s in the
				// paper; ~10ms scaled here).
				cfg.Segments = 6
				cfg.WorkPerSegment = 5500
				return mediatomb.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				// Transcodes are the longest requests (paper: 9.7s each);
				// run fewer of them.
				return clients.MediaBench(d, 50500, "video0.avi", 2, maxI(s.Requests/4, 3))
			},
		},
		{
			Name: "MySQL", Port: 3306,
			Program: func(bool) papi.Program {
				cfg := mysqld.DefaultConfig()
				cfg.Workers = 10
				cfg.WorkPerQuery = 4000 // ~1.2ms per query
				return mysqld.Program(cfg)
			},
			Prepare: func(d clients.Dialer, s Scale) error {
				return clients.SysBenchPrepare(d, "prep:1", 3306, s.PrepareRows)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.SysBench(d, 3306, s.PrepareRows, s.Concurrency, s.Requests)
			},
		},
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClusterConfig is the common deployment shape for experiment cells.
func ClusterConfig(mode crane.Mode) crane.Config {
	return crane.Config{
		Mode:     mode,
		Replicas: 3,
		Lanes:    DeployLanes,
		Wtimeout: 100 * time.Microsecond, // paper default
		Nclock:   1000,                   // paper default
		NetOptions: simnet.Options{
			Latency: 30 * time.Microsecond,
			Jitter:  80 * time.Microsecond,
		},
		HubLatency:        20 * time.Microsecond,
		HubJitter:         50 * time.Microsecond,
		HeartbeatInterval: 30 * time.Millisecond,
	}
}

// Cell is one (app, configuration) measurement.
type Cell struct {
	App     string
	Mode    string
	Summary clients.Summary
	// Normalized is this cell's median over the baseline median
	// (the paper normalizes to un-replicated nondeterministic execution;
	// >1 means slower than baseline).
	Normalized float64
	// Bubble statistics from the primary's Paxos sequence (Table 1).
	ClientCalls uint64
	Bubbles     uint64
	BubbleRatio float64
}

// RunCellWithMetrics is RunCell plus per-replica metric lines captured at
// the end of the workload (for interactive tools).
func RunCellWithMetrics(spec AppSpec, cfg crane.Config, useHints bool, s Scale) (Cell, []string, error) {
	cluster, err := crane.StartCluster(cfg, spec.Program(useHints))
	if err != nil {
		return Cell{}, nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, cfg.Mode, err)
	}
	defer cluster.Stop()
	if spec.Prepare != nil {
		if err := spec.Prepare(cluster.Dial, s); err != nil {
			return Cell{}, nil, fmt.Errorf("bench: %s prepare: %w", spec.Name, err)
		}
	}
	sum := spec.Workload(cluster.Dial, s)
	st := cluster.SeqStats()
	var lines []string
	for _, m := range cluster.ClusterMetrics() {
		lines = append(lines, m.String())
	}
	return Cell{
		App:         spec.Name,
		Mode:        cfg.Mode.String(),
		Summary:     sum,
		ClientCalls: st.ClientCalls,
		Bubbles:     st.Bubbles,
		BubbleRatio: st.BubbleRatio(),
	}, lines, nil
}

// RunCell deploys spec under cfg, runs the workload, and returns the cell.
func RunCell(spec AppSpec, cfg crane.Config, useHints bool, s Scale) (Cell, error) {
	cluster, err := crane.StartCluster(cfg, spec.Program(useHints))
	if err != nil {
		return Cell{}, fmt.Errorf("bench: %s/%s: %w", spec.Name, cfg.Mode, err)
	}
	defer cluster.Stop()
	if spec.Prepare != nil {
		if err := spec.Prepare(cluster.Dial, s); err != nil {
			return Cell{}, fmt.Errorf("bench: %s prepare: %w", spec.Name, err)
		}
	}
	sum := spec.Workload(cluster.Dial, s)
	st := cluster.SeqStats()
	return Cell{
		App:         spec.Name,
		Mode:        cfg.Mode.String(),
		Summary:     sum,
		ClientCalls: st.ClientCalls,
		Bubbles:     st.Bubbles,
		BubbleRatio: st.BubbleRatio(),
	}, nil
}
