package bench

import (
	"fmt"
	"io"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/cfs"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// RexComparison quantifies §8's argument against Rex-style
// "execute-agree-follow" replication: Rex must ship the primary's thread
// interleavings to backups, while CRANE ships only socket inputs. This
// experiment runs the Apache workload once under the plain Parrot runtime
// with schedule recording (measuring how many synchronization-schedule
// bytes a Rex primary would ship) and once under full CRANE (measuring the
// consensus payload bytes actually shipped), and reports both per request.
type RexComparison struct {
	Requests          int
	ScheduleOps       int
	ScheduleBytesPerR float64 // Rex: recorded schedule bytes / request
	InputBytesPerR    float64 // CRANE: consensus payload bytes / request
	Ratio             float64 // schedule/input (>1: Rex ships more)
}

// scheduleBytesPerOp is the wire cost of one schedule step (thread id
// varint + op byte, as Rex's interleaving stream would carry).
const scheduleBytesPerOp = 5

// AblationRex runs the comparison.
func AblationRex(s Scale, w io.Writer) (RexComparison, error) {
	res := RexComparison{Requests: s.Requests}
	spec := Specs()[0] // Apache

	// --- Rex side: record the DMT schedule under plain Parrot. ---
	net := simnet.New(simnet.Options{Latency: 30 * time.Microsecond})
	fs := cfs.New()
	prog := spec.Program(false)
	if prog.Install != nil {
		prog.Install(fs)
	}
	proc := papi.NewParrotProc(net, "server", fs)
	rec := proc.Sched.StartRecording()
	proc.Start(prog.New(fs))
	dial := func(client string, port int) (*simnet.Conn, error) {
		var c *simnet.Conn
		var err error
		for i := 0; i < 300; i++ {
			c, err = net.Dial(simnet.Addr(client), simnet.Addr(fmt.Sprintf("server:%d", port)))
			if err == nil {
				return c, nil
			}
			time.Sleep(time.Millisecond)
		}
		return nil, err
	}
	sum := spec.Workload(clients.Dialer(dial), s)
	proc.Kill()
	proc.Wait()
	if sum.Errors > 0 {
		return res, fmt.Errorf("bench: rex recording had %d errors", sum.Errors)
	}
	res.ScheduleOps = rec.Len()
	res.ScheduleBytesPerR = float64(rec.Len()*scheduleBytesPerOp) / float64(s.Requests)

	// --- CRANE side: measure consensus payload bytes. ---
	cluster, err := crane.StartCluster(ClusterConfig(crane.ModeCrane), spec.Program(false))
	if err != nil {
		return res, err
	}
	spec.Workload(cluster.Dial, s)
	st := cluster.SeqStats()
	cluster.Stop()
	res.InputBytesPerR = float64(st.PayloadBytes) / float64(s.Requests)
	if res.InputBytesPerR > 0 {
		res.Ratio = res.ScheduleBytesPerR / res.InputBytesPerR
	}
	if w != nil {
		fmt.Fprintf(w, "Rex-vs-CRANE shipping: schedule %.0f B/req (%d ops) vs input %.0f B/req (%.1fx)\n",
			res.ScheduleBytesPerR, res.ScheduleOps, res.InputBytesPerR, res.Ratio)
	}
	return res, nil
}
