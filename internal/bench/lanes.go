package bench

import (
	"fmt"
	"io"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/mongoose"
	"crane/internal/apps/mysqld"
	"crane/internal/crane"
	"crane/internal/papi"
)

// DeployLanes is the execution-lane count DMT-mode cells deploy with
// (crane-bench -lanes). Programs that declare no papi.ConflictMap still
// clamp to a single lane, so raising it is always safe.
var DeployLanes = 1

// LaneCounts is the sweep the lanes experiment records in BENCH_lanes.json.
var LaneCounts = []int{1, 2, 4, 8}

// LaneCell is one (app, lane count) measurement of the sweep.
type LaneCell struct {
	Lanes  int
	Median time.Duration
	// Crane is the crane-x ratio: full-CRANE median over the un-replicated
	// nondeterministic baseline (>1: slower). Lanes==1 is the pre-lane
	// scheduler bit for bit — the "before" column.
	Crane  float64
	Errors int
}

// LanesRow is one server's sweep.
type LanesRow struct {
	App            string
	BaselineMedian time.Duration
	Cells          []LaneCell
}

// laneSpecs are the conflict-declaring servers the lane sweep evaluates,
// at 8+ workers so the lanes have parallelism to expose (the ISSUE 6
// acceptance bar: crane-x < 2.0 on httpd and mongoose with 8+ workers and
// 4+ lanes).
func laneSpecs() []AppSpec {
	return []AppSpec{
		{
			Name: "Apache", Port: 8080,
			Program: func(bool) papi.Program {
				cfg := httpd.DefaultConfig()
				cfg.Workers = 8
				// Light pages: on the shared 1-core bench machine, 3 replicas
				// re-executing heavy PHP put a hard ~3x floor on crane-x
				// (pure CPU replication cost) that no scheduler can beat.
				// The lane experiment isolates what lanes actually remove —
				// token-rotation and admission serialization — which is the
				// dominant cost for latency-bound pages.
				cfg.PHPChunks = 4
				cfg.PHPChunkWork = 250
				cfg.CacheEnabled = false
				cfg.WithDate = false
				return httpd.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.ApacheBench(d, 8080, "/page0.php", s.Concurrency, s.Requests)
			},
		},
		{
			Name: "Mongoose", Port: 8081,
			Program: func(bool) papi.Program {
				cfg := mongoose.DefaultConfig()
				cfg.Workers = 8
				cfg.ScriptChunks = 4
				cfg.ScriptChunkWork = 250
				cfg.WithDate = false
				return mongoose.Program(cfg)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.ApacheBench(d, 8081, "/app0.php", s.Concurrency, s.Requests)
			},
		},
		{
			Name: "MySQL", Port: 3306,
			Program: func(bool) papi.Program {
				cfg := mysqld.DefaultConfig()
				cfg.Workers = 10
				cfg.WorkPerQuery = 800
				return mysqld.Program(cfg)
			},
			Prepare: func(d clients.Dialer, s Scale) error {
				return clients.SysBenchPrepare(d, "prep:1", 3306, s.PrepareRows)
			},
			Workload: func(d clients.Dialer, s Scale) clients.Summary {
				return clients.SysBench(d, 3306, s.PrepareRows, s.Concurrency, s.Requests)
			},
		},
	}
}

// LanesSweep measures crane-x against the lane count for each
// conflict-declaring server: one un-replicated nondeterministic baseline,
// then full CRANE at each count. Concurrency is forced to 8 so the lanes
// have concurrent connections to spread (connections route to lanes by
// connID, so fewer clients than lanes would leave lanes idle).
func LanesSweep(s Scale, counts []int, w io.Writer) ([]LanesRow, error) {
	if s.Concurrency < 8 {
		s.Concurrency = 8
	}
	var rows []LanesRow
	for _, spec := range laneSpecs() {
		base, err := RunCell(spec, ClusterConfig(crane.ModeNondet), false, s)
		if err != nil {
			return rows, err
		}
		row := LanesRow{App: spec.Name, BaselineMedian: base.Summary.Median}
		for _, n := range counts {
			cfg := ClusterConfig(crane.ModeCrane)
			cfg.Lanes = n
			cell, err := RunCell(spec, cfg, false, s)
			if err != nil {
				return rows, err
			}
			lc := LaneCell{Lanes: n, Median: cell.Summary.Median, Errors: cell.Summary.Errors}
			if base.Summary.Median > 0 {
				lc.Crane = float64(cell.Summary.Median) / float64(base.Summary.Median)
			}
			row.Cells = append(row.Cells, lc)
			if w != nil {
				fmt.Fprintf(w, "Lanes %-10s lanes=%d baseline=%-10v median=%-10v crane=%.2fx errors=%d\n",
					row.App, n, row.BaselineMedian.Round(time.Microsecond),
					lc.Median.Round(time.Microsecond), lc.Crane, lc.Errors)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
