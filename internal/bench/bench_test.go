package bench

import (
	"strings"
	"testing"

	"crane/internal/crane"
)

func TestSpecsShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("%d specs, want the paper's 5 servers", len(specs))
	}
	names := map[string]bool{}
	hints := 0
	for _, s := range specs {
		if s.Name == "" || s.Port == 0 || s.Program == nil || s.Workload == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		names[s.Name] = true
		if s.HintsApply {
			hints++
		}
		prog := s.Program(false)
		if prog.New == nil || len(prog.Ports) == 0 {
			t.Fatalf("%s builds incomplete program", s.Name)
		}
	}
	for _, want := range []string{"Apache", "Mongoose", "ClamAV", "MediaTomb", "MySQL"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
	if hints != 2 {
		t.Fatalf("%d hint-taking servers, want 2 (Apache, Mongoose)", hints)
	}
}

func TestRunCellBaseline(t *testing.T) {
	// The cheapest cell: MySQL under the un-replicated baseline.
	spec := Specs()[4]
	s := Scale{Requests: 4, Concurrency: 2, PrepareRows: 5}
	cell, err := RunCell(spec, ClusterConfig(crane.ModeNondet), false, s)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Summary.Errors != 0 {
		t.Fatalf("cell errors: %+v", cell.Summary)
	}
	if cell.Summary.Median <= 0 {
		t.Fatal("no latency measured")
	}
	if cell.ClientCalls != 0 {
		t.Fatal("baseline reported consensus traffic")
	}
	if !strings.EqualFold(cell.Mode, "nondet") {
		t.Fatalf("mode = %q", cell.Mode)
	}
}

func TestRunCellCraneCountsBubbles(t *testing.T) {
	spec := Specs()[4]
	s := Scale{Requests: 4, Concurrency: 2, PrepareRows: 5}
	cell, err := RunCell(spec, ClusterConfig(crane.ModeCrane), false, s)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Summary.Errors != 0 {
		t.Fatalf("cell errors: %+v", cell.Summary)
	}
	if cell.ClientCalls == 0 || cell.Bubbles == 0 {
		t.Fatalf("consensus accounting empty: %+v", cell)
	}
	if cell.BubbleRatio <= 0 || cell.BubbleRatio >= 1 {
		t.Fatalf("bubble ratio = %f", cell.BubbleRatio)
	}
}

func TestClusterConfigDefaults(t *testing.T) {
	cfg := ClusterConfig(crane.ModeCrane)
	if cfg.Wtimeout.Microseconds() != 100 {
		t.Fatalf("Wtimeout = %v, want the paper's 100µs default", cfg.Wtimeout)
	}
	if cfg.Nclock != 1000 {
		t.Fatalf("Nclock = %d, want the paper's 1000 default", cfg.Nclock)
	}
	if cfg.Replicas != 3 {
		t.Fatalf("Replicas = %d, want the paper's 3-replica deployment", cfg.Replicas)
	}
}
