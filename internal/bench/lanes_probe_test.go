package bench

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"crane/internal/crane"
)

// TestLanesProbe is a diagnostic harness for the lane sweep (not run in
// CI): CRANE_LANES_PROBE=<n> runs the Apache cell at n lanes and prints
// scheduler counters. Used with -cpuprofile to localize lane-scaling
// bottlenecks.
func TestLanesProbe(t *testing.T) {
	ns := os.Getenv("CRANE_LANES_PROBE")
	if ns == "" {
		t.Skip("set CRANE_LANES_PROBE=<lanes>")
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		t.Fatal(err)
	}
	s := SmallScale
	s.Concurrency = 8
	s.Requests = 64
	spec := laneSpecs()[0]
	cfg := ClusterConfig(crane.ModeCrane)
	cfg.Lanes = n
	for i := 0; i < 3; i++ {
		cell, lines, err := RunCellWithMetrics(spec, cfg, false, s)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("run %d: median=%v errors=%d\n", i, cell.Summary.Median, cell.Summary.Errors)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
}
