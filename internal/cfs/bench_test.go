package cfs

import (
	"fmt"
	"testing"
)

func populated(files, size int) *FS {
	f := New()
	for i := 0; i < files; i++ {
		data := make([]byte, size)
		for j := range data {
			data[j] = byte('a' + (i+j)%26)
			if j%64 == 63 {
				data[j] = '\n'
			}
		}
		f.Write(fmt.Sprintf("dir/file%04d.txt", i), data)
	}
	return f
}

// BenchmarkDiffUnchanged measures the no-op incremental checkpoint (the
// common per-minute case: nothing changed since the base snapshot).
func BenchmarkDiffUnchanged(b *testing.B) {
	f := populated(100, 4096)
	base := f.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := f.Diff(base); !p.Empty() {
			b.Fatal("unexpected ops")
		}
	}
}

// BenchmarkDiffSmallChange measures the incremental checkpoint after a
// one-file, few-line change (Table 2's "C fs" behaviour).
func BenchmarkDiffSmallChange(b *testing.B) {
	f := populated(100, 4096)
	base := f.Snapshot()
	data, _ := f.Read("dir/file0050.txt")
	data[100] = 'Z'
	f.Write("dir/file0050.txt", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := f.Diff(base); len(p.Ops) != 1 {
			b.Fatalf("ops = %d", len(p.Ops))
		}
	}
}

// BenchmarkApplyPatch measures restore cost (base + patch).
func BenchmarkApplyPatch(b *testing.B) {
	f := populated(100, 4096)
	base := f.Snapshot()
	f.Write("dir/new.txt", make([]byte, 8192))
	data, _ := f.Read("dir/file0000.txt")
	data[0] = 'Q'
	f.Write("dir/file0000.txt", data)
	patch := f.Diff(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := base.NewFS()
		if err := fs.Apply(patch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures base-image capture.
func BenchmarkSnapshot(b *testing.B) {
	f := populated(100, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := f.Snapshot(); s.FileCount() != 100 {
			b.Fatal("bad snapshot")
		}
	}
}
