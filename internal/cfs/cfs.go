// Package cfs is an in-memory container filesystem: the stand-in for the
// LXC container image of §5.2. A replica's server program runs against its
// own FS (same clean initial state on every replica — one of the paper's
// stated benefits of the container). Checkpointing takes an incremental
// patch of the working/installation directories against a base snapshot
// ("diff --text" in the paper); restoring applies the patch to a fresh
// base, which is why restores are much cheaper than checkpoints (Table 2).
//
// Text files diff at line granularity (common prefix/suffix trimmed, the
// changed middle shipped), binary files ship whole — mirroring the size
// behaviour of the original's text diffs.
package cfs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// FS is a flat-namespace filesystem (paths are slash-separated keys, as in
// an archive). Safe for concurrent use.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// New creates an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// Write creates or replaces the file at path.
func (f *FS) Write(path string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = append([]byte(nil), data...)
}

// Append appends data to the file at path, creating it if absent.
func (f *FS) Append(path string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = append(f.files[path], data...)
}

// Read returns the file's contents and whether it exists.
func (f *FS) Read(path string) ([]byte, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	data, ok := f.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Remove deletes the file at path; it reports whether it existed.
func (f *FS) Remove(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[path]
	delete(f.files, path)
	return ok
}

// Exists reports whether path exists.
func (f *FS) Exists(path string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.files[path]
	return ok
}

// Size returns the length of the file at path (0 if absent).
func (f *FS) Size(path string) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files[path])
}

// List returns all paths with the given prefix, sorted.
func (f *FS) List(prefix string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []string
	for p := range f.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the summed size of all files (Table 2's fs cost is
// proportional to this for the base snapshot and to the delta for
// incremental checkpoints).
func (f *FS) TotalBytes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, d := range f.files {
		n += len(d)
	}
	return n
}

// FileCount returns the number of files.
func (f *FS) FileCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files)
}

// Snapshot is an immutable point-in-time copy of an FS.
type Snapshot struct {
	files map[string][]byte
}

// Snapshot captures the current state (the LXC snapshot taken before any
// server starts, and the source state of incremental diffs).
func (f *FS) Snapshot() *Snapshot {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := &Snapshot{files: make(map[string][]byte, len(f.files))}
	for p, d := range f.files {
		s.files[p] = append([]byte(nil), d...)
	}
	return s
}

// NewFS materializes a fresh FS from the snapshot.
func (s *Snapshot) NewFS() *FS {
	f := New()
	for p, d := range s.files {
		f.files[p] = append([]byte(nil), d...)
	}
	return f
}

// FileCount returns the number of files in the snapshot.
func (s *Snapshot) FileCount() int { return len(s.files) }

// OpKind discriminates patch operations.
type OpKind uint8

// Patch operation kinds.
const (
	// OpPut replaces (or creates) a whole file.
	OpPut OpKind = iota + 1
	// OpDelete removes a file.
	OpDelete
	// OpSplice replaces the byte range [Off, Off+Cut) with Data —
	// produced by the line-granular text diff.
	OpSplice
)

// Op is one patch operation.
type Op struct {
	Kind OpKind
	Path string
	Off  int
	Cut  int
	Data []byte
}

// Patch is an ordered set of operations turning a base snapshot's state
// into the diffed state.
type Patch struct {
	Ops []Op
}

// Bytes returns the payload size of the patch, the quantity the paper's
// "C fs" cost tracks.
func (p *Patch) Bytes() int {
	n := 0
	for _, op := range p.Ops {
		n += len(op.Data) + len(op.Path) + 16
	}
	return n
}

// Empty reports whether the patch changes nothing.
func (p *Patch) Empty() bool { return len(p.Ops) == 0 }

// Diff computes the incremental patch from base to the FS's current state.
func (f *FS) Diff(base *Snapshot) *Patch {
	f.mu.RLock()
	defer f.mu.RUnlock()
	patch := &Patch{}
	// Deterministic op order: sorted paths.
	paths := make([]string, 0, len(f.files))
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		cur := f.files[p]
		old, existed := base.files[p]
		if !existed {
			patch.Ops = append(patch.Ops, Op{Kind: OpPut, Path: p, Data: append([]byte(nil), cur...)})
			continue
		}
		if bytes.Equal(old, cur) {
			continue
		}
		if op, ok := spliceDiff(p, old, cur); ok {
			patch.Ops = append(patch.Ops, op)
		} else {
			patch.Ops = append(patch.Ops, Op{Kind: OpPut, Path: p, Data: append([]byte(nil), cur...)})
		}
	}
	// Deletions.
	var deleted []string
	for p := range base.files {
		if _, ok := f.files[p]; !ok {
			deleted = append(deleted, p)
		}
	}
	sort.Strings(deleted)
	for _, p := range deleted {
		patch.Ops = append(patch.Ops, Op{Kind: OpDelete, Path: p})
	}
	return patch
}

// spliceDiff computes a line-granular splice: the longest common prefix and
// suffix of whole lines are kept; the middle is replaced. It reports false
// when a whole-file put would be no larger.
func spliceDiff(path string, old, cur []byte) (Op, bool) {
	// Common prefix ending at a line boundary.
	n := len(old)
	if len(cur) < n {
		n = len(cur)
	}
	i := 0
	for i < n && old[i] == cur[i] {
		i++
	}
	// Retreat to the previous newline so the splice is line-aligned.
	p := i
	for p > 0 && old[p-1] != '\n' {
		p--
	}
	// Common suffix starting at a line boundary.
	j := 0
	for j < n-p && old[len(old)-1-j] == cur[len(cur)-1-j] {
		j++
	}
	s := j
	for s > 0 && old[len(old)-s] != '\n' {
		s--
	}
	cut := len(old) - p - s
	data := append([]byte(nil), cur[p:len(cur)-s]...)
	if len(data)+32 >= len(cur) {
		return Op{}, false // splice saves nothing
	}
	return Op{Kind: OpSplice, Path: path, Off: p, Cut: cut, Data: data}, true
}

// Apply applies the patch (a restore: base snapshot + patch = checkpointed
// state). It errors if a splice target is missing or too short.
func (f *FS) Apply(patch *Patch) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, op := range patch.Ops {
		switch op.Kind {
		case OpPut:
			f.files[op.Path] = append([]byte(nil), op.Data...)
		case OpDelete:
			delete(f.files, op.Path)
		case OpSplice:
			old, ok := f.files[op.Path]
			if !ok {
				return fmt.Errorf("cfs: splice target %q missing", op.Path)
			}
			if op.Off+op.Cut > len(old) {
				return fmt.Errorf("cfs: splice out of range for %q", op.Path)
			}
			next := make([]byte, 0, len(old)-op.Cut+len(op.Data))
			next = append(next, old[:op.Off]...)
			next = append(next, op.Data...)
			next = append(next, old[op.Off+op.Cut:]...)
			f.files[op.Path] = next
		default:
			return fmt.Errorf("cfs: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// Equal reports whether two filesystems hold identical content.
func Equal(a, b *FS) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(a.files) != len(b.files) {
		return false
	}
	for p, d := range a.files {
		if !bytes.Equal(d, b.files[p]) {
			return false
		}
	}
	return true
}
