package cfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicFileOps(t *testing.T) {
	f := New()
	f.Write("a/b.txt", []byte("hello"))
	if d, ok := f.Read("a/b.txt"); !ok || string(d) != "hello" {
		t.Fatalf("Read = %q, %v", d, ok)
	}
	f.Append("a/b.txt", []byte(" world"))
	if d, _ := f.Read("a/b.txt"); string(d) != "hello world" {
		t.Fatalf("after Append: %q", d)
	}
	if !f.Exists("a/b.txt") || f.Exists("nope") {
		t.Fatal("Exists broken")
	}
	if f.Size("a/b.txt") != 11 || f.Size("nope") != 0 {
		t.Fatal("Size broken")
	}
	if !f.Remove("a/b.txt") || f.Remove("a/b.txt") {
		t.Fatal("Remove broken")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	f := New()
	f.Write("x", []byte("abc"))
	d, _ := f.Read("x")
	d[0] = 'Z'
	if d2, _ := f.Read("x"); string(d2) != "abc" {
		t.Fatal("Read exposed internal buffer")
	}
}

func TestListPrefix(t *testing.T) {
	f := New()
	f.Write("www/a.php", nil)
	f.Write("www/b.php", nil)
	f.Write("db/t1", nil)
	got := f.List("www/")
	if len(got) != 2 || got[0] != "www/a.php" || got[1] != "www/b.php" {
		t.Fatalf("List = %v", got)
	}
	if n := len(f.List("")); n != 3 {
		t.Fatalf("List(\"\") = %d entries", n)
	}
}

func TestTotalBytesAndFileCount(t *testing.T) {
	f := New()
	f.Write("a", make([]byte, 100))
	f.Write("b", make([]byte, 50))
	if f.TotalBytes() != 150 || f.FileCount() != 2 {
		t.Fatalf("TotalBytes=%d FileCount=%d", f.TotalBytes(), f.FileCount())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	f := New()
	f.Write("a", []byte("v1"))
	snap := f.Snapshot()
	f.Write("a", []byte("v2"))
	restored := snap.NewFS()
	if d, _ := restored.Read("a"); string(d) != "v1" {
		t.Fatalf("snapshot leaked later writes: %q", d)
	}
	if snap.FileCount() != 1 {
		t.Fatal("snapshot FileCount wrong")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	f := New()
	f.Write("keep", []byte("unchanged"))
	f.Write("mod", []byte("line1\nline2\nline3\n"))
	f.Write("del", []byte("going away"))
	base := f.Snapshot()

	f.Write("mod", []byte("line1\nCHANGED\nline3\n"))
	f.Write("new", []byte("fresh"))
	f.Remove("del")

	patch := f.Diff(base)
	restored := base.NewFS()
	if err := restored.Apply(patch); err != nil {
		t.Fatal(err)
	}
	if !Equal(f, restored) {
		t.Fatal("base + patch != current state")
	}
}

func TestDiffIsIncremental(t *testing.T) {
	// A big unchanged file must not appear in the patch; a small change to
	// a big text file must ship only the changed lines (the paper's
	// incremental "diff --text" behaviour).
	f := New()
	var big strings.Builder
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&big, "row %06d: some database tuple content\n", i)
	}
	f.Write("db/table", []byte(big.String()))
	f.Write("static", make([]byte, 1<<20))
	base := f.Snapshot()

	// Change one line in the middle.
	content := big.String()
	changed := strings.Replace(content, "row 005000:", "ROW 005000:", 1)
	f.Write("db/table", []byte(changed))

	patch := f.Diff(base)
	if patch.Bytes() > 4096 {
		t.Fatalf("patch is %d bytes for a one-line change", patch.Bytes())
	}
	restored := base.NewFS()
	if err := restored.Apply(patch); err != nil {
		t.Fatal(err)
	}
	if !Equal(f, restored) {
		t.Fatal("incremental patch did not reproduce state")
	}
}

func TestEmptyDiff(t *testing.T) {
	f := New()
	f.Write("a", []byte("x"))
	base := f.Snapshot()
	patch := f.Diff(base)
	if !patch.Empty() {
		t.Fatalf("unchanged FS produced %d ops", len(patch.Ops))
	}
}

func TestSpliceErrors(t *testing.T) {
	f := New()
	if err := f.Apply(&Patch{Ops: []Op{{Kind: OpSplice, Path: "missing", Data: []byte("x")}}}); err == nil {
		t.Fatal("splice on missing file succeeded")
	}
	f.Write("short", []byte("ab"))
	if err := f.Apply(&Patch{Ops: []Op{{Kind: OpSplice, Path: "short", Off: 1, Cut: 5}}}); err == nil {
		t.Fatal("out-of-range splice succeeded")
	}
	if err := f.Apply(&Patch{Ops: []Op{{Kind: 99}}}); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

func TestBinaryFilesShipWhole(t *testing.T) {
	f := New()
	bin := make([]byte, 1000)
	for i := range bin {
		bin[i] = byte(i)
	}
	f.Write("blob", bin)
	base := f.Snapshot()
	bin2 := append([]byte(nil), bin...)
	for i := 0; i < len(bin2); i += 3 {
		bin2[i] ^= 0xFF // pervasive change: splice won't help
	}
	f.Write("blob", bin2)
	patch := f.Diff(base)
	restored := base.NewFS()
	if err := restored.Apply(patch); err != nil {
		t.Fatal(err)
	}
	if !Equal(f, restored) {
		t.Fatal("binary round trip failed")
	}
}

// Property: for random mutation sequences, base snapshot + Diff = current.
func TestQuickDiffApplyEquivalence(t *testing.T) {
	type mutation struct {
		Path byte
		Op   byte
		Data []byte
	}
	f := func(initial map[byte][]byte, muts []mutation) bool {
		fs := New()
		for p, d := range initial {
			fs.Write(fmt.Sprintf("f%d", p%8), d)
		}
		base := fs.Snapshot()
		for _, m := range muts {
			path := fmt.Sprintf("f%d", m.Path%8)
			switch m.Op % 3 {
			case 0:
				fs.Write(path, m.Data)
			case 1:
				fs.Append(path, m.Data)
			case 2:
				fs.Remove(path)
			}
		}
		patch := fs.Diff(base)
		restored := base.NewFS()
		if err := restored.Apply(patch); err != nil {
			return false
		}
		return Equal(fs, restored)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: line-oriented edits to a text file always round trip and the
// patch for a k-line change is bounded well below the file size.
func TestQuickTextSplice(t *testing.T) {
	f := func(seed int64, nLines uint8, editAt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nLines)%200 + 20
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("line %d content %d", i, rng.Intn(1000))
		}
		old := strings.Join(lines, "\n") + "\n"
		k := int(editAt) % n
		lines[k] = "EDITED " + lines[k]
		cur := strings.Join(lines, "\n") + "\n"

		fs := New()
		fs.Write("t", []byte(old))
		base := fs.Snapshot()
		fs.Write("t", []byte(cur))
		patch := fs.Diff(base)
		restored := base.NewFS()
		if err := restored.Apply(patch); err != nil {
			return false
		}
		got, _ := restored.Read("t")
		return bytes.Equal(got, []byte(cur))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
