package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GroncoupleAnalyzer enforces the group-decoupling discipline of the
// sharded consensus pipeline (ISSUE 10). Fields holding one slot per
// Paxos group — the per-group nodes, WALs, delivery cursors, submit
// channels, decode arenas — are declared with a "//crane:pergroup" marker.
// Indexing such a field is only sound when the index demonstrably IS a
// group id:
//
//   - the key variable of a range over a per-group field (for g, nd :=
//     range r.nodes),
//   - an identifier conventionally carrying a group id (g, gi, gid, grp,
//     h, group, or any *group* name) — parameters and loop counters,
//   - the result of a group-router call (groupForConn, groupOf, GroupOf,
//     ConnGroupOf, ConnGroup, RendezvousGroup),
//   - an integer constant (an explicit, reviewable pin, like the
//     single-group alias [0]).
//
// Anything else — a lane index, a connection id, an arbitrary counter —
// is a cross-group read that bypasses the watermark-vector merge: group
// state observed under a foreign index has no ordering relationship with
// the observer's group and is exactly the coupling the merge exists to
// mediate. A deliberate exception carries a
// "//crane:groncouple-ok <reason>" comment on the flagged line.
var GroncoupleAnalyzer = &Analyzer{
	Name: "groncouple",
	Doc:  "flag per-group (//crane:pergroup) state indexed by anything that is not a group id",
	Run:  runGroncouple,
}

// groupIdentNames are the identifier spellings accepted as group ids.
func groncoupleIdentOK(name string) bool {
	switch name {
	case "g", "gi", "gid", "grp", "h", "group":
		return true
	}
	return strings.Contains(strings.ToLower(name), "group")
}

// groncoupleRouters are the call targets whose result is a group id.
func groncoupleRouterOK(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	switch name {
	case "groupForConn", "groupOf", "GroupOf", "ConnGroupOf", "ConnGroup", "RendezvousGroup":
		return true
	}
	return false
}

func runGroncouple(pass *Pass) {
	// Pass 1: collect the marked field objects and, while walking, the
	// key variables of ranges over them. Object identity makes scope
	// tracking unnecessary: a loop key authorizes exactly the uses that
	// resolve to it.
	marked := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !groncoupleMarked(field) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(marked) == 0 {
		return
	}
	groupVars := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !groncoupleFieldUse(pass, rng.X, marked) {
				return true
			}
			if key, ok := rng.Key.(*ast.Ident); ok && key.Name != "_" {
				if obj := pass.Info.Defs[key]; obj != nil {
					groupVars[obj] = true
				}
			}
			return true
		})
	}
	// Pass 2: validate every index into a marked field.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if !groncoupleFieldUse(pass, idx.X, marked) {
				return true
			}
			if groncoupleIndexOK(pass, idx.Index, groupVars) {
				return true
			}
			pass.Report(idx.Pos(),
				"per-group field %s indexed by %q, which is not a group id: cross-group reads bypass the watermark-vector merge; index with a group-range key, a router result (groupForConn/ConnGroupOf), or an explicit constant",
				exprString(idx.X), exprString(idx.Index))
			return true
		})
	}
}

// groncoupleMarked reports whether a struct field declaration carries the
// //crane:pergroup marker in its doc or trailing comment.
func groncoupleMarked(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crane:pergroup") {
				return true
			}
		}
	}
	return false
}

// groncoupleFieldUse reports whether expr resolves to one of the marked
// per-group field objects (r.nodes, p.r.subChs, a bare field name inside
// a method, ...).
func groncoupleFieldUse(pass *Pass, expr ast.Expr, marked map[types.Object]bool) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return marked[pass.Info.Uses[x.Sel]]
	case *ast.Ident:
		return marked[pass.Info.Uses[x]]
	}
	return false
}

// groncoupleIndexOK reports whether the index expression demonstrably
// carries a group id.
func groncoupleIndexOK(pass *Pass, index ast.Expr, groupVars map[types.Object]bool) bool {
	index = ast.Unparen(index)
	// Integer constants: explicit, reviewable pins.
	if tv, ok := pass.Info.Types[index]; ok && tv.Value != nil {
		return true
	}
	switch x := index.(type) {
	case *ast.Ident:
		if groncoupleIdentOK(x.Name) {
			return true
		}
		return groupVars[pass.Info.Uses[x]]
	case *ast.CallExpr:
		return groncoupleRouterOK(x)
	}
	return false
}

// exprString renders a short source-ish form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.BasicLit:
		return x.Value
	case *ast.BinaryExpr:
		return exprString(x.X) + x.Op.String() + exprString(x.Y)
	}
	return "<expr>"
}
