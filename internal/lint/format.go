package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Output formatting for cranevet. Three formats, one ordering: findings
// are emitted exactly as sorted by SortDiagnostics, so every format is
// byte-stable across runs and diffable in CI.
//
//   - text:  the go-vet line format, for humans and the CI gate
//   - json:  a flat array, for scripting
//   - sarif: SARIF 2.1.0, for code-scanning upload (file paths are
//     emitted relative to the working directory with forward slashes,
//     which is what upload annotators expect)

// WriteText writes findings in go-vet format, one per line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable JSON shape of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON writes findings as a JSON array (empty slice, not null, when
// there are none).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes findings as a one-run SARIF 2.1.0 log. The rule table
// lists every analyzer of the suite (not just the ones that fired), in
// suite order, so ruleIndex is stable across runs.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, len(analyzers))
	index := map[string]int{}
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}}
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ix, ok := index[d.Analyzer]
		if !ok {
			// A suppression-syntax diagnostic names the (possibly unknown)
			// analyzer from the comment; park those under index 0's rule id
			// only if it exists, else skip the index.
			ix = 0
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ix,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "cranevet", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath makes a finding path relative to the working directory when it
// is underneath it; absolute otherwise.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}
