package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for patterns and
// returns the decoded package records. -export populates the build cache
// with gc export data for every dependency, which is how the type checker
// resolves imports without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// reported. It wraps the standard gc importer with a lookup function.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: path, Dir: dir, Fset: fset,
		Files: files, Types: tpkg, Info: info,
	}, nil
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checks every
// matched non-standard package from source against export data for its
// dependencies, and returns the packages sorted by import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// chainedImporter resolves imports from source-loaded packages first,
// then falls back to gc export data. Multi-package testdata fixtures need
// this: when package c imports package b which the harness also loaded
// from source, c must see b's *source-checked* types so the engine's call
// graph has b's bodies.
type chainedImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (ci *chainedImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.loaded[path]; ok {
		return p, nil
	}
	return ci.fallback.Import(path)
}

// LoadDirs type-checks several testdata directories as one universe, in
// the given order (dependencies first). Each dir is checked under its
// real module import path (so `go list` can produce export data for any
// externally imported package), and earlier packages resolve as source
// for later ones. All packages share one FileSet.
func LoadDirs(dirs []string, importPaths []string) ([]*Package, error) {
	if len(dirs) != len(importPaths) {
		return nil, fmt.Errorf("lint: LoadDirs: %d dirs but %d import paths", len(dirs), len(importPaths))
	}
	fset := token.NewFileSet()
	loaded := map[string]*types.Package{}
	var out []*Package
	for i, dir := range dirs {
		goFiles, importSet, err := scanDir(dir)
		if err != nil {
			return nil, err
		}
		exports := map[string]string{}
		var external []string
		for p := range importSet {
			if _, ok := loaded[p]; !ok {
				external = append(external, p)
			}
		}
		if len(external) > 0 {
			sort.Strings(external)
			listed, err := goList(dir, external)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
		imp := &chainedImporter{loaded: loaded, fallback: exportImporter(fset, exports)}
		pkg, err := typeCheck(fset, imp, importPaths[i], dir, goFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", importPaths[i], err)
		}
		loaded[importPaths[i]] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// scanDir lists the non-test .go files of dir and the union of their
// imports.
func scanDir(dir string) (goFiles []string, importSet map[string]bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	pfset := token.NewFileSet()
	importSet = map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(pfset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	return goFiles, importSet, nil
}

// LoadDir type-checks the single package rooted at dir (used for testdata
// packages, which `go list` does not enumerate). Imports — standard
// library or module-internal — are resolved through export data built by
// one `go list` invocation for exactly the imports the files declare.
func LoadDir(dir string) (*Package, error) {
	goFiles, importSet, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	return typeCheck(fset, imp, filepath.Base(dir), dir, goFiles)
}
