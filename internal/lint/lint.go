// Package lint is cranevet's static-analysis framework: a small,
// dependency-free equivalent of golang.org/x/tools/go/analysis used to
// machine-check the invariants CRANE's correctness rests on.
//
// The original system gets its coverage guarantee from LD_PRELOAD: *every*
// libc call a replicated server makes is interposed, so no source of
// nondeterminism can bypass the DMT scheduler or the Paxos sequence. A Go
// reproduction has no link-time interposition point — applications promise
// to call internal/papi instead of raw go/sync/time/rand — and an
// unchecked promise is exactly the kind of convention that Determinator
// argues must be system-enforced. The analyzers in this package turn the
// convention into a build-failing check:
//
//   - nondet:    raw goroutines, select, sync, time, math/rand, escaping
//     map iteration, and direct net dialing in replicated packages
//   - lockorder: a static inter-procedural lock-acquisition graph whose
//     cycles are potential deadlocks (the static companion of
//     internal/analysis.LockOrderChecker)
//   - fsyncerr:  dropped or shadowed errors on WAL/commit durability paths
//   - obsreg:    instrument registration on observation hot paths
//   - laneconsistency: lane-bound papi sync objects (NewMutexLane and
//     friends) used from threads of a different lane — conflict-map drift
//     caught at lint time instead of by the runtime assertion
//   - specleak:  client-visible effects (socket writes, output-log
//     records, WAL appends) in internal/crane that bypass the speculation
//     gate buffer
//
// Suppression: a finding may be deliberately accepted with a
// "//crane:<analyzer>-ok <reason>" comment on the flagged line, the line
// above it, or the declaration line of the object the finding is about
// (so annotating a field declaration covers every use of that field). The
// reason is mandatory.
//
// Replication scope: a package is "replicated" — and subject to nondet —
// if its import path is under crane/internal/apps, or any of its files
// carries a "//crane:replicated" comment. Test files are never analyzed
// (the loader reads only GoFiles), and client harness code inside
// replicated packages is exempted line-by-line via annotations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Exactly one of Run and RunSuite is set:
// Run analyzes a single package; RunSuite analyzes the whole loaded
// universe at once (needed for inter-package lock-order analysis).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// RunSuite receives every loaded package; diagnostics are reported
	// through any one of the passes (they share a collector).
	RunSuite func([]*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Replicated reports whether this package is held to the papi
	// discipline (see package doc).
	Replicated bool

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// related is the declaration position of the object the finding is
	// about (zero if none); suppression comments there also apply.
	related token.Position
}

// String formats the finding the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.reportRelated(pos, token.NoPos, format, args...)
}

// ReportObj records a finding at pos about object obj; a suppression
// comment at obj's declaration also silences it.
func (p *Pass) ReportObj(pos token.Pos, obj types.Object, format string, args ...any) {
	rel := token.NoPos
	if obj != nil {
		rel = obj.Pos()
	}
	p.reportRelated(pos, rel, format, args...)
}

func (p *Pass) reportRelated(pos, rel token.Pos, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if rel.IsValid() {
		d.related = p.Fset.Position(rel)
	}
	*p.diags = append(*p.diags, d)
}

// suppressionRe matches "//crane:<analyzer>-ok <reason>".
var suppressionRe = regexp.MustCompile(`//\s*crane:([a-z]+)-ok(.*)$`)

// suppressions indexes the "//crane:<analyzer>-ok" comments of one package
// by (filename, line) for each analyzer name.
type suppressions map[string]map[int]string // file -> line -> analyzer names (space-joined)

func collectSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressionRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					report(Diagnostic{
						Analyzer: m[1],
						Pos:      pos,
						Message:  fmt.Sprintf("crane:%s-ok suppression requires a reason", m[1]),
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]string{}
					sup[pos.Filename] = lines
				}
				lines[pos.Line] += " " + m[1]
			}
		}
	}
	return sup
}

func (s suppressions) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if strings.Contains(lines[l], analyzer) {
			return true
		}
	}
	return false
}

// replicated reports whether a package is subject to the papi discipline.
func replicated(path string, files []*ast.File) bool {
	if path == "crane/internal/apps" || strings.HasPrefix(path, "crane/internal/apps/") {
		return true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crane:replicated") {
					return true
				}
			}
		}
	}
	return false
}

// Analyzers is the cranevet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NondetAnalyzer, LockOrderAnalyzer, FsyncErrAnalyzer,
		ObsRegAnalyzer, LaneConsistencyAnalyzer, SpecLeakAnalyzer}
}

// RunAnalyzers executes the given analyzers over the loaded packages and
// returns unsuppressed findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	perPkgSup := make([]suppressions, len(pkgs))
	for i, pkg := range pkgs {
		perPkgSup[i] = collectSuppressions(pkg.Fset, pkg.Files, func(d Diagnostic) {
			all = append(all, d)
		})
	}
	for _, a := range analyzers {
		var diags []Diagnostic
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			passes[i] = &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Replicated: replicated(pkg.PkgPath, pkg.Files),
				diags:      &diags,
			}
		}
		if a.RunSuite != nil {
			a.RunSuite(passes)
		} else {
			for _, p := range passes {
				a.Run(p)
			}
		}
		// Apply suppressions: the flagged line, the line above, or the
		// declaration line of the related object.
		sup := suppressions{}
		for _, s := range perPkgSup {
			for file, lines := range s {
				if sup[file] == nil {
					sup[file] = map[int]string{}
				}
				for l, names := range lines {
					sup[file][l] += names
				}
			}
		}
		for _, d := range diags {
			if sup.covers(d.Analyzer, d.Pos) {
				continue
			}
			if d.related.IsValid() && sup.covers(d.Analyzer, d.related) {
				continue
			}
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Message < all[j].Message
	})
	return all
}
