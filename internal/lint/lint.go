// Package lint is cranevet's static-analysis framework: a small,
// dependency-free equivalent of golang.org/x/tools/go/analysis used to
// machine-check the invariants CRANE's correctness rests on.
//
// The original system gets its coverage guarantee from LD_PRELOAD: *every*
// libc call a replicated server makes is interposed, so no source of
// nondeterminism can bypass the DMT scheduler or the Paxos sequence. A Go
// reproduction has no link-time interposition point — applications promise
// to call internal/papi instead of raw go/sync/time/rand — and an
// unchecked promise is exactly the kind of convention that Determinator
// argues must be system-enforced. The analyzers in this package turn the
// convention into a build-failing check:
//
//   - nondet:    raw goroutines, select, sync, time, math/rand, escaping
//     map iteration, and direct net dialing in replicated packages
//   - lockorder: a static inter-procedural lock-acquisition graph whose
//     cycles are potential deadlocks (the static companion of
//     internal/analysis.LockOrderChecker)
//   - fsyncerr:  dropped or shadowed errors on WAL/commit durability paths
//   - obsreg:    instrument registration on observation hot paths
//   - laneconsistency: lane-bound papi sync objects (NewMutexLane and
//     friends) used from threads of a different lane — conflict-map drift
//     caught at lint time instead of by the runtime assertion
//   - specleak:  client-visible effects (socket writes, output-log
//     records, WAL appends) in internal/crane that bypass the speculation
//     gate buffer
//   - detflow:   interprocedural taint tracking from nondeterminism
//     sources (time, rand, env, map order, select, pointer formatting,
//     unseeded hashing) to determinism sinks (seq wire, DMT schedule,
//     speculation gate, WAL payloads, output log); rides the shared
//     summary engine in engine.go
//   - atomicmix: words accessed both through sync/atomic and with plain
//     loads/stores — the lock-free mirror discipline, checked suite-wide
//
// Suppression: a finding may be deliberately accepted with a
// "//crane:<analyzer>-ok <reason>" comment on the flagged line, the line
// above it, or the declaration line of the object the finding is about
// (so annotating a field declaration covers every use of that field).
// A suppression on a declaration also covers findings inside closures
// declared within that declaration's span, so annotating a harness
// helper covers the measurement closure it returns. The reason is
// mandatory.
//
// Replication scope: a package is "replicated" — and subject to nondet —
// if its import path is under crane/internal/apps, or any of its files
// carries a "//crane:replicated" comment. Test files are never analyzed
// (the loader reads only GoFiles), and client harness code inside
// replicated packages is exempted line-by-line via annotations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Exactly one of Run, RunSuite, and
// RunEngine is set: Run analyzes a single package; RunSuite analyzes the
// whole loaded universe at once (needed for inter-package lock-order and
// atomic-mix analysis); RunEngine additionally receives the shared
// interprocedural taint engine (see engine.go), built once per
// RunAnalyzers invocation however many analyzers ride it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// RunSuite receives every loaded package; diagnostics are reported
	// through any one of the passes (they share a collector).
	RunSuite func([]*Pass)
	// RunEngine receives the shared interprocedural engine plus the
	// per-package passes, in the same order as the loaded packages.
	RunEngine func(*Engine, []*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Replicated reports whether this package is held to the papi
	// discipline (see package doc).
	Replicated bool

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// related is the declaration position of the object the finding is
	// about (zero if none); suppression comments there also apply.
	related token.Position
}

// String formats the finding the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.reportRelated(pos, token.NoPos, format, args...)
}

// ReportObj records a finding at pos about object obj; a suppression
// comment at obj's declaration also silences it.
func (p *Pass) ReportObj(pos token.Pos, obj types.Object, format string, args ...any) {
	rel := token.NoPos
	if obj != nil {
		rel = obj.Pos()
	}
	p.reportRelated(pos, rel, format, args...)
}

// reportRelatedPosition records a finding whose suppression anchor is an
// already-resolved position — used by engine-based analyzers whose source
// witness may live in another package than the sink (annotating the
// source line silences every finding it fans out to).
func (p *Pass) reportRelatedPosition(pos token.Pos, rel token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		related:  rel,
	})
}

func (p *Pass) reportRelated(pos, rel token.Pos, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if rel.IsValid() {
		d.related = p.Fset.Position(rel)
	}
	*p.diags = append(*p.diags, d)
}

// suppressionRe matches "//crane:<analyzer>-ok <reason>".
var suppressionRe = regexp.MustCompile(`//\s*crane:([a-z]+)-ok(.*)$`)

// suppressions indexes the "//crane:<analyzer>-ok" comments of one package
// by (filename, line) for each analyzer name.
type suppressions map[string]map[int]string // file -> line -> analyzer names (space-joined)

func collectSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressionRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					report(Diagnostic{
						Analyzer: m[1],
						Pos:      pos,
						Message:  fmt.Sprintf("crane:%s-ok suppression requires a reason", m[1]),
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]string{}
					sup[pos.Filename] = lines
				}
				lines[pos.Line] += " " + m[1]
			}
		}
	}
	return sup
}

func (s suppressions) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if strings.Contains(lines[l], analyzer) {
			return true
		}
	}
	return false
}

// replicated reports whether a package is subject to the papi discipline.
func replicated(path string, files []*ast.File) bool {
	if path == "crane/internal/apps" || strings.HasPrefix(path, "crane/internal/apps/") {
		return true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crane:replicated") {
					return true
				}
			}
		}
	}
	return false
}

// closureSpan is the source span of a function literal declared inside a
// top-level declaration: a suppression comment on the declaration's line
// (or the line above it) also covers findings inside these closures. This
// is what lets one annotation on a harness helper cover the measurement
// closure it returns, instead of re-annotating every line of the closure
// body.
type closureSpan struct {
	file     string
	declLine int // line of the annotated declaration
	from, to int // closure body line range, inclusive
}

func collectClosureSpans(fset *token.FileSet, files []*ast.File) []closureSpan {
	var spans []closureSpan
	for _, f := range files {
		for _, decl := range f.Decls {
			declLine := fset.Position(decl.Pos()).Line
			ast.Inspect(decl, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				start := fset.Position(lit.Pos())
				end := fset.Position(lit.End())
				spans = append(spans, closureSpan{
					file:     start.Filename,
					declLine: declLine,
					from:     start.Line,
					to:       end.Line,
				})
				return true
			})
		}
	}
	return spans
}

// coversClosure reports whether pos falls inside a closure whose
// enclosing declaration carries a suppression for analyzer.
func coversClosure(sup suppressions, spans []closureSpan, analyzer string, pos token.Position) bool {
	for _, s := range spans {
		if s.file != pos.Filename || pos.Line < s.from || pos.Line > s.to {
			continue
		}
		lines := sup[s.file]
		if lines == nil {
			continue
		}
		for _, l := range []int{s.declLine, s.declLine - 1} {
			if strings.Contains(lines[l], analyzer) {
				return true
			}
		}
	}
	return false
}

// Analyzers is the cranevet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NondetAnalyzer, LockOrderAnalyzer, FsyncErrAnalyzer,
		ObsRegAnalyzer, LaneConsistencyAnalyzer, SpecLeakAnalyzer,
		DetflowAnalyzer, AtomicMixAnalyzer, GroncoupleAnalyzer}
}

// SortDiagnostics orders findings by (file, line, column, analyzer,
// message) — a total, position-first order, so repeated runs and CI
// diffs are stable however the analyzers emitted them.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// RunAnalyzers executes the given analyzers over the loaded packages and
// returns unsuppressed findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	perPkgSup := make([]suppressions, len(pkgs))
	var spans []closureSpan
	for i, pkg := range pkgs {
		perPkgSup[i] = collectSuppressions(pkg.Fset, pkg.Files, func(d Diagnostic) {
			all = append(all, d)
		})
		spans = append(spans, collectClosureSpans(pkg.Fset, pkg.Files)...)
	}
	// Merge suppressions once: they are keyed by absolute filename, so
	// cross-package application is safe.
	sup := suppressions{}
	for _, s := range perPkgSup {
		for file, lines := range s {
			if sup[file] == nil {
				sup[file] = map[int]string{}
			}
			for l, names := range lines {
				sup[file][l] += names
			}
		}
	}
	// The interprocedural engine is shared by every analyzer that rides
	// it; build it once, lazily.
	var eng *Engine
	engine := func() *Engine {
		if eng == nil {
			eng = NewEngine(pkgs)
		}
		return eng
	}
	for _, a := range analyzers {
		var diags []Diagnostic
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			passes[i] = &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Replicated: replicated(pkg.PkgPath, pkg.Files),
				diags:      &diags,
			}
		}
		switch {
		case a.RunEngine != nil:
			a.RunEngine(engine(), passes)
		case a.RunSuite != nil:
			a.RunSuite(passes)
		default:
			for _, p := range passes {
				a.Run(p)
			}
		}
		// Apply suppressions: the flagged line, the line above, the
		// declaration line of the related object, or — for findings
		// inside a closure — the line of the declaration the closure
		// lives in.
		for _, d := range diags {
			if sup.covers(d.Analyzer, d.Pos) {
				continue
			}
			if d.related.IsValid() && sup.covers(d.Analyzer, d.related) {
				continue
			}
			if coversClosure(sup, spans, d.Analyzer, d.Pos) {
				continue
			}
			all = append(all, d)
		}
	}
	SortDiagnostics(all)
	return all
}
